// Characteristics: user-defined QEFs over non-functional source properties
// (§5). Builds a universe where data quality and operational quality pull in
// opposite directions — the big, well-matched sources are slow and expensive
// — and shows how characteristic QEFs with different aggregators (wsum,
// mean, min) steer the selection.
//
//	go run ./examples/characteristics
package main

import (
	"fmt"
	"log"

	"mube"
)

func main() {
	sig := mube.SignatureConfig{NumMaps: 128}
	u := mube.NewUniverse(sig)

	// Ten sources over one shared catalog: even ids are big/slow/expensive,
	// odd ids are small/fast/cheap.
	for i := 0; i < 10; i++ {
		n := 2000
		latency, fee, avail := 50.0, 0.0, 0.99
		if i%2 == 0 {
			n = 20000
			latency, fee, avail = 400, 5, 0.95
		}
		tuples := make([]uint64, n)
		for j := range tuples {
			tuples[j] = uint64((i*7919 + j*104729) % 60000) // deterministic overlap
		}
		s, err := mube.SourceFromTuples(
			fmt.Sprintf("store-%d", i),
			mube.NewSchema("title", "author", "price"),
			mube.TupleSlice(tuples), sig)
		if err != nil {
			log.Fatal(err)
		}
		s.SetCharacteristic("latency", latency)
		s.SetCharacteristic("fee", fee)
		s.SetCharacteristic("availability", avail)
		if _, err := u.Add(s); err != nil {
			log.Fatal(err)
		}
	}

	// Three quality models over the same universe.
	runs := []struct {
		label string
		qefs  []mube.QEF
		w     mube.Weights
	}{
		{
			label: "data only (coverage-driven)",
			qefs:  mube.MainQEFs(),
			w:     mube.Weights{"match": 0.25, "card": 0.25, "coverage": 0.35, "redundancy": 0.15},
		},
		{
			label: "latency-sensitive (wsum, inverted)",
			qefs: append(mube.MainQEFs(),
				mube.CharacteristicQEF{Char: "latency", Agg: mube.WSum(), Invert: true}),
			w: mube.Weights{"match": 0.15, "card": 0.15, "coverage": 0.15, "redundancy": 0.05, "latency": 0.50},
		},
		{
			label: "availability floor (min aggregator)",
			qefs: append(mube.MainQEFs(),
				mube.CharacteristicQEF{Char: "availability", Agg: mustAgg("min")}),
			w: mube.Weights{"match": 0.15, "card": 0.15, "coverage": 0.15, "redundancy": 0.05, "availability": 0.50},
		},
	}

	for _, run := range runs {
		sess, err := mube.NewSession(mube.SessionConfig{
			Universe:      u,
			QEFs:          run.qefs,
			Weights:       run.w,
			Match:         mube.MatchConfig{Theta: 0.5},
			MaxSources:    4,
			SolverOptions: mube.SolverOptions{Seed: 9, MaxEvals: 1500},
		})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := sess.Solve()
		if err != nil {
			log.Fatal(err)
		}
		big, small := 0, 0
		for _, id := range sol.IDs {
			if id%2 == 0 {
				big++
			} else {
				small++
			}
		}
		fmt.Printf("%-38s Q=%.4f  chose %d big / %d small: %v\n",
			run.label, sol.Quality, big, small, sol.SourceNames(u))
	}
	fmt.Println("\nThe latency-sensitive model shifts the selection toward the small, fast")
	fmt.Println("stores; the data-only model prefers the big catalogs despite their cost.")
}

// mustAgg resolves a built-in aggregator or dies.
func mustAgg(name string) mube.Aggregator {
	a, err := mube.AggregatorByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return a
}
