// Theater: the paper's §1 motivating scenario. A user wants to integrate
// hidden-Web theater-ticket sources (the schemas of Figure 1, discovered via
// a hidden-Web search engine). Some sources cooperate with cardinalities and
// hash signatures, some do not; sources differ in latency and fees. The user
// guides µBE with a GA constraint bridging "keywords" and "search for".
//
//	go run ./examples/theater
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mube"
)

// site describes one hidden-Web theater source for this example.
type site struct {
	name    string
	attrs   []string
	tuples  int // 0 = uncooperative
	seed    int64
	overlap float64 // fraction of tuples drawn from the shared event pool
	latency float64 // ms
	fee     float64 // booking fee, dollars
}

// sites are the Figure 1 schemas (plus data characteristics invented for the
// example — the paper's sources are real Web forms).
var sites = []site{
	{"tonyawards.com", []string{"keywords"}, 8000, 1, 0.9, 120, 0},
	{"whatsonstage.com", []string{"your town"}, 12000, 2, 0.5, 240, 1.5},
	{"aceticket.com", []string{"state", "city", "event", "venue"}, 30000, 3, 0.7, 90, 6},
	{"canadiantheatre.com", []string{"phrase", "search term"}, 5000, 4, 0.4, 300, 0},
	{"londontheatre.co.uk", []string{"type", "keyword"}, 20000, 5, 0.6, 150, 2.5},
	{"mime.info.com", []string{"search for"}, 0, 6, 0, 500, 0}, // uncooperative
	{"pbs.org", []string{"program title", "date", "author", "actor", "director", "keyword"}, 15000, 7, 0.3, 180, 0},
	{"pa.msu.edu", []string{"keyword"}, 2000, 8, 0.8, 60, 0},
	{"wstonline.org", []string{"keyword", "after date", "before date"}, 9000, 9, 0.7, 210, 1},
	{"officiallondontheatre.co.uk", []string{"keyword", "after date", "before date"}, 9500, 10, 0.7, 200, 1},
	{"lastminute.com", []string{"event name", "event type", "location", "date", "radius"}, 40000, 11, 0.5, 110, 8},
}

func main() {
	sig := mube.SignatureConfig{NumMaps: 128}
	u := mube.NewUniverse(sig)
	const sharedPool = 50000 // event listings shared across sites

	for _, st := range sites {
		var s *mube.Source
		if st.tuples == 0 {
			s = mube.UncooperativeSource(st.name, mube.NewSchema(st.attrs...))
		} else {
			r := rand.New(rand.NewSource(st.seed))
			tuples := make([]uint64, st.tuples)
			for i := range tuples {
				if r.Float64() < st.overlap {
					tuples[i] = uint64(r.Intn(sharedPool)) // shared listing
				} else {
					tuples[i] = uint64(sharedPool) + uint64(st.seed)<<32 + uint64(i) // exclusive listing
				}
			}
			var err error
			s, err = mube.SourceFromTuples(st.name, mube.NewSchema(st.attrs...), mube.TupleSlice(tuples), sig)
			if err != nil {
				log.Fatal(err)
			}
		}
		s.SetCharacteristic("latency", st.latency)
		s.SetCharacteristic("fee", st.fee)
		if _, err := u.Add(s); err != nil {
			log.Fatal(err)
		}
	}

	// Quality model: the four main QEFs plus latency and fees (lower is
	// better → inverted).
	qefs := append(mube.MainQEFs(),
		mube.CharacteristicQEF{Char: "latency", Agg: mube.WSum(), Invert: true},
		mube.CharacteristicQEF{Char: "fee", Agg: mube.WSum(), Invert: true},
	)
	weights := mube.Weights{
		"match": 0.30, "card": 0.15, "coverage": 0.20,
		"redundancy": 0.15, "latency": 0.10, "fee": 0.10,
	}
	sess, err := mube.NewSession(mube.SessionConfig{
		Universe:      u,
		QEFs:          qefs,
		Weights:       weights,
		Match:         mube.MatchConfig{Theta: 0.45},
		MaxSources:    6,
		SolverOptions: mube.SolverOptions{Seed: 3, MaxEvals: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}

	sol, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	report("iteration 1 (no constraints)", u, sol)

	// The user knows "keywords" (tonyawards) and "search for" (mime.info)
	// express the same concept even though their names share nothing — a
	// Matching-By-Example bridge.
	bridge := mube.NewGA(
		mube.AttrRef{Source: 0, Attr: 0}, // tonyawards.com: keywords
		mube.AttrRef{Source: 5, Attr: 0}, // mime.info.com: search for
	)
	if err := sess.PinGA(bridge); err != nil {
		log.Fatal(err)
	}
	sol2, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	report("iteration 2 (keyword bridge pinned)", u, sol2)
}

// report prints one solution.
func report(title string, u *mube.Universe, sol *mube.Solution) {
	fmt.Printf("%s: Q(S) = %.4f\n", title, sol.Quality)
	fmt.Print("  sites: ")
	for i, name := range sol.SourceNames(u) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(name)
	}
	fmt.Println()
	fmt.Printf("  mediated schema (%d GAs):\n", sol.Schema.Len())
	for i, g := range sol.Schema.GAs {
		fmt.Printf("    GA%d:", i)
		for _, r := range g.Refs() {
			fmt.Printf(" %s/%s;", u.Source(r.Source).Name, u.AttrName(r))
		}
		fmt.Println()
	}
	fmt.Println()
}
