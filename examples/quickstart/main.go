// Quickstart: generate a small synthetic universe, open a µBE session, solve
// once, adopt one GA from the output as a constraint, and solve again.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mube"
)

func main() {
	// A 120-source Books universe at 1% of the paper's data volume.
	cfg := mube.ScaledSynthConfig(0.01)
	cfg.NumSources = 120
	cfg.Seed = 42
	res, err := mube.GenerateUniverse(cfg)
	if err != nil {
		log.Fatal(err)
	}
	u := res.Universe
	fmt.Printf("universe: %d sources, %d attributes, %d total tuples\n",
		u.Len(), u.NumAttrs(), u.TotalCardinality())

	sess, err := mube.NewSession(mube.SessionConfig{
		Universe:      u,
		MaxSources:    10,
		SolverOptions: mube.SolverOptions{Seed: 7, MaxEvals: 1500},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Iteration 1: no constraints.
	sol, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration 1: Q(S) = %.4f over %d sources, %d GAs\n",
		sol.Quality, len(sol.IDs), sol.Schema.Len())
	fmt.Print(sol.Schema.Render(u))

	// Feedback: keep the first GA and the highest-cardinality source.
	if sol.Schema.Len() > 0 {
		if err := sess.PinSolutionGA(0, 0); err != nil {
			log.Fatal(err)
		}
	}
	best := sol.IDs[0]
	for _, id := range sol.IDs {
		if u.Source(id).Cardinality > u.Source(best).Cardinality {
			best = id
		}
	}
	if err := sess.RequireSource(best); err != nil {
		log.Fatal(err)
	}

	// Iteration 2: µBE must honor the pinned GA and the required source.
	sol2, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration 2 (with feedback): Q(S) = %.4f over %d sources, %d GAs\n",
		sol2.Quality, len(sol2.IDs), sol2.Schema.Len())
	for name, v := range sol2.Breakdown {
		fmt.Printf("  %-12s %.4f\n", name, v)
	}
}
