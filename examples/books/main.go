// Books: the paper's evaluation domain, driven as a user would. Generates a
// BAMM-style Books universe, explores the θ / m trade-off across iterations,
// and steers the solution with the weight on the cardinality QEF (the Fig 8
// dynamic) — all through the public session API.
//
//	go run ./examples/books
package main

import (
	"fmt"
	"log"

	"mube"
)

func main() {
	cfg := mube.ScaledSynthConfig(0.01)
	cfg.NumSources = 200
	cfg.Seed = 11
	res, err := mube.GenerateUniverse(cfg)
	if err != nil {
		log.Fatal(err)
	}
	u := res.Universe

	sess, err := mube.NewSession(mube.SessionConfig{
		Universe:      u,
		Weights:       mube.PaperWeights(),
		MaxSources:    15,
		SolverOptions: mube.SolverOptions{Seed: 5, MaxEvals: 2500},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Iteration 1: defaults (θ = 0.5).
	sol, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 1 (θ=0.50): Q=%.4f, %d GAs, match=%.3f\n",
		sol.Quality, sol.Schema.Len(), sol.Breakdown["match"])

	// Iteration 2: a stricter matching threshold — fewer, tighter GAs.
	if err := sess.SetTheta(0.75); err != nil {
		log.Fatal(err)
	}
	sol2, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 2 (θ=0.75): Q=%.4f, %d GAs, match=%.3f\n",
		sol2.Quality, sol2.Schema.Len(), sol2.Breakdown["match"])

	// Iteration 3: back to θ=0.5 but emphasize cardinality (Fig 8 dynamic):
	// the solution should shift toward big sources.
	if err := sess.SetTheta(0.5); err != nil {
		log.Fatal(err)
	}
	if err := sess.SetWeight("card", 0.6); err != nil {
		log.Fatal(err)
	}
	sol3, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 3 (card-weight 0.6): Q=%.4f, solution holds %d of %d tuples\n",
		sol3.Quality, u.SumCardinality(sol3.IDs), u.TotalCardinality())
	if u.SumCardinality(sol3.IDs) < u.SumCardinality(sol.IDs) {
		fmt.Println("  (note: cardinality did not grow — try more evaluations)")
	}

	// Show the final mediated schema with attribute names.
	fmt.Println("\nfinal mediated schema:")
	fmt.Print(sol3.Schema.Render(u))

	fmt.Printf("\nsession history: %d iterations\n", len(sess.History()))
	for _, it := range sess.History() {
		fmt.Printf("  #%d: θ=%.2f card-w=%.2f → Q=%.4f (%d ms)\n",
			it.Index, it.Spec.Theta, it.Spec.Weights["card"], it.Solution.Quality,
			it.Elapsed.Milliseconds())
	}
}
