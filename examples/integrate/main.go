// Integrate: the full life cycle. µBE selects sources and derives a mediated
// schema; then the chosen integration system is actually *queried* through
// the mediator — data is retrieved from each source, mapped to the global
// schema through the GAs, merged, and deduplicated with provenance. Shows
// the paper's §1 cost argument live: the same query over a 4-source and a
// 12-source solution.
//
//	go run ./examples/integrate
package main

import (
	"fmt"
	"log"

	"mube"
)

func main() {
	// A small universe with retained tuples so rows can be materialized.
	cfg := mube.ScaledSynthConfig(0.005)
	cfg.NumSources = 80
	cfg.Seed = 17
	cfg.KeepTuples = true
	res, err := mube.GenerateUniverse(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []int{4, 12} {
		sess, err := mube.NewSession(mube.SessionConfig{
			Universe:      res.Universe,
			MaxSources:    m,
			SolverOptions: mube.SolverOptions{Seed: 3, MaxEvals: 1500},
		})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := sess.Solve()
		if err != nil {
			log.Fatal(err)
		}
		if !sol.MatchOK || sol.Schema.Len() == 0 {
			log.Fatalf("m=%d: no mediated schema", m)
		}

		tables, err := mube.MaterializeRows(res, sol.IDs)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := mube.NewMediator(res.Universe, sol.Schema, sol.IDs, tables)
		if err != nil {
			log.Fatal(err)
		}

		// Query GA 0 (whatever concept it is) for values containing "-00".
		q := mube.Query{
			Select: []int{0},
			Where:  []mube.QueryPredicate{{GA: 0, Op: mube.OpContains, Value: "-00"}},
			Limit:  5,
		}
		out, err := sys.Execute(q)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("m=%d: %d sources selected, %d GAs\n", m, len(sol.IDs), sol.Schema.Len())
		fmt.Printf("  query scanned %d rows across %d sources (max latency %v, serial %v), merged %d duplicates\n",
			out.Stats.RowsScanned, out.Stats.SourcesQueried,
			out.Stats.MaxLatency, out.Stats.TotalLatency, out.Stats.RowsMerged)
		for _, r := range out.Rows {
			fmt.Printf("  %v  (from sources %v)\n", r.Values, r.Provenance)
		}
		fmt.Println()
	}
	fmt.Println("More sources → more rows scanned and higher latency: the cost side of")
	fmt.Println("µBE's source-selection trade-off (§1 of the paper).")
}
