# Development entry points. `make check` is the tier-1 gate CI runs on every
# commit: build, go vet, the full test suite under the race detector, and
# the repo's own analyzers (cmd/mube-vet).

GO ?= go

.PHONY: check build vet test race mube-vet bench benchall fmt

check: build vet race mube-vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

mube-vet:
	$(GO) run ./cmd/mube-vet ./...

# bench runs the figure-regeneration benchmarks three times each (single-shot
# timings so the three runs expose variance) and archives them as JSON.
bench:
	$(GO) test -bench=Fig -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/mube-benchjson > BENCH_fig.json
	@echo "wrote BENCH_fig.json"

benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

fmt:
	gofmt -w $$(git ls-files '*.go' | grep -v /testdata/)
