# Development entry points. `make check` is the tier-1 gate CI runs on every
# commit: build, go vet, the full test suite under the race detector, and
# the repo's own analyzers (cmd/mube-vet).

GO ?= go

.PHONY: check build vet test race mube-vet bench fmt

check: build vet race mube-vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

mube-vet:
	$(GO) run ./cmd/mube-vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

fmt:
	gofmt -w $$(git ls-files '*.go' | grep -v /testdata/)
