# Development entry points. `make check` is the tier-1 gate CI runs on every
# commit: build, the repo's own analyzers (cmd/mube-vet — early, so policy
# violations fail in seconds instead of after the race suites), go vet, and
# the full test suite under the race detector (including the fault-injection
# suite, see `faults`).

GO ?= go

.PHONY: check build vet test race faults telemetry churn-soak mube-vet vet-json bench bench-delta bench-churn bench-partition bench-smoke trace-smoke trace-golden benchall fmt

check: build mube-vet vet race faults telemetry churn-soak

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# faults runs the fault-tolerance suite under the race detector: the injector
# and prober packages, plus the cancellation paths in the solver layer and
# the session round-trip over a degraded universe. These already run inside
# `race`; the named target re-runs them with -count=1 so the cancellation
# races are actually re-executed (not served from the test cache) on every
# `make check`.
faults:
	$(GO) test -race -count=1 ./internal/fault/ ./internal/probe/
	$(GO) test -race -count=1 ./internal/exp/ -run Faults
	$(GO) test -race -count=1 ./internal/opt/ ./internal/opt/solvers/ ./internal/session/ \
		-run 'Cancel|Deadline|Status|Remaining|Degraded'

# telemetry re-runs the trace-determinism contract uncached on every
# `make check`: bit-identical solves with telemetry on/off at 1 vs 4 workers,
# byte-identical JSONL traces at any worker count, and the golden trace.
telemetry:
	$(GO) test -race -count=1 ./internal/opt/solvers/ -run 'Telemetry|TraceBytes'
	$(GO) test -race -count=1 ./internal/opt/tabu/ -run GoldenTrace
	$(GO) test -race -count=1 ./internal/telemetry/

# churn-soak re-runs the online-integration loop uncached under the race
# detector on every `make check`: the 50-epoch golden trace (byte-identity at
# 1 and 4 workers), the warm-vs-cold differential, and the high-churn soak.
# `-short` shrinks the soak to 8 epochs for constrained CI runners.
churn-soak:
	$(GO) test -race -count=1 -short ./internal/watch/

mube-vet:
	$(GO) run ./cmd/mube-vet ./...

# vet-json emits the machine-readable diagnostics stream (stable field and
# array order, so CI can diff artifacts across runs).
vet-json:
	$(GO) run ./cmd/mube-vet -json ./...

# bench runs the figure-regeneration benchmarks three times each (single-shot
# timings so the three runs expose variance) and archives them as JSON.
bench:
	$(GO) test -bench=Fig -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/mube-benchjson > BENCH_fig.json
	@echo "wrote BENCH_fig.json"

# bench-delta runs the incremental-evaluation micro-benchmarks (counting-union
# churn, fused flip estimates, the delta vs full neighborhood pair) and folds
# them into BENCH_fig.json alongside the figure benchmarks; re-running only
# replaces the Delta records. The metrics line (merge_ops_per_eval,
# delta_hit_rate, ...) from this run wins.
bench-delta:
	$(GO) test -bench=Delta -benchmem -benchtime=1x -count=3 -run=^$$ . | $(GO) run ./cmd/mube-benchjson -merge BENCH_fig.json > BENCH_delta.tmp
	@mv BENCH_delta.tmp BENCH_fig.json
	@echo "merged Delta benchmarks into BENCH_fig.json"

# bench-churn runs the online-integration churn ladder (mube-bench -exp
# churn) and folds its metrics line (warm_evals_frac, q_recovery — both
# direction-aware in mube-benchjson -compare) into BENCH_fig.json.
bench-churn:
	$(GO) run ./cmd/mube-bench -exp churn -scale quick | $(GO) run ./cmd/mube-benchjson -merge BENCH_fig.json > BENCH_churn.tmp
	@mv BENCH_churn.tmp BENCH_fig.json
	@echo "merged churn metrics into BENCH_fig.json"

# bench-partition runs the group-worker differential (mube-bench -exp
# partition: bit-identity self-check at GroupWorkers 1 vs 4, speedup, and the
# candidate-pair index economics) and folds its metrics line
# (partition_speedup, pair_candidates, pair_candidates_frac, shard_build_ns —
# all direction-aware in mube-benchjson -compare) into BENCH_fig.json.
bench-partition:
	$(GO) run ./cmd/mube-bench -exp partition -scale quick | $(GO) run ./cmd/mube-benchjson -merge BENCH_fig.json > BENCH_partition.tmp
	@mv BENCH_partition.tmp BENCH_fig.json
	@echo "merged partition metrics into BENCH_fig.json"

# bench-smoke is CI's non-gating sanity pass: one Fig5 iteration diffed
# against the committed BENCH_fig.json (the -compare table prints to stderr;
# shared-runner timings are too noisy to gate on, so regressions are
# informational here — run `make bench` locally to re-archive), plus the 100k
# and 1M universe presets at reduced solver budget to prove the
# streamed-generation, candidate-index, and partitioned-solve path end to
# end. The 1M run's metrics line (solve_ms_1m, pair_candidates, ...) is
# archived next to the Fig5 compare.
bench-smoke:
	$(GO) test -bench=Fig5 -benchmem -benchtime=1x -count=1 -run=^$$ . | $(GO) run ./cmd/mube-benchjson -compare BENCH_fig.json > BENCH_smoke.json
	@echo "wrote BENCH_smoke.json"
	$(GO) run ./cmd/mube-bench -universe 100k -smoke
	$(GO) run ./cmd/mube-bench -universe 1m -smoke | $(GO) run ./cmd/mube-benchjson -compare BENCH_fig.json > BENCH_smoke_1m.json
	@echo "wrote BENCH_smoke_1m.json"

# trace-smoke records a deterministic watch trace through the CLI
# (virtual-clock timings, so the bytes are machine-independent), renders the
# mube-trace flame and churn reports from it, and diffs its phase profile
# against the committed golden watch trace. The diff is informational — the
# fresh run uses CLI-reachable settings, not the golden test's fault plan —
# but the target proves the whole trace pipeline (record → parse → tree →
# profile → compare) end to end; CI runs it non-gating and uploads the trace.
trace-smoke:
	$(GO) run ./cmd/mube watch -gen 14 -scale 0.002 -epochs 20 -churn 0.2 -seed 7 -m 5 -evals 150 -trace TRACE_watch.jsonl
	$(GO) run ./cmd/mube-trace TRACE_watch.jsonl
	$(GO) run ./cmd/mube-trace -report churn TRACE_watch.jsonl
	$(GO) run ./cmd/mube-trace -compare internal/watch/testdata/golden_trace.jsonl TRACE_watch.jsonl

# trace-golden regenerates every committed trace golden (the tabu solver
# trace, the watch churn trace, and mube-trace's pinned report renderings)
# after an intentional schema or rendering change. Regenerate and commit the
# goldens in the same change that altered the format.
trace-golden:
	$(GO) test ./internal/opt/tabu/ -run TestGoldenTrace -update -count=1
	$(GO) test ./internal/watch/ -run TestGoldenChurnTrace -update -count=1
	$(GO) test ./cmd/mube-trace -update -count=1

benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

fmt:
	gofmt -w $$(git ls-files '*.go' | grep -v /testdata/)
