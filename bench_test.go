// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per figure/table, at a reduced "bench" scale so `go test -bench=.` stays
// in the minutes range) plus micro-benchmarks of the hot paths: schema
// matching, PCSA synopses, and objective evaluation.
//
// The full-scale console harness is `go run ./cmd/mube-bench -scale full`.
package mube_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"mube/internal/constraint"
	"mube/internal/exp"
	"mube/internal/fault"
	"mube/internal/match"
	"mube/internal/minhash"
	"mube/internal/opt"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/synth"
	"mube/internal/telemetry"
)

// benchScale is a small but non-trivial configuration: 1% data, universes to
// 200 sources. Set MUBE_FAULTS (e.g. "rate=0.3,seed=7") to benchmark against
// fault-degraded universes; the plan is echoed by TestMain's mube-config
// line and archived into BENCH_fig.json.
func benchScale() exp.Scale {
	sc := exp.Scale{
		Name:          "bench",
		DataFactor:    0.01,
		UniverseSizes: []int{100, 200},
		ChooseCounts:  []int{10, 20},
		BaseUniverse:  200,
		ChooseDefault: 20,
		MaxIters:      30,
		Patience:      10,
		Sig:           pcsa.Config{NumMaps: 128},
		Seed:          1,
		Repeats:       1,
	}
	if plan, err := fault.ParsePlan(os.Getenv("MUBE_FAULTS")); err == nil && plan.Enabled() {
		sc.Faults = &plan
	}
	return sc
}

// TestMain prints the run configuration as a mube-config line for
// mube-benchjson to archive, so a benchmark run against a fault-degraded
// universe is never silently compared with a clean one. After a benchmark
// run (-bench set) it additionally prints a mube-metrics line with the
// telemetry snapshot of one instrumented tabu solve, which mube-benchjson
// embeds into BENCH_fig.json.
func TestMain(m *testing.M) {
	sc := benchScale()
	plan := "none"
	if sc.Faults != nil {
		plan = sc.Faults.String()
	}
	fmt.Println(telemetry.ConfigLine(
		telemetry.KVStr("faults", plan),
		telemetry.KVInt("eval-workers", sc.Workers()),
		telemetry.KVStr("timeout", "none"),
	))
	code := m.Run()
	if code == 0 && benchRequested() {
		if err := printBenchMetrics(sc); err != nil {
			fmt.Fprintf(os.Stderr, "bench metrics: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// benchRequested reports whether this run executes benchmarks, so plain
// `go test` output stays free of the metrics line.
func benchRequested() bool {
	f := flag.Lookup("test.bench")
	return f != nil && f.Value.String() != ""
}

// printBenchMetrics runs one instrumented tabu solve on the standard bench
// problem and prints its telemetry snapshot as a mube-metrics line: memo hit
// rate, distinct evaluations per second, mean batch occupancy, and the final
// Q(S).
func printBenchMetrics(sc exp.Scale) error {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return err
	}
	p, err := sc.Problem(res, sc.ChooseDefault, constraint.Set{})
	if err != nil {
		return err
	}
	rec := telemetry.New(nil)
	opts := sc.Options(sc.Seed)
	opts.Recorder = rec
	start := time.Now()
	sol, err := sc.Solver(sc.BaseUniverse).Solve(context.Background(), p, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()
	snap := rec.Snapshot()
	computed := snap.Counters["eval.computed"]
	vals := map[string]float64{
		"best_q": sol.Quality,
		"evals":  float64(computed),
	}
	if calls := snap.Counters["eval.calls"]; calls > 0 {
		vals["memo_hit_rate"] = float64(snap.Counters["eval.memo_hits"]) / float64(calls)
	}
	if elapsed > 0 {
		vals["evals_per_sec"] = float64(computed) / elapsed
	}
	if computed > 0 {
		// Full signature merges per distinct evaluation: the cost the
		// incremental paths exist to shrink. Counting-union operations
		// (delta builds, rebases, fused flip estimates) are reported
		// separately so the before/after trade is visible in one line.
		vals["merge_ops_per_eval"] = float64(snap.Counters["pcsa.merges"]) / float64(computed)
		vals["counting_merges_per_eval"] = float64(snap.Counters["pcsa.counting_merges"]) / float64(computed)
		vals["delta_hit_rate"] = float64(snap.Counters["eval.delta_hits"]) / float64(computed)
	}
	if h, ok := snap.Histograms["eval.batch_size"]; ok && h.Count > 0 && h.Max > 0 {
		vals["batch_occupancy"] = h.Mean() / h.Max
	}
	fmt.Println(telemetry.MetricsLine(vals))
	return nil
}

// BenchmarkFig5 regenerates Figure 5 (execution time vs universe size).
func BenchmarkFig5(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig67 regenerates Figures 6–7 (time and quality vs sources to
// choose).
func BenchmarkFig67(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig67(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig67Sequential is Figures 6–7 with the evaluator pinned to one
// worker: the baseline the parallel speedup is measured against.
func BenchmarkFig67Sequential(b *testing.B) {
	sc := benchScale()
	sc.Parallel = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig67(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig67Parallel is Figures 6–7 with the GOMAXPROCS worker pool
// (identical results; see the parallel-speedup section of EXPERIMENTS.md).
func BenchmarkFig67Parallel(b *testing.B) {
	sc := benchScale()
	sc.Parallel = 0
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig67(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (solution cardinality vs Card weight).
func BenchmarkFig8(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (quality of GAs).
func BenchmarkTable1(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCSAExperiment regenerates the §7.3 accuracy claim.
func BenchmarkPCSAExperiment(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.PCSA(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity regenerates the §7.4 robustness experiment.
func BenchmarkSensitivity(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Sensitivity(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolvers regenerates the solver comparison (§6).
func BenchmarkSolvers(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Solvers(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCost regenerates the query-cost experiment (mediator
// execution over growing solutions).
func BenchmarkQueryCost(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.QueryCost(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTenure regenerates the tabu-tenure ablation.
func BenchmarkAblationTenure(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationTenure(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUniverse returns the cached 200-source bench universe.
func benchUniverse(b *testing.B) *synth.Result {
	b.Helper()
	res, err := benchScale().Universe(200)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkMatch20 measures one Match(S) call over 20 sources — the
// dominant cost of an objective evaluation.
func BenchmarkMatch20(b *testing.B) {
	benchMatchN(b, 20)
}

// BenchmarkMatch50 measures Match(S) over 50 sources.
func BenchmarkMatch50(b *testing.B) {
	benchMatchN(b, 50)
}

func benchMatchN(b *testing.B, n int) {
	res := benchUniverse(b)
	m, err := match.New(res.Universe, match.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ids := res.Universe.IDs()[:n]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(ids, constraint.Set{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatcherBuild measures building the interned-name similarity table
// for a 200-source universe (done once per universe).
func BenchmarkMatcherBuild(b *testing.B) {
	res := benchUniverse(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.New(res.Universe, match.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatcherBuildHybrid measures building the per-attribute hybrid
// similarity table (name + MinHash value sketches) for a 200-source
// universe.
func BenchmarkMatcherBuildHybrid(b *testing.B) {
	cfg := synth.Scaled(0.01)
	cfg.NumSources = 200
	cfg.Sig = pcsa.Config{NumMaps: 128}
	cfg.AttrSignatures = true
	res, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.New(res.Universe, match.Config{DataWeight: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHybrid regenerates the data-based-similarity ablation.
func BenchmarkAblationHybrid(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationHybrid(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinHashAdd measures value-sketch insertion (the per-tuple cost of
// cooperating with data-based matching).
func BenchmarkMinHashAdd(b *testing.B) {
	sig := minhash.MustNew(minhash.DefaultK, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.AddUint64(uint64(i))
	}
}

// BenchmarkObjectiveEval measures one full Q(S) evaluation (match + card +
// coverage + redundancy + mttf) for a 20-source subset.
func BenchmarkObjectiveEval(b *testing.B) {
	sc := benchScale()
	res := benchUniverse(b)
	p, err := sc.Problem(res, 20, constraint.Set{})
	if err != nil {
		b.Fatal(err)
	}
	ids := res.Universe.IDs()[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := opt.NewEvaluator(p, 0) // fresh evaluator: no memo hits
		if q := e.Eval(ids); q <= 0 {
			b.Fatal("zero quality")
		}
	}
}

// benchEvalBatch measures scoring one 64-candidate neighborhood of 20-source
// subsets through the batch API on a fresh evaluator (no memo hits).
func benchEvalBatch(b *testing.B, workers int) {
	sc := benchScale()
	res := benchUniverse(b)
	p, err := sc.Problem(res, 20, constraint.Set{})
	if err != nil {
		b.Fatal(err)
	}
	all := res.Universe.IDs()
	cands := make([][]schema.SourceID, 64)
	for i := range cands {
		ids := make([]schema.SourceID, 20)
		copy(ids, all[i:i+20])
		cands[i] = opt.SortIDs(ids)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := opt.NewEvaluator(p, 0)
		e.SetWorkers(workers)
		if qs := e.EvalBatch(cands); qs[0] <= 0 {
			b.Fatal("zero quality")
		}
	}
}

// BenchmarkEvalBatch64Sequential scores the neighborhood on one worker.
func BenchmarkEvalBatch64Sequential(b *testing.B) { benchEvalBatch(b, 1) }

// BenchmarkEvalBatch64Parallel scores it on the GOMAXPROCS worker pool.
func BenchmarkEvalBatch64Parallel(b *testing.B) { benchEvalBatch(b, 0) }

// BenchmarkTabuSolve measures one full tabu run on the standard problem.
func BenchmarkTabuSolve(b *testing.B) {
	sc := benchScale()
	res := benchUniverse(b)
	p, err := sc.Problem(res, 20, constraint.Set{})
	if err != nil {
		b.Fatal(err)
	}
	solver := sc.Solver(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(context.Background(), p, sc.Options(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFlips returns a 64-flip neighborhood (adds, drops, swaps) around a
// 20-source base — the workload EvalMoves hands the evaluator every
// local-search iteration.
func benchFlips(all []schema.SourceID) (base []schema.SourceID, flips []opt.Move) {
	base = make([]schema.SourceID, 20)
	copy(base, all[:20])
	base = opt.SortIDs(base)
	for i := 0; i < 64; i++ {
		switch i % 3 {
		case 0:
			flips = append(flips, opt.Move{Add: all[20+i%40], Drop: -1})
		case 1:
			flips = append(flips, opt.Move{Add: -1, Drop: base[i%20]})
		default:
			flips = append(flips, opt.Move{Add: all[20+i%40], Drop: base[i%20]})
		}
	}
	return base, flips
}

// benchEvalBatchDelta measures scoring the 64-flip neighborhood through
// EvalBatchDelta on a fresh evaluator (no memo hits), with the incremental
// paths on or off. The on/off pair is the before/after of the delta
// optimization on identical work.
func benchEvalBatchDelta(b *testing.B, delta bool) {
	sc := benchScale()
	res := benchUniverse(b)
	p, err := sc.Problem(res, 20, constraint.Set{})
	if err != nil {
		b.Fatal(err)
	}
	base, flips := benchFlips(res.Universe.IDs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := opt.NewEvaluator(p, 0)
		e.SetWorkers(1)
		e.SetDelta(delta)
		if qs := e.EvalBatchDelta(base, flips); len(qs) != len(flips) {
			b.Fatal("short result")
		}
	}
}

// BenchmarkDeltaNeighborhood scores the neighborhood incrementally: one
// counting-union build per batch, O(1 source) per flip.
func BenchmarkDeltaNeighborhood(b *testing.B) { benchEvalBatchDelta(b, true) }

// BenchmarkDeltaNeighborhoodFull is the same neighborhood through the full
// O(|S|) re-merge path (NoDelta) — the baseline the delta path is measured
// against.
func BenchmarkDeltaNeighborhoodFull(b *testing.B) { benchEvalBatchDelta(b, false) }

// BenchmarkDeltaCountingChurn measures the subtractable union's mutation
// kernel: one Add plus one Remove of a 128-map signature, the per-batch
// rebase cost when a local-search base drifts one source.
func BenchmarkDeltaCountingChurn(b *testing.B) {
	res := benchUniverse(b)
	all := res.Universe.IDs()
	c := pcsa.MustNewCounting(res.Universe.SignatureConfig())
	var sigs []*pcsa.Signature
	for _, id := range all[:20] {
		if sig := res.Universe.Source(id).Signature; sig != nil {
			sigs = append(sigs, sig)
			if err := c.Add(sig); err != nil {
				b.Fatal(err)
			}
		}
	}
	if len(sigs) == 0 {
		b.Fatal("no signatures in bench universe")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sigs[i%len(sigs)]
		if err := c.Remove(s); err != nil {
			b.Fatal(err)
		}
		if err := c.Add(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaEstimate measures the fused flip-estimate kernel: estimate
// of (union − drop + add) as a pure read over the counting lanes.
func BenchmarkDeltaEstimate(b *testing.B) {
	res := benchUniverse(b)
	all := res.Universe.IDs()
	c := pcsa.MustNewCounting(res.Universe.SignatureConfig())
	var sigs []*pcsa.Signature
	for _, id := range all {
		if sig := res.Universe.Source(id).Signature; sig != nil {
			sigs = append(sigs, sig)
		}
	}
	for _, sig := range sigs[:20] {
		if err := c.Add(sig); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		add := sigs[20+i%(len(sigs)-20)]
		drop := sigs[i%20]
		if _, err := c.EstimateDelta(add, drop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaSignatureMerge measures the word-level OR kernel: one
// 128-map MergeFrom, the unit of work the delta path eliminates per source.
func BenchmarkDeltaSignatureMerge(b *testing.B) {
	res := benchUniverse(b)
	all := res.Universe.IDs()
	var src *pcsa.Signature
	for _, id := range all {
		if sig := res.Universe.Source(id).Signature; sig != nil {
			src = sig
			break
		}
	}
	dst := src.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.MergeFrom(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCSAAdd measures signature insertion throughput.
func BenchmarkPCSAAdd(b *testing.B) {
	sig := pcsa.MustNew(pcsa.DefaultConfig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig.AddUint64(uint64(i))
	}
}

// BenchmarkPCSAUnion measures OR-merging 20 signatures and estimating the
// union — the Coverage QEF's inner loop.
func BenchmarkPCSAUnion(b *testing.B) {
	res := benchUniverse(b)
	ids := res.Universe.IDs()[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if est := res.Universe.UnionEstimate(ids); est <= 0 {
			b.Fatal("empty union")
		}
	}
}

// BenchmarkGenerateUniverse measures synthetic-universe generation at 1%
// data scale, 100 sources.
func BenchmarkGenerateUniverse(b *testing.B) {
	cfg := synth.Scaled(0.01)
	cfg.NumSources = 100
	cfg.Sig = pcsa.Config{NumMaps: 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemaSubsumes measures the subsumption check used by constraint
// verification.
func BenchmarkSchemaSubsumes(b *testing.B) {
	var gas []schema.GA
	for s := 0; s < 20; s++ {
		gas = append(gas, schema.NewGA(
			schema.AttrRef{Source: schema.SourceID(s), Attr: 0},
			schema.AttrRef{Source: schema.SourceID(s + 20), Attr: 1},
			schema.AttrRef{Source: schema.SourceID(s + 40), Attr: 2},
		))
	}
	m := schema.NewMediated(gas...)
	sub := schema.NewMediated(gas[:10]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Subsumes(sub) {
			b.Fatal("subsumption broken")
		}
	}
}
