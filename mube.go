// Package mube is a Go implementation of µBE ("Matching By Example"), the
// user-guided source selection and schema mediation system of Aboulnaga and
// El Gebaly (ICDE 2007).
//
// µBE targets Internet-scale data integration: instead of fixing a mediated
// schema up front and mapping hundreds of discovered sources onto it, the
// user *explores*. µBE selects a subset of sources and derives a mediated
// schema over them by solving a constrained non-linear optimization problem
// with tabu search; the user inspects the result, pins global attributes
// (GAs) they like as constraints, requires or bans sources, re-weights the
// quality dimensions, and solves again.
//
// # Quality model
//
// A candidate source set S is scored by Q(S) = Σ wᵢ·Fᵢ(S), a weighted sum of
// quality evaluation functions in [0,1]:
//
//   - match:      how coherently the sources' schemas match (3-gram Jaccard
//     clustering by default)
//   - card:       how much data S holds
//   - coverage:   how much of the universe's distinct data S reaches,
//     estimated from mergeable Flajolet–Martin (PCSA) signatures
//   - redundancy: how little S's sources overlap (1 = disjoint)
//   - any user-defined QEF over source characteristics (latency, fees,
//     MTTF, reputation, …) via an aggregation function such as wsum
//
// # Quick start
//
//	res, _ := mube.GenerateUniverse(mube.ScaledSynthConfig(0.01)) // or build your own Universe
//	s, _ := mube.NewSession(mube.SessionConfig{Universe: res.Universe, MaxSources: 20})
//	sol, _ := s.Solve()
//	fmt.Println(sol.Quality, sol.Schema.Render(res.Universe))
//	s.PinSolutionGA(0, 0) // adopt a GA from the output as a constraint
//	sol, _ = s.Solve()    // iterate
//
// See examples/ for complete programs and DESIGN.md for the system map.
package mube

import (
	"mube/internal/compound"
	"mube/internal/constraint"
	"mube/internal/discovery"
	"mube/internal/fault"
	"mube/internal/match"
	"mube/internal/mediator"
	"mube/internal/minhash"
	"mube/internal/opt"
	"mube/internal/opt/solvers"
	"mube/internal/pcsa"
	"mube/internal/probe"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/session"
	"mube/internal/source"
	"mube/internal/store"
	"mube/internal/strutil"
	"mube/internal/synth"
)

// Core vocabulary (see the respective internal packages for full docs).
type (
	// Universe is the set of candidate data sources.
	Universe = source.Universe
	// Source is one candidate data source: schema, data synopses, and
	// characteristics.
	Source = source.Source
	// TupleIterator streams a source's tuples for synopsis construction.
	TupleIterator = source.TupleIterator
	// SourceID identifies a source within a universe.
	SourceID = schema.SourceID
	// AttrRef identifies one attribute of one source.
	AttrRef = schema.AttrRef
	// Schema is a source's attribute list.
	Schema = schema.Schema
	// GA is a Global Attribute: a set of matching attributes from distinct
	// sources.
	GA = schema.GA
	// MediatedSchema is a set of disjoint GAs.
	MediatedSchema = schema.Mediated
	// Constraints hold the user's source and GA constraints.
	Constraints = constraint.Set
	// QEF is one quality dimension.
	QEF = qef.QEF
	// Weights map QEF names to importances summing to 1.
	Weights = qef.Weights
	// CharacteristicQEF scores a named source characteristic through an
	// aggregator.
	CharacteristicQEF = qef.Characteristic
	// Aggregator folds per-source characteristic values into [0,1].
	Aggregator = qef.Aggregator
	// Similarity measures attribute-name likeness in [0,1].
	Similarity = strutil.Similarity
	// MatchConfig parameterizes the Match(S) operator (measure, θ, β,
	// linkage).
	MatchConfig = match.Config
	// MatchResult is Match(S)'s output: schema, quality, validity.
	MatchResult = match.Result
	// Matcher is the Match(S) operator bound to a universe.
	Matcher = match.Matcher
	// Problem is one fully specified optimization problem.
	Problem = opt.Problem
	// Solution is a solver's output.
	Solution = opt.Solution
	// SolveStatus records how a solve ended (completed, deadline, canceled,
	// budget-exhausted).
	SolveStatus = opt.Status
	// Solver maximizes a problem's objective.
	Solver = opt.Solver
	// SolverOptions bound a solver run (seed, budgets).
	SolverOptions = opt.Options
	// Session is the iterative explore–constrain–resolve loop.
	Session = session.Session
	// SessionConfig assembles a session.
	SessionConfig = session.Config
	// SessionSpec is the editable problem specification of an iteration.
	SessionSpec = session.Spec
	// Iteration records one solved spec.
	Iteration = session.Iteration
	// SignatureConfig shapes PCSA hash signatures.
	SignatureConfig = pcsa.Config
	// Signature is a mergeable distinct-count synopsis.
	Signature = pcsa.Signature
	// SynthConfig parameterizes synthetic-universe generation (§7.1).
	SynthConfig = synth.Config
	// SynthResult is a generated universe plus ground truth.
	SynthResult = synth.Result
	// Mediator executes queries over a chosen integration system.
	Mediator = mediator.System
	// Query selects GA columns under conjunctive predicates.
	Query = mediator.Query
	// QueryPredicate filters one GA.
	QueryPredicate = mediator.Predicate
	// QueryOp is a predicate operator.
	QueryOp = mediator.Op
	// QueryResult holds merged rows with provenance plus execution stats.
	QueryResult = mediator.Result
	// RowTable stores one source's rows for the mediator.
	RowTable = store.Table
	// Row is one tuple of values aligned with a source schema.
	Row = store.Row
	// CompoundElement groups attributes of one source for n:m matching
	// (§2.1's compound-element extension).
	CompoundElement = compound.Element
	// CompoundGrouping assigns compound elements to sources.
	CompoundGrouping = compound.Grouping
	// CompoundView is the element-level view of a universe.
	CompoundView = compound.Transformed
	// Correspondence is an n:m match over original attributes.
	Correspondence = compound.Correspondence
	// DiscoveryIndex answers ranked keyword queries over source
	// descriptions — the local stand-in for a hidden-Web search engine.
	DiscoveryIndex = discovery.Index
	// DiscoveryHit is one ranked search result.
	DiscoveryHit = discovery.Hit
	// ValueSketch is a MinHash synopsis of one attribute's value set,
	// enabling data-based attribute similarity (MatchConfig.DataWeight).
	ValueSketch = minhash.Signature
	// FaultPlan is a reproducible, seed-driven fault schedule for simulated
	// source acquisition (error rates, latency, flap/outage windows).
	FaultPlan = fault.Plan
	// Prober acquires sources from possibly-failing tuple streams with
	// retry/backoff and a circuit breaker, degrading instead of failing.
	Prober = probe.Prober
	// ProbePolicy bounds the prober's persistence (attempts, backoff,
	// deadline, breaker limit).
	ProbePolicy = probe.Policy
	// ProbeCandidate is one source awaiting acquisition.
	ProbeCandidate = probe.Candidate
	// HealthReport records per-source acquisition outcomes for a universe.
	HealthReport = probe.HealthReport
)

// Predicate operators for Query.Where.
const (
	OpEq       = mediator.OpEq
	OpContains = mediator.OpContains
	OpPrefix   = mediator.OpPrefix
)

// NewMediator assembles a queryable integration system from a universe, the
// mediated schema of a solution, the selected sources, and one row table per
// source.
func NewMediator(u *Universe, med MediatedSchema, sources []SourceID, tables map[SourceID]*RowTable) (*Mediator, error) {
	return mediator.New(u, med, sources, tables)
}

// NewRowTable returns an empty row table over a source schema.
func NewRowTable(sch Schema) *RowTable { return store.NewTable(sch) }

// MaterializeRows converts a synthetic result generated with
// SynthConfig.KeepTuples into row tables for the given sources.
func MaterializeRows(res *SynthResult, ids []SourceID) (map[SourceID]*RowTable, error) {
	return synth.Materialize(res, ids)
}

// CompoundTransform derives the element-level view of a universe under a
// grouping, enabling n:m matching as 1:1 matching over compound elements.
func CompoundTransform(u *Universe, g CompoundGrouping) (*CompoundView, error) {
	return compound.Transform(u, g)
}

// AutoGroupCompounds proposes compound elements heuristically (attributes
// sharing a head token, e.g. "after date"/"before date" → "date").
func AutoGroupCompounds(u *Universe) CompoundGrouping { return compound.AutoGroup(u) }

// BuildDiscoveryIndex indexes a universe for keyword source discovery.
func BuildDiscoveryIndex(u *Universe) *DiscoveryIndex { return discovery.Build(u) }

// NewValueSketch returns an empty MinHash value sketch with k slots (use
// DefaultValueSketchK) under the given seed; attach sketches to
// Source.AttrSignatures to enable data-based matching.
func NewValueSketch(k int, seed uint64) (*ValueSketch, error) { return minhash.New(k, seed) }

// DefaultValueSketchK is the default value-sketch width (1 KiB, ≈9% Jaccard
// standard error).
const DefaultValueSketchK = minhash.DefaultK

// DefaultSignatureConfig is the PCSA shape µBE uses by default (256 bitmaps,
// ≈5% standard error, 2 KiB per source).
var DefaultSignatureConfig = pcsa.DefaultConfig

// NewUniverse returns an empty universe whose cooperative sources use the
// given signature configuration.
func NewUniverse(cfg SignatureConfig) *Universe { return source.NewUniverse(cfg) }

// SourceFromTuples builds a cooperative source by scanning its tuples once,
// computing the cardinality and PCSA signature.
func SourceFromTuples(name string, sch Schema, it TupleIterator, cfg SignatureConfig) (*Source, error) {
	return source.FromTuples(name, sch, it, cfg)
}

// TupleSlice adapts an in-memory tuple list to a TupleIterator.
func TupleSlice(tuples []uint64) TupleIterator { return source.NewSliceIterator(tuples) }

// UncooperativeSource builds a source that exports only its schema and
// characteristics; it scores 0 on the data-dependent QEFs but can still be
// selected.
func UncooperativeSource(name string, sch Schema) *Source {
	return source.Uncooperative(name, sch)
}

// NewSchema builds a schema over the given attribute names.
func NewSchema(attrs ...string) Schema { return schema.NewSchema(attrs...) }

// NewGA builds a GA over the given attribute references.
func NewGA(refs ...AttrRef) GA { return schema.NewGA(refs...) }

// NewMediated builds a mediated schema over the given GAs.
func NewMediated(gas ...GA) MediatedSchema { return schema.NewMediated(gas...) }

// NewSession opens an iterative µBE session.
func NewSession(cfg SessionConfig) (*Session, error) { return session.New(cfg) }

// NewMatcher builds a standalone Match(S) operator for u.
func NewMatcher(u *Universe, cfg MatchConfig) (*Matcher, error) { return match.New(u, cfg) }

// MainQEFs returns the paper's four main quality dimensions.
func MainQEFs() []QEF { return qef.MainQEFs() }

// UniformWeights assigns equal weight to each QEF.
func UniformWeights(qefs []QEF) Weights { return qef.Uniform(qefs) }

// PaperWeights returns the §7.1 default weights (match 0.25, card 0.25,
// coverage 0.2, redundancy 0.15, mttf 0.15).
func PaperWeights() Weights { return qef.PaperDefaults() }

// WSum is the paper's cardinality-weighted aggregation function for source
// characteristics.
func WSum() Aggregator { return qef.WSum{} }

// AggregatorByName resolves "wsum", "mean", "min", or "max".
func AggregatorByName(name string) (Aggregator, error) { return qef.AggregatorByName(name) }

// TriGramJaccard is the prototype's default attribute similarity measure.
var TriGramJaccard = strutil.TriGramJaccard

// SimilarityByName resolves a built-in similarity measure (e.g.
// "3gram-jaccard", "jaro-winkler", "levenshtein").
func SimilarityByName(name string) Similarity { return strutil.ByName(name) }

// Solve statuses (see SolveStatus).
const (
	SolveCompleted = opt.StatusCompleted
	SolveDeadline  = opt.StatusDeadline
	SolveCanceled  = opt.StatusCanceled
	SolveExhausted = opt.StatusExhausted
)

// ParseFaultPlan parses a canonical fault-plan string such as
// "rate=0.3,seed=7,latency=20ms,flap=2s:0.25" ("" and "none" disable).
func ParseFaultPlan(s string) (FaultPlan, error) { return fault.ParsePlan(s) }

// NewProber returns a fault-tolerant source prober. clock may be nil (virtual
// clock from the zero time), inj may be nil (fault-free acquisition); seed
// drives backoff jitter.
func NewProber(policy ProbePolicy, plan FaultPlan, seed int64) *Prober {
	return probe.New(policy, nil, fault.NewInjector(plan), seed)
}

// DefaultSolver returns tabu search, µBE's default solver.
func DefaultSolver() Solver { return solvers.Default() }

// SolverByName resolves "tabu", "sls", "anneal", "pso", "random", or
// "exhaustive".
func SolverByName(name string) (Solver, error) { return solvers.ByName(name) }

// AllSolvers lists the heuristic solvers in comparison order.
func AllSolvers() []Solver { return solvers.All() }

// GenerateUniverse builds a synthetic universe per the paper's §7.1 recipe.
func GenerateUniverse(cfg SynthConfig) (*SynthResult, error) { return synth.Generate(cfg) }

// DefaultSynthConfig is the paper's full-scale generation recipe: 700
// sources, 50 BAMM-style Books schemas plus perturbed copies, Zipf
// cardinalities in [10k, 1M], a 4M-tuple pool, MTTF ~ Normal(100, 40).
func DefaultSynthConfig() SynthConfig { return synth.Defaults() }

// ScaledSynthConfig shrinks the default data volume by factor (e.g. 0.01)
// for fast experimentation; schema generation is unchanged.
func ScaledSynthConfig(factor float64) SynthConfig { return synth.Scaled(factor) }
