// Command mube is the µBE command-line tool: generate or inspect source
// universes, solve one-shot source-selection/schema-mediation problems, and
// run the iterative feedback loop interactively (the terminal counterpart of
// the paper's Figure 4 UI).
//
// Subcommands:
//
//	mube gen -n 200 -scale 0.01 -o universe.json     generate a synthetic universe
//	mube inspect -u universe.json [-source 3]        summarize a universe
//	mube find -u universe.json author price          keyword source discovery
//	mube solve -u universe.json -m 20 [...]          one optimization run
//	mube interactive -u universe.json -m 20          iterative REPL session
//	mube watch -epochs 20 -churn 0.1 -trace t.jsonl  online integration under churn
//
// Run any subcommand with -h for its flags.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "find":
		err = cmdFind(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "interactive":
		err = cmdInteractive(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mube: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mube: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mube <subcommand> [flags]

subcommands:
  gen          generate a synthetic universe (BAMM-style Books domain)
  inspect      summarize a universe file
  find         rank sources against a keyword query (source discovery)
  solve        solve one source-selection / schema-mediation problem
  interactive  iterative µBE session (solve, give feedback, re-solve)
  watch        online-integration loop: churn epochs, incremental updates, warm re-solves

run 'mube <subcommand> -h' for flags`)
}
