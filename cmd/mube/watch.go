package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mube/internal/fault"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/source"
	"mube/internal/synth"
	"mube/internal/telemetry"
	"mube/internal/watch"
)

// cmdWatch runs the online-integration loop: epochs of seeded churn over a
// universe, with incremental updates and warm-started re-solves.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	universe := fs.String("u", "", "universe file (default: generate one with -gen)")
	gen := fs.Int("gen", 100, "with no -u: generate this many synthetic sources")
	scale := fs.Float64("scale", 0.01, "with no -u: data scale factor for generation and arrivals")
	epochs := fs.Int("epochs", 20, "number of churn epochs")
	churn := fs.Float64("churn", 0.1, "expected fraction of sources touched per epoch (deaths + drift)")
	seed := fs.Int64("seed", 1, "churn-schedule and solver seed")
	m := fs.Int("m", 20, "maximum number of sources to select")
	theta := fs.Float64("theta", match.DefaultTheta, "matching threshold θ")
	solver := fs.String("solver", "tabu", "solver: tabu|sls|anneal|pso|random|exhaustive")
	evals := fs.Int("evals", 3000, "objective evaluation budget per epoch")
	faultRate := fs.Float64("fault-rate", 0, "per-attempt probe failure probability during reprobe")
	cold := fs.Bool("cold", false, "also run the rebuild+cold-solve reference each epoch (differential mode)")
	delta := fs.Bool("delta", false, "restrict warm re-solves to the carried solution plus the epoch's touched sources")
	trace := fs.String("trace", "", "write the per-epoch JSONL watch trace to this file")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /spans, and pprof on this address, e.g. localhost:6060 (\"\" = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var u *source.Universe
	arrivals := synth.Scaled(*scale)
	if *universe != "" {
		var err error
		if u, err = loadUniverse(*universe); err != nil {
			return err
		}
		arrivals.Sig = u.SignatureConfig()
	} else {
		cfg := arrivals
		cfg.NumSources = *gen
		cfg.Seed = *seed
		var err error
		if u, err = synth.GenerateUniverse(cfg); err != nil {
			return err
		}
	}

	cfg := watch.Config{
		Universe:   u,
		Epochs:     *epochs,
		Seed:       *seed,
		ChurnRate:  *churn,
		Arrivals:   arrivals,
		Match:      match.Config{Theta: *theta},
		MaxSources: *m,
		Solver:     *solver,
		Options:    opt.Options{MaxEvals: *evals},
		Cold:       *cold,
		DeltaPool:  *delta,
	}
	if *faultRate > 0 {
		cfg.Faults = fault.Plan{Rate: *faultRate, HandshakeFrac: 0.3}
	}

	var sink *telemetry.JSONLSink
	var traceFile *os.File
	var ring *telemetry.SpanRing
	if *debugAddr != "" {
		ring = telemetry.NewSpanRing(0)
	}
	if *trace != "" || ring != nil {
		var sinks []telemetry.Sink
		if *trace != "" {
			f, err := openTraceFile(*trace, false)
			if err != nil {
				return err
			}
			traceFile = f
			sink = telemetry.NewJSONLSink(f)
			sinks = append(sinks, sink)
		}
		if ring != nil {
			sinks = append(sinks, ring)
		}
		// Share the loop's virtual clock so epoch events carry virtual t_ns
		// (the /spans ring reports virtual durations for the same reason).
		clk := fault.NewVirtualClock(time.Unix(0, 0).UTC())
		cfg.Clock = clk
		cfg.Recorder = telemetry.NewClocked(telemetry.Tee(sinks...), clk)
		// Keep per-iteration solver events out of the epoch trace.
		cfg.Options.Recorder = telemetry.New(nil)
	}
	if ring != nil {
		// /metrics serves the solver-side recorder: that is where the
		// counters live (eval.calls, solver.iters, pcsa.merges); the epoch
		// recorder only carries spans, which /spans reads from the ring.
		srv, err := telemetry.Serve(*debugAddr, cfg.Options.Recorder, ring)
		if err != nil {
			if traceFile != nil {
				_ = traceFile.Close()
			}
			return err
		}
		defer srv.Close()
		fmt.Printf("debug: /metrics, /spans, and pprof on http://%s/\n", srv.Addr())
	}

	l, err := watch.New(cfg)
	if err != nil {
		return err
	}
	fmt.Println(telemetry.Header("mube watch",
		telemetry.KVInt("sources", u.Len()),
		telemetry.KVInt("epochs", *epochs),
		telemetry.KVStr("churn", fmt.Sprintf("%g", *churn)),
		telemetry.KVStr("solver", *solver),
	))
	reports, err := l.Run(context.Background())
	if err != nil {
		return err
	}
	baseQ := reports[0].QAfter
	for _, r := range reports {
		fmt.Println(r.String())
	}
	last := reports[len(reports)-1]
	fmt.Printf("\nbaseline q=%.6f final q=%.6f recovery=%.3f after %d epochs\n",
		baseQ, last.QAfter, last.QRecovery(baseQ), l.Epoch())
	if traceFile != nil {
		if err := sink.Err(); err != nil {
			_ = traceFile.Close()
			return fmt.Errorf("trace %s: %w", *trace, err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d epoch events to %s\n", len(reports), *trace)
	}
	return nil
}
