package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mube/internal/schema"
	"mube/internal/session"
	"mube/internal/source"
)

// cmdInteractive runs the iterative µBE loop as a line-oriented REPL — the
// terminal counterpart of the paper's Figure 4 UI: solve, inspect the
// solution, edit constraints and weights, solve again.
func cmdInteractive(args []string) error {
	fs := flag.NewFlagSet("interactive", flag.ExitOnError)
	sf := registerSessionFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, u, err := sf.buildSession()
	if err != nil {
		return err
	}
	return runREPL(s, u, os.Stdin, os.Stdout)
}

// runREPL drives one session over the given streams; split from
// cmdInteractive so tests can script it.
func runREPL(s *session.Session, u *source.Universe, in io.Reader, out io.Writer) error {
	fmt.Fprintf(out, "µBE interactive session over %d sources. Type 'help' for commands.\n", u.Len())
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "µbe> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, rest := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit", "q":
			return nil
		case "help", "h":
			printREPLHelp(out)
		case "solve":
			if _, err := s.Solve(); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			printSolution(out, u, s.Last())
		case "show":
			if it := s.Last(); it != nil {
				printSolution(out, u, it)
			} else {
				fmt.Fprintln(out, "no iterations yet; type 'solve'")
			}
		case "spec":
			printSpec(out, s)
		case "require":
			forEachID(out, rest, func(id schema.SourceID) {
				if err := s.RequireSource(id); err != nil {
					fmt.Fprintln(out, "error:", err)
				}
			})
		case "drop":
			forEachID(out, rest, s.DropSourceConstraint)
		case "pin":
			// pin <iteration> <ga-index>, or "pin last <ga-index>"
			if len(rest) != 2 {
				fmt.Fprintln(out, "usage: pin <iteration|last> <ga-index>")
				continue
			}
			iter := len(s.History()) - 1
			if rest[0] != "last" {
				if v, err := strconv.Atoi(rest[0]); err == nil {
					iter = v
				} else {
					fmt.Fprintln(out, "error:", err)
					continue
				}
			}
			gaIdx, err := strconv.Atoi(rest[1])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if err := s.PinSolutionGA(iter, gaIdx); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "bridge":
			// bridge s0.a1 s3.a0 ... — pin a hand-built GA constraint.
			refs, err := parseRefs(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if err := s.PinGA(schema.NewGA(refs...)); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "clear":
			s.ClearConstraints()
		case "weight":
			if len(rest) != 2 {
				fmt.Fprintln(out, "usage: weight <qef-name> <value in [0,1]>")
				continue
			}
			v, err := strconv.ParseFloat(rest[1], 64)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if err := s.SetWeight(rest[0], v); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "theta":
			setFloat(out, rest, s.SetTheta)
		case "beta":
			setInt(out, rest, s.SetBeta)
		case "m":
			setInt(out, rest, s.SetMaxSources)
		case "solver":
			if len(rest) != 1 {
				fmt.Fprintln(out, "usage: solver <tabu|sls|anneal|pso|random|exhaustive>")
				continue
			}
			if err := s.SetSolver(rest[0]); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "source":
			forEachID(out, rest, func(id schema.SourceID) {
				if int(id) >= u.Len() {
					fmt.Fprintln(out, "error: out of range")
					return
				}
				src := u.Source(id)
				fmt.Fprintf(out, "[%3d] %-18s %s\n", id, src.Name, src.Schema)
			})
		case "save":
			if len(rest) != 1 {
				fmt.Fprintln(out, "usage: save <file>   (writes the current spec; reload with mube solve/interactive -spec)")
				continue
			}
			f, err := os.Create(rest[0])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			err = s.SaveSpec(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "wrote", rest[0])
			}
		case "report":
			if len(rest) != 1 {
				fmt.Fprintln(out, "usage: report <file>")
				continue
			}
			f, err := os.Create(rest[0])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			err = s.WriteReport(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "wrote", rest[0])
			}
		default:
			fmt.Fprintf(out, "unknown command %q; type 'help'\n", cmd)
		}
	}
}

// printREPLHelp lists the REPL commands.
func printREPLHelp(out io.Writer) {
	fmt.Fprint(out, `commands:
  solve                      run one µBE iteration
  show                       reprint the last solution
  spec                       show current weights, θ, β, m, constraints
  require <id> [id...]       add source constraints
  drop <id> [id...]          remove source constraints
  pin <iter|last> <ga>       adopt a GA from a past solution as a constraint
  bridge s<i>.a<j> s<k>.a<l> pin a hand-built GA constraint (≥2 refs)
  clear                      remove all constraints
  weight <qef> <v>           set one QEF weight (others rescale)
  theta <v> | beta <n> | m <n>
  solver <name>              tabu|sls|anneal|pso|random|exhaustive
  source <id> [id...]        show source schemas
  save <file>                save the current spec (resume with -spec)
  report <file>              write the session history as JSON
  quit
`)
}

// printSpec shows the editable problem specification.
func printSpec(out io.Writer, s *session.Session) {
	spec := s.Spec()
	fmt.Fprintf(out, "solver=%s  m=%d  theta=%.2f  beta=%d\n", spec.Solver, spec.MaxSources, spec.Theta, spec.Beta)
	fmt.Fprint(out, "weights:")
	for _, name := range spec.Weights.Names() {
		fmt.Fprintf(out, " %s=%.3f", name, spec.Weights[name])
	}
	fmt.Fprintln(out)
	if len(spec.Constraints.Sources) > 0 {
		fmt.Fprintf(out, "source constraints: %v\n", spec.Constraints.Sources)
	}
	for i, g := range spec.Constraints.GAs {
		fmt.Fprintf(out, "GA constraint %d: %v\n", i, g)
	}
}

// forEachID parses each argument as a source ID and applies fn.
func forEachID(out io.Writer, args []string, fn func(schema.SourceID)) {
	if len(args) == 0 {
		fmt.Fprintln(out, "expected at least one source id")
		return
	}
	for _, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fn(schema.SourceID(v))
	}
}

// parseRefs parses "s<i>.a<j>" attribute references.
func parseRefs(args []string) ([]schema.AttrRef, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("a GA constraint needs at least two attribute refs")
	}
	refs := make([]schema.AttrRef, 0, len(args))
	for _, a := range args {
		var s, at int
		if _, err := fmt.Sscanf(a, "s%d.a%d", &s, &at); err != nil {
			return nil, fmt.Errorf("bad ref %q (want s<i>.a<j>)", a)
		}
		refs = append(refs, schema.AttrRef{Source: schema.SourceID(s), Attr: at})
	}
	return refs, nil
}

// setFloat applies a one-float-argument setter.
func setFloat(out io.Writer, args []string, fn func(float64) error) {
	if len(args) != 1 {
		fmt.Fprintln(out, "expected one value")
		return
	}
	v, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if err := fn(v); err != nil {
		fmt.Fprintln(out, "error:", err)
	}
}

// setInt applies a one-int-argument setter.
func setInt(out io.Writer, args []string, fn func(int) error) {
	if len(args) != 1 {
		fmt.Fprintln(out, "expected one value")
		return
	}
	v, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if err := fn(v); err != nil {
		fmt.Fprintln(out, "error:", err)
	}
}
