package main

import (
	"testing"

	"mube/internal/schema"
	"mube/internal/testutil"
)

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("match=0.5,card=0.3, coverage =0.2")
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(w["match"], 0.5) || !testutil.AlmostEqual(w["card"], 0.3) || !testutil.AlmostEqual(w["coverage"], 0.2) {
		t.Errorf("weights = %v", w)
	}
	for _, bad := range []string{"match", "match=x", "=0.5", "match=0.5,,"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
}

func TestParseRefs(t *testing.T) {
	refs, err := parseRefs([]string{"s0.a1", "s12.a0"})
	if err != nil {
		t.Fatal(err)
	}
	want := []schema.AttrRef{{Source: 0, Attr: 1}, {Source: 12, Attr: 0}}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
	for _, bad := range [][]string{
		{"s0.a1"},        // needs ≥ 2
		{"s0.a1", "x"},   // malformed
		{"0.1", "s1.a0"}, // missing prefix
		{},               // empty
	} {
		if _, err := parseRefs(bad); err == nil {
			t.Errorf("parseRefs(%v) accepted", bad)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]float64{"c": 1, "a": 2, "b": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sortedKeys = %v", got)
	}
}
