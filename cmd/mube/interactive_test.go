package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mube/internal/opt"
	"mube/internal/pcsa"
	"mube/internal/session"
	"mube/internal/source"
	"mube/internal/synth"
	"mube/internal/testutil"
)

// testUniverse generates a small synthetic universe for CLI tests.
func testUniverse(t *testing.T) *source.Universe {
	t.Helper()
	cfg := synth.Scaled(0.002)
	cfg.NumSources = 40
	cfg.Seed = 3
	cfg.Sig = pcsa.Config{NumMaps: 64}
	res, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Universe
}

// newREPLSession opens a fast session over the test universe.
func newREPLSession(t *testing.T, u *source.Universe) *session.Session {
	t.Helper()
	s, err := session.New(session.Config{
		Universe:      u,
		MaxSources:    6,
		SolverOptions: opt.Options{Seed: 1, MaxEvals: 200, MaxIters: 30, Patience: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// script runs the REPL over the given input lines and returns its output.
func script(t *testing.T, u *source.Universe, s *session.Session, lines ...string) string {
	t.Helper()
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	var out bytes.Buffer
	if err := runREPL(s, u, in, &out); err != nil {
		t.Fatalf("runREPL: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestREPLSolveAndFeedback(t *testing.T) {
	u := testUniverse(t)
	s := newREPLSession(t, u)
	out := script(t, u, s,
		"help",
		"spec",
		"solve",
		"pin last 0",
		"require 3",
		"spec",
		"solve",
		"show",
		"quit",
	)
	if !strings.Contains(out, "overall quality Q(S)") {
		t.Errorf("no solution printed:\n%s", out)
	}
	if !strings.Contains(out, "source constraints: [3]") {
		t.Errorf("require not reflected in spec:\n%s", out)
	}
	if !strings.Contains(out, "GA constraint 0:") {
		t.Errorf("pin not reflected in spec:\n%s", out)
	}
	if len(s.History()) != 2 {
		t.Errorf("history = %d iterations", len(s.History()))
	}
}

func TestREPLParameterCommands(t *testing.T) {
	u := testUniverse(t)
	s := newREPLSession(t, u)
	script(t, u, s,
		"theta 0.7",
		"beta 3",
		"m 4",
		"weight card 0.5",
		"solver anneal",
		"quit",
	)
	spec := s.Spec()
	if !testutil.AlmostEqual(spec.Theta, 0.7) || spec.Beta != 3 || spec.MaxSources != 4 || spec.Solver != "anneal" {
		t.Errorf("spec = %+v", spec)
	}
	if !testutil.AlmostEqual(spec.Weights["card"], 0.5) {
		t.Errorf("card weight = %v", spec.Weights["card"])
	}
}

func TestREPLBridgeAndClear(t *testing.T) {
	u := testUniverse(t)
	s := newREPLSession(t, u)
	script(t, u, s,
		"bridge s0.a0 s1.a0",
		"clear",
		"quit",
	)
	if !s.Spec().Constraints.Empty() {
		t.Errorf("constraints not cleared: %+v", s.Spec().Constraints)
	}
}

func TestREPLErrorsAreReportedNotFatal(t *testing.T) {
	u := testUniverse(t)
	s := newREPLSession(t, u)
	out := script(t, u, s,
		"frobnicate",
		"pin last",     // wrong arity
		"pin 9 9",      // out of range
		"bridge s0.a0", // too few refs
		"weight nope 0.5",
		"theta 7",
		"solver warp",
		"require",
		"require xyz",
		"source 9999",
		"save",
		"report",
		"quit",
	)
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported:\n%s", out)
	}
	count := strings.Count(out, "error:") + strings.Count(out, "usage:") + strings.Count(out, "expected")
	if count < 8 {
		t.Errorf("expected ≥8 error/usage messages, got %d:\n%s", count, out)
	}
}

func TestREPLSaveAndReportFiles(t *testing.T) {
	u := testUniverse(t)
	s := newREPLSession(t, u)
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	repPath := filepath.Join(dir, "rep.json")
	out := script(t, u, s,
		"require 2",
		"solve",
		"save "+specPath,
		"report "+repPath,
		"quit",
	)
	if !strings.Contains(out, "wrote "+specPath) || !strings.Contains(out, "wrote "+repPath) {
		t.Fatalf("files not written:\n%s", out)
	}
	// The saved spec loads into a fresh session with the constraint intact.
	f, err := os.Open(specPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := session.LoadSpec(f, session.Config{Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Spec().Constraints.Sources; len(got) != 1 || got[0] != 2 {
		t.Errorf("loaded constraints = %v", got)
	}
	if fi, err := os.Stat(repPath); err != nil || fi.Size() == 0 {
		t.Errorf("report file empty: %v", err)
	}
}

func TestREPLShowBeforeSolve(t *testing.T) {
	u := testUniverse(t)
	s := newREPLSession(t, u)
	out := script(t, u, s, "show", "quit")
	if !strings.Contains(out, "no iterations yet") {
		t.Errorf("missing guidance:\n%s", out)
	}
}
