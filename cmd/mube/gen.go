package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/synth"
)

// cmdGen generates a synthetic universe and writes it as JSON.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 200, "number of sources")
	seed := fs.Int64("seed", 1, "generation seed")
	scale := fs.Float64("scale", 0.01, "data scale factor (1 = paper's 4M-tuple pool)")
	out := fs.String("o", "universe.json", "output file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := synth.Scaled(*scale)
	cfg.NumSources = *n
	cfg.Seed = *seed
	res, err := synth.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := res.Universe.WriteJSON(w); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("wrote %d sources (%d conformant, pool scale %g, seed %d) to %s\n",
			res.Universe.Len(), len(res.Conformant), *scale, *seed, *out)
	}
	return nil
}

// cmdInspect summarizes a universe file.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("u", "universe.json", "universe file")
	sourceID := fs.Int("source", -1, "show one source in detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u, err := loadUniverse(*in)
	if err != nil {
		return err
	}

	if *sourceID >= 0 {
		if *sourceID >= u.Len() {
			return fmt.Errorf("source %d out of range [0,%d)", *sourceID, u.Len())
		}
		s := u.Source(schema.SourceID(*sourceID))
		fmt.Printf("source %d: %s\n", *sourceID, s.Name)
		fmt.Printf("  schema:      %s\n", s.Schema)
		if s.Cooperative() {
			fmt.Printf("  cardinality: %d tuples (≈%.0f distinct)\n", s.Cardinality, s.Signature.Estimate())
		} else {
			fmt.Printf("  cardinality: (uncooperative)\n")
		}
		names := make([]string, 0, len(s.Characteristics))
		for k := range s.Characteristics {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("  %-12s %.2f\n", k+":", s.Characteristics[k])
		}
		return nil
	}

	coop := 0
	for _, s := range u.Sources() {
		if s.Cooperative() {
			coop++
		}
	}
	fmt.Printf("universe: %d sources (%d cooperative), %d attributes\n",
		u.Len(), coop, u.NumAttrs())
	fmt.Printf("total tuples: %d, distinct (estimated): %.0f\n",
		u.TotalCardinality(), u.UnionAllEstimate())
	if chars := u.CharacteristicNames(); len(chars) > 0 {
		fmt.Printf("characteristics: %v\n", chars)
	}
	return nil
}

// loadUniverse reads a universe JSON file.
func loadUniverse(path string) (*source.Universe, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return source.ReadJSON(f)
}
