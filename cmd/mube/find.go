package main

import (
	"flag"
	"fmt"

	"mube/internal/discovery"
)

// cmdFind ranks sources in a universe file against a keyword query — the
// local stand-in for the hidden-Web search engine step of the µBE pipeline,
// and the quickest way to locate source IDs to constrain in a session.
func cmdFind(args []string) error {
	fs := flag.NewFlagSet("find", flag.ExitOnError)
	in := fs.String("u", "universe.json", "universe file")
	k := fs.Int("k", 10, "maximum hits (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("find: provide query keywords, e.g. `mube find -u u.json author price`")
	}
	query := ""
	for i, a := range fs.Args() {
		if i > 0 {
			query += " "
		}
		query += a
	}
	u, err := loadUniverse(*in)
	if err != nil {
		return err
	}
	idx := discovery.Build(u)
	hits := idx.Search(query, *k)
	if len(hits) == 0 {
		fmt.Println("no sources match")
		return nil
	}
	for _, h := range hits {
		fmt.Printf("[%3d] %.4f  %s  (matched: %v)\n", h.Source, h.Score, idx.DescribeHit(h), h.Matched)
	}
	return nil
}
