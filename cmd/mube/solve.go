package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/session"
	"mube/internal/source"
	"mube/internal/strutil"
	"mube/internal/telemetry"
)

// sessionFlags are the flags shared by solve and interactive.
type sessionFlags struct {
	universe *string
	m        *int
	theta    *float64
	beta     *int
	solver   *string
	seed     *int64
	evals    *int
	weights  *string
	require  *string
	sim      *string
	spec     *string
}

// register installs the shared flags on fs.
func registerSessionFlags(fs *flag.FlagSet) *sessionFlags {
	return &sessionFlags{
		universe: fs.String("u", "universe.json", "universe file"),
		m:        fs.Int("m", 20, "maximum number of sources to select"),
		theta:    fs.Float64("theta", match.DefaultTheta, "matching threshold θ"),
		beta:     fs.Int("beta", match.DefaultBeta, "minimum GA size β"),
		solver:   fs.String("solver", "tabu", "solver: tabu|sls|anneal|pso|random|exhaustive"),
		seed:     fs.Int64("seed", 1, "solver seed"),
		evals:    fs.Int("evals", 3000, "objective evaluation budget"),
		weights:  fs.String("weights", "", "QEF weights, e.g. match=0.3,card=0.3,coverage=0.2,redundancy=0.1,mttf=0.1"),
		require:  fs.String("require", "", "comma-separated source IDs to require"),
		sim:      fs.String("sim", "", "similarity measure (default 3gram-jaccard)"),
		spec:     fs.String("spec", "", "load a saved session spec (overrides the other problem flags)"),
	}
}

// buildSession assembles a session from the flags.
func (sf *sessionFlags) buildSession() (*session.Session, *source.Universe, error) {
	u, err := loadUniverse(*sf.universe)
	if err != nil {
		return nil, nil, err
	}
	if *sf.spec != "" {
		f, err := os.Open(*sf.spec)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		s, err := session.LoadSpec(f, session.Config{Universe: u})
		if err != nil {
			return nil, nil, err
		}
		return s, u, nil
	}
	mcfg := match.Config{Theta: *sf.theta, Beta: *sf.beta}
	if *sf.sim != "" {
		mcfg.Similarity = strutil.ByName(*sf.sim)
		if mcfg.Similarity == nil {
			return nil, nil, fmt.Errorf("unknown similarity measure %q", *sf.sim)
		}
	}
	cfg := session.Config{
		Universe:      u,
		Match:         mcfg,
		MaxSources:    *sf.m,
		Solver:        *sf.solver,
		SolverOptions: opt.Options{Seed: *sf.seed, MaxEvals: *sf.evals},
	}
	s, err := session.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if *sf.weights != "" {
		w, err := parseWeights(*sf.weights)
		if err != nil {
			return nil, nil, err
		}
		if err := s.SetWeights(w); err != nil {
			return nil, nil, err
		}
	}
	if *sf.require != "" {
		for _, part := range strings.Split(*sf.require, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, fmt.Errorf("bad source id %q", part)
			}
			if err := s.RequireSource(schema.SourceID(id)); err != nil {
				return nil, nil, err
			}
		}
	}
	return s, u, nil
}

// cmdSolve runs one optimization and prints the solution.
func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	sf := registerSessionFlags(fs)
	report := fs.String("report", "", "also write a JSON report to this file")
	timeout := fs.Duration("timeout", 0, "wall-clock solve deadline (0 = none); on expiry the best-so-far solution is printed with status \"deadline\"")
	trace := fs.String("trace", "", "write a JSONL solver trace to this file (overrides a loaded spec's recorded path)")
	metrics := fs.Bool("metrics", false, "print a telemetry metrics summary after the solution")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /spans, and pprof on this address, e.g. localhost:6060 (\"\" = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, u, err := sf.buildSession()
	if err != nil {
		return err
	}
	tel, err := attachTelemetry(s, *trace, *metrics, *debugAddr)
	if err != nil {
		return err
	}
	if tel.rec != nil {
		printSolveHeader(os.Stdout, s, tel.path)
	}
	if tel.srv != nil {
		fmt.Printf("debug: /metrics, /spans, and pprof on http://%s/\n", tel.srv.Addr())
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if _, err := s.SolveContext(ctx); err != nil {
		_ = tel.close()
		return err
	}
	printSolution(os.Stdout, u, s.Last())
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			_ = tel.close()
			return err
		}
		defer f.Close()
		if err := s.WriteReport(f); err != nil {
			_ = tel.close()
			return err
		}
	}
	if *metrics {
		fmt.Println()
		if err := telemetry.WriteSummary(os.Stdout, tel.rec.Snapshot()); err != nil {
			_ = tel.close()
			return err
		}
	}
	return tel.close()
}

// solveTelemetry bundles the optional recorder wiring for cmdSolve: the
// recorder injected into the session, and — when tracing — the sink and file
// it streams to.
type solveTelemetry struct {
	rec  *telemetry.Recorder
	sink *telemetry.JSONLSink
	file *os.File
	path string
	srv  *telemetry.Server
}

// openTraceFile opens the JSONL trace file for writing, creating any missing
// parent directories first. Errors name the offending path so a failed
// -trace flag reads as "trace out/dir/t.jsonl: ..." rather than a bare
// syscall message.
func openTraceFile(path string, appendMode bool) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trace %s: %w", path, err)
		}
	}
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if appendMode {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return f, nil
}

// attachTelemetry wires a recorder into the session when tracing, metrics,
// or the live debug endpoint were requested (all off → no-op wiring, zero
// overhead in the core). flagPath overrides a trace path loaded from a saved
// spec; a spec-inherited path is opened in append mode so a resumed
// exploration keeps extending one trace file, while an explicit -trace flag
// truncates. With debugAddr the same event stream tees into a span ring
// served on /spans alongside /metrics and pprof.
func attachTelemetry(s *session.Session, flagPath string, metrics bool, debugAddr string) (*solveTelemetry, error) {
	path, appendMode := flagPath, false
	if path == "" {
		path = s.Spec().TracePath
		appendMode = path != ""
	}
	if path == "" && !metrics && debugAddr == "" {
		return &solveTelemetry{}, nil
	}
	tel := &solveTelemetry{path: path}
	var sinks []telemetry.Sink
	if path != "" {
		f, err := openTraceFile(path, appendMode)
		if err != nil {
			return nil, err
		}
		tel.file = f
		tel.sink = telemetry.NewJSONLSink(f)
		sinks = append(sinks, tel.sink)
	}
	var ring *telemetry.SpanRing
	if debugAddr != "" {
		ring = telemetry.NewSpanRing(0)
		sinks = append(sinks, ring)
	}
	tel.rec = telemetry.New(telemetry.Tee(sinks...))
	if debugAddr != "" {
		srv, err := telemetry.Serve(debugAddr, tel.rec, ring)
		if err != nil {
			if tel.file != nil {
				_ = tel.file.Close()
			}
			return nil, err
		}
		tel.srv = srv
	}
	s.Instrument(tel.rec, path)
	return tel, nil
}

// close stops the debug server, flushes the trace file, and surfaces any
// deferred sink write error.
func (tel *solveTelemetry) close() error {
	if tel.srv != nil {
		_ = tel.srv.Close()
	}
	if tel.file == nil {
		return nil
	}
	if err := tel.sink.Err(); err != nil {
		_ = tel.file.Close()
		return fmt.Errorf("trace %s: %w", tel.path, err)
	}
	return tel.file.Close()
}

// printSolveHeader prints the shared run header (only when telemetry is on,
// so default solve output is unchanged).
func printSolveHeader(w io.Writer, s *session.Session, tracePath string) {
	spec := s.Spec()
	tr := tracePath
	if tr == "" {
		tr = "off"
	}
	fmt.Fprintln(w, telemetry.Header("mube solve",
		telemetry.KVStr("solver", spec.Solver),
		telemetry.KVStr("seed", strconv.FormatInt(spec.SolverOptions.Seed, 10)),
		telemetry.KVInt("evals", spec.SolverOptions.MaxEvals),
		telemetry.KVStr("trace", tr),
	))
}

// printSolution renders one iteration's solution for the terminal.
func printSolution(w io.Writer, u *source.Universe, it *session.Iteration) {
	sol := it.Solution
	status := ""
	if sol.Status != "" && sol.Status != opt.StatusCompleted {
		status = ", " + string(sol.Status)
	}
	fmt.Fprintf(w, "iteration %d [%s, %.0f ms, %d evals%s]\n",
		it.Index, sol.Solver, float64(it.Elapsed.Microseconds())/1000, sol.Evals, status)
	fmt.Fprintf(w, "overall quality Q(S) = %.4f\n", sol.Quality)
	for _, name := range sortedKeys(sol.Breakdown) {
		fmt.Fprintf(w, "  %-12s %.4f\n", name+":", sol.Breakdown[name])
	}
	fmt.Fprintf(w, "sources (%d):\n", len(sol.IDs))
	for _, id := range sol.IDs {
		s := u.Source(id)
		fmt.Fprintf(w, "  [%3d] %-18s %s\n", id, s.Name, s.Schema)
	}
	if !sol.MatchOK {
		fmt.Fprintln(w, "mediated schema: (no valid matching at this threshold)")
		return
	}
	fmt.Fprintf(w, "mediated schema (%d GAs):\n", sol.Schema.Len())
	for i, g := range sol.Schema.GAs {
		fmt.Fprintf(w, "  GA%-2d (q=%.2f):", i, sol.GAQuality[i])
		for _, r := range g.Refs() {
			fmt.Fprintf(w, " s%d:%s", r.Source, u.AttrName(r))
		}
		fmt.Fprintln(w)
	}
}

// parseWeights parses "name=v,name=v" into Weights.
func parseWeights(s string) (qef.Weights, error) {
	w := qef.Weights{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || strings.TrimSpace(kv[0]) == "" {
			return nil, fmt.Errorf("bad weight %q (want name=value)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight value %q", kv[1])
		}
		w[strings.TrimSpace(kv[0])] = v
	}
	return w, nil
}

// sortedKeys returns the map's keys sorted.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
