package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	_ = w.Close()
	os.Stdout = old
	data, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", runErr, data)
	}
	return string(data)
}

// genUniverseFile writes a small universe file and returns its path.
func genUniverseFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "u.json")
	captureStdout(t, func() error {
		return cmdGen([]string{"-n", "40", "-scale", "0.002", "-seed", "2", "-o", path})
	})
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("gen wrote nothing: %v", err)
	}
	return path
}

func TestCmdGenAndInspect(t *testing.T) {
	path := genUniverseFile(t)
	out := captureStdout(t, func() error { return cmdInspect([]string{"-u", path}) })
	if !strings.Contains(out, "universe: 40 sources") {
		t.Errorf("inspect summary:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdInspect([]string{"-u", path, "-source", "3"}) })
	if !strings.Contains(out, "source 3:") || !strings.Contains(out, "schema:") {
		t.Errorf("inspect detail:\n%s", out)
	}
	if err := cmdInspect([]string{"-u", path, "-source", "999"}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := cmdInspect([]string{"-u", "/does/not/exist.json"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdGenStdout(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdGen([]string{"-n", "5", "-scale", "0.002", "-o", "-"})
	})
	if !strings.Contains(out, `"sources"`) {
		t.Errorf("gen to stdout did not emit JSON:\n%.200s", out)
	}
}

func TestCmdFind(t *testing.T) {
	path := genUniverseFile(t)
	out := captureStdout(t, func() error { return cmdFind([]string{"-u", path, "-k", "3", "author", "price"}) })
	if !strings.Contains(out, "matched:") {
		t.Errorf("find output:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n > 3 {
		t.Errorf("find returned more than k=3 hits:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdFind([]string{"-u", path, "zzznothing"}) })
	if !strings.Contains(out, "no sources match") {
		t.Errorf("no-match output:\n%s", out)
	}
	if err := cmdFind([]string{"-u", path}); err == nil {
		t.Error("find without keywords accepted")
	}
}

func TestCmdSolve(t *testing.T) {
	path := genUniverseFile(t)
	rep := filepath.Join(t.TempDir(), "report.json")
	out := captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-m", "5", "-evals", "200", "-require", "1,2", "-report", rep})
	})
	if !strings.Contains(out, "overall quality Q(S)") || !strings.Contains(out, "mediated schema") {
		t.Errorf("solve output:\n%s", out)
	}
	// Required sources appear in the listing.
	if !strings.Contains(out, "[  1]") || !strings.Contains(out, "[  2]") {
		t.Errorf("required sources missing:\n%s", out)
	}
	if fi, err := os.Stat(rep); err != nil || fi.Size() == 0 {
		t.Errorf("report not written: %v", err)
	}
	// Bad flags error out.
	if err := cmdSolve([]string{"-u", path, "-m", "5", "-require", "abc"}); err == nil {
		t.Error("bad require accepted")
	}
	if err := cmdSolve([]string{"-u", path, "-m", "5", "-weights", "nope=1"}); err == nil {
		t.Error("unknown weight accepted")
	}
	if err := cmdSolve([]string{"-u", path, "-m", "5", "-sim", "bogus"}); err == nil {
		t.Error("unknown similarity accepted")
	}
	if err := cmdSolve([]string{"-u", path, "-m", "5", "-solver", "bogus"}); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestCmdSolveTraceAndMetrics(t *testing.T) {
	path := genUniverseFile(t)
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	out := captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-m", "5", "-evals", "200", "-trace", trace, "-metrics"})
	})
	if !strings.Contains(out, "mube solve: solver=tabu") {
		t.Errorf("run header missing:\n%s", out)
	}
	if !strings.Contains(out, "counter") || !strings.Contains(out, "eval.calls") {
		t.Errorf("metrics summary missing:\n%s", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	if !strings.Contains(first, `"ev":"session.solve.begin"`) {
		t.Errorf("first trace line = %s", first)
	}
	if !strings.Contains(string(data), `"ev":"solver.done"`) {
		t.Errorf("trace has no solver.done event:\n%.300s", data)
	}

	// -metrics alone: no trace file, summary still printed, output otherwise
	// the normal solve rendering.
	out = captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-m", "5", "-evals", "200", "-metrics"})
	})
	if !strings.Contains(out, "trace=off") || !strings.Contains(out, "eval.memo_hits") {
		t.Errorf("-metrics without -trace:\n%s", out)
	}
}

func TestCmdSolveWithCustomWeightsAndSolver(t *testing.T) {
	path := genUniverseFile(t)
	out := captureStdout(t, func() error {
		return cmdSolve([]string{
			"-u", path, "-m", "4", "-evals", "150", "-solver", "anneal",
			"-weights", "match=0.4,card=0.2,coverage=0.2,redundancy=0.1,mttf=0.1",
		})
	})
	if !strings.Contains(out, "[anneal,") {
		t.Errorf("solver not applied:\n%s", out)
	}
}

func TestCmdSolveSpecRoundTrip(t *testing.T) {
	path := genUniverseFile(t)
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")

	// Build a session via flags, save its spec through the session API.
	fsOut := captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-m", "4", "-evals", "150", "-require", "3"})
	})
	_ = fsOut
	// Hand-write a minimal spec and solve with it.
	if err := os.WriteFile(spec, []byte(`{
		"weights": null, "theta": 0.5, "beta": 2, "linkage": "max",
		"max_sources": 4, "solver": "tabu", "source_constraints": [3],
		"seed": 1, "max_evals": 150
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-spec", spec})
	})
	if !strings.Contains(out, "[  3]") {
		t.Errorf("spec constraint not honored:\n%s", out)
	}
}

// TestCmdSolveTraceCreatesParentDirs pins the -trace path contract: missing
// parent directories are created, and a path that cannot be created errors
// with the trace path named.
func TestCmdSolveTraceCreatesParentDirs(t *testing.T) {
	path := genUniverseFile(t)
	trace := filepath.Join(t.TempDir(), "out", "nested", "trace.jsonl")
	captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-m", "5", "-evals", "200", "-trace", trace})
	})
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not created under new parent dirs: %v", err)
	}
	// A parent that is a regular file cannot become a directory.
	blocked := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(blocked, "trace.jsonl")
	err := cmdSolve([]string{"-u", path, "-m", "5", "-evals", "200", "-trace", bad})
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("error does not name the trace path: %v", err)
	}
}

// TestCmdSolveDebugAddr checks the live endpoint wiring: an ephemeral
// -debug-addr boots, prints its address, and does not disturb the solve.
func TestCmdSolveDebugAddr(t *testing.T) {
	path := genUniverseFile(t)
	out := captureStdout(t, func() error {
		return cmdSolve([]string{"-u", path, "-m", "5", "-evals", "200", "-debug-addr", "127.0.0.1:0"})
	})
	if !strings.Contains(out, "debug: /metrics, /spans, and pprof on http://127.0.0.1:") {
		t.Errorf("debug endpoint line missing:\n%s", out)
	}
	if !strings.Contains(out, "overall quality Q(S)") {
		t.Errorf("solve output missing:\n%s", out)
	}
}

// TestCmdWatchTraceAndDebugAddr runs a tiny watch loop with both the trace
// file (under a fresh parent dir) and the live endpoint enabled.
func TestCmdWatchTraceAndDebugAddr(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "watch", "trace.jsonl")
	out := captureStdout(t, func() error {
		return cmdWatch([]string{"-gen", "30", "-scale", "0.002", "-epochs", "2",
			"-evals", "100", "-trace", trace, "-debug-addr", "127.0.0.1:0"})
	})
	if !strings.Contains(out, "debug: /metrics, /spans, and pprof on http://127.0.0.1:") {
		t.Errorf("debug endpoint line missing:\n%s", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("watch trace not written: %v", err)
	}
	if !strings.Contains(string(data), `"ev":"watch.tick.begin"`) {
		t.Errorf("watch trace has no tick span:\n%.300s", data)
	}
}
