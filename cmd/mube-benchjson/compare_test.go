package main

import (
	"math"
	"strings"
	"testing"
)

func rep(metrics map[string]float64, benches ...result) report {
	return report{Metrics: metrics, Benchmarks: benches}
}

func TestCompareReports(t *testing.T) {
	prev := rep(
		map[string]float64{"evals_per_sec": 5000, "merge_ops_per_eval": 0.02, "best_q": 0.74},
		result{Name: "BenchmarkFig5", Iters: 1, Metrics: map[string]float64{"allocs/op": 8_000_000, "ns/op": 1e9}},
		result{Name: "BenchmarkFig5", Iters: 1, Metrics: map[string]float64{"allocs/op": 10_000_000, "ns/op": 1e9}},
		result{Name: "BenchmarkGone", Iters: 1, Metrics: map[string]float64{"ns/op": 5}},
	)
	next := rep(
		map[string]float64{"evals_per_sec": 4000, "merge_ops_per_eval": 0.02, "best_q": 0.60},
		result{Name: "BenchmarkFig5", Iters: 1, Metrics: map[string]float64{"allocs/op": 2_000_000, "ns/op": 1.05e9}},
		result{Name: "BenchmarkNew", Iters: 1, Metrics: map[string]float64{"ns/op": 7}},
	)
	rows, regressions := compareReports(prev, next)

	byKey := map[string]compareRow{}
	for _, r := range rows {
		byKey[r.Scope+"/"+r.Metric] = r
	}
	// Benchmarks only in one report are skipped.
	if _, ok := byKey["BenchmarkGone/ns/op"]; ok {
		t.Error("BenchmarkGone should not be compared")
	}
	if _, ok := byKey["BenchmarkNew/ns/op"]; ok {
		t.Error("BenchmarkNew should not be compared")
	}
	// Repeats average: (8M + 10M)/2 = 9M old allocs/op; a 2M new value is an
	// improvement, not a regression.
	al := byKey["BenchmarkFig5/allocs/op"]
	if math.Float64bits(al.Old) != math.Float64bits(9_000_000) || al.Regression {
		t.Errorf("allocs/op row = %+v, want old 9e6 and no regression", al)
	}
	// ns/op worsened 5% — inside tolerance.
	if byKey["BenchmarkFig5/ns/op"].Regression {
		t.Error("5% ns/op increase should be inside tolerance")
	}
	// evals_per_sec dropped 20% — higher-is-better regression.
	if !byKey["run/evals_per_sec"].Regression {
		t.Error("20% evals_per_sec drop should flag")
	}
	// best_q has no defined direction: large change, no flag.
	if byKey["run/best_q"].Regression {
		t.Error("best_q must never flag")
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1", regressions)
	}
}

func TestCompareChurnMetrics(t *testing.T) {
	// The churn experiment's run-level metrics are direction-aware: losing
	// recovered quality or spending a larger warm fraction both flag.
	prev := rep(map[string]float64{"q_recovery": 0.9, "warm_evals_frac": 0.3})
	next := rep(map[string]float64{"q_recovery": 0.6, "warm_evals_frac": 0.45})
	_, regressions := compareReports(prev, next)
	if regressions != 2 {
		t.Errorf("regressions = %d, want 2 (q_recovery drop and warm_evals_frac rise)", regressions)
	}
	// Improvements in both directions never flag.
	_, regressions = compareReports(next, prev)
	if regressions != 0 {
		t.Errorf("improvements flagged: %d", regressions)
	}
}

func TestComparePartitionMetrics(t *testing.T) {
	// The partition experiment and the universe ladder archive the candidate
	// index's economics and the 1M solve wall-clock; regressions in any of
	// them — or a lost group-worker speedup — must flag.
	prev := rep(map[string]float64{
		"pair_candidates":      641,
		"pair_candidates_frac": 0.14,
		"shard_build_ns":       4.8e6,
		"solve_ms_1m":          9000,
		"partition_speedup":    2.0,
	})
	next := rep(map[string]float64{
		"pair_candidates":      1200, // candidate generation got leakier
		"pair_candidates_frac": 0.26,
		"shard_build_ns":       9.6e6,
		"solve_ms_1m":          12000,
		"partition_speedup":    1.0, // pool no longer helps
	})
	_, regressions := compareReports(prev, next)
	if regressions != 5 {
		t.Errorf("regressions = %d, want 5 (all partition metrics are direction-aware)", regressions)
	}
	// The same deltas in the good direction never flag.
	_, regressions = compareReports(next, prev)
	if regressions != 0 {
		t.Errorf("improvements flagged: %d", regressions)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	prev := rep(map[string]float64{"merge_ops_per_eval": 0})
	next := rep(map[string]float64{"merge_ops_per_eval": 0.5})
	rows, regressions := compareReports(prev, next)
	if len(rows) != 1 || !math.IsInf(rows[0].Delta(), 1) {
		t.Fatalf("rows = %+v, want one +Inf delta", rows)
	}
	if regressions != 1 {
		t.Errorf("zero→nonzero lower-is-better metric should flag, got %d", regressions)
	}
}

func TestRenderCompare(t *testing.T) {
	prev := rep(map[string]float64{"evals_per_sec": 5000})
	next := rep(map[string]float64{"evals_per_sec": 2000})
	rows, regressions := compareReports(prev, next)
	var sb strings.Builder
	if err := renderCompare(&sb, rows, regressions); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "-60.0%") {
		t.Errorf("table missing regression marker or delta:\n%s", out)
	}
}
