// Command mube-benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so benchmark numbers can be archived and
// diffed across commits (see the `make bench` target, which writes
// BENCH_fig.json).
//
// Usage:
//
//	go test -bench=Fig -benchmem -count=3 -run='^$' . | mube-benchjson
//	go test -bench=Delta -benchmem -count=3 -run='^$' . | mube-benchjson -merge BENCH_fig.json
//
// Each benchmark result line becomes one record; repeated runs (-count > 1)
// stay separate records so consumers can compute their own variance. The
// goos/goarch/pkg/cpu header lines are captured once at the top level.
//
// With -merge FILE, an existing report is loaded first and the new run is
// folded into it: records for benchmark names present in the new run replace
// the old ones (a partial re-run supersedes its own stale numbers), records
// for names only in FILE are kept, and config/metrics keys from the new run
// win per key. A missing FILE is treated as an empty report, so `make
// bench-delta` works from a clean tree.
//
// With -compare FILE, the fresh run is additionally diffed against the
// archived report: every metric present in both (ns/op, B/op, allocs/op per
// benchmark averaged over repeats, plus the run-level telemetry snapshot —
// evals_per_sec, merge_ops_per_eval, hit rates) prints as an old/new/±% table
// on stderr, with direction-aware REGRESSION flags for changes worse than
// 10%. Under -strict any flagged regression makes the exit status nonzero,
// so CI can gate on it; without -strict the table is informational.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mube/internal/telemetry"
)

// result is one benchmark measurement line.
type result struct {
	// Name is the full benchmark name including the -P GOMAXPROCS suffix,
	// e.g. "BenchmarkFig67Parallel-8".
	Name string `json:"name"`
	// Iters is the b.N the measurement averaged over.
	Iters int64 `json:"iters"`
	// Metrics maps each reported unit ("ns/op", "B/op", "allocs/op", and any
	// custom b.ReportMetric units) to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// report is the full JSON document.
type report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Config captures the run configuration the bench harness prints as
	// `mube-config: key=value ...` lines — fault plan, evaluator worker
	// count, timeout — so a degraded or otherwise non-default run is never
	// silently diffed against a clean one.
	Config map[string]string `json:"config,omitempty"`
	// Metrics is the telemetry snapshot the bench harness prints as a
	// `mube-metrics: {...}` line after the benchmarks: memo hit rate,
	// evals/sec, batch occupancy, final Q(S). Later lines win, matching the
	// "one snapshot per run" contract.
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Benchmarks []result           `json:"benchmarks"`
}

// loadReport reads an existing report for -merge. A missing file is an empty
// report; a malformed one is an error (silently discarding archived numbers
// would defeat the point of archiving them).
func loadReport(path string) (report, error) {
	prev := report{Benchmarks: []result{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return prev, nil
	}
	if err != nil {
		return prev, err
	}
	if err := json.Unmarshal(data, &prev); err != nil {
		return prev, fmt.Errorf("%s: %w", path, err)
	}
	return prev, nil
}

// mergeReports folds the new run into the previous report. Benchmark names
// measured in the new run replace all prior records of the same name;
// everything else from prev survives. Header fields and per-key
// config/metrics from the new run win when present.
func mergeReports(prev, next report) report {
	fresh := make(map[string]bool, len(next.Benchmarks))
	for _, r := range next.Benchmarks {
		fresh[r.Name] = true
	}
	merged := make([]result, 0, len(prev.Benchmarks)+len(next.Benchmarks))
	for _, r := range prev.Benchmarks {
		if !fresh[r.Name] {
			merged = append(merged, r)
		}
	}
	out := prev
	out.Benchmarks = append(merged, next.Benchmarks...)
	if next.Goos != "" {
		out.Goos = next.Goos
	}
	if next.Goarch != "" {
		out.Goarch = next.Goarch
	}
	if next.Pkg != "" {
		out.Pkg = next.Pkg
	}
	if next.CPU != "" {
		out.CPU = next.CPU
	}
	for k, v := range next.Config {
		if out.Config == nil {
			out.Config = make(map[string]string)
		}
		out.Config[k] = v
	}
	for k, v := range next.Metrics {
		if out.Metrics == nil {
			out.Metrics = make(map[string]float64)
		}
		out.Metrics[k] = v
	}
	return out
}

func main() {
	mergePath := flag.String("merge", "", "existing report JSON to fold the new run into")
	comparePath := flag.String("compare", "", "previous report JSON to diff the new run against (table on stderr)")
	strict := flag.Bool("strict", false, "with -compare: exit nonzero when any metric regresses by more than 10%")
	flag.Parse()
	rep := report{Benchmarks: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if cfg, ok := telemetry.ParseConfigLine(line); ok {
			if rep.Config == nil {
				rep.Config = make(map[string]string)
			}
			for k, v := range cfg {
				rep.Config[k] = v
			}
		}
		if vals, ok := telemetry.ParseMetricsLine(line); ok {
			rep.Metrics = vals
		}
		f := strings.Fields(line)
		// Result lines: Benchmark<Name>-P  N  value unit [value unit ...]
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: f[0], Iters: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			r.Metrics[f[i+1]] = v
		}
		if len(r.Metrics) == 0 {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mube-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	regressions := 0
	if *comparePath != "" {
		// Diff the fresh run (pre-merge, so stale archived records cannot
		// mask a regression) against the archived report.
		prev, err := loadReport(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mube-benchjson: compare: %v\n", err)
			os.Exit(1)
		}
		var rows []compareRow
		rows, regressions = compareReports(prev, rep)
		if err := renderCompare(os.Stderr, rows, regressions); err != nil {
			fmt.Fprintf(os.Stderr, "mube-benchjson: compare: %v\n", err)
			os.Exit(1)
		}
	}
	if *mergePath != "" {
		prev, err := loadReport(*mergePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mube-benchjson: merge: %v\n", err)
			os.Exit(1)
		}
		rep = mergeReports(prev, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "mube-benchjson: write: %v\n", err)
		os.Exit(1)
	}
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}
