package main

import (
	"io"

	"mube/internal/benchcmp"
)

// The direction maps, tolerance, and rendering live in internal/benchcmp,
// shared with mube-trace -compare. This file adapts bench reports to the
// scoped-metric shape the comparator takes.

// compareRow aliases the shared row type so tests and main keep their names.
type compareRow = benchcmp.Row

// regressionTolerance re-exports the shared flag threshold for messages.
const regressionTolerance = benchcmp.Tolerance

// meanMetrics collapses repeated records (-count > 1) of each benchmark into
// per-metric means.
func meanMetrics(rep report) map[string]map[string]float64 {
	sums := make(map[string]map[string]float64)
	counts := make(map[string]map[string]int)
	for _, b := range rep.Benchmarks {
		if sums[b.Name] == nil {
			sums[b.Name] = make(map[string]float64)
			counts[b.Name] = make(map[string]int)
		}
		for k, v := range b.Metrics {
			sums[b.Name][k] += v
			counts[b.Name][k]++
		}
	}
	for name, m := range sums {
		for k := range m {
			m[k] /= float64(counts[name][k])
		}
	}
	return sums
}

// scopedMetrics flattens a report for benchcmp: benchmark measurements per
// name (averaged over repeats) plus the run-level telemetry snapshot under
// the reserved "run" scope.
func scopedMetrics(rep report) map[string]map[string]float64 {
	scopes := meanMetrics(rep)
	if len(rep.Metrics) > 0 {
		run := make(map[string]float64, len(rep.Metrics))
		for k, v := range rep.Metrics {
			run[k] = v
		}
		scopes["run"] = run
	}
	return scopes
}

// compareReports diffs every metric present in both reports.
func compareReports(prev, next report) ([]compareRow, int) {
	return benchcmp.Compare(scopedMetrics(prev), scopedMetrics(next), benchcmp.Default)
}

// renderCompare prints the diff as an aligned table.
func renderCompare(w io.Writer, rows []compareRow, regressions int) error {
	return benchcmp.Render(w, rows, regressions)
}
