package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Direction-aware regression detection for -compare. Keys not listed in
// either set are informational: their deltas print but never flag, because
// "worse" is undefined for them (best_q depends on the seed, evals on the
// budget).
var (
	higherBetter = map[string]bool{
		"evals_per_sec":  true,
		"memo_hit_rate":  true,
		"delta_hit_rate": true,
		"q_recovery":     true,
	}
	lowerBetter = map[string]bool{
		"ns/op":                    true,
		"B/op":                     true,
		"allocs/op":                true,
		"merge_ops_per_eval":       true,
		"counting_merges_per_eval": true,
		"warm_evals_frac":          true,
	}
)

// regressionTolerance is the fractional change in the worse direction above
// which a metric is flagged (and -strict fails the run).
const regressionTolerance = 0.10

// compareRow is one metric diffed between the previous and current report.
type compareRow struct {
	Scope      string // benchmark name, or "run" for the telemetry snapshot
	Metric     string
	Old, New   float64
	Regression bool
}

// Delta returns the fractional change from old to new (+0.25 = new is 25%
// higher). Infinite when a zero baseline became non-zero.
func (r compareRow) Delta() float64 {
	if r.Old == 0 {
		if r.New == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (r.New - r.Old) / math.Abs(r.Old)
}

// meanMetrics collapses repeated records (-count > 1) of each benchmark into
// per-metric means.
func meanMetrics(rep report) map[string]map[string]float64 {
	sums := make(map[string]map[string]float64)
	counts := make(map[string]map[string]int)
	for _, b := range rep.Benchmarks {
		if sums[b.Name] == nil {
			sums[b.Name] = make(map[string]float64)
			counts[b.Name] = make(map[string]int)
		}
		for k, v := range b.Metrics {
			sums[b.Name][k] += v
			counts[b.Name][k]++
		}
	}
	for name, m := range sums {
		for k := range m {
			m[k] /= float64(counts[name][k])
		}
	}
	return sums
}

// compareReports diffs every metric present in both reports: benchmark
// measurements per name (averaged over repeats) and the run-level telemetry
// snapshot. Rows are sorted by scope then metric; the count of flagged
// regressions is returned alongside.
func compareReports(prev, next report) ([]compareRow, int) {
	var rows []compareRow
	oldBench, newBench := meanMetrics(prev), meanMetrics(next)
	for name, nm := range newBench {
		om, ok := oldBench[name]
		if !ok {
			continue
		}
		for metric, nv := range nm {
			ov, ok := om[metric]
			if !ok {
				continue
			}
			rows = append(rows, compareRow{Scope: name, Metric: metric, Old: ov, New: nv})
		}
	}
	for metric, nv := range next.Metrics {
		ov, ok := prev.Metrics[metric]
		if !ok {
			continue
		}
		rows = append(rows, compareRow{Scope: "run", Metric: metric, Old: ov, New: nv})
	}
	regressions := 0
	for i := range rows {
		d := rows[i].Delta()
		switch {
		case higherBetter[rows[i].Metric] && d < -regressionTolerance:
			rows[i].Regression = true
		case lowerBetter[rows[i].Metric] && d > regressionTolerance:
			rows[i].Regression = true
		}
		if rows[i].Regression {
			regressions++
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scope != rows[j].Scope {
			// "run" rows last; benchmarks alphabetical.
			if rows[i].Scope == "run" || rows[j].Scope == "run" {
				return rows[j].Scope == "run"
			}
			return rows[i].Scope < rows[j].Scope
		}
		return rows[i].Metric < rows[j].Metric
	})
	return rows, regressions
}

// renderCompare prints the diff as an aligned table.
func renderCompare(w io.Writer, rows []compareRow, regressions int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scope\tmetric\told\tnew\tdelta")
	for _, r := range rows {
		flag := ""
		if r.Regression {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%+.1f%%%s\n",
			r.Scope, r.Metric, r.Old, r.New, 100*r.Delta(), flag)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d metric(s) regressed by more than %.0f%%\n",
			regressions, 100*regressionTolerance)
	}
	return nil
}
