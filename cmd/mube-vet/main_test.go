package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfClean is the self-clean invariant: every registered analyzer runs
// over the real module and must produce zero diagnostics. A regression
// anywhere in the tree fails this test before it fails CI.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run("../..", []string{"./..."}, &stdout, &stderr)
	if code != exitClean {
		t.Errorf("mube-vet ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced diagnostics:\n%s", stdout.String())
	}
}

// writeModule materializes a throwaway module for exit-code tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	const gomod = "module scratch\n\ngo 1.22\n"
	cases := []struct {
		name     string
		files    map[string]string
		args     []string
		wantCode int
		wantOut  string // substring of stdout
		wantErr  string // substring of stderr
	}{
		{
			name: "clean module exits 0",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() {}\n",
			},
			wantCode: exitClean,
		},
		{
			name: "diagnostics exit 1",
			files: map[string]string{
				"go.mod": gomod,
				"main.go": "package main\n\nfunc main() {\n" +
					"\ta, b := 0.1, 0.2\n\tif a == b {\n\t\tpanic(\"equal\")\n\t}\n}\n",
			},
			wantCode: exitDiagnostics,
			wantOut:  "[floatcmp]",
			wantErr:  "issue(s)",
		},
		{
			name: "type-check failure exits 2",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() { var x int = \"not an int\" }\n",
			},
			wantCode: exitLoadFailure,
			wantErr:  "mube-vet:",
		},
		{
			name: "syntax error exits 2",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() {\n",
			},
			wantCode: exitLoadFailure,
			wantErr:  "mube-vet:",
		},
		{
			name: "unmatched pattern exits 2",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() {}\n",
			},
			args:     []string{"./doesnotexist"},
			wantCode: exitLoadFailure,
			wantErr:  "mube-vet:",
		},
		{
			name:     "unknown flag exits 2",
			files:    map[string]string{"go.mod": gomod},
			args:     []string{"-bogus"},
			wantCode: exitLoadFailure,
			wantErr:  "unknown flag",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeModule(t, tc.files)
			var stdout, stderr bytes.Buffer
			code := run(dir, tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-list"}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-list exit = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"determinism:", "floatcmp:", "errdrop:", "seedflow:"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}
