package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestSelfClean is the self-clean invariant: every registered analyzer runs
// over the real module and must produce zero diagnostics. A regression
// anywhere in the tree fails this test before it fails CI.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run("../..", []string{"./..."}, &stdout, &stderr)
	if code != exitClean {
		t.Errorf("mube-vet ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean tree produced diagnostics:\n%s", stdout.String())
	}
}

// writeModule materializes a throwaway module for exit-code tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	const gomod = "module scratch\n\ngo 1.22\n"
	cases := []struct {
		name     string
		files    map[string]string
		args     []string
		wantCode int
		wantOut  string // substring of stdout
		wantErr  string // substring of stderr
	}{
		{
			name: "clean module exits 0",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() {}\n",
			},
			wantCode: exitClean,
		},
		{
			name: "diagnostics exit 1",
			files: map[string]string{
				"go.mod": gomod,
				"main.go": "package main\n\nfunc main() {\n" +
					"\ta, b := 0.1, 0.2\n\tif a == b {\n\t\tpanic(\"equal\")\n\t}\n}\n",
			},
			wantCode: exitDiagnostics,
			wantOut:  "[floatcmp]",
			wantErr:  "issue(s)",
		},
		{
			name: "type-check failure exits 2",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() { var x int = \"not an int\" }\n",
			},
			wantCode: exitLoadFailure,
			wantErr:  "mube-vet:",
		},
		{
			name: "syntax error exits 2",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() {\n",
			},
			wantCode: exitLoadFailure,
			wantErr:  "mube-vet:",
		},
		{
			name: "unmatched pattern exits 2",
			files: map[string]string{
				"go.mod":  gomod,
				"main.go": "package main\n\nfunc main() {}\n",
			},
			args:     []string{"./doesnotexist"},
			wantCode: exitLoadFailure,
			wantErr:  "mube-vet:",
		},
		{
			name:     "unknown flag exits 2",
			files:    map[string]string{"go.mod": gomod},
			args:     []string{"-bogus"},
			wantCode: exitLoadFailure,
			wantErr:  "unknown flag",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeModule(t, tc.files)
			var stdout, stderr bytes.Buffer
			code := run(dir, tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(".", []string{"-list"}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-list exit = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"determinism:", "floatcmp:", "errdrop:", "seedflow:",
		"workerpure:", "ctxflow:", "atomicmix:", "leakjoin:"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
	// Output is sorted by analyzer name.
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	names := make([]string, 0, len(lines))
	for _, l := range lines {
		names = append(names, strings.SplitN(l, ":", 2)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output not sorted: %v", names)
	}
}

// violatingModule is a scratch module with one floatcmp finding.
func violatingModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() {\n" +
			"\ta, b := 0.1, 0.2\n\tif a == b {\n\t\tpanic(\"equal\")\n\t}\n}\n",
	})
}

func TestFlagsAfterPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := violatingModule(t)
	// The pattern precedes the flags; both must still be honored.
	var stdout, stderr bytes.Buffer
	code := run(dir, []string{"./...", "-json", "-parallel", "2", "-no-cache"}, &stdout, &stderr)
	if code != exitDiagnostics {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, exitDiagnostics, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"analyzer": "floatcmp"`) {
		t.Errorf("-json after pattern not honored:\n%s", stdout.String())
	}
	// And the '=' form interleaved around a pattern.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-parallel=1", "./...", "-json"}, &stdout, &stderr); code != exitDiagnostics {
		t.Fatalf("interleaved exit = %d, want %d\nstderr: %s", code, exitDiagnostics, stderr.String())
	}
}

func TestJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := violatingModule(t)
	cacheDir := t.TempDir()
	outputs := make([]string, 0, 4)
	for _, args := range [][]string{
		{"-json", "-no-cache", "-parallel", "1", "./..."},
		{"-json", "-no-cache", "-parallel", "8", "./..."},
		{"-json", "-cache-dir", cacheDir, "./..."}, // cold cache
		{"-json", "-cache-dir", cacheDir, "./..."}, // warm cache
	} {
		var stdout, stderr bytes.Buffer
		if code := run(dir, args, &stdout, &stderr); code != exitDiagnostics {
			t.Fatalf("%v exit = %d, want %d\nstderr: %s", args, code, exitDiagnostics, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	for i, out := range outputs[1:] {
		if out != outputs[0] {
			t.Errorf("-json output differs between run 0 and run %d:\n%s\nvs\n%s", i+1, outputs[0], out)
		}
	}
	if !strings.Contains(outputs[0], `"line": 5`) {
		t.Errorf("-json output missing expected finding:\n%s", outputs[0])
	}
}

func TestBaselineFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := violatingModule(t)
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr bytes.Buffer
	// Recording the current findings exits 0.
	if code := run(dir, []string{"-no-cache", "-write-baseline", baseline, "./..."}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-write-baseline exit = %d\nstderr: %s", code, stderr.String())
	}
	// With the baseline applied the dirty tree passes.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-no-cache", "-baseline", baseline, "./..."}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-baseline exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	// A new finding in another file is not covered.
	if err := os.WriteFile(filepath.Join(dir, "extra.go"),
		[]byte("package main\n\nfunc eq(a, b float64) bool { return a == b }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-no-cache", "-baseline", baseline, "./..."}, &stdout, &stderr); code != exitDiagnostics {
		t.Fatalf("new finding over baseline exit = %d, want %d\nstdout: %s", code, exitDiagnostics, stdout.String())
	}
	if !strings.Contains(stdout.String(), "extra.go") {
		t.Errorf("survivor should be the new finding:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "main.go") {
		t.Errorf("baselined finding leaked through:\n%s", stdout.String())
	}
	// A missing baseline file is a hard configuration error.
	stdout.Reset()
	stderr.Reset()
	if code := run(dir, []string{"-no-cache", "-baseline", baseline + ".missing", "./..."}, &stdout, &stderr); code != exitLoadFailure {
		t.Fatalf("missing baseline exit = %d, want %d", code, exitLoadFailure)
	}
}
