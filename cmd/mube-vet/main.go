// Command mube-vet runs µBE's repo-specific static analyzers (package
// mube/internal/analysis/rules) over the module and reports file:line:col
// diagnostics.
//
// Usage:
//
//	mube-vet [-list] [packages]
//
// With no package patterns it checks ./.... Exit status is 0 when the tree
// is clean, 1 when diagnostics were reported, and 2 when the packages could
// not be loaded or type-checked (the two failure modes CI must be able to
// tell apart: a dirty tree is a policy violation, a broken load is a build
// problem).
package main

import (
	"fmt"
	"io"
	"os"

	"mube/internal/analysis"
	"mube/internal/analysis/rules"
)

// Exit codes. CI scripts rely on the distinction.
const (
	exitClean       = 0
	exitDiagnostics = 1
	exitLoadFailure = 2
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

func run(dir string, args []string, stdout, stderr io.Writer) int {
	patterns := make([]string, 0, len(args))
	for i, a := range args {
		switch a {
		case "-list", "--list":
			for _, an := range rules.All {
				fmt.Fprintf(stdout, "%s: %s\n", an.Name, an.Doc)
			}
			return exitClean
		case "-h", "-help", "--help":
			usage(stdout)
			return exitClean
		default:
			if len(a) > 0 && a[0] == '-' {
				fmt.Fprintf(stderr, "mube-vet: unknown flag %s\n", a)
				usage(stderr)
				return exitLoadFailure
			}
			patterns = append(patterns, args[i])
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mube-vet: %v\n", err)
		return exitLoadFailure
	}
	diags := analysis.Run(pkgs, rules.All)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mube-vet: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitDiagnostics
	}
	return exitClean
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: mube-vet [-list] [packages]

Runs µBE's determinism, floatcmp, errdrop, seedflow, and telemetry analyzers
over the given package patterns (default ./...).

  -list  print the registered analyzers and exit

Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check failure.
`)
}
