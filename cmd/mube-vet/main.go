// Command mube-vet runs µBE's repo-specific static analyzers (package
// mube/internal/analysis/rules) over the module and reports file:line:col
// diagnostics.
//
// Usage:
//
//	mube-vet [flags] [packages] [flags]
//
// Flags and package patterns may be interleaved. With no patterns it checks
// ./.... Packages are analyzed in parallel with per-package results cached
// under the user cache dir (keyed by analyzer binary, source bytes, and
// dependency export data), so warm runs are file reads. Exit status is 0
// when the tree is clean, 1 when diagnostics were reported, and 2 when the
// packages could not be loaded or type-checked (the two failure modes CI
// must be able to tell apart: a dirty tree is a policy violation, a broken
// load is a build problem).
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mube/internal/analysis"
	"mube/internal/analysis/rules"
)

// Exit codes. CI scripts rely on the distinction.
const (
	exitClean       = 0
	exitDiagnostics = 1
	exitLoadFailure = 2
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed command line.
type options struct {
	patterns      []string
	list          bool
	jsonOut       bool
	parallel      int
	noCache       bool
	cacheDir      string
	baseline      string
	writeBaseline string
}

// parseArgs accepts flags and package patterns in any order. Flag values may
// be attached with '=' or follow as the next argument.
func parseArgs(args []string, stderr io.Writer) (*options, bool) {
	o := &options{}
	needsValue := map[string]*string{
		"parallel":       nil, // handled specially (int)
		"cache-dir":      &o.cacheDir,
		"baseline":       &o.baseline,
		"write-baseline": &o.writeBaseline,
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "" || a[0] != '-' {
			o.patterns = append(o.patterns, a)
			continue
		}
		name := strings.TrimLeft(a, "-")
		value := ""
		hasValue := false
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, value, hasValue = name[:eq], name[eq+1:], true
		}
		if dst, ok := needsValue[name]; ok {
			if !hasValue {
				i++
				if i >= len(args) {
					fmt.Fprintf(stderr, "mube-vet: flag -%s needs a value\n", name)
					return nil, false
				}
				value = args[i]
			}
			if name == "parallel" {
				n, err := strconv.Atoi(value)
				if err != nil || n < 0 {
					fmt.Fprintf(stderr, "mube-vet: bad -parallel value %q\n", value)
					return nil, false
				}
				o.parallel = n
			} else {
				*dst = value
			}
			continue
		}
		switch name {
		case "list":
			o.list = true
		case "json":
			o.jsonOut = true
		case "no-cache":
			o.noCache = true
		case "h", "help":
			return nil, false
		default:
			fmt.Fprintf(stderr, "mube-vet: unknown flag %s\n", a)
			return nil, false
		}
	}
	return o, true
}

func run(dir string, args []string, stdout, stderr io.Writer) int {
	o, ok := parseArgs(args, stderr)
	if !ok {
		usage(stderr)
		return exitLoadFailure
	}
	if o.list {
		names := append([]*analysis.Analyzer{}, rules.All...)
		sort.Slice(names, func(i, j int) bool { return names[i].Name < names[j].Name })
		for _, an := range names {
			fmt.Fprintf(stdout, "%s: %s\n", an.Name, an.Doc)
		}
		return exitClean
	}
	if len(o.patterns) == 0 {
		o.patterns = []string{"./..."}
	}

	cfg := analysis.Config{Dir: dir, Analyzers: rules.All, Parallel: o.parallel}
	if !o.noCache {
		cache, err := analysis.OpenCache(o.cacheDir)
		if err != nil {
			// A broken cache location degrades to uncached analysis; only an
			// explicitly requested dir is a hard error.
			if o.cacheDir != "" {
				fmt.Fprintf(stderr, "mube-vet: %v\n", err)
				return exitLoadFailure
			}
		} else {
			cfg.Cache = cache
		}
	}

	diags, npkgs, err := analysis.CheckPackages(cfg, o.patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mube-vet: %v\n", err)
		return exitLoadFailure
	}

	if o.writeBaseline != "" {
		if err := analysis.WriteBaseline(o.writeBaseline, dir, diags); err != nil {
			fmt.Fprintf(stderr, "mube-vet: writing baseline: %v\n", err)
			return exitLoadFailure
		}
		fmt.Fprintf(stderr, "mube-vet: recorded %d finding(s) in %s\n", len(diags), o.writeBaseline)
		return exitClean
	}
	if o.baseline != "" {
		entries, err := analysis.ReadBaseline(o.baseline)
		if err != nil {
			fmt.Fprintf(stderr, "mube-vet: %v\n", err)
			return exitLoadFailure
		}
		diags = analysis.FilterBaseline(diags, entries, dir)
	}

	if o.jsonOut {
		if err := analysis.WriteJSON(stdout, dir, diags); err != nil {
			fmt.Fprintf(stderr, "mube-vet: %v\n", err)
			return exitLoadFailure
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mube-vet: %d issue(s) in %d package(s)\n", len(diags), npkgs)
		return exitDiagnostics
	}
	return exitClean
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: mube-vet [flags] [packages]

Runs µBE's analyzers (atomicmix, ctxflow, determinism, errdrop, floatcmp,
leakjoin, seedflow, telemetry, workerpure) over the given package patterns
(default ./...). Flags and patterns may be interleaved.

  -list                  print the registered analyzers (sorted) and exit
  -json                  emit diagnostics as a JSON array (stable order)
  -parallel N            cap concurrent package analyses (default GOMAXPROCS)
  -no-cache              disable the per-package result cache
  -cache-dir DIR         cache location (default <user cache dir>/mube-vet)
  -baseline FILE         suppress findings recorded in FILE
  -write-baseline FILE   record current findings to FILE and exit 0

Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check failure.
`)
}
