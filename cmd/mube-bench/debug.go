package main

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"sync"
	"sync/atomic"

	"mube/internal/pcsa"
	"mube/internal/telemetry"
)

// debugRec is the recorder the /debug/vars snapshot reads. It is swapped per
// startDebugServer call (tests start several servers) while the expvar names
// are published exactly once — expvar panics on duplicates.
var (
	debugOnce sync.Once
	debugRec  atomic.Pointer[telemetry.Recorder]
)

// startDebugServer serves expvar (/debug/vars) and pprof (/debug/pprof/) on
// addr and returns the listener (Close stops the server; the goroutine exits
// when Serve returns). This lives entirely outside the deterministic core:
// mube-vet's telemetry analyzer bans the expvar and net/http/pprof imports
// from internal/, and nothing served here feeds back into a solve.
func startDebugServer(addr string, rec *telemetry.Recorder) (net.Listener, error) {
	debugRec.Store(rec)
	debugOnce.Do(func() {
		expvar.Publish("mube.metrics", expvar.Func(func() any {
			return debugRec.Load().Snapshot() // nil-safe: empty snapshot
		}))
		expvar.Publish("mube.pcsa.merge_ops", expvar.Func(func() any {
			return pcsa.MergeOps()
		}))
		expvar.Publish("mube.pcsa.counting_ops", expvar.Func(func() any {
			return pcsa.CountingMerges()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// The default mux carries both the expvar and pprof handlers.
	go func() { _ = http.Serve(ln, nil) }()
	return ln, nil
}
