package main

import (
	"expvar"
	"sync"
	"sync/atomic"

	"mube/internal/pcsa"
	"mube/internal/telemetry"
)

// debugRec is the recorder the /debug/vars snapshot reads. It is swapped per
// startDebugServer call (tests start several servers) while the expvar names
// are published exactly once — expvar panics on duplicates.
var (
	debugOnce sync.Once
	debugRec  atomic.Pointer[telemetry.Recorder]
)

// startDebugServer boots telemetry.Serve on addr — /metrics, /spans,
// /debug/pprof/ — and layers mube-bench's expvar vars on top of its
// /debug/vars: the raw metrics snapshot plus the PCSA merge counters that
// predate the recorder. Close on the returned server stops it. Nothing served
// here feeds back into a solve (see internal/telemetry's determinism
// contract).
func startDebugServer(addr string, rec *telemetry.Recorder, ring *telemetry.SpanRing) (*telemetry.Server, error) {
	debugRec.Store(rec)
	debugOnce.Do(func() {
		expvar.Publish("mube.metrics", expvar.Func(func() any {
			return debugRec.Load().Snapshot() // nil-safe: empty snapshot
		}))
		expvar.Publish("mube.pcsa.merge_ops", expvar.Func(func() any {
			return pcsa.MergeOps()
		}))
		expvar.Publish("mube.pcsa.counting_ops", expvar.Func(func() any {
			return pcsa.CountingMerges()
		}))
	})
	return telemetry.Serve(addr, rec, ring)
}
