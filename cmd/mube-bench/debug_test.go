package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"mube/internal/telemetry"
)

// TestDebugServerSmoke starts the debug endpoint on an ephemeral port and
// checks that /debug/vars serves the published µBE vars and /debug/pprof/
// serves the profile index.
func TestDebugServerSmoke(t *testing.T) {
	rec := telemetry.New(nil)
	rec.Add("eval.calls", 3)
	ln, err := startDebugServer("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	for _, want := range []string{`"mube.metrics"`, `"mube.pcsa.merge_ops"`, `"eval.calls"`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %s:\n%.500s", want, vars)
		}
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index:\n%.300s", idx)
	}

	// A second server (fresh recorder) must not re-publish — expvar panics on
	// duplicate names — and the snapshot must follow the newest recorder.
	rec2 := telemetry.New(nil)
	rec2.Add("eval.memo_hits", 7)
	ln2, err := startDebugServer("127.0.0.1:0", rec2)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if vars := get("/debug/vars"); !strings.Contains(vars, `"eval.memo_hits"`) {
		t.Errorf("snapshot did not follow the newest recorder:\n%.500s", vars)
	}
}
