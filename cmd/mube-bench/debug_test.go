package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"mube/internal/telemetry"
)

// TestDebugServerSmoke starts the debug endpoint on an ephemeral port and
// checks that /debug/vars serves the published µBE vars, /metrics the
// Prometheus exposition, /spans the completed-span ring, and /debug/pprof/
// the profile index.
func TestDebugServerSmoke(t *testing.T) {
	ring := telemetry.NewSpanRing(0)
	rec := telemetry.New(ring)
	rec.Add("eval.calls", 3)
	sp := rec.BeginSpan("session.solve", telemetry.Str("solver", "tabu"))
	sp.End()
	srv, err := startDebugServer("127.0.0.1:0", rec, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	for _, want := range []string{`"mube.metrics"`, `"mube.pcsa.merge_ops"`, `"eval.calls"`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %s:\n%.500s", want, vars)
		}
	}
	if metrics := get("/metrics"); !strings.Contains(metrics, "mube_eval_calls 3") {
		t.Errorf("/metrics missing counter:\n%.500s", metrics)
	}
	if spans := get("/spans"); !strings.Contains(spans, `"name":"session.solve"`) {
		t.Errorf("/spans missing completed span:\n%.500s", spans)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index:\n%.300s", idx)
	}

	// A second server (fresh recorder) must not re-publish — expvar panics on
	// duplicate names — and the snapshot must follow the newest recorder.
	rec2 := telemetry.New(nil)
	rec2.Add("eval.memo_hits", 7)
	srv2, err := startDebugServer("127.0.0.1:0", rec2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if vars := get("/debug/vars"); !strings.Contains(vars, `"eval.memo_hits"`) {
		t.Errorf("snapshot did not follow the newest recorder:\n%.500s", vars)
	}
}
