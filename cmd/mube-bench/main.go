// Command mube-bench regenerates every table and figure of the paper's
// evaluation (§7) plus the repository's ablations, printing each as an
// aligned text table.
//
// Usage:
//
//	mube-bench -exp all -scale quick
//	mube-bench -exp fig5 -scale full
//	mube-bench -exp fig67 -scale quick -parallel 4
//
// The -parallel flag sets the evaluator worker-pool size (0 = GOMAXPROCS,
// 1 = sequential). Results are identical at any setting — only wall-clock
// changes — and the run header prints the effective worker count.
//
// Experiments: fig5, fig67 (time and quality: Figures 6 and 7), fig8,
// table1, pcsa, sensitivity, solvers, convergence, ablation-sim,
// ablation-linkage, ablation-tenure, ablation-pcsa, faults, churn,
// partition, all.
//
// The -universe flag switches to the universe-scale benchmark ladder
// (50 | 10k | 100k | 1m | all): build a streamed synthetic universe at the
// preset size and solve it end to end, printing generation, shard-index, and
// solve economics plus an archivable metrics line. -group-workers overrides
// the partitioned solver's group pool size for those runs (0 = the preset's
// own setting).
//
// The -debug-addr flag (off by default) boots telemetry.Serve on the given
// address for live profiling: Prometheus-style /metrics, recently completed
// spans on /spans, expvar (/debug/vars), and pprof (/debug/pprof/). The
// endpoint only reads snapshots — mube-vet's telemetry analyzer keeps the
// debug imports confined to the telemetry facade — and never feeds back into
// a solve.
//
// The -faults flag applies a deterministic fault plan (internal/fault) to
// universe acquisition for every experiment; the run header then prints the
// acquisition health report so degraded runs are never mistaken for clean
// ones.
//
// Scales: "full" reproduces the paper's settings (700 sources, 4M-tuple
// pool; minutes of runtime), "quick" is a 1%-data configuration with the
// same qualitative shapes (seconds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mube/internal/exp"
	"mube/internal/fault"
	"mube/internal/telemetry"
)

// experiments maps experiment names to runners in display order.
var experiments = []struct {
	name  string
	title string
	run   func(exp.Scale, io.Writer) error
}{
	{"fig5", "Figure 5: execution time vs universe size (choose 20)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Fig5(sc)
		if err != nil {
			return err
		}
		return exp.RenderFig5(w, rows)
	}},
	{"fig67", "Figures 6–7: execution time and overall quality vs sources to choose", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Fig67(sc)
		if err != nil {
			return err
		}
		return exp.RenderFig67(w, rows)
	}},
	{"fig8", "Figure 8: solution cardinality vs Card-QEF weight", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Fig8(sc)
		if err != nil {
			return err
		}
		return exp.RenderFig8(w, rows)
	}},
	{"table1", "Table 1: quality of GAs vs sources selected", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Table1(sc)
		if err != nil {
			return err
		}
		return exp.RenderTable1(w, rows)
	}},
	{"pcsa", "PCSA accuracy vs exact counting (§7.3: worst case ≈7%)", func(sc exp.Scale, w io.Writer) error {
		res, err := exp.PCSA(sc)
		if err != nil {
			return err
		}
		return exp.RenderPCSA(w, res)
	}},
	{"sensitivity", "Sensitivity: ±15% weight perturbation (§7.4)", func(sc exp.Scale, w io.Writer) error {
		res, err := exp.Sensitivity(sc)
		if err != nil {
			return err
		}
		return exp.RenderSensitivity(w, res)
	}},
	{"solvers", "Solver comparison at equal evaluation budgets (§6)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Solvers(sc)
		if err != nil {
			return err
		}
		return exp.RenderSolvers(w, rows)
	}},
	{"convergence", "Convergence: Q(S) trajectory per solver, from telemetry traces", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Convergence(sc)
		if err != nil {
			return err
		}
		return exp.RenderConvergence(w, rows)
	}},
	{"querycost", "Query cost vs solution size (§1 motivation, via the mediator)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.QueryCost(sc)
		if err != nil {
			return err
		}
		return exp.RenderQueryCost(w, rows)
	}},
	{"ablation-sim", "Ablation: attribute similarity measures", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.AblationSimilarity(sc)
		if err != nil {
			return err
		}
		return exp.RenderSimilarity(w, rows)
	}},
	{"ablation-linkage", "Ablation: cluster linkage (max vs avg)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.AblationLinkage(sc)
		if err != nil {
			return err
		}
		return exp.RenderLinkage(w, rows)
	}},
	{"ablation-tenure", "Ablation: tabu tenure", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.AblationTenure(sc)
		if err != nil {
			return err
		}
		return exp.RenderTenure(w, rows)
	}},
	{"ablation-hybrid", "Ablation: data-based similarity (MinHash value sketches) vs name-only", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.AblationHybrid(sc)
		if err != nil {
			return err
		}
		return exp.RenderHybrid(w, rows)
	}},
	{"ablation-pairwise", "Ablation: holistic clustering vs pairwise star mediation (§8)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.AblationPairwise(sc)
		if err != nil {
			return err
		}
		return exp.RenderPairwise(w, rows)
	}},
	{"ablation-pcsa", "Ablation: PCSA bitmap count vs estimation error", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.AblationPCSAMaps(sc)
		if err != nil {
			return err
		}
		return exp.RenderPCSAMaps(w, rows)
	}},
	{"faults", "Graceful degradation: Q(S) vs probe failure rate (§4 fallback)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Faults(sc)
		if err != nil {
			return err
		}
		return exp.RenderFaults(w, rows)
	}},
	{"churn", "Online integration: warm vs cold re-solve cost under churn (watch loop)", func(sc exp.Scale, w io.Writer) error {
		rows, err := exp.Churn(sc)
		if err != nil {
			return err
		}
		return exp.RenderChurn(w, rows)
	}},
	{"partition", "Parallel partitioned solving: group-worker invariance, speedup, candidate index", func(sc exp.Scale, w io.Writer) error {
		res, err := exp.Partition(sc)
		if err != nil {
			return err
		}
		return exp.RenderPartition(w, res)
	}},
}

func main() {
	expName := flag.String("exp", "all", "experiment to run (or 'all')")
	scaleName := flag.String("scale", "quick", "experiment scale: full | quick")
	universe := flag.String("universe", "", "run the universe-scale benchmark instead: 50 | 10k | 100k | 1m | all")
	smoke := flag.Bool("smoke", false, "with -universe: reduce solver budgets to CI smoke size")
	groupWorkers := flag.Int("group-workers", 0, "with -universe: partitioned-solver group pool size (0 = preset default)")
	seed := flag.Int64("seed", 0, "override the scale's base seed (0 = keep)")
	parallel := flag.Int("parallel", 0, "evaluator worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	faults := flag.String("faults", "", "fault plan applied to universe acquisition, e.g. rate=0.3,seed=7 (\"\" or \"none\" = clean)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /spans, expvar, and pprof on this address, e.g. localhost:6060 (\"\" = off)")
	flag.Parse()

	var sc exp.Scale
	switch *scaleName {
	case "full":
		sc = exp.Full()
	case "quick":
		sc = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "mube-bench: unknown scale %q (want full or quick)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "mube-bench: -parallel must be >= 0, got %d\n", *parallel)
		os.Exit(2)
	}
	sc.Parallel = *parallel
	plan, err := fault.ParsePlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mube-bench: %v\n", err)
		os.Exit(2)
	}
	if plan.Enabled() {
		sc.Faults = &plan
	}

	if *debugAddr != "" {
		// The recorder feeds the expvar snapshot; attaching it cannot change
		// results (see internal/telemetry's determinism contract).
		ring := telemetry.NewSpanRing(0)
		rec := telemetry.New(ring)
		sc.Rec = rec
		srv, err := startDebugServer(*debugAddr, rec, ring)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mube-bench: debug server: %v\n", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("debug: /metrics, /spans, expvar, and pprof on http://%s/\n", srv.Addr())
	}

	// Universe-scale mode: build a streamed universe at the preset size and
	// solve it end to end, instead of reproducing the paper's figures.
	if *universe != "" {
		names := []string{*universe}
		if *universe == "all" {
			names = names[:0]
			for _, p := range exp.ScalePresets() {
				names = append(names, p.Name)
			}
		}
		fmt.Println(telemetry.Header("mube-bench",
			telemetry.KVStr("universe", *universe),
			telemetry.KVStr("smoke", strconv.FormatBool(*smoke)),
			telemetry.KVInt("eval-workers", sc.Workers()),
			telemetry.KVInt("GOMAXPROCS", runtime.GOMAXPROCS(0)),
		))
		var rows []*exp.ScaleBenchRow
		for _, name := range names {
			preset, err := exp.ScalePresetByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mube-bench: %v\n", err)
				os.Exit(2)
			}
			if *smoke {
				preset = preset.Reduced()
			}
			if *groupWorkers != 0 {
				preset.GroupWorkers = *groupWorkers
			}
			start := time.Now()
			row, err := exp.ScaleBench(preset, sc.Parallel, sc.Rec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mube-bench: universe %s: %v\n", name, err)
				os.Exit(1)
			}
			rows = append(rows, row)
			fmt.Printf("(universe %s in %.1fs)\n", name, time.Since(start).Seconds())
		}
		fmt.Println()
		if err := exp.RenderScaleBench(os.Stdout, rows); err != nil {
			fmt.Fprintf(os.Stderr, "mube-bench: %v\n", err)
			os.Exit(1)
		}
		// Archivable metrics line: per-preset solve wall-clock plus the
		// candidate-index economics of the largest rung, so
		// `mube-bench -universe ... | mube-benchjson -merge` tracks them
		// across commits.
		metrics := make(map[string]float64, len(rows)+3)
		for _, r := range rows {
			metrics["solve_ms_"+r.Preset] = r.SolveMS
		}
		last := rows[len(rows)-1]
		metrics["pair_candidates"] = float64(last.PairCandidates)
		metrics["pair_candidates_frac"] = last.PairFrac()
		metrics["shard_build_ns"] = last.ShardMS * 1e6
		fmt.Println(telemetry.MetricsLine(metrics))
		return
	}

	// Run header: make every printed number attributable to a worker count
	// and a fault plan — degraded runs must never read as clean ones.
	fmt.Println(telemetry.Header("mube-bench",
		telemetry.KVStr("scale", sc.Name),
		telemetry.KVStr("seed", strconv.FormatInt(sc.Seed, 10)),
		telemetry.KVInt("eval-workers", sc.Workers()),
		telemetry.KVStr("faults", plan.String()),
		telemetry.KVInt("GOMAXPROCS", runtime.GOMAXPROCS(0)),
	))
	if plan.Enabled() {
		health, err := sc.Health(sc.BaseUniverse)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mube-bench: acquire base universe: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("base universe (N=%d) acquisition: %s\n", sc.BaseUniverse, health)
		if names := health.DegradedNames(); len(names) > 0 {
			fmt.Printf("  degraded: %s\n", strings.Join(names, " "))
		}
		if names := health.DroppedNames(); len(names) > 0 {
			fmt.Printf("  dropped: %s\n", strings.Join(names, " "))
		}
	}
	fmt.Println()

	ran := 0
	for _, e := range experiments {
		if *expName != "all" && *expName != e.name {
			continue
		}
		ran++
		fmt.Printf("== %s [%s scale] ==\n", e.title, sc.Name)
		start := time.Now()
		if err := e.run(sc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mube-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mube-bench: unknown experiment %q\n", *expName)
		fmt.Fprintf(os.Stderr, "available:")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.name)
		}
		fmt.Fprintln(os.Stderr, " all")
		os.Exit(2)
	}
}
