package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden report files")

// The repo's committed golden traces are the fixtures: the tabu solver's
// unclocked span trace and the watch loop's clocked churn trace.
var (
	tabuTrace  = filepath.Join("..", "..", "internal", "opt", "tabu", "testdata", "golden_trace.jsonl")
	watchTrace = filepath.Join("..", "..", "internal", "watch", "testdata", "golden_trace.jsonl")
)

// render runs the CLI and returns stdout, failing the test on a nonzero exit.
func render(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errb.String())
	}
	return out.String()
}

// checkGolden pins a report's full output byte for byte. Regenerate with
// `go test ./cmd/mube-trace -update` in the same commit that changes the
// trace schema or the rendering.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s diverged from golden (run with -update if intentional)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestFlameGolden(t *testing.T) {
	checkGolden(t, "watch_flame.golden", render(t, "-report", "flame", watchTrace))
	checkGolden(t, "tabu_flame.golden", render(t, "-report", "flame", tabuTrace))
}

func TestWaterfallGolden(t *testing.T) {
	checkGolden(t, "tabu_waterfall.golden", render(t, "-report", "waterfall", tabuTrace))
	// The watch waterfall is one line per span over 50 epochs; pin its head
	// and shape rather than 250 lines of golden bytes.
	out := render(t, "-report", "waterfall", watchTrace)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 200 { // 50 epochs × (tick + churn + reprobe + resolve)
		t.Fatalf("watch waterfall has %d lines, want 200", len(lines))
	}
	for _, want := range []string{"watch.tick [epoch=1]", "| watch.churn", "| | watch.reprobe", "| watch.resolve"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q", want)
		}
	}
}

func TestChurnReport(t *testing.T) {
	out := render(t, "-report", "churn", watchTrace)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 52 { // header + baseline + 50 epochs
		t.Fatalf("churn table has %d lines, want 52:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "epoch") || !strings.Contains(lines[0], "q_after") {
		t.Errorf("churn header: %q", lines[0])
	}
	// A solve trace has no watch.epoch events: the report must say so.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-report", "churn", tabuTrace}, &out2, &err2); code == 0 {
		t.Error("churn on a solve trace succeeded")
	}
}

func TestConvergenceReport(t *testing.T) {
	out := render(t, "-report", "convergence", tabuTrace)
	if !strings.Contains(out, "tabu") || !strings.Contains(out, "0.758506") {
		t.Errorf("convergence report:\n%s", out)
	}
}

func TestCompareSelfIsCleanAndStrictGates(t *testing.T) {
	out := render(t, "-compare", watchTrace, watchTrace)
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("self-compare flagged a regression:\n%s", out)
	}
	if !strings.Contains(out, "watch.tick/watch.resolve") {
		t.Errorf("compare missing nested phase rows:\n%s", out)
	}
	// Build a slowed copy: inflate every t_ns 10×; cum_ns regressions must
	// flag and -strict must gate.
	data, err := os.ReadFile(watchTrace)
	if err != nil {
		t.Fatal(err)
	}
	slow := slowTrace(t, string(data))
	dir := t.TempDir()
	slowPath := filepath.Join(dir, "slow.jsonl")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2, err2 bytes.Buffer
	code := run([]string{"-compare", "-strict", watchTrace, slowPath}, &out2, &err2)
	if code == 0 {
		t.Errorf("strict compare against slowed trace passed:\n%s", out2.String())
	}
	if !strings.Contains(out2.String(), "REGRESSION") {
		t.Errorf("slowed trace not flagged:\n%s", out2.String())
	}
}

// slowTrace multiplies every "t_ns" value by 10 textually, keeping the rest
// of the trace byte-identical.
func slowTrace(t *testing.T, data string) string {
	t.Helper()
	var b strings.Builder
	for _, line := range strings.Split(data, "\n") {
		i := strings.Index(line, `"t_ns":`)
		if i < 0 {
			b.WriteString(line)
			b.WriteString("\n")
			continue
		}
		j := i + len(`"t_ns":`)
		k := j
		for k < len(line) && line[k] >= '0' && line[k] <= '9' {
			k++
		}
		b.WriteString(line[:k])
		if line[j:k] != "0" { // appending to "0" would make invalid JSON "00"
			b.WriteString("0") // ×10
		}
		b.WriteString(line[k:])
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args: code %d", code)
	}
	if code := run([]string{"-report", "bogus", tabuTrace}, &out, &errb); code != 2 {
		t.Errorf("bad report: code %d", code)
	}
	if code := run([]string{"-compare", tabuTrace}, &out, &errb); code != 2 {
		t.Errorf("compare with one file: code %d", code)
	}
	if code := run([]string{filepath.Join("testdata", "missing.jsonl")}, &out, &errb); code != 1 {
		t.Errorf("missing file: code %d", code)
	}
}
