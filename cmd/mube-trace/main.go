// Command mube-trace reads the JSONL traces written by `mube solve -trace`,
// `mube watch -trace`, and the bench/experiment harnesses, reconstructs the
// span tree, and renders profiling reports:
//
//	mube-trace trace.jsonl                     # flame profile (default)
//	mube-trace -report waterfall trace.jsonl   # chronological span listing
//	mube-trace -report churn trace.jsonl       # per-epoch churn diff table
//	mube-trace -report convergence trace.jsonl # per-solve Q convergence
//	mube-trace -compare old.jsonl new.jsonl    # phase-profile diff
//
// The flame report aggregates spans by tree path into per-phase cumulative
// and self time (span counts on unclocked traces), the waterfall lists every
// span occurrence with its inherited attribute context, churn tabulates the
// watch loop's per-epoch delta events, and convergence summarizes each
// solver run's Q trajectory.
//
// -compare diffs two traces' phase profiles with the same direction-aware
// regression flags as mube-benchjson: cumulative/self nanoseconds are
// lower-better, changes worse than 10% flag as REGRESSION, and -strict turns
// any flag into a nonzero exit for CI gating. Span counts and event counts
// print as informational context.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"mube/internal/benchcmp"
	"mube/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mube-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	report := fs.String("report", "flame", "report to render: flame, waterfall, churn, convergence")
	compare := fs.Bool("compare", false, "diff two traces' phase profiles (old.jsonl new.jsonl)")
	strict := fs.Bool("strict", false, "with -compare: exit nonzero when any metric regressed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "mube-trace: -compare needs exactly two trace files (old new)")
			return 2
		}
		regressions, err := runCompare(stdout, fs.Arg(0), fs.Arg(1))
		if err != nil {
			fmt.Fprintf(stderr, "mube-trace: %v\n", err)
			return 1
		}
		if *strict && regressions > 0 {
			return 1
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mube-trace [-report flame|waterfall|churn|convergence] trace.jsonl")
		fmt.Fprintln(stderr, "       mube-trace -compare [-strict] old.jsonl new.jsonl")
		return 2
	}
	evs, err := loadTrace(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "mube-trace: %v\n", err)
		return 1
	}
	switch *report {
	case "flame":
		err = telemetry.WriteFlame(stdout, telemetry.BuildTree(evs))
	case "waterfall":
		err = telemetry.WriteWaterfall(stdout, telemetry.BuildTree(evs))
	case "churn":
		err = writeChurn(stdout, evs)
	case "convergence":
		err = writeConvergence(stdout, evs)
	default:
		fmt.Fprintf(stderr, "mube-trace: unknown report %q\n", *report)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "mube-trace: %v\n", err)
		return 1
	}
	return 0
}

func loadTrace(path string) ([]telemetry.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := telemetry.ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return evs, nil
}

// attrInt / attrFloat read typed attrs leniently: a missing or differently
// typed key reads as zero, so reports degrade instead of erroring on traces
// from older schemas.
func attrInt(ev telemetry.Event, key string) int64 {
	if v, ok := ev.Attr(key); ok {
		if n, ok := v.(int64); ok {
			return n
		}
	}
	return 0
}

func attrFloat(ev telemetry.Event, key string) float64 {
	if v, ok := ev.Attr(key); ok {
		switch x := v.(type) {
		case float64:
			return x
		case int64:
			return float64(x)
		}
	}
	return 0
}

func attrStr(ev telemetry.Event, key string) string {
	if v, ok := ev.Attr(key); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return ""
}

// writeChurn tabulates watch.epoch events — the per-epoch account of what
// churn did (deaths, drops, degradations, recoveries, drift, arrivals) and
// what the re-solve recovered.
func writeChurn(w io.Writer, evs []telemetry.Event) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "epoch\tsources\tdied\tdropped\tdegraded\trecovered\tdrifted\tarrived\tcons_dropped\tq_before\tq_after\twarm_evals\tcold_evals\tstatus\t")
	n := 0
	for _, ev := range evs {
		if ev.Name != "watch.epoch" {
			continue
		}
		n++
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.6f\t%.6f\t%d\t%d\t%s\t\n",
			attrInt(ev, "epoch"), attrInt(ev, "sources"), attrInt(ev, "died"),
			attrInt(ev, "dropped"), attrInt(ev, "degraded"), attrInt(ev, "recovered"),
			attrInt(ev, "drifted"), attrInt(ev, "arrived"), attrInt(ev, "cons_dropped"),
			attrFloat(ev, "q_before"), attrFloat(ev, "q_after"),
			attrInt(ev, "warm_evals"), attrInt(ev, "cold_evals"), attrStr(ev, "status"))
	}
	if n == 0 {
		return fmt.Errorf("no watch.epoch events (not a watch trace?)")
	}
	return tw.Flush()
}

// convRun accumulates one solver run's iteration stream.
type convRun struct {
	sid                 int64
	solver              string
	iters               int
	firstQ, bestQ       float64
	itersToBest         int
	doneEvals           int64
	doneStatus          string
	haveIter, haveFirst bool
}

// writeConvergence summarizes each solver run's Q trajectory: iterations,
// starting and best Q, how many iterations the best took to reach, and the
// evaluator spend reported by solver.done. Runs are keyed by the enclosing
// span id, so nested solves (partition groups, watch epochs) stay separate;
// pre-span traces fall into one sid-0 bucket per solver.done boundary.
func writeConvergence(w io.Writer, evs []telemetry.Event) error {
	var runs []*convRun
	bySID := map[int64]*convRun{}
	get := func(sid int64) *convRun {
		r := bySID[sid]
		if r == nil {
			r = &convRun{sid: sid}
			bySID[sid] = r
			runs = append(runs, r)
		}
		return r
	}
	for _, ev := range evs {
		switch ev.Name {
		case "solver.iter":
			r := get(ev.SID)
			r.iters++
			r.haveIter = true
			if r.solver == "" {
				r.solver = attrStr(ev, "solver")
			}
			best := attrFloat(ev, "best_q")
			if !r.haveFirst {
				r.firstQ, r.haveFirst = best, true
			}
			if best > r.bestQ {
				r.bestQ = best
				r.itersToBest = r.iters
			}
		case "solver.done":
			r := get(ev.SID)
			if r.solver == "" {
				r.solver = attrStr(ev, "solver")
			}
			r.doneEvals = attrInt(ev, "evals")
			r.doneStatus = attrStr(ev, "status")
			if !r.haveIter {
				r.bestQ = attrFloat(ev, "best_q")
			}
			// A sid-0 stream has no span boundaries: close the bucket at
			// solver.done so the next run starts fresh.
			if ev.SID == 0 {
				delete(bySID, int64(0))
			}
		}
	}
	if len(runs) == 0 {
		return fmt.Errorf("no solver.iter/solver.done events (not a solve trace?)")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "run\tsolver\titers\tq_first\tq_best\titers_to_best\tevals\tstatus\t")
	for i, r := range runs {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.6f\t%.6f\t%d\t%d\t%s\t\n",
			i+1, r.solver, r.iters, r.firstQ, r.bestQ, r.itersToBest, r.doneEvals, r.doneStatus)
	}
	return tw.Flush()
}

// profileScopes flattens a trace's phase profile into benchcmp's scoped
// metric shape: per phase path, cumulative/self nanoseconds plus span and
// event counts; final Q per phase rides along as informational context.
func profileScopes(evs []telemetry.Event) map[string]map[string]float64 {
	scopes := make(map[string]map[string]float64)
	for _, st := range telemetry.Profile(telemetry.BuildTree(evs)) {
		m := map[string]float64{
			"cum_ns":  float64(st.CumNS),
			"self_ns": float64(st.SelfNS),
			"spans":   float64(st.Count),
			"events":  float64(st.Events),
		}
		if st.HasQ {
			m["q_last"] = st.QLast
		}
		scopes[st.Path] = m
	}
	return scopes
}

func runCompare(w io.Writer, oldPath, newPath string) (int, error) {
	oldEvs, err := loadTrace(oldPath)
	if err != nil {
		return 0, err
	}
	newEvs, err := loadTrace(newPath)
	if err != nil {
		return 0, err
	}
	oldScopes, newScopes := profileScopes(oldEvs), profileScopes(newEvs)
	rows, regressions := benchcmp.Compare(oldScopes, newScopes, benchcmp.Default)
	if len(rows) == 0 {
		return 0, fmt.Errorf("no common phases between %s and %s", oldPath, newPath)
	}
	if err := benchcmp.Render(w, rows, regressions); err != nil {
		return 0, err
	}
	// Phases appearing or disappearing are a structural change worth naming
	// even when no shared metric moved.
	var gained, lost []string
	for p := range newScopes {
		if _, ok := oldScopes[p]; !ok {
			gained = append(gained, p)
		}
	}
	for p := range oldScopes {
		if _, ok := newScopes[p]; !ok {
			lost = append(lost, p)
		}
	}
	sort.Strings(gained)
	sort.Strings(lost)
	if len(gained) > 0 {
		fmt.Fprintf(w, "\nphases only in %s: %s\n", newPath, strings.Join(gained, ", "))
	}
	if len(lost) > 0 {
		fmt.Fprintf(w, "phases only in %s: %s\n", oldPath, strings.Join(lost, ", "))
	}
	return regressions, nil
}
