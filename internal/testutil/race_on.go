//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-budget regression tests skip under race: the detector's
// instrumentation inflates (and destabilizes) AllocsPerRun counts.
const RaceEnabled = true
