// Package testutil builds small, fully controlled universes for tests across
// the repository. It is not part of µBE's public surface.
package testutil

import (
	"math/rand"
	"testing"

	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

// SigConfig is the signature shape used by test universes.
var SigConfig = pcsa.Config{NumMaps: 64}

// Spec describes one test source.
type Spec struct {
	Name  string
	Attrs []string
	// Lo, Hi delimit the tuple range [Lo, Hi); Hi == 0 makes the source
	// uncooperative.
	Lo, Hi uint64
	// Chars are optional source characteristics.
	Chars map[string]float64
}

// Universe materializes the specs into a universe.
func Universe(t testing.TB, specs []Spec) *source.Universe {
	t.Helper()
	u := source.NewUniverse(SigConfig)
	for _, sp := range specs {
		var s *source.Source
		if sp.Hi == 0 {
			s = source.Uncooperative(sp.Name, schema.NewSchema(sp.Attrs...))
		} else {
			tuples := make([]source.TupleID, 0, sp.Hi-sp.Lo)
			for x := sp.Lo; x < sp.Hi; x++ {
				tuples = append(tuples, x)
			}
			var err error
			s, err = source.FromTuples(sp.Name, schema.NewSchema(sp.Attrs...),
				source.NewSliceIterator(tuples), SigConfig)
			if err != nil {
				t.Fatal(err)
			}
		}
		for k, v := range sp.Chars {
			s.SetCharacteristic(k, v)
		}
		if _, err := u.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

// BooksUniverse builds a 12-source universe in a miniature Books domain with
// three concepts (title, author, price) expressed through name variants,
// varied cardinalities and overlaps, and an MTTF characteristic — small
// enough for the exhaustive oracle yet rich enough to exercise every QEF.
func BooksUniverse(t testing.TB) *source.Universe {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	titles := []string{"title", "book title", "title of book"}
	authors := []string{"author", "author name", "writer"}
	prices := []string{"price", "price range", "list price"}
	specs := make([]Spec, 0, 12)
	for i := 0; i < 12; i++ {
		attrs := []string{
			titles[i%len(titles)],
			authors[(i/2)%len(authors)],
		}
		if i%3 != 0 {
			attrs = append(attrs, prices[i%len(prices)])
		}
		if i%4 == 3 {
			attrs = append(attrs, "zzz-noise") // unmatched attribute
		}
		lo := uint64(r.Intn(5)) * 5000
		hi := lo + 5000 + uint64(r.Intn(4))*5000
		specs = append(specs, Spec{
			Name:  "books-" + string(rune('a'+i)),
			Attrs: attrs,
			Lo:    lo,
			Hi:    hi,
			Chars: map[string]float64{"mttf": 50 + float64(r.Intn(150))},
		})
	}
	return Universe(t, specs)
}
