package testutil

import "mube/internal/testutil/approx"

// Epsilon and AlmostEqual re-export the approx helpers so tests that
// already build on testutil need only one import. Packages beneath testutil
// in the dependency order (source, schema, pcsa, minhash) import
// testutil/approx directly instead.
const Epsilon = approx.Epsilon

// AlmostEqual reports whether a and b differ by at most Epsilon.
func AlmostEqual(a, b float64) bool { return approx.AlmostEqual(a, b) }

// AlmostEqualEps reports whether a and b differ by at most eps.
func AlmostEqualEps(a, b, eps float64) bool { return approx.AlmostEqualEps(a, b, eps) }
