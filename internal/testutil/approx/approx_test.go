package approx

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},             // below Epsilon
		{1, 1 + 1e-6, false},             // above Epsilon
		{0.1 + 0.2, 0.3, true},           // the classic accumulation ulp
		{math.Inf(1), math.Inf(1), true}, // equal infinities
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false}, // NaN never compares equal
		{-1e-12, 1e-12, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("AlmostEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAlmostEqualEps(t *testing.T) {
	if !AlmostEqualEps(1, 1.05, 0.1) {
		t.Error("1 vs 1.05 should pass at eps=0.1")
	}
	if AlmostEqualEps(1, 1.2, 0.1) {
		t.Error("1 vs 1.2 should fail at eps=0.1")
	}
	if !AlmostEqualEps(math.Inf(-1), math.Inf(-1), 0.1) {
		t.Error("equal infinities should pass at any eps")
	}
}
