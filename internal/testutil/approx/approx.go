// Package approx provides the repo's one blessed way to compare floats.
// It is a leaf package (no µBE imports) so that even the packages testutil
// itself builds on — source, schema, pcsa, minhash — can use it from their
// in-package tests without an import cycle.
package approx

import "math"

// Epsilon is the default absolute tolerance. Quality scores Q(S) are
// weighted sums of a handful of [0,1] terms, so any true difference is
// orders of magnitude above 1e-9 while accumulation noise sits well below.
const Epsilon = 1e-9

// AlmostEqual reports whether a and b differ by at most Epsilon.
func AlmostEqual(a, b float64) bool {
	return AlmostEqualEps(a, b, Epsilon)
}

// AlmostEqualEps reports whether a and b differ by at most eps. Equal
// values — including equal infinities — compare true even where the
// subtraction would produce NaN.
func AlmostEqualEps(a, b, eps float64) bool {
	//mube:vet-ignore floatcmp — the epsilon helper's infinity fast path
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps
}
