// Package minhash implements MinHash signatures over attribute value sets —
// the synopsis behind µBE's *data-based* attribute similarity (§3 allows
// "any attribute similarity measure, whether it is schema based or data
// based"). Two attributes whose value sets overlap heavily are likely the
// same concept even when their names share nothing (a source that renamed
// its "author" field still serves author values).
//
// The implementation is one-permutation hashing (OPH): a single hash routes
// each value to one of k buckets, which keeps that bucket's minimum hash.
// Insertion is O(1) — cheap enough to sketch every attribute of every source
// in one data pass — and the fraction of agreeing non-empty buckets
// estimates the Jaccard similarity of the underlying value sets. Taking the
// element-wise minimum of two signatures yields the signature of the union —
// the same cooperation model as the PCSA cardinality signatures: sources
// compute them in one pass and µBE caches them.
package minhash

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Signature is a k-permutation MinHash synopsis. The zero value is unusable;
// construct with New.
type Signature struct {
	seed uint64
	mins []uint64
}

// DefaultK is the default signature width: 128 slots give a standard error
// of ≈ 1/√128 ≈ 9% on Jaccard estimates at 1 KiB per attribute.
const DefaultK = 128

// New returns an empty signature with k slots under the given seed. All
// signatures that are compared or merged must share k and seed.
func New(k int, seed uint64) (*Signature, error) {
	if k <= 0 {
		return nil, fmt.Errorf("minhash: k must be positive, got %d", k)
	}
	s := &Signature{seed: seed, mins: make([]uint64, k)}
	for i := range s.mins {
		s.mins[i] = ^uint64(0)
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(k int, seed uint64) *Signature {
	s, err := New(k, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// K returns the signature width.
func (s *Signature) K() int { return len(s.mins) }

// mix is the SplitMix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddUint64 inserts a value identified by x. O(1): the value's hash selects
// one bucket and updates its minimum.
func (s *Signature) AddUint64(x uint64) {
	h := mix(x ^ mix(s.seed))
	b := h % uint64(len(s.mins))
	if h < s.mins[b] {
		s.mins[b] = h
	}
}

// AddString inserts a string value (FNV-1a folded).
func (s *Signature) AddString(v string) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= prime
	}
	s.AddUint64(h)
}

// Empty reports whether no value has been inserted.
func (s *Signature) Empty() bool {
	for _, m := range s.mins {
		if m != ^uint64(0) {
			return false
		}
	}
	return true
}

// Slots calls yield for every occupied slot, in ascending slot order, with
// the slot's minimum hash; it stops early when yield returns false. This is
// the banding hook for candidate generation: Jaccard estimates below are
// positive only when some occupied slot holds the same minimum in both
// signatures, so two signatures with a positive estimate share at least one
// (slot, min) band.
func (s *Signature) Slots(yield func(slot int, min uint64) bool) {
	for i, m := range s.mins {
		if m == ^uint64(0) {
			continue
		}
		if !yield(i, m) {
			return
		}
	}
}

// ErrIncompatible is returned when comparing or merging signatures of
// different shape or seed.
var ErrIncompatible = errors.New("minhash: incompatible signatures")

// Jaccard estimates the Jaccard similarity of the two underlying value sets:
// the fraction of agreeing buckets among buckets that are non-empty in at
// least one signature (the empty-aware OPH estimator, which stays unbiased
// for value sets smaller than k). Two empty signatures estimate 0.
func (s *Signature) Jaccard(o *Signature) (float64, error) {
	if len(s.mins) != len(o.mins) || s.seed != o.seed {
		return 0, ErrIncompatible
	}
	const empty = ^uint64(0)
	eq, occupied := 0, 0
	for i := range s.mins {
		a, b := s.mins[i], o.mins[i]
		if a == empty && b == empty {
			continue
		}
		occupied++
		if a == b {
			eq++
		}
	}
	if occupied == 0 {
		return 0, nil
	}
	return float64(eq) / float64(occupied), nil
}

// MergeFrom folds o into s, making s the signature of the union of the two
// value sets.
func (s *Signature) MergeFrom(o *Signature) error {
	if len(s.mins) != len(o.mins) || s.seed != o.seed {
		return ErrIncompatible
	}
	for i, m := range o.mins {
		if m < s.mins[i] {
			s.mins[i] = m
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *Signature) Clone() *Signature {
	c := &Signature{seed: s.seed, mins: make([]uint64, len(s.mins))}
	copy(c.mins, s.mins)
	return c
}

// magic identifies the binary encoding.
const magic = 0x4d484153 // "MHAS"

// MarshalBinary encodes the signature for caching or transmission.
func (s *Signature) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, 4+4+8+8*len(s.mins)))
}

// AppendBinary appends the signature's binary encoding to buf and returns the
// extended slice, so bulk serialization can reuse one buffer across
// signatures.
func (s *Signature) AppendBinary(buf []byte) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.mins)))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	for _, m := range s.mins {
		buf = binary.LittleEndian.AppendUint64(buf, m)
	}
	return buf, nil
}

// UnmarshalBinary decodes a signature written by MarshalBinary.
func (s *Signature) UnmarshalBinary(data []byte) error {
	if len(data) < 16 || binary.LittleEndian.Uint32(data[0:]) != magic {
		return errors.New("minhash: bad signature encoding")
	}
	k := int(binary.LittleEndian.Uint32(data[4:]))
	if k <= 0 || len(data) != 16+8*k {
		return errors.New("minhash: truncated signature")
	}
	s.seed = binary.LittleEndian.Uint64(data[8:])
	s.mins = make([]uint64, k)
	for i := range s.mins {
		s.mins[i] = binary.LittleEndian.Uint64(data[16+8*i:])
	}
	return nil
}
