package minhash

import (
	"math"
	"testing"
	"testing/quick"

	"mube/internal/testutil/approx"
)

// build returns a signature over the integer range [lo, hi).
func build(t testing.TB, k int, seed uint64, lo, hi uint64) *Signature {
	t.Helper()
	s := MustNew(k, seed)
	for x := lo; x < hi; x++ {
		s.AddUint64(x)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(-5, 1); err == nil {
		t.Error("negative k accepted")
	}
	s := MustNew(64, 1)
	if s.K() != 64 || !s.Empty() {
		t.Errorf("fresh signature: K=%d Empty=%v", s.K(), s.Empty())
	}
	s.AddUint64(7)
	if s.Empty() {
		t.Error("signature with a value reports Empty")
	}
}

func TestJaccardEstimates(t *testing.T) {
	const k = 512 // SE ≈ 4.4%
	cases := []struct {
		aLo, aHi, bLo, bHi uint64
		want               float64
	}{
		{0, 1000, 0, 1000, 1.0},         // identical
		{0, 1000, 500, 1500, 1.0 / 3.0}, // |∩|=500, |∪|=1500
		{0, 1000, 1000, 2000, 0.0},      // disjoint
		{0, 2000, 0, 1000, 0.5},         // containment
	}
	for _, c := range cases {
		a := build(t, k, 9, c.aLo, c.aHi)
		b := build(t, k, 9, c.bLo, c.bHi)
		got, err := a.Jaccard(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.12 {
			t.Errorf("J([%d,%d),[%d,%d)) = %.3f, want ≈%.3f", c.aLo, c.aHi, c.bLo, c.bHi, got, c.want)
		}
	}
}

func TestJaccardSymmetricAndBounded(t *testing.T) {
	prop := func(seedA, seedB uint8) bool {
		a := build(t, 128, 3, uint64(seedA), uint64(seedA)+200)
		b := build(t, 128, 3, uint64(seedB), uint64(seedB)+300)
		ab, err1 := a.Jaccard(b)
		ba, err2 := b.Jaccard(a)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx.AlmostEqual(ab, ba) && ab >= 0 && ab <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIncompatible(t *testing.T) {
	a := MustNew(64, 1)
	b := MustNew(128, 1)
	c := MustNew(64, 2)
	if _, err := a.Jaccard(b); err != ErrIncompatible {
		t.Errorf("size mismatch: %v", err)
	}
	if _, err := a.Jaccard(c); err != ErrIncompatible {
		t.Errorf("seed mismatch: %v", err)
	}
	if err := a.MergeFrom(b); err != ErrIncompatible {
		t.Errorf("merge size mismatch: %v", err)
	}
}

func TestMergeIsUnion(t *testing.T) {
	const k = 256
	a := build(t, k, 5, 0, 1000)
	b := build(t, k, 5, 500, 1500)
	direct := build(t, k, 5, 0, 1500)
	merged := a.Clone()
	if err := merged.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	j, err := merged.Jaccard(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.AlmostEqual(j, 1) {
		t.Errorf("merged signature differs from union signature: J = %v", j)
	}
	// Clone independence.
	clone := a.Clone()
	clone.AddUint64(999999)
	if ja, _ := a.Jaccard(clone); approx.AlmostEqual(ja, 1) && !a.Empty() {
		// Possible but astronomically unlikely for one extra min update;
		// check the underlying slices are separate instead.
		a.mins[0] = 0
		if clone.mins[0] == 0 {
			t.Error("Clone shares storage")
		}
	}
}

func TestStringsAndDuplicates(t *testing.T) {
	a := MustNew(128, 7)
	b := MustNew(128, 7)
	for i := 0; i < 10; i++ {
		a.AddString("value-x")
		a.AddString("value-y")
	}
	b.AddString("value-x")
	b.AddString("value-y")
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.AlmostEqual(j, 1) {
		t.Errorf("duplicates changed the signature: J = %v", j)
	}
}

func TestEmptyJaccard(t *testing.T) {
	a := MustNew(64, 1)
	b := MustNew(64, 1)
	if j, _ := a.Jaccard(b); j != 0 {
		t.Errorf("empty vs empty = %v, want 0", j)
	}
	b.AddUint64(1)
	if j, _ := a.Jaccard(b); j != 0 {
		t.Errorf("empty vs non-empty = %v, want 0", j)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := build(t, 128, 11, 0, 500)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Signature
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if j, err := a.Jaccard(&back); err != nil || !approx.AlmostEqual(j, 1) {
		t.Errorf("round trip: J=%v err=%v", j, err)
	}
	if err := back.UnmarshalBinary(data[:10]); err == nil {
		t.Error("truncated data accepted")
	}
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Error("nil data accepted")
	}
}
