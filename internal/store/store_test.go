package store

import (
	"strings"
	"testing"

	"mube/internal/schema"
)

func table(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(schema.NewSchema("title", "author"))
	tb.MustAppend(Row{"dune", "herbert"})
	tb.MustAppend(Row{"emma", "austen"})
	tb.MustAppend(Row{"hamlet", "shakespeare"})
	return tb
}

func TestAppendArity(t *testing.T) {
	tb := NewTable(schema.NewSchema("a", "b"))
	if err := tb.Append(Row{"1"}); err == nil {
		t.Error("short row accepted")
	}
	if err := tb.Append(Row{"1", "2", "3"}); err == nil {
		t.Error("long row accepted")
	}
	if err := tb.Append(Row{"1", "2"}); err != nil {
		t.Errorf("correct row rejected: %v", err)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend did not panic on bad arity")
		}
	}()
	NewTable(schema.NewSchema("a")).MustAppend(Row{"1", "2"})
}

func TestScanStopsEarly(t *testing.T) {
	tb := table(t)
	n := 0
	tb.Scan(func(Row) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("scanned %d rows, want 2", n)
	}
}

func TestSelect(t *testing.T) {
	tb := table(t)
	got := tb.Select(1, func(v string) bool { return v == "austen" })
	if len(got) != 1 || got[0][0] != "emma" {
		t.Errorf("Select = %v", got)
	}
	if out := tb.Select(5, func(string) bool { return true }); out != nil {
		t.Error("out-of-range attribute should select nothing")
	}
	all := tb.Select(0, func(string) bool { return true })
	if len(all) != 3 {
		t.Errorf("Select all = %d rows", len(all))
	}
}

func TestRowCloneIndependent(t *testing.T) {
	tb := table(t)
	c := tb.Row(0).Clone()
	c[0] = "changed"
	if tb.Row(0)[0] != "dune" {
		t.Error("Clone shares backing array")
	}
}

func TestStringTruncates(t *testing.T) {
	tb := NewTable(schema.NewSchema("x"))
	for i := 0; i < 15; i++ {
		tb.MustAppend(Row{"v"})
	}
	s := tb.String()
	if !strings.Contains(s, "5 more") {
		t.Errorf("String missing truncation note: %q", s)
	}
	if tb.Schema().Len() != 1 {
		t.Error("Schema accessor broken")
	}
}
