// Package store provides the in-memory row storage behind µBE's mediator
// query substrate. The selection/mediation layers of µBE only ever see
// synopses (cardinalities and PCSA signatures); this package holds the
// actual rows so that a *chosen* data integration system can be queried
// (package mediator), completing the life cycle the paper's introduction
// describes — retrieve data from the sources, map it to the global mediated
// schema, and resolve inconsistencies.
package store

import (
	"fmt"
	"strings"

	"mube/internal/schema"
)

// Row is one tuple: values aligned positionally with a source schema's
// attributes.
type Row []string

// Clone returns an independent copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Table is the row store of one source.
type Table struct {
	sch  schema.Schema
	rows []Row
}

// NewTable returns an empty table over the schema.
func NewTable(sch schema.Schema) *Table {
	return &Table{sch: sch}
}

// Schema returns the table's schema.
func (t *Table) Schema() schema.Schema { return t.sch }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Append adds a row; its arity must match the schema.
func (t *Table) Append(r Row) error {
	if len(r) != t.sch.Len() {
		return fmt.Errorf("store: row arity %d does not match schema arity %d", len(r), t.sch.Len())
	}
	t.rows = append(t.rows, r)
	return nil
}

// MustAppend is Append that panics; for tests and generators.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Row returns row i. The returned slice must not be modified.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Scan calls fn for every row until fn returns false.
func (t *Table) Scan(fn func(Row) bool) {
	for _, r := range t.rows {
		if !fn(r) {
			return
		}
	}
}

// Select returns the rows matching pred on attribute attr.
func (t *Table) Select(attr int, pred func(string) bool) []Row {
	if attr < 0 || attr >= t.sch.Len() {
		return nil
	}
	var out []Row
	for _, r := range t.rows {
		if pred(r[attr]) {
			out = append(out, r)
		}
	}
	return out
}

// String renders a small table for debugging.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.sch.String())
	b.WriteByte('\n')
	for i, r := range t.rows {
		if i == 10 {
			fmt.Fprintf(&b, "... (%d more)\n", len(t.rows)-10)
			break
		}
		b.WriteString(strings.Join(r, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}
