// Package probe builds sources — and whole universes — from possibly-failing
// tuple streams. The paper assumes cooperative sources export their synopses
// on request (§4); at Internet scale that request fails routinely, so the
// prober retries each source with bounded exponential backoff and seeded
// jitter under a per-probe deadline, trips a per-source circuit breaker when
// a source never answers at all, and — crucially — degrades instead of
// aborting: a cooperative source whose synopsis scan cannot be completed is
// downgraded to an *uncooperative* one (§4's own fallback: it still exports
// its schema and characteristics and can still be selected, it just scores
// zero on the data-dependent QEFs). Universe construction therefore always
// completes, and a HealthReport records exactly what happened to every
// source.
//
// Determinism: probing is sequential, all randomness comes from the seeded
// backoff RNG and the fault injector's pure per-(source, attempt) draws, and
// time flows through an injected fault.Clock — so identical plans and seeds
// produce bit-identical universes and reports at any evaluator worker count.
package probe

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mube/internal/fault"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/telemetry"
)

// Status classifies the final outcome of probing one source.
type Status string

const (
	// StatusHealthy: the synopsis scan completed (or the source is
	// schema-only by design) and the source joined the universe unchanged.
	StatusHealthy Status = "healthy"
	// StatusDegraded: every scan attempt failed but the source answered at
	// least once, so it joined the universe as uncooperative.
	StatusDegraded Status = "degraded"
	// StatusDropped: the circuit breaker tripped — BreakerLimit consecutive
	// handshake failures without a single answer — and the source was
	// excluded from the universe.
	StatusDropped Status = "dropped"
)

// Policy bounds the prober's persistence per source.
type Policy struct {
	// MaxAttempts is the number of synopsis-scan attempts per source.
	// Default 4.
	MaxAttempts int
	// BaseBackoff is the first retry delay; each subsequent retry doubles
	// it up to MaxBackoff, with seeded half-range jitter. Defaults 100ms /
	// 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// ProbeTimeout is the per-probe deadline: an attempt whose injected
	// latency alone exceeds it fails with fault.ErrDeadline. Zero means no
	// deadline.
	ProbeTimeout time.Duration
	// BreakerLimit is the number of *consecutive* handshake failures
	// (fault.ErrUnreachable — the source never answered) that trips the
	// per-source circuit breaker and drops the source outright. Any answer,
	// even a failing scan, resets the count. Default MaxAttempts, so a
	// source is never dropped unless every attempt ended before the
	// handshake.
	BreakerLimit int
}

// WithDefaults fills zero fields with the package defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.BreakerLimit == 0 {
		p.BreakerLimit = p.MaxAttempts
	}
	return p
}

// Candidate is one source to acquire: its schema and characteristics are
// known (from discovery), its synopsis must be probed. A nil Open marks a
// source that is uncooperative by design — it joins schema-only without
// probing.
type Candidate struct {
	Name            string
	Schema          schema.Schema
	Characteristics map[string]float64
	// Open starts one fresh tuple scan; the prober calls it once per
	// attempt.
	Open func() source.TupleIterator
}

// Result records the probing outcome for one source.
type Result struct {
	// Name identifies the source (IDs are assigned only to kept sources).
	Name string `json:"name"`
	// Status is the final outcome.
	Status Status `json:"status"`
	// Attempts is the number of probe attempts made (0 for schema-only
	// candidates).
	Attempts int `json:"attempts"`
	// Retries is Attempts-1 for probed sources, 0 otherwise.
	Retries int `json:"retries"`
	// ID is the source's ID in the constructed universe, or -1 if dropped.
	ID schema.SourceID `json:"id"`
	// Err is the last probe error, "" when healthy.
	Err string `json:"err,omitempty"`
}

// HealthReport summarizes an acquisition run: what the universe is made of
// despite N sources misbehaving.
type HealthReport struct {
	// Plan is the canonical fault-plan string in effect ("none" when clean).
	Plan string `json:"plan"`
	// Probed counts candidates that required a synopsis scan.
	Probed int `json:"probed"`
	// Healthy/Degraded/Dropped partition all candidates.
	Healthy  int `json:"healthy"`
	Degraded int `json:"degraded"`
	Dropped  int `json:"dropped"`
	// Sources holds one Result per candidate, in acquisition order.
	Sources []Result `json:"sources"`
}

// DegradedNames lists the sources that were downgraded to uncooperative.
func (h *HealthReport) DegradedNames() []string {
	var names []string
	for _, r := range h.Sources {
		if r.Status == StatusDegraded {
			names = append(names, r.Name)
		}
	}
	return names
}

// DroppedNames lists the sources the circuit breaker excluded.
func (h *HealthReport) DroppedNames() []string {
	var names []string
	for _, r := range h.Sources {
		if r.Status == StatusDropped {
			names = append(names, r.Name)
		}
	}
	return names
}

// String renders a one-line summary for run headers.
func (h *HealthReport) String() string {
	return fmt.Sprintf("faults=%s probed=%d healthy=%d degraded=%d dropped=%d",
		h.Plan, h.Probed, h.Healthy, h.Degraded, h.Dropped)
}

// Clone deep-copies the report; a nil receiver clones to nil.
func (h *HealthReport) Clone() *HealthReport {
	if h == nil {
		return nil
	}
	cp := *h
	cp.Sources = append([]Result(nil), h.Sources...)
	return &cp
}

// add appends r and updates the aggregate counters.
func (h *HealthReport) add(r Result) {
	h.Sources = append(h.Sources, r)
	switch r.Status {
	case StatusHealthy:
		h.Healthy++
	case StatusDegraded:
		h.Degraded++
	case StatusDropped:
		h.Dropped++
	}
}

// Prober acquires sources under a retry policy, a fault injector (nil for a
// clean network), and an injected clock.
type Prober struct {
	policy Policy
	clock  fault.Clock
	inj    *fault.Injector
	rng    *rand.Rand          // backoff jitter only
	rec    *telemetry.Recorder // nil = telemetry off
}

// Instrument attaches a telemetry recorder (nil disables) and returns the
// prober for chaining. To stamp probe events with virtual time, build the
// recorder with telemetry.NewClocked over the same fault.Clock the prober
// uses. Telemetry never influences probing: fates, backoff draws, and the
// resulting universe are identical with or without it.
func (p *Prober) Instrument(rec *telemetry.Recorder) *Prober {
	p.rec = rec
	return p
}

// New returns a prober. clock may be nil, selecting a virtual clock starting
// at the zero time; inj may be nil for fault-free acquisition. seed drives
// backoff jitter (which is the prober's only stochastic choice).
func New(policy Policy, clock fault.Clock, inj *fault.Injector, seed int64) *Prober {
	if clock == nil {
		clock = fault.NewVirtualClock(time.Time{})
	}
	return &Prober{
		policy: policy.WithDefaults(),
		clock:  clock,
		inj:    inj,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Probe acquires one candidate under the policy. It never fails universe
// construction: the returned source is nil only when Status is
// StatusDropped.
func (p *Prober) Probe(c Candidate, cfg pcsa.Config) (*source.Source, Result) {
	res := Result{Name: c.Name, ID: -1}
	if c.Open == nil {
		// Uncooperative by design: nothing to probe.
		res.Status = StatusHealthy
		p.record(res)
		return p.schemaOnly(c), res
	}
	consecHandshake := 0
	for attempt := 1; attempt <= p.policy.MaxAttempts; attempt++ {
		res.Attempts = attempt
		res.Retries = attempt - 1
		s, err := p.probeOnce(c, cfg, attempt)
		if err == nil {
			res.Status = StatusHealthy
			res.Err = ""
			p.record(res)
			return s, res
		}
		res.Err = err.Error()
		if p.rec != nil {
			p.rec.Emit("probe.attempt",
				telemetry.Str("source", c.Name),
				telemetry.Int("attempt", attempt),
				telemetry.Str("err", err.Error()))
		}
		if errors.Is(err, fault.ErrUnreachable) {
			consecHandshake++
			if consecHandshake >= p.policy.BreakerLimit {
				// Breaker open: the source never answered once. Past this
				// limit it is dropped rather than degraded — there is no
				// evidence it exists at all anymore.
				res.Status = StatusDropped
				p.rec.Add("probe.breaker_trips", 1)
				p.record(res)
				return nil, res
			}
		} else {
			consecHandshake = 0
		}
		if attempt < p.policy.MaxAttempts {
			d := p.backoff(attempt)
			if p.rec != nil {
				p.rec.Add("probe.backoff_ns", d.Nanoseconds())
				p.rec.Emit("probe.backoff",
					telemetry.Str("source", c.Name),
					telemetry.Int("attempt", attempt),
					telemetry.Int64("wait_ns", d.Nanoseconds()))
			}
			p.clock.Sleep(d)
		}
	}
	// Retries exhausted but the source answered at least once: degrade to
	// uncooperative (§4 — it still exports schema and characteristics).
	res.Status = StatusDegraded
	p.record(res)
	return p.schemaOnly(c), res
}

// record tallies one finished probe into the run's metrics and emits the
// probe.result event. Probing is sequential, so emission order — and with it
// the trace bytes — is a pure function of the candidate list, plan, and seed.
func (p *Prober) record(res Result) {
	if p.rec == nil {
		return
	}
	p.rec.Add("probe.attempts", int64(res.Attempts))
	p.rec.Add("probe.retries", int64(res.Retries))
	p.rec.Add("probe."+string(res.Status), 1)
	p.rec.Emit("probe.result",
		telemetry.Str("source", res.Name),
		telemetry.Str("status", string(res.Status)),
		telemetry.Int("attempts", res.Attempts))
}

// probeOnce runs one scan attempt: draw the fate, pay its latency, enforce
// the probe deadline, then scan the (possibly fault-wrapped) stream into a
// fresh synopsis.
func (p *Prober) probeOnce(c Candidate, cfg pcsa.Config, attempt int) (*source.Source, error) {
	fate := p.inj.Attempt(c.Name, attempt, p.clock.Now())
	p.clock.Sleep(fate.Latency)
	if p.policy.ProbeTimeout > 0 && fate.Latency > p.policy.ProbeTimeout {
		return nil, fault.ErrDeadline
	}
	if fate.Handshake() {
		return nil, fate.Err
	}
	st := fault.NewStream(c.Open(), fate)
	sig, err := pcsa.New(cfg)
	if err != nil {
		return nil, err
	}
	var n int64
	for {
		t, ok := st.Next()
		if !ok {
			break
		}
		sig.AddUint64(t)
		n++
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	return &source.Source{
		ID:              -1,
		Name:            c.Name,
		Schema:          c.Schema,
		Cardinality:     n,
		Signature:       sig,
		Characteristics: c.Characteristics,
	}, nil
}

// schemaOnly materializes the candidate's uncooperative form.
func (p *Prober) schemaOnly(c Candidate) *source.Source {
	s := source.Uncooperative(c.Name, c.Schema)
	s.Characteristics = c.Characteristics
	return s
}

// backoff returns the bounded exponential delay before retry number attempt,
// jittered over its upper half so synchronized retries spread out.
func (p *Prober) backoff(attempt int) time.Duration {
	d := p.policy.BaseBackoff << uint(attempt-1)
	if d <= 0 || d > p.policy.MaxBackoff {
		d = p.policy.MaxBackoff
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + p.rng.Int63n(half+1))
}

// BuildUniverse probes every candidate in order and assembles the surviving
// sources into a universe. Construction always completes; the report names
// every degraded and dropped source.
func (p *Prober) BuildUniverse(cfg pcsa.Config, cands []Candidate) (*source.Universe, *HealthReport, error) {
	span := p.rec.BeginSpan("probe.build", telemetry.Int("candidates", len(cands)))
	u := source.NewUniverse(cfg)
	rep := &HealthReport{Plan: p.inj.Plan().String()}
	for _, c := range cands {
		s, res := p.Probe(c, cfg)
		if c.Open != nil {
			rep.Probed++
		}
		if s != nil {
			id, err := u.Add(s)
			if err != nil {
				span.End(telemetry.Str("err", err.Error()))
				return nil, nil, fmt.Errorf("probe: add %q: %w", c.Name, err)
			}
			res.ID = id
		}
		rep.add(res)
	}
	// Materialize the universe-wide aggregates (total cardinality, |∪U|
	// estimate) now, at acquisition time, so the first Coverage evaluation
	// does not pay for the full-universe union merge.
	u.Precompute()
	span.End(telemetry.Int("sources", u.Len()), telemetry.Int("dropped", rep.Dropped))
	return u, rep, nil
}

// ReprobeUniverse simulates acquisition of an already-materialized universe
// under the prober's fault plan: each cooperative source goes through the
// full retry/breaker state machine (using fates only — its synopsis is
// already known, so a successful attempt keeps the original source), failed
// sources are degraded to uncooperative copies, and breaker-tripped sources
// are dropped. Schema-only sources join unchanged. It returns the rebuilt
// universe, the health report, and kept — the original IDs of the new
// universe's sources in order (kept[newID] == oldID), for remapping
// ID-indexed ground truth.
func (p *Prober) ReprobeUniverse(u *source.Universe) (*source.Universe, *HealthReport, []schema.SourceID, error) {
	span := p.rec.BeginSpan("probe.reprobe", telemetry.Int("sources", u.Len()))
	nu := source.NewUniverse(u.SignatureConfig())
	rep := &HealthReport{Plan: p.inj.Plan().String()}
	var kept []schema.SourceID
	for _, s := range u.Sources() {
		oldID := s.ID
		res := Result{Name: s.Name, ID: -1}
		var add *source.Source
		if !s.Cooperative() {
			res.Status = StatusHealthy
			add = cloneSource(s)
		} else {
			rep.Probed++
			add, res = p.reprobeOne(s)
		}
		if add != nil {
			id, err := nu.Add(add)
			if err != nil {
				span.End(telemetry.Str("err", err.Error()))
				return nil, nil, nil, fmt.Errorf("probe: re-add %q: %w", s.Name, err)
			}
			res.ID = id
			kept = append(kept, oldID)
		}
		rep.add(res)
	}
	// As in BuildUniverse: pay for the universe aggregates here, not in the
	// first evaluation after re-acquisition.
	nu.Precompute()
	span.End(telemetry.Int("kept", nu.Len()), telemetry.Int("dropped", rep.Dropped))
	return nu, rep, kept, nil
}

// ReprobeOne runs the retry/breaker attempt loop for one known source using
// fault fates alone (its synopsis is already cached, so a successful attempt
// returns a clone of the original). The returned source is nil when the
// breaker tripped (drop it) and uncooperative when every attempt failed
// without tripping (degrade it). Breaker state is local to the call: a
// source that recovers between reprobe rounds starts the next round with a
// clean slate, which is what lets a watch loop re-admit flapping sources.
// Unlike ReprobeUniverse it emits no health report — callers aggregate the
// Results themselves.
func (p *Prober) ReprobeOne(s *source.Source) (*source.Source, Result) {
	return p.reprobeOne(s)
}

// reprobeOne runs the attempt loop for one known source using fates alone.
func (p *Prober) reprobeOne(s *source.Source) (*source.Source, Result) {
	res := Result{Name: s.Name, ID: -1}
	consecHandshake := 0
	for attempt := 1; attempt <= p.policy.MaxAttempts; attempt++ {
		res.Attempts = attempt
		res.Retries = attempt - 1
		fate := p.inj.Attempt(s.Name, attempt, p.clock.Now())
		p.clock.Sleep(fate.Latency)
		err := fate.Err
		if p.policy.ProbeTimeout > 0 && fate.Latency > p.policy.ProbeTimeout {
			err = fault.ErrDeadline
		}
		if err == nil {
			res.Status = StatusHealthy
			res.Err = ""
			return cloneSource(s), res
		}
		res.Err = err.Error()
		if errors.Is(err, fault.ErrUnreachable) {
			consecHandshake++
			if consecHandshake >= p.policy.BreakerLimit {
				res.Status = StatusDropped
				return nil, res
			}
		} else {
			consecHandshake = 0
		}
		if attempt < p.policy.MaxAttempts {
			p.clock.Sleep(p.backoff(attempt))
		}
	}
	res.Status = StatusDegraded
	deg := source.Uncooperative(s.Name, s.Schema)
	deg.Characteristics = s.Characteristics
	return deg, res
}

// cloneSource shallow-copies s so it can be re-added to a fresh universe
// without mutating the original's ID (synopses are immutable and shared).
func cloneSource(s *source.Source) *source.Source {
	cp := *s
	cp.ID = -1
	return &cp
}
