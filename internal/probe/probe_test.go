package probe

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"mube/internal/fault"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

var testCfg = pcsa.Config{NumMaps: 64}

// sliceIter iterates a fixed tuple slice.
type sliceIter struct {
	tuples []source.TupleID
	i      int
}

func (it *sliceIter) Next() (source.TupleID, bool) {
	if it.i >= len(it.tuples) {
		return 0, false
	}
	t := it.tuples[it.i]
	it.i++
	return t, true
}

// candidates builds n probeable candidates with distinct tuple sets.
func candidates(n int) []Candidate {
	cands := make([]Candidate, n)
	for i := 0; i < n; i++ {
		tuples := make([]source.TupleID, 50)
		for j := range tuples {
			tuples[j] = source.TupleID(i*1000 + j)
		}
		cands[i] = Candidate{
			Name:            fmt.Sprintf("src-%03d", i),
			Schema:          schema.NewSchema("title", "year"),
			Characteristics: map[string]float64{"freshness": float64(i)},
			Open:            func() source.TupleIterator { return &sliceIter{tuples: tuples} },
		}
	}
	return cands
}

func TestProbeCleanNetwork(t *testing.T) {
	p := New(Policy{}, nil, nil, 1)
	u, rep, err := p.BuildUniverse(testCfg, candidates(5))
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 5 || rep.Healthy != 5 || rep.Degraded != 0 || rep.Dropped != 0 {
		t.Fatalf("clean build: len=%d report=%s", u.Len(), rep)
	}
	if rep.Probed != 5 || rep.Plan != "none" {
		t.Errorf("report probed=%d plan=%q, want 5, none", rep.Probed, rep.Plan)
	}
	for i, s := range u.Sources() {
		if !s.Cooperative() || s.Cardinality != 50 {
			t.Errorf("source %d: cooperative=%v cardinality=%d, want cooperative with 50 tuples",
				i, s.Cooperative(), s.Cardinality)
		}
		if rep.Sources[i].Attempts != 1 || rep.Sources[i].ID != s.ID {
			t.Errorf("source %d result = %+v", i, rep.Sources[i])
		}
	}
}

func TestSchemaOnlyCandidateJoinsWithoutProbe(t *testing.T) {
	p := New(Policy{}, nil, nil, 1)
	cands := []Candidate{{Name: "shy", Schema: schema.NewSchema("a")}} // Open == nil
	u, rep, err := p.BuildUniverse(testCfg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 || rep.Probed != 0 || rep.Healthy != 1 {
		t.Fatalf("schema-only build: len=%d report=%s", u.Len(), rep)
	}
	if s := u.Source(0); s.Cooperative() {
		t.Error("schema-only candidate joined as cooperative")
	}
}

// TestProbeDegradesNeverDrops: every attempt fails mid-stream (the source
// answers, then the scan dies), so the breaker never trips and the source is
// degraded to uncooperative rather than excluded.
func TestProbeDegradesNeverDrops(t *testing.T) {
	// HandshakeFrac ≈ 0 forces every injected failure to be a stream fault.
	inj := fault.NewInjector(fault.Plan{Seed: 2, Rate: 1, HandshakeFrac: 1e-12})
	p := New(Policy{}, nil, inj, 1)
	u, rep, err := p.BuildUniverse(testCfg, candidates(10))
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 10 {
		t.Fatalf("universe len = %d, want all 10 kept", u.Len())
	}
	if rep.Degraded != 10 || rep.Dropped != 0 {
		t.Fatalf("report = %s, want 10 degraded, 0 dropped", rep)
	}
	for _, s := range u.Sources() {
		if s.Cooperative() {
			t.Errorf("source %s still cooperative after degradation", s.Name)
		}
		if s.Characteristics == nil {
			t.Errorf("source %s lost its characteristics", s.Name)
		}
	}
	for _, r := range rep.Sources {
		if r.Attempts != 4 || r.Retries != 3 || r.Err == "" {
			t.Errorf("degraded result = %+v, want 4 attempts with an error", r)
		}
	}
	if got := rep.DegradedNames(); len(got) != 10 {
		t.Errorf("DegradedNames() = %v", got)
	}
}

// TestBreakerDropsSilentSource: every attempt fails at the handshake, so the
// breaker trips at BreakerLimit and the source is excluded.
func TestBreakerDropsSilentSource(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 2, Rate: 1, HandshakeFrac: 1})
	p := New(Policy{BreakerLimit: 3}, nil, inj, 1)
	u, rep, err := p.BuildUniverse(testCfg, candidates(4))
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 || rep.Dropped != 4 {
		t.Fatalf("silent build: len=%d report=%s, want all dropped", u.Len(), rep)
	}
	for _, r := range rep.Sources {
		if r.Attempts != 3 || r.ID != -1 || r.Status != StatusDropped {
			t.Errorf("dropped result = %+v, want breaker at attempt 3, ID -1", r)
		}
	}
	if got := rep.DroppedNames(); len(got) != 4 {
		t.Errorf("DroppedNames() = %v", got)
	}
}

// TestDeadlineDoesNotTripBreaker: a deadline overrun is not evidence the
// source vanished — it must degrade, never drop.
func TestDeadlineDoesNotTripBreaker(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 3, Latency: 1e9}) // ≈1s per attempt
	p := New(Policy{ProbeTimeout: 1}, nil, inj, 1)              // 1ns deadline: every attempt overruns
	s, res := p.Probe(candidates(1)[0], testCfg)
	if res.Status != StatusDegraded || s == nil {
		t.Fatalf("deadline-only probe: status=%s source=%v, want degraded schema-only source", res.Status, s)
	}
	if s.Cooperative() {
		t.Error("deadline-degraded source still cooperative")
	}
}

// TestBuildUniverseAtHighFailureRate is the acceptance scenario: at a 30%
// per-attempt failure rate, construction completes, nothing is lost unless
// the breaker tripped, and the report partitions every candidate.
func TestBuildUniverseAtHighFailureRate(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 11, Rate: 0.3})
	p := New(Policy{}, nil, inj, 1)
	cands := candidates(60)
	u, rep, err := p.BuildUniverse(testCfg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy+rep.Degraded+rep.Dropped != len(cands) {
		t.Fatalf("report does not partition candidates: %s", rep)
	}
	if u.Len() != len(cands)-rep.Dropped {
		t.Fatalf("universe len %d != candidates %d - dropped %d", u.Len(), len(cands), rep.Dropped)
	}
	if rep.Healthy == 0 {
		t.Fatal("no source survived a 30% failure rate; retry loop is broken")
	}
	// With 4 attempts, P(all fail) = 0.3^4 ≈ 0.8%: degradation must be rare.
	if rep.Degraded+rep.Dropped > len(cands)/4 {
		t.Errorf("too many casualties at rate 0.3: %s", rep)
	}
}

// TestBuildUniverseDeterminism: identical plans and seeds produce
// bit-identical universes and reports.
func TestBuildUniverseDeterminism(t *testing.T) {
	build := func() (*source.Universe, *HealthReport) {
		inj := fault.NewInjector(fault.Plan{Seed: 11, Rate: 0.3, Latency: 5e7})
		u, rep, err := New(Policy{}, nil, inj, 42).BuildUniverse(testCfg, candidates(40))
		if err != nil {
			t.Fatal(err)
		}
		return u, rep
	}
	u1, rep1 := build()
	u2, rep2 := build()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("identical builds produced different health reports")
	}
	if u1.Len() != u2.Len() {
		t.Fatalf("universe lengths differ: %d vs %d", u1.Len(), u2.Len())
	}
	for i := range u1.Sources() {
		a, b := u1.Source(schema.SourceID(i)), u2.Source(schema.SourceID(i))
		if a.Name != b.Name || a.Cardinality != b.Cardinality || a.Cooperative() != b.Cooperative() {
			t.Fatalf("source %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// reprobeFixture builds a clean universe of nCoop cooperative and nShy
// schema-only sources.
func reprobeFixture(t *testing.T, nCoop, nShy int) *source.Universe {
	t.Helper()
	u := source.NewUniverse(testCfg)
	for i := 0; i < nCoop; i++ {
		sig := pcsa.MustNew(testCfg)
		for j := 0; j < 30; j++ {
			sig.AddUint64(uint64(i*100 + j))
		}
		if _, err := u.Add(&source.Source{
			ID:          -1,
			Name:        fmt.Sprintf("coop-%02d", i),
			Schema:      schema.NewSchema("a", "b"),
			Cardinality: 30,
			Signature:   sig,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nShy; i++ {
		if _, err := u.Add(source.Uncooperative(fmt.Sprintf("shy-%02d", i), schema.NewSchema("a"))); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestReprobeUniverseDegrades(t *testing.T) {
	u := reprobeFixture(t, 6, 2)
	inj := fault.NewInjector(fault.Plan{Seed: 4, Rate: 1, HandshakeFrac: 1e-12})
	nu, rep, kept, err := New(Policy{}, nil, inj, 1).ReprobeUniverse(u)
	if err != nil {
		t.Fatal(err)
	}
	if nu.Len() != 8 || len(kept) != 8 {
		t.Fatalf("reprobe kept %d/%d sources, want all (degraded, not dropped)", nu.Len(), len(kept))
	}
	if rep.Probed != 6 || rep.Degraded != 6 || rep.Dropped != 0 || rep.Healthy != 2 {
		t.Fatalf("report = %s, want probed=6 degraded=6 healthy=2 (schema-only untouched)", rep)
	}
	for newID, oldID := range kept {
		if nu.Source(schema.SourceID(newID)).Name != u.Source(oldID).Name {
			t.Fatalf("kept[%d]=%d maps to %q, original is %q",
				newID, oldID, nu.Source(schema.SourceID(newID)).Name, u.Source(oldID).Name)
		}
	}
	for _, s := range nu.Sources() {
		if s.Cooperative() {
			t.Errorf("source %s survived a rate-1 reprobe as cooperative", s.Name)
		}
	}
	// The original universe must be untouched.
	for i := 0; i < 6; i++ {
		if !u.Source(schema.SourceID(i)).Cooperative() {
			t.Fatalf("reprobe mutated the original universe (source %d)", i)
		}
	}
}

func TestReprobeUniverseDropsAndRemaps(t *testing.T) {
	u := reprobeFixture(t, 5, 1)
	inj := fault.NewInjector(fault.Plan{Seed: 4, Rate: 1, HandshakeFrac: 1})
	nu, rep, kept, err := New(Policy{}, nil, inj, 1).ReprobeUniverse(u)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 5 || nu.Len() != 1 || len(kept) != 1 {
		t.Fatalf("rate-1 handshake reprobe: %s, kept=%v", rep, kept)
	}
	// The lone survivor is the schema-only source, which had oldID 5.
	if kept[0] != 5 || nu.Source(0).Name != "shy-00" {
		t.Fatalf("kept = %v, survivor = %q; want the schema-only source (oldID 5)", kept, nu.Source(0).Name)
	}
}

func TestReprobeUniverseDeterminism(t *testing.T) {
	run := func() *HealthReport {
		u := reprobeFixture(t, 20, 3)
		inj := fault.NewInjector(fault.Plan{Seed: 9, Rate: 0.35})
		_, rep, _, err := New(Policy{}, nil, inj, 7).ReprobeUniverse(u)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("identical reprobes produced different health reports")
	}
}

func TestHealthReportClone(t *testing.T) {
	var nilRep *HealthReport
	if nilRep.Clone() != nil {
		t.Error("nil.Clone() != nil")
	}
	rep := &HealthReport{Plan: "none"}
	rep.add(Result{Name: "a", Status: StatusHealthy})
	cp := rep.Clone()
	cp.Sources[0].Name = "mutated"
	if rep.Sources[0].Name != "a" {
		t.Error("Clone shares the Sources slice with the original")
	}
}

// TestBreakerResetsAcrossReprobeRounds: a source inside its flap outage trips
// the breaker and is dropped; once the outage window passes, the next reprobe
// round must start with fresh breaker state and re-admit it on the first
// attempt — consecutive-handshake counts never leak across rounds.
func TestBreakerResetsAcrossReprobeRounds(t *testing.T) {
	const period = 2 * time.Hour
	inj := fault.NewInjector(fault.Plan{Seed: 7, FlapPeriod: period, FlapDuty: 0.5})
	clock := fault.NewVirtualClock(time.Unix(0, 0))
	p := New(Policy{BreakerLimit: 2}, clock, inj, 9)

	u := reprobeFixture(t, 6, 0)
	// Find a source that is inside its outage window right now (Attempt is a
	// pure function of (name, attempt, now), so this peek perturbs nothing).
	var victim *source.Source
	for _, s := range u.Sources() {
		if inj.Attempt(s.Name, 1, clock.Now()).Handshake() {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Fatal("no source down at t0; pick a different seed")
	}

	got, res := p.ReprobeOne(victim)
	if got != nil || res.Status != StatusDropped {
		t.Fatalf("round 1: status=%s source=%v, want dropped during outage", res.Status, got)
	}
	if res.Attempts != 2 {
		t.Errorf("round 1 attempts = %d, want breaker trip at BreakerLimit 2", res.Attempts)
	}

	// Advance the virtual clock until the outage ends (duty 0.5 bounds the
	// wait to half a period).
	for i := 0; i < 48 && inj.Attempt(victim.Name, 1, clock.Now()).Handshake(); i++ {
		clock.Sleep(5 * time.Minute)
	}
	if inj.Attempt(victim.Name, 1, clock.Now()).Handshake() {
		t.Fatal("source never recovered within a full flap period")
	}

	got, res = p.ReprobeOne(victim)
	if got == nil || res.Status != StatusHealthy {
		t.Fatalf("round 2: status=%s, want healthy after recovery", res.Status)
	}
	if res.Attempts != 1 || res.Retries != 0 {
		t.Errorf("round 2 took %d attempts; breaker state leaked across rounds", res.Attempts)
	}
	if !got.Cooperative() || got.Name != victim.Name {
		t.Errorf("recovered source = %+v, want cooperative clone of %q", got, victim.Name)
	}
}
