package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadTestVariants exercises the subtle part of the loader: a package
// with in-package and external test files must come back as the
// test-augmented variant (lib + _test.go files together) plus the external
// test package — and not additionally as the bare package, or every
// diagnostic in a lib file would be reported twice.
func TestLoadTestVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("lib/lib.go", "package lib\n\n// Answer is fixed.\nfunc Answer() int { return 42 }\n")
	write("lib/lib_test.go", "package lib\n\nimport \"testing\"\n\nfunc TestAnswer(t *testing.T) { _ = Answer() }\n")
	write("lib/ext_test.go", "package lib_test\n\nimport (\n\t\"testing\"\n\n\t\"scratch/lib\"\n)\n\nfunc TestExt(t *testing.T) { _ = lib.Answer() }\n")

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	fileCount := map[string]int{}
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
		fileCount[p.ImportPath] = len(p.Files)
		if p.Path != "scratch/lib" {
			t.Errorf("package %s: logical path = %q, want scratch/lib", p.ImportPath, p.Path)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("package %s not type-checked", p.ImportPath)
		}
	}
	joined := strings.Join(got, "; ")
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages (%s), want 2", len(pkgs), joined)
	}
	if !strings.Contains(joined, "scratch/lib [scratch/lib.test]") {
		t.Errorf("missing test-augmented variant in %s", joined)
	}
	if !strings.Contains(joined, "scratch/lib_test") {
		t.Errorf("missing external test package in %s", joined)
	}
	if n := fileCount["scratch/lib [scratch/lib.test]"]; n != 2 {
		t.Errorf("augmented variant has %d files, want lib.go + lib_test.go", n)
	}
}

// TestLoadErrors: both failure modes surface as errors, never as empty
// results.
func TestLoadErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "./..."); err == nil {
		t.Error("module with no packages loaded without error")
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package main\nfunc broken( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "./..."); err == nil {
		t.Error("syntactically broken package loaded without error")
	}
}
