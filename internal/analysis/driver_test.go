package analysis

import (
	"bytes"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// scratchModule writes a throwaway module with one floatcmp violation per
// listed package.
func scratchModule(t *testing.T, pkgs ...string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		src := "package " + p + "\n\nfunc eq(a, b float64) bool { return a == b }\n"
		if err := os.MkdirAll(filepath.Join(dir, p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, p, p+".go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// testAnalyzers returns a minimal analyzer set for driver tests — flagging
// == between float64 operands — so the tests do not depend on package rules
// (which would be an import cycle).
func testAnalyzers() []*Analyzer {
	return []*Analyzer{{
		Name: "floateq",
		Doc:  "test analyzer: flag == on float64",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					bin, ok := n.(*ast.BinaryExpr)
					if !ok || bin.Op != token.EQL {
						return true
					}
					if t, ok := pass.TypesInfo.TypeOf(bin.X).(*types.Basic); ok && t.Kind() == types.Float64 {
						pass.Reportf(bin.OpPos, "float64 equality")
					}
					return true
				})
			}
		},
	}}
}

func TestCheckPackagesDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := scratchModule(t, "a", "b", "c", "d")
	run := func(parallel int) []Diagnostic {
		diags, n, err := CheckPackages(Config{Dir: dir, Analyzers: testAnalyzers(), Parallel: parallel}, "./...")
		if err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("analyzed %d packages, want 4", n)
		}
		return diags
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("diagnostics differ across -parallel:\nseq: %v\npar: %v", seq, par)
	}
	if len(seq) != 4 {
		t.Errorf("got %d diagnostics, want 4 (one per package):\n%v", len(seq), seq)
	}
}

func TestCheckPackagesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command")
	}
	dir := scratchModule(t, "a", "b")
	cacheDir := t.TempDir()
	cache, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dir: dir, Analyzers: testAnalyzers(), Cache: cache}
	cold, _, err := CheckPackages(cfg, "./...")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold run left no cache entries")
	}
	// A fresh handle (same dir) must serve identical results from cache.
	cache2, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache2
	warm, _, err := CheckPackages(cfg, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm run differs from cold:\ncold: %v\nwarm: %v", cold, warm)
	}
	// Editing a source file must invalidate that package's entry (under a
	// fresh handle — a Cache memoizes input hashes for its own lifetime):
	// the shifted diagnostic line must appear.
	path := filepath.Join(dir, "a", "a.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("\n"), src...), 0o644); err != nil {
		t.Fatal(err)
	}
	cache3, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache3
	edited, _, err := CheckPackages(cfg, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(cold, edited) {
		t.Error("editing a source file did not change cached diagnostics")
	}
}

func TestWriteJSONStable(t *testing.T) {
	diags := []Diagnostic{
		{Position: token.Position{Filename: "/mod/a/a.go", Line: 3, Column: 40}, Analyzer: "floateq", Message: "m1"},
		{Position: token.Position{Filename: "/mod/b/b.go", Line: 9, Column: 2}, Analyzer: "x", Message: `quote " and \ slash`},
	}
	var b1, b2 bytes.Buffer
	if err := WriteJSON(&b1, "/mod", diags); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b2, "/mod", diags); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("WriteJSON not byte-identical across calls")
	}
	want := `[
  {
    "analyzer": "floateq",
    "file": "a/a.go",
    "line": 3,
    "col": 40,
    "message": "m1"
  },
  {
    "analyzer": "x",
    "file": "b/b.go",
    "line": 9,
    "col": 2,
    "message": "quote \" and \\ slash"
  }
]
`
	if b1.String() != want {
		t.Errorf("WriteJSON output:\n%s\nwant:\n%s", b1.String(), want)
	}
	var empty bytes.Buffer
	if err := WriteJSON(&empty, "/mod", nil); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "[]\n" {
		t.Errorf("empty diagnostics render %q, want %q", empty.String(), "[]\n")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Position: token.Position{Filename: "/mod/a/a.go", Line: 3, Column: 1}, Analyzer: "x", Message: "m"},
		{Position: token.Position{Filename: "/mod/a/a.go", Line: 7, Column: 1}, Analyzer: "x", Message: "m"},
		{Position: token.Position{Filename: "/mod/b/b.go", Line: 1, Column: 1}, Analyzer: "y", Message: "n"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, "/mod", diags); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (counts folded): %v", len(entries), entries)
	}
	// The full set filters to nothing.
	if left := FilterBaseline(diags, entries, "/mod"); len(left) != 0 {
		t.Errorf("baseline did not cover its own findings: %v", left)
	}
	// A third duplicate of the line-3 finding exceeds the recorded count of 2
	// and must survive; so must a brand-new finding.
	extra := append(append([]Diagnostic{}, diags...),
		Diagnostic{Position: token.Position{Filename: "/mod/a/a.go", Line: 99, Column: 1}, Analyzer: "x", Message: "m"},
		Diagnostic{Position: token.Position{Filename: "/mod/c/c.go", Line: 2, Column: 1}, Analyzer: "z", Message: "new"},
	)
	left := FilterBaseline(sortDiagnostics(extra), entries, "/mod")
	if len(left) != 2 {
		t.Fatalf("got %d survivors, want 2: %v", len(left), left)
	}
	if left[0].Position.Line != 99 || left[1].Analyzer != "z" {
		t.Errorf("wrong survivors: %v", left)
	}
}
