package cfg

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks src (a complete file) and returns the named
// function's declaration plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, fset
		}
	}
	t.Fatalf("no function %q in src", name)
	return nil, nil, nil
}

// shape renders the graph as "kind->kind" edges for compact assertions.
func shape(g *Graph) map[string]bool {
	edges := map[string]bool{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			edges[fmt.Sprintf("%s->%s", b.Kind, s.Kind)] = true
		}
	}
	return edges
}

func TestNewStraightLine(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f() int {
	x := 1
	x++
	return x
}`, "f")
	g := New(fd.Body)
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry holds %d nodes, want 3", len(g.Entry.Nodes))
	}
	if !shape(g)["entry->exit"] {
		t.Errorf("no entry->exit edge: %v", shape(g))
	}
}

func TestNewIfElse(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(b bool) int {
	if b {
		return 1
	}
	return 0
}`, "f")
	g := New(fd.Body)
	s := shape(g)
	for _, want := range []string{"entry->if.then", "entry->if.join", "if.then->exit", "if.join->exit"} {
		if !s[want] {
			t.Errorf("missing edge %s in %v", want, s)
		}
	}
}

func TestNewForLoop(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := New(fd.Body)
	s := shape(g)
	for _, want := range []string{"entry->for.head", "for.head->for.body", "for.head->for.after", "for.body->for.post", "for.post->for.head", "for.after->exit"} {
		if !s[want] {
			t.Errorf("missing edge %s in %v", want, s)
		}
	}
}

func TestNewBreakContinue(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
	}
}`, "f")
	g := New(fd.Body)
	s := shape(g)
	// continue jumps to the post block, break to the after block.
	if !s["if.then->for.post"] {
		t.Errorf("continue edge missing: %v", s)
	}
	if !s["if.then->for.after"] {
		t.Errorf("break edge missing: %v", s)
	}
}

func TestNewLabeledBreak(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 2 {
				break outer
			}
		}
	}
}`, "f")
	g := New(fd.Body)
	if !shape(g)["if.then->for.after"] {
		t.Errorf("labeled break edge missing: %v", shape(g))
	}
}

func TestNewGoto(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, "f")
	g := New(fd.Body)
	if !shape(g)["if.then->label.loop"] {
		t.Errorf("goto edge missing: %v", shape(g))
	}
}

func TestNewSwitchFallthrough(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(n int) int {
	switch n {
	case 1:
		fallthrough
	case 2:
		return 2
	default:
		return 3
	}
}`, "f")
	g := New(fd.Body)
	s := shape(g)
	if !s["switch.case->switch.case"] {
		t.Errorf("fallthrough edge missing: %v", s)
	}
	if s["entry->switch.after"] {
		t.Errorf("switch with default should not skip to after: %v", s)
	}
}

func TestNewSelectAndDefer(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(ch chan int) int {
	defer close(ch)
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}`, "f")
	g := New(fd.Body)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	s := shape(g)
	if !s["entry->select.comm"] || !s["entry->select.default"] {
		t.Errorf("select clause edges missing: %v", s)
	}
}

// block returns the first block whose kind matches.
func block(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no %s block", kind)
	return nil
}

func TestReaches(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f(b bool) {
	if b {
		return
	}
	for {
	}
}`, "f")
	g := New(fd.Body)
	head := block(t, g, "for.head")
	if !g.Reaches(g.Entry, head) {
		t.Errorf("entry should reach for.head")
	}
	if g.Reaches(head, g.Exit) {
		t.Errorf("infinite loop must not reach exit")
	}
}

func TestEveryPathHits(t *testing.T) {
	src := `package p
import "sync"
func work(wg *sync.WaitGroup) { wg.Done() }
func f(b bool, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(&wg)
	}
	if b {
		return
	}
	wg.Wait()
}`
	fd, info, _ := parseFunc(t, src, "f")
	g := New(fd.Body)
	isWait := func(b *Block) bool {
		for _, n := range b.Nodes {
			found := false
			Inspect(n, func(m ast.Node) bool {
				if sel, ok := m.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	_ = info
	// From the loop body (where the go statement lives), the `if b { return }`
	// path reaches exit without passing Wait.
	body := block(t, g, "for.body")
	if g.EveryPathHits(body, isWait) {
		t.Errorf("early return should escape the Wait barrier")
	}
	// Without the early return, every path from the loop body reaches the
	// Wait in the loop's after-block.
	fd2, _, _ := parseFunc(t, `package p
import "sync"
func work(wg *sync.WaitGroup) { wg.Done() }
func f(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(&wg)
	}
	wg.Wait()
}`, "f")
	g2 := New(fd2.Body)
	if !g2.EveryPathHits(block(t, g2, "for.body"), isWait) {
		t.Errorf("loop-then-Wait shape must hit Wait on every path")
	}
}

func TestReachingUses(t *testing.T) {
	src := `package p
func f(n int) int {
	x := n      // def
	a := x      // use 1
	if n > 0 {
		x = 0   // kill
		_ = x   // use of the new def, not ours
	} else {
		a += x  // use 2
	}
	return a
}`
	fd, info, fset := parseFunc(t, src, "f")
	g := New(fd.Body)
	// Find the object for x.
	var xObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" && info.Defs[id] != nil {
			xObj = info.Defs[id]
		}
		return true
	})
	if xObj == nil {
		t.Fatal("no def of x")
	}
	uses := g.ReachingUses(g.Entry, 0, xObj, info)
	var lines []int
	for _, u := range uses {
		lines = append(lines, fset.Position(u.Ident.Pos()).Line)
	}
	// The def at line 3 reaches the use at line 4 (a := x) and the use at
	// line 9 (a += x), but the use at line 7 follows the kill at line 6.
	want := "[4 9]"
	if got := fmt.Sprint(lines); got != want {
		t.Errorf("reaching uses at lines %v, want %v", got, want)
	}
}

func TestInspectSkipsFuncLits(t *testing.T) {
	fd, _, _ := parseFunc(t, `package p
func f() {
	g := func() { panic("inner") }
	g()
}`, "f")
	sawInner := false
	Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && strings.Contains(lit.Value, "inner") {
			sawInner = true
		}
		return true
	})
	if sawInner {
		t.Errorf("Inspect descended into a nested function literal")
	}
}

func TestSummarizeFacts(t *testing.T) {
	src := `package p
import (
	"context"
	"sync"
)
type S struct {
	mu   sync.Mutex
	memo map[string]int
	n    int
}
var global int
func (s *S) writesRecv(k string) {
	s.memo[k] = 1
	s.n++
}
func writesGlobal() { global = 2 }
func pure(a int) int { return a + 1 }
func caller(s *S) { s.writesRecv("x"); _ = pure(1) }
func chans(ch chan int) {
	ch <- 1
	<-ch
	close(ch)
}
func spawner() { go writesGlobal() }
func ctxcheck(ctx context.Context) bool { return ctx.Err() != nil }
func viaHelper(ctx context.Context) bool { return ctxcheck(ctx) }
func noCheck() {}
`
	fd, info, _ := parseFunc(t, src, "caller")
	_ = fd
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize([]*ast.File{f}, info)
	lookup := func(name string) *types.Func {
		t.Helper()
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			// method
			s := pkg.Scope().Lookup("S").Type().(*types.Named)
			for i := 0; i < s.NumMethods(); i++ {
				if s.Method(i).Name() == name {
					return s.Method(i)
				}
			}
			t.Fatalf("no func %s", name)
		}
		return obj.(*types.Func)
	}

	wr := sums.Of(lookup("writesRecv"))
	if len(wr.Writes) != 2 {
		t.Fatalf("writesRecv records %d writes, want 2", len(wr.Writes))
	}
	if wr.Writes[0].Root != RootReceiver || !wr.Writes[0].Map {
		t.Errorf("map write = %+v, want receiver-rooted map write", wr.Writes[0])
	}
	if wr.Writes[1].Root != RootReceiver || wr.Writes[1].Map {
		t.Errorf("field incr = %+v, want receiver-rooted non-map", wr.Writes[1])
	}

	if g := sums.Of(lookup("writesGlobal")); len(g.Writes) != 1 || g.Writes[0].Root != RootGlobal {
		t.Errorf("writesGlobal = %+v, want one global write", g.Writes)
	}
	if p := sums.Of(lookup("pure")); len(p.Writes) != 0 || len(p.Calls) != 0 {
		t.Errorf("pure = %+v, want empty", p)
	}
	if c := sums.Of(lookup("chans")); len(c.ChanOps) != 3 {
		t.Errorf("chans records %d chan ops, want 3", len(c.ChanOps))
	}
	if sp := sums.Of(lookup("spawner")); len(sp.Spawns) != 1 {
		t.Errorf("spawner records %d spawns, want 1", len(sp.Spawns))
	}

	// Call edges and reachability.
	reach := sums.Reachable([]*types.Func{lookup("caller")})
	names := map[string]bool{}
	for _, fn := range reach {
		names[fn.Name()] = true
	}
	for _, want := range []string{"caller", "writesRecv", "pure"} {
		if !names[want] {
			t.Errorf("reachable set %v missing %s", names, want)
		}
	}
	if names["chans"] {
		t.Errorf("chans must not be reachable from caller")
	}

	// Context checks, direct and transitive.
	if !sums.Of(lookup("ctxcheck")).ChecksCtx {
		t.Errorf("ctxcheck should have ChecksCtx")
	}
	if !sums.ChecksCtxTransitive(lookup("viaHelper")) {
		t.Errorf("viaHelper should check ctx transitively")
	}
	if sums.ChecksCtxTransitive(lookup("noCheck")) {
		t.Errorf("noCheck should not check ctx")
	}
}

func TestSummarizeClosureCapture(t *testing.T) {
	src := `package p
type J struct{ v float64 }
type E struct{ memo map[string]float64 }
func (e *E) run(jobs []J) {
	f := func(i int) {
		jobs[i].v = 1          // captured slice slot: element write
		e.memo["k"] = 1        // captured receiver map: shared write
	}
	f(0)
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	var lit *ast.FuncLit
	ast.Inspect(f, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	if lit == nil {
		t.Fatal("no closure")
	}
	sig := info.TypeOf(lit).(*types.Signature)
	sum := SummarizeBody(info, sig, lit.Body)
	if len(sum.Writes) != 2 {
		t.Fatalf("closure records %d writes, want 2: %+v", len(sum.Writes), sum.Writes)
	}
	if sum.Writes[0].Root != RootCaptured || sum.Writes[0].Map || sum.Writes[0].Direct {
		t.Errorf("slot write = %+v, want captured indirect non-map", sum.Writes[0])
	}
	if sum.Writes[1].Root != RootCaptured || !sum.Writes[1].Map {
		t.Errorf("memo write = %+v, want captured map", sum.Writes[1])
	}
}
