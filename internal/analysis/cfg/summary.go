package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RootKind classifies the base object of a write's lvalue chain: for
// `x.f[k] = v` the root is x, and whether x is a local, a parameter, the
// receiver, a package-level variable, or a variable captured from an
// enclosing function decides whether the write can be observed outside the
// function.
type RootKind int

const (
	// RootLocal is a variable declared inside the analyzed body.
	RootLocal RootKind = iota
	// RootParam is a parameter or named result of the analyzed function.
	RootParam
	// RootReceiver is the method receiver.
	RootReceiver
	// RootGlobal is a package-level variable.
	RootGlobal
	// RootCaptured is a variable from an enclosing function (free variable
	// of a function literal).
	RootCaptured
	// RootUnknown marks lvalues whose base is not an identifier (e.g.
	// `f().x = v`).
	RootUnknown
)

func (k RootKind) String() string {
	switch k {
	case RootLocal:
		return "local"
	case RootParam:
		return "parameter"
	case RootReceiver:
		return "receiver"
	case RootGlobal:
		return "package-level variable"
	case RootCaptured:
		return "captured variable"
	}
	return "unknown"
}

// A Write is one assignment (or delete) recorded by a summary.
type Write struct {
	Pos  token.Pos
	Root RootKind
	// Obj is the root object, nil when RootUnknown.
	Obj types.Object
	// Map is set when the lvalue chain indexes a map (or the write is a
	// delete): concurrent map writes fault even when "benign".
	Map bool
	// Indexed is set when the lvalue chain indexes a slice or array —
	// workers writing disjoint slots of a shared slice is the repo's
	// sanctioned fan-out result pattern.
	Indexed bool
	// Direct is set when the lvalue is the bare root identifier — the
	// binding itself is reassigned, not an element or field of it.
	Direct bool
}

// A Call is one statically resolved call site.
type Call struct {
	Pos token.Pos
	Fn  *types.Func
}

// A Summary records one function body's dataflow-relevant facts.
type Summary struct {
	Writes []Write
	Calls  []Call
	// Dynamic are call sites through interfaces or function values — edges
	// the static table cannot follow.
	Dynamic []token.Pos
	// ChanOps are channel sends, receives, closes, selects, and
	// channel-range statements.
	ChanOps []token.Pos
	// Spawns are go statements.
	Spawns []token.Pos
	// ChecksCtx is set when the body calls Err or Done on a
	// context.Context value.
	ChecksCtx bool
}

// Summaries is a per-package call-summary table: one Summary per function
// or method declared (with a body) in the package's files. Imported
// functions appear only as Call targets — their types come from export
// data, their bodies are invisible, and analyzers decide by policy what to
// assume about them.
type Summaries struct {
	funcs map[*types.Func]*Summary
	decls map[*types.Func]*ast.FuncDecl
}

// Summarize builds the call-summary table for a package's files.
func Summarize(files []*ast.File, info *types.Info) *Summaries {
	t := &Summaries{
		funcs: map[*types.Func]*Summary{},
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			t.funcs[fn] = SummarizeBody(info, fn.Type().(*types.Signature), fd.Body)
			t.decls[fn] = fd
		}
	}
	return t
}

// Of returns fn's summary, or nil when fn is not declared in the package.
func (t *Summaries) Of(fn *types.Func) *Summary { return t.funcs[fn] }

// Decl returns fn's declaration, or nil when fn is not in the table.
func (t *Summaries) Decl(fn *types.Func) *ast.FuncDecl { return t.decls[fn] }

// Reachable returns the in-table functions reachable from roots through
// static call edges (roots included when in the table), ordered by source
// position so analyzer reports are deterministic.
func (t *Summaries) Reachable(roots []*types.Func) []*types.Func {
	seen := map[*types.Func]bool{}
	var out []*types.Func
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		s := t.funcs[fn]
		if s == nil {
			return
		}
		out = append(out, fn)
		for _, c := range s.Calls {
			visit(c.Fn)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// ChecksCtxTransitive reports whether fn, or any in-table function reachable
// from it, checks a context (ctx.Err/ctx.Done).
func (t *Summaries) ChecksCtxTransitive(fn *types.Func) bool {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func) bool
	visit = func(fn *types.Func) bool {
		if fn == nil || seen[fn] {
			return false
		}
		seen[fn] = true
		s := t.funcs[fn]
		if s == nil {
			return false
		}
		if s.ChecksCtx {
			return true
		}
		for _, c := range s.Calls {
			if visit(c.Fn) {
				return true
			}
		}
		return false
	}
	return visit(fn)
}

// SummarizeBody summarizes one function body against its signature. It is
// exported (rather than private to Summarize) so analyzers can summarize
// function literals — e.g. the closure of a go statement — on demand.
//
// Nested function literals are folded into the enclosing summary: their
// effects are attributed to the function whether or not the literal is ever
// invoked, a deliberate overapproximation that errs toward reporting.
func SummarizeBody(info *types.Info, sig *types.Signature, body *ast.BlockStmt) *Summary {
	s := &Summary{}
	w := summaryWalker{info: info, sig: sig, body: body, out: s}
	w.walk(body)
	return s
}

type summaryWalker struct {
	info *types.Info
	sig  *types.Signature
	body *ast.BlockStmt
	out  *Summary
}

func (w *summaryWalker) walk(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				w.write(lhs, m.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			w.write(m.X, false)
		case *ast.SendStmt:
			w.out.ChanOps = append(w.out.ChanOps, m.Pos())
		case *ast.SelectStmt:
			w.out.ChanOps = append(w.out.ChanOps, m.Pos())
		case *ast.RangeStmt:
			if t := w.info.TypeOf(m.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.out.ChanOps = append(w.out.ChanOps, m.Pos())
				}
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				w.out.ChanOps = append(w.out.ChanOps, m.Pos())
			}
		case *ast.GoStmt:
			w.out.Spawns = append(w.out.Spawns, m.Pos())
		case *ast.CallExpr:
			w.call(m)
		}
		return true
	})
}

// write records one lvalue, classifying its root.
func (w *summaryWalker) write(lhs ast.Expr, define bool) {
	rec := Write{Pos: lhs.Pos()}
	expr := lhs
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			if t := w.info.TypeOf(e.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					rec.Map = true
				default:
					rec.Indexed = true
				}
			}
			expr = e.X
		default:
			goto resolved
		}
	}
resolved:
	id, ok := expr.(*ast.Ident)
	if !ok {
		rec.Root = RootUnknown
		w.out.Writes = append(w.out.Writes, rec)
		return
	}
	if id.Name == "_" {
		return
	}
	obj := w.info.Uses[id]
	if obj == nil {
		obj = w.info.Defs[id]
		if obj != nil && expr == lhs {
			return // `x := ...` introduces a new local; not a shared write
		}
	}
	if obj == nil {
		rec.Root = RootUnknown
		w.out.Writes = append(w.out.Writes, rec)
		return
	}
	if define && expr == lhs && obj.Pos() >= w.body.Pos() && obj.Pos() <= w.body.End() {
		return // re-declared local in a multi-assign :=
	}
	rec.Obj = obj
	rec.Root = w.classify(obj)
	rec.Direct = expr == lhs
	w.out.Writes = append(w.out.Writes, rec)
}

// classify decides where obj lives relative to the summarized function.
func (w *summaryWalker) classify(obj types.Object) RootKind {
	if w.sig != nil {
		if recv := w.sig.Recv(); recv != nil && obj == recv {
			return RootReceiver
		}
		params := w.sig.Params()
		for i := 0; i < params.Len(); i++ {
			if obj == params.At(i) {
				return RootParam
			}
		}
		results := w.sig.Results()
		for i := 0; i < results.Len(); i++ {
			if obj == results.At(i) {
				return RootParam
			}
		}
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return RootGlobal
	}
	if obj.Pos() < w.body.Pos() || obj.Pos() > w.body.End() {
		return RootCaptured
	}
	return RootLocal
}

// call records one call site: a static edge when the callee is a declared
// function or concrete method, a channel op for close(), a dynamic site for
// interface methods and function values, and the ChecksCtx fact for
// ctx.Err/ctx.Done.
func (w *summaryWalker) call(call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch o := w.info.Uses[fun].(type) {
		case *types.Func:
			w.out.Calls = append(w.out.Calls, Call{Pos: call.Pos(), Fn: o})
		case *types.Builtin:
			if o.Name() == "close" {
				w.out.ChanOps = append(w.out.ChanOps, call.Pos())
			}
			if o.Name() == "delete" && len(call.Args) == 2 {
				w.write(&ast.IndexExpr{X: call.Args[0], Index: call.Args[1]}, false)
			}
		case *types.Var:
			w.out.Dynamic = append(w.out.Dynamic, call.Pos())
		case nil:
			// conversion to a local type or a Defs entry; ignore
		}
	case *ast.SelectorExpr:
		if w.isCtxCheck(fun) {
			w.out.ChecksCtx = true
		}
		if sel, ok := w.info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					w.out.Dynamic = append(w.out.Dynamic, call.Pos())
				} else {
					w.out.Calls = append(w.out.Calls, Call{Pos: call.Pos(), Fn: fn})
				}
				return
			}
			// field of function type
			w.out.Dynamic = append(w.out.Dynamic, call.Pos())
			return
		}
		// Qualified call pkg.F.
		if fn, ok := w.info.Uses[fun.Sel].(*types.Func); ok {
			w.out.Calls = append(w.out.Calls, Call{Pos: call.Pos(), Fn: fn})
		}
	default:
		// Call of a function value expression or a conversion.
		if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		w.out.Dynamic = append(w.out.Dynamic, call.Pos())
	}
}

// isCtxCheck reports whether sel is ctx.Err or ctx.Done on a
// context.Context value.
func (w *summaryWalker) isCtxCheck(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
		return false
	}
	t := w.info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
