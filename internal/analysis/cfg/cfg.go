// Package cfg builds per-function control-flow graphs from go/ast, giving
// µBE's analyzers (package rules) a dataflow vocabulary the purely syntactic
// walkers could not express: basic blocks with branch, loop, and defer
// edges, path queries (Reaches, EveryPathHits), a reaching-uses helper, and
// a per-package call-summary table (see summary.go) recording each declared
// function's side-effect facts and static call edges.
//
// Like the rest of internal/analysis, the package is stdlib-only. Graphs are
// intraprocedural and intentionally approximate where exactness would need
// whole-program analysis:
//
//   - panics and runtime.Goexit are not modeled as edges; a statement either
//     falls through, branches, or returns.
//   - function literals are separate functions: their bodies contribute no
//     blocks to the enclosing graph (call New on the literal's own body).
//   - calls through interfaces or function values yield no call edges in
//     the summary table; Summary.Dynamic records the sites so analyzers can
//     document the approximation instead of silently trusting it.
//
// Analyzers built on these graphs therefore prove properties of the control
// shapes the repo actually uses and state the rest as soundness limits (see
// DESIGN.md, "Static analysis & determinism policy").
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Block is one basic block: a maximal sequence of statements (and the
// control expressions that guard them) with a single entry and exit.
type Block struct {
	Index int
	// Kind labels the block's syntactic origin ("entry", "for.head",
	// "if.then", ...) for debugging and tests.
	Kind string
	// Nodes holds the block's statements and guard expressions in source
	// order. Loop and switch bodies are NOT nested inside these nodes —
	// they live in their own blocks — but expressions (including function
	// literals) are kept whole; use Inspect to walk a node without
	// descending into nested literals.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry, Exit *Block
	Blocks      []*Block
	// Defers are the function's defer statements in source order. Deferred
	// calls run on every path to Exit, so "must happen before return"
	// queries should consult them alongside EveryPathHits.
	Defers []*ast.DeferStmt

	blockOf map[ast.Node]*Block
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{blockOf: map[ast.Node]*Block{}}
	g.Entry = g.newBlock("entry")
	g.Exit = g.newBlock("exit")
	b := &builder{g: g, cur: g.Entry, labels: map[string]*labelInfo{}}
	b.stmtList(body.List)
	edge(b.cur, g.Exit) // fall off the end = implicit return
	b.resolveGotos()
	return g
}

// BlockOf returns the block that directly holds n (a statement or guard
// expression appended during construction), or nil for nodes nested inside
// another node or belonging to a different function.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// Reaches reports whether control can flow from a to b (a path of zero or
// more edges; a block always reaches itself).
func (g *Graph) Reaches(a, b *Block) bool {
	if a == b {
		return true
	}
	seen := map[*Block]bool{a: true}
	stack := append([]*Block(nil), a.Succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		if n == b {
			return true
		}
		seen[n] = true
		stack = append(stack, n.Succs...)
	}
	return false
}

// EveryPathHits reports whether every path from `from` (exclusive) to Exit
// passes through a block satisfying hit. Paths that never terminate (loops
// with no way out) vacuously satisfy the property. Deferred statements are
// not consulted — callers that accept a deferred witness check Graph.Defers
// themselves.
func (g *Graph) EveryPathHits(from *Block, hit func(*Block) bool) bool {
	seen := map[*Block]bool{from: true}
	stack := append([]*Block(nil), from.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if hit(b) {
			continue // barrier: paths through b are satisfied
		}
		if b == g.Exit {
			return false // reached exit without passing a hit block
		}
		stack = append(stack, b.Succs...)
	}
	return true
}

// A Use is one read of an object, located in its block.
type Use struct {
	Ident *ast.Ident
	Block *Block
}

// ReachingUses returns every read of obj that the program point just after
// node index `start` in block `from` can reach without an intervening
// redefinition of obj: reads later in `from` itself (up to a redefining
// write), then reads in successor blocks, propagated until a block writes
// obj before reading it further. Pass start = -1 to begin at the top of the
// block. Uses inside nested function literals are attributed to the block
// holding the literal (a closure read is still a read).
func (g *Graph) ReachingUses(from *Block, start int, obj types.Object, info *types.Info) []Use {
	var out []Use
	// Scan the tail of the starting block.
	if killed := scanBlock(from, start, obj, info, &out); killed {
		return out
	}
	seen := map[*Block]bool{from: true}
	stack := append([]*Block(nil), from.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if killed := scanBlock(b, -1, obj, info, &out); killed {
			continue
		}
		stack = append(stack, b.Succs...)
	}
	return out
}

// scanBlock appends reads of obj in b after index start to out and reports
// whether the block redefines obj (killing the inbound definition) before
// its end.
func scanBlock(b *Block, start int, obj types.Object, info *types.Info, out *[]Use) (killed bool) {
	for i, n := range b.Nodes {
		if i <= start {
			continue
		}
		if killed {
			return true
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			// RHS reads happen before the LHS write.
			for _, rhs := range s.Rhs {
				collectReads(rhs, obj, info, b, out)
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && resolves(id, obj, info) {
					killed = true
				} else {
					// x.f = v, x[i] = v read the base.
					collectReads(lhs, obj, info, b, out)
				}
			}
		case *ast.IncDecStmt:
			collectReads(s.X, obj, info, b, out)
			if id, ok := s.X.(*ast.Ident); ok && resolves(id, obj, info) {
				killed = true
			}
		default:
			collectReads(n, obj, info, b, out)
		}
	}
	return killed
}

func resolves(id *ast.Ident, obj types.Object, info *types.Info) bool {
	if o := info.Uses[id]; o == obj {
		return true
	}
	return info.Defs[id] == obj
}

func collectReads(n ast.Node, obj types.Object, info *types.Info, b *Block, out *[]Use) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			*out = append(*out, Use{Ident: id, Block: b})
		}
		return true
	})
}

// Inspect walks n in the manner of ast.Inspect but does not descend into
// nested function literals: their bodies belong to a different function's
// graph. The node n itself may be a *ast.FuncLit — then its body IS walked
// (you asked about that function).
func Inspect(n ast.Node, f func(ast.Node) bool) {
	root := n
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && lit != root {
			return false
		}
		return f(m)
	})
}

// ---- construction ----

type builder struct {
	g   *Graph
	cur *Block
	// targets is the break/continue stack, innermost last.
	targets []targetFrame
	// fallthroughTo is the next case block of the innermost switch.
	fallthroughTo *Block
	labels        map[string]*labelInfo
}

type targetFrame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select frames
}

type labelInfo struct {
	block *Block   // first block of the labeled statement
	gotos []*Block // blocks ending in a goto awaiting resolution
}

func (g *Graph) newBlock(kind string) *Block {
	b := &Block{Index: len(g.Blocks), Kind: kind}
	g.Blocks = append(g.Blocks, b)
	return b
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

// startBlock begins a new block reached by falling through from cur.
func (b *builder) startBlock(kind string) *Block {
	nb := b.g.newBlock(kind)
	edge(b.cur, nb)
	b.cur = nb
	return nb
}

// jump ends cur with an edge to `to` and parks cur in a fresh, unreachable
// block for any statements that syntactically follow a terminator.
func (b *builder) jump(to *Block) {
	edge(b.cur, to)
	b.cur = b.g.newBlock("unreachable")
}

func (b *builder) push(label string, brk, cont *Block) {
	b.targets = append(b.targets, targetFrame{label: label, brk: brk, cont: cont})
}

func (b *builder) pop() { b.targets = b.targets[:len(b.targets)-1] }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.EmptyStmt:
		// nothing
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	join := b.g.newBlock("if.join")
	then := b.g.newBlock("if.then")
	edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	edge(b.cur, join)
	if s.Else != nil {
		els := b.g.newBlock("if.else")
		edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		edge(b.cur, join)
	} else {
		edge(cond, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startBlock("for.head")
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.g.newBlock("for.body")
	after := b.g.newBlock("for.after")
	edge(head, body)
	if s.Cond != nil {
		edge(head, after)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.g.newBlock("for.post")
		cont = post
	}
	b.push(label, after, cont)
	b.cur = body
	b.stmt(s.Body)
	if post != nil {
		edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
	}
	edge(b.cur, head) // back edge
	b.pop()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.startBlock("range.head")
	b.add(s.X)
	body := b.g.newBlock("range.body")
	after := b.g.newBlock("range.after")
	edge(head, body)
	edge(head, after)
	b.push(label, after, head)
	b.cur = body
	b.stmt(s.Body)
	edge(b.cur, head) // back edge
	b.pop()
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body, label, true)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, label, false)
}

// caseClauses builds the clause blocks of a (type) switch. Every clause is
// an alternative successor of the dispatching block; without a default
// clause control may skip the switch entirely.
func (b *builder) caseClauses(body *ast.BlockStmt, label string, allowFallthrough bool) {
	cond := b.cur
	after := b.g.newBlock("switch.after")
	b.push(label, after, nil)
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.g.newBlock(kind)
		edge(cond, blocks[i])
	}
	if !hasDefault {
		edge(cond, after)
	}
	savedFT := b.fallthroughTo
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		}
		b.stmtList(cc.Body)
		edge(b.cur, after)
	}
	b.fallthroughTo = savedFT
	b.pop()
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	cond := b.cur
	after := b.g.newBlock("select.after")
	b.push(label, after, nil)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		kind := "select.comm"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.g.newBlock(kind)
		edge(cond, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		edge(b.cur, after)
	}
	b.pop()
	// A select{} with no clauses blocks forever: after keeps no
	// predecessors and everything below is unreachable, which is exact.
	b.cur = after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	lb := b.startBlock("label." + name)
	b.labelInfo(name).block = lb
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, name)
	case *ast.SelectStmt:
		b.selectStmt(inner, name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(s.Label, true); t != nil {
			b.jump(t)
		}
	case token.CONTINUE:
		if t := b.findTarget(s.Label, false); t != nil {
			b.jump(t)
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
		}
	case token.GOTO:
		li := b.labelInfo(s.Label.Name)
		li.gotos = append(li.gotos, b.cur)
		b.cur = b.g.newBlock("unreachable")
	}
}

// findTarget resolves a break (isBreak) or continue target, innermost first.
func (b *builder) findTarget(label *ast.Ident, isBreak bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != nil && t.label != label.Name {
			continue
		}
		if isBreak {
			return t.brk
		}
		if t.cont != nil {
			return t.cont
		}
		if label != nil {
			return nil // continue to a non-loop label: invalid Go
		}
	}
	return nil
}

func (b *builder) labelInfo(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) resolveGotos() {
	for _, li := range b.labels {
		if li.block == nil {
			continue // goto to an undeclared label: invalid Go
		}
		for _, from := range li.gotos {
			edge(from, li.block)
		}
	}
}
