// Fixture for the floatcmp analyzer. Float equality is flagged everywhere
// except against the exact constant zero (the unset-sentinel idiom) or
// under an explicit ignore directive.
package floatcmp

import "math"

const half = 0.5

func compare(a, b float64, f, g float32, i, j int) bool {
	if a == b { // want "float equality"
		return true
	}
	if a != b { // want "float equality"
		return true
	}
	if f == g { // want "float equality"
		return true
	}
	if a == half { // want "float equality"
		return true
	}
	if a == 1.0 { // want "float equality"
		return true
	}
	return i == j // ints: fine
}

func sentinels(a, weight float64) bool {
	if weight == 0 { // exact-zero sentinel: fine
		return false
	}
	if 0 == a { // fine either side
		return false
	}
	return math.Abs(a-weight) <= 1e-9 // epsilon comparison: fine
}

func suppressed(q1, q2 float64) bool {
	//mube:vet-ignore floatcmp — scores are copied, not recomputed
	return q1 == q2 // directive above suppresses this line
}
