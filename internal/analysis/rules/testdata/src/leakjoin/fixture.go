// Package fixture covers the goroutine-join shapes: pools that join on every
// path, and spawns whose goroutines can outlive the function.
package fixture

import "sync"

func work(wg *sync.WaitGroup) { defer wg.Done() }

// joined is the canonical pool: spawn in a loop, Wait after it.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// chanJoined joins by receiving the goroutine's result.
func chanJoined() int {
	out := make(chan int)
	go func() {
		out <- 1
	}()
	return <-out
}

// deferJoined joins through a deferred Wait, which runs on every path.
func deferJoined(b bool) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	if b {
		return
	}
}

// rangeJoined drains the channel the goroutine feeds and closes.
func rangeJoined() int {
	out := make(chan int)
	go func() {
		out <- 1
		close(out)
	}()
	t := 0
	for v := range out {
		t += v
	}
	return t
}

// selectJoined receives through a select whose every case is a receive.
func selectJoined(done chan struct{}) {
	go func() {
		close(done)
	}()
	select {
	case <-done:
	}
}

// namedJoined spawns a named function; any join on the exit paths counts.
func namedJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go work(&wg)
	wg.Wait()
}

// leaked has no join at all.
func leaked() {
	go func() { // want "no join"
		_ = 1
	}()
}

// notAllPaths lets an early return escape the Wait.
func notAllPaths(b bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "no join"
		defer wg.Done()
	}()
	if b {
		return
	}
	wg.Wait()
}

// namedLeaked spawns a named function and never joins anything.
func namedLeaked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go work(&wg) // want "no join"
}

// wrongObject waits on a different WaitGroup than the goroutine signals.
func wrongObject(other *sync.WaitGroup) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "no join"
		defer wg.Done()
	}()
	other.Wait()
}

// insideClosure: spawns inside function literals are checked against the
// literal's own exit paths.
func insideClosure() func() {
	return func() {
		go func() { // want "no join"
			_ = 1
		}()
	}
}
