// Package fixture covers the span-lifecycle shapes: spans ended on every
// path (directly, deferred, or by ownership transfer), and spans that can
// leak on some path to return.
package fixture

import (
	"errors"

	"mube/internal/telemetry"
)

// straightLine is the canonical shape: begin, work, end.
func straightLine(rec *telemetry.Recorder) {
	sp := rec.BeginSpan("phase")
	rec.Emit("work")
	sp.End()
}

// deferEnded ends through a defer, which runs on every path.
func deferEnded(rec *telemetry.Recorder, b bool) {
	sp := rec.BeginSpan("phase")
	defer sp.End()
	if b {
		return
	}
	rec.Emit("work")
}

// deferClosureEnded ends inside a deferred closure.
func deferClosureEnded(rec *telemetry.Recorder) {
	sp := rec.BeginSpan("phase")
	defer func() { sp.End(telemetry.Int("done", 1)) }()
	rec.Emit("work")
}

// everyBranchEnded ends explicitly on the error path and the success path —
// the watch-loop phase-span idiom.
func everyBranchEnded(rec *telemetry.Recorder, fail bool) error {
	sp := rec.BeginSpan("phase")
	if fail {
		sp.End(telemetry.Str("err", "boom"))
		return errors.New("boom")
	}
	rec.Emit("work")
	sp.End()
	return nil
}

// loopSpans begin and end once per iteration — the partition-group idiom.
func loopSpans(rec *telemetry.Recorder, n int) {
	for i := 0; i < n; i++ {
		sp := rec.BeginSpan("group")
		if i%2 == 0 {
			sp.End(telemetry.Str("status", "skip"))
			continue
		}
		sp.End()
	}
}

// returned hands the span to the caller — ownership transfer, not a leak
// (the Search.BeginSolve idiom).
func returned(rec *telemetry.Recorder) telemetry.Span {
	return rec.BeginSpan("solver.run")
}

// assignedAndReturned transfers through a local variable.
func assignedAndReturned(rec *telemetry.Recorder) telemetry.Span {
	sp := rec.BeginSpan("solver.run")
	rec.Emit("work")
	return sp
}

// handedOff passes the span to a helper that owns the End from there on.
func handedOff(rec *telemetry.Recorder) {
	sp := rec.BeginSpan("phase")
	finish(sp)
}

func finish(sp telemetry.Span) { sp.End() }

// leakedOnErrorPath ends only on the success path.
func leakedOnErrorPath(rec *telemetry.Recorder, fail bool) error {
	sp := rec.BeginSpan("phase") // want "no End on some path"
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// neverEnded leaks unconditionally.
func neverEnded(rec *telemetry.Recorder) {
	sp := rec.BeginSpan("phase") // want "no End on some path"
	rec.Emit("work")
	_ = sp
}

// discarded drops the span value at the call: it can never be ended.
func discarded(rec *telemetry.Recorder) {
	rec.BeginSpan("phase") // want "span discarded without End"
}

// blankAssigned discards through the blank identifier.
func blankAssigned(rec *telemetry.Recorder) {
	_ = rec.BeginSpan("phase") // want "span discarded without End"
}

// closureLeak opens a span in a function literal that never ends it; the
// literal is its own graph.
func closureLeak(rec *telemetry.Recorder) func() {
	return func() {
		sp := rec.BeginSpan("phase") // want "no End on some path"
		_ = sp
	}
}

// ignored documents an intentional leak (truncated-trace fixtures).
func ignored(rec *telemetry.Recorder) {
	//mube:vet-ignore spanend — fixture needs an open span
	sp := rec.BeginSpan("phase")
	_ = sp
}
