// Package fixture mirrors the evaluator's batch fan-out shapes: a clean
// worker pool that must pass, and impure variants that must be flagged.
package fixture

import (
	"sync"
	"sync/atomic"

	"mube/internal/telemetry"
)

type job struct {
	ids []int
	v   float64
}

type pool struct {
	mu      sync.Mutex
	memo    map[string]float64
	scratch sync.Pool
	rec     *telemetry.Recorder
	evals   int
}

// good is the sanctioned fan-out: an atomic cursor hands out jobs, each
// worker writes only its job's slot, and the commutative counters are the
// only telemetry.
func (p *pool) good(jobs []*job, workers int) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := p.scratch.Get()
			defer p.scratch.Put(sc)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jobs[i].v = p.compute(jobs[i].ids)
			}
		}()
	}
	wg.Wait()
}

// compute is worker-reachable and pure: locals only, counter adds allowed.
func (p *pool) compute(ids []int) float64 {
	s := 0.0
	for _, id := range ids {
		s += float64(id)
	}
	p.rec.Add("eval.computed", 1)
	p.rec.Observe("eval.job_size", float64(len(ids)))
	return s
}

// badWrites mutates shared state from workers.
func (p *pool) badWrites(jobs []*job, workers int) {
	total := 0.0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.evals++            // want "writes shared state"
			p.memo["k"] = 1      // want "writes a shared map"
			total += jobs[0].v   // want "writes shared state"
		}()
	}
	wg.Wait()
	_ = total
}

// badLock serializes the fan-out through the evaluator's mutex.
func (p *pool) badLock(jobs []*job) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.mu.Lock()   // want "sync is limited to WaitGroup.Done and Pool.Get/Put"
		jobs[0].v = 1 // legal: disjoint slot
		p.mu.Unlock() // want "sync is limited to WaitGroup.Done and Pool.Get/Put"
	}()
	wg.Wait()
}

// badChan coordinates workers through a channel instead of the cursor.
func (p *pool) badChan(jobs []*job) {
	out := make(chan float64, len(jobs))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out <- 1 // want "channel operation"
	}()
	wg.Wait()
	<-out
}

// badEmit writes to the ordered event stream from a worker.
func (p *pool) badEmit() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.rec.Emit("eval.batch", telemetry.Int("jobs", 1)) // want "Emit/Gauge are ordered"
	}()
	wg.Wait()
}

// badReach is impure only through a callee: the diagnostics land inside the
// reachable function, at the offending statements.
func (p *pool) badReach(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.impure()
		}()
	}
	wg.Wait()
}

// impure is fine on the solve goroutine but not from a worker.
func (p *pool) impure() {
	p.evals++                   // want "worker-reachable function impure writes shared state"
	p.rec.Gauge("eval.best", 1) // want "worker-reachable function impure calls Gauge"
}
