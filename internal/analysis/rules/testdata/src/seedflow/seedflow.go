// Fixture for the seedflow analyzer, loaded under a production import path:
// constant seeds are flagged, config-carried seeds are not.
package seedflow

import "math/rand"

const pinned int64 = 7

type config struct{ Seed int64 }

func literals() {
	_ = rand.NewSource(42)     // want "constant seed 42"
	_ = rand.NewSource(pinned) // want "constant seed 7"
}

func fromConfig(cfg config, seed int64) {
	_ = rand.NewSource(cfg.Seed) // seed flows from config: fine
	_ = rand.NewSource(seed)     // fine
}
