// Test files pin seeds by design; nothing here is flagged.
package seedflow

import "math/rand"

func pinnedForTest() {
	_ = rand.NewSource(1) // no want: _test.go files are allowlisted
}
