// Fixture loaded under mube/internal/synth — deterministic fixture
// generation is allowlisted, so its pinned seeds pass.
package allowed

import "math/rand"

func generator() *rand.Rand {
	return rand.New(rand.NewSource(99)) // no want: synth is allowlisted
}
