// Fixture for the errdrop analyzer: statement-position calls that drop an
// error result are flagged; explicit discards, handled errors, and the
// can't-fail exemptions are not.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

func fails() error                { return nil }
func failsWithValue() (int, error) { return 0, nil }
func succeeds() int               { return 0 }

func drops(path string) {
	fails()                    // want "fails returns an error that is silently discarded"
	failsWithValue()           // want "failsWithValue returns an error"
	os.Remove(path)            // want "os.Remove returns an error"
	fmt.Errorf("built: %s", path) // want "fmt.Errorf returns an error"
}

func handles(path string) error {
	_ = fails()           // explicit discard: fine
	_, _ = failsWithValue() // fine
	succeeds()            // no error result: fine
	if err := os.Remove(path); err != nil {
		return err
	}
	return fails()
}

func exempt(w *os.File) {
	fmt.Println("terminal printing is exempt") // no want
	fmt.Fprintf(w, "as is Fprintf %d\n", 1)    // no want
	var b strings.Builder
	b.WriteString("in-memory builders never fail") // no want
	fmt.Println(b.String())
}
