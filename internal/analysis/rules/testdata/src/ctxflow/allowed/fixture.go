// Package fixture holds patterns ctxflow bans in the core but permits in
// allowlisted packages (the exp harness owns its run lifecycles): loaded
// under mube/internal/exp it must produce no diagnostics.
package fixture

import "context"

// detachedRun would be flagged anywhere else in internal/.
func detachedRun(work func(context.Context)) {
	work(context.Background())
}

// unusedCtx would be a dropped cancellation path in the core.
func unusedCtx(ctx context.Context, n int) int {
	return n * 2
}
