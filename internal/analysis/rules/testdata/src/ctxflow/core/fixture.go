// Package fixture exercises the solver-loop cancellation contract against
// the real internal/opt evaluator API (type-checked, never executed).
package fixture

import (
	"context"

	"mube/internal/opt"
	"mube/internal/schema"
)

// goodDirect tests ctx.Err every iteration.
func goodDirect(ctx context.Context, e *opt.Evaluator, ids []schema.SourceID) float64 {
	best := 0.0
	for i := 0; i < 100; i++ {
		if ctx.Err() != nil {
			break
		}
		if q := e.Eval(ids); q > best {
			best = q
		}
	}
	return best
}

// goodStopped relies on Search.Stopped in the loop condition, the way the
// in-tree solvers do.
func goodStopped(s *opt.Search, cur *opt.Subset, n int) {
	for iter := 0; iter < n && !s.Stopped(); iter++ {
		moves := s.Moves(cur, 4)
		_ = s.EvalMoves(cur, moves)
	}
}

// goodHelper checks through an in-package helper the summary table follows.
func goodHelper(ctx context.Context, e *opt.Evaluator, ids []schema.SourceID) {
	for i := 0; i < 10; i++ {
		if stopped(ctx) {
			return
		}
		e.Eval(ids)
	}
}

func stopped(ctx context.Context) bool { return ctx.Err() != nil }

// goodSelect drains ctx.Done inside the loop.
func goodSelect(ctx context.Context, e *opt.Evaluator, batches [][][]schema.SourceID) {
	for _, b := range batches {
		select {
		case <-ctx.Done():
			return
		default:
		}
		e.EvalBatch(b)
	}
}

// noEval never touches the evaluator; plain compute loops need no check.
func noEval(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// badLoop burns evaluation budget with no way to stop it.
func badLoop(ctx context.Context, e *opt.Evaluator, ids []schema.SourceID) float64 {
	best := 0.0
	for i := 0; i < 100; i++ { // want "never tests the context"
		if q := e.Eval(ids); q > best {
			best = q
		}
	}
	_ = ctx.Err()
	return best
}

// badRange fans out batches with no per-iteration test either.
func badRange(e *opt.Evaluator, batches [][][]schema.SourceID) {
	for _, b := range batches { // want "never tests the context"
		e.EvalBatch(b)
	}
}

// badDropped accepts a ctx it never consults.
func badDropped(ctx context.Context, xs []int) int { // want "ctx parameter ctx is never used"
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// badBackground mints an uncancelable context below the API boundary.
func badBackground(e *opt.Evaluator) {
	e.BindContext(context.Background()) // want "uncancelable context"
}
