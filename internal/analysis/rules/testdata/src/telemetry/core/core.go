// Fixture for the telemetry analyzer, loaded under a restricted import path
// (mube/internal/qef/fixture). Ad-hoc stdout printing, log calls, and the
// debug-surface imports must be flagged; writer-directed and pure fmt
// helpers must not.
package core

import (
	"expvar" // want "import of expvar in an internal package"
	"fmt"
	"io"
	"log"
	_ "net/http/pprof" // want "import of net/http/pprof in an internal package"
	"os"
)

func prints(w io.Writer) {
	fmt.Print("raw")           // want "call to fmt.Print in an internal package"
	fmt.Printf("q=%v\n", 0.5)  // want "call to fmt.Printf in an internal package"
	fmt.Println("done")        // want "call to fmt.Println in an internal package"
	log.Printf("q=%v\n", 0.5)  // want "call to log.Printf in an internal package"
	log.Println("done")        // want "call to log.Println in an internal package"
	_ = log.New(os.Stderr, "", 0) // want "call to log.New in an internal package"

	// Writer-directed and allocation-free fmt calls are the approved paths.
	fmt.Fprintf(w, "q=%v\n", 0.5)   // explicit writer: fine
	fmt.Fprintln(w, "done")         // fine
	_ = fmt.Sprintf("q=%v", 0.5)    // no I/O: fine
	_ = fmt.Errorf("bad q %v", 0.5) // fine
	_ = expvar.Get
}
