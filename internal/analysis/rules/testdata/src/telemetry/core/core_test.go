// Test files inside the restricted scope are exempt: tests may print
// whatever diagnostics they like.
package core

import (
	"fmt"
	"log"
)

func testHelper() {
	fmt.Println("debug output") // no want: test file
	log.Printf("state: %v", 1)  // no want
}
