// Fixture loaded under mube/internal/testutil — inside internal/ but on the
// explicit allowlist (test scaffolding owns its output). Nothing is flagged.
package allowed

import "fmt"

func dump(q float64) {
	fmt.Printf("q=%v\n", q) // no want: allowlisted package
	fmt.Println("done")     // no want
}
