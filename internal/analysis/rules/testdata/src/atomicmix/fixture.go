// Package fixture mixes function-style sync/atomic access with plain access
// to the same objects; typed atomics and plain-only fields must pass.
package fixture

import "sync/atomic"

type counter struct {
	n    uint64       // accessed via atomic.AddUint64: every touch must be atomic
	safe atomic.Int64 // typed atomic: mixed access is unrepresentable
	hits uint64       // plain-only: fine
}

func (c *counter) incr() {
	atomic.AddUint64(&c.n, 1)
	c.safe.Add(1)
	c.hits++
}

// load uses the atomic API consistently.
func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n)
}

// mixedRead reads the atomic field without the API.
func (c *counter) mixedRead() uint64 {
	return c.n // want "plain access to n"
}

// mixedWrite resets it plainly.
func (c *counter) mixedWrite() {
	c.n = 0 // want "plain access to n"
	c.hits = 0
	c.safe.Store(0)
}

var global uint64

func bumpGlobal() {
	atomic.AddUint64(&global, 1)
}

func readGlobal() uint64 {
	return global // want "plain access to global"
}

// swap keeps a package-level var fully atomic.
var state uint32

func swap(next uint32) uint32 {
	old := atomic.LoadUint32(&state)
	atomic.StoreUint32(&state, next)
	return old
}
