// Fixture for the determinism analyzer, loaded under the restricted import
// path mube/internal/opt/fixture. Global randomness and wall-clock reads
// must be flagged; the injected equivalents must not.
package core

import (
	"math/rand"
	"time"
)

func globals() {
	_ = rand.Intn(6)         // want "global rand.Intn"
	_ = rand.Float64()       // want "global rand.Float64"
	rand.Shuffle(3, swap)    // want "global rand.Shuffle"
	_ = time.Now()           // want "time.Now in the deterministic core"
	start := time.Time{}
	_ = time.Since(start)    // want "time.Since in the deterministic core"
	time.Sleep(time.Millisecond) // want "time.Sleep in the deterministic core"
	<-time.After(time.Millisecond) // want "time.After in the deterministic core"
	_ = time.Tick(time.Second) // want "time.Tick in the deterministic core"
}

// clock mimics the injected-clock pattern (fault.Clock): sleeping through an
// injected value is the approved path, not a leak.
type clock interface {
	Sleep(d time.Duration)
}

func injectedSleep(c clock) {
	c.Sleep(time.Millisecond) // injected clock: fine
}

func injected(r *rand.Rand, now func() time.Time) time.Duration {
	_ = r.Intn(6)      // injected source: fine
	_ = r.Float64()    // fine
	start := now()     // injected clock: fine
	return now().Sub(start)
}

// construction of an injectable source is the approved pattern, not a leak.
func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func swap(i, j int) {}
