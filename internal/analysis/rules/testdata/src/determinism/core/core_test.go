// Test files inside the restricted scope are exempt: tests may use global
// randomness for fixture noise without breaking replayability.
package core

import (
	"math/rand"
	"time"
)

func helperForTests() {
	_ = rand.Intn(6) // no want: _test.go files are allowlisted
	_ = time.Now()   // no want
}
