// Fixture loaded under mube/internal/opt/opttest — inside the restricted
// internal/opt subtree but on the explicit allowlist (test-fixture and
// bench harnesses own their timing and randomness). Nothing is flagged.
package allowed

import (
	"math/rand"
	"time"
)

func harness() time.Time {
	_ = rand.Intn(6) // no want: allowlisted package
	return time.Now() // no want
}
