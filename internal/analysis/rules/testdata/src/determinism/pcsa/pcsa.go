// Fixture loaded under mube/internal/pcsa/fixture: the sketch layer is part
// of the deterministic core (estimates must be a pure function of the tuples
// hashed in), so global randomness and wall-clock reads are flagged there
// too. The patterns below mirror the counting-union code paths added for
// incremental evaluation — saturating refcount updates and fused estimate
// folds must stay pure.
package pcsa

import (
	"math/rand"
	"time"
)

type counting struct {
	counts []uint8
	words  []uint64
}

// leakySeed mimics the bug class the scope guards against: deriving sketch
// state from ambient randomness or time instead of the injected config seed.
func leakySeed() uint64 {
	x := rand.Uint64()                // want "global rand.Uint64"
	x ^= uint64(time.Now().UnixNano()) // want "time.Now in the deterministic core"
	return x
}

// add is the pure refcount update shape: nothing ambient, nothing flagged.
func (c *counting) add(bits []uint64) {
	for i, w := range bits {
		if w != 0 {
			c.words[i] |= w
		}
	}
}

// injectedJitter shows the approved path: randomness through an injected
// *rand.Rand is fine even inside the sketch layer.
func injectedJitter(r *rand.Rand) uint64 {
	return r.Uint64() // injected source: fine
}
