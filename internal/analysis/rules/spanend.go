package rules

import (
	"go/ast"
	"go/types"

	"mube/internal/analysis"
	"mube/internal/analysis/cfg"
)

// SpanEnd requires every span opened with telemetry.BeginSpan (or any helper
// returning telemetry.Span, like Search.BeginSolve) to reach an End on every
// path from the begin to the function's exit. A span that is never ended
// stays on the recorder's stack, so every later event misparents under it
// and the golden traces the determinism suite pins stop matching; End's
// defensive pop limits the damage but cannot restore the lost tree shape.
//
// The analysis mirrors leakjoin's: the begin statement's basic block is
// located in the function's CFG, and End must appear in the block's tail, in
// a deferred statement (which runs on every path), or on every path to exit.
// Ownership transfer counts as a release — returning the span, passing it to
// another function, or assigning it onward hands the End obligation to the
// receiver (intraprocedurally; the callee is not consulted). A span whose
// result is discarded (`_ =` or a bare expression statement) can never be
// ended and is flagged at the call.
//
// Scope: the whole module including tests — leaked spans corrupt traces
// wherever they are recorded, and test fixtures that must leak (truncated
// traces, defensive-pop coverage) carry //mube:vet-ignore spanend.
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc: "every telemetry span begun must reach End (directly, deferred, or by " +
		"ownership transfer) on all paths from begin to return",
	Run: runSpanEnd,
}

func runSpanEnd(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanEnds(pass, fd.Body)
			// Function literals open spans too; each body is its own graph.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSpanEnds(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// isSpanType reports whether t is telemetry.Span.
func isSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		obj.Pkg().Path() == modulePath+"/internal/telemetry"
}

// spanDef is one statement binding a freshly begun span to a variable.
type spanDef struct {
	stmt ast.Stmt
	call *ast.CallExpr
	obj  types.Object
}

// checkSpanEnds finds every span begun in body and verifies each is released.
func checkSpanEnds(pass *analysis.Pass, body *ast.BlockStmt) {
	var defs []spanDef
	cfg.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSpanType(pass.TypesInfo.TypeOf(call)) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // span stored in a field: conservative skip
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"span discarded without End; it stays on the recorder's stack and misparents every later event")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				defs = append(defs, spanDef{stmt: n, call: call, obj: obj})
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok &&
				isSpanType(pass.TypesInfo.TypeOf(call)) {
				pass.Reportf(call.Pos(),
					"span discarded without End; it stays on the recorder's stack and misparents every later event")
			}
		}
		return true
	})
	if len(defs) == 0 {
		return
	}
	g := cfg.New(body)
	for _, d := range defs {
		if spanReleased(pass, g, d) {
			continue
		}
		pass.Reportf(d.call.Pos(),
			"span has no End on some path to return; it stays on the recorder's stack and misparents every later event")
	}
}

// spanReleased reports whether d's span is ended (or its ownership handed
// off) on every path from the begin statement to the function's exit.
func spanReleased(pass *analysis.Pass, g *cfg.Graph, d spanDef) bool {
	// A deferred release runs on every path to exit. Deferred closures run
	// too, so here (and only here) nested literals are inspected.
	for _, def := range g.Defers {
		ok := false
		ast.Inspect(def.Call, func(n ast.Node) bool {
			if ok {
				return false
			}
			if releasesSpan(pass, n, d.obj) {
				ok = true
				return false
			}
			return true
		})
		if ok {
			return true
		}
	}
	blk := g.BlockOf(d.stmt)
	if blk == nil {
		return true // statement not directly in a block; conservative skip
	}
	// The tail of the begin's own block, after the begin statement.
	start := -1
	for i, n := range blk.Nodes {
		if n == d.stmt {
			start = i
		}
	}
	for i := start + 1; i < len(blk.Nodes); i++ {
		if nodeReleasesSpan(pass, blk.Nodes[i], d.obj) {
			return true
		}
	}
	return g.EveryPathHits(blk, func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if nodeReleasesSpan(pass, n, d.obj) {
				return true
			}
		}
		return false
	})
}

// nodeReleasesSpan scans one block node (never descending into nested
// function literals — a closure in a block may never run) for a release of
// the span object.
func nodeReleasesSpan(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	cfg.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if releasesSpan(pass, m, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// releasesSpan reports whether the single node m releases the span: calls
// End on it, passes it to another function, returns it, or assigns it onward
// to a non-blank destination (each an ownership transfer).
func releasesSpan(pass *analysis.Pass, m ast.Node, obj types.Object) bool {
	switch m := m.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if o := rootObj(pass, sel.X); o != nil && o == obj {
				return true
			}
		}
		for _, arg := range m.Args {
			if o := rootObj(pass, arg); o != nil && o == obj {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, res := range m.Results {
			if o := rootObj(pass, res); o != nil && o == obj {
				return true
			}
		}
	case *ast.AssignStmt:
		// `other = sp` hands the span off; `_ = sp` is only the
		// unused-variable idiom and releases nothing.
		allBlank := true
		for _, lhs := range m.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				allBlank = false
			}
		}
		if allBlank {
			return false
		}
		for _, rhs := range m.Rhs {
			if o := rootObj(pass, rhs); o != nil && o == obj {
				return true
			}
		}
	}
	return false
}
