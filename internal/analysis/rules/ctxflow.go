package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mube/internal/analysis"
	"mube/internal/analysis/cfg"
)

// CtxFlow enforces the cancellation contract from the fault-tolerance PR:
// solvers must return best-so-far within one evaluation batch of ctx going
// dead. Three checks:
//
//  1. In the solver packages (internal/opt/...), any loop that can call the
//     evaluator must test the context each iteration — directly
//     (ctx.Err/ctx.Done), through Search.Stopped, or through an in-package
//     helper that transitively does one of those. A loop that evaluates
//     without checking runs to its iteration budget no matter what the user
//     canceled.
//  2. Anywhere in internal/, a context.Context parameter that the function
//     body never mentions is a dropped cancellation path.
//  3. Anywhere in internal/, context.Background()/context.TODO() mints an
//     uncancelable context below the API boundary; contexts must flow down
//     from the caller (the documented nil-reset sites carry ignore
//     directives).
//
// The per-iteration check is syntactic over the loop body (nested function
// literals excluded); whether the test is reached on a given path is not
// decided — a check on some path per iteration satisfies the rule.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "solver loops that call the evaluator must test ctx (Err/Done/Stopped) " +
		"every iteration; internal/ functions must not drop ctx params or mint " +
		"context.Background()/TODO()",
	Run: runCtxFlow,
}

// ctxFlowLoopScope is where the per-iteration check applies: the solver
// packages driving the evaluator.
var ctxFlowLoopScope = []string{
	modulePath + "/internal/opt",
}

// ctxFlowScope is where the dropped-param and Background checks apply.
var ctxFlowScope = []string{
	modulePath + "/internal",
}

// ctxFlowAllow exempts the experiment harness (it owns its lifecycles and
// deliberately runs detached contexts) and test scaffolding.
var ctxFlowAllow = []string{
	modulePath + "/internal/exp",
	modulePath + "/internal/testutil",
}

// evalMethods are the evaluator entry points whose presence makes a loop
// budget-relevant, keyed by receiver type in internal/opt.
var evalMethods = map[string]map[string]bool{
	"Evaluator": {
		"Eval": true, "EvalBatch": true, "EvalBatchDelta": true,
		"EvalBatchPreset": true,
	},
	"Search": {"EvalMove": true, "EvalMoves": true},
}

func runCtxFlow(pass *analysis.Pass) {
	if !underAny(pass.Path, ctxFlowScope) || underAny(pass.Path, ctxFlowAllow) {
		return
	}
	inLoopScope := underAny(pass.Path, ctxFlowLoopScope)
	sums := cfg.Summarize(pass.Files, pass.TypesInfo)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkDroppedCtx(pass, n)
				}
			case *ast.ForStmt:
				if inLoopScope {
					checkLoopCtx(pass, sums, n.Pos(), n.Cond, n.Body)
				}
			case *ast.RangeStmt:
				if inLoopScope {
					checkLoopCtx(pass, sums, n.Pos(), nil, n.Body)
				}
			case *ast.CallExpr:
				if pkgPath, name := pkgFunc(pass, n); pkgPath == "context" &&
					(name == "Background" || name == "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s() in an internal package mints an uncancelable context; accept a ctx from the caller instead",
						name)
				}
			}
			return true
		})
	}
}

// checkLoopCtx reports a loop that can call the evaluator but whose
// condition and body never test the context.
func checkLoopCtx(pass *analysis.Pass, sums *cfg.Summaries, pos token.Pos, cond ast.Expr, body *ast.BlockStmt) {
	callsEval := false
	checksCtx := false
	scan := func(root ast.Node) {
		cfg.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isEvalCall(pass, call) {
				callsEval = true
			}
			if isCtxTest(pass, sums, call) {
				checksCtx = true
			}
			return true
		})
	}
	if cond != nil {
		scan(cond)
	}
	scan(body)
	if callsEval && !checksCtx {
		pass.Reportf(pos,
			"loop calls the evaluator but never tests the context (ctx.Err/ctx.Done/Search.Stopped); cancellation would not stop it")
	}
}

// isEvalCall reports whether call invokes one of the evaluator entry points
// on internal/opt's Evaluator or Search.
func isEvalCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := methodOf(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != modulePath+"/internal/opt" {
		return false
	}
	set := evalMethods[recvTypeName(fn)]
	return set != nil && set[fn.Name()]
}

// isCtxTest reports whether call is a per-iteration cancellation test:
// ctx.Err()/ctx.Done(), a Stopped method on a module type, or an in-package
// helper that transitively performs one of those.
func isCtxTest(pass *analysis.Pass, sums *cfg.Summaries, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Direct call of an in-package helper: stopped(ctx), s.done()...
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		return ok && sums.ChecksCtxTransitive(fn)
	}
	if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil {
			if named, ok := t.(*types.Named); ok &&
				named.Obj().Name() == "Context" && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "context" {
				return true
			}
		}
	}
	fn := methodOf(pass, sel)
	if fn == nil {
		return false
	}
	if fn.Name() == "Stopped" && fn.Pkg() != nil &&
		strings.HasPrefix(fn.Pkg().Path(), modulePath+"/") {
		return true
	}
	return sums.ChecksCtxTransitive(fn)
}

// methodOf resolves a selector call to its *types.Func (method or qualified
// function), or nil.
func methodOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Func {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		fn, _ := s.Obj().(*types.Func)
		return fn
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn
}

// checkDroppedCtx reports a context.Context parameter the body never uses.
func checkDroppedCtx(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(),
					"ctx parameter %s is never used; the function cannot observe cancellation (drop it or plumb it through)",
					name.Name)
			}
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
