package rules

import (
	"go/ast"
	"strconv"

	"mube/internal/analysis"
)

// Telemetry keeps ad-hoc printing and the debug surface out of the core.
// Library packages under internal/ must report through the
// internal/telemetry facade: fmt.Print* / log.* writes would interleave with
// command output nondeterministically and bypass the no-op-by-default
// contract that makes instrumentation safe inside the deterministic core.
// Importing expvar or net/http/pprof is likewise banned there — the debug
// endpoint lives behind the telemetry.Serve facade (each command's
// -debug-addr flag), and keeping the imports out of the rest of internal/ is
// what guarantees it can never be reached from inside the core.
var Telemetry = &analysis.Analyzer{
	Name: "telemetry",
	Doc: "forbid fmt.Print*/log.* calls and expvar / net/http/pprof imports " +
		"in internal/ packages (except testutil); report through " +
		"internal/telemetry instead",
	Run: runTelemetry,
}

// telemetryScope is every library package: all of internal/.
var telemetryScope = []string{
	modulePath + "/internal",
}

// telemetryAllow exempts packages whose job is producing human-readable
// output or test scaffolding: testutil builds fixtures and failure messages,
// and telemetry itself renders the summaries every binary prints.
var telemetryAllow = []string{
	modulePath + "/internal/testutil",
	modulePath + "/internal/telemetry",
}

// stdoutPrintFuncs are the fmt functions that write to process stdout.
// Fprint* (explicit writer) and Sprint*/Errorf (no I/O) stay legal.
var stdoutPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// bannedImports are the debug-surface packages that must stay in cmd/.
var bannedImports = map[string]string{
	"expvar":         "the expvar debug surface belongs in telemetry.Serve (-debug-addr)",
	"net/http/pprof": "the pprof debug endpoint belongs in telemetry.Serve (-debug-addr)",
}

func runTelemetry(pass *analysis.Pass) {
	if !underAny(pass.Path, telemetryScope) || underAny(pass.Path, telemetryAllow) {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "import of %s in an internal package; %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := pkgFunc(pass, call)
			switch pkgPath {
			case "fmt":
				if stdoutPrintFuncs[name] {
					pass.Reportf(call.Pos(),
						"call to fmt.%s in an internal package; emit through the internal/telemetry facade (or print from cmd/)",
						name)
				}
			case "log":
				pass.Reportf(call.Pos(),
					"call to log.%s in an internal package; emit through the internal/telemetry facade",
					name)
			}
			return true
		})
	}
}
