package rules

import (
	"go/ast"

	"mube/internal/analysis"
)

// SeedFlow forbids rand.NewSource with a compile-time-constant seed outside
// test scaffolding. A literal seed buried in production code pins behavior
// to a hidden constant the operator can't vary or record; seeds must arrive
// through configuration (synth.Config.Seed, opt.Options.Seed, exp scenario
// seeds) so every run is reproducible *and* reportable.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "flag rand.NewSource(<constant>) outside testutil/synth/exp and " +
		"_test.go files; seeds must come from config or Opts.Seed",
	Run: runSeedFlow,
}

// seedFlowAllow marks the packages whose whole purpose is deterministic
// fixture generation; pinned seeds are their feature, not a leak.
var seedFlowAllow = []string{
	modulePath + "/internal/testutil",
	modulePath + "/internal/synth",
	modulePath + "/internal/exp",
}

func runSeedFlow(pass *analysis.Pass) {
	if underAny(pass.Path, seedFlowAllow) {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := pkgFunc(pass, call)
			if pkgPath != "math/rand" || name != "NewSource" || len(call.Args) != 1 {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				pass.Reportf(call.Pos(),
					"rand.NewSource with constant seed %s; take the seed from config or Opts.Seed",
					tv.Value)
			}
			return true
		})
	}
}
