package rules

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"mube/internal/analysis"
)

// FloatCmp flags == and != between floating-point operands. Quality scores
// are accumulated float64 sums, so exact equality is replay-hostile: two
// mathematically identical runs can differ in the last ulp. Comparisons
// must go through testutil.AlmostEqual (tests) or an explicit epsilon.
//
// One shape stays legal: comparison against the exact constant zero. The
// zero value is µBE's pervasive "unset/absent" sentinel (weights, ranges,
// characteristics), assigned — not computed — so equality is well-defined.
var FloatCmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= between float operands (exact-zero sentinel tests " +
		"excepted); compare through testutil.AlmostEqual or an epsilon",
	Run: runFloatCmp,
}

func runFloatCmp(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, bin.X) || !isFloat(pass, bin.Y) {
				return true
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"float equality (%s) is not replay-safe; use testutil.AlmostEqual or an explicit epsilon",
				bin.Op)
			return true
		})
	}
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return f == 0
}
