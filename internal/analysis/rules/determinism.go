package rules

import (
	"go/ast"

	"mube/internal/analysis"
)

// Determinism forbids process-global randomness and wall-clock reads in the
// packages whose outputs the paper's experiments replay: every solver, the
// quality evaluation stack, matching, signatures, and the session layer.
// Randomness must flow through an injected *rand.Rand (constructed with
// rand.New) and time through an injectable clock value; test files and the
// experiment/bench harnesses that own their own timing are exempt.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid global math/rand functions and time.Now/time.Since/" +
		"time.Sleep/time.After in the deterministic core (internal/opt, qef, " +
		"match, pcsa, session, fault, probe, watch); randomness and time must " +
		"be injected",
	Run: runDeterminism,
}

// determinismScope is the deterministic core. Prefixes cover subpackages.
var determinismScope = []string{
	modulePath + "/internal/opt",
	modulePath + "/internal/qef",
	modulePath + "/internal/match",
	modulePath + "/internal/pcsa",
	modulePath + "/internal/session",
	modulePath + "/internal/fault",
	modulePath + "/internal/probe",
	modulePath + "/internal/watch",
}

// determinismAllow exempts harnesses inside the scope that legitimately own
// wall-clock timing or fixture randomness: the experiment tables time real
// runs, the bench command measures, and opttest builds shared test fixtures.
var determinismAllow = []string{
	modulePath + "/internal/opt/opttest",
	modulePath + "/internal/exp",
	modulePath + "/cmd/mube-bench",
}

// globalRandFuncs are the math/rand (and v2) top-level functions that read
// the package-global source. Constructors (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) are the approved injection path and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runDeterminism(pass *analysis.Pass) {
	if !underAny(pass.Path, determinismScope) || underAny(pass.Path, determinismAllow) {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := pkgFunc(pass, call)
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[name] {
					pass.Reportf(call.Pos(),
						"call to global %s.%s; draw from an injected *rand.Rand instead",
						shortPkg(pkgPath), name)
				}
			case "time":
				switch name {
				case "Now", "Since":
					pass.Reportf(call.Pos(),
						"call to time.%s in the deterministic core; inject a clock (e.g. session.Clock)",
						name)
				case "Sleep", "After", "Tick", "NewTimer", "NewTicker":
					// Backoff and deadline logic must flow through the
					// injected fault.Clock so retry schedules are virtual and
					// reproducible, and tests complete instantly.
					pass.Reportf(call.Pos(),
						"call to time.%s in the deterministic core; sleep through an injected fault.Clock",
						name)
				}
			}
			return true
		})
	}
}

func shortPkg(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
