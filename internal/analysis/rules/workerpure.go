package rules

import (
	"go/ast"
	"go/types"

	"mube/internal/analysis"
	"mube/internal/analysis/cfg"
)

// WorkerPure proves the determinism contract of the evaluator's fan-out:
// every goroutine spawned with a function literal in the deterministic core
// (internal/opt and its solver subpackages, internal/pcsa, internal/qef) is a
// batch worker, and workers must be pure. Planning — memo lookups, budget
// accounting, trace emission — happens sequentially on the solve goroutine;
// workers may only compute. Concretely, the closure and every in-package
// function statically reachable from it must not
//
//   - write a captured variable, map, or field (the one sanctioned shape is
//     writing disjoint slots of a captured slice, jobs[i].v = ...),
//   - perform channel operations or take locks (sync is reduced to
//     WaitGroup.Done and Pool.Get/Put inside a worker),
//   - emit ordered telemetry (Recorder.Emit/Gauge); only the commutative
//     counter set Add/Observe is safe off the solve goroutine.
//
// Soundness limits: calls through interfaces or function values are not
// followed (the summary records them as dynamic sites), and calls into other
// packages are trusted except for the sync and telemetry policies above.
var WorkerPure = &analysis.Analyzer{
	Name: "workerpure",
	Doc: "goroutine closures in the deterministic core (internal/opt, pcsa, qef) " +
		"and the functions they reach must be pure: no captured-state writes, " +
		"no channel or lock operations, no ordered telemetry (Emit/Gauge)",
	Run: runWorkerPure,
}

// workerPureScope is the deterministic core: the packages whose goroutines
// are, by contract, evaluation workers.
var workerPureScope = []string{
	modulePath + "/internal/opt",
	modulePath + "/internal/pcsa",
	modulePath + "/internal/qef",
}

// workerSyncAllow is the worker-legal subset of package sync, keyed by
// receiver type and method name.
var workerSyncAllow = map[string]bool{
	"WaitGroup.Done": true,
	"Pool.Get":       true,
	"Pool.Put":       true,
}

// workerRecorderAllow is the worker-legal subset of telemetry.Recorder:
// commutative counters whose final value is independent of worker
// interleaving. Emit and Gauge are ordered streams and belong to the solve
// goroutine.
var workerRecorderAllow = map[string]bool{
	"Add":     true,
	"Observe": true,
}

func runWorkerPure(pass *analysis.Pass) {
	if !underAny(pass.Path, workerPureScope) {
		return
	}
	sums := cfg.Summarize(pass.Files, pass.TypesInfo)
	checked := map[*types.Func]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, _ := pass.TypesInfo.TypeOf(lit).(*types.Signature)
			sum := cfg.SummarizeBody(pass.TypesInfo, sig, lit.Body)
			checkWorkerSummary(pass, sum, "worker closure")
			// Follow static call edges into this package's functions; each
			// is checked once even when reachable from several pools.
			var roots []*types.Func
			for _, c := range sum.Calls {
				if sums.Of(c.Fn) != nil {
					roots = append(roots, c.Fn)
				}
			}
			for _, fn := range sums.Reachable(roots) {
				if checked[fn] {
					continue
				}
				checked[fn] = true
				checkWorkerSummary(pass, sums.Of(fn), "worker-reachable function "+fn.Name())
			}
			return true
		})
	}
}

// checkWorkerSummary reports every impurity in one summarized body. where
// names the body in messages ("worker closure" or the reachable function).
func checkWorkerSummary(pass *analysis.Pass, sum *cfg.Summary, where string) {
	for _, w := range sum.Writes {
		switch {
		case w.Root == cfg.RootLocal || w.Root == cfg.RootParam:
			// Locals and arguments are per-invocation; fine.
		case w.Root == cfg.RootCaptured && w.Indexed && !w.Map:
			// The sanctioned result-slot pattern: each worker writes distinct
			// indexes of a shared slice (jobs[i].v = ...).
		case w.Map:
			pass.Reportf(w.Pos, "%s writes a shared map (root: %s); map writes race — plan sequentially on the solve goroutine", where, w.Root)
		default:
			pass.Reportf(w.Pos, "%s writes shared state (root: %s); workers must be pure — only disjoint slice slots may be written", where, w.Root)
		}
	}
	for _, pos := range sum.ChanOps {
		pass.Reportf(pos, "%s performs a channel operation; workers coordinate only through the job cursor and WaitGroup", where)
	}
	for _, c := range sum.Calls {
		if why := workerCallBanned(c.Fn); why != "" {
			pass.Reportf(c.Pos, "%s calls %s; %s", where, c.Fn.Name(), why)
		}
	}
}

// workerCallBanned applies the cross-package call policy: sync is reduced to
// the worker-legal trio, sync/atomic is free, telemetry is reduced to the
// commutative counters. Everything else (stdlib, other module packages) is
// trusted — a documented soundness limit.
func workerCallBanned(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "sync":
		if !workerSyncAllow[recvTypeName(fn)+"."+fn.Name()] {
			return "inside a worker, sync is limited to WaitGroup.Done and Pool.Get/Put; locks serialize the fan-out and hide ordering bugs"
		}
	case modulePath + "/internal/telemetry":
		if recvTypeName(fn) == "Recorder" && !workerRecorderAllow[fn.Name()] {
			return "only the commutative Recorder counters (Add, Observe) may run on workers; Emit/Gauge are ordered and belong to the solve goroutine"
		}
	}
	return ""
}

// recvTypeName returns the name of fn's receiver type ("WaitGroup" for
// (*sync.WaitGroup).Done), or "" for a plain function.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
