package rules_test

import (
	"path/filepath"
	"testing"

	"mube/internal/analysis"
	"mube/internal/analysis/analysistest"
	"mube/internal/analysis/rules"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}

func TestDeterminismRestricted(t *testing.T) {
	analysistest.Run(t, fixture("determinism", "core"), "mube/internal/opt/fixture", rules.Determinism)
}

func TestDeterminismPCSA(t *testing.T) {
	// The sketch layer (counting unions, fused estimate kernels) is in scope:
	// ambient randomness or clock reads there would break the bit-identity
	// contract of the incremental evaluation paths.
	analysistest.Run(t, fixture("determinism", "pcsa"), "mube/internal/pcsa/fixture", rules.Determinism)
}

func TestDeterminismAllowlisted(t *testing.T) {
	// Same subtree as the restricted case, but on the explicit allowlist.
	analysistest.Run(t, fixture("determinism", "allowed"), "mube/internal/opt/opttest", rules.Determinism)
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The exp harness owns its timing; the restricted fixture produces no
	// diagnostics when loaded under an out-of-scope path. Reusing the
	// "allowed" fixture keeps the want-comment sets consistent.
	analysistest.Run(t, fixture("determinism", "allowed"), "mube/internal/exp", rules.Determinism)
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, fixture("floatcmp"), "mube/internal/fixture/floatcmp", rules.FloatCmp)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, fixture("errdrop"), "mube/internal/fixture/errdrop", rules.ErrDrop)
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, fixture("seedflow"), "mube/internal/fixture/seedflow", rules.SeedFlow)
}

func TestSeedFlowAllowlisted(t *testing.T) {
	analysistest.Run(t, fixture("seedflow", "allowed"), "mube/internal/synth/fixture", rules.SeedFlow)
}

func TestTelemetryRestricted(t *testing.T) {
	analysistest.Run(t, fixture("telemetry", "core"), "mube/internal/qef/fixture", rules.Telemetry)
}

func TestTelemetryAllowlisted(t *testing.T) {
	analysistest.Run(t, fixture("telemetry", "allowed"), "mube/internal/testutil", rules.Telemetry)
}

func TestTelemetryOutOfScope(t *testing.T) {
	// cmd/ binaries own stdout; the allowed fixture produces no diagnostics
	// when loaded under a cmd path.
	analysistest.Run(t, fixture("telemetry", "allowed"), "mube/cmd/mube", rules.Telemetry)
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range rules.All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(rules.All) < 5 {
		t.Errorf("registry has %d analyzers, want at least 5", len(rules.All))
	}
	var _ []*analysis.Analyzer = rules.All
}
