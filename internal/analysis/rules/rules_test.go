package rules_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mube/internal/analysis"
	"mube/internal/analysis/analysistest"
	"mube/internal/analysis/rules"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}

var wantComment = regexp.MustCompile(`//\s*want\s+"(?:[^"\\]|\\.)*"`)

// fixtureNoWants copies a fixture with its want comments stripped, so a
// violating fixture can double as an out-of-scope case that must be silent.
// The copy lives under testdata (not t.TempDir) because fixture loading
// resolves imports relative to the fixture directory, which must stay inside
// the module.
func fixtureNoWants(t *testing.T, elem ...string) string {
	t.Helper()
	src := fixture(elem...)
	dst, err := os.MkdirTemp("testdata", "nowants")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.RemoveAll(dst) })
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data = wantComment.ReplaceAll(data, []byte{})
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestDeterminismRestricted(t *testing.T) {
	analysistest.Run(t, fixture("determinism", "core"), "mube/internal/opt/fixture", rules.Determinism)
}

func TestDeterminismPCSA(t *testing.T) {
	// The sketch layer (counting unions, fused estimate kernels) is in scope:
	// ambient randomness or clock reads there would break the bit-identity
	// contract of the incremental evaluation paths.
	analysistest.Run(t, fixture("determinism", "pcsa"), "mube/internal/pcsa/fixture", rules.Determinism)
}

func TestDeterminismAllowlisted(t *testing.T) {
	// Same subtree as the restricted case, but on the explicit allowlist.
	analysistest.Run(t, fixture("determinism", "allowed"), "mube/internal/opt/opttest", rules.Determinism)
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The exp harness owns its timing; the restricted fixture produces no
	// diagnostics when loaded under an out-of-scope path. Reusing the
	// "allowed" fixture keeps the want-comment sets consistent.
	analysistest.Run(t, fixture("determinism", "allowed"), "mube/internal/exp", rules.Determinism)
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, fixture("floatcmp"), "mube/internal/fixture/floatcmp", rules.FloatCmp)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, fixture("errdrop"), "mube/internal/fixture/errdrop", rules.ErrDrop)
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, fixture("seedflow"), "mube/internal/fixture/seedflow", rules.SeedFlow)
}

func TestSeedFlowAllowlisted(t *testing.T) {
	analysistest.Run(t, fixture("seedflow", "allowed"), "mube/internal/synth/fixture", rules.SeedFlow)
}

func TestTelemetryRestricted(t *testing.T) {
	analysistest.Run(t, fixture("telemetry", "core"), "mube/internal/qef/fixture", rules.Telemetry)
}

func TestTelemetryAllowlisted(t *testing.T) {
	analysistest.Run(t, fixture("telemetry", "allowed"), "mube/internal/testutil", rules.Telemetry)
}

func TestTelemetryOutOfScope(t *testing.T) {
	// cmd/ binaries own stdout; the allowed fixture produces no diagnostics
	// when loaded under a cmd path.
	analysistest.Run(t, fixture("telemetry", "allowed"), "mube/cmd/mube", rules.Telemetry)
}

func TestWorkerPure(t *testing.T) {
	analysistest.Run(t, fixture("workerpure"), "mube/internal/opt/fixture", rules.WorkerPure)
}

func TestWorkerPureOutOfScope(t *testing.T) {
	// Outside the deterministic core, goroutine closures are not workers:
	// the violating fixture produces no diagnostics under internal/session.
	analysistest.Run(t, fixtureNoWants(t, "workerpure"), "mube/internal/session", rules.WorkerPure)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow", "core"), "mube/internal/opt/fixture", rules.CtxFlow)
}

func TestCtxFlowAllowlisted(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow", "allowed"), "mube/internal/exp", rules.CtxFlow)
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, fixture("atomicmix"), "mube/internal/fixture/atomicmix", rules.AtomicMix)
}

func TestLeakJoin(t *testing.T) {
	analysistest.Run(t, fixture("leakjoin"), "mube/internal/fixture/leakjoin", rules.LeakJoin)
}

func TestLeakJoinOutOfScope(t *testing.T) {
	// cmd/ may fire-and-forget (debug servers); the violating fixture is
	// silent under a cmd path.
	analysistest.Run(t, fixtureNoWants(t, "leakjoin"), "mube/cmd/mube-bench", rules.LeakJoin)
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, fixture("spanend"), "mube/internal/fixture/spanend", rules.SpanEnd)
}

func TestSpanEndInCmd(t *testing.T) {
	// Span hygiene applies module-wide — cmd/ binaries write the very traces
	// the goldens pin — so the violating fixture still reports under cmd/.
	analysistest.Run(t, fixture("spanend"), "mube/cmd/mube", rules.SpanEnd)
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range rules.All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(rules.All) < 5 {
		t.Errorf("registry has %d analyzers, want at least 5", len(rules.All))
	}
	var _ []*analysis.Analyzer = rules.All
}
