// Package rules holds µBE's repo-specific analyzers. Each analyzer encodes
// one invariant the paper's reproducibility story depends on:
//
//   - determinism: the optimization stack must draw randomness from an
//     injected *rand.Rand and time from an injectable clock, never from
//     process-global state (§7 experiment tables must replay bit-for-bit).
//   - floatcmp: quality scores Q(S) are float64; == / != on floats is how
//     replays silently diverge, so comparisons go through an epsilon helper.
//   - errdrop: a call whose error result vanishes in an expression
//     statement is a silent failure path.
//   - seedflow: literal seeds outside test scaffolding pin experiments to
//     hidden constants; seeds must come from config or Opts.Seed.
//   - telemetry: internal packages must report through the telemetry facade,
//     never fmt.Print*/log.*, and the expvar/pprof debug surface must stay
//     behind telemetry.Serve.
//   - spanend: a telemetry span begun must End on every path, or the
//     recorder's span stack leaks and traces misparent.
package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"mube/internal/analysis"
)

// All is the registry the mube-vet driver runs, in reporting order.
var All = []*analysis.Analyzer{
	AtomicMix,
	CtxFlow,
	Determinism,
	ErrDrop,
	FloatCmp,
	LeakJoin,
	SeedFlow,
	SpanEnd,
	Telemetry,
	WorkerPure,
}

// modulePath is the import-path root policy scoping keys off.
const modulePath = "mube"

// underAny reports whether path is one of the prefixes or nested below one.
func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// pkgFunc resolves a call of the form pkg.F where pkg names an imported
// package, returning the package path and function name, or "" if the
// callee is anything else (method call, local function, conversion).
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
