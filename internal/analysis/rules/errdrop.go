package rules

import (
	"go/ast"
	"go/types"

	"mube/internal/analysis"
)

// ErrDrop flags expression statements that call a function returning an
// error and let the result fall on the floor. Discarding must be explicit
// (`_ = f()`), handled, or the call must be on the exemption list of
// can't-realistically-fail writers (fmt printing, in-memory builders).
var ErrDrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag statement-position calls whose error result is silently " +
		"discarded; drop errors explicitly with _ = or handle them",
	Run: runErrDrop,
}

// errDropExemptFuncs are package-level functions whose error results are
// conventionally ignored: terminal printing can only fail when the process
// has bigger problems.
var errDropExemptFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// errDropExemptRecvs are receiver types whose Write*/flush-style methods
// are documented to always return a nil error.
var errDropExemptRecvs = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
}

func runErrDrop(pass *analysis.Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || exemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s returns an error that is silently discarded; handle it or assign to _",
				calleeName(pass, call))
			return true
		})
	}
}

// returnsError reports whether the call yields an error as its only or last
// result.
func returnsError(pass *analysis.Pass, call *ast.CallExpr, errType types.Type) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
	default:
		return types.Identical(t, errType)
	}
}

// calleeFunc resolves the called *types.Func, or nil for indirect calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func exemptCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return errDropExemptRecvs[recv.Type().String()]
	}
	if fn.Pkg() == nil {
		return false
	}
	return errDropExemptFuncs[fn.Pkg().Path()+"."+fn.Name()]
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Name() != pass.Pkg.Name() {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
