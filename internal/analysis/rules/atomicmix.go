package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mube/internal/analysis"
)

// AtomicMix catches the mixed-access class of race: a variable or field
// updated through the function-style sync/atomic API (atomic.AddUint64(&x, 1))
// in one place and read or written plainly in another. Plain accesses next to
// atomic ones are racy even when each side "only reads" — the race detector
// flags them and the memory model gives them no ordering. The typed atomics
// (atomic.Int64, atomic.Pointer) make this mistake unrepresentable, which is
// why the repo's aggregates use them; this analyzer fences the remaining
// function-style API.
//
// The check is per package: an object is "atomic" if any non-test file in
// the package passes its address to a sync/atomic function; every plain
// mention of that object elsewhere in the package is then reported. Accesses
// from other packages (exported fields) are out of scope.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a variable accessed through sync/atomic functions must never be read " +
		"or written plainly; use the atomic API consistently or a typed atomic",
	Run: runAtomicMix,
}

func runAtomicMix(pass *analysis.Pass) {
	// Pass 1: objects whose address reaches a sync/atomic call, and the
	// mention sites inside those calls (legal by definition).
	atomicObjs := map[types.Object]token.Position{}
	inAtomicCall := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, _ := pkgFunc(pass, call)
			if pkgPath != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj, id := addressedObj(pass, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = pass.Fset.Position(call.Pos())
				}
				inAtomicCall[id] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	// Pass 2: every other mention of those objects is a mixed access.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || inAtomicCall[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if first, ok := atomicObjs[obj]; ok {
				pass.Reportf(id.Pos(),
					"plain access to %s, which is accessed via sync/atomic (first at %s:%d); mixed access races — use the atomic API or a typed atomic",
					obj.Name(), relBase(first.Filename), first.Line)
			}
			return true
		})
	}
}

// addressedObj resolves &expr's operand to the object being made atomic —
// the field of a selector chain (&c.n) or a bare variable (&x) — plus the
// ident that names it.
func addressedObj(pass *analysis.Pass, expr ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e], e
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel], e.Sel
	case *ast.IndexExpr:
		// &xs[i]: the element has no object identity; skip.
		return nil, nil
	}
	return nil, nil
}

// relBase trims a position's path to its final element so messages stay
// stable across checkouts.
func relBase(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}
