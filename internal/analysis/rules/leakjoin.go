package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"mube/internal/analysis"
	"mube/internal/analysis/cfg"
)

// LeakJoin requires every goroutine spawned in library code to have a join:
// on every path from the go statement to the function's exit, the spawner
// must pass a WaitGroup.Wait or a channel receive before returning. A
// goroutine with no join outlives its spawner, holds references past
// cancellation, and — in this repo — can write telemetry or solver state
// after the solve returned, which is exactly the bug class the faults suite
// chases dynamically.
//
// For `go func() {...}()` the join is object-matched: if the closure calls
// Done on a captured WaitGroup, the join is Wait on that same WaitGroup; if
// it sends on or closes a captured channel, the join is a receive (or range)
// on that channel. For `go f(...)` the callee's body is not consulted and
// any Wait or channel receive on the exit paths counts. Joins in deferred
// statements count on every path. The check is per spawning function
// (intraprocedural): handing the WaitGroup to a caller to Wait on is not
// followed and needs an ignore directive.
//
// Scope: internal/ non-test code. cmd/ may run fire-and-forget helpers
// (debug servers); tests join through the testing package's own machinery.
var LeakJoin = &analysis.Analyzer{
	Name: "leakjoin",
	Doc: "every go statement in internal/ must reach a join (WaitGroup.Wait or " +
		"channel receive) on all paths from spawn to return",
	Run: runLeakJoin,
}

var leakJoinScope = []string{
	modulePath + "/internal",
}

func runLeakJoin(pass *analysis.Pass) {
	if !underAny(pass.Path, leakJoinScope) {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLeaks(pass, fd.Body)
			// Function literals spawn too (outside go statements); each
			// literal body is its own graph.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFuncLeaks(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// checkFuncLeaks builds body's CFG and verifies every go statement in it
// reaches a join.
func checkFuncLeaks(pass *analysis.Pass, body *ast.BlockStmt) {
	var spawns []*ast.GoStmt
	cfg.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	g := cfg.New(body)
	for _, spawn := range spawns {
		checkSpawnJoin(pass, g, spawn)
	}
}

func checkSpawnJoin(pass *analysis.Pass, g *cfg.Graph, spawn *ast.GoStmt) {
	wgObjs, chObjs := joinObjects(pass, spawn)
	hit := func(n ast.Node, blk *cfg.Block) bool {
		return isJoinNode(pass, n, blk, wgObjs, chObjs)
	}
	// A join in a deferred statement runs on every path to exit.
	for _, def := range g.Defers {
		if hit(def.Call, nil) {
			return
		}
	}
	blk := g.BlockOf(spawn)
	if blk == nil {
		return // statement not directly in a block; conservative skip
	}
	// The tail of the spawning block, after the go statement itself.
	start := -1
	for i, n := range blk.Nodes {
		if n == spawn {
			start = i
		}
	}
	for i := start + 1; i < len(blk.Nodes); i++ {
		if nodeHasJoin(pass, blk.Nodes[i], blk, wgObjs, chObjs) {
			return
		}
	}
	ok := g.EveryPathHits(blk, func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if nodeHasJoin(pass, n, b, wgObjs, chObjs) {
				return true
			}
		}
		return false
	})
	if !ok {
		pass.Reportf(spawn.Pos(),
			"goroutine has no join on some path to return (need WaitGroup.Wait or a channel receive); it may outlive the spawning function")
	}
}

// joinObjects inspects the spawned function literal (if any) for the objects
// its join must match: WaitGroups it calls Done on, channels it sends on or
// closes. Empty maps mean the spawn is a named call — any join counts.
func joinObjects(pass *analysis.Pass, spawn *ast.GoStmt) (wgObjs, chObjs map[types.Object]bool) {
	wgObjs = map[types.Object]bool{}
	chObjs = map[types.Object]bool{}
	lit, ok := ast.Unparen(spawn.Call.Fun).(*ast.FuncLit)
	if !ok {
		return wgObjs, chObjs
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn := methodOf(pass, sel); fn != nil && recvTypeName(fn) == "WaitGroup" &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					if obj := rootObj(pass, sel.X); obj != nil {
						wgObjs[obj] = true
					}
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					if obj := rootObj(pass, n.Args[0]); obj != nil {
						chObjs[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			if obj := rootObj(pass, n.Chan); obj != nil {
				chObjs[obj] = true
			}
		}
		return true
	})
	return wgObjs, chObjs
}

// nodeHasJoin scans one block node (never descending into nested function
// literals) for a join matching the spawn's objects.
func nodeHasJoin(pass *analysis.Pass, n ast.Node, blk *cfg.Block, wgObjs, chObjs map[types.Object]bool) bool {
	found := false
	cfg.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if isJoinNode(pass, m, blk, wgObjs, chObjs) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isJoinNode reports whether m is a join: a matching WaitGroup.Wait call or
// a matching channel receive. blk (when non-nil) supplies range-loop
// context: a channel expression heading a range block is a receive.
func isJoinNode(pass *analysis.Pass, m ast.Node, blk *cfg.Block, wgObjs, chObjs map[types.Object]bool) bool {
	anyJoin := len(wgObjs) == 0 && len(chObjs) == 0
	switch m := m.(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return false
		}
		fn := methodOf(pass, sel)
		if fn == nil || recvTypeName(fn) != "WaitGroup" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return false
		}
		if anyJoin {
			return true
		}
		obj := rootObj(pass, sel.X)
		return obj != nil && wgObjs[obj]
	case *ast.UnaryExpr:
		if m.Op != token.ARROW {
			return false
		}
		if anyJoin {
			return true
		}
		obj := rootObj(pass, m.X)
		return obj != nil && chObjs[obj]
	case ast.Expr:
		// A channel expression heading a range block is a per-element
		// receive of the whole stream.
		if blk == nil || blk.Kind != "range.head" {
			return false
		}
		t := pass.TypesInfo.TypeOf(m)
		if t == nil {
			return false
		}
		if _, ok := t.Underlying().(*types.Chan); !ok {
			return false
		}
		if anyJoin {
			return true
		}
		obj := rootObj(pass, m)
		return obj != nil && chObjs[obj]
	}
	return false
}

// rootObj resolves an expression to the object anchoring it: the variable
// for an identifier, the field for a selector chain (w.wg -> field wg).
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.UnaryExpr:
		return rootObj(pass, e.X)
	case *ast.StarExpr:
		return rootObj(pass, e.X)
	}
	return nil
}
