package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the -json wire form. Field order is fixed by the struct
// (encoding/json emits fields in declaration order), paths are relative to
// the module dir, and the array is pre-sorted — together that makes the
// output byte-identical across runs, machines, and -parallel settings, so CI
// can diff it.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// WriteJSON renders sorted diagnostics as an indented JSON array (always an
// array, "[]" when clean) with file paths relative to dir.
func WriteJSON(w io.Writer, dir string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(dir, d.Position.Filename),
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// relPath makes path relative to dir when possible, with forward slashes so
// output is stable across platforms.
func relPath(dir, path string) string {
	if dir != "" {
		if abs, err := filepath.Abs(dir); err == nil {
			if rel, err := filepath.Rel(abs, path); err == nil && !filepath.IsAbs(rel) &&
				rel != ".." && !hasDotDotPrefix(rel) {
				path = rel
			}
		}
	}
	return filepath.ToSlash(path)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
