// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against // want "regexp" comments in the fixture source —
// the same golden-comment convention as x/tools' analysistest, rebuilt on
// the repo's own framework.
//
// A fixture is a directory of .go files (conventionally under
// testdata/src/<name>). Files named *_test.go are parsed as part of the
// fixture so analyzers' test-file allowlists can be exercised. Every line
// that should be flagged carries a trailing comment:
//
//	rand.Intn(6) // want "global rand"
//
// The string is a regexp matched against the diagnostic message. Lines
// without a want comment must produce no diagnostic, and every want must be
// matched exactly once.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"testing"

	"mube/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture in dir under importPath, applies the analyzer, and
// reports any mismatch between diagnostics and want comments as test
// failures.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := collectWants(t, pkg.Fset, pkg.Files)
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})

	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func matchWant(wants []*want, d analysis.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line &&
			w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}
