// Package loading. The loader shells out to the go command — the one
// toolchain dependency every Go repo already has — to enumerate packages and
// produce export data for their dependencies, then parses and type-checks
// the target packages from source with go/parser and go/types. This is the
// same division of labor as `go vet`'s unitchecker, rebuilt on the stdlib.
package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked target package.
type Package struct {
	// ImportPath is the raw path as the go command reports it, e.g.
	// "mube/internal/qef [mube/internal/qef.test]" for a test variant.
	ImportPath string
	// Path is the logical path used for policy scoping (the package under
	// test for test variants).
	Path string
	Dir  string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Module     *struct{ Path, Dir string }
}

// Load enumerates the packages matched by patterns in the module rooted at
// (or containing) dir, including their test variants, and returns each one
// parsed and type-checked. Any go-list or type-check failure aborts the
// load: mube-vet treats a module it cannot fully check as a hard error, not
// as a package to skip.
func Load(dir string, patterns ...string) ([]*Package, error) {
	byPath, order, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	// In-package test variants ("p [p.test]") contain the library files
	// plus the _test.go files; where one exists the bare package is
	// redundant and analyzing both would double-report every lib file.
	augmented := map[string]bool{}
	for _, lp := range order {
		if lp.ForTest != "" && strings.HasPrefix(lp.ImportPath, lp.ForTest+" [") {
			augmented[lp.ForTest] = true
		}
	}
	var pkgs []*Package
	for _, lp := range order {
		if !isTarget(lp) || (lp.ForTest == "" && augmented[lp.ImportPath]) {
			continue
		}
		pkg, err := typecheck(lp, byPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` (plus -test when test variants
// are wanted) and decodes the stream.
func goList(dir string, patterns []string, test bool) (map[string]*listPkg, []*listPkg, error) {
	args := []string{"list", "-deps", "-export", "-json"}
	if test {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	byPath := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}
	return byPath, order, nil
}

// isTarget reports whether lp should be analyzed (rather than consumed as a
// dependency). Targets are the matched module packages and their test
// variants; the synthesized ".test" main and any package superseded by its
// in-package test variant are skipped so each file is analyzed once.
func isTarget(lp *listPkg) bool {
	if lp.Standard || lp.Module == nil {
		return false
	}
	if strings.HasSuffix(lp.ImportPath, ".test") {
		return false
	}
	if lp.ForTest != "" {
		// "p [p.test]" and "p_test [p.test]" count as targets exactly
		// when p itself was matched; go list marks the variants DepOnly
		// or not inconsistently across versions, so key off ForTest.
		// Dependency recompilations ("q [p.test]": q imported by p's
		// tests while importing p) also carry ForTest=p but contain no
		// test files of p — q's own files are already analyzed as plain
		// q, so the variant is consumed as a dependency only.
		base := lp.ImportPath
		if i := strings.Index(base, " ["); i >= 0 {
			base = base[:i]
		}
		return base == lp.ForTest || base == lp.ForTest+"_test"
	}
	return !lp.DepOnly
}

// typecheck parses lp's files and type-checks them, resolving imports
// through the export data the go list pass already produced.
func typecheck(lp *listPkg, byPath map[string]*listPkg) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	typesPath := lp.ImportPath
	if i := strings.Index(typesPath, " ["); i >= 0 {
		typesPath = typesPath[:i]
	}
	// Policy scoping maps the external test package "p_test" back onto p;
	// every other package — including a dependency recompiled against a test
	// variant ("q [p.test]") — keeps its own path, so q's per-package
	// allowlists still apply when q is rebuilt for p's tests.
	logical := typesPath
	if lp.ForTest != "" && typesPath == lp.ForTest+"_test" {
		logical = lp.ForTest
	}
	info := newTypesInfo()
	conf := types.Config{Importer: newExportImporter(fset, lp.ImportMap, byPath)}
	tpkg, err := conf.Check(typesPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Path:       logical,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// exportImporter resolves imports for one target package: the path is first
// rewritten through the target's ImportMap (so a test variant sees the
// test-augmented build of the package under test), then handed to the
// toolchain's gc importer reading the export file go list reported.
type exportImporter struct {
	importMap map[string]string
	byPath    map[string]*listPkg
	gc        types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, importMap map[string]string, byPath map[string]*listPkg) *exportImporter {
	e := &exportImporter{importMap: importMap, byPath: byPath}
	e.gc = importer.ForCompiler(fset, "gc", e.lookup).(types.ImporterFrom)
	return e
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	lp := e.byPath[path]
	if lp == nil {
		return nil, fmt.Errorf("import %q: not in go list output", path)
	}
	if lp.Export == "" {
		return nil, fmt.Errorf("import %q: go list produced no export data", path)
	}
	return os.Open(lp.Export)
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, dir, mode)
}

// LoadDir parses every .go file in dir as a single package and type-checks
// it under the given import path, resolving its imports (stdlib only)
// through fresh export data. It exists for analyzer golden tests, whose
// fixture packages live under testdata/ where the go command will not list
// them — the importPath override lets a fixture impersonate any module path
// a path-scoped rule cares about.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	byPath := map[string]*listPkg{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		byPath, _, err = goList(dir, paths, false)
		if err != nil {
			return nil, err
		}
	}
	info := newTypesInfo()
	conf := types.Config{Importer: newExportImporter(fset, nil, byPath)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Path:       importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
