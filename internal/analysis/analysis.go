// Package analysis is a small, stdlib-only static-analysis framework for the
// µBE repository. It deliberately avoids golang.org/x/tools: packages are
// loaded through `go list -export`, type-checked with go/types against the
// toolchain's export data, and walked with go/ast.
//
// The framework exists to enforce repo-specific invariants that ordinary
// `go vet` cannot express — determinism of the optimization stack, float
// comparison hygiene, and error discipline (see package rules). Analyzers
// are pure functions over a type-checked package; the cmd/mube-vet driver
// wires them to the module and to CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects the package behind the Pass
// and reports diagnostics through it; it must not retain the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a lowercase identifier.
	Name string
	// Doc is a one-paragraph description shown by `mube-vet -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// A Pass connects one analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg is the type-checked package; TypesInfo holds its resolved
	// expression types, uses, and definitions.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the logical import path used for policy scoping. For test
	// variants ("p [p.test]", "p_test [p.test]") it is the path of the
	// package under test, so path-scoped rules treat test code as part of
	// the package it exercises.
	Path string

	ignores ignoreSet
	out     *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ignore directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(position, p.Analyzer.Name) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Position: position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreDirective matches suppression comments of the form
//
//	//mube:vet-ignore analyzer1,analyzer2 — optional reason
//	//mube:vet-ignore — optional reason (suppresses every analyzer)
//
// A directive silences diagnostics on its own line and, so that it can sit
// on a line of its own above the offending statement, on the line below.
var ignoreDirective = regexp.MustCompile(`^//\s*mube:vet-ignore(?:\s+([a-z0-9_,]+))?`)

type ignoreKey struct {
	file string
	line int
	name string // analyzer name, or "*" for all
}

type ignoreSet map[ignoreKey]bool

func (s ignoreSet) suppressed(pos token.Position, analyzer string) bool {
	return s[ignoreKey{pos.Filename, pos.Line, analyzer}] ||
		s[ignoreKey{pos.Filename, pos.Line, "*"}]
}

// collectIgnores scans file comments for vet-ignore directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	s := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := []string{"*"}
				if m[1] != "" {
					names = strings.Split(m[1], ",")
				}
				pos := fset.Position(c.Pos())
				for _, name := range names {
					s[ignoreKey{pos.Filename, pos.Line, name}] = true
					s[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return s
}

// Run applies every analyzer to every package and returns the merged
// diagnostics sorted by position, with exact duplicates (a file reached
// through overlapping package variants) removed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, runPackage(pkg, analyzers)...)
	}
	return sortDiagnostics(out)
}

// runPackage applies the analyzers to one package and returns its raw
// diagnostics, unsorted. This is the cacheable unit of work: a package's
// diagnostics depend only on its sources, its dependencies' export data, and
// the analyzer set.
func runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Path:      pkg.Path,
			ignores:   ignores,
			out:       &out,
		}
		a.Run(pass)
	}
	return out
}

// sortDiagnostics orders diagnostics by (file, line, column, analyzer,
// message) and removes exact duplicates (a file reached through overlapping
// package variants). The total order is what makes mube-vet's output — text
// or JSON — byte-identical regardless of package schedule or parallelism.
func sortDiagnostics(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}
