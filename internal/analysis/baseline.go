// Baseline mode: a recorded multiset of pre-existing findings, so a new
// analyzer can land strict — failing on regressions — without forcing a
// same-day cleanup of historical debt. Entries are keyed by (analyzer, file,
// message) with a count, deliberately omitting line numbers: unrelated edits
// move findings around a file without churning the baseline, while a new
// instance of a suppressed finding in the same file only passes until the
// old one is fixed (counts are consumed, not wildcarded).
package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A BaselineEntry suppresses Count diagnostics matching (Analyzer, File,
// Message). File is module-relative with forward slashes, as in -json
// output.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// ReadBaseline loads a baseline file (a JSON array of entries).
func ReadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	return entries, nil
}

// WriteBaseline records diags (with paths made relative to dir) as a
// baseline at path, sorted and indented so the file diffs cleanly.
func WriteBaseline(path, dir string, diags []Diagnostic) error {
	counts := map[BaselineEntry]int{}
	for _, d := range diags {
		k := BaselineEntry{Analyzer: d.Analyzer, File: relPath(dir, d.Position.Filename), Message: d.Message}
		counts[k]++
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for k, n := range counts {
		k.Count = n
		entries = append(entries, k)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FilterBaseline drops diagnostics covered by the baseline, consuming counts
// in sorted diagnostic order, and returns the survivors. Stale entries
// (nothing left to suppress) are harmless.
func FilterBaseline(diags []Diagnostic, entries []BaselineEntry, dir string) []Diagnostic {
	remaining := map[BaselineEntry]int{}
	for _, e := range entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		e.Count = 0
		remaining[e] += n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := BaselineEntry{Analyzer: d.Analyzer, File: relPath(dir, d.Position.Filename), Message: d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
