package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadSrc type-checks in-memory sources (filename -> source) into a Package.
func loadSrc(t *testing.T, path string, sources map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic file order regardless of map iteration
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{ImportPath: path, Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
}

// callFlagger reports name at every call of the function literally named
// "hit", so tests control diagnostic positions precisely.
func callFlagger(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer flagging hit() calls",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "hit" {
							pass.Reportf(call.Pos(), "hit call")
						}
					}
					return true
				})
			}
		},
	}
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package p

func hit() {}

func f() {
	hit()                                // line 6: no directive, reported
	hit() //mube:vet-ignore alpha        // line 7: same-line, alpha only
	//mube:vet-ignore alpha — reason
	hit()                                // line 9: preceding-line, alpha only
	hit() //mube:vet-ignore alpha,beta   // line 10: multi-analyzer list
	hit() //mube:vet-ignore              // line 11: bare star form, everything
	//mube:vet-ignore beta

	hit()                                // line 14: directive two lines up: no effect
}
`
	pkg := loadSrc(t, "mube/internal/fake", map[string]string{"p.go": src})
	diags := Run([]*Package{pkg}, []*Analyzer{callFlagger("alpha"), callFlagger("beta")})

	got := map[string][]int{}
	for _, d := range diags {
		got[d.Analyzer] = append(got[d.Analyzer], d.Position.Line)
	}
	wantAlpha := []int{6, 14}
	wantBeta := []int{6, 7, 9, 14}
	if !equalInts(got["alpha"], wantAlpha) {
		t.Errorf("alpha reported lines %v, want %v", got["alpha"], wantAlpha)
	}
	if !equalInts(got["beta"], wantBeta) {
		t.Errorf("beta reported lines %v, want %v", got["beta"], wantBeta)
	}
}

func TestIgnoreDirectiveInTestFile(t *testing.T) {
	// Directives work identically in a _test.go file of the package — the
	// common case being test helpers that intentionally violate a policy.
	lib := `package p

func hit() {}

func f() {
	hit() // reported: line 6
}
`
	test := `package p

func g() {
	hit() //mube:vet-ignore alpha
	//mube:vet-ignore alpha
	hit()
	hit() // reported: line 7
}
`
	pkg := loadSrc(t, "mube/internal/fake", map[string]string{"p.go": lib, "p_test.go": test})
	diags := Run([]*Package{pkg}, []*Analyzer{callFlagger("alpha")})
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d", filepath.Base(d.Position.Filename), d.Position.Line))
	}
	want := "p.go:6 p_test.go:7"
	if strings.Join(got, " ") != want {
		t.Errorf("reported %v, want %q", got, want)
	}
}

func TestIgnoreDirectiveScopedToFile(t *testing.T) {
	// A directive in one file must not leak to the same line number of
	// another file.
	a := `package p

func hit() {}

func fa() {
	hit() //mube:vet-ignore alpha
}
`
	b := `package p

func fb() {
	_ = 1
	_ = 2
	hit() // same line number as the suppressed call in a.go
}
`
	pkg := loadSrc(t, "mube/internal/fake", map[string]string{"a.go": a, "b.go": b})
	diags := Run([]*Package{pkg}, []*Analyzer{callFlagger("alpha")})
	if len(diags) != 1 || filepath.Base(diags[0].Position.Filename) != "b.go" {
		t.Errorf("want exactly the b.go diagnostic, got %v", diags)
	}
}

func TestCollectIgnoresKeys(t *testing.T) {
	src := `package p

//mube:vet-ignore alpha,beta — shared scaffolding
var x = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	s := collectIgnores(fset, []*ast.File{f})
	for _, tc := range []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "alpha", true},  // directive's own line
		{4, "alpha", true},  // line below
		{4, "beta", true},   // second listed analyzer
		{4, "gamma", false}, // unlisted analyzer
		{5, "alpha", false}, // two lines below
	} {
		got := s.suppressed(token.Position{Filename: "p.go", Line: tc.line}, tc.analyzer)
		if got != tc.want {
			t.Errorf("suppressed(line %d, %s) = %v, want %v", tc.line, tc.analyzer, got, tc.want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
