// Parallel cached driver. Load() type-checks and analyzes packages one at a
// time; CheckPackages fans the per-package work out across workers and
// caches each package's diagnostics keyed by everything that could change
// them: analyzer binary, source bytes, and dependency export data. A warm
// cache turns a whole-tree mube-vet run into a handful of file reads.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Config controls a CheckPackages run.
type Config struct {
	// Dir is the working directory for go list (any directory inside the
	// module).
	Dir string
	// Analyzers is the set to run, in registry order.
	Analyzers []*Analyzer
	// Parallel caps concurrent package analyses; <= 0 means GOMAXPROCS.
	Parallel int
	// Cache, when non-nil, stores per-package diagnostics across runs.
	Cache *Cache
}

// CheckPackages loads the packages matched by patterns (with test variants),
// analyzes them — in parallel, consulting the cache — and returns the merged,
// sorted diagnostics plus the number of packages analyzed. The result is
// byte-for-byte independent of Parallel and of cache hits: ordering comes
// from the final sort, never from completion order.
func CheckPackages(cfg Config, patterns ...string) ([]Diagnostic, int, error) {
	byPath, order, err := goList(cfg.Dir, patterns, true)
	if err != nil {
		return nil, 0, err
	}
	augmented := map[string]bool{}
	for _, lp := range order {
		if lp.ForTest != "" && strings.HasPrefix(lp.ImportPath, lp.ForTest+" [") {
			augmented[lp.ForTest] = true
		}
	}
	var targets []*listPkg
	for _, lp := range order {
		if isTarget(lp) && !(lp.ForTest == "" && augmented[lp.ImportPath]) {
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, 0, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	results := make([][]Diagnostic, len(targets))
	errs := make([]error, len(targets))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, lp := range targets {
		wg.Add(1)
		go func(i int, lp *listPkg) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = checkOne(cfg, lp, byPath)
		}(i, lp)
	}
	wg.Wait()
	var out []Diagnostic
	for i := range targets {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		out = append(out, results[i]...)
	}
	return sortDiagnostics(out), len(targets), nil
}

// checkOne produces one package's diagnostics, through the cache when
// possible.
func checkOne(cfg Config, lp *listPkg, byPath map[string]*listPkg) ([]Diagnostic, error) {
	var key string
	if cfg.Cache != nil {
		var err error
		key, err = cfg.Cache.key(lp, byPath, cfg.Analyzers)
		if err == nil {
			if diags, ok := cfg.Cache.get(key); ok {
				return diags, nil
			}
		} else {
			key = "" // uncacheable (e.g. unreadable input); analyze anyway
		}
	}
	pkg, err := typecheck(lp, byPath)
	if err != nil {
		return nil, err
	}
	diags := runPackage(pkg, cfg.Analyzers)
	if cfg.Cache != nil && key != "" {
		cfg.Cache.put(key, diags)
	}
	return diags, nil
}

// cacheVersion invalidates every entry when the on-disk format or the key
// composition changes.
const cacheVersion = "mube-vet-cache-v1"

// A Cache stores per-package diagnostics under a directory, keyed by a hash
// of the analyzer binary, the analyzer names, the package's source bytes,
// and the export data of every dependency (transitively — export files are
// build-cache artifacts whose hashes already fold in their own deps, but
// walking the import graph keeps the key correct even when the build cache
// reuses a stale file path).
//
// A handle memoizes input-file hashes for its own lifetime, so it assumes
// sources do not change underneath it: open one Cache per run (as the CLI
// does), not one per process pool.
type Cache struct {
	dir     string
	exeHash string

	mu     sync.Mutex
	hashes map[string]string // file path -> content hash
}

// OpenCache opens (creating if needed) the diagnostics cache in dir; an
// empty dir means <user cache dir>/mube-vet.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return nil, fmt.Errorf("resolving user cache dir: %v", err)
		}
		dir = filepath.Join(base, "mube-vet")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, hashes: map[string]string{}}
	// Hash the running analyzer binary: any rebuild (new analyzers, changed
	// policies) must miss. Under `go run` the temp binary's content changes
	// with the source, which is exactly the invalidation wanted.
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("resolving analyzer binary: %v", err)
	}
	c.exeHash, err = c.fileHash(exe)
	if err != nil {
		return nil, fmt.Errorf("hashing analyzer binary: %v", err)
	}
	return c, nil
}

// Dir returns the cache's directory.
func (c *Cache) Dir() string { return c.dir }

// key derives the cache key for one package.
func (c *Cache) key(lp *listPkg, byPath map[string]*listPkg, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheVersion)
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, c.exeHash)
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name)
	}
	fmt.Fprintln(h, lp.ImportPath)
	fmt.Fprintln(h, lp.Dir)
	for _, name := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		fh, err := c.fileHash(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "src %s %s\n", name, fh)
	}
	// Dependency export data, transitively, in sorted path order.
	deps, err := c.depExports(lp, byPath)
	if err != nil {
		return "", err
	}
	for _, d := range deps {
		fmt.Fprintln(h, d)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// depExports walks lp's import graph and returns "dep <path> <hash>" lines
// for every dependency with export data, sorted.
func (c *Cache) depExports(lp *listPkg, byPath map[string]*listPkg) ([]string, error) {
	seen := map[string]bool{}
	var lines []string
	var visit func(lp *listPkg) error
	visit = func(lp *listPkg) error {
		for _, imp := range lp.Imports {
			if mapped, ok := lp.ImportMap[imp]; ok {
				imp = mapped
			}
			if seen[imp] {
				continue
			}
			seen[imp] = true
			dep := byPath[imp]
			if dep == nil {
				continue // "unsafe" and friends
			}
			if dep.Export != "" {
				fh, err := c.fileHash(dep.Export)
				if err != nil {
					return err
				}
				lines = append(lines, fmt.Sprintf("dep %s %s", imp, fh))
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(lp); err != nil {
		return nil, err
	}
	sort.Strings(lines)
	return lines, nil
}

// fileHash returns the sha256 of a file's contents, memoized for the life of
// the cache handle (export data files are shared by many packages).
func (c *Cache) fileHash(path string) (string, error) {
	c.mu.Lock()
	if h, ok := c.hashes[path]; ok {
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	h := hex.EncodeToString(sum[:])
	c.mu.Lock()
	c.hashes[path] = h
	c.mu.Unlock()
	return h, nil
}

// get loads a cached result. A missing or unreadable entry is a miss.
func (c *Cache) get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// put stores a result atomically (tmp + rename) so concurrent runs never
// observe torn entries.
func (c *Cache) put(key string, diags []Diagnostic) {
	data, err := json.Marshal(diags)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(c.dir, key+".json")); err != nil {
		_ = os.Remove(name)
	}
}
