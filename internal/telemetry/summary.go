package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// KV is one key=value pair in a run header or config line.
type KV struct {
	Key   string
	Value string
}

// KVInt is shorthand for an integer-valued KV.
func KVInt(key string, v int) KV { return KV{Key: key, Value: strconv.Itoa(v)} }

// KVStr is shorthand for a string-valued KV.
func KVStr(key, value string) KV { return KV{Key: key, Value: value} }

// Header renders the shared run header every binary prints before a solve or
// bench run, e.g.
//
//	mube-bench: scale=quick seed=1 eval-workers=4 faults=off
//
// Keys are rendered in argument order so each binary controls its layout but
// the format (bin: k=v k=v ...) is identical everywhere.
func Header(bin string, kvs ...KV) string {
	var b strings.Builder
	b.WriteString(bin)
	b.WriteByte(':')
	for _, kv := range kvs {
		b.WriteByte(' ')
		b.WriteString(kv.Key)
		b.WriteByte('=')
		b.WriteString(kv.Value)
	}
	return b.String()
}

// configPrefix marks machine-readable run-configuration lines in bench
// output; mube-benchjson folds them into the report's config block.
const configPrefix = "mube-config: "

// metricsPrefix marks the machine-readable metrics-snapshot line the bench
// harness prints after the benchmarks; mube-benchjson embeds it as the
// report's metrics block.
const metricsPrefix = "mube-metrics: "

// ConfigLine renders a mube-config line from ordered key/value pairs.
func ConfigLine(kvs ...KV) string {
	parts := make([]string, len(kvs))
	for i, kv := range kvs {
		parts[i] = kv.Key + "=" + kv.Value
	}
	return configPrefix + strings.Join(parts, " ")
}

// ParseConfigLine splits a mube-config line into its key/value pairs.
// It reports ok=false when line does not carry the prefix.
func ParseConfigLine(line string) (map[string]string, bool) {
	rest, ok := strings.CutPrefix(line, configPrefix)
	if !ok {
		return nil, false
	}
	out := make(map[string]string)
	for _, kv := range strings.Fields(rest) {
		if k, v, ok := strings.Cut(kv, "="); ok {
			out[k] = v
		}
	}
	return out, true
}

// MetricsLine renders a mube-metrics line: the prefix followed by a JSON
// object with keys in sorted order, so the line is byte-deterministic.
func MetricsLine(vals map[string]float64) string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(metricsPrefix)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		b.Write(appendValue(nil, vals[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// ParseMetricsLine parses a mube-metrics line back into its values.
// It reports ok=false when line does not carry the prefix.
func ParseMetricsLine(line string) (map[string]float64, bool) {
	rest, ok := strings.CutPrefix(line, metricsPrefix)
	if !ok {
		return nil, false
	}
	out := make(map[string]float64)
	if err := json.Unmarshal([]byte(rest), &out); err != nil {
		return nil, false
	}
	return out, true
}

// WriteSummary renders a human-readable metrics summary: counters, gauges,
// then histograms, each section sorted by name. This is what
// `mube solve -metrics` prints after the solution.
func WriteSummary(w io.Writer, snap Snapshot) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(snap.Counters) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(tw, "%s\t%d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(tw, "gauge\tvalue")
		for _, k := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(tw, "%s\t%s\n", k, strconv.FormatFloat(snap.Gauges[k], 'g', 6, 64))
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(tw, "histogram\tcount\tmean\tmin\tmax")
		for _, k := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[k]
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%g\t%g\n", k, h.Count, h.Mean(), h.Min, h.Max)
		}
	}
	return tw.Flush()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
