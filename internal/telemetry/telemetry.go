// Package telemetry is a stdlib-only metrics and tracing facade for the
// deterministic core. It exposes counters, gauges, fixed-bucket histograms,
// and a span/event tracer that emits JSON Lines.
//
// Determinism contract: nothing in this package reads wall time. Events are
// stamped with a monotonic sequence number assigned under the same lock that
// serializes emission, and — only when the caller attaches an injected clock
// (e.g. a fault.VirtualClock) — with that clock's notion of now. A nil
// *Recorder is the no-op default: every method is safe to call on it and does
// nothing, so instrumented code paths cost a single nil check when telemetry
// is off and cannot perturb Q(S), memoization, or budget accounting.
//
// Hot paths must only ever emit trace events from the goroutine that owns the
// solve (the solver loop or the EvalBatch caller); worker goroutines are
// limited to commutative metric updates (Add/Observe), whose totals are
// independent of scheduling order. This keeps traces byte-identical at any
// evaluator worker count.
//
// Spans form a tree: BeginSpan pushes onto a stack owned by the solve
// goroutine (guarded by the same lock as emission), so every event carries the
// id of its enclosing span and every span the id of its parent. Span ids are
// the sequence numbers of their begin events, which makes the tree — like
// everything else here — a pure function of the emission order.
package telemetry

import (
	"sync"
	"time"
)

// Clock is the minimal clock the tracer accepts. fault.Clock satisfies it
// structurally; the telemetry package deliberately does not import
// internal/fault so that any package can depend on telemetry without cycles.
type Clock interface {
	Now() time.Time
}

// Attr is one key/value attribute on a trace event. Values are restricted to
// the small set produced by the constructors below so encoding is total and
// byte-deterministic.
type Attr struct {
	Key   string
	Value any // int64, float64, string, or bool
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// Recorder is the façade instrumented code holds. It multiplexes trace events
// to a Sink and accumulates metrics in-process. The zero value is not useful;
// construct with New or NewClocked. A nil *Recorder is the supported no-op.
type Recorder struct {
	mu    sync.Mutex
	sink  Sink
	clock Clock
	epoch time.Time
	seq   int64
	// stack is the open-span id stack. Spans are begun and ended only on the
	// goroutine that owns the solve (the package contract above), so one
	// stack per recorder suffices; the emission lock guards it against the
	// metrics-snapshot readers.
	stack []int64

	metrics metrics
}

// New returns a Recorder writing trace events to sink. A nil sink is allowed:
// the recorder then only accumulates metrics. Events carry no time field
// (Stamped=false) because no clock is attached.
func New(sink Sink) *Recorder {
	r := &Recorder{sink: sink}
	r.metrics.init()
	return r
}

// NewClocked returns a Recorder whose events additionally carry t_ns, the
// nanoseconds elapsed on clock since construction. The clock must be an
// injected deterministic clock (fault.VirtualClock in tests and fault runs);
// passing a wall clock would break trace determinism and is the caller's
// responsibility to avoid — core packages are analyzer-checked to never
// construct one.
func NewClocked(sink Sink, clock Clock) *Recorder {
	r := &Recorder{sink: sink, clock: clock}
	if clock != nil {
		r.epoch = clock.Now()
	}
	r.metrics.init()
	return r
}

// Emit records one trace event. Attrs are encoded in argument order. Safe on
// a nil receiver. Must only be called from the solve-owning goroutine (see
// the package comment). When a span is open, the event carries its id (sid)
// so profile reducers can attribute it to a phase.
func (r *Recorder) Emit(name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev := Event{Seq: r.seq, Name: name, Attrs: attrs}
	if n := len(r.stack); n > 0 {
		ev.SID = r.stack[n-1]
	}
	if r.clock != nil {
		ev.TNano = r.clock.Now().Sub(r.epoch).Nanoseconds()
		ev.Stamped = true
	}
	sink := r.sink
	if sink != nil {
		sink.Write(ev)
	}
	r.mu.Unlock()
}

// Span is an in-flight span opened with BeginSpan. End emits the matching
// end event and pops the span off the recorder's stack; a Span from a nil
// Recorder is inert.
type Span struct {
	r    *Recorder
	name string
	id   int64 // span id = seq of the begin event; 0 for an inert span
	t0   int64 // t_ns of the begin event (valid only when r.clock != nil)
}

// BeginSpan emits "<name>.begin" and pushes a new span: the begin event
// carries sid (the span's id — the begin event's own sequence number) and
// psid (the enclosing span's id, 0 at the root), and every event emitted
// before the matching End carries the span's id. Returns a Span whose End
// emits "<name>.end" with the same sid and, when a clock is attached, dur_ns.
// Safe on a nil receiver. Spans must be ended in LIFO order on the
// solve-owning goroutine; mube-vet's spanend analyzer flags Begin calls with
// no reachable End.
func (r *Recorder) BeginSpan(name string, attrs ...Attr) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	r.seq++
	ev := Event{Seq: r.seq, Name: name + ".begin", Attrs: attrs, SID: r.seq, IsBegin: true}
	if n := len(r.stack); n > 0 {
		ev.PSID = r.stack[n-1]
	}
	sp := Span{r: r, name: name, id: r.seq}
	if r.clock != nil {
		ev.TNano = r.clock.Now().Sub(r.epoch).Nanoseconds()
		ev.Stamped = true
		sp.t0 = ev.TNano
	}
	r.stack = append(r.stack, sp.id)
	if r.sink != nil {
		r.sink.Write(ev)
	}
	r.mu.Unlock()
	return sp
}

// End closes the span: it pops the span (and, defensively, any deeper spans
// left open by a skipped End) off the stack and emits "<name>.end" carrying
// the span's sid and, when a clock is attached, dur_ns. Extra attrs follow.
// Safe on an inert span (from a nil recorder) and idempotent: ending a span
// that is no longer on the stack emits the end event without popping.
func (s Span) End(attrs ...Attr) {
	if s.r == nil {
		return
	}
	r := s.r
	r.mu.Lock()
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == s.id {
			r.stack = r.stack[:i]
			break
		}
	}
	r.seq++
	ev := Event{Seq: r.seq, Name: s.name + ".end", SID: s.id}
	if r.clock != nil {
		ev.TNano = r.clock.Now().Sub(r.epoch).Nanoseconds()
		ev.Stamped = true
		ev.Attrs = append(ev.Attrs, Int64("dur_ns", ev.TNano-s.t0))
	}
	ev.Attrs = append(ev.Attrs, attrs...)
	if r.sink != nil {
		r.sink.Write(ev)
	}
	r.mu.Unlock()
}

// Child returns a new Recorder that writes to sink but shares r's clock and
// epoch, so the child's t_ns values are directly comparable to the parent's.
// Children are how concurrent sub-solves keep the parent trace byte-identical
// at any worker count: each sub-solve emits into a private child (typically
// over a MemorySink), and the owner replays the captured streams into the
// parent in a deterministic order after the workers join (see Replay). Safe on
// a nil receiver, which yields nil — the no-op recorder.
func (r *Recorder) Child(sink Sink) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c := &Recorder{sink: sink, clock: r.clock, epoch: r.epoch}
	r.mu.Unlock()
	c.metrics.init()
	return c
}

// Replay re-emits a child recorder's captured event stream into r, assigning
// fresh sequence numbers and re-parenting the stream under r's innermost open
// span. Span ids are remapped so they remain equal to the sequence numbers of
// their (replayed) begin events; events the child emitted outside any span
// (sid 0) attach to r's current span, exactly as if they had been emitted on r
// directly. Timestamps and Stamped flags are preserved — child and parent
// share a clock (see Child), so they need no rebasing. The replayed stream
// must be begin/end balanced (every child span ended), which the spanend
// analyzer enforces at the emission sites; r's own span stack is not touched.
// Safe on a nil receiver.
func (r *Recorder) Replay(evs []Event) {
	if r == nil || len(evs) == 0 {
		return
	}
	r.mu.Lock()
	var top int64
	if n := len(r.stack); n > 0 {
		top = r.stack[n-1]
	}
	sidMap := make(map[int64]int64)
	for _, ev := range evs {
		r.seq++
		out := ev
		out.Seq = r.seq
		if ev.IsBegin {
			sidMap[ev.SID] = r.seq
			out.SID = r.seq
			if mapped, ok := sidMap[ev.PSID]; ev.PSID != 0 && ok {
				out.PSID = mapped
			} else {
				out.PSID = top
			}
		} else if mapped, ok := sidMap[ev.SID]; ok {
			out.SID = mapped
		} else {
			out.SID = top
		}
		if r.sink != nil {
			r.sink.Write(out)
		}
	}
	r.mu.Unlock()
}

// Merge folds a child recorder's metric snapshot into r: counters add,
// gauges overwrite (last merge wins, mirroring Gauge's last-write-wins), and
// histograms combine bucket-wise — all histograms share the fixed
// DefaultBuckets layout, so merging is exact. Merging children in a fixed
// order after concurrent sub-solves yields the same final metric state as the
// sequential run. Safe on a nil receiver.
func (r *Recorder) Merge(s Snapshot) {
	if r == nil {
		return
	}
	r.metrics.merge(s)
}

// Add increments counter name by delta. Commutative: safe from worker
// goroutines. Safe on a nil receiver.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.metrics.add(name, delta)
}

// Gauge sets gauge name to v (last write wins). Safe on a nil receiver.
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.metrics.gauge(name, v)
}

// Observe records v into histogram name using the default bucket layout.
// Commutative: safe from worker goroutines. Safe on a nil receiver.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.metrics.observe(name, v)
}

// Snapshot returns a copy of all metric state. Safe on a nil receiver, which
// yields an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.metrics.snapshot()
}
