package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit("ev", Int("k", 1))
	r.Add("c", 2)
	r.Gauge("g", 3)
	r.Observe("h", 4)
	sp := r.BeginSpan("span")
	sp.End(Int("done", 1))
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil recorder produced metrics: %+v", snap)
	}
}

func TestJSONLEncodingDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		r := New(NewJSONLSink(&buf))
		r.Emit("solver.iter", Int("iter", 1), Float("best_q", 0.75), Str("solver", "tabu"), Bool("tabu", true))
		r.Emit("eval.batch", Int("cands", 30), Float("neg_inf", math.Inf(-1)))
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("encoding not deterministic:\n%s\nvs\n%s", a, b)
	}
	want := `{"seq":1,"ev":"solver.iter","iter":1,"best_q":0.75,"solver":"tabu","tabu":true}` + "\n" +
		`{"seq":2,"ev":"eval.batch","cands":30,"neg_inf":null}` + "\n"
	if a != want {
		t.Fatalf("unexpected encoding:\n got %q\nwant %q", a, want)
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(a), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
	}
}

type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func TestClockedSpans(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sink := &MemorySink{}
	r := NewClocked(sink, clk)
	sp := r.BeginSpan("session.solve", Str("solver", "tabu"))
	clk.advance(42 * time.Millisecond)
	sp.End(Int("evals", 7))
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "session.solve.begin" || !evs[0].Stamped || evs[0].TNano != 0 {
		t.Fatalf("bad begin event: %+v", evs[0])
	}
	if evs[0].SID != evs[0].Seq || !evs[0].IsBegin || evs[0].PSID != 0 {
		t.Fatalf("bad begin span ids: %+v", evs[0])
	}
	end := evs[1]
	if end.Name != "session.solve.end" {
		t.Fatalf("bad end event name: %q", end.Name)
	}
	if end.SID != evs[0].Seq {
		t.Fatalf("end sid = %d, want %d", end.SID, evs[0].Seq)
	}
	if v, ok := end.Attr("dur_ns"); !ok || v.(int64) != (42*time.Millisecond).Nanoseconds() {
		t.Fatalf("dur_ns = %v, want %d", v, (42 * time.Millisecond).Nanoseconds())
	}
}

func TestSpanTreeLinkage(t *testing.T) {
	sink := &MemorySink{}
	r := New(sink)
	root := r.BeginSpan("root")
	r.Emit("in.root")
	child := r.BeginSpan("child")
	r.Emit("in.child")
	grand := r.BeginSpan("grand")
	grand.End()
	child.End()
	r.Emit("in.root.again")
	root.End()
	r.Emit("outside")

	evs := sink.Events()
	byName := func(name string) Event {
		for _, ev := range evs {
			if ev.Name == name {
				return ev
			}
		}
		t.Fatalf("event %q not found", name)
		return Event{}
	}
	rootID := byName("root.begin").SID
	childID := byName("child.begin").SID
	grandID := byName("grand.begin").SID
	if byName("root.begin").PSID != 0 {
		t.Fatalf("root psid = %d, want 0", byName("root.begin").PSID)
	}
	if byName("child.begin").PSID != rootID {
		t.Fatalf("child psid = %d, want %d", byName("child.begin").PSID, rootID)
	}
	if byName("grand.begin").PSID != childID {
		t.Fatalf("grand psid = %d, want %d", byName("grand.begin").PSID, childID)
	}
	if byName("in.root").SID != rootID || byName("in.root.again").SID != rootID {
		t.Fatal("events in root must carry root sid")
	}
	if byName("in.child").SID != childID {
		t.Fatal("events in child must carry child sid")
	}
	if byName("grand.end").SID != grandID || byName("child.end").SID != childID || byName("root.end").SID != rootID {
		t.Fatal("end events must carry their own span id")
	}
	if byName("outside").SID != 0 {
		t.Fatalf("event outside all spans has sid %d, want 0", byName("outside").SID)
	}
}

func TestSpanEndPopsSkippedChildren(t *testing.T) {
	sink := &MemorySink{}
	r := New(sink)
	outer := r.BeginSpan("outer")
	//mube:vet-ignore spanend — deliberately leaked to exercise the defensive pop
	_ = r.BeginSpan("leaked")
	outer.End()
	r.Emit("after")
	evs := sink.Events()
	last := evs[len(evs)-1]
	if last.Name != "after" || last.SID != 0 {
		t.Fatalf("stack not cleaned after defensive pop: %+v", last)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("eval.computed", 1)
				r.Observe("eval.batch_size", float64(i%40))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("eval.computed"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := snap.Histograms["eval.batch_size"]
	if h.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count)
	}
	var bucketed int64
	for _, c := range h.Counts {
		bucketed += c
	}
	if bucketed+h.Overflow != h.Count {
		t.Fatalf("buckets %d + overflow %d != count %d", bucketed, h.Overflow, h.Count)
	}
	//mube:vet-ignore floatcmp — observed values are exact small integers
	if h.Min != 0 || h.Max != 39 {
		t.Fatalf("min/max = %g/%g, want 0/39", h.Min, h.Max)
	}
	// Snapshot must round-trip through encoding/json (finite bounds only).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestHeaderAndLines(t *testing.T) {
	h := Header("mube-bench", KVStr("scale", "quick"), KVInt("seed", 1), KVStr("faults", "off"))
	if h != "mube-bench: scale=quick seed=1 faults=off" {
		t.Fatalf("header = %q", h)
	}

	cl := ConfigLine(KVStr("faults", "off"), KVInt("eval-workers", 4))
	if cl != "mube-config: faults=off eval-workers=4" {
		t.Fatalf("config line = %q", cl)
	}
	cfg, ok := ParseConfigLine(cl)
	if !ok || cfg["faults"] != "off" || cfg["eval-workers"] != "4" {
		t.Fatalf("parse config = %v, %v", cfg, ok)
	}
	if _, ok := ParseConfigLine("goos: linux"); ok {
		t.Fatal("parsed non-config line")
	}

	ml := MetricsLine(map[string]float64{"memo_hit_rate": 0.5, "best_q": 0.75})
	if ml != `mube-metrics: {"best_q":0.75,"memo_hit_rate":0.5}` {
		t.Fatalf("metrics line = %q", ml)
	}
	vals, ok := ParseMetricsLine(ml)
	//mube:vet-ignore floatcmp — 0.75 and 0.5 are exact binary floats round-tripped through JSON
	if !ok || vals["best_q"] != 0.75 || vals["memo_hit_rate"] != 0.5 {
		t.Fatalf("parse metrics = %v, %v", vals, ok)
	}
}

func TestWriteSummary(t *testing.T) {
	r := New(nil)
	r.Add("eval.memo_hits", 10)
	r.Add("eval.computed", 30)
	r.Gauge("solver.best_q", 0.8125)
	r.Observe("eval.batch_size", 30)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, r.Snapshot()); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"eval.memo_hits", "eval.computed", "solver.best_q", "eval.batch_size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestEmitOrderAcrossGoroutinesHasUniqueSeqs(t *testing.T) {
	sink := &MemorySink{}
	r := New(sink)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit("ev")
			}
		}()
	}
	wg.Wait()
	evs := sink.Events()
	if len(evs) != 400 {
		t.Fatalf("got %d events, want 400", len(evs))
	}
	seen := make(map[int64]bool, len(evs))
	for i, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if ev.Seq != int64(i+1) {
			t.Fatalf("seq %d at position %d: emission order must match seq order", ev.Seq, i)
		}
	}
}
