package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// buildSampleTrace emits a small clocked two-level trace and returns its
// JSONL bytes alongside the in-memory events.
func buildSampleTrace() ([]byte, []Event) {
	var buf bytes.Buffer
	mem := &MemorySink{}
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := NewClocked(Tee(NewJSONLSink(&buf), mem), clk)
	tick := r.BeginSpan("watch.tick", Int("epoch", 1))
	churn := r.BeginSpan("watch.churn")
	clk.advance(5 * time.Millisecond)
	r.Emit("watch.drift", Int("drifted", 2))
	churn.End(Int("died", 1))
	res := r.BeginSpan("watch.resolve")
	clk.advance(20 * time.Millisecond)
	r.Emit("solver.iter", Int("iter", 0), Float("best_q", 0.5))
	r.Emit("solver.iter", Int("iter", 1), Float("best_q", 0.75))
	res.End()
	tick.End()
	r.Emit("loose", Float("nan", math.NaN()))
	return buf.Bytes(), mem.Events()
}

func TestParseTraceRoundTrip(t *testing.T) {
	raw, want := buildSampleTrace()
	got, err := ParseTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	// Re-encoding the parsed events must reproduce the input bytes exactly —
	// the attribute-order-preserving inverse property mube-trace relies on.
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, ev := range got {
		sink.Write(ev)
	}
	if buf.String() != string(raw) {
		t.Fatalf("re-encode mismatch:\n got %s\nwant %s", buf.String(), raw)
	}
	for i, ev := range got {
		if ev.Seq != want[i].Seq || ev.Name != want[i].Name || ev.SID != want[i].SID ||
			ev.PSID != want[i].PSID || ev.IsBegin != want[i].IsBegin || ev.Stamped != want[i].Stamped {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, ev, want[i])
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"seq":1}`,                      // missing ev
		`{"ev":"x"}`,                     // missing seq
		`{"seq":1,"ev":"x","k":[1,2]}`,   // nested value
		`{"seq":"one","ev":"x"}`,         // non-numeric seq
		`[1,2,3]`,                        // not an object
		`{"seq":1,"ev":"x"} trailing {]`, // malformed tail
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
}

func TestBuildTreeAndProfile(t *testing.T) {
	_, evs := buildSampleTrace()
	tree := BuildTree(evs)
	if len(tree.Roots) != 1 || len(tree.Loose) != 1 {
		t.Fatalf("roots=%d loose=%d, want 1/1", len(tree.Roots), len(tree.Loose))
	}
	tick := tree.Roots[0]
	if tick.Name != "watch.tick" || len(tick.Children) != 2 || tick.Open {
		t.Fatalf("bad root: %+v", tick)
	}
	if tick.Dur() != (25 * time.Millisecond).Nanoseconds() {
		t.Fatalf("tick dur = %d", tick.Dur())
	}
	if tick.SelfDur() != 0 {
		t.Fatalf("tick self = %d, want 0 (fully covered by children)", tick.SelfDur())
	}
	res := tick.Children[1]
	if res.Name != "watch.resolve" {
		t.Fatalf("second child = %q", res.Name)
	}
	// Attribute inheritance: the child carries the tick's epoch attr.
	if v, ok := res.Attr("epoch"); !ok || v.(int64) != 1 {
		t.Fatalf("resolve epoch attr = %v, %v", v, ok)
	}

	stats := Profile(tree)
	if len(stats) != 3 {
		t.Fatalf("got %d phases: %+v", len(stats), stats)
	}
	if stats[0].Path != "watch.tick" || stats[0].Count != 1 {
		t.Fatalf("first phase: %+v", stats[0])
	}
	// Children sort by cumulative time: resolve (20ms) before churn (5ms).
	if stats[1].Path != "watch.tick/watch.resolve" || stats[2].Path != "watch.tick/watch.churn" {
		t.Fatalf("phase order: %q, %q", stats[1].Path, stats[2].Path)
	}
	//mube:vet-ignore floatcmp — Q values are exact binary floats carried through unchanged
	if !stats[1].HasQ || stats[1].QFirst != 0.5 || stats[1].QLast != 0.75 {
		t.Fatalf("resolve Q progress: %+v", stats[1])
	}
	if stats[2].SelfNS != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("churn self = %d", stats[2].SelfNS)
	}

	var flame, wf bytes.Buffer
	if err := WriteFlame(&flame, tree); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"watch.tick", "watch.resolve", "q 0.500000 -> 0.750000", "80.0%"} {
		if !strings.Contains(flame.String(), want) {
			t.Fatalf("flame missing %q:\n%s", want, flame.String())
		}
	}
	if err := WriteWaterfall(&wf, tree); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"+5ms", "20ms", "| watch.resolve", "epoch=1"} {
		if !strings.Contains(wf.String(), want) {
			t.Fatalf("waterfall missing %q:\n%s", want, wf.String())
		}
	}
}

func TestBuildTreeOpenAndOrphanSpans(t *testing.T) {
	mem := &MemorySink{}
	r := New(mem)
	//mube:vet-ignore spanend — truncated-trace fixture: the span must leak
	sp := r.BeginSpan("never.ended")
	r.Emit("inside")
	_ = sp
	evs := mem.Events()
	// An end event for an id that was never begun.
	evs = append(evs, Event{Seq: 99, Name: "ghost.end", SID: 77})
	tree := BuildTree(evs)
	if len(tree.Roots) != 1 || !tree.Roots[0].Open {
		t.Fatalf("open span not preserved: %+v", tree.Roots)
	}
	if tree.Roots[0].Dur() != 0 {
		t.Fatal("open span must report zero duration")
	}
	if len(tree.Loose) != 1 || tree.Loose[0].Name != "ghost.end" {
		t.Fatalf("orphan end not loose: %+v", tree.Loose)
	}
}
