package telemetry

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// Event is one trace record. Seq is a monotonic counter assigned under the
// recorder's emission lock, so the (Seq, bytes) stream is identical across
// runs with the same seed regardless of evaluator worker count. TNano is the
// elapsed virtual time since the recorder's epoch and is present only when an
// injected clock was attached (Stamped).
//
// SID links the event into the span tree: for a span begin/end event it is
// the span's own id (the begin event's sequence number), for any other event
// the id of the innermost open span (0 = outside any span). PSID is the
// parent span's id and is meaningful only on begin events (IsBegin), where 0
// marks a root span.
type Event struct {
	Seq     int64
	Name    string
	TNano   int64
	Stamped bool
	SID     int64
	PSID    int64
	IsBegin bool
	Attrs   []Attr
}

// Sink receives emitted events. Write is always called under the recorder's
// lock, in sequence order; implementations need no additional locking against
// concurrent Write calls from the same recorder.
type Sink interface {
	Write(ev Event)
}

// JSONLSink encodes each event as one JSON object per line:
//
//	{"seq":3,"ev":"solver.iter","sid":2,"iter":1,"best_q":0.75}
//
// Attributes are flattened to top-level keys in emission order, after the
// fixed seq/ev(/t_ns)(/sid)(/psid) prefix — sid appears whenever the event is
// inside (or is) a span, psid only on span begin events. Encoding is
// hand-rolled so the bytes are a pure function of the event: floats use
// strconv 'g' shortest form, and map iteration order never enters the
// picture.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONLSink returns a sink writing JSON Lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Write implements Sink.
func (s *JSONLSink) Write(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, ev.Seq, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev.Name)
	if ev.Stamped {
		b = append(b, `,"t_ns":`...)
		b = strconv.AppendInt(b, ev.TNano, 10)
	}
	if ev.SID != 0 {
		b = append(b, `,"sid":`...)
		b = strconv.AppendInt(b, ev.SID, 10)
	}
	if ev.IsBegin {
		b = append(b, `,"psid":`...)
		b = strconv.AppendInt(b, ev.PSID, 10)
	}
	for _, a := range ev.Attrs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		b = appendValue(b, a.Value)
	}
	b = append(b, '}', '\n')
	s.buf = b
	_, s.err = s.w.Write(b)
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int64:
		return strconv.AppendInt(b, x, 10)
	case float64:
		// JSON has no Inf/NaN; the Unscored sentinel (-Inf) and friends are
		// encoded as null so a trace line is always valid JSON.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return append(b, "null"...)
		}
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case string:
		return strconv.AppendQuote(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	default:
		return append(b, "null"...)
	}
}

// MemorySink buffers events in memory, for tests and for the convergence
// experiment, which post-processes solver.iter events into a curve.
type MemorySink struct {
	mu  sync.Mutex
	evs []Event
}

// Write implements Sink. Attrs are aliased, not copied; recorders build a
// fresh attr slice per Emit so this is safe.
func (s *MemorySink) Write(ev Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

// Events returns the buffered events in emission order.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.evs))
	copy(out, s.evs)
	return out
}

// TeeSink fans each event out to every sink in order. Write is called under
// the recorder's lock like any other sink, so the components need no extra
// synchronization against each other.
type TeeSink []Sink

// Tee bundles sinks into one; nil members are dropped. It returns nil when
// nothing remains, so a recorder built over Tee() stays metrics-only.
func Tee(sinks ...Sink) Sink {
	var out TeeSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// Write implements Sink.
func (t TeeSink) Write(ev Event) {
	for _, s := range t {
		s.Write(ev)
	}
}

// Attr returns the named attribute's value and whether it was present.
func (ev Event) Attr(key string) (any, bool) {
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}
