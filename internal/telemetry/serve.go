package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultSpanRingSize bounds the /spans buffer when the caller passes no
// explicit size.
const DefaultSpanRingSize = 256

// SpanInfo is one completed span as the /spans endpoint reports it.
type SpanInfo struct {
	ID       int64      `json:"sid"`
	ParentID int64      `json:"psid"`
	Name     string     `json:"name"`
	StartNS  int64      `json:"start_ns"`
	DurNS    int64      `json:"dur_ns"`
	Stamped  bool       `json:"stamped"`
	Attrs    []SpanAttr `json:"attrs,omitempty"`
}

// SpanAttr is an attribute pair in /spans JSON. NaN/±Inf values are nulled
// (JSON cannot carry them), matching the trace encoding.
type SpanAttr struct {
	K string `json:"k"`
	V any    `json:"v"`
}

// SpanRing is a Sink that pairs span begin/end events into completed spans
// and keeps the most recent ones in a fixed ring for live inspection. It is
// the /spans backing store: Tee it with the trace file sink. Unlike the
// deterministic trace path it has its own lock, because HTTP readers call
// Spans concurrently with the recorder's writes.
type SpanRing struct {
	mu   sync.Mutex
	open map[int64]*SpanInfo
	buf  []SpanInfo
	next int
	full bool
}

// NewSpanRing returns a ring holding the last size completed spans
// (DefaultSpanRingSize when size <= 0).
func NewSpanRing(size int) *SpanRing {
	if size <= 0 {
		size = DefaultSpanRingSize
	}
	return &SpanRing{
		open: make(map[int64]*SpanInfo),
		buf:  make([]SpanInfo, size),
	}
}

// Write implements Sink: begin events open a pending span, the matching end
// completes it into the ring. Non-span events pass through untouched.
func (r *SpanRing) Write(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case ev.IsBegin:
		r.open[ev.SID] = &SpanInfo{
			ID:       ev.SID,
			ParentID: ev.PSID,
			Name:     strings.TrimSuffix(ev.Name, ".begin"),
			StartNS:  ev.TNano,
			Stamped:  ev.Stamped,
			Attrs:    ringAttrs(nil, ev.Attrs),
		}
	case strings.HasSuffix(ev.Name, ".end"):
		si := r.open[ev.SID]
		if si == nil || si.Name != strings.TrimSuffix(ev.Name, ".end") {
			return
		}
		delete(r.open, ev.SID)
		if si.Stamped {
			si.DurNS = ev.TNano - si.StartNS
		}
		for _, a := range ev.Attrs {
			if a.Key != "dur_ns" {
				si.Attrs = ringAttrs(si.Attrs, []Attr{a})
			}
		}
		r.buf[r.next] = *si
		r.next++
		if r.next == len(r.buf) {
			r.next, r.full = 0, true
		}
	}
}

func ringAttrs(dst []SpanAttr, attrs []Attr) []SpanAttr {
	for _, a := range attrs {
		v := a.Value
		if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
			v = nil
		}
		dst = append(dst, SpanAttr{K: a.Key, V: v})
	}
	return dst
}

// Spans returns the completed spans currently held, oldest first.
func (r *SpanRing) Spans() []SpanInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanInfo(nil), r.buf[:r.next]...)
	}
	out := make([]SpanInfo, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// promName sanitizes a metric name for the Prometheus exposition format and
// applies the mube_ namespace: dots and other non-identifier characters
// become underscores ("eval.memo_hits" -> "mube_eval_memo_hits").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("mube_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed series with _sum and _count. Names
// sort, so the output is a deterministic function of the snapshot.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", p, p, promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			p, h.Count, p, promFloat(h.Sum), p, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Server is a live observability endpoint over one recorder: /metrics
// (Prometheus text exposition of the recorder's counters, gauges, and
// histograms), /spans (the ring's recently completed spans as JSON, oldest
// first), and /debug/pprof. It reads only snapshots and never feeds back
// into a solve, so it is safe to leave attached to a deterministic run; the
// deterministic core itself never imports net/http (mube-vet enforces the
// boundary, with this package as the sanctioned exception).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; :0 picks a free port) and serves rec's
// metrics and ring's spans until Close. rec and ring may each be nil, which
// serves empty metrics and spans rather than erroring — callers wire flags
// through unconditionally.
func Serve(addr string, rec *Recorder, ring *SpanRing) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, rec.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := []SpanInfo{}
		if ring != nil {
			spans = ring.Spans()
		}
		_ = json.NewEncoder(w).Encode(spans)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: serve %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	//mube:vet-ignore leakjoin — the serve goroutine exits when Close shuts the server down
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
