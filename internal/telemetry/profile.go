package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SpanNode is one reconstructed span in a trace's tree. Start/Finish are the
// begin/end t_ns stamps (0 and Stamped=false on unclocked traces); Attrs are
// the span's effective attributes — the parent's inherited attrs followed by
// the span's own begin attrs, so a child span carries the context (solver,
// epoch, …) of every enclosing phase without the hot path re-emitting it.
type SpanNode struct {
	ID       int64
	ParentID int64
	Name     string
	Start    int64
	Finish   int64
	Stamped  bool
	Open     bool // no end event seen (crashed / truncated trace)
	Attrs    []Attr
	Children []*SpanNode
	Events   []Event // non-span events emitted directly inside this span
	EndAttrs []Attr  // attrs from the end event (dur_ns excluded)
}

// Dur returns the span's duration; 0 when the trace is unclocked or the span
// never ended.
func (n *SpanNode) Dur() int64 {
	if !n.Stamped || n.Open {
		return 0
	}
	return n.Finish - n.Start
}

// SelfDur returns the span's duration minus its children's durations — the
// time attributable to the phase itself.
func (n *SpanNode) SelfDur() int64 {
	d := n.Dur()
	for _, c := range n.Children {
		d -= c.Dur()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Attr returns the effective (inherited) attribute value for key.
func (n *SpanNode) Attr(key string) (any, bool) {
	for i := len(n.Attrs) - 1; i >= 0; i-- {
		if n.Attrs[i].Key == key {
			return n.Attrs[i].Value, true
		}
	}
	return nil, false
}

// Tree is the span forest of one trace plus the events outside any span.
type Tree struct {
	Roots []*SpanNode
	Loose []Event
	// Spans indexes every node by span id.
	Spans map[int64]*SpanNode
}

// BuildTree folds an event stream (in sequence order, as ParseTrace or a
// MemorySink returns it) into its span forest. The builder is total: end
// events without a begin are ignored, spans without an end stay Open, and
// events carrying an unknown sid degrade to Loose. Output is a pure function
// of the input stream.
func BuildTree(evs []Event) *Tree {
	t := &Tree{Spans: make(map[int64]*SpanNode)}
	for _, ev := range evs {
		switch {
		case ev.IsBegin:
			n := &SpanNode{
				ID:       ev.SID,
				ParentID: ev.PSID,
				Name:     strings.TrimSuffix(ev.Name, ".begin"),
				Start:    ev.TNano,
				Stamped:  ev.Stamped,
				Open:     true,
			}
			if p := t.Spans[ev.PSID]; p != nil {
				n.Attrs = append(append([]Attr(nil), p.Attrs...), ev.Attrs...)
				p.Children = append(p.Children, n)
			} else {
				n.Attrs = append([]Attr(nil), ev.Attrs...)
				t.Roots = append(t.Roots, n)
			}
			t.Spans[ev.SID] = n
		case strings.HasSuffix(ev.Name, ".end") && t.Spans[ev.SID] != nil && t.Spans[ev.SID].Open &&
			strings.TrimSuffix(ev.Name, ".end") == t.Spans[ev.SID].Name:
			n := t.Spans[ev.SID]
			n.Open = false
			n.Finish = ev.TNano
			for _, a := range ev.Attrs {
				if a.Key != "dur_ns" {
					n.EndAttrs = append(n.EndAttrs, a)
				}
			}
		default:
			if n := t.Spans[ev.SID]; n != nil {
				n.Events = append(n.Events, ev)
			} else {
				t.Loose = append(t.Loose, ev)
			}
		}
	}
	return t
}

// PhaseStat is the aggregate of every span sharing one tree path
// (e.g. "watch.tick/watch.resolve/solver.run").
type PhaseStat struct {
	// Path is the span names from root to this phase, joined with "/".
	Path string
	// Depth is the number of ancestors (0 for a root phase).
	Depth int
	// Count is the number of spans folded into this phase.
	Count int
	// CumNS and SelfNS are summed cumulative and self time.
	CumNS, SelfNS int64
	// Events counts the non-span events attributed directly to the phase.
	Events int
	// QFirst/QLast track Q progress within the phase: the first and last
	// best_q (or q_after) seen on the phase's direct events, in trace order.
	QFirst, QLast float64
	HasQ          bool
}

// phaseNode aggregates every span sharing one tree path.
type phaseNode struct {
	stat     PhaseStat
	children map[string]*phaseNode
	names    []string // first-seen child order (pre-sort)
}

func (p *phaseNode) child(name string) *phaseNode {
	if p.children == nil {
		p.children = make(map[string]*phaseNode)
	}
	c := p.children[name]
	if c == nil {
		c = &phaseNode{}
		p.children[name] = c
		p.names = append(p.names, name)
	}
	return c
}

// Profile folds a span tree into one PhaseStat per distinct tree path,
// depth-first: a parent precedes its children and sibling phases sort by
// descending cumulative time, ties by name — a deterministic reduction of a
// deterministic trace.
func Profile(t *Tree) []PhaseStat {
	root := &phaseNode{}
	var fold func(n *SpanNode, at *phaseNode, path string, depth int)
	fold = func(n *SpanNode, at *phaseNode, path string, depth int) {
		if path == "" {
			path = n.Name
		} else {
			path += "/" + n.Name
		}
		pn := at.child(n.Name)
		st := &pn.stat
		st.Path, st.Depth = path, depth
		st.Count++
		st.CumNS += n.Dur()
		st.SelfNS += n.SelfDur()
		st.Events += len(n.Events)
		for _, ev := range n.Events {
			for _, key := range [2]string{"best_q", "q_after"} {
				if v, ok := ev.Attr(key); ok {
					if f, ok := v.(float64); ok {
						if !st.HasQ {
							st.QFirst, st.HasQ = f, true
						}
						st.QLast = f
					}
				}
			}
		}
		for _, c := range n.Children {
			fold(c, pn, path, depth+1)
		}
	}
	for _, r := range t.Roots {
		fold(r, root, "", 0)
	}
	var stats []PhaseStat
	var emit func(p *phaseNode)
	emit = func(p *phaseNode) {
		names := append([]string(nil), p.names...)
		sort.SliceStable(names, func(i, j int) bool {
			ci, cj := p.children[names[i]], p.children[names[j]]
			if ci.stat.CumNS != cj.stat.CumNS {
				return ci.stat.CumNS > cj.stat.CumNS
			}
			return names[i] < names[j]
		})
		for _, name := range names {
			c := p.children[name]
			stats = append(stats, c.stat)
			emit(c)
		}
	}
	emit(root)
	return stats
}

// leafName returns the last segment of a phase path.
func leafName(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// fmtDur renders a nanosecond count via time.Duration — a pure function of
// the integer, so rendered profiles are as deterministic as the trace.
func fmtDur(ns int64) string {
	return time.Duration(ns).String()
}

// WriteFlame renders the aggregated profile as an indented text flame: one
// line per phase path with cumulative time, self time, span count, event
// count, and Q progress, plus a bar scaled to the phase's share of total
// root time (by count when the trace is unclocked).
func WriteFlame(w io.Writer, t *Tree) error {
	stats := Profile(t)
	var totalCum int64
	totalCount := 0
	for _, st := range stats {
		if st.Depth == 0 {
			totalCum += st.CumNS
			totalCount += st.Count
		}
	}
	if _, err := fmt.Fprintf(w, "%-44s %12s %12s %7s %7s  %s\n",
		"phase", "cum", "self", "spans", "events", "share"); err != nil {
		return err
	}
	for _, st := range stats {
		frac := 0.0
		if totalCum > 0 {
			frac = float64(st.CumNS) / float64(totalCum)
		} else if totalCount > 0 {
			frac = float64(st.Count) / float64(totalCount)
		}
		bar := strings.Repeat("#", int(frac*30+0.5))
		name := strings.Repeat("  ", st.Depth) + leafName(st.Path)
		line := fmt.Sprintf("%-44s %12s %12s %7d %7d  %5.1f%% %s",
			name, fmtDur(st.CumNS), fmtDur(st.SelfNS), st.Count, st.Events, frac*100, bar)
		if st.HasQ {
			line += fmt.Sprintf("  q %.6f -> %.6f", st.QFirst, st.QLast)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteWaterfall renders every span chronologically with begin offset,
// duration, and inherited-attribute context — the per-occurrence view, where
// WriteFlame is the aggregate.
func WriteWaterfall(w io.Writer, t *Tree) error {
	var epoch int64
	if len(t.Roots) > 0 {
		epoch = t.Roots[0].Start
	}
	var walk func(n *SpanNode, depth int) error
	walk = func(n *SpanNode, depth int) error {
		dur := "open"
		if !n.Open {
			dur = fmtDur(n.Dur())
		}
		line := fmt.Sprintf("%12s %12s  %s%s", "+"+fmtDur(n.Start-epoch), dur,
			strings.Repeat("| ", depth), n.Name)
		var parts []string
		for _, a := range n.Attrs {
			parts = append(parts, fmt.Sprintf("%s=%v", a.Key, a.Value))
		}
		for _, a := range n.EndAttrs {
			parts = append(parts, fmt.Sprintf("%s=%v", a.Key, a.Value))
		}
		if len(parts) > 0 {
			line += " [" + strings.Join(parts, " ") + "]"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
