package telemetry

import (
	"testing"

	"mube/internal/testutil"
)

// TestNilRecorderAllocFree pins the cost of leaving telemetry off: every
// Recorder method returns before touching any state when the receiver is
// nil, and an inert Span's End is a single nil check. Instrumented hot loops
// (solver iterations, probe batches, watch epochs) call these unguarded, so
// the no-op path must stay allocation-free — a regression here taxes every
// un-traced run.
func TestNilRecorderAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
	var r *Recorder
	body := func() {
		sp := r.BeginSpan("solver.run")
		r.Emit("solver.iter")
		r.Add("solver.iters", 1)
		r.Gauge("solver.best_q", 0.5)
		r.Observe("solver.delta", 1)
		sp.End()
	}
	body() // warm up
	if hit := testing.AllocsPerRun(100, body); hit != 0 {
		t.Errorf("nil-Recorder telemetry path allocates %.0f per run, want 0", hit)
	}
	// Snapshot on a nil recorder returns the zero Snapshot without building
	// any maps.
	snap := func() {
		_ = r.Snapshot()
	}
	snap()
	if hit := testing.AllocsPerRun(100, snap); hit != 0 {
		t.Errorf("nil-Recorder Snapshot allocates %.0f per run, want 0", hit)
	}
}
