package telemetry

import (
	"math"
	"sort"
	"sync"
)

// DefaultBuckets is the fixed histogram bucket layout: upper bounds in powers
// of two. A fixed layout keeps snapshots comparable across runs and binaries
// without any registration step; values above the last bound land in the
// overflow bucket.
var DefaultBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// metrics is the lock-guarded metric store inside a Recorder.
type metrics struct {
	mu     sync.Mutex
	count  map[string]int64
	gauges map[string]float64
	hists  map[string]*histogram
}

type histogram struct {
	count    int64
	sum      float64
	min      float64
	max      float64
	counts   []int64 // parallel to DefaultBuckets
	overflow int64
}

func (m *metrics) init() {
	m.count = make(map[string]int64)
	m.gauges = make(map[string]float64)
	m.hists = make(map[string]*histogram)
}

func (m *metrics) add(name string, delta int64) {
	m.mu.Lock()
	m.count[name] += delta
	m.mu.Unlock()
}

func (m *metrics) gauge(name string, v float64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

func (m *metrics) observe(name string, v float64) {
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histogram{
			min:    math.Inf(1),
			max:    math.Inf(-1),
			counts: make([]int64, len(DefaultBuckets)),
		}
		m.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := sort.SearchFloat64s(DefaultBuckets, v)
	if i < len(DefaultBuckets) {
		h.counts[i]++
	} else {
		h.overflow++
	}
	m.mu.Unlock()
}

// merge folds an exported snapshot back into the live store: counters add,
// gauges overwrite, histograms combine bucket-wise. Every histogram in the
// repo uses DefaultBuckets (observe hard-codes the layout and snapshots carry
// it verbatim), so bucket-wise addition is exact, not an approximation. Empty
// histogram snapshots are skipped: their zeroed Min/Max are presentation
// values (see snapshot), not observations.
func (m *metrics) merge(s Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range s.Counters {
		m.count[k] += v
	}
	for k, v := range s.Gauges {
		m.gauges[k] = v
	}
	for k, hs := range s.Histograms {
		if hs.Count == 0 {
			continue
		}
		h := m.hists[k]
		if h == nil {
			h = &histogram{
				min:    math.Inf(1),
				max:    math.Inf(-1),
				counts: make([]int64, len(DefaultBuckets)),
			}
			m.hists[k] = h
		}
		h.count += hs.Count
		h.sum += hs.Sum
		if hs.Min < h.min {
			h.min = hs.Min
		}
		if hs.Max > h.max {
			h.max = hs.Max
		}
		for i, c := range hs.Counts {
			if i < len(h.counts) {
				h.counts[i] += c
			}
		}
		h.overflow += hs.Overflow
	}
}

// HistogramSnapshot is the exported copy of one histogram. Bounds are the
// inclusive upper bounds of Counts; Overflow counts observations above the
// last bound. All fields are finite so the snapshot survives encoding/json.
type HistogramSnapshot struct {
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	Overflow int64     `json:"overflow"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a Recorder's metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{}
	if len(m.count) > 0 {
		out.Counters = make(map[string]int64, len(m.count))
		for k, v := range m.count {
			out.Counters[k] = v
		}
	}
	if len(m.gauges) > 0 {
		out.Gauges = make(map[string]float64, len(m.gauges))
		for k, v := range m.gauges {
			out.Gauges[k] = v
		}
	}
	if len(m.hists) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(m.hists))
		for k, h := range m.hists {
			hs := HistogramSnapshot{
				Count:    h.count,
				Sum:      h.sum,
				Min:      h.min,
				Max:      h.max,
				Bounds:   DefaultBuckets,
				Counts:   append([]int64(nil), h.counts...),
				Overflow: h.overflow,
			}
			if h.count == 0 {
				hs.Min, hs.Max = 0, 0
			}
			out.Histograms[k] = hs
		}
	}
	return out
}
