package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

// TestSpanRingPairsAndWraps drives a ring directly as a sink: begin/end pairs
// complete into ring entries, leaked begins stay pending, and the ring keeps
// only the newest spans once full.
func TestSpanRingPairsAndWraps(t *testing.T) {
	ring := NewSpanRing(2)
	rec := New(ring)
	for i := 0; i < 3; i++ {
		sp := rec.BeginSpan("solver.run", Int("round", i))
		rec.Emit("solver.iter", Int("iter", 1))
		sp.End(Int("evals", 10*i))
	}
	//mube:vet-ignore spanend — deliberately left open: the ring must not report it
	rec.BeginSpan("watch.tick")

	spans := ring.Spans()
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(spans))
	}
	for i, s := range spans {
		if s.Name != "solver.run" {
			t.Errorf("span %d name %q", i, s.Name)
		}
		round, evals := int64(i+1), int64(10*(i+1)) // oldest evicted
		if s.Attrs[0].K != "round" || s.Attrs[0].V != round {
			t.Errorf("span %d begin attr = %+v, want round=%d", i, s.Attrs[0], round)
		}
		if last := s.Attrs[len(s.Attrs)-1]; last.K != "evals" || last.V != evals {
			t.Errorf("span %d end attr = %+v, want evals=%d", i, last, evals)
		}
	}
}

// TestSpanRingClockedDuration checks DurNS is derived from the begin/end
// stamps and that NaN attr values null out (JSON cannot carry them).
func TestSpanRingClockedDuration(t *testing.T) {
	ring := NewSpanRing(0)
	clk := &fakeClock{}
	rec := NewClocked(ring, clk)
	sp := rec.BeginSpan("probe.build")
	clk.advance(5e6)
	sp.End(Float("bad", math.NaN()))
	spans := ring.Spans()
	if len(spans) != 1 || spans[0].DurNS != 5e6 || !spans[0].Stamped {
		t.Fatalf("spans = %+v, want one stamped 5ms span", spans)
	}
	if a := spans[0].Attrs[0]; a.K != "bad" || a.V != nil {
		t.Errorf("NaN attr survived: %+v", a)
	}
	if _, err := json.Marshal(spans); err != nil {
		t.Errorf("ring spans not marshalable: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	rec := New(nil)
	rec.Add("eval.calls", 42)
	rec.Gauge("solver.best_q", 0.75)
	rec.Observe("iter.improve_gap", 3)
	rec.Observe("iter.improve_gap", 900)
	rec.Observe("iter.improve_gap", 5000) // overflow bucket

	var b strings.Builder
	if err := WritePrometheus(&b, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mube_eval_calls counter\nmube_eval_calls 42\n",
		"# TYPE mube_solver_best_q gauge\nmube_solver_best_q 0.75\n",
		"# TYPE mube_iter_improve_gap histogram\n",
		"mube_iter_improve_gap_bucket{le=\"4\"} 1\n",
		"mube_iter_improve_gap_bucket{le=\"1024\"} 2\n",
		"mube_iter_improve_gap_bucket{le=\"+Inf\"} 3\n",
		"mube_iter_improve_gap_sum 5903\n",
		"mube_iter_improve_gap_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition is not deterministic across renders")
	}
}

// TestServeSmoke boots the live endpoint on an ephemeral port and exercises
// /metrics, /spans, and the pprof index over real HTTP.
func TestServeSmoke(t *testing.T) {
	ring := NewSpanRing(0)
	rec := New(ring)
	rec.Add("eval.calls", 7)
	sp := rec.BeginSpan("session.solve", Str("solver", "tabu"))
	sp.End(Float("best_q", 0.5))

	srv, err := Serve("127.0.0.1:0", rec, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "mube_eval_calls 7") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	var spans []SpanInfo
	if err := json.Unmarshal([]byte(get("/spans")), &spans); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "session.solve" {
		t.Errorf("/spans = %+v, want one session.solve span", spans)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index:\n%.300s", idx)
	}

	// nil recorder and ring must serve empty documents, not crash: every
	// command wires -debug-addr through unconditionally.
	srv2, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get("http://" + srv2.Addr() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("nil-ring /spans = %q, want []", body)
	}
}
