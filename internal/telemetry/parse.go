package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ParseTrace decodes a JSONL trace (as written by JSONLSink) back into
// events, preserving attribute order. It is the exact inverse of the sink's
// encoding for every value the Attr constructors can produce; null values
// (the encoding of NaN/±Inf, which JSON cannot carry) come back as attrs with
// a nil Value and re-encode as null. Lines are decoded token-by-token because
// a map round-trip would destroy the attribute order the trace format
// guarantees.
func ParseTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var out []Event
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("telemetry: parse trace line %d: %w", len(out)+1, err)
		}
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			return out, fmt.Errorf("telemetry: parse trace line %d: unexpected token %v", len(out)+1, tok)
		}
		ev, err := parseEvent(dec)
		if err != nil {
			return out, fmt.Errorf("telemetry: parse trace line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// parseEvent consumes one event object's keys (the opening brace is already
// read) in order.
func parseEvent(dec *json.Decoder) (Event, error) {
	var ev Event
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return ev, err
		}
		key, ok := kt.(string)
		if !ok {
			return ev, fmt.Errorf("non-string key %v", kt)
		}
		vt, err := dec.Token()
		if err != nil {
			return ev, err
		}
		if d, ok := vt.(json.Delim); ok {
			return ev, fmt.Errorf("key %q: nested value %v not allowed in a trace line", key, d)
		}
		switch key {
		case "seq":
			if ev.Seq, err = asInt(vt); err != nil {
				return ev, fmt.Errorf("seq: %w", err)
			}
		case "ev":
			s, ok := vt.(string)
			if !ok {
				return ev, fmt.Errorf("ev: not a string: %v", vt)
			}
			ev.Name = s
		case "t_ns":
			if ev.TNano, err = asInt(vt); err != nil {
				return ev, fmt.Errorf("t_ns: %w", err)
			}
			ev.Stamped = true
		case "sid":
			if ev.SID, err = asInt(vt); err != nil {
				return ev, fmt.Errorf("sid: %w", err)
			}
		case "psid":
			if ev.PSID, err = asInt(vt); err != nil {
				return ev, fmt.Errorf("psid: %w", err)
			}
			ev.IsBegin = true
		default:
			a := Attr{Key: key}
			switch v := vt.(type) {
			case json.Number:
				// The sink writes int64s without a decimal point or exponent,
				// so the lexical form distinguishes the two numeric kinds.
				if strings.ContainsAny(v.String(), ".eE") {
					if a.Value, err = v.Float64(); err != nil {
						return ev, fmt.Errorf("%s: %w", key, err)
					}
				} else {
					if a.Value, err = v.Int64(); err != nil {
						return ev, fmt.Errorf("%s: %w", key, err)
					}
				}
			case string:
				a.Value = v
			case bool:
				a.Value = v
			case nil:
				a.Value = nil // was NaN/±Inf; re-encodes as null
			default:
				return ev, fmt.Errorf("%s: unsupported value %v", key, vt)
			}
			ev.Attrs = append(ev.Attrs, a)
		}
	}
	if _, err := dec.Token(); err != nil { // closing brace
		return ev, err
	}
	if ev.Seq == 0 || ev.Name == "" {
		return ev, fmt.Errorf("missing seq or ev field")
	}
	return ev, nil
}

func asInt(tok json.Token) (int64, error) {
	n, ok := tok.(json.Number)
	if !ok {
		return 0, fmt.Errorf("not a number: %v", tok)
	}
	return n.Int64()
}
