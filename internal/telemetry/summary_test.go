package telemetry

import (
	"math"
	"testing"
)

// TestParseConfigLineEdges pins the lenient corners of the config-line
// grammar: the prefix is exact, empty payloads are valid, tokens without '='
// are skipped, values keep any '=' after the first, and repeats last-win.
func TestParseConfigLineEdges(t *testing.T) {
	if _, ok := ParseConfigLine(""); ok {
		t.Error("empty line parsed as config")
	}
	if _, ok := ParseConfigLine("mube-config:x=1"); ok {
		t.Error("prefix without the separating space accepted")
	}
	if _, ok := ParseConfigLine(" mube-config: x=1"); ok {
		t.Error("leading whitespace before the prefix accepted")
	}
	cfg, ok := ParseConfigLine("mube-config: ")
	if !ok || len(cfg) != 0 {
		t.Errorf("empty payload: cfg=%v ok=%v, want empty map", cfg, ok)
	}
	cfg, ok = ParseConfigLine("mube-config: solo x=1 = y")
	if !ok || len(cfg) != 2 || cfg["x"] != "1" || cfg[""] != "" {
		t.Errorf("mixed tokens: cfg=%v ok=%v", cfg, ok)
	}
	cfg, _ = ParseConfigLine("mube-config: spec=a=b.json k=1 k=2")
	if cfg["spec"] != "a=b.json" {
		t.Errorf("value with '=' truncated: %q", cfg["spec"])
	}
	if cfg["k"] != "2" {
		t.Errorf("duplicate key: %q, want last value", cfg["k"])
	}
	// Round trip through the renderer.
	cfg, ok = ParseConfigLine(ConfigLine(KVStr("scale", "quick"), KVInt("seed", 3)))
	if !ok || cfg["scale"] != "quick" || cfg["seed"] != "3" {
		t.Errorf("render/parse round trip: %v", cfg)
	}
}

// TestParseMetricsLineEdges pins the metrics-line grammar: exact prefix,
// empty objects, rejection of malformed or mistyped JSON, and the non-finite
// encoding (NaN/Inf render as null, which reads back as zero rather than
// failing the whole line).
func TestParseMetricsLineEdges(t *testing.T) {
	if _, ok := ParseMetricsLine("metrics: {}"); ok {
		t.Error("wrong prefix accepted")
	}
	vals, ok := ParseMetricsLine("mube-metrics: {}")
	if !ok || len(vals) != 0 {
		t.Errorf("empty object: vals=%v ok=%v", vals, ok)
	}
	for _, bad := range []string{
		"mube-metrics: ",
		"mube-metrics: {",
		"mube-metrics: [1,2]",
		`mube-metrics: {"a":"high"}`,
		`mube-metrics: {"a":1} trailing`,
	} {
		if vals, ok := ParseMetricsLine(bad); ok {
			t.Errorf("malformed line %q parsed: %v", bad, vals)
		}
	}
	line := MetricsLine(map[string]float64{
		"evals_per_sec": 78147.5,
		"q_recovery":    math.NaN(),
		"warm_frac":     math.Inf(1),
	})
	vals, ok = ParseMetricsLine(line)
	if !ok {
		t.Fatalf("round trip of non-finite values failed: %q", line)
	}
	//mube:vet-ignore floatcmp — 78147.5 is exactly representable and the JSON round trip must not perturb it
	if vals["evals_per_sec"] != 78147.5 {
		t.Errorf("evals_per_sec = %v", vals["evals_per_sec"])
	}
	// Non-finite values encode as null (JSON has no NaN/Inf) and decode to
	// zero; the key survives so consumers can tell "present but non-finite"
	// from "absent".
	for _, k := range []string{"q_recovery", "warm_frac"} {
		if v, present := vals[k]; !present || v != 0 {
			t.Errorf("%s = %v (present=%v), want 0 from null", k, v, present)
		}
	}
}
