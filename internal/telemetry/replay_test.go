package telemetry

import (
	"bytes"
	"math"
	"testing"
)

// emitScript drives one recorder through a fixed span/event/metric script.
// Used to compare direct emission on a parent against child capture + replay.
func emitScript(r *Recorder) {
	sp := r.BeginSpan("partition.group", Int("group", 0), Int("sources", 7))
	r.Emit("solver.run", Str("solver", "tabu"))
	inner := r.BeginSpan("eval.batch", Int("jobs", 3))
	r.Emit("eval.done", Int("evals", 3))
	inner.End(Int("scored", 3))
	r.Add("evals", 3)
	r.Observe("batch_size", 3)
	r.Gauge("best_q", 0.75)
	sp.End(Float("best_q", 0.75), Int("evals", 3))
	r.Emit("loose", Int("tail", 1)) // outside any span: sid 0 in the child
}

// TestReplayMatchesDirectEmission is the byte-level contract behind parallel
// partitioned solving: capturing a span subtree on a child recorder and
// replaying it into the parent must produce exactly the bytes the parent
// would have written had the subtree been emitted on it directly.
func TestReplayMatchesDirectEmission(t *testing.T) {
	// Direct: everything emitted on one recorder, under an enclosing span.
	var direct bytes.Buffer
	dr := New(NewJSONLSink(&direct))
	dsp := dr.BeginSpan("partition.run", Int("groups", 1))
	emitScript(dr)
	dsp.End()

	// Replayed: the same script runs on a child over a memory sink, then the
	// captured stream is replayed into the parent at the same stack depth.
	var replayed bytes.Buffer
	pr := New(NewJSONLSink(&replayed))
	psp := pr.BeginSpan("partition.run", Int("groups", 1))
	mem := &MemorySink{}
	child := pr.Child(mem)
	emitScript(child)
	pr.Replay(mem.Events())
	pr.Merge(child.Snapshot())
	psp.End()

	if !bytes.Equal(direct.Bytes(), replayed.Bytes()) {
		t.Fatalf("replayed trace differs from direct emission:\ndirect:\n%s\nreplayed:\n%s",
			direct.Bytes(), replayed.Bytes())
	}

	ds, rs := dr.Snapshot(), pr.Snapshot()
	if ds.Counter("evals") != rs.Counter("evals") {
		t.Fatalf("merged counter evals = %d, direct %d", rs.Counter("evals"), ds.Counter("evals"))
	}
	// Merge copies gauge and histogram values verbatim, so bit-level equality
	// is the contract here, not approximate equality.
	//mube:vet-ignore floatcmp — merge must preserve the exact bits
	if math.Float64bits(ds.Gauges["best_q"]) != math.Float64bits(rs.Gauges["best_q"]) {
		t.Fatalf("merged gauge best_q = %v, direct %v", rs.Gauges["best_q"], ds.Gauges["best_q"])
	}
	dh, rh := ds.Histograms["batch_size"], rs.Histograms["batch_size"]
	//mube:vet-ignore floatcmp — merge must preserve the exact bits
	if dh.Count != rh.Count || math.Float64bits(dh.Sum) != math.Float64bits(rh.Sum) ||
		//mube:vet-ignore floatcmp — merge must preserve the exact bits
		math.Float64bits(dh.Min) != math.Float64bits(rh.Min) || math.Float64bits(dh.Max) != math.Float64bits(rh.Max) {
		t.Fatalf("merged histogram batch_size = %+v, direct %+v", rh, dh)
	}
}

// TestReplayTwoChildrenInOrder pins the multi-group shape: two children
// captured independently (as concurrent sub-solves would) and replayed in
// group order must equal the fully sequential emission of both subtrees.
func TestReplayTwoChildrenInOrder(t *testing.T) {
	var direct bytes.Buffer
	dr := New(NewJSONLSink(&direct))
	emitScript(dr)
	emitScript(dr)

	var replayed bytes.Buffer
	pr := New(NewJSONLSink(&replayed))
	sinks := []*MemorySink{&MemorySink{}, &MemorySink{}}
	for _, s := range sinks {
		emitScript(pr.Child(s))
	}
	for _, s := range sinks {
		pr.Replay(s.Events())
	}
	if !bytes.Equal(direct.Bytes(), replayed.Bytes()) {
		t.Fatalf("two-child replay differs from sequential emission:\ndirect:\n%s\nreplayed:\n%s",
			direct.Bytes(), replayed.Bytes())
	}
}

// TestReplayNilAndEmpty keeps the no-op contract: nil recorders and empty
// streams are safe everywhere.
func TestReplayNilAndEmpty(t *testing.T) {
	var nr *Recorder
	if c := nr.Child(&MemorySink{}); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	nr.Replay([]Event{{Seq: 1, Name: "x"}})
	nr.Merge(Snapshot{Counters: map[string]int64{"a": 1}})

	r := New(nil)
	r.Replay(nil)
	r.Merge(Snapshot{})
	if got := r.Snapshot().Counter("a"); got != 0 {
		t.Fatalf("counter a = %d after empty merge, want 0", got)
	}
}

// TestHistogramMergeOverflow checks bucket-wise histogram merging including
// the overflow bucket and min/max across children.
func TestHistogramMergeOverflow(t *testing.T) {
	a, b := New(nil), New(nil)
	a.Observe("h", 0.5)
	a.Observe("h", 2000) // overflow
	b.Observe("h", 17)

	m := New(nil)
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())

	want := New(nil)
	want.Observe("h", 0.5)
	want.Observe("h", 2000)
	want.Observe("h", 17)

	wh, gh := want.Snapshot().Histograms["h"], m.Snapshot().Histograms["h"]
	//mube:vet-ignore floatcmp — bucket-wise merge is exact, not approximate
	if wh.Count != gh.Count || math.Float64bits(wh.Sum) != math.Float64bits(gh.Sum) ||
		//mube:vet-ignore floatcmp — bucket-wise merge is exact, not approximate
		math.Float64bits(wh.Min) != math.Float64bits(gh.Min) ||
		//mube:vet-ignore floatcmp — bucket-wise merge is exact, not approximate
		math.Float64bits(wh.Max) != math.Float64bits(gh.Max) || wh.Overflow != gh.Overflow {
		t.Fatalf("merged histogram %+v, want %+v", gh, wh)
	}
	for i := range wh.Counts {
		if wh.Counts[i] != gh.Counts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, gh.Counts[i], wh.Counts[i])
		}
	}
}
