// Package session implements µBE's iterative user-feedback model (§6): the
// user specifies an optimization problem, µBE solves it, and the user reacts
// to the solution — pinning GAs from the output as constraints for the next
// iteration, requiring sources, re-weighting quality dimensions, or moving
// the matching threshold — until satisfied.
//
// By design the constraints the user provides have the same structure as the
// mediated schema µBE outputs, so "modify the output of the current
// iteration to get the input constraints of the next" is a first-class
// operation (PinGA / RequireSolutionSource).
package session

import (
	"context"
	"fmt"
	"time"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/solvers"
	"mube/internal/probe"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/telemetry"
)

// Spec is the user-editable problem specification of one iteration.
type Spec struct {
	// Weights are the QEF weights (must validate against the QEF list).
	Weights qef.Weights
	// Theta and Beta are the matching threshold and GA size bound.
	Theta float64
	Beta  int
	// Linkage selects cluster similarity (max is the paper's).
	Linkage match.Linkage
	// MaxSources is m.
	MaxSources int
	// Constraints are the current source and GA constraints.
	Constraints constraint.Set
	// Solver names the algorithm ("tabu" by default).
	Solver string
	// SolverOptions bound the solver run.
	SolverOptions opt.Options
	// Health records how the universe was acquired, when it was built by a
	// fault-tolerant prober (probe.BuildUniverse): which sources degraded to
	// uncooperative, which were dropped, and how many retries each took. Nil
	// when the universe was loaded directly. It rides along in the spec so a
	// resumed exploration (SaveSpec/LoadSpec) still knows which sources were
	// misbehaving when the decisions baked into its constraints were made.
	Health *probe.HealthReport
	// TracePath records where this exploration's solver trace is written
	// ("" = tracing off). Like Health it is bookkeeping, not problem input:
	// it rides along in the persisted spec so a resumed session keeps
	// appending to the same trace file, but it never influences the solve.
	TracePath string
}

// Clone deep-copies the spec.
func (s Spec) Clone() Spec {
	c := s
	c.Weights = s.Weights.Clone()
	c.Constraints = s.Constraints.Clone()
	c.Health = s.Health.Clone()
	return c
}

// RemapSources rewrites every SourceID the spec carries for a universe whose
// IDs were compacted by probe.ReprobeUniverse or source.Universe.Remove
// (kept[newID] == oldID, both producers' convention). Constraints that
// reference a dropped source fail the remap with an error wrapping
// constraint.ErrConstraintDropped: after compaction a stale ID is a *valid*
// index into the new universe pointing at some other source, so passing it
// through would silently bind the user's guidance to the wrong source.
// SolverOptions.Initial is only a warm-start hint, so dropped members are
// removed from it rather than rejected.
func (s Spec) RemapSources(kept []schema.SourceID) (Spec, error) {
	out := s.Clone()
	cons, err := s.Constraints.Remap(kept)
	if err != nil {
		return Spec{}, fmt.Errorf("session: remap spec: %w", err)
	}
	out.Constraints = cons
	if init := s.SolverOptions.Initial; init != nil {
		oldToNew := make(map[schema.SourceID]schema.SourceID, len(kept))
		for newID, oldID := range kept {
			oldToNew[oldID] = schema.SourceID(newID)
		}
		remapped := make([]schema.SourceID, 0, len(init))
		for _, id := range init {
			if nid, ok := oldToNew[id]; ok {
				remapped = append(remapped, nid)
			}
		}
		out.SolverOptions.Initial = remapped
	}
	return out, nil
}

// Iteration records one solved problem: the spec that was solved, the
// solution, and the wall-clock time the solver took.
type Iteration struct {
	Index    int
	Spec     Spec
	Solution *opt.Solution
	Elapsed  time.Duration
}

// Clock returns the current time. Sessions read time only through their
// Clock so iteration timing is injectable in tests and the deterministic
// core stays free of bare time.Now calls (enforced by mube-vet's
// determinism analyzer).
type Clock func() time.Time

// Session is one user's iterative exploration over a fixed universe and QEF
// set.
type Session struct {
	u       *source.Universe
	qefs    []qef.QEF
	base    *match.Matcher // carries the similarity table; re-parameterized per iteration
	spec    Spec
	history []Iteration
	clock   Clock
	rec     *telemetry.Recorder
}

// Config assembles a session.
type Config struct {
	// Universe is U (required).
	Universe *source.Universe
	// QEFs defaults to the four main QEFs plus an MTTF wsum QEF if any
	// source defines "mttf".
	QEFs []qef.QEF
	// Weights defaults to uniform over QEFs.
	Weights qef.Weights
	// Similarity, Theta, Beta, Linkage parameterize matching; zero values
	// take the match package defaults.
	Match match.Config
	// MaxSources defaults to min(20, N).
	MaxSources int
	// Solver defaults to "tabu".
	Solver string
	// SolverOptions bound each Solve call.
	SolverOptions opt.Options
	// Health optionally carries the acquisition health report for Universe
	// (see Spec.Health).
	Health *probe.HealthReport
	// Clock supplies iteration timestamps; defaults to time.Now.
	Clock Clock
	// Recorder receives solver traces and evaluator metrics for every Solve
	// (nil = telemetry off). It is injected into each solve's opt.Options, so
	// results stay bit-identical with or without it.
	Recorder *telemetry.Recorder
	// TracePath is recorded in the spec when tracing is on; see
	// Spec.TracePath.
	TracePath string
}

// New opens a session.
func New(cfg Config) (*Session, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("session: nil universe")
	}
	qefs := cfg.QEFs
	if qefs == nil {
		qefs = qef.MainQEFs()
		if _, _, ok := cfg.Universe.CharacteristicRange("mttf"); ok {
			qefs = append(qefs, qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
		}
	}
	weights := cfg.Weights
	if weights == nil {
		weights = qef.Uniform(qefs)
	}
	matcher, err := match.New(cfg.Universe, cfg.Match)
	if err != nil {
		return nil, err
	}
	maxSources := cfg.MaxSources
	if maxSources == 0 {
		maxSources = 20
		if n := cfg.Universe.Len(); n < maxSources {
			maxSources = n
		}
	}
	solver := cfg.Solver
	if solver == "" {
		solver = "tabu"
	}
	if _, err := solvers.ByName(solver); err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Session{
		u:     cfg.Universe,
		qefs:  qefs,
		base:  matcher,
		clock: clock,
		rec:   cfg.Recorder,
		spec: Spec{
			Weights:       weights,
			Theta:         matcher.Config().Theta,
			Beta:          matcher.Config().Beta,
			Linkage:       matcher.Config().Linkage,
			MaxSources:    maxSources,
			Solver:        solver,
			SolverOptions: cfg.SolverOptions,
			Health:        cfg.Health.Clone(),
			TracePath:     cfg.TracePath,
		},
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate checks the current spec without solving.
func (s *Session) validate() error {
	if err := s.spec.Weights.Validate(s.qefs); err != nil {
		return err
	}
	if err := s.spec.Constraints.Validate(s.u); err != nil {
		return err
	}
	if s.spec.MaxSources < 1 || s.spec.MaxSources > s.u.Len() {
		return fmt.Errorf("session: MaxSources %d out of [1,%d]", s.spec.MaxSources, s.u.Len())
	}
	if req := s.spec.Constraints.RequiredSources(); len(req) > s.spec.MaxSources {
		return fmt.Errorf("session: %d required sources exceed MaxSources %d", len(req), s.spec.MaxSources)
	}
	if _, err := s.base.WithParams(s.spec.Theta, s.spec.Beta, s.spec.Linkage); err != nil {
		return err
	}
	return nil
}

// Universe returns the session's universe.
func (s *Session) Universe() *source.Universe { return s.u }

// Spec returns a copy of the current problem specification.
func (s *Session) Spec() Spec { return s.spec.Clone() }

// QEFs returns the session's QEF list.
func (s *Session) QEFs() []qef.QEF { return s.qefs }

// SetWeights replaces the full weight set.
func (s *Session) SetWeights(w qef.Weights) error {
	if err := w.Validate(s.qefs); err != nil {
		return err
	}
	s.spec.Weights = w.Clone()
	return nil
}

// SetWeight emphasizes one QEF: it sets the named weight and rescales the
// others proportionally so the weights still sum to 1 — the paper's
// "set new weights ... to guide the search towards different parts of the
// search space" without forcing the user to rebalance by hand.
func (s *Session) SetWeight(name string, w float64) error {
	if _, ok := s.spec.Weights[name]; !ok {
		return fmt.Errorf("session: unknown QEF %q", name)
	}
	if w < 0 || w > 1 {
		return fmt.Errorf("session: weight %v out of [0,1]", w)
	}
	rest := 0.0
	for n, v := range s.spec.Weights {
		if n != name {
			rest += v
		}
	}
	next := s.spec.Weights.Clone()
	next[name] = w
	for n, v := range next {
		if n == name {
			continue
		}
		if rest == 0 {
			next[n] = (1 - w) / float64(len(next)-1)
		} else {
			next[n] = v / rest * (1 - w)
		}
	}
	if err := next.Validate(s.qefs); err != nil {
		return err
	}
	s.spec.Weights = next
	return nil
}

// SetTheta moves the matching threshold for subsequent iterations.
func (s *Session) SetTheta(theta float64) error {
	if _, err := s.base.WithParams(theta, s.spec.Beta, s.spec.Linkage); err != nil {
		return err
	}
	s.spec.Theta = theta
	return nil
}

// SetBeta moves the GA size lower bound.
func (s *Session) SetBeta(beta int) error {
	if _, err := s.base.WithParams(s.spec.Theta, beta, s.spec.Linkage); err != nil {
		return err
	}
	s.spec.Beta = beta
	return nil
}

// SetMaxSources changes m.
func (s *Session) SetMaxSources(m int) error {
	old := s.spec.MaxSources
	s.spec.MaxSources = m
	if err := s.validate(); err != nil {
		s.spec.MaxSources = old
		return err
	}
	return nil
}

// SetSolver selects the algorithm by name.
func (s *Session) SetSolver(name string) error {
	if _, err := solvers.ByName(name); err != nil {
		return err
	}
	s.spec.Solver = name
	return nil
}

// SetSolverOptions bounds subsequent Solve calls.
func (s *Session) SetSolverOptions(o opt.Options) { s.spec.SolverOptions = o }

// Instrument attaches a telemetry recorder for subsequent Solve calls (nil
// disables). tracePath is recorded in the spec for persistence; pass "" when
// the recorder has no trace sink.
func (s *Session) Instrument(rec *telemetry.Recorder, tracePath string) {
	s.rec = rec
	s.spec.TracePath = tracePath
}

// RequireSource adds a source constraint.
func (s *Session) RequireSource(id schema.SourceID) error {
	for _, have := range s.spec.Constraints.Sources {
		if have == id {
			return nil
		}
	}
	next := s.spec.Constraints.Clone()
	next.Sources = append(next.Sources, id)
	return s.setConstraints(next)
}

// DropSourceConstraint removes a source constraint (GA-implied sources are
// unaffected).
func (s *Session) DropSourceConstraint(id schema.SourceID) {
	next := s.spec.Constraints.Clone()
	out := next.Sources[:0]
	for _, have := range next.Sources {
		if have != id {
			out = append(out, have)
		}
	}
	next.Sources = out
	s.spec.Constraints = next
}

// PinGA adds a GA constraint — typically a GA taken (possibly after editing)
// from a previous iteration's output schema. This is the core of the
// Matching-By-Example loop.
func (s *Session) PinGA(g schema.GA) error {
	next := s.spec.Constraints.Clone()
	next.GAs = append(next.GAs, g)
	return s.setConstraints(next)
}

// PinSolutionGA pins GA index gaIdx of iteration iter's solution schema as a
// constraint for subsequent iterations.
func (s *Session) PinSolutionGA(iter, gaIdx int) error {
	if iter < 0 || iter >= len(s.history) {
		return fmt.Errorf("session: iteration %d out of range", iter)
	}
	sol := s.history[iter].Solution
	if gaIdx < 0 || gaIdx >= sol.Schema.Len() {
		return fmt.Errorf("session: GA %d out of range for iteration %d", gaIdx, iter)
	}
	return s.PinGA(sol.Schema.GAs[gaIdx])
}

// ClearConstraints removes all constraints.
func (s *Session) ClearConstraints() {
	s.spec.Constraints = constraint.Set{}
}

// setConstraints installs a constraint set after validation.
func (s *Session) setConstraints(c constraint.Set) error {
	old := s.spec.Constraints
	s.spec.Constraints = c
	if err := s.validate(); err != nil {
		s.spec.Constraints = old
		return err
	}
	return nil
}

// Problem materializes the current spec as an opt.Problem.
func (s *Session) Problem() (*opt.Problem, error) {
	// Re-parameterizing the matcher re-clusters the attribute graph — the
	// match-index build, the one potentially heavy step in materialization.
	msp := s.rec.BeginSpan("match.index",
		telemetry.Float("theta", s.spec.Theta),
		telemetry.Int("beta", s.spec.Beta))
	matcher, err := s.base.WithParams(s.spec.Theta, s.spec.Beta, s.spec.Linkage)
	if err != nil {
		msp.End(telemetry.Str("err", err.Error()))
		return nil, err
	}
	msp.End()
	quality, err := qef.NewQuality(s.qefs, s.spec.Weights)
	if err != nil {
		return nil, err
	}
	return &opt.Problem{
		Universe:    s.u,
		Matcher:     matcher,
		Quality:     quality,
		MaxSources:  s.spec.MaxSources,
		Constraints: s.spec.Constraints.Clone(),
	}, nil
}

// Solve runs one µBE iteration: solve the current spec, append the result to
// the history, and return it.
func (s *Session) Solve() (*opt.Solution, error) {
	//mube:vet-ignore ctxflow — convenience wrapper; SolveContext is the cancelable API
	return s.SolveContext(context.Background())
}

// SolveContext is Solve with a cancellation context: a canceled or expired
// ctx stops the solver within one evaluation batch, and the iteration is
// still recorded with the best-so-far solution and its Status.
func (s *Session) SolveContext(ctx context.Context) (*opt.Solution, error) {
	solver, err := solvers.ByName(s.spec.Solver)
	if err != nil {
		return nil, err
	}
	opts := s.spec.SolverOptions
	// Vary the seed across iterations (unless pinned) so re-solving the
	// same spec can escape an unlucky start.
	if opts.Seed == 0 {
		opts.Seed = int64(len(s.history) + 1)
	}
	// Warm-start from the previous iteration's solution: the user is
	// refining, not starting over. Solvers fall back to a random start if
	// the previous solution no longer satisfies the current constraints.
	if opts.Initial == nil {
		if last := s.Last(); last != nil {
			opts.Initial = last.Solution.IDs
		}
	}
	if opts.Recorder == nil {
		opts.Recorder = s.rec
	}
	span := s.rec.BeginSpan("session.solve",
		telemetry.Str("solver", s.spec.Solver),
		telemetry.Int("iteration", len(s.history)),
		telemetry.Int64("seed", opts.Seed))
	// Problem materialization re-parameterizes the matcher (the match-index
	// build); its own child span makes that cost attributable separately
	// from the solver's search.
	psp := s.rec.BeginSpan("session.problem")
	p, err := s.Problem()
	if err != nil {
		psp.End(telemetry.Str("err", err.Error()))
		span.End()
		return nil, err
	}
	psp.End(telemetry.Int("sources", s.u.Len()))
	start := s.clock()
	sol, err := solver.Solve(ctx, p, opts)
	if err != nil {
		span.End(telemetry.Str("err", err.Error()))
		return nil, err
	}
	span.End(
		telemetry.Float("best_q", sol.Quality),
		telemetry.Int("evals", sol.Evals),
		telemetry.Str("status", string(sol.Status)))
	s.history = append(s.history, Iteration{
		Index:    len(s.history),
		Spec:     s.spec.Clone(),
		Solution: sol,
		Elapsed:  s.clock().Sub(start),
	})
	return sol, nil
}

// History returns the recorded iterations.
func (s *Session) History() []Iteration { return s.history }

// Last returns the most recent iteration, or nil.
func (s *Session) Last() *Iteration {
	if len(s.history) == 0 {
		return nil
	}
	return &s.history[len(s.history)-1]
}
