package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"mube/internal/constraint"
	"mube/internal/fault"
	"mube/internal/opt"
	"mube/internal/probe"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/telemetry"
	"mube/internal/testutil"
)

// TestSessionTelemetry covers the session-level telemetry wiring: a
// configured recorder sees the solve span and evaluator metrics, the trace
// path survives a spec save/load round-trip, a Config.TracePath overrides the
// persisted one, and Instrument swaps the recorder live.
func TestSessionTelemetry(t *testing.T) {
	u := testutil.BooksUniverse(t)
	sink := &telemetry.MemorySink{}
	s, err := New(Config{
		Universe:      u,
		MaxSources:    3,
		Recorder:      telemetry.New(sink),
		TracePath:     "run.jsonl",
		SolverOptions: opt.Options{Seed: 1, MaxEvals: 200, MaxIters: 30, Patience: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) < 2 || evs[0].Name != "session.solve.begin" || evs[len(evs)-1].Name != "session.solve.end" {
		t.Fatalf("solve span missing: %d events, first %q", len(evs), evs[0].Name)
	}

	var buf bytes.Buffer
	if err := s.SaveSpec(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	loaded, err := LoadSpec(bytes.NewReader(saved), Config{Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Spec().TracePath; got != "run.jsonl" {
		t.Errorf("trace path after round-trip = %q, want run.jsonl", got)
	}
	over, err := LoadSpec(bytes.NewReader(saved), Config{Universe: u, TracePath: "other.jsonl"})
	if err != nil {
		t.Fatal(err)
	}
	if got := over.Spec().TracePath; got != "other.jsonl" {
		t.Errorf("config trace path did not override: %q", got)
	}

	// Instrument replaces the recorder for subsequent solves and updates the
	// recorded path; a nil recorder turns telemetry off.
	s.Instrument(nil, "")
	if got := s.Spec().TracePath; got != "" {
		t.Errorf("Instrument(nil) left trace path %q", got)
	}
	n := len(sink.Events())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Events()); got != n {
		t.Errorf("detached sink still received events: %d -> %d", n, got)
	}
}

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := New(Config{
		Universe:      testutil.BooksUniverse(t),
		MaxSources:    4,
		SolverOptions: opt.Options{Seed: 1, MaxEvals: 300, MaxIters: 60, Patience: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDefaults(t *testing.T) {
	s := newSession(t)
	spec := s.Spec()
	if spec.Solver != "tabu" {
		t.Errorf("default solver = %q", spec.Solver)
	}
	if spec.Theta == 0 || spec.Beta == 0 {
		t.Errorf("matching defaults not applied: %+v", spec)
	}
	// The fixture defines mttf, so the default QEF set has 5 entries.
	if len(s.QEFs()) != 5 {
		t.Errorf("QEFs = %d, want 5", len(s.QEFs()))
	}
	if err := spec.Weights.Validate(s.QEFs()); err != nil {
		t.Errorf("default weights invalid: %v", err)
	}
}

func TestNewRejectsBad(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil universe accepted")
	}
	u := testutil.BooksUniverse(t)
	if _, err := New(Config{Universe: u, Solver: "nope"}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := New(Config{Universe: u, MaxSources: 99}); err == nil {
		t.Error("MaxSources > N accepted")
	}
	if _, err := New(Config{Universe: u, Weights: qef.Weights{"match": 1}}); err == nil {
		t.Error("bad weights accepted")
	}
}

func TestSolveRecordsHistory(t *testing.T) {
	s := newSession(t)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality <= 0 {
		t.Errorf("quality = %v", sol.Quality)
	}
	if len(s.History()) != 1 || s.Last() == nil {
		t.Fatalf("history not recorded")
	}
	it := s.Last()
	if it.Index != 0 || it.Solution != sol || it.Elapsed <= 0 {
		t.Errorf("iteration record = %+v", it)
	}
	// Second iteration appends.
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 2 || s.Last().Index != 1 {
		t.Errorf("second iteration not recorded")
	}
}

func TestIterativeRefinementLoop(t *testing.T) {
	// The canonical µBE loop: solve, pin a GA from the output, require one
	// of the chosen sources, re-solve; the new solution must honor both.
	s := newSession(t)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.MatchOK || sol.Schema.Len() == 0 {
		t.Fatal("first iteration produced no schema")
	}
	pinned := sol.Schema.GAs[0]
	if err := s.PinSolutionGA(0, 0); err != nil {
		t.Fatal(err)
	}
	keep := sol.IDs[0]
	if err := s.RequireSource(keep); err != nil {
		t.Fatal(err)
	}

	sol2, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range sol2.IDs {
		if id == keep {
			found = true
		}
	}
	if !found {
		t.Errorf("required source %d missing from %v", keep, sol2.IDs)
	}
	if sol2.MatchOK && !sol2.Schema.Subsumes(schema.NewMediated(pinned)) {
		t.Error("pinned GA not subsumed by new schema")
	}
}

func TestPinSolutionGABounds(t *testing.T) {
	s := newSession(t)
	if err := s.PinSolutionGA(0, 0); err == nil {
		t.Error("pin before any iteration accepted")
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := s.PinSolutionGA(0, 999); err == nil {
		t.Error("GA index out of range accepted")
	}
	if err := s.PinSolutionGA(5, 0); err == nil {
		t.Error("iteration out of range accepted")
	}
}

func TestSetWeightRebalances(t *testing.T) {
	s := newSession(t)
	if err := s.SetWeight(qef.NameCardinality, 0.6); err != nil {
		t.Fatal(err)
	}
	w := s.Spec().Weights
	if math.Abs(w[qef.NameCardinality]-0.6) > 1e-12 {
		t.Errorf("card weight = %v", w[qef.NameCardinality])
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v after SetWeight", sum)
	}
	if err := s.SetWeight("unknown", 0.1); err == nil {
		t.Error("unknown QEF accepted")
	}
	if err := s.SetWeight(qef.NameCardinality, 1.5); err == nil {
		t.Error("weight > 1 accepted")
	}
	// Setting to 1 zeroes the rest.
	if err := s.SetWeight(qef.NameCardinality, 1); err != nil {
		t.Fatal(err)
	}
	for name, v := range s.Spec().Weights {
		if name != qef.NameCardinality && v != 0 {
			t.Errorf("weight %s = %v, want 0", name, v)
		}
	}
	// And back down from the degenerate state.
	if err := s.SetWeight(qef.NameCardinality, 0.5); err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, v := range s.Spec().Weights {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v after recovering from degenerate state", sum)
	}
}

func TestSettersValidate(t *testing.T) {
	s := newSession(t)
	if err := s.SetTheta(0.8); err != nil {
		t.Errorf("SetTheta: %v", err)
	}
	if !testutil.AlmostEqual(s.Spec().Theta, 0.8) {
		t.Error("theta not applied")
	}
	if err := s.SetTheta(2); err == nil {
		t.Error("theta out of range accepted")
	}
	if err := s.SetBeta(3); err != nil {
		t.Errorf("SetBeta: %v", err)
	}
	if err := s.SetBeta(-1); err == nil {
		t.Error("negative beta accepted")
	}
	if err := s.SetMaxSources(2); err != nil {
		t.Errorf("SetMaxSources: %v", err)
	}
	if err := s.SetMaxSources(0); err == nil {
		t.Error("MaxSources 0 accepted")
	}
	if s.Spec().MaxSources != 2 {
		t.Error("failed SetMaxSources mutated spec")
	}
	if err := s.SetSolver("anneal"); err != nil {
		t.Errorf("SetSolver: %v", err)
	}
	if err := s.SetSolver("nope"); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestRequireAndDropSource(t *testing.T) {
	s := newSession(t)
	if err := s.RequireSource(3); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireSource(3); err != nil {
		t.Fatal("idempotent RequireSource failed")
	}
	if got := s.Spec().Constraints.Sources; len(got) != 1 || got[0] != 3 {
		t.Errorf("constraints = %v", got)
	}
	// Requiring more sources than MaxSources fails and rolls back.
	if err := s.SetMaxSources(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireSource(5); err == nil {
		t.Error("over-constrained RequireSource accepted")
	}
	if len(s.Spec().Constraints.Sources) != 1 {
		t.Error("failed RequireSource mutated constraints")
	}
	s.DropSourceConstraint(3)
	if len(s.Spec().Constraints.Sources) != 0 {
		t.Error("DropSourceConstraint failed")
	}
	s.ClearConstraints()
	if !s.Spec().Constraints.Empty() {
		t.Error("ClearConstraints failed")
	}
}

func TestPinGAValidates(t *testing.T) {
	s := newSession(t)
	bad := schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 0},
		schema.AttrRef{Source: 0, Attr: 1},
	)
	if err := s.PinGA(bad); err == nil {
		t.Error("invalid GA accepted")
	}
	good := schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 0},
		schema.AttrRef{Source: 1, Attr: 0},
	)
	if err := s.PinGA(good); err != nil {
		t.Errorf("valid GA rejected: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	s := newSession(t)
	if err := s.RequireSource(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.UniverseSize != 12 || len(rep.Iterations) != 1 {
		t.Errorf("report = %+v", rep)
	}
	ir := rep.Iterations[0]
	if ir.Solver != "tabu" || ir.Quality <= 0 || len(ir.Sources) == 0 {
		t.Errorf("iteration report = %+v", ir)
	}
	if len(ir.Constraints.Sources) != 1 || ir.Constraints.Sources[0] != 2 {
		t.Errorf("constraint report = %+v", ir.Constraints)
	}
	if ir.ElapsedMS <= 0 {
		t.Error("elapsed not recorded")
	}
	if len(ir.Schema) == 0 {
		t.Error("schema missing from report")
	}
}

func TestSpecCloneIsolation(t *testing.T) {
	s := newSession(t)
	spec := s.Spec()
	spec.Weights[qef.NameCardinality] = 0.9
	spec.Constraints.Sources = append(spec.Constraints.Sources, 1)
	if testutil.AlmostEqual(s.Spec().Weights[qef.NameCardinality], 0.9) {
		t.Error("Spec() shares weights")
	}
	if len(s.Spec().Constraints.Sources) != 0 {
		t.Error("Spec() shares constraints")
	}
}

func TestWarmStartAcrossIterations(t *testing.T) {
	// Re-solving the same spec warm-starts from the previous solution, so
	// quality never regresses across iterations of an unchanged problem.
	s := newSession(t)
	first, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		next, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if next.Quality+1e-9 < first.Quality {
			t.Fatalf("iteration %d regressed: %.4f < %.4f", i+2, next.Quality, first.Quality)
		}
		first = next
	}
}

func TestSpecSaveLoadRoundTrip(t *testing.T) {
	s := newSession(t)
	if err := s.SetWeight(qef.NameCardinality, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTheta(0.6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBeta(3); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireSource(4); err != nil {
		t.Fatal(err)
	}
	if err := s.PinGA(schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 0},
		schema.AttrRef{Source: 1, Attr: 0},
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSolver("anneal"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.SaveSpec(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(&buf, Config{Universe: s.Universe()})
	if err != nil {
		t.Fatal(err)
	}
	got, want := loaded.Spec(), s.Spec()
	if !testutil.AlmostEqual(got.Theta, want.Theta) || got.Beta != want.Beta || got.MaxSources != want.MaxSources ||
		got.Solver != want.Solver || got.Linkage != want.Linkage {
		t.Errorf("spec mismatch: %+v vs %+v", got, want)
	}
	for name, v := range want.Weights {
		if !testutil.AlmostEqual(got.Weights[name], v) {
			t.Errorf("weight %s = %v, want %v", name, got.Weights[name], v)
		}
	}
	if len(got.Constraints.Sources) != 1 || got.Constraints.Sources[0] != 4 {
		t.Errorf("source constraints = %v", got.Constraints.Sources)
	}
	if len(got.Constraints.GAs) != 1 || !got.Constraints.GAs[0].Equal(want.Constraints.GAs[0]) {
		t.Errorf("GA constraints = %v", got.Constraints.GAs)
	}
	// The loaded session solves.
	if _, err := loaded.Solve(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSpecRejectsBad(t *testing.T) {
	u := testutil.BooksUniverse(t)
	if _, err := LoadSpec(bytes.NewBufferString("{bad"), Config{Universe: u}); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadSpec(bytes.NewBufferString(`{"theta":0.5,"beta":2,"max_sources":4,"solver":"tabu","linkage":"diag"}`), Config{Universe: u}); err == nil {
		t.Error("unknown linkage accepted")
	}
	// Constraint referencing a source outside the universe.
	if _, err := LoadSpec(bytes.NewBufferString(`{"theta":0.5,"beta":2,"max_sources":4,"solver":"tabu","source_constraints":[99]}`), Config{Universe: u}); err == nil {
		t.Error("stale constraints accepted")
	}
}

// TestSpecRoundTripWithDegradedUniverse runs the full robustness loop: the
// fixture universe is re-acquired under a total-failure fault plan (every
// cooperative source degrades to uncooperative), the session is created over
// the degraded universe with its health report, and the spec must survive a
// save/load round-trip with the health intact — so a resumed exploration
// still knows which sources were misbehaving when the spec was written.
func TestSpecRoundTripWithDegradedUniverse(t *testing.T) {
	u := testutil.BooksUniverse(t)
	inj := fault.NewInjector(fault.Plan{Seed: 6, Rate: 1, HandshakeFrac: 1e-12})
	du, health, _, err := probe.New(probe.Policy{}, nil, inj, 1).ReprobeUniverse(u)
	if err != nil {
		t.Fatal(err)
	}
	if health.Degraded == 0 || du.Len() != u.Len() {
		t.Fatalf("fixture not degraded as expected: %s", health)
	}

	s, err := New(Config{
		Universe:      du,
		MaxSources:    4,
		Health:        health,
		SolverOptions: opt.Options{Seed: 1, MaxEvals: 300, MaxIters: 60, Patience: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Spec().Health; got == nil || got.Degraded != health.Degraded {
		t.Fatalf("spec health = %+v, want the acquisition report", got)
	}

	// A fully degraded universe still solves: data QEFs score zero, schema
	// QEFs keep working (§4's fallback).
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != opt.StatusCompleted && sol.Status != opt.StatusExhausted {
		t.Errorf("degraded solve status = %q", sol.Status)
	}

	var buf bytes.Buffer
	if err := s.SaveSpec(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(&buf, Config{Universe: du})
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Spec().Health
	if got == nil {
		t.Fatal("health report lost in save/load round-trip")
	}
	if got.Plan != health.Plan || got.Degraded != health.Degraded || len(got.Sources) != len(health.Sources) {
		t.Errorf("health round-trip mismatch: %s vs %s", got, health)
	}
	// Mutating the loaded report must not reach back into the session spec.
	got.Sources[0].Name = "mutated"
	if loaded.Spec().Health.Sources[0].Name == "mutated" {
		t.Error("Spec() leaked its health report by reference")
	}
}

// TestSolveContextCancellation: a session solve under a dead context still
// records an iteration, and the report carries the canceled status.
func TestSolveContextCancellation(t *testing.T) {
	s := newSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := s.SolveContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != opt.StatusCanceled {
		t.Errorf("status = %q, want %q", sol.Status, opt.StatusCanceled)
	}
	rep := s.BuildReport()
	if len(rep.Iterations) != 1 || rep.Iterations[0].Status != string(opt.StatusCanceled) {
		t.Errorf("report iteration status = %+v", rep.Iterations)
	}
}

// TestInjectedClock pins iteration timing to a fake clock: with time
// injected, Elapsed is exactly the interval the clock hands out, so session
// timing is testable without sleeping and the deterministic core never
// touches time.Now (mube-vet's determinism analyzer enforces the latter).
func TestInjectedClock(t *testing.T) {
	base := time.Unix(1700000000, 0)
	calls := 0
	s, err := New(Config{
		Universe: testutil.BooksUniverse(t),
		Clock: func() time.Time {
			calls++
			return base.Add(time.Duration(calls) * 250 * time.Millisecond)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("clock consulted %d times per Solve, want 2", calls)
	}
	if got := s.Last().Elapsed; got != 250*time.Millisecond {
		t.Errorf("Elapsed = %v, want the injected clock's 250ms", got)
	}
}

// TestSpecRemapSources is the regression test for carrying a spec across a
// universe compaction (ReprobeUniverse / Universe.Remove): constraints must
// follow their sources to the new IDs, constraints on a dropped source must
// fail with the named error (never silently bind to whichever source
// inherited the stale index), and the warm-start hint is filtered, not
// rejected.
func TestSpecRemapSources(t *testing.T) {
	s := newSession(t)
	if err := s.RequireSource(3); err != nil {
		t.Fatal(err)
	}
	spec := s.Spec()
	spec.SolverOptions.Initial = []schema.SourceID{1, 3}
	spec.Constraints.GAs = []schema.GA{schema.NewGA(
		schema.AttrRef{Source: 2, Attr: 0},
		schema.AttrRef{Source: 3, Attr: 0},
	)}

	// Source 1 died; 0,2,3,… survive with compacted IDs.
	kept := make([]schema.SourceID, 0, s.Universe().Len()-1)
	for id := 0; id < s.Universe().Len(); id++ {
		if id != 1 {
			kept = append(kept, schema.SourceID(id))
		}
	}
	out, err := spec.RemapSources(kept)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Constraints.Sources) != 1 || out.Constraints.Sources[0] != 2 {
		t.Errorf("source constraint remapped to %v, want [2]", out.Constraints.Sources)
	}
	wantGA := schema.NewGA(
		schema.AttrRef{Source: 1, Attr: 0},
		schema.AttrRef{Source: 2, Attr: 0},
	)
	if !out.Constraints.GAs[0].Equal(wantGA) {
		t.Errorf("GA constraint remapped to %v, want %v", out.Constraints.GAs[0], wantGA)
	}
	if got := out.SolverOptions.Initial; len(got) != 1 || got[0] != 2 {
		t.Errorf("Initial remapped to %v, want [2] (dropped member filtered)", got)
	}

	// Constraining the dropped source itself must be a named error: after
	// compaction the stale ID 3 would be a valid index pointing at source 4.
	spec2 := s.Spec()
	kept2 := make([]schema.SourceID, 0, s.Universe().Len()-1)
	for id := 0; id < s.Universe().Len(); id++ {
		if id != 3 {
			kept2 = append(kept2, schema.SourceID(id))
		}
	}
	if _, err := spec2.RemapSources(kept2); !errors.Is(err, constraint.ErrConstraintDropped) {
		t.Errorf("RemapSources with dropped constrained source = %v, want ErrConstraintDropped", err)
	}
}
