package session

import (
	"encoding/json"
	"io"
	"strconv"

	"mube/internal/schema"
)

// Report is the JSON-serializable record of a session — one entry per
// iteration, with the solved spec and the solution in human-readable form.
// It is the artifact `mube interactive` and `mube solve` emit.
type Report struct {
	UniverseSize int               `json:"universe_size"`
	Iterations   []IterationReport `json:"iterations"`
}

// IterationReport is one iteration's record.
type IterationReport struct {
	Index       int                `json:"index"`
	Weights     map[string]float64 `json:"weights"`
	Theta       float64            `json:"theta"`
	Beta        int                `json:"beta"`
	MaxSources  int                `json:"max_sources"`
	Solver      string             `json:"solver"`
	Constraints ConstraintReport   `json:"constraints"`
	Sources     []string           `json:"sources"`
	SourceIDs   []int              `json:"source_ids"`
	Quality     float64            `json:"quality"`
	Breakdown   map[string]float64 `json:"breakdown"`
	Schema      []GAReport         `json:"schema"`
	MatchOK     bool               `json:"match_ok"`
	Evals       int                `json:"evals"`
	Status      string             `json:"status,omitempty"`
	ElapsedMS   float64            `json:"elapsed_ms"`
}

// ConstraintReport summarizes the constraints of one iteration.
type ConstraintReport struct {
	Sources []int      `json:"sources,omitempty"`
	GAs     [][]string `json:"gas,omitempty"` // rendered "s<id>:<attr>" entries
}

// GAReport is one mediated-schema GA with resolved attribute names.
type GAReport struct {
	Attrs   []string `json:"attrs"` // "s<id>:<attr name>"
	Quality float64  `json:"quality"`
}

// BuildReport snapshots the session history.
func (s *Session) BuildReport() Report {
	rep := Report{UniverseSize: s.u.Len()}
	for _, it := range s.history {
		ir := IterationReport{
			Index:      it.Index,
			Weights:    it.Spec.Weights,
			Theta:      it.Spec.Theta,
			Beta:       it.Spec.Beta,
			MaxSources: it.Spec.MaxSources,
			Solver:     it.Spec.Solver,
			Quality:    it.Solution.Quality,
			Breakdown:  it.Solution.Breakdown,
			MatchOK:    it.Solution.MatchOK,
			Evals:      it.Solution.Evals,
			Status:     string(it.Solution.Status),
			ElapsedMS:  float64(it.Elapsed.Microseconds()) / 1000,
		}
		for _, id := range it.Spec.Constraints.Sources {
			ir.Constraints.Sources = append(ir.Constraints.Sources, int(id))
		}
		for _, g := range it.Spec.Constraints.GAs {
			ir.Constraints.GAs = append(ir.Constraints.GAs, s.renderGA(g))
		}
		ir.Sources = it.Solution.SourceNames(s.u)
		for _, id := range it.Solution.IDs {
			ir.SourceIDs = append(ir.SourceIDs, int(id))
		}
		for i, g := range it.Solution.Schema.GAs {
			gr := GAReport{Attrs: s.renderGA(g)}
			if i < len(it.Solution.GAQuality) {
				gr.Quality = it.Solution.GAQuality[i]
			}
			ir.Schema = append(ir.Schema, gr)
		}
		rep.Iterations = append(rep.Iterations, ir)
	}
	return rep
}

// renderGA resolves a GA's attribute references to "s<id>:<name>" strings.
func (s *Session) renderGA(g schema.GA) []string {
	out := make([]string, 0, g.Size())
	for _, r := range g.Refs() {
		out = append(out, "s"+strconv.Itoa(int(r.Source))+":"+s.u.AttrName(r))
	}
	return out
}

// WriteReport serializes the session history as indented JSON.
func (s *Session) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.BuildReport())
}
