package session

import (
	"encoding/json"
	"fmt"
	"io"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/probe"
	"mube/internal/schema"
)

// specJSON is the wire form of a Spec. GA constraints serialize as
// [source, attr] pairs.
type specJSON struct {
	Weights    map[string]float64 `json:"weights"`
	Theta      float64            `json:"theta"`
	Beta       int                `json:"beta"`
	Linkage    string             `json:"linkage"`
	MaxSources int                `json:"max_sources"`
	Solver     string             `json:"solver"`
	Sources    []int              `json:"source_constraints,omitempty"`
	GAs        [][][2]int         `json:"ga_constraints,omitempty"`
	Seed       int64              `json:"seed,omitempty"`
	MaxEvals   int                `json:"max_evals,omitempty"`
	MaxIters   int                `json:"max_iters,omitempty"`
	Patience   int                `json:"patience,omitempty"`
	// Health preserves the acquisition health report across save/load, so a
	// resumed exploration still knows which sources were degraded when its
	// constraints were chosen.
	Health *probe.HealthReport `json:"health,omitempty"`
	// Trace preserves the solver-trace path (Spec.TracePath), so a resumed
	// exploration keeps writing to the same trace file.
	Trace string `json:"trace,omitempty"`
}

// SaveSpec serializes the session's current problem specification so an
// exploration can be resumed later (LoadSpec) against the same universe.
// History is not saved — the spec *is* the accumulated state of the
// exploration (constraints, weights, thresholds).
func (s *Session) SaveSpec(w io.Writer) error {
	spec := s.spec
	out := specJSON{
		Weights:    spec.Weights,
		Theta:      spec.Theta,
		Beta:       spec.Beta,
		Linkage:    spec.Linkage.String(),
		MaxSources: spec.MaxSources,
		Solver:     spec.Solver,
		Seed:       spec.SolverOptions.Seed,
		MaxEvals:   spec.SolverOptions.MaxEvals,
		MaxIters:   spec.SolverOptions.MaxIters,
		Patience:   spec.SolverOptions.Patience,
		Health:     spec.Health,
		Trace:      spec.TracePath,
	}
	for _, id := range spec.Constraints.Sources {
		out.Sources = append(out.Sources, int(id))
	}
	for _, g := range spec.Constraints.GAs {
		var refs [][2]int
		for _, r := range g.Refs() {
			refs = append(refs, [2]int{int(r.Source), r.Attr})
		}
		out.GAs = append(out.GAs, refs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadSpec opens a session over cfg.Universe (and cfg.QEFs, if set) with the
// saved specification applied. The universe must be the one the spec was
// saved against — constraints are validated and an error is returned if they
// no longer fit.
func LoadSpec(r io.Reader, cfg Config) (*Session, error) {
	var in specJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("session: decode spec: %w", err)
	}
	linkage := match.MaxLinkage
	switch in.Linkage {
	case "", "max":
	case "avg":
		linkage = match.AvgLinkage
	default:
		return nil, fmt.Errorf("session: unknown linkage %q", in.Linkage)
	}
	cfg.Match.Theta = in.Theta
	cfg.Match.Beta = in.Beta
	cfg.Match.Linkage = linkage
	cfg.MaxSources = in.MaxSources
	cfg.Solver = in.Solver
	if in.Weights != nil {
		w := make(map[string]float64, len(in.Weights))
		for k, v := range in.Weights {
			w[k] = v
		}
		cfg.Weights = w
	}
	cfg.SolverOptions = opt.Options{
		Seed:     in.Seed,
		MaxEvals: in.MaxEvals,
		MaxIters: in.MaxIters,
		Patience: in.Patience,
	}
	cfg.Health = in.Health
	if cfg.TracePath == "" {
		cfg.TracePath = in.Trace
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	var cons constraint.Set
	for _, id := range in.Sources {
		cons.Sources = append(cons.Sources, schema.SourceID(id))
	}
	for _, refs := range in.GAs {
		ga := make([]schema.AttrRef, 0, len(refs))
		for _, r := range refs {
			ga = append(ga, schema.AttrRef{Source: schema.SourceID(r[0]), Attr: r[1]})
		}
		cons.GAs = append(cons.GAs, schema.NewGA(ga...))
	}
	if err := s.setConstraints(cons); err != nil {
		return nil, err
	}
	return s, nil
}
