package schema

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ref(s, a int) AttrRef { return AttrRef{Source: SourceID(s), Attr: a} }

func TestNewGASortsAndDedups(t *testing.T) {
	g := NewGA(ref(3, 1), ref(0, 2), ref(3, 1), ref(0, 0))
	want := []AttrRef{ref(0, 0), ref(0, 2), ref(3, 1)}
	got := g.Refs()
	if len(got) != len(want) {
		t.Fatalf("refs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGAValid(t *testing.T) {
	if (GA{}).Valid() {
		t.Error("empty GA must be invalid (g ≠ φ)")
	}
	if !NewGA(ref(0, 1)).Valid() {
		t.Error("singleton GA should be valid")
	}
	if NewGA(ref(0, 1), ref(0, 2)).Valid() {
		t.Error("two attributes from one source must be invalid")
	}
	if !NewGA(ref(0, 1), ref(1, 1), ref(2, 0)).Valid() {
		t.Error("one attribute per source should be valid")
	}
}

func TestGAContains(t *testing.T) {
	g := NewGA(ref(0, 1), ref(2, 3), ref(5, 0))
	if !g.Contains(ref(2, 3)) {
		t.Error("Contains missed a member")
	}
	if g.Contains(ref(2, 4)) {
		t.Error("Contains found a non-member")
	}
	if !g.ContainsAll(NewGA(ref(0, 1), ref(5, 0))) {
		t.Error("ContainsAll missed a subset")
	}
	if g.ContainsAll(NewGA(ref(0, 1), ref(9, 9))) {
		t.Error("ContainsAll accepted a non-subset")
	}
}

func TestGAMerge(t *testing.T) {
	a := NewGA(ref(0, 1), ref(1, 0))
	b := NewGA(ref(2, 2))
	c := NewGA(ref(1, 3))
	if !a.CanMerge(b) {
		t.Error("disjoint-source GAs should merge")
	}
	if a.CanMerge(c) {
		t.Error("GAs sharing source 1 must not merge")
	}
	u := a.Union(b)
	if u.Size() != 3 || !u.Valid() {
		t.Errorf("union = %v, want valid size-3 GA", u)
	}
	// Union with a source collision yields an invalid GA.
	if a.Union(c).Valid() {
		t.Error("colliding union should be invalid")
	}
}

func TestGAIntersects(t *testing.T) {
	a := NewGA(ref(0, 1), ref(4, 2))
	if !a.Intersects(NewGA(ref(4, 2), ref(9, 9))) {
		t.Error("shared ref not detected")
	}
	if a.Intersects(NewGA(ref(4, 3))) {
		t.Error("same source, different attr is not an intersection of refs")
	}
}

func TestMediatedValidity(t *testing.T) {
	m := NewMediated(
		NewGA(ref(0, 0), ref(1, 0)),
		NewGA(ref(0, 1), ref(2, 0)),
	)
	ids := []SourceID{0, 1, 2}
	if !m.ValidOn(ids) {
		t.Error("expected valid mediated schema")
	}
	if !m.Disjoint() {
		t.Error("expected disjoint GAs")
	}
	// Fails span when a source contributes nothing.
	if m.ValidOn([]SourceID{0, 1, 2, 3}) {
		t.Error("schema should not span source 3")
	}
	// Overlapping GAs are invalid.
	bad := NewMediated(
		NewGA(ref(0, 0), ref(1, 0)),
		NewGA(ref(0, 0), ref(2, 0)),
	)
	if bad.Disjoint() || bad.ValidOn(ids) {
		t.Error("overlapping GAs must be invalid")
	}
}

func TestSubsumption(t *testing.T) {
	big := NewMediated(
		NewGA(ref(0, 0), ref(1, 0), ref(2, 1)),
		NewGA(ref(0, 1), ref(3, 0)),
	)
	small := NewMediated(
		NewGA(ref(0, 0), ref(2, 1)),
		NewGA(ref(3, 0)),
	)
	if !big.Subsumes(small) {
		t.Error("big should subsume small")
	}
	if small.Subsumes(big) {
		t.Error("small should not subsume big")
	}
	// A GA split across two GAs of m is not subsumed.
	split := NewMediated(NewGA(ref(0, 0), ref(3, 0)))
	if big.Subsumes(split) {
		t.Error("GA spanning two of big's GAs must not be subsumed")
	}
}

// randomGA builds a random (always valid) GA over up to 8 sources.
func randomGA(r *rand.Rand) GA {
	n := 1 + r.Intn(5)
	refs := make([]AttrRef, 0, n)
	used := map[int]bool{}
	for len(refs) < n {
		s := r.Intn(8)
		if used[s] {
			continue
		}
		used[s] = true
		refs = append(refs, ref(s, r.Intn(4)))
	}
	return NewGA(refs...)
}

func TestSubsumptionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Reflexivity: every mediated schema subsumes itself.
	refl := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m := NewMediated(randomGA(rr), randomGA(rr))
		return m.Subsumes(m)
	}
	if err := quick.Check(refl, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	// Transitivity on a constructed chain: m2 ⊑ m1 and m1 ⊑ m0 ⇒ m2 ⊑ m0.
	trans := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomGA(rr)
		refs := g.Refs()
		if len(refs) < 3 {
			return true
		}
		m0 := NewMediated(g)
		m1 := NewMediated(NewGA(refs[:2]...))
		m2 := NewMediated(NewGA(refs[:1]...))
		return m0.Subsumes(m1) && m1.Subsumes(m2) && m0.Subsumes(m2)
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Errorf("transitivity: %v", err)
	}
	// Union of mergeable GAs is valid and contains both parts.
	union := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomGA(rr), randomGA(rr)
		if !a.CanMerge(b) {
			return true
		}
		u := a.Union(b)
		return u.Valid() && u.ContainsAll(a) && u.ContainsAll(b)
	}
	if err := quick.Check(union, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Errorf("union: %v", err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("title", "author", "isbn")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Name(1) != "author" {
		t.Errorf("Name(1) = %q", s.Name(1))
	}
	if s.IndexOf("isbn") != 2 || s.IndexOf("missing") != -1 {
		t.Error("IndexOf failed")
	}
	if s.String() != "{title, author, isbn}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestGAKeyAndString(t *testing.T) {
	g := NewGA(ref(1, 2), ref(0, 3))
	if g.Key() != "0.3|1.2" {
		t.Errorf("Key = %q", g.Key())
	}
	if g.String() != "[s0.a3 s1.a2]" {
		t.Errorf("String = %q", g.String())
	}
}

type mapNamer map[AttrRef]string

func (m mapNamer) AttrName(r AttrRef) string { return m[r] }

func TestMediatedRender(t *testing.T) {
	m := NewMediated(NewGA(ref(0, 0), ref(1, 1)))
	n := mapNamer{ref(0, 0): "author", ref(1, 1): "writer"}
	got := m.Render(n)
	want := "GA0: {s0:author, s1:writer}\n"
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
}

func TestMediatedSourceSet(t *testing.T) {
	m := NewMediated(NewGA(ref(0, 0), ref(2, 1)), NewGA(ref(5, 0)))
	set := m.SourceSet()
	for _, id := range []SourceID{0, 2, 5} {
		if _, ok := set[id]; !ok {
			t.Errorf("source %d missing from set", id)
		}
	}
	if len(set) != 3 {
		t.Errorf("set size = %d, want 3", len(set))
	}
}

func TestGAAccessors(t *testing.T) {
	g := NewGA(ref(0, 1), ref(3, 0))
	if g.Empty() {
		t.Error("non-empty GA reports Empty")
	}
	if !(GA{}).Empty() {
		t.Error("zero GA should be Empty")
	}
	srcs := g.Sources()
	if len(srcs) != 2 {
		t.Errorf("Sources = %v", srcs)
	}
	if !g.HasSource(3) || g.HasSource(7) {
		t.Error("HasSource broken")
	}
	if !g.Equal(NewGA(ref(3, 0), ref(0, 1))) {
		t.Error("Equal should ignore construction order")
	}
	if g.Equal(NewGA(ref(0, 1))) || g.Equal(NewGA(ref(0, 1), ref(3, 1))) {
		t.Error("Equal matched a different GA")
	}
}

func TestMediatedAccessors(t *testing.T) {
	m := NewMediated(NewGA(ref(0, 0)), NewGA(ref(1, 0)))
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
	s := m.String()
	if s != "[s0.a0]\n[s1.a0]" {
		t.Errorf("String = %q", s)
	}
	// ValidOn rejects a schema containing an invalid GA.
	bad := Mediated{GAs: []GA{NewGA(ref(0, 0), ref(0, 1))}}
	if bad.ValidOn([]SourceID{0}) {
		t.Error("schema with invalid GA accepted")
	}
	// Intersects with disjoint later-source ranges.
	a := NewGA(ref(0, 0), ref(1, 0))
	if a.Intersects(NewGA(ref(2, 0), ref(3, 0))) {
		t.Error("disjoint GAs intersect")
	}
}
