// Package schema defines the schema-level vocabulary of µBE: source schemas
// and their attributes, global attributes (GAs), and mediated schemas, with
// the validity and subsumption rules of §2 (Definitions 1–3 of the paper).
//
// µBE performs 1:1 matching over relational-style schemas: the schema of
// source i is a list of attributes (a_i1 … a_in_i). A GA is a set of
// attributes from different sources that all express the same concept; a
// mediated schema is a set of pairwise-disjoint GAs.
package schema

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// SourceID identifies a data source within a Universe. IDs are dense indexes
// assigned by the universe ([0, N)).
type SourceID int

// AttrRef identifies one attribute of one source: attribute Attr (an index
// into the source's schema) of source Source.
type AttrRef struct {
	Source SourceID
	Attr   int
}

// String renders the reference as "s<source>.a<attr>".
func (r AttrRef) String() string { return fmt.Sprintf("s%d.a%d", r.Source, r.Attr) }

// Less orders references by (Source, Attr).
func (r AttrRef) Less(o AttrRef) bool {
	if r.Source != o.Source {
		return r.Source < o.Source
	}
	return r.Attr < o.Attr
}

// Compare orders references by (Source, Attr), returning -1, 0, or +1.
func (r AttrRef) Compare(o AttrRef) int {
	switch {
	case r.Source != o.Source:
		if r.Source < o.Source {
			return -1
		}
		return 1
	case r.Attr != o.Attr:
		if r.Attr < o.Attr {
			return -1
		}
		return 1
	}
	return 0
}

// Schema is the exported schema of a single data source: an ordered list of
// attribute names.
type Schema struct {
	Attrs []string
}

// NewSchema returns a schema over the given attribute names.
func NewSchema(attrs ...string) Schema {
	return Schema{Attrs: append([]string(nil), attrs...)}
}

// Len returns the number of attributes.
func (s Schema) Len() int { return len(s.Attrs) }

// Name returns the name of attribute i.
func (s Schema) Name(i int) string { return s.Attrs[i] }

// IndexOf returns the index of the attribute with the given name, or -1.
func (s Schema) IndexOf(name string) int {
	for i, a := range s.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// String renders the schema as "{a, b, c}".
func (s Schema) String() string { return "{" + strings.Join(s.Attrs, ", ") + "}" }

// GA is a Global Attribute (Definition 1): a set of attributes, each from a
// distinct source, that map to the same mediated-schema attribute. The
// attribute set is kept sorted by (Source, Attr); use Add or NewGA to
// maintain the invariant.
type GA struct {
	refs []AttrRef
}

// NewGA builds a GA from the given references. The references are sorted and
// deduplicated; validity (one attribute per source) is NOT enforced here —
// use Valid to check it, matching the paper's definition which separates a
// GA from a *valid* GA.
func NewGA(refs ...AttrRef) GA {
	g := GA{refs: append([]AttrRef(nil), refs...)}
	slices.SortFunc(g.refs, AttrRef.Compare)
	// Deduplicate exact duplicates.
	out := g.refs[:0]
	for i, r := range g.refs {
		if i == 0 || r != g.refs[i-1] {
			out = append(out, r)
		}
	}
	g.refs = out
	return g
}

// GAFromSorted adopts refs as a GA without copying or sorting. The caller
// guarantees refs is sorted by (Source, Attr), free of duplicates, and never
// mutated afterwards. It exists for the matcher's arena-backed clustering hot
// path; everything else should use NewGA.
func GAFromSorted(refs []AttrRef) GA { return GA{refs: refs} }

// Refs returns the GA's attribute references in sorted order. The returned
// slice must not be modified.
func (g GA) Refs() []AttrRef { return g.refs }

// Size returns the number of attributes in the GA.
func (g GA) Size() int { return len(g.refs) }

// Empty reports whether the GA contains no attributes.
func (g GA) Empty() bool { return len(g.refs) == 0 }

// Valid reports whether g is a valid GA per Definition 1: non-empty and
// containing at most one attribute from any source.
func (g GA) Valid() bool {
	if len(g.refs) == 0 {
		return false
	}
	for i := 1; i < len(g.refs); i++ {
		if g.refs[i].Source == g.refs[i-1].Source {
			return false
		}
	}
	return true
}

// Sources returns the set of sources contributing to g.
func (g GA) Sources() map[SourceID]struct{} {
	m := make(map[SourceID]struct{}, len(g.refs))
	for _, r := range g.refs {
		m[r.Source] = struct{}{}
	}
	return m
}

// HasSource reports whether any attribute of g comes from source id.
func (g GA) HasSource(id SourceID) bool {
	for _, r := range g.refs {
		if r.Source == id {
			return true
		}
	}
	return false
}

// Contains reports whether g contains the reference r.
func (g GA) Contains(r AttrRef) bool {
	i := sort.Search(len(g.refs), func(i int) bool { return !g.refs[i].Less(r) })
	return i < len(g.refs) && g.refs[i] == r
}

// ContainsAll reports whether every reference of o is in g (o ⊆ g).
func (g GA) ContainsAll(o GA) bool {
	for _, r := range o.refs {
		if !g.Contains(r) {
			return false
		}
	}
	return true
}

// Intersects reports whether g and o share any attribute reference.
func (g GA) Intersects(o GA) bool {
	i, j := 0, 0
	for i < len(g.refs) && j < len(o.refs) {
		switch {
		case g.refs[i] == o.refs[j]:
			return true
		case g.refs[i].Less(o.refs[j]):
			i++
		default:
			j++
		}
	}
	return false
}

// Union returns the GA containing the attributes of both g and o. The result
// may be invalid (two attributes from one source); callers merging clusters
// must check CanMerge or Valid.
func (g GA) Union(o GA) GA {
	return NewGA(append(append([]AttrRef(nil), g.refs...), o.refs...)...)
}

// CanMerge reports whether g ∪ o is a valid GA, i.e. g and o draw from
// disjoint source sets (Algorithm 1's merge precondition).
func (g GA) CanMerge(o GA) bool {
	i, j := 0, 0
	for i < len(g.refs) && j < len(o.refs) {
		switch {
		case g.refs[i].Source == o.refs[j].Source:
			return false
		case g.refs[i].Source < o.refs[j].Source:
			i++
		default:
			j++
		}
	}
	return true
}

// Equal reports whether g and o contain exactly the same references.
func (g GA) Equal(o GA) bool {
	if len(g.refs) != len(o.refs) {
		return false
	}
	for i := range g.refs {
		if g.refs[i] != o.refs[i] {
			return false
		}
	}
	return true
}

// Compare orders GAs canonically: lexicographically over their sorted
// reference lists by (Source, Attr), shorter prefix first. Two GAs compare
// equal only when they contain exactly the same references. This numeric
// order is the canonical order of mediated schemas (NewMediated); unlike
// comparing Key() strings it allocates nothing and orders source IDs
// numerically (source 9 before source 10).
func (g GA) Compare(o GA) int {
	n := len(g.refs)
	if len(o.refs) < n {
		n = len(o.refs)
	}
	for i := 0; i < n; i++ {
		if c := g.refs[i].Compare(o.refs[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(g.refs) < len(o.refs):
		return -1
	case len(g.refs) > len(o.refs):
		return 1
	}
	return 0
}

// Key returns a canonical string key for the GA, usable as a map key.
func (g GA) Key() string {
	var b strings.Builder
	for i, r := range g.refs {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d.%d", r.Source, r.Attr)
	}
	return b.String()
}

// String renders the GA as "[s0.a1 s3.a0]".
func (g GA) String() string {
	parts := make([]string, len(g.refs))
	for i, r := range g.refs {
		parts[i] = r.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Mediated is a mediated schema (Definition 2): a set of GAs. µBE does not
// name GAs; a GA *is* the set of source attributes that map to it.
type Mediated struct {
	GAs []GA
}

// NewMediated builds a mediated schema over the given GAs, sorted into a
// canonical order for deterministic output.
func NewMediated(gas ...GA) Mediated {
	m := Mediated{GAs: append([]GA(nil), gas...)}
	slices.SortFunc(m.GAs, GA.Compare)
	return m
}

// Len returns the number of GAs.
func (m Mediated) Len() int { return len(m.GAs) }

// Disjoint reports whether no attribute appears in two GAs (first half of
// Definition 2's validity: the GAs represent different concepts).
func (m Mediated) Disjoint() bool {
	seen := make(map[AttrRef]struct{})
	for _, g := range m.GAs {
		for _, r := range g.Refs() {
			if _, dup := seen[r]; dup {
				return false
			}
			seen[r] = struct{}{}
		}
	}
	return true
}

// Spans reports whether every source in ids contributes at least one
// attribute to some GA (second half of Definition 2's validity).
func (m Mediated) Spans(ids []SourceID) bool {
	covered := make(map[SourceID]struct{})
	for _, g := range m.GAs {
		for _, r := range g.Refs() {
			covered[r.Source] = struct{}{}
		}
	}
	for _, id := range ids {
		if _, ok := covered[id]; !ok {
			return false
		}
	}
	return true
}

// ValidOn reports whether m is a valid mediated schema on the sources ids:
// every GA is individually valid, the GAs are pairwise disjoint, and m spans
// every source in ids (Definition 2).
func (m Mediated) ValidOn(ids []SourceID) bool {
	for _, g := range m.GAs {
		if !g.Valid() {
			return false
		}
	}
	return m.Disjoint() && m.Spans(ids)
}

// Subsumes reports whether m subsumes o (Definition 3, o ⊑ m): every GA of o
// is contained in some GA of m.
func (m Mediated) Subsumes(o Mediated) bool {
	for _, g2 := range o.GAs {
		found := false
		for _, g1 := range m.GAs {
			if g1.ContainsAll(g2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SourceSet returns the set of sources that contribute to any GA of m.
func (m Mediated) SourceSet() map[SourceID]struct{} {
	set := make(map[SourceID]struct{})
	for _, g := range m.GAs {
		for _, r := range g.Refs() {
			set[r.Source] = struct{}{}
		}
	}
	return set
}

// String renders the schema one GA per line.
func (m Mediated) String() string {
	parts := make([]string, len(m.GAs))
	for i, g := range m.GAs {
		parts[i] = g.String()
	}
	return strings.Join(parts, "\n")
}

// Namer resolves attribute references to names; *source.Universe implements
// it. It lets this package render human-readable mediated schemas without
// depending on the source package.
type Namer interface {
	AttrName(r AttrRef) string
}

// Render renders the mediated schema with attribute names resolved through n,
// e.g. "GA0: {s3:author, s17:writer}".
func (m Mediated) Render(n Namer) string {
	var b strings.Builder
	for i, g := range m.GAs {
		fmt.Fprintf(&b, "GA%d: {", i)
		for j, r := range g.Refs() {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "s%d:%s", r.Source, n.AttrName(r))
		}
		b.WriteString("}\n")
	}
	return b.String()
}
