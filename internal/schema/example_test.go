package schema_test

import (
	"fmt"

	"mube/internal/schema"
)

// ExampleGA shows GA construction, validity, and merging — the vocabulary of
// µBE's mediated schemas.
func ExampleGA() {
	author := schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 1},
		schema.AttrRef{Source: 3, Attr: 0},
	)
	fmt.Println("valid:", author.Valid())
	fmt.Println("size:", author.Size())

	// A GA may hold at most one attribute per source.
	clash := schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 1},
		schema.AttrRef{Source: 0, Attr: 2},
	)
	fmt.Println("clash valid:", clash.Valid())

	// Merging is allowed only across disjoint source sets.
	title := schema.NewGA(schema.AttrRef{Source: 2, Attr: 0})
	fmt.Println("can merge:", author.CanMerge(title))
	fmt.Println("merged:", author.Union(title))
	// Output:
	// valid: true
	// size: 2
	// clash valid: false
	// can merge: true
	// merged: [s0.a1 s2.a0 s3.a0]
}

// ExampleMediated_Subsumes shows the G ⊑ M test used for GA constraints.
func ExampleMediated_Subsumes() {
	grown := schema.NewMediated(schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 0},
		schema.AttrRef{Source: 1, Attr: 0},
		schema.AttrRef{Source: 2, Attr: 0},
	))
	constraint := schema.NewMediated(schema.NewGA(
		schema.AttrRef{Source: 0, Attr: 0},
		schema.AttrRef{Source: 1, Attr: 0},
	))
	fmt.Println(grown.Subsumes(constraint))
	fmt.Println(constraint.Subsumes(grown))
	// Output:
	// true
	// false
}
