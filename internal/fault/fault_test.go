package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mube/internal/source"
)

func TestPlanParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"rate=0.3,seed=7",
		"rate=0.1,seed=42,handshake=0.6",
		"rate=0.5,seed=1,latency=20ms",
		"rate=0.25,seed=9,latency=1s,flap=2s:0.25",
	}
	for _, want := range cases {
		p, err := ParsePlan(want)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", want, err)
		}
		if got := p.String(); got != want {
			t.Errorf("ParsePlan(%q).String() = %q", want, got)
		}
	}
}

func TestPlanParseDisabledAndErrors(t *testing.T) {
	for _, s := range []string{"", "none", "  none  "} {
		p, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if p.Enabled() {
			t.Errorf("ParsePlan(%q).Enabled() = true, want disabled", s)
		}
	}
	for _, s := range []string{
		"rate", "rate=2", "rate=-0.1", "handshake=1.5", "latency=abc",
		"flap=2s", "flap=2s:1.0", "bogus=1",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", s)
		}
	}
}

func TestInjectorNilAndDisabled(t *testing.T) {
	if inj := NewInjector(Plan{}); inj != nil {
		t.Fatalf("NewInjector(zero plan) = %v, want nil", inj)
	}
	var inj *Injector
	f := inj.Attempt("s1", 1, time.Time{})
	if f.Err != nil || f.Latency != 0 {
		t.Errorf("nil injector fate = %+v, want clean", f)
	}
	if p := inj.Plan(); p.Enabled() {
		t.Errorf("nil injector Plan().Enabled() = true")
	}
}

// TestInjectorDeterminism: the fate of (name, attempt) is a pure function of
// the plan — independent of call order and repeatable across injectors.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 7, Rate: 0.4, Latency: 10 * time.Millisecond}
	a := NewInjector(plan)
	b := NewInjector(plan)
	names := []string{"src-0", "src-1", "src-2", "src-3"}
	// Draw from b in reverse order to prove order independence.
	type key struct {
		name    string
		attempt int
	}
	got := make(map[key]Fate)
	for _, n := range names {
		for k := 1; k <= 4; k++ {
			got[key{n, k}] = a.Attempt(n, k, time.Time{})
		}
	}
	for i := len(names) - 1; i >= 0; i-- {
		for k := 4; k >= 1; k-- {
			f := b.Attempt(names[i], k, time.Time{})
			if want := got[key{names[i], k}]; f != want {
				t.Fatalf("fate(%s,%d) = %+v from b, %+v from a", names[i], k, f, want)
			}
		}
	}
}

func TestInjectorRateAndLatencyBounds(t *testing.T) {
	plan := Plan{Seed: 3, Rate: 0.3, Latency: 100 * time.Millisecond}
	inj := NewInjector(plan)
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		f := inj.Attempt("src", i+1, time.Time{})
		if f.Err != nil {
			fails++
			if !errors.Is(f.Err, ErrUnreachable) && !errors.Is(f.Err, ErrStream) {
				t.Fatalf("unexpected fate error %v", f.Err)
			}
			if errors.Is(f.Err, ErrStream) && f.FailAfter < 1 {
				t.Fatalf("stream fate FailAfter = %d, want >= 1", f.FailAfter)
			}
		}
		if f.Latency < 50*time.Millisecond || f.Latency >= 150*time.Millisecond {
			t.Fatalf("latency %v outside [0.5·L, 1.5·L)", f.Latency)
		}
	}
	// 0.3 ± generous slack over 2000 draws.
	if rate := float64(fails) / n; rate < 0.24 || rate > 0.36 {
		t.Errorf("empirical failure rate %.3f, want ≈0.30", rate)
	}
}

func TestFlapSchedule(t *testing.T) {
	plan := Plan{Seed: 5, FlapPeriod: time.Second, FlapDuty: 0.25}
	inj := NewInjector(plan)
	clock := NewVirtualClock(time.Time{})
	down := 0
	const steps = 400
	for i := 0; i < steps; i++ {
		if f := inj.Attempt("flappy", 1, clock.Now()); errors.Is(f.Err, ErrUnreachable) {
			down++
		}
		clock.Sleep(25 * time.Millisecond) // 40 samples per period
	}
	if frac := float64(down) / steps; frac < 0.2 || frac > 0.3 {
		t.Errorf("down fraction %.3f, want ≈ duty 0.25", frac)
	}
}

// sliceIter iterates a fixed tuple slice.
type sliceIter struct {
	tuples []source.TupleID
	i      int
}

func (it *sliceIter) Next() (source.TupleID, bool) {
	if it.i >= len(it.tuples) {
		return 0, false
	}
	t := it.tuples[it.i]
	it.i++
	return t, true
}

func TestStreamFates(t *testing.T) {
	tuples := []source.TupleID{10, 20, 30, 40, 50}
	// Clean fate: passes everything through.
	s := NewStream(&sliceIter{tuples: tuples}, Fate{})
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 || s.Err() != nil || s.Delivered() != 5 {
		t.Fatalf("clean stream: n=%d err=%v delivered=%d", n, s.Err(), s.Delivered())
	}

	// Handshake fate: fails before any tuple.
	s = NewStream(&sliceIter{tuples: tuples}, Fate{Err: ErrUnreachable})
	if _, ok := s.Next(); ok {
		t.Fatal("handshake fate delivered a tuple")
	}
	if !errors.Is(s.Err(), ErrUnreachable) {
		t.Fatalf("handshake stream err = %v", s.Err())
	}

	// Mid-stream fate: fails after FailAfter tuples.
	s = NewStream(&sliceIter{tuples: tuples}, Fate{Err: ErrStream, FailAfter: 3})
	n = 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 || !errors.Is(s.Err(), ErrStream) {
		t.Fatalf("mid-stream fate: delivered %d err=%v, want 3 tuples then ErrStream", n, s.Err())
	}

	// A failing fate whose FailAfter outlives the stream still fails at
	// exhaustion: the connection died before the final ack.
	s = NewStream(&sliceIter{tuples: tuples}, Fate{Err: ErrStream, FailAfter: 99})
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if !errors.Is(s.Err(), ErrStream) {
		t.Fatalf("exhaustion fate err = %v, want ErrStream", s.Err())
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(time.Time{})
	c.Sleep(time.Second)
	c.Sleep(-time.Hour) // negative sleeps are ignored
	if got := c.Now(); !got.Equal(time.Time{}.Add(time.Second)) {
		t.Errorf("clock at %v, want zero+1s", got)
	}
}

// TestVirtualClockConcurrent hammers Now and Sleep from many goroutines under
// -race: the clock must never tear and must account for every positive sleep
// exactly once. (Sequential probing keeps the deterministic core single-
// threaded, but telemetry recorders stamp events with the same clock from the
// solve goroutine while watch loops advance it — so the type itself must be
// safe.)
func TestVirtualClockConcurrent(t *testing.T) {
	c := NewVirtualClock(time.Time{})
	const (
		sleepers = 8
		readers  = 8
		perG     = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < sleepers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Sleep(time.Millisecond)
				c.Sleep(-time.Second) // ignored
			}
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := c.Now()
			for i := 0; i < perG; i++ {
				now := c.Now()
				if now.Before(prev) {
					t.Error("virtual clock moved backwards")
					return
				}
				prev = now
			}
		}()
	}
	wg.Wait()
	want := time.Time{}.Add(sleepers * perG * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Errorf("clock at %v after concurrent sleeps, want %v", got, want)
	}
}
