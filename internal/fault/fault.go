// Package fault provides a deterministic, seed-driven fault injector for
// Internet-scale source acquisition. µBE's premise is selecting sources from
// an open universe (paper §1–2), where unavailability is the common case, not
// the exception; this package lets the probing layer (internal/probe) and the
// experiment harness exercise exactly those conditions reproducibly.
//
// Everything is a pure function of the plan seed: the fate of probe attempt k
// against source "name" is derived by hashing (seed, name, k), never by
// consuming shared RNG state, so fault schedules are independent of probe
// order, worker count, and wall-clock time. Time itself is virtual: the
// injector and its consumers read an injected Clock (the determinism analyzer
// forbids time.Now/time.Sleep/time.After in this package), so latency and
// flap/outage schedules advance deterministically and tests complete
// instantly.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"mube/internal/source"
)

// Clock is the injected time source every fault-aware component reads.
// Sleeping advances the clock; nothing in the deterministic core ever blocks
// on wall time.
type Clock interface {
	// Now returns the current (virtual or real) time.
	Now() time.Time
	// Sleep advances the clock by d (virtual clocks return immediately).
	Sleep(d time.Duration)
}

// VirtualClock is a Clock that starts at a fixed instant and advances only
// when slept on. Now and Sleep are safe to call concurrently (a telemetry
// recorder stamping events from the solve goroutine may share the clock with
// a watch loop, and tests hammer it under -race); determinism is still the
// caller's to keep — probing is sequential by design, so the deterministic
// core never races sleeps against each other.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start. The zero time is
// a fine start for simulations: only durations matter.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual clock by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Injection errors. Consumers distinguish reachability (ErrUnreachable: the
// source never answered — counts toward the circuit breaker) from stream
// faults (ErrStream: the source answered but the scan died — retry-worthy)
// and deadline overruns (ErrDeadline: the probe outlived its budget).
var (
	ErrUnreachable = errors.New("fault: source unreachable")
	ErrStream      = errors.New("fault: tuple stream interrupted")
	ErrDeadline    = errors.New("fault: probe deadline exceeded")
)

// Plan is one reproducible fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed drives every fate draw. Two injectors with equal plans produce
	// bit-identical schedules.
	Seed int64
	// Rate is the probability in [0,1] that any given probe attempt fails.
	Rate float64
	// HandshakeFrac is the fraction of injected failures that occur at the
	// handshake (before any tuple flows) rather than mid-stream. Zero means
	// the default 0.5.
	HandshakeFrac float64
	// Latency is the mean per-attempt latency; each attempt draws uniformly
	// from [0.5·Latency, 1.5·Latency). Zero injects no latency.
	Latency time.Duration
	// FlapPeriod/FlapDuty model scheduled outages: each source is down for
	// FlapDuty (in [0,1)) of every FlapPeriod, phase-shifted per source so
	// the universe never flaps in unison. During an outage every attempt
	// fails at the handshake. FlapPeriod == 0 disables flapping.
	FlapPeriod time.Duration
	FlapDuty   float64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.Rate > 0 || p.Latency > 0 || (p.FlapPeriod > 0 && p.FlapDuty > 0)
}

// String renders the plan in the canonical ParsePlan syntax (run headers and
// archived benchmark JSON embed it so degraded runs are never mistaken for
// clean ones).
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	parts := []string{fmt.Sprintf("rate=%g", p.Rate), fmt.Sprintf("seed=%d", p.Seed)}
	if p.HandshakeFrac > 0 {
		parts = append(parts, fmt.Sprintf("handshake=%g", p.HandshakeFrac))
	}
	if p.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s", p.Latency))
	}
	if p.FlapPeriod > 0 && p.FlapDuty > 0 {
		parts = append(parts, fmt.Sprintf("flap=%s:%g", p.FlapPeriod, p.FlapDuty))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated fault plan, e.g.
//
//	rate=0.3,seed=7,latency=20ms,flap=2s:0.25,handshake=0.6
//
// "none" and "" parse to the zero (disabled) plan. Keys: rate, seed,
// handshake, latency, flap=<period>:<duty>.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Plan{}, fmt.Errorf("fault: bad plan term %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "rate":
			p.Rate, err = strconv.ParseFloat(val, 64)
			if err == nil && (p.Rate < 0 || p.Rate > 1) {
				err = fmt.Errorf("rate %v out of [0,1]", p.Rate)
			}
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "handshake":
			p.HandshakeFrac, err = strconv.ParseFloat(val, 64)
			if err == nil && (p.HandshakeFrac < 0 || p.HandshakeFrac > 1) {
				err = fmt.Errorf("handshake %v out of [0,1]", p.HandshakeFrac)
			}
		case "latency":
			p.Latency, err = time.ParseDuration(val)
		case "flap":
			pd := strings.SplitN(val, ":", 2)
			if len(pd) != 2 {
				err = fmt.Errorf("flap wants <period>:<duty>")
				break
			}
			if p.FlapPeriod, err = time.ParseDuration(pd[0]); err != nil {
				break
			}
			if p.FlapDuty, err = strconv.ParseFloat(pd[1], 64); err != nil {
				break
			}
			if p.FlapDuty < 0 || p.FlapDuty >= 1 {
				err = fmt.Errorf("flap duty %v out of [0,1)", p.FlapDuty)
			}
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: plan term %q: %v", part, err)
		}
	}
	return p, nil
}

// Injector draws per-attempt fates from a Plan. A nil *Injector (or one built
// from a disabled plan) injects nothing, so callers never need to branch.
type Injector struct {
	plan Plan
}

// NewInjector returns an injector for the plan, or nil when the plan is
// disabled.
func NewInjector(plan Plan) *Injector {
	if !plan.Enabled() {
		return nil
	}
	return &Injector{plan: plan}
}

// Plan returns the injector's plan (the zero plan for a nil injector).
func (inj *Injector) Plan() Plan {
	if inj == nil {
		return Plan{}
	}
	return inj.plan
}

// Fate is the predetermined outcome of one probe attempt.
type Fate struct {
	// Err is nil for a clean attempt; otherwise ErrUnreachable (handshake
	// failure) or ErrStream (mid-scan failure).
	Err error
	// FailAfter is the number of tuples delivered before a mid-stream fate
	// raises Err (0 for handshake failures).
	FailAfter int64
	// Latency is this attempt's injected latency.
	Latency time.Duration
}

// Handshake reports whether the fate fails before any tuple flows — the
// signal probe's circuit breaker counts, because it means the source never
// answered at all.
func (f Fate) Handshake() bool { return errors.Is(f.Err, ErrUnreachable) }

// Attempt draws the fate of probe attempt number attempt (1-based) against
// the named source at virtual instant now. The draw is a pure function of
// (plan seed, name, attempt, now): repeated calls agree, and no shared state
// is consumed.
func (inj *Injector) Attempt(name string, attempt int, now time.Time) Fate {
	if inj == nil {
		return Fate{}
	}
	var f Fate
	if inj.plan.Latency > 0 {
		u := u01(inj.draw(name, attempt, saltLatency))
		f.Latency = time.Duration((0.5 + u) * float64(inj.plan.Latency))
	}
	if inj.down(name, now) {
		f.Err = ErrUnreachable
		return f
	}
	if inj.plan.Rate > 0 && u01(inj.draw(name, attempt, saltFail)) < inj.plan.Rate {
		hf := inj.plan.HandshakeFrac
		if hf == 0 {
			hf = 0.5
		}
		if u01(inj.draw(name, attempt, saltKind)) < hf {
			f.Err = ErrUnreachable
		} else {
			f.Err = ErrStream
			f.FailAfter = 1 + int64(inj.draw(name, attempt, saltWhere)%4096)
		}
	}
	return f
}

// down reports whether name's flap schedule has it offline at now.
func (inj *Injector) down(name string, now time.Time) bool {
	period := inj.plan.FlapPeriod
	if period <= 0 || inj.plan.FlapDuty <= 0 {
		return false
	}
	// Phase-shift each source by a hash of its name so outages are spread
	// across the universe instead of synchronized.
	offset := int64(inj.draw(name, 0, saltPhase) % uint64(period))
	phase := (now.UnixNano() + offset) % int64(period)
	if phase < 0 {
		phase += int64(period)
	}
	return float64(phase) < inj.plan.FlapDuty*float64(period)
}

// Salts separate the independent random streams derived per (name, attempt).
const (
	saltFail = iota + 1
	saltKind
	saltWhere
	saltLatency
	saltPhase
)

// draw hashes (seed, name, attempt, salt) into a uniform uint64 using FNV-1a
// over the name followed by a splitmix64 finalizer.
func (inj *Injector) draw(name string, attempt int, salt uint64) uint64 {
	h := uint64(inj.plan.Seed) ^ 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h ^= uint64(attempt)*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// u01 maps a uint64 to [0,1) with 53-bit precision.
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Stream wraps a tuple iterator with a fate: a failing fate raises its error
// at the handshake, after FailAfter tuples, or — if the underlying stream
// runs out first — at exhaustion (the connection died before the final ack),
// so a failing fate always fails. A clean fate passes tuples through
// unchanged.
type Stream struct {
	inner     source.TupleIterator
	fate      Fate
	delivered int64
	err       error
}

// NewStream wraps it with the fate.
func NewStream(it source.TupleIterator, fate Fate) *Stream {
	return &Stream{inner: it, fate: fate}
}

// Next implements source.TupleIterator; consult Err after exhaustion.
func (s *Stream) Next() (source.TupleID, bool) {
	if s.err != nil {
		return 0, false
	}
	if s.fate.Err != nil && (s.fate.Handshake() || s.delivered >= s.fate.FailAfter) {
		s.err = s.fate.Err
		return 0, false
	}
	t, ok := s.inner.Next()
	if !ok {
		if s.fate.Err != nil {
			s.err = s.fate.Err
		}
		return 0, false
	}
	s.delivered++
	return t, true
}

// Err returns the injected error that terminated the stream, or nil if the
// scan completed cleanly.
func (s *Stream) Err() error { return s.err }

// Delivered returns the number of tuples the stream yielded before stopping.
func (s *Stream) Delivered() int64 { return s.delivered }
