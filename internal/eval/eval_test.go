package eval

import (
	"testing"

	"mube/internal/bamm"
	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/synth"
)

func ref(s, a int) schema.AttrRef { return schema.AttrRef{Source: schema.SourceID(s), Attr: a} }

// fixedUniverse builds sources with hand-picked BAMM variant names.
func fixedUniverse(t *testing.T, schemas ...[]string) *source.Universe {
	t.Helper()
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	for _, attrs := range schemas {
		if _, err := u.Add(source.Uncooperative("s", schema.NewSchema(attrs...))); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestEvaluateCountsTrueGAs(t *testing.T) {
	u := fixedUniverse(t,
		[]string{"title", "author"},
		[]string{"title", "author"},
		[]string{"keyword"},
	)
	med := schema.NewMediated(
		schema.NewGA(ref(0, 0), ref(1, 0)), // pure: title
		schema.NewGA(ref(0, 1), ref(1, 1)), // pure: author
	)
	stats := Evaluate(u, u.IDs(), med, nil)
	if stats.TrueGAs != 2 {
		t.Errorf("TrueGAs = %d, want 2", stats.TrueGAs)
	}
	if stats.FalseGAs != 0 {
		t.Errorf("FalseGAs = %d, want 0", stats.FalseGAs)
	}
	if stats.AttrsInTrueGAs != 4 {
		t.Errorf("AttrsInTrueGAs = %d, want 4", stats.AttrsInTrueGAs)
	}
	// keyword appears in only one chosen source → not missable.
	if stats.Missed != 0 {
		t.Errorf("Missed = %d, want 0", stats.Missed)
	}
}

func TestEvaluateDetectsFalseGAs(t *testing.T) {
	u := fixedUniverse(t,
		[]string{"title", "engine"},
		[]string{"author"},
	)
	mixed := schema.NewMediated(
		schema.NewGA(ref(0, 0), ref(1, 0)), // title + author: mixed concepts
	)
	stats := Evaluate(u, u.IDs(), mixed, nil)
	if stats.FalseGAs != 1 || stats.TrueGAs != 0 {
		t.Errorf("mixed GA: %+v", stats)
	}
	offDomain := schema.NewMediated(
		schema.NewGA(ref(0, 1), ref(1, 0)), // engine (noise) + author
	)
	stats = Evaluate(u, u.IDs(), offDomain, nil)
	if stats.FalseGAs != 1 {
		t.Errorf("off-domain GA: %+v", stats)
	}
}

func TestEvaluateNeutralGAs(t *testing.T) {
	// Identical off-domain names matched across sources form a *correct*
	// matching of a non-Books concept: neutral, not false.
	u := fixedUniverse(t,
		[]string{"engine", "title"},
		[]string{"engine", "title"},
		[]string{"turbine"},
	)
	med := schema.NewMediated(
		schema.NewGA(ref(0, 0), ref(1, 0)), // engine + engine → neutral
		schema.NewGA(ref(0, 1), ref(1, 1)), // title + title → true
	)
	stats := Evaluate(u, u.IDs(), med, nil)
	if stats.NeutralGAs != 1 || stats.FalseGAs != 0 || stats.TrueGAs != 1 {
		t.Errorf("stats = %+v, want 1 neutral, 0 false, 1 true", stats)
	}
	// Two *different* off-domain names conflated → false.
	bad := schema.NewMediated(schema.NewGA(ref(0, 0), ref(2, 0))) // engine + turbine
	stats = Evaluate(u, u.IDs(), bad, nil)
	if stats.FalseGAs != 1 || stats.NeutralGAs != 0 {
		t.Errorf("different noise names: %+v, want false", stats)
	}
}

func TestEvaluateMissed(t *testing.T) {
	u := fixedUniverse(t,
		[]string{"title", "price"},
		[]string{"title", "price range"},
		[]string{"title"},
	)
	// Only the title GA was found; price is expressed by 2 sources → missed.
	med := schema.NewMediated(
		schema.NewGA(ref(0, 0), ref(1, 0), ref(2, 0)),
	)
	stats := Evaluate(u, u.IDs(), med, nil)
	if stats.TrueGAs != 1 || stats.Missed != 1 {
		t.Errorf("stats = %+v, want TrueGAs=1 Missed=1", stats)
	}
	// If only sources 0 and 2 are chosen, price has support 1 → not missed.
	med2 := schema.NewMediated(schema.NewGA(ref(0, 0), ref(2, 0)))
	stats = Evaluate(u, []schema.SourceID{0, 2}, med2, nil)
	if stats.Missed != 0 {
		t.Errorf("Missed = %d, want 0 with support below MinSupport", stats.Missed)
	}
}

func TestEvaluateConceptSplitCountsOnce(t *testing.T) {
	// Two pure GAs for the same concept identify it once (Table 1 counts
	// concepts, up to 14).
	u := fixedUniverse(t,
		[]string{"title"},
		[]string{"title"},
		[]string{"book title"},
		[]string{"book title"},
	)
	med := schema.NewMediated(
		schema.NewGA(ref(0, 0), ref(1, 0)),
		schema.NewGA(ref(2, 0), ref(3, 0)),
	)
	stats := Evaluate(u, u.IDs(), med, nil)
	if stats.TrueGAs != 1 {
		t.Errorf("TrueGAs = %d, want 1 (one concept, split)", stats.TrueGAs)
	}
	if stats.AttrsInTrueGAs != 4 {
		t.Errorf("AttrsInTrueGAs = %d, want 4", stats.AttrsInTrueGAs)
	}
}

func TestEvaluateEmptySchema(t *testing.T) {
	u := fixedUniverse(t, []string{"title"}, []string{"title"})
	stats := Evaluate(u, u.IDs(), schema.Mediated{}, nil)
	if stats.TrueGAs != 0 || stats.AttrsInTrueGAs != 0 || stats.FalseGAs != 0 {
		t.Errorf("empty schema stats = %+v", stats)
	}
	if stats.Missed != 1 { // title expressed by both sources, not identified
		t.Errorf("Missed = %d, want 1", stats.Missed)
	}
}

// TestEndToEndNoFalseGAs reproduces the paper's qualitative claim: on a
// synthetic BAMM universe, matching at θ=0.5 yields true GAs and no false
// GAs.
func TestEndToEndNoFalseGAs(t *testing.T) {
	cfg := synth.Scaled(0.002)
	cfg.NumSources = 80
	cfg.Seed = 21
	cfg.Sig = pcsa.Config{NumMaps: 64}
	res, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := match.MustNew(res.Universe, match.Config{Theta: 0.5})
	sel := res.Universe.IDs()[:30]
	mr, err := m.Match(sel, constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	stats := Evaluate(res.Universe, sel, mr.Schema, bamm.ConceptOf)
	if stats.FalseGAs != 0 {
		t.Errorf("false GAs = %d, want 0 (paper §7.3)", stats.FalseGAs)
	}
	if stats.TrueGAs < 5 {
		t.Errorf("true GAs = %d, expected a healthy count on 30 sources", stats.TrueGAs)
	}
	if stats.TrueGAs > bamm.NumConcepts {
		t.Errorf("true GAs = %d exceeds the %d concepts", stats.TrueGAs, bamm.NumConcepts)
	}
}
