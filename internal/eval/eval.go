// Package eval scores µBE solutions against the synthetic ground truth,
// reproducing the metrics of Table 1 (§7.3): how many *true GAs* (GAs whose
// attributes all express one domain concept) the solution contains, how many
// attributes those GAs cover, how many false GAs appear, and how many
// concepts present in the chosen sources µBE failed to identify.
package eval

import (
	"mube/internal/bamm"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/strutil"
)

// ConceptFn maps an attribute name to its ground-truth concept; ok is false
// for off-domain names (perturbation noise). bamm.ConceptOf is the standard
// instance.
type ConceptFn func(name string) (int, bool)

// GAStats are the Table 1 metrics for one solution.
type GAStats struct {
	// TrueGAs is the number of distinct concepts identified by at least one
	// pure GA. "The number of true GAs found can be loosely interpreted as
	// a measure of precision in identifying concepts."
	TrueGAs int
	// FalseGAs is the number of GAs that wrongly conflate distinct
	// concepts: they mix two domain concepts, mix domain and off-domain
	// attributes, or mix differently named off-domain attributes. The paper
	// reports µBE never produced false GAs.
	FalseGAs int
	// NeutralGAs are correct matchings of off-domain attributes: every
	// member has the same (normalized) name, but the name maps to no domain
	// concept (perturbation noise repeated across sources). They are
	// neither true nor false.
	NeutralGAs int
	// AttrsInTrueGAs is the total number of attributes covered by pure GAs
	// — "a measure of recall of these concepts".
	AttrsInTrueGAs int
	// Missed is the number of concepts expressed by at least MinSupport of
	// the chosen sources but identified by no pure GA — "true GAs that were
	// present in the sources chosen by µBE, but which µBE was not able to
	// identify".
	Missed int
}

// MinSupport is the number of chosen sources that must express a concept for
// its absence to count as "missed": a valid GA needs at least two sources
// under the default β = 2.
const MinSupport = 2

// RefConceptFn maps an attribute reference to its ground-truth concept. It
// generalizes ConceptFn for universes where an attribute's concept is not
// derivable from its name — e.g. synthetic sources whose perturbation
// *renamed* a concept attribute to a noise word (synth.Result.AttrOrigins).
type RefConceptFn func(r schema.AttrRef) (int, bool)

// Evaluate computes GAStats for a mediated schema med over the chosen
// sources sel of universe u, resolving concepts by attribute name.
func Evaluate(u *source.Universe, sel []schema.SourceID, med schema.Mediated, conceptOf ConceptFn) GAStats {
	if conceptOf == nil {
		conceptOf = bamm.ConceptOf
	}
	return EvaluateRefs(u, sel, med, func(r schema.AttrRef) (int, bool) {
		return conceptOf(u.AttrName(r))
	})
}

// EvaluateRefs computes GAStats with a per-reference ground truth.
func EvaluateRefs(u *source.Universe, sel []schema.SourceID, med schema.Mediated, conceptOf RefConceptFn) GAStats {
	var stats GAStats
	identified := make(map[int]bool)
	for _, g := range med.GAs {
		ci, pure := gaConcept(u, g, conceptOf)
		if pure {
			identified[ci] = true
			stats.AttrsInTrueGAs += g.Size()
			continue
		}
		if sameName(u, g) {
			stats.NeutralGAs++
			continue
		}
		stats.FalseGAs++
	}
	stats.TrueGAs = len(identified)

	// A concept counts as missed when enough chosen sources express it to
	// have allowed a GA, yet no pure GA identifies it.
	for ci, n := range conceptSupport(u, sel, conceptOf) {
		if n >= MinSupport && !identified[ci] {
			stats.Missed++
		}
	}
	return stats
}

// gaConcept returns the single concept all attributes of g express, or
// ok=false when g mixes concepts or contains off-domain attributes.
func gaConcept(u *source.Universe, g schema.GA, conceptOf RefConceptFn) (concept int, pure bool) {
	first := true
	for _, r := range g.Refs() {
		ci, ok := conceptOf(r)
		if !ok {
			return 0, false
		}
		if first {
			concept, first = ci, false
		} else if ci != concept {
			return 0, false
		}
	}
	return concept, !first
}

// sameName reports whether all attributes of g share one normalized name —
// a correct matching even when the name maps to no domain concept.
func sameName(u *source.Universe, g schema.GA) bool {
	refs := g.Refs()
	if len(refs) == 0 {
		return false
	}
	first := strutil.Normalize(u.AttrName(refs[0]))
	for _, r := range refs[1:] {
		if strutil.Normalize(u.AttrName(r)) != first {
			return false
		}
	}
	return true
}

// conceptSupport counts, per concept, how many of the sources in sel express
// it (each source counts once per concept).
func conceptSupport(u *source.Universe, sel []schema.SourceID, conceptOf RefConceptFn) map[int]int {
	counts := make(map[int]int)
	for _, id := range sel {
		s := u.Source(id)
		seen := make(map[int]bool)
		for j := 0; j < s.Schema.Len(); j++ {
			if ci, ok := conceptOf(schema.AttrRef{Source: id, Attr: j}); ok && !seen[ci] {
				seen[ci] = true
				counts[ci]++
			}
		}
	}
	return counts
}
