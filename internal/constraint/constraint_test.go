package constraint

import (
	"errors"
	"testing"

	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

func testUniverse(t *testing.T) *source.Universe {
	t.Helper()
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	for _, attrs := range [][]string{
		{"title", "author"},
		{"book title", "writer", "isbn"},
		{"keyword"},
		{"title", "price"},
	} {
		if _, err := u.Add(source.Uncooperative("s", schema.NewSchema(attrs...))); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func ref(s, a int) schema.AttrRef { return schema.AttrRef{Source: schema.SourceID(s), Attr: a} }

func TestValidateAcceptsGood(t *testing.T) {
	u := testUniverse(t)
	c := Set{
		Sources: []schema.SourceID{0, 2},
		GAs: []schema.GA{
			schema.NewGA(ref(0, 0), ref(1, 0)),
			schema.NewGA(ref(0, 1), ref(1, 1)),
		},
	}
	if err := c.Validate(u); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	u := testUniverse(t)
	cases := []struct {
		name string
		c    Set
	}{
		{"source out of range", Set{Sources: []schema.SourceID{9}}},
		{"negative source", Set{Sources: []schema.SourceID{-1}}},
		{"invalid GA (two attrs one source)", Set{GAs: []schema.GA{schema.NewGA(ref(0, 0), ref(0, 1))}}},
		{"empty GA", Set{GAs: []schema.GA{{}}}},
		{"GA source out of range", Set{GAs: []schema.GA{schema.NewGA(ref(9, 0))}}},
		{"GA attr out of range", Set{GAs: []schema.GA{schema.NewGA(ref(2, 5))}}},
		{"overlapping GA constraints", Set{GAs: []schema.GA{
			schema.NewGA(ref(0, 0), ref(1, 0)),
			schema.NewGA(ref(0, 0), ref(3, 0)),
		}}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(u); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRequiredSources(t *testing.T) {
	c := Set{
		Sources: []schema.SourceID{2, 0},
		GAs:     []schema.GA{schema.NewGA(ref(1, 0), ref(3, 1))},
	}
	got := c.RequiredSources()
	want := []schema.SourceID{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("RequiredSources = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RequiredSources[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	implied := c.ImpliedSources()
	if len(implied) != 2 || implied[0] != 1 || implied[1] != 3 {
		t.Errorf("ImpliedSources = %v, want [1 3]", implied)
	}
}

func TestSatisfiedBy(t *testing.T) {
	c := Set{Sources: []schema.SourceID{0}, GAs: []schema.GA{schema.NewGA(ref(1, 0))}}
	if !c.SatisfiedBy([]schema.SourceID{0, 1, 2}) {
		t.Error("superset should satisfy")
	}
	if c.SatisfiedBy([]schema.SourceID{0, 2}) {
		t.Error("missing implied source 1 should fail")
	}
	if !(Set{}).SatisfiedBy(nil) {
		t.Error("empty constraints satisfied by anything")
	}
}

func TestSchemaSatisfies(t *testing.T) {
	c := Set{GAs: []schema.GA{schema.NewGA(ref(0, 0), ref(1, 0))}}
	grown := schema.NewMediated(schema.NewGA(ref(0, 0), ref(1, 0), ref(3, 0)))
	if !c.SchemaSatisfies(grown) {
		t.Error("grown GA should satisfy G ⊑ M")
	}
	split := schema.NewMediated(schema.NewGA(ref(0, 0)), schema.NewGA(ref(1, 0)))
	if c.SchemaSatisfies(split) {
		t.Error("split constraint must not satisfy G ⊑ M")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := Set{Sources: []schema.SourceID{1}, GAs: []schema.GA{schema.NewGA(ref(0, 0))}}
	d := c.Clone()
	d.Sources[0] = 9
	d.GAs = append(d.GAs, schema.NewGA(ref(1, 0)))
	if c.Sources[0] != 1 || len(c.GAs) != 1 {
		t.Error("Clone shares state with original")
	}
	if c.Empty() {
		t.Error("non-empty set reported Empty")
	}
	if !(Set{}).Empty() {
		t.Error("empty set not reported Empty")
	}
}

func TestRemap(t *testing.T) {
	s := Set{
		Sources: []schema.SourceID{0, 3},
		GAs:     []schema.GA{schema.NewGA(ref(1, 0), ref(3, 0))},
	}
	// Universe lost source 2: kept[newID] == oldID.
	kept := []schema.SourceID{0, 1, 3}
	out, err := s.Remap(kept)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sources[0] != 0 || out.Sources[1] != 2 {
		t.Errorf("Sources remapped to %v, want [0 2]", out.Sources)
	}
	want := schema.NewGA(ref(1, 0), ref(2, 0))
	if !out.GAs[0].Equal(want) {
		t.Errorf("GA remapped to %v, want %v", out.GAs[0], want)
	}
	// The input set must be untouched.
	if s.Sources[1] != 3 || !s.GAs[0].Equal(schema.NewGA(ref(1, 0), ref(3, 0))) {
		t.Error("Remap mutated its receiver")
	}
}

func TestRemapRejectsDroppedSource(t *testing.T) {
	kept := []schema.SourceID{0, 2} // source 1 dropped
	if _, err := (Set{Sources: []schema.SourceID{1}}).Remap(kept); !errors.Is(err, ErrConstraintDropped) {
		t.Errorf("source constraint on dropped id: err = %v, want ErrConstraintDropped", err)
	}
	s := Set{GAs: []schema.GA{schema.NewGA(ref(0, 0), ref(1, 1))}}
	if _, err := s.Remap(kept); !errors.Is(err, ErrConstraintDropped) {
		t.Errorf("GA constraint on dropped id: err = %v, want ErrConstraintDropped", err)
	}
	// The stale ID 2 is still a *valid* index into the shrunken universe —
	// exactly the silent mis-binding Remap exists to prevent; it must remap
	// to 1, not pass through.
	out, err := (Set{Sources: []schema.SourceID{2}}).Remap(kept)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sources[0] != 1 {
		t.Errorf("id 2 remapped to %d, want 1", out.Sources[0])
	}
}
