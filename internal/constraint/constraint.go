// Package constraint models the two ways a µBE user guides the search (§2.4):
//
//   - Source constraints: sources that must be part of the chosen solution.
//   - GA constraints: valid GAs that must be contained in some GA of the
//     output mediated schema (G ⊑ M). A GA constraint is an *example of a
//     matching* — the "Matching By Example" in µBE's name — which the
//     clustering algorithm grows via the bridging effect.
//
// A GA constraint implicitly constrains sources: if it references an
// attribute of source s, then s must be in the solution.
package constraint

import (
	"errors"
	"fmt"
	"sort"

	"mube/internal/schema"
	"mube/internal/source"
)

// ErrConstraintDropped is returned by Remap when a constraint references a
// source that the new universe no longer contains. Callers decide the
// policy: a watch loop drops the constraint and reports it, a session load
// surfaces the error to the user.
var ErrConstraintDropped = errors.New("constraint: references a dropped source")

// Set is a full set of user constraints for one optimization problem.
type Set struct {
	// Sources is C: sources that must appear in the solution.
	Sources []schema.SourceID
	// GAs is G: partial mediated schema the output must subsume.
	GAs []schema.GA
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	c := Set{
		Sources: append([]schema.SourceID(nil), s.Sources...),
		GAs:     append([]schema.GA(nil), s.GAs...),
	}
	return c
}

// Empty reports whether no constraints are set.
func (s Set) Empty() bool { return len(s.Sources) == 0 && len(s.GAs) == 0 }

// Validate checks the constraints against a universe: source IDs must be in
// range, GA constraints must be valid GAs (Definition 1) whose attribute
// references exist, and GA constraints must be pairwise disjoint so that
// they can seed distinct clusters.
func (s Set) Validate(u *source.Universe) error {
	n := schema.SourceID(u.Len())
	for _, id := range s.Sources {
		if id < 0 || id >= n {
			return fmt.Errorf("constraint: source %d out of range [0,%d)", id, n)
		}
	}
	for i, g := range s.GAs {
		if !g.Valid() {
			return fmt.Errorf("constraint: GA %d (%v) is not a valid GA", i, g)
		}
		for _, r := range g.Refs() {
			if r.Source < 0 || r.Source >= n {
				return fmt.Errorf("constraint: GA %d references source %d out of range", i, r.Source)
			}
			if r.Attr < 0 || r.Attr >= u.Source(r.Source).Schema.Len() {
				return fmt.Errorf("constraint: GA %d references attribute %v out of range", i, r)
			}
		}
		for j := i + 1; j < len(s.GAs); j++ {
			if g.Intersects(s.GAs[j]) {
				return fmt.Errorf("constraint: GA %d and GA %d share an attribute", i, j)
			}
		}
	}
	return nil
}

// Remap rewrites every SourceID in the set for a universe that was reprobed
// or churned: kept[newID] == oldID, the convention of probe.ReprobeUniverse
// and source.Universe.Remove. A constraint that references an old ID absent
// from kept — the source was dropped — makes Remap fail with an error
// wrapping ErrConstraintDropped and naming the constraint; IDs must never be
// rebound silently, because after compaction a stale ID is a *valid* index
// into the new universe pointing at the wrong source.
func (s Set) Remap(kept []schema.SourceID) (Set, error) {
	oldToNew := make(map[schema.SourceID]schema.SourceID, len(kept))
	for newID, oldID := range kept {
		oldToNew[oldID] = schema.SourceID(newID)
	}
	out := Set{}
	if s.Sources != nil {
		out.Sources = make([]schema.SourceID, len(s.Sources))
		for i, id := range s.Sources {
			nid, ok := oldToNew[id]
			if !ok {
				return Set{}, fmt.Errorf("%w: source constraint %d (source %d)", ErrConstraintDropped, i, id)
			}
			out.Sources[i] = nid
		}
	}
	if s.GAs != nil {
		out.GAs = make([]schema.GA, len(s.GAs))
		for i, g := range s.GAs {
			refs := make([]schema.AttrRef, len(g.Refs()))
			for j, r := range g.Refs() {
				nid, ok := oldToNew[r.Source]
				if !ok {
					return Set{}, fmt.Errorf("%w: GA constraint %d (%v references source %d)", ErrConstraintDropped, i, g, r.Source)
				}
				refs[j] = schema.AttrRef{Source: nid, Attr: r.Attr}
			}
			out.GAs[i] = schema.NewGA(refs...)
		}
	}
	return out, nil
}

// ImpliedSources returns the sources referenced by GA constraints (§2.4:
// "a GA constraint implicitly specifies a set of source constraints").
func (s Set) ImpliedSources() []schema.SourceID {
	set := make(map[schema.SourceID]struct{})
	for _, g := range s.GAs {
		for _, r := range g.Refs() {
			set[r.Source] = struct{}{}
		}
	}
	return sortedIDs(set)
}

// RequiredSources returns the union of explicit source constraints and the
// sources implied by GA constraints, sorted and deduplicated. Every feasible
// solution must contain all of them.
func (s Set) RequiredSources() []schema.SourceID {
	set := make(map[schema.SourceID]struct{})
	for _, id := range s.Sources {
		set[id] = struct{}{}
	}
	for _, g := range s.GAs {
		for _, r := range g.Refs() {
			set[r.Source] = struct{}{}
		}
	}
	return sortedIDs(set)
}

// SatisfiedBy reports whether the source set ids contains every required
// source. It is called once per candidate in the evaluator's hot path, so it
// scans instead of building the RequiredSources set: candidate sets are small
// (bounded by MaxSources) and linear membership tests allocate nothing.
func (s Set) SatisfiedBy(ids []schema.SourceID) bool {
	for _, id := range s.Sources {
		if !containsID(ids, id) {
			return false
		}
	}
	for _, g := range s.GAs {
		for _, r := range g.Refs() {
			if !containsID(ids, r.Source) {
				return false
			}
		}
	}
	return true
}

func containsID(ids []schema.SourceID, id schema.SourceID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// SchemaSatisfies reports whether the mediated schema m subsumes every GA
// constraint (G ⊑ M).
func (s Set) SchemaSatisfies(m schema.Mediated) bool {
	return m.Subsumes(schema.NewMediated(s.GAs...))
}

func sortedIDs(set map[schema.SourceID]struct{}) []schema.SourceID {
	ids := make([]schema.SourceID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
