package qef

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mube/internal/constraint"
	"mube/internal/schema"
	"mube/internal/source"
)

// mixedUniverse extends dataUniverse with a coop-mixed source: a signature
// but no usable cardinality, which forces Redundancy onto the cooperative-
// only fallback union (scratch.coop).
func mixedUniverse(t testing.TB) *source.Universe {
	t.Helper()
	u := dataUniverse(t)
	mixed := tupleRange(t, 40000, 90000, "isbn")
	mixed.Cardinality = -1 // signature survives; cardinality withheld
	mustAdd(t, u, mixed)
	return u
}

// evalAll runs the union-backed QEFs on one context and returns their values.
func evalAll(c *Context) [3]float64 {
	return [3]float64{
		Coverage{}.Eval(c),
		Redundancy{}.Eval(c),
		Cardinality{}.Eval(c),
	}
}

// TestScratchReuseStress threads ONE Scratch through 1000 successive
// contexts over random subsets — including coop-mixed subsets that exercise
// both scratch slots — and checks every QEF value is bit-identical to a
// fresh scratchless context. Any cross-candidate state leaking through the
// reused buffers would surface as a mismatch.
func TestScratchReuseStress(t *testing.T) {
	u := mixedUniverse(t)
	all := u.IDs()
	r := rand.New(rand.NewSource(31))
	sc := &Scratch{}
	sawMixed := false
	for i := 0; i < 1000; i++ {
		n := 1 + r.Intn(len(all))
		perm := r.Perm(len(all))
		sel := make([]schema.SourceID, n)
		for j := 0; j < n; j++ {
			sel[j] = all[perm[j]]
		}
		sortIDs(sel)
		scCtx := NewContextScratch(u, nil, constraint.Set{}, sel, sc)
		fresh := NewContext(u, nil, constraint.Set{}, sel)
		got, want := evalAll(scCtx), evalAll(fresh)
		for k := range got {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("iter %d, subset %v, qef %d: scratch %v != fresh %v",
					i, sel, k, got[k], want[k])
			}
		}
		if scCtx.coopMixed {
			sawMixed = true
		}
	}
	if !sawMixed {
		t.Fatal("stress never hit the coop-mixed fallback; fixture is wrong")
	}
}

// TestScratchPerWorker mimics the evaluator's worker pool: goroutines share
// the universe (read-only) but each own one Scratch, evaluating concurrently
// under -race. Values must match the scratchless reference.
func TestScratchPerWorker(t *testing.T) {
	u := mixedUniverse(t)
	subsets := [][]schema.SourceID{
		ids(0), ids(0, 1), ids(0, 1, 2), ids(1, 2, 3), ids(0, 4), ids(1, 4),
		ids(0, 1, 2, 3, 4), ids(2, 4), ids(3), ids(0, 2, 4),
	}
	want := make([][3]float64, len(subsets))
	for i, sel := range subsets {
		want[i] = evalAll(NewContext(u, nil, constraint.Set{}, sel))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &Scratch{}
			for rep := 0; rep < 50; rep++ {
				for i, sel := range subsets {
					got := evalAll(NewContextScratch(u, nil, constraint.Set{}, sel, sc))
					for k := range got {
						if math.Float64bits(got[k]) != math.Float64bits(want[i][k]) {
							t.Errorf("subset %v qef %d: %v != %v", sel, k, got[k], want[i][k])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPresetUnionStats: a context primed with the stats another context
// computed must evaluate every union-backed QEF bit-identically — including
// the coop-mixed case, where the preset context still derives the
// cooperative-only fallback union itself.
func TestPresetUnionStats(t *testing.T) {
	u := mixedUniverse(t)
	for _, sel := range [][]schema.SourceID{
		ids(0, 1, 2), ids(0, 4), ids(1, 2, 4), ids(3), ids(0, 1, 2, 3, 4),
	} {
		ref := NewContext(u, nil, constraint.Set{}, sel)
		want := evalAll(ref)
		preset := NewContext(u, nil, constraint.Set{}, sel)
		preset.PresetUnionStats(UnionStats{
			UnionEst:  ref.unionEst,
			CoopN:     ref.coopN,
			CoopSum:   ref.coopSum,
			CoopMixed: ref.coopMixed,
		})
		got := evalAll(preset)
		for k := range got {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Errorf("subset %v qef %d: preset %v != computed %v", sel, k, got[k], want[k])
			}
		}
	}
}

// sortIDs sorts source IDs in place (insertion sort; tiny n).
func sortIDs(ids []schema.SourceID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
