// Package qef implements µBE's quality evaluation framework (§2.3–§5): a
// quality evaluation function (QEF) maps a candidate set of sources S to a
// number in [0,1] (higher is better), and the overall quality Q(S) is the
// weighted sum of all QEFs, with user-supplied weights that sum to 1.
//
// The four main QEFs are:
//
//	F1 matching quality — how well the sources' schemas match (package match)
//	F2 cardinality      — how much data S holds
//	F3 coverage         — how much of the universe's distinct data S reaches
//	F4 redundancy       — how little S's sources overlap (1 = no overlap)
//
// Users can add further QEFs over arbitrary source characteristics (latency,
// fees, MTTF, reputation, …) by pairing a characteristic name with an
// aggregation function (§5).
package qef

import (
	"fmt"
	"math"
	"sort"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

// Context carries everything a QEF may need to evaluate one candidate source
// set. The schema-matching result is computed lazily and shared so that F1
// and the final solution report reuse one Match(S) call; likewise the PCSA
// union over S is merged once and shared by the Coverage and Redundancy QEFs
// instead of each re-merging all signatures from zero.
//
// A Context is used by a single goroutine (one objective evaluation); the
// parallel evaluator creates one Context per candidate.
type Context struct {
	// U is the universe the candidate set is drawn from.
	U *source.Universe
	// IDs is the candidate source set S (sorted, no duplicates).
	IDs []schema.SourceID
	// Matcher is the Match(S) operator; nil when schema matching is not
	// evaluated.
	Matcher *match.Matcher
	// Constraints are the user constraints passed through to Match(S).
	Constraints constraint.Set

	matchOnce bool
	matchRes  match.Result
	matchErr  error

	// Lean match score (F1 without the materialized schema), computed by
	// Matcher.Score or preset by the sharded evaluator via PresetMatchScore.
	scoreOnce bool
	scoreQ    float64
	scoreOK   bool

	scratch *Scratch

	// Union statistics over S, computed once by unionStats — or preset by
	// the incremental evaluator via PresetUnionStats.
	statsOnce bool
	unionEst  float64 // estimate of |∪ s| over sources of S with a signature
	coopN     int     // number of cooperative sources in S
	coopSum   int64   // Σ|s| over cooperative sources of S
	// coopMixed flags the unusual case of a source that exports a signature
	// but no cardinality: it contributes to the Coverage union but not to
	// Redundancy's, so the two unions cannot be shared.
	coopMixed bool

	// Cooperative-only union estimate, computed on demand for the coopMixed
	// Redundancy fallback and cached.
	coopOnce bool
	coopEst  float64

	// merges counts pairwise signature merges this context performed, for
	// telemetry (the evaluator folds it into the pcsa.merges counter).
	merges int
}

// UnionStats are the union statistics over a candidate set S that the
// Coverage and Redundancy QEFs consume. The incremental evaluator derives
// them in O(1 source) from a counting union and injects them with
// PresetUnionStats instead of letting the context re-merge all of S.
type UnionStats struct {
	// UnionEst is the estimate of |∪ s| over the sources of S that export a
	// signature; 0 when none does.
	UnionEst float64
	// CoopN is the number of cooperative sources in S.
	CoopN int
	// CoopSum is Σ|s| over the cooperative sources of S.
	CoopSum int64
	// CoopMixed reports whether S contains a source with a signature but no
	// cardinality (see Context.coopMixed).
	CoopMixed bool
}

// PresetUnionStats primes the context with externally computed union
// statistics, bypassing unionStats' O(|S|) signature re-merge. It must be
// called before any QEF evaluates; the values must equal what unionStats
// would have computed (the incremental evaluator guarantees this
// bit-exactly). The cooperative-only union of the CoopMixed fallback is
// still derived lazily by the context itself.
func (c *Context) PresetUnionStats(st UnionStats) {
	c.statsOnce = true
	c.unionEst = st.UnionEst
	c.coopN = st.CoopN
	c.coopSum = st.CoopSum
	c.coopMixed = st.CoopMixed
}

// Merges returns the number of pairwise PCSA signature merges this context's
// union computation performed (0 until a union-based QEF has run).
func (c *Context) Merges() int { return c.merges }

// Scratch is the per-worker sketch arena: reusable evaluation buffers a
// long-lived evaluator keeps per worker and threads through successive
// contexts, so the union signature (2 KiB at the default PCSA configuration)
// and the cooperative-only fallback union are allocated once instead of once
// per candidate subset. A nil *Scratch is valid everywhere one is accepted
// and simply allocates per use. A Scratch must only ever be used by one
// evaluation at a time; contexts leave no cross-candidate state behind in it
// (every buffer is overwritten before it is read).
type Scratch struct {
	union *pcsa.Signature // full union over S
	coop  *pcsa.Signature // cooperative-only union (coopMixed fallback)
}

// checkout returns a scratch signature slot primed with sig's contents,
// reusing *slot when present.
func checkout(slot **pcsa.Signature, sig *pcsa.Signature) *pcsa.Signature {
	if *slot == nil {
		*slot = sig.Clone()
	} else {
		(*slot).CopyFrom(sig)
	}
	return *slot
}

// NewContext builds an evaluation context for the source set ids.
func NewContext(u *source.Universe, m *match.Matcher, cons constraint.Set, ids []schema.SourceID) *Context {
	return &Context{U: u, IDs: ids, Matcher: m, Constraints: cons}
}

// NewContextScratch is NewContext with reusable buffers; see Scratch.
func NewContextScratch(u *source.Universe, m *match.Matcher, cons constraint.Set, ids []schema.SourceID, sc *Scratch) *Context {
	return &Context{U: u, IDs: ids, Matcher: m, Constraints: cons, scratch: sc}
}

// unionStats merges the signatures of S once — into the scratch buffer when
// one is attached — and caches the union estimate plus the cooperative-source
// tallies, so Coverage and Redundancy do not each redo the merge.
func (c *Context) unionStats() {
	if c.statsOnce {
		return
	}
	c.statsOnce = true
	var acc *pcsa.Signature
	for _, id := range c.IDs {
		s := c.U.Source(id)
		if sig := s.Signature; sig != nil {
			if acc == nil {
				if c.scratch != nil {
					acc = checkout(&c.scratch.union, sig)
				} else {
					acc = sig.Clone()
				}
			} else {
				c.merges++
				if err := acc.MergeFrom(sig); err != nil {
					// Unreachable: Universe.Add enforces a uniform config.
					panic(fmt.Sprintf("qef: union of signatures: %v", err))
				}
			}
		}
		if s.Cooperative() {
			c.coopN++
			c.coopSum += s.Cardinality
		} else if s.Signature != nil {
			c.coopMixed = true
		}
	}
	if acc != nil {
		c.unionEst = acc.Estimate()
	}
}

// coopUnionEstimate returns the estimated union over only the cooperative
// sources of S — the Redundancy denominator in the coopMixed case — merging
// into the scratch arena when one is attached. The merge walks IDs in sorted
// order, so the resulting bitmap (and with it the estimate, bit for bit)
// matches any other order-independent derivation of the same union.
func (c *Context) coopUnionEstimate() float64 {
	if c.coopOnce {
		return c.coopEst
	}
	c.coopOnce = true
	var acc *pcsa.Signature
	for _, id := range c.IDs {
		s := c.U.Source(id)
		if !s.Cooperative() {
			continue
		}
		if acc == nil {
			if c.scratch != nil {
				acc = checkout(&c.scratch.coop, s.Signature)
			} else {
				acc = s.Signature.Clone()
			}
			continue
		}
		c.merges++
		if err := acc.MergeFrom(s.Signature); err != nil {
			// Unreachable: Universe.Add enforces a uniform config.
			panic(fmt.Sprintf("qef: union of cooperative signatures: %v", err))
		}
	}
	if acc != nil {
		c.coopEst = acc.Estimate()
	}
	return c.coopEst
}

// MatchResult returns the (memoized) result of Match(S) for this context.
func (c *Context) MatchResult() (match.Result, error) {
	if !c.matchOnce {
		c.matchOnce = true
		if c.Matcher == nil {
			c.matchErr = fmt.Errorf("qef: no matcher configured")
		} else {
			c.matchRes, c.matchErr = c.Matcher.Match(c.IDs, c.Constraints)
		}
	}
	return c.matchRes, c.matchErr
}

// PresetMatchScore primes the context with an externally computed matching
// score, bypassing MatchScore's clustering run. The values must be
// bit-identical to what Matcher.Score(IDs, Constraints) would return — the
// sharded evaluator guarantees this. It must be called before any QEF
// evaluates.
func (c *Context) PresetMatchScore(q float64, ok bool) {
	c.scoreOnce = true
	c.scoreQ = q
	c.scoreOK = ok
}

// MatchScore returns F1(S) and the validity bit without materializing the
// mediated schema: preset values win, an already computed full MatchResult is
// reused, and otherwise the allocation-free Matcher.Score path runs. The
// score is bit-identical to MatchResult().Quality in all three cases.
func (c *Context) MatchScore() (float64, bool) {
	if c.scoreOnce {
		return c.scoreQ, c.scoreOK
	}
	c.scoreOnce = true
	if c.matchOnce || c.Matcher == nil {
		res, err := c.MatchResult()
		if err == nil && res.OK {
			c.scoreQ, c.scoreOK = res.Quality, true
		}
		return c.scoreQ, c.scoreOK
	}
	q, ok, err := c.Matcher.Score(c.IDs, c.Constraints)
	if err == nil && ok {
		c.scoreQ, c.scoreOK = q, true
	}
	return c.scoreQ, c.scoreOK
}

// QEF is one quality dimension. Eval must return a value in [0,1]; higher is
// better.
type QEF interface {
	// Name identifies the QEF; weights are keyed by it.
	Name() string
	// Eval returns the aggregate quality of the context's source set on this
	// dimension.
	Eval(ctx *Context) float64
}

// Canonical QEF names used by the paper's four main quality dimensions.
const (
	NameMatchQuality = "match"
	NameCardinality  = "card"
	NameCoverage     = "coverage"
	NameRedundancy   = "redundancy"
)

// MatchQuality is F1: the quality of the best matching among the schemas of
// the sources in S, as computed by the constrained clustering algorithm. A
// failed match (no schema valid on the source constraints at threshold θ)
// scores 0.
type MatchQuality struct{}

// Name returns "match".
func (MatchQuality) Name() string { return NameMatchQuality }

// Eval returns the matching quality of S.
func (MatchQuality) Eval(ctx *Context) float64 {
	q, ok := ctx.MatchScore()
	if !ok {
		return 0
	}
	return q
}

// Cardinality is F2 = Card(S) = Σ_{s∈S}|s| / Σ_{t∈U}|t|: the fraction of the
// universe's tuples held by S. Uncooperative sources contribute 0.
type Cardinality struct{}

// Name returns "card".
func (Cardinality) Name() string { return NameCardinality }

// Eval returns Card(S).
func (Cardinality) Eval(ctx *Context) float64 {
	total := ctx.U.TotalCardinality()
	if total == 0 {
		return 0
	}
	return float64(ctx.U.SumCardinality(ctx.IDs)) / float64(total)
}

// Coverage is F3 = Coverage(S) = |∪_{s∈S} s| / |∪_{t∈U} t|: the fraction of
// the universe's distinct tuples reachable from S, estimated from PCSA
// signatures. Uncooperative sources contribute 0 (§4).
type Coverage struct{}

// Name returns "coverage".
func (Coverage) Name() string { return NameCoverage }

// Eval returns Coverage(S).
func (Coverage) Eval(ctx *Context) float64 {
	denom := ctx.U.UnionAllEstimate()
	if denom == 0 {
		return 0
	}
	ctx.unionStats()
	return clamp01(ctx.unionEst / denom)
}

// Redundancy is F4: a measure of the overlap among the sources of S,
// oriented so that 1 is best (no overlap) and 0 is worst (all sources hold
// the same data):
//
//	Redundancy(S) = (|S| − Σ_{s∈S}|s| / |∪_{s∈S} s|) / (|S| − 1)
//
// computed over the cooperative sources of S; it is 1 when S has at most one
// cooperative source but at least one source cooperates, and 0 when no
// source in S cooperates (uncooperative sources are assigned 0 redundancy,
// §4). See DESIGN.md for the reconstruction of this formula.
type Redundancy struct{}

// Name returns "redundancy".
func (Redundancy) Name() string { return NameRedundancy }

// Eval returns Redundancy(S).
func (Redundancy) Eval(ctx *Context) float64 {
	ctx.unionStats()
	if ctx.coopN == 0 {
		return 0
	}
	if ctx.coopN == 1 {
		return 1
	}
	union := ctx.unionEst
	if ctx.coopMixed {
		// A source exported a signature without a cardinality: restrict the
		// union to the cooperative sources, as the formula requires.
		union = ctx.coopUnionEstimate()
	}
	if union <= 0 || ctx.coopSum == 0 {
		return 0
	}
	ratio := float64(ctx.coopSum) / union // ∈ [1, |S|] up to estimation noise
	v := (float64(ctx.coopN) - ratio) / float64(ctx.coopN-1)
	return clamp01(v)
}

// clamp01 clips v into [0,1]; estimation noise can push ratios slightly out
// of range.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// MainQEFs returns the paper's four main quality dimensions F1..F4.
func MainQEFs() []QEF {
	return []QEF{MatchQuality{}, Cardinality{}, Coverage{}, Redundancy{}}
}

// Weights maps QEF names to their user-assigned importance. A valid weight
// set has every weight in [0,1] and a total of 1 (§2.3).
type Weights map[string]float64

// Validate checks the weight set against the QEF list: every QEF must have a
// weight in [0,1], no weight may lack a QEF, and the weights must sum to 1
// (within tolerance).
func (w Weights) Validate(qefs []QEF) error {
	names := make(map[string]struct{}, len(qefs))
	sum := 0.0
	for _, q := range qefs {
		v, ok := w[q.Name()]
		if !ok {
			return fmt.Errorf("qef: no weight for QEF %q", q.Name())
		}
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("qef: weight for %q is %v, want [0,1]", q.Name(), v)
		}
		names[q.Name()] = struct{}{}
		sum += v
	}
	for name := range w {
		if _, ok := names[name]; !ok {
			return fmt.Errorf("qef: weight for unknown QEF %q", name)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("qef: weights sum to %v, want 1", sum)
	}
	return nil
}

// Normalized returns a copy of w scaled so the weights sum to 1. If all
// weights are zero it distributes weight uniformly.
func (w Weights) Normalized() Weights {
	out := make(Weights, len(w))
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum == 0 {
		for k := range w {
			out[k] = 1 / float64(len(w))
		}
		return out
	}
	for k, v := range w {
		out[k] = v / sum
	}
	return out
}

// Clone returns a copy of w.
func (w Weights) Clone() Weights {
	out := make(Weights, len(w))
	for k, v := range w {
		out[k] = v
	}
	return out
}

// Names returns the weight keys in sorted order.
func (w Weights) Names() []string {
	names := make([]string, 0, len(w))
	for k := range w {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Uniform returns weights assigning 1/len(qefs) to each QEF.
func Uniform(qefs []QEF) Weights {
	w := make(Weights, len(qefs))
	for _, q := range qefs {
		w[q.Name()] = 1 / float64(len(qefs))
	}
	return w
}

// PaperDefaults returns the §7.1 default weights for the five default QEFs:
// matching 0.25, cardinality 0.25, coverage 0.2, redundancy 0.15, MTTF 0.15.
func PaperDefaults() Weights {
	return Weights{
		NameMatchQuality: 0.25,
		NameCardinality:  0.25,
		NameCoverage:     0.20,
		NameRedundancy:   0.15,
		"mttf":           0.15,
	}
}

// Quality combines a set of QEFs with weights into the overall objective
// Q(S) = Σ w_i · F_i(S).
type Quality struct {
	QEFs    []QEF
	Weights Weights
}

// NewQuality validates and builds the composite objective.
func NewQuality(qefs []QEF, w Weights) (*Quality, error) {
	if len(qefs) == 0 {
		return nil, fmt.Errorf("qef: no QEFs")
	}
	seen := make(map[string]struct{}, len(qefs))
	for _, q := range qefs {
		if _, dup := seen[q.Name()]; dup {
			return nil, fmt.Errorf("qef: duplicate QEF name %q", q.Name())
		}
		seen[q.Name()] = struct{}{}
	}
	if err := w.Validate(qefs); err != nil {
		return nil, err
	}
	return &Quality{QEFs: qefs, Weights: w.Clone()}, nil
}

// Eval returns Q(S) for the context's source set.
func (q *Quality) Eval(ctx *Context) float64 {
	total := 0.0
	for _, f := range q.QEFs {
		if w := q.Weights[f.Name()]; w > 0 {
			total += w * f.Eval(ctx)
		}
	}
	return total
}

// Breakdown returns each QEF's raw value for the context's source set,
// keyed by QEF name (unweighted).
func (q *Quality) Breakdown(ctx *Context) map[string]float64 {
	out := make(map[string]float64, len(q.QEFs))
	for _, f := range q.QEFs {
		out[f.Name()] = f.Eval(ctx)
	}
	return out
}
