package qef

import (
	"fmt"

	"mube/internal/schema"
)

// Aggregator folds the per-source values of one characteristic over a source
// set into a quality in [0,1] (§5). Values are normalized against the
// universe-wide (min, max) range of the characteristic so that users may
// supply characteristics of any magnitude.
type Aggregator interface {
	// Name identifies the aggregator.
	Name() string
	// Aggregate computes the quality. ctx provides the universe (for
	// normalization ranges and cardinalities); char is the characteristic
	// name.
	Aggregate(ctx *Context, char string) float64
}

// Characteristic is a user-defined QEF over one named source characteristic,
// evaluated through an aggregation function. Sources that do not define the
// characteristic contribute as if they had the universe-wide minimum.
type Characteristic struct {
	// Char is the characteristic name, e.g. "mttf", "latency", "fees".
	Char string
	// Agg is the aggregation function; WSum is the paper's example.
	Agg Aggregator
	// Invert flips the normalized value (1 − v) for characteristics where
	// smaller is better, such as latency or fees.
	Invert bool
}

// Name returns the characteristic name (QEF weights are keyed by it).
func (c Characteristic) Name() string { return c.Char }

// Eval aggregates the characteristic over the context's source set.
func (c Characteristic) Eval(ctx *Context) float64 {
	v := c.Agg.Aggregate(ctx, c.Char)
	if c.Invert {
		v = 1 - v
	}
	return clamp01(v)
}

// normValue returns source id's characteristic value normalized into [0,1]
// by the universe range; missing values normalize to 0 (the minimum), and a
// degenerate range (max == min) normalizes to 1 for sources that define the
// characteristic (no basis for discrimination → no penalty).
func normValue(ctx *Context, id schema.SourceID, char string) float64 {
	min, max, ok := ctx.U.CharacteristicRange(char)
	if !ok {
		return 0
	}
	v, has := ctx.U.Source(id).Characteristic(char)
	if !has {
		return 0
	}
	if max <= min {
		return 1
	}
	return (v - min) / (max - min)
}

// WSum is the paper's weighted-sum aggregation function (§5):
//
//	wsum(S) = Σ_{s∈S} (s.q − min_U q)·|s|  /  (Σ_{s∈S}|s| · (max_U q − min_U q))
//
// i.e. the cardinality-weighted mean of the normalized characteristic. A
// source with high availability and many tuples is worth more than one with
// high availability and few tuples.
type WSum struct{}

// Name returns "wsum".
func (WSum) Name() string { return "wsum" }

// Aggregate computes wsum(S); uncooperative sources (unknown cardinality)
// carry zero weight.
func (WSum) Aggregate(ctx *Context, char string) float64 {
	var num, den float64
	for _, id := range ctx.IDs {
		s := ctx.U.Source(id)
		if s.Cardinality <= 0 {
			continue
		}
		w := float64(s.Cardinality)
		num += normValue(ctx, id, char) * w
		den += w
	}
	if den == 0 {
		return 0
	}
	return clamp01(num / den)
}

// Mean is the unweighted mean of the normalized characteristic over S.
type Mean struct{}

// Name returns "mean".
func (Mean) Name() string { return "mean" }

// Aggregate computes the plain average of normalized values.
func (Mean) Aggregate(ctx *Context, char string) float64 {
	if len(ctx.IDs) == 0 {
		return 0
	}
	sum := 0.0
	for _, id := range ctx.IDs {
		sum += normValue(ctx, id, char)
	}
	return clamp01(sum / float64(len(ctx.IDs)))
}

// Min is the worst normalized value in S — a bottleneck aggregator, suitable
// for characteristics like availability where the weakest source gates the
// whole system.
type Min struct{}

// Name returns "min".
func (Min) Name() string { return "min" }

// Aggregate computes the minimum normalized value.
func (Min) Aggregate(ctx *Context, char string) float64 {
	if len(ctx.IDs) == 0 {
		return 0
	}
	best := 1.0
	for _, id := range ctx.IDs {
		if v := normValue(ctx, id, char); v < best {
			best = v
		}
	}
	return clamp01(best)
}

// Max is the best normalized value in S — suitable when a single excellent
// source suffices (e.g. reputation of the flagship source).
type Max struct{}

// Name returns "max".
func (Max) Name() string { return "max" }

// Aggregate computes the maximum normalized value.
func (Max) Aggregate(ctx *Context, char string) float64 {
	best := 0.0
	for _, id := range ctx.IDs {
		if v := normValue(ctx, id, char); v > best {
			best = v
		}
	}
	return clamp01(best)
}

// AggregatorByName resolves a built-in aggregator ("wsum", "mean", "min",
// "max"); it errors on unknown names.
func AggregatorByName(name string) (Aggregator, error) {
	switch name {
	case "wsum":
		return WSum{}, nil
	case "mean":
		return Mean{}, nil
	case "min":
		return Min{}, nil
	case "max":
		return Max{}, nil
	}
	return nil, fmt.Errorf("qef: unknown aggregator %q", name)
}
