package qef

import (
	"math"
	"math/rand"
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/testutil"
)

var sigCfg = pcsa.Config{NumMaps: 256}

// tupleRange builds a cooperative source holding tuples [lo, hi).
func tupleRange(t testing.TB, lo, hi uint64, attrs ...string) *source.Source {
	t.Helper()
	tuples := make([]source.TupleID, 0, hi-lo)
	for x := lo; x < hi; x++ {
		tuples = append(tuples, x)
	}
	s, err := source.FromTuples("s", schema.NewSchema(attrs...), source.NewSliceIterator(tuples), sigCfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// dataUniverse: three cooperative sources with controlled overlap plus one
// uncooperative source.
//
//	s0: [0, 50k)        author, title
//	s1: [25k, 75k)      author name, price   (half overlaps s0)
//	s2: [0, 50k)        writer               (identical to s0)
//	s3: uncooperative   keyword
func dataUniverse(t testing.TB) *source.Universe {
	t.Helper()
	u := source.NewUniverse(sigCfg)
	mustAdd(t, u, tupleRange(t, 0, 50000, "author", "title"))
	mustAdd(t, u, tupleRange(t, 25000, 75000, "author name", "price"))
	mustAdd(t, u, tupleRange(t, 0, 50000, "writer"))
	mustAdd(t, u, source.Uncooperative("shy", schema.NewSchema("keyword")))
	return u
}

func ids(ns ...int) []schema.SourceID {
	out := make([]schema.SourceID, len(ns))
	for i, n := range ns {
		out[i] = schema.SourceID(n)
	}
	return out
}

func ctx(t testing.TB, u *source.Universe, sel []schema.SourceID) *Context {
	t.Helper()
	return NewContext(u, nil, constraint.Set{}, sel)
}

func TestCardinality(t *testing.T) {
	u := dataUniverse(t)
	// Total = 150k over cooperative sources.
	got := Cardinality{}.Eval(ctx(t, u, ids(0)))
	if want := 50000.0 / 150000.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Card({s0}) = %v, want %v", got, want)
	}
	if got := (Cardinality{}).Eval(ctx(t, u, ids(0, 1, 2))); math.Abs(got-1) > 1e-12 {
		t.Errorf("Card(all coop) = %v, want 1", got)
	}
	if got := (Cardinality{}).Eval(ctx(t, u, ids(3))); got != 0 {
		t.Errorf("Card(uncooperative) = %v, want 0", got)
	}
	if got := (Cardinality{}).Eval(ctx(t, u, nil)); got != 0 {
		t.Errorf("Card(∅) = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	u := dataUniverse(t)
	// Universe distinct = [0, 75k). s0 covers 50k/75k ≈ 0.667.
	got := Coverage{}.Eval(ctx(t, u, ids(0)))
	if math.Abs(got-2.0/3.0) > 0.08 {
		t.Errorf("Coverage({s0}) = %v, want ≈0.667", got)
	}
	all := Coverage{}.Eval(ctx(t, u, ids(0, 1, 2)))
	if math.Abs(all-1) > 1e-9 {
		t.Errorf("Coverage(all coop) = %v, want 1", all)
	}
	// s2 adds nothing to s0.
	same := Coverage{}.Eval(ctx(t, u, ids(0, 2)))
	if math.Abs(same-got) > 1e-9 {
		t.Errorf("Coverage({s0,s2}) = %v, want %v (s2 duplicates s0)", same, got)
	}
	if got := (Coverage{}).Eval(ctx(t, u, ids(3))); got != 0 {
		t.Errorf("Coverage(uncooperative) = %v, want 0", got)
	}
}

func TestCoverageMonotone(t *testing.T) {
	// Adding a source never decreases coverage (signatures only gain bits).
	u := dataUniverse(t)
	prev := 0.0
	for k := 1; k <= 3; k++ {
		v := Coverage{}.Eval(ctx(t, u, ids(0, 1, 2)[:k]))
		if v+1e-12 < prev {
			t.Errorf("coverage decreased when adding source %d: %v → %v", k-1, prev, v)
		}
		prev = v
	}
}

func TestRedundancy(t *testing.T) {
	u := dataUniverse(t)
	// Single source: best possible.
	if got := (Redundancy{}).Eval(ctx(t, u, ids(0))); !testutil.AlmostEqual(got, 1) {
		t.Errorf("Redundancy({s0}) = %v, want 1", got)
	}
	// s0 and s2 are identical → worst (≈0).
	dup := Redundancy{}.Eval(ctx(t, u, ids(0, 2)))
	if dup > 0.1 {
		t.Errorf("Redundancy(identical pair) = %v, want ≈0", dup)
	}
	// s0 and s1 overlap by half: Σ|s| = 100k, |∪| = 75k, ratio = 4/3,
	// redundancy = (2 − 4/3)/1 = 2/3.
	half := Redundancy{}.Eval(ctx(t, u, ids(0, 1)))
	if math.Abs(half-2.0/3.0) > 0.08 {
		t.Errorf("Redundancy(half overlap) = %v, want ≈0.667", half)
	}
	// Disjoint synthetic pair → 1.
	u2 := source.NewUniverse(sigCfg)
	mustAdd(t, u2, tupleRange(t, 0, 30000, "a"))
	mustAdd(t, u2, tupleRange(t, 30000, 60000, "b"))
	disj := Redundancy{}.Eval(ctx(t, u2, ids(0, 1)))
	if disj < 0.9 {
		t.Errorf("Redundancy(disjoint) = %v, want ≈1", disj)
	}
	// No cooperative source → 0 (paper: uncooperative sources score 0).
	if got := (Redundancy{}).Eval(ctx(t, u, ids(3))); got != 0 {
		t.Errorf("Redundancy(uncooperative only) = %v, want 0", got)
	}
}

func TestMatchQualityQEF(t *testing.T) {
	u := dataUniverse(t)
	m := match.MustNew(u, match.Config{Theta: 0.3})
	c := NewContext(u, m, constraint.Set{}, ids(0, 1, 2))
	q := MatchQuality{}.Eval(c)
	if q <= 0 || q > 1 {
		t.Errorf("match quality = %v, want (0,1]", q)
	}
	// Memoization: second eval hits the cached result (same value).
	if q2 := (MatchQuality{}).Eval(c); !testutil.AlmostEqual(q2, q) {
		t.Errorf("memoized eval differs: %v vs %v", q2, q)
	}
	// Without a matcher, F1 is 0.
	if got := (MatchQuality{}).Eval(ctx(t, u, ids(0))); got != 0 {
		t.Errorf("no matcher: F1 = %v, want 0", got)
	}
	// Unsatisfiable source constraint → 0.
	bad := NewContext(u, m, constraint.Set{Sources: ids(3)}, ids(0, 3))
	if got := (MatchQuality{}).Eval(bad); got != 0 {
		t.Errorf("invalid-on-C match: F1 = %v, want 0", got)
	}
}

func TestWeightsValidate(t *testing.T) {
	qefs := MainQEFs()
	good := Weights{"match": 0.4, "card": 0.3, "coverage": 0.2, "redundancy": 0.1}
	if err := good.Validate(qefs); err != nil {
		t.Errorf("good weights rejected: %v", err)
	}
	cases := []Weights{
		{"match": 0.5, "card": 0.3, "coverage": 0.2},                                    // missing
		{"match": 0.4, "card": 0.3, "coverage": 0.2, "redundancy": 0.2},                 // sum ≠ 1
		{"match": -0.1, "card": 0.5, "coverage": 0.3, "redundancy": 0.3},                // negative
		{"match": 0.4, "card": 0.3, "coverage": 0.2, "redundancy": 0.1, "mystery": 0.0}, // unknown
		{"match": math.NaN(), "card": 0.3, "coverage": 0.2, "redundancy": 0.5},          // NaN
		{"match": 1.2, "card": -0.1, "coverage": -0.05, "redundancy": -0.05},            // out of range
	}
	for i, w := range cases {
		if err := w.Validate(qefs); err == nil {
			t.Errorf("case %d: bad weights accepted: %v", i, w)
		}
	}
}

func TestWeightsNormalized(t *testing.T) {
	w := Weights{"a": 2, "b": 2}
	n := w.Normalized()
	if !testutil.AlmostEqual(n["a"], 0.5) || !testutil.AlmostEqual(n["b"], 0.5) {
		t.Errorf("Normalized = %v", n)
	}
	z := Weights{"a": 0, "b": 0}.Normalized()
	if !testutil.AlmostEqual(z["a"], 0.5) || !testutil.AlmostEqual(z["b"], 0.5) {
		t.Errorf("zero weights Normalized = %v", z)
	}
	// Clone is independent.
	c := w.Clone()
	c["a"] = 9
	if !testutil.AlmostEqual(w["a"], 2) {
		t.Error("Clone shares storage")
	}
	names := w.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestPaperDefaultsSumToOne(t *testing.T) {
	sum := 0.0
	for _, v := range PaperDefaults() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("paper default weights sum to %v", sum)
	}
}

func TestUniform(t *testing.T) {
	w := Uniform(MainQEFs())
	if err := w.Validate(MainQEFs()); err != nil {
		t.Errorf("uniform weights invalid: %v", err)
	}
	if !testutil.AlmostEqual(w[NameCardinality], 0.25) {
		t.Errorf("uniform weight = %v", w[NameCardinality])
	}
}

func TestQualityEvalAndBreakdown(t *testing.T) {
	u := dataUniverse(t)
	m := match.MustNew(u, match.Config{Theta: 0.3})
	qefs := MainQEFs()
	q, err := NewQuality(qefs, Uniform(qefs))
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(u, m, constraint.Set{}, ids(0, 1))
	total := q.Eval(c)
	br := q.Breakdown(c)
	sum := 0.0
	for name, v := range br {
		if v < 0 || v > 1 {
			t.Errorf("QEF %s out of range: %v", name, v)
		}
		sum += 0.25 * v
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Errorf("Eval %v != weighted breakdown %v", total, sum)
	}
}

func TestNewQualityRejectsBad(t *testing.T) {
	if _, err := NewQuality(nil, Weights{}); err == nil {
		t.Error("empty QEF list accepted")
	}
	dup := []QEF{Cardinality{}, Cardinality{}}
	if _, err := NewQuality(dup, Weights{"card": 1}); err == nil {
		t.Error("duplicate QEF names accepted")
	}
	if _, err := NewQuality(MainQEFs(), Weights{"match": 1}); err == nil {
		t.Error("incomplete weights accepted")
	}
}

func charUniverse(t testing.TB) *source.Universe {
	t.Helper()
	u := source.NewUniverse(sigCfg)
	a := tupleRange(t, 0, 10000, "x")
	a.SetCharacteristic("mttf", 100)
	b := tupleRange(t, 10000, 40000, "y")
	b.SetCharacteristic("mttf", 200)
	c := tupleRange(t, 40000, 50000, "z") // no mttf
	mustAdd(t, u, a)
	mustAdd(t, u, b)
	mustAdd(t, u, c)
	return u
}

func TestWSum(t *testing.T) {
	u := charUniverse(t)
	q := Characteristic{Char: "mttf", Agg: WSum{}}
	if q.Name() != "mttf" {
		t.Errorf("Name = %q", q.Name())
	}
	// Range is [100, 200]. s0 normalizes to 0, s1 to 1.
	if got := q.Eval(ctx(t, u, ids(0))); got != 0 {
		t.Errorf("wsum({s0}) = %v, want 0", got)
	}
	if got := q.Eval(ctx(t, u, ids(1))); !testutil.AlmostEqual(got, 1) {
		t.Errorf("wsum({s1}) = %v, want 1", got)
	}
	// {s0, s1}: (0·10k + 1·30k) / 40k = 0.75.
	if got := q.Eval(ctx(t, u, ids(0, 1))); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("wsum({s0,s1}) = %v, want 0.75", got)
	}
	// Missing characteristic counts as the minimum.
	if got := q.Eval(ctx(t, u, ids(2))); got != 0 {
		t.Errorf("wsum({s2}) = %v, want 0", got)
	}
	if got := q.Eval(ctx(t, u, nil)); got != 0 {
		t.Errorf("wsum(∅) = %v, want 0", got)
	}
}

func TestInvertedCharacteristic(t *testing.T) {
	u := charUniverse(t)
	lat := Characteristic{Char: "mttf", Agg: WSum{}, Invert: true}
	if got := lat.Eval(ctx(t, u, ids(0))); !testutil.AlmostEqual(got, 1) {
		t.Errorf("inverted low value = %v, want 1", got)
	}
	if got := lat.Eval(ctx(t, u, ids(1))); got != 0 {
		t.Errorf("inverted high value = %v, want 0", got)
	}
}

func TestMeanMinMaxAggregators(t *testing.T) {
	u := charUniverse(t)
	sel := ids(0, 1)
	if got := (Characteristic{Char: "mttf", Agg: Mean{}}).Eval(ctx(t, u, sel)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mean = %v, want 0.5", got)
	}
	if got := (Characteristic{Char: "mttf", Agg: Min{}}).Eval(ctx(t, u, sel)); got != 0 {
		t.Errorf("min = %v, want 0", got)
	}
	if got := (Characteristic{Char: "mttf", Agg: Max{}}).Eval(ctx(t, u, sel)); !testutil.AlmostEqual(got, 1) {
		t.Errorf("max = %v, want 1", got)
	}
	// Empty selections.
	for _, agg := range []Aggregator{Mean{}, Min{}, Max{}, WSum{}} {
		if got := (Characteristic{Char: "mttf", Agg: agg}).Eval(ctx(t, u, nil)); got != 0 {
			t.Errorf("%s(∅) = %v, want 0", agg.Name(), got)
		}
	}
}

func TestDegenerateCharacteristicRange(t *testing.T) {
	u := source.NewUniverse(sigCfg)
	a := tupleRange(t, 0, 1000, "x")
	a.SetCharacteristic("fees", 5)
	b := tupleRange(t, 1000, 2000, "y")
	b.SetCharacteristic("fees", 5)
	mustAdd(t, u, a)
	mustAdd(t, u, b)
	got := (Characteristic{Char: "fees", Agg: WSum{}}).Eval(ctx(t, u, ids(0, 1)))
	if !testutil.AlmostEqual(got, 1) {
		t.Errorf("degenerate range = %v, want 1 (no discrimination)", got)
	}
	// Unknown characteristic → 0.
	if got := (Characteristic{Char: "nope", Agg: WSum{}}).Eval(ctx(t, u, ids(0))); got != 0 {
		t.Errorf("unknown characteristic = %v, want 0", got)
	}
}

func TestAggregatorByName(t *testing.T) {
	for _, name := range []string{"wsum", "mean", "min", "max"} {
		a, err := AggregatorByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("AggregatorByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := AggregatorByName("median"); err == nil {
		t.Error("unknown aggregator accepted")
	}
}

// TestQEFRangeProperty fuzzes random source subsets and asserts every QEF
// stays within [0,1] — the contract the optimization problem depends on.
func TestQEFRangeProperty(t *testing.T) {
	u := dataUniverse(t)
	m := match.MustNew(u, match.Config{Theta: 0.3})
	qefs := append(MainQEFs(), Characteristic{Char: "mttf", Agg: WSum{}})
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var sel []schema.SourceID
		for id := 0; id < u.Len(); id++ {
			if r.Intn(2) == 0 {
				sel = append(sel, schema.SourceID(id))
			}
		}
		c := NewContext(u, m, constraint.Set{}, sel)
		for _, q := range qefs {
			v := q.Eval(c)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("QEF %s out of range on %v: %v", q.Name(), sel, v)
			}
		}
	}
}

// mustAdd adds s to u, failing the test on any error.
func mustAdd(t testing.TB, u *source.Universe, s *source.Source) {
	t.Helper()
	if _, err := u.Add(s); err != nil {
		t.Fatal(err)
	}
}
