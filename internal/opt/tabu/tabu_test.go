package tabu

import (
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/opt/random"
	"mube/internal/schema"
)

func TestName(t *testing.T) {
	if (Solver{}).Name() != "tabu" {
		t.Errorf("Name = %q", Solver{}.Name())
	}
}

func TestSolveImprovesOverRandomStart(t *testing.T) {
	p := opttest.Problem(t, 4, constraint.Set{})
	// A random baseline with a tiny budget approximates the starting point.
	base, err := (random.Solver{}).Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 800})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality+1e-9 < base.Quality {
		t.Errorf("tabu %.4f below 5-sample random %.4f", sol.Quality, base.Quality)
	}
}

func TestTenureVariantsStayFeasible(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{2}}
	p := opttest.Problem(t, 4, cons)
	for _, tenure := range []int{1, 4, 16, 64} {
		s := Solver{Tenure: tenure}
		sol, err := s.Solve(context.Background(), p, opt.Options{Seed: 3, MaxEvals: 300})
		if err != nil {
			t.Fatalf("tenure %d: %v", tenure, err)
		}
		if !p.Feasible(sol.IDs) {
			t.Errorf("tenure %d: infeasible %v", tenure, sol.IDs)
		}
	}
}

func TestFullyConstrainedProblem(t *testing.T) {
	// Required sources fill m: the only feasible subset is the constraint
	// set itself; tabu must return it without crashing on the empty
	// neighborhood.
	p, cons := opttest.FullyConstrained(t)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 100, MaxIters: 20, Patience: 5})
	if err != nil {
		t.Fatal(err)
	}
	req := cons.RequiredSources()
	if len(sol.IDs) != len(req) {
		t.Fatalf("solution %v, want exactly %v", sol.IDs, req)
	}
	for i := range req {
		if sol.IDs[i] != req[i] {
			t.Fatalf("solution %v, want %v", sol.IDs, req)
		}
	}
}

func TestSmallNeighborhoodStillSearches(t *testing.T) {
	p := opttest.Problem(t, 3, constraint.Set{})
	sol, err := (Solver{Neighbors: 2}).Solve(context.Background(), p, opt.Options{Seed: 5, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality <= 0 {
		t.Errorf("quality = %v", sol.Quality)
	}
}

func TestIsTabu(t *testing.T) {
	tu := map[schema.SourceID]int{}
	tu[3] = 10
	if !isTabu(tu, opt.Move{Add: 3, Drop: -1}, 5) {
		t.Error("move touching tabu source admitted")
	}
	if isTabu(tu, opt.Move{Add: 3, Drop: -1}, 10) {
		t.Error("expired tabu still blocks")
	}
	if isTabu(tu, opt.Move{Add: 4, Drop: -1}, 5) {
		t.Error("untouched source tabu")
	}
	if !isTabu(tu, opt.Move{Add: -1, Drop: 3}, 5) {
		t.Error("drop of tabu source admitted")
	}
}
