package tabu

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_trace.jsonl")

// goldenSolve runs the fixed tiny seeded tabu solve the golden trace was
// recorded from and returns the JSONL trace bytes.
func goldenSolve(t *testing.T, workers int) []byte {
	t.Helper()
	p := opttest.Problem(t, 3, constraint.Set{})
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	opts := opt.Options{
		Seed:     5,
		MaxEvals: 120,
		MaxIters: 8,
		Patience: 4,
		Parallel: workers,
		Recorder: telemetry.New(sink),
	}
	if _, err := (Solver{}).Solve(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTrace pins the trace format: the same seed must reproduce the
// checked-in trace byte for byte, at one worker and at four. Any intentional
// change to event names, attribute order, or float formatting must regenerate
// the golden file with `go test ./internal/opt/tabu -run GoldenTrace -update`
// and show up in review.
func TestGoldenTrace(t *testing.T) {
	got := goldenSolve(t, 1)
	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace diverged from golden (run with -update if intentional)\ngot:\n%s\nwant:\n%s", got, want)
	}
	if par := goldenSolve(t, 4); !bytes.Equal(par, want) {
		t.Errorf("trace at 4 workers diverged from golden\ngot:\n%s", par)
	}
}
