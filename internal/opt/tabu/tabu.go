// Package tabu implements µBE's default solver (§6): tabu search, a
// combinatorial optimization algorithm that remembers its recent path
// through the search space and declares recently touched moves tabu for a
// number of iterations, forcing the search out of local optima while
// bounding search time. The paper found tabu search more robust and
// higher-quality than stochastic local search, simulated annealing, and
// particle swarm optimization on this problem.
//
// User constraints define permanently tabu regions: required sources can
// never be dropped and the size cap m can never be exceeded — such moves are
// simply never generated.
package tabu

import (
	"context"

	"mube/internal/opt"
	"mube/internal/schema"
	"mube/internal/telemetry"
)

// Solver is a configured tabu search.
type Solver struct {
	// Tenure is the number of iterations a touched source stays tabu.
	// Default 8.
	Tenure int
	// Neighbors is the number of candidate moves sampled per iteration.
	// Default 30.
	Neighbors int
}

// Defaults for the solver's zero fields.
const (
	DefaultTenure    = 8
	DefaultNeighbors = 30
)

// Name returns "tabu".
func (Solver) Name() string { return "tabu" }

// Solve runs tabu search within the options' budget and returns the best
// solution found. A canceled or expired ctx stops the search within one
// evaluation batch and returns best-so-far.
func (s Solver) Solve(ctx context.Context, p *opt.Problem, opts Options) (*opt.Solution, error) {
	return s.solve(ctx, p, opts)
}

// Options aliases opt.Options so callers can use either name.
type Options = opt.Options

func (s Solver) solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if s.Tenure == 0 {
		s.Tenure = DefaultTenure
	}
	if s.Neighbors == 0 {
		s.Neighbors = DefaultNeighbors
	}
	opts = opts.WithDefaults()
	search, err := opt.NewSearch(ctx, p, opts)
	if err != nil {
		return nil, err
	}

	span := search.BeginSolve(s.Name())
	cur := search.NewSubset(search.StartSubset(p, opts))
	curQ := search.Eval.Eval(cur.IDs())
	bestIDs := cur.IDs()
	bestQ := curQ

	// tabuUntil[id] = first iteration at which moves touching id are
	// admissible again.
	tabuUntil := make(map[schema.SourceID]int)
	noImprove := 0

	for iter := 0; iter < opts.MaxIters && noImprove < opts.Patience && !search.Eval.Exhausted() && !search.Stopped(); iter++ {
		// Intensification: after half the patience without improvement,
		// jump back to the best solution found and clear the tabu list, so
		// the remaining budget explores the elite neighborhood instead of
		// drifting.
		if noImprove == opts.Patience/2 && noImprove > 0 {
			cur = search.NewSubset(bestIDs)
			curQ = bestQ
			tabuUntil = make(map[schema.SourceID]int)
		}
		moves := search.Moves(cur, s.Neighbors)
		// Score the whole sampled neighborhood as one batch: the moves are
		// independent, so their Q(S') values fan out to the evaluator's
		// worker pool while selection below stays in deterministic order.
		qs := search.EvalMoves(cur, moves)
		bestMove := opt.NoMove
		bestMoveQ := -1.0
		for mi, mv := range moves {
			q := qs[mi]
			tabu := isTabu(tabuUntil, mv, iter)
			// Aspiration criterion: a tabu move that beats the best-ever
			// solution is always admissible.
			if tabu && q <= bestQ {
				continue
			}
			if q > bestMoveQ {
				bestMoveQ = q
				bestMove = mv
			}
		}
		if bestMove == opt.NoMove {
			// Entire sampled neighborhood is tabu; age the list by one
			// iteration and resample.
			noImprove++
			search.TraceIter(s.Name(), iter, curQ, bestQ,
				telemetry.Int("tenure", s.Tenure),
				telemetry.Int("tabu_active", tabuActive(tabuUntil, iter)))
			continue
		}

		// Tabu search's hallmark: take the best admissible move even when
		// it worsens the current solution.
		cur.Apply(bestMove)
		curQ = bestMoveQ
		if bestMove.Add >= 0 {
			tabuUntil[bestMove.Add] = iter + s.Tenure
		}
		if bestMove.Drop >= 0 {
			tabuUntil[bestMove.Drop] = iter + s.Tenure
		}

		if curQ > bestQ {
			bestQ = curQ
			bestIDs = cur.IDs()
			noImprove = 0
		} else {
			noImprove++
		}
		search.TraceIter(s.Name(), iter, curQ, bestQ,
			telemetry.Int("tenure", s.Tenure),
			telemetry.Int("tabu_active", tabuActive(tabuUntil, iter)))
	}
	sol := search.Eval.Solution(bestIDs, s.Name())
	span.End()
	return sol, nil
}

// tabuActive counts the sources still tabu after iter's update, for the
// iteration trace.
func tabuActive(tabuUntil map[schema.SourceID]int, iter int) int {
	n := 0
	for _, until := range tabuUntil {
		if until > iter {
			n++
		}
	}
	return n
}

// isTabu reports whether mv touches a source that is still tabu at iter.
func isTabu(tabuUntil map[schema.SourceID]int, mv opt.Move, iter int) bool {
	if mv.Add >= 0 && tabuUntil[mv.Add] > iter {
		return true
	}
	if mv.Drop >= 0 && tabuUntil[mv.Drop] > iter {
		return true
	}
	return false
}
