// Package opttest provides the shared problem fixture for the per-solver
// test suites. It lives beside the solver packages so their tests don't each
// rebuild the QEF stack.
package opttest

import (
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/testutil"
)

// Problem builds the standard 12-source Books problem with the paper's five
// QEFs.
func Problem(t testing.TB, maxSources int, cons constraint.Set) *opt.Problem {
	t.Helper()
	u := testutil.BooksUniverse(t)
	matcher, err := match.New(u, match.Config{Theta: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	q, err := qef.NewQuality(qefs, qef.Weights{
		qef.NameMatchQuality: 0.25,
		qef.NameCardinality:  0.25,
		qef.NameCoverage:     0.20,
		qef.NameRedundancy:   0.15,
		"mttf":               0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &opt.Problem{
		Universe:    u,
		Matcher:     matcher,
		Quality:     q,
		MaxSources:  maxSources,
		Constraints: cons,
	}
}

// FullyConstrained returns a problem whose required sources already fill m —
// exactly one feasible subset exists. Every solver must return it.
func FullyConstrained(t testing.TB) (*opt.Problem, constraint.Set) {
	t.Helper()
	cons := constraint.Set{Sources: []schema.SourceID{3, 7, 9}}
	p := Problem(t, 3, cons)
	return p, cons
}
