package opt

import (
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"mube/internal/match"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/telemetry"
)

// Evaluator computes Q(S) for candidate source sets, memoizing results so
// that revisits of a subset (common in local search) are free and so that
// solver budgets can be expressed in *distinct* evaluations.
//
// The evaluator is safe for concurrent use: the memo and budget counters are
// mutex-guarded, and EvalBatch fans independent candidates out to a worker
// pool. Determinism contract (see DESIGN.md): a batch's memo lookups and
// budget debits are resolved sequentially in candidate order before any
// worker runs, and workers compute the pure function Q(S) only — so for a
// fixed seed a solve returns bit-identical results whatever the worker count,
// and MaxEvals cuts off at the same subset it would sequentially.
//
// That exact accounting holds per calling goroutine (solvers drive the
// evaluator from one goroutine). Independent concurrent callers racing on the
// same uncached subset may each debit an evaluation before either memoizes it
// — duplicate suppression is per batch, not global — so under concurrent use
// Evals is an upper bound on distinct subsets, never an undercount.
type Evaluator struct {
	p       *Problem
	workers int // worker-pool size for EvalBatch; 1 = in-line
	ctx     context.Context
	rec     *telemetry.Recorder // nil = telemetry off

	mu     sync.Mutex
	memo   map[string]float64
	evals  int    // cache misses (distinct subsets evaluated)
	calls  int    // total Eval calls
	limit  int    // MaxEvals; 0 = unlimited
	keyBuf []byte // reusable key-encoding buffer, guarded by mu

	// scratch buffers (PCSA union signatures) recycled across evaluations;
	// each in-flight evaluation checks one out for exclusive use.
	scratch sync.Pool

	// Incremental-scoring state (see delta.go): the counting union of the
	// most recent delta batch's base, cached across batches so a moving
	// local-search base rebases in O(diff) instead of rebuilding in O(|S|).
	deltaMu     sync.Mutex
	deltaCached *deltaState
	noDelta     bool // SetDelta(false): score everything via the full path

	// Cluster-sharded matching (see match.Sharded): flip candidates re-cluster
	// only the shards their add/drop sources touch, presetting the match score
	// on the flip context. Built lazily on first delta batch; wantMatch gates
	// the whole path off when no positively weighted QEF reads Match(S).
	noShard   bool // SetShard(false): flips re-cluster from scratch
	wantMatch bool
	shardOnce sync.Once
	sharded   *match.Sharded
}

// NewEvaluator builds an evaluator for p with an optional evaluation limit.
// The batch worker pool defaults to GOMAXPROCS; see SetWorkers.
func NewEvaluator(p *Problem, maxEvals int) *Evaluator {
	e := &Evaluator{
		p:       p,
		workers: runtime.GOMAXPROCS(0),
		//mube:vet-ignore ctxflow — placeholder until BindContext; Solve always rebinds
		ctx:   context.Background(),
		memo:  make(map[string]float64),
		limit: maxEvals,
	}
	e.scratch.New = func() any { return &qef.Scratch{} }
	for _, f := range p.Quality.QEFs {
		if _, ok := f.(qef.MatchQuality); ok && p.Quality.Weights[f.Name()] > 0 {
			e.wantMatch = true
		}
	}
	return e
}

// shardIndex lazily builds the matcher's cluster-shard view of the problem's
// constraints, shared by every batch. Returns nil when sharding is off, no
// matcher is configured, or no QEF reads the match score.
func (e *Evaluator) shardIndex() *match.Sharded {
	if e.noShard || !e.wantMatch || e.p.Matcher == nil {
		return nil
	}
	e.shardOnce.Do(func() {
		e.sharded = e.p.Matcher.NewSharded(e.p.Constraints)
	})
	return e.sharded
}

// Instrument attaches a telemetry recorder. A nil recorder (the default)
// disables all instrumentation. Telemetry never feeds back into evaluation:
// with the same seed, Q(S) values, memo contents, and budget accounting are
// bit-identical with a recorder attached or not.
func (e *Evaluator) Instrument(rec *telemetry.Recorder) { e.rec = rec }

// BindContext attaches the solve's context: EvalBatch checks it between its
// planning pass and the worker fan-out, so a cancellation or deadline stops
// the search within one batch. A nil ctx resets to context.Background().
func (e *Evaluator) BindContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() //mube:vet-ignore ctxflow — documented nil-reset semantics
	}
	e.ctx = ctx
}

// Unscored is the sentinel quality for candidates the evaluator refused to
// score — requested past the MaxEvals budget, or abandoned on cancellation.
// It is -Inf: it can never win a best-so-far comparison (so consuming a
// partially scored batch is harmless), and it is unmistakable for a genuine
// Q(S) = 0, which infeasible-but-scored subsets legitimately produce.
// Sentinels are never memoized.
func Unscored(q float64) bool { return math.IsInf(q, -1) }

// unscored is the sentinel value Unscored detects.
var unscored = math.Inf(-1)

// SetWorkers sets the EvalBatch worker-pool size: 1 evaluates candidates
// in-line on the caller's goroutine, n > 1 uses n workers, and n <= 0 resets
// to GOMAXPROCS. Results are identical for every setting; only wall-clock
// time changes.
func (e *Evaluator) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
}

// Workers returns the effective EvalBatch worker-pool size.
func (e *Evaluator) Workers() int { return e.workers }

// appendKey canonicalizes a *sorted* id slice into a compact map key using
// uvarint encoding, so IDs of any magnitude stay collision-free (a fixed
// two-byte encoding silently collided for IDs ≥ 65536) and small IDs — the
// common case — still cost one byte. It appends to buf and returns the
// extended slice; memo lookups index the map with string(buf) directly (which
// the compiler keeps off the heap) and materialize a string only on a miss.
func appendKey(buf []byte, ids []schema.SourceID) []byte {
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(uint32(id)))
	}
	return buf
}

// key is the one-shot form of appendKey for paths off the hot loop.
func key(ids []schema.SourceID) string {
	return string(appendKey(make([]byte, 0, len(ids)*binary.MaxVarintLen32), ids))
}

// Exhausted reports whether the evaluation budget is spent.
func (e *Evaluator) Exhausted() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.limit > 0 && e.evals >= e.limit
}

// Remaining returns how many evaluations are left in the MaxEvals budget, or
// -1 when the budget is unlimited. Solvers that draw fixed-size candidate
// chunks clamp them to this so no candidate is requested only to come back
// unscored.
func (e *Evaluator) Remaining() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.limit <= 0 {
		return -1
	}
	if r := e.limit - e.evals; r > 0 {
		return r
	}
	return 0
}

// Evals returns the number of distinct subsets evaluated so far.
func (e *Evaluator) Evals() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// Calls returns the total number of Eval invocations (including cache hits).
func (e *Evaluator) Calls() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

// compute evaluates Q(ids) from scratch: the pure, side-effect-free part of
// an evaluation, safe to run on any worker goroutine.
func (e *Evaluator) compute(ids []schema.SourceID, sc *qef.Scratch) float64 {
	if !e.p.Feasible(ids) {
		return 0
	}
	ctx := qef.NewContextScratch(e.p.Universe, e.p.Matcher, e.p.Constraints, ids, sc)
	v := e.p.Quality.Eval(ctx)
	// Counter adds are commutative, so this is safe from worker goroutines.
	if m := ctx.Merges(); m > 0 {
		e.rec.Add("pcsa.merges", int64(m))
	}
	return v
}

// Eval returns Q(S) for the given source set. ids must be sorted (use
// SortIDs); infeasible sets score 0. Once the budget is exhausted, unknown
// subsets return the Unscored sentinel (-Inf, never memoized) — solvers
// should check Exhausted and stop.
func (e *Evaluator) Eval(ids []schema.SourceID) float64 {
	e.rec.Add("eval.calls", 1)
	e.mu.Lock()
	e.calls++
	e.keyBuf = appendKey(e.keyBuf[:0], ids)
	if v, ok := e.memo[string(e.keyBuf)]; ok {
		e.mu.Unlock()
		e.rec.Add("eval.memo_hits", 1)
		return v
	}
	if e.limit > 0 && e.evals >= e.limit {
		e.mu.Unlock()
		e.rec.Add("eval.unscored", 1)
		return unscored
	}
	e.evals++
	k := string(e.keyBuf)
	e.mu.Unlock()

	sc := e.scratch.Get().(*qef.Scratch)
	v := e.compute(ids, sc)
	e.scratch.Put(sc)
	e.rec.Add("eval.computed", 1)

	e.mu.Lock()
	e.memo[k] = v
	e.mu.Unlock()
	return v
}

// batchJob is one distinct subset a batch must compute: the candidate indexes
// in out share the subset (duplicates within the batch) and receive its value.
// A job carries an optional incremental-scoring plan: preset union stats
// (exhaustive's push/pop DFS) or a single flip against the batch's shared
// base (the local-search neighborhoods). Jobs with neither run the full
// re-merge path.
type batchJob struct {
	key string
	ids []schema.SourceID
	out []int
	v   float64

	// st, when non-nil, holds union statistics precomputed by the caller.
	st *qef.UnionStats
	// flip + delta: score as base±flip against the batch's delta state.
	flip  Move
	delta bool
}

// candidate pairs one batch entry with its incremental-scoring plan.
type candidate struct {
	ids  []schema.SourceID
	st   *qef.UnionStats
	flip Move
	// hasFlip marks a validated single flip against the batch's base.
	hasFlip bool
}

// EvalBatch evaluates a slice of independent candidate subsets and returns
// their qualities in candidate order. Each ids slice must be sorted (SortIDs)
// and must not be mutated until EvalBatch returns.
//
// EvalBatch is observationally identical to calling Eval on each candidate in
// order — memo hits, duplicate candidates, and the MaxEvals cutoff resolve
// against the same candidate index — but distinct uncached subsets are scored
// concurrently on up to Workers goroutines. Solvers therefore keep all
// randomness on their own goroutine, batch the neighborhood or population
// they would have scored sequentially, and consume the returned slice in
// order.
func (e *Evaluator) EvalBatch(cands [][]schema.SourceID) []float64 {
	wrapped := make([]candidate, len(cands))
	for i, ids := range cands {
		wrapped[i] = candidate{ids: ids}
	}
	return e.evalCandidates(wrapped, nil)
}

// evalCandidates is the shared batch engine behind EvalBatch, EvalBatchDelta,
// and EvalBatchPreset. base is non-nil only for delta batches and names the
// subset the candidates' flips are relative to.
//
// The determinism contract is the planning-vs-fan-out split: memo hits,
// duplicate suppression, and budget debits resolve sequentially in candidate
// order under the lock; the fan-out computes pure functions only. Whether a
// job is scored by the full re-merge, a preset, or a flip against the delta
// state never changes its value (the incremental paths are bit-exact), so
// results are identical at any worker count and with the delta path on or
// off.
func (e *Evaluator) evalCandidates(cands []candidate, base []schema.SourceID) []float64 {
	out := make([]float64, len(cands))

	// Planning pass: resolve memo hits and budget debits sequentially in
	// candidate order. Everything order-dependent happens here, under the
	// lock; only pure Q(S) computations remain afterwards.
	var hits, dups, refused int
	e.mu.Lock()
	var jobs []*batchJob
	var pending map[string]*batchJob
	for i, c := range cands {
		e.calls++
		// Memo and pending lookups index with string(keyBuf) directly — the
		// compiler elides the conversion's allocation — so cache hits and
		// duplicates cost zero heap; only a fresh job materializes its key.
		e.keyBuf = appendKey(e.keyBuf[:0], c.ids)
		if v, ok := e.memo[string(e.keyBuf)]; ok {
			out[i] = v
			hits++
			continue
		}
		if j, ok := pending[string(e.keyBuf)]; ok {
			j.out = append(j.out, i)
			dups++
			continue
		}
		if e.limit > 0 && e.evals >= e.limit {
			out[i] = unscored // same as sequential Eval past the budget
			refused++
			continue
		}
		e.evals++
		k := string(e.keyBuf)
		j := &batchJob{key: k, ids: c.ids, out: []int{i}, st: c.st, flip: c.flip, delta: c.hasFlip}
		if pending == nil {
			pending = make(map[string]*batchJob, len(cands)-i)
		}
		pending[k] = j
		jobs = append(jobs, j)
	}
	e.mu.Unlock()

	// The planning-vs-fan-out split: of len(cands) candidates, hits+dups+
	// refused were resolved during planning and len(jobs) fan out to workers.
	e.rec.Add("eval.calls", int64(len(cands)))
	e.rec.Add("eval.batches", 1)
	e.rec.Add("eval.memo_hits", int64(hits))
	e.rec.Add("eval.batch_dups", int64(dups))
	e.rec.Add("eval.unscored", int64(refused))

	// Cancellation check, between the planning pass and the worker fan-out:
	// a canceled or expired context abandons the batch before any Q(S) is
	// computed. The planned budget debits are reverted — no evaluation
	// happened, so Evals stays truthful — and the abandoned candidates come
	// back as Unscored sentinels, which no solver comparison can mistake for
	// a real quality.
	if err := e.ctx.Err(); err != nil && len(jobs) > 0 {
		e.mu.Lock()
		e.evals -= len(jobs)
		e.mu.Unlock()
		for _, j := range jobs {
			for _, i := range j.out {
				out[i] = unscored
			}
		}
		e.rec.Add("eval.budget_reverts", int64(len(jobs)))
		e.rec.Emit("eval.abort",
			telemetry.Int("cands", len(cands)),
			telemetry.Int("reverted", len(jobs)))
		return out
	}

	if len(jobs) > 0 {
		// Acquire (build or rebase) the shared delta state once per batch,
		// before the fan-out: workers then read it concurrently without
		// mutation. A flip whose drop side would read a saturated counting
		// lane is demoted to the full path here, deterministically.
		var ds *deltaState
		deltaHits := 0
		for _, j := range jobs {
			if j.delta {
				if ds == nil {
					ds = e.acquireDelta(base)
				}
				if j.flip.Drop >= 0 && ds.saturated() &&
					e.p.Universe.Source(j.flip.Drop).Signature != nil {
					j.delta = false
				}
			}
			if j.delta || j.st != nil {
				deltaHits++
			}
		}
		e.rec.Add("eval.delta_hits", int64(deltaHits))

		workers := e.workers
		if workers > len(jobs) {
			workers = len(jobs)
		}
		if workers <= 1 {
			sc := e.scratch.Get().(*qef.Scratch)
			for _, j := range jobs {
				j.v = e.computeJob(j, ds, sc)
			}
			e.scratch.Put(sc)
		} else {
			// Workers pull jobs off a shared cursor. Which worker computes
			// which job is scheduler-dependent, but each job's value is a
			// pure function of its subset (and the immutable delta state),
			// so results are unaffected.
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sc := e.scratch.Get().(*qef.Scratch)
					defer e.scratch.Put(sc)
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(jobs) {
							return
						}
						jobs[i].v = e.computeJob(jobs[i], ds, sc)
					}
				}()
			}
			wg.Wait()
		}
		if ds != nil {
			e.releaseDelta(ds)
		}
	}

	e.mu.Lock()
	for _, j := range jobs {
		e.memo[j.key] = j.v
		for _, i := range j.out {
			out[i] = j.v
		}
	}
	e.mu.Unlock()

	// Emitted from the calling goroutine after the fan-out joins, so the trace
	// stream is identical at any worker count.
	e.rec.Add("eval.computed", int64(len(jobs)))
	if e.rec != nil {
		e.rec.Observe("eval.batch_size", float64(len(cands)))
		e.rec.Observe("eval.batch_fanout", float64(len(jobs)))
		e.rec.Emit("eval.batch",
			telemetry.Int("cands", len(cands)),
			telemetry.Int("hits", hits),
			telemetry.Int("dups", dups),
			telemetry.Int("unscored", refused),
			telemetry.Int("jobs", len(jobs)))
	}
	return out
}

// computeJob dispatches one job to its scoring path: preset stats, flip
// against the delta state, or the full re-merge. All three return bit-
// identical values for the same subset.
func (e *Evaluator) computeJob(j *batchJob, ds *deltaState, sc *qef.Scratch) float64 {
	switch {
	case j.st != nil:
		return e.computePreset(j.ids, *j.st, sc)
	case j.delta && ds != nil:
		return e.computeFlip(j.ids, j.flip, ds, sc)
	default:
		return e.compute(j.ids, sc)
	}
}

// Status derives how the solve ended from the bound context and the budget:
// a dead context wins (deadline over cancel per its Err), then budget
// exhaustion, else completed.
func (e *Evaluator) Status() Status {
	if err := e.ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			return StatusDeadline
		}
		return StatusCanceled
	}
	if e.Exhausted() {
		return StatusExhausted
	}
	return StatusCompleted
}

// qualityOf returns the true Q(ids) via memo-or-compute WITHOUT debiting the
// evaluation budget, so the final solution report is truthful even when the
// solve stopped on budget exhaustion or cancellation (Eval would return the
// Unscored sentinel then).
func (e *Evaluator) qualityOf(ids []schema.SourceID) float64 {
	k := key(ids)
	e.mu.Lock()
	if v, ok := e.memo[k]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	sc := e.scratch.Get().(*qef.Scratch)
	v := e.compute(ids, sc)
	e.scratch.Put(sc)
	e.mu.Lock()
	e.memo[k] = v
	e.mu.Unlock()
	return v
}

// Solution materializes the full solution report for a chosen subset,
// re-deriving the mediated schema and per-QEF breakdown. The reported quality
// is always the true Q(S) (computed outside the MaxEvals budget if needed),
// and Status records how the solve ended.
func (e *Evaluator) Solution(ids []schema.SourceID, solver string) *Solution {
	sorted := SortIDs(append([]schema.SourceID(nil), ids...))
	ctx := qef.NewContext(e.p.Universe, e.p.Matcher, e.p.Constraints, sorted)
	sol := &Solution{
		IDs:       sorted,
		Quality:   e.qualityOf(sorted),
		Breakdown: e.p.Quality.Breakdown(ctx),
		Evals:     e.Evals(),
		Solver:    solver,
		Status:    e.Status(),
	}
	if e.p.Matcher != nil {
		if res, err := ctx.MatchResult(); err == nil && res.OK {
			sol.Schema = res.Schema
			sol.GAQuality = res.GAQuality
			sol.MatchOK = true
		}
	}
	e.rec.Emit("solver.done",
		telemetry.Str("solver", solver),
		telemetry.Float("best_q", sol.Quality),
		telemetry.Int("evals", sol.Evals),
		telemetry.Str("status", string(sol.Status)))
	return sol
}

// Search is the shared state local-search solvers operate on: the problem
// split into required sources (fixed) and optional candidates, plus an RNG.
type Search struct {
	// Eval is the shared memoizing evaluator.
	Eval *Evaluator
	// Required are the sources every feasible solution must contain.
	Required []schema.SourceID
	// Optional are all non-required source IDs.
	Optional []schema.SourceID
	// Rand drives all stochastic choices.
	Rand *rand.Rand
	// MaxSources is m.
	MaxSources int
	// Rec is the run's telemetry recorder (nil = off). Solvers emit their
	// per-iteration convergence events through TraceIter.
	Rec *telemetry.Recorder

	ctx context.Context
}

// TraceIter records one solver iteration: the current and best-so-far Q plus
// any solver-specific attrs (tabu tenure, annealing temperature, …). Solvers
// call it once per iteration from the solve goroutine, so trace bytes are
// identical at any evaluator worker count.
func (s *Search) TraceIter(solver string, iter int, curQ, bestQ float64, extra ...telemetry.Attr) {
	if s.Rec == nil {
		return
	}
	attrs := make([]telemetry.Attr, 0, 4+len(extra))
	attrs = append(attrs,
		telemetry.Str("solver", solver),
		telemetry.Int("iter", iter),
		telemetry.Float("cur_q", curQ),
		telemetry.Float("best_q", bestQ))
	attrs = append(attrs, extra...)
	s.Rec.Emit("solver.iter", attrs...)
	s.Rec.Add("solver.iters", 1)
	s.Rec.Gauge("solver.best_q", bestQ)
}

// BeginSolve opens the "solver.run" span that wraps a solver's whole search
// loop, so solver.iter / eval.batch events nest under it in the span tree.
// Solvers call it right after NewSearch and End the returned span (on every
// path) once the final Solution has been built. Inert when Rec is nil.
func (s *Search) BeginSolve(solver string) telemetry.Span {
	return s.Rec.BeginSpan("solver.run", telemetry.Str("solver", solver))
}

// Stopped reports whether the solve's context is canceled or past its
// deadline. Solvers check it at iteration boundaries and return best-so-far.
func (s *Search) Stopped() bool { return s.ctx.Err() != nil }

// NewSearch prepares shared search state bound to ctx (nil means no
// cancellation). It validates the problem.
func NewSearch(ctx context.Context, p *Problem, opts Options) (*Search, error) {
	if ctx == nil {
		ctx = context.Background() //mube:vet-ignore ctxflow — documented nil-means-no-cancellation API
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	req := p.Constraints.RequiredSources()
	reqSet := make(map[schema.SourceID]struct{}, len(req))
	for _, id := range req {
		reqSet[id] = struct{}{}
	}
	pool := p.Universe.IDs()
	if opts.Candidates != nil {
		pool = SortIDs(append([]schema.SourceID(nil), opts.Candidates...))
	}
	var optional []schema.SourceID
	for _, id := range pool {
		if _, isReq := reqSet[id]; !isReq {
			optional = append(optional, id)
		}
	}
	ev := NewEvaluator(p, opts.MaxEvals)
	ev.SetWorkers(opts.Parallel)
	ev.BindContext(ctx)
	ev.Instrument(opts.Recorder)
	ev.SetDelta(!opts.NoDelta)
	ev.SetShard(!opts.NoShard)
	return &Search{
		Eval:       ev,
		Required:   req,
		Optional:   optional,
		Rand:       rand.New(rand.NewSource(opts.Seed)),
		MaxSources: p.MaxSources,
		Rec:        opts.Recorder,
		ctx:        ctx,
	}, nil
}

// StartSubset returns the search's starting point: the feasible warm-start
// set when one was supplied, otherwise a random feasible subset.
func (s *Search) StartSubset(p *Problem, opts Options) []schema.SourceID {
	if len(opts.Initial) > 0 {
		ids := SortIDs(append([]schema.SourceID(nil), opts.Initial...))
		if p.Feasible(ids) {
			return ids
		}
	}
	return s.RandomSubset()
}

// RandomSubset returns a random feasible subset: all required sources plus a
// random draw of optional sources filling up to MaxSources.
func (s *Search) RandomSubset() []schema.SourceID {
	ids := append([]schema.SourceID(nil), s.Required...)
	free := s.MaxSources - len(ids)
	if free > len(s.Optional) {
		free = len(s.Optional)
	}
	perm := s.Rand.Perm(len(s.Optional))
	for i := 0; i < free; i++ {
		ids = append(ids, s.Optional[perm[i]])
	}
	return SortIDs(ids)
}

// Subset is a mutable feasible source set used by the local-search solvers.
type Subset struct {
	members map[schema.SourceID]struct{}
	search  *Search
}

// NewSubset wraps ids (assumed feasible) for neighborhood exploration.
func (s *Search) NewSubset(ids []schema.SourceID) *Subset {
	m := make(map[schema.SourceID]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return &Subset{members: m, search: s}
}

// IDs returns the subset's members, sorted.
func (ss *Subset) IDs() []schema.SourceID {
	ids := make([]schema.SourceID, 0, len(ss.members))
	for id := range ss.members {
		ids = append(ids, id)
	}
	return SortIDs(ids)
}

// Len returns the subset size.
func (ss *Subset) Len() int { return len(ss.members) }

// Contains reports membership.
func (ss *Subset) Contains(id schema.SourceID) bool {
	_, ok := ss.members[id]
	return ok
}

// Clone returns an independent copy.
func (ss *Subset) Clone() *Subset {
	m := make(map[schema.SourceID]struct{}, len(ss.members))
	for id := range ss.members {
		m[id] = struct{}{}
	}
	return &Subset{members: m, search: ss.search}
}

// Apply mutates the subset by one move.
func (ss *Subset) Apply(mv Move) {
	if mv.Drop >= 0 {
		delete(ss.members, mv.Drop)
	}
	if mv.Add >= 0 {
		ss.members[mv.Add] = struct{}{}
	}
}

// Move is one neighborhood step: drop a member and/or add a non-member. A
// field of -1 means "no change". Moves generated by Moves are always
// feasibility-preserving.
type Move struct {
	Add  schema.SourceID
	Drop schema.SourceID
}

// NoMove is the identity move.
var NoMove = Move{Add: -1, Drop: -1}

// required reports whether id is constraint-required.
func (s *Search) required(id schema.SourceID) bool {
	for _, r := range s.Required {
		if r == id {
			return true
		}
	}
	return false
}

// Moves samples up to limit distinct feasibility-preserving moves from the
// neighborhood of ss: adds (if below m), drops of non-required members, and
// swaps. The full swap neighborhood is |S|·(N−|S|) moves — far too large for
// Internet-scale universes — so moves are sampled uniformly.
func (s *Search) Moves(ss *Subset, limit int) []Move {
	var moves []Move
	canAdd := ss.Len() < s.MaxSources
	var droppable []schema.SourceID
	for id := range ss.members {
		if !s.required(id) {
			droppable = append(droppable, id)
		}
	}
	SortIDs(droppable)
	var addable []schema.SourceID
	for _, id := range s.Optional {
		if !ss.Contains(id) {
			addable = append(addable, id)
		}
	}

	if canAdd {
		for _, id := range addable {
			moves = append(moves, Move{Add: id, Drop: -1})
		}
	}
	if ss.Len() > 1 {
		for _, id := range droppable {
			moves = append(moves, Move{Add: -1, Drop: id})
		}
	}
	// Swap moves: sample rather than enumerate.
	nswap := limit
	if nswap > 0 && len(droppable) > 0 && len(addable) > 0 {
		for i := 0; i < nswap; i++ {
			moves = append(moves, Move{
				Add:  addable[s.Rand.Intn(len(addable))],
				Drop: droppable[s.Rand.Intn(len(droppable))],
			})
		}
	}
	// Downsample to limit, keeping a uniform random subset.
	if limit > 0 && len(moves) > limit {
		s.Rand.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
		moves = moves[:limit]
	}
	return moves
}

// EvalMove returns Q(S') for the subset that Apply(mv) would produce,
// without mutating ss.
func (s *Search) EvalMove(ss *Subset, mv Move) float64 {
	next := ss.Clone()
	next.Apply(mv)
	return s.Eval.Eval(next.IDs())
}

// EvalMoves scores a whole neighborhood at once: it returns Q(S') for each
// move applied to ss (without mutating it), fanning the candidates out
// through the evaluator's delta batch API — single flips against the current
// subset score incrementally from the shared counting union. Results,
// memoization, and budget accounting are identical to calling EvalMove on
// each move in order.
func (s *Search) EvalMoves(ss *Subset, moves []Move) []float64 {
	return s.Eval.EvalBatchDelta(ss.IDs(), moves)
}
