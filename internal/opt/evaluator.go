package opt

import (
	"math/rand"

	"mube/internal/qef"
	"mube/internal/schema"
)

// Evaluator computes Q(S) for candidate source sets, memoizing results so
// that revisits of a subset (common in local search) are free and so that
// solver budgets can be expressed in *distinct* evaluations.
type Evaluator struct {
	p     *Problem
	memo  map[string]float64
	evals int // cache misses (distinct subsets evaluated)
	calls int // total Eval calls
	limit int // MaxEvals; 0 = unlimited
}

// NewEvaluator builds an evaluator for p with an optional evaluation limit.
func NewEvaluator(p *Problem, maxEvals int) *Evaluator {
	return &Evaluator{p: p, memo: make(map[string]float64), limit: maxEvals}
}

// key canonicalizes a *sorted* id slice into a compact map key.
func key(ids []schema.SourceID) string {
	buf := make([]byte, 0, len(ids)*2)
	for _, id := range ids {
		// Universe sizes are in the thousands; two bytes suffice.
		buf = append(buf, byte(id>>8), byte(id))
	}
	return string(buf)
}

// Exhausted reports whether the evaluation budget is spent.
func (e *Evaluator) Exhausted() bool { return e.limit > 0 && e.evals >= e.limit }

// Evals returns the number of distinct subsets evaluated so far.
func (e *Evaluator) Evals() int { return e.evals }

// Calls returns the total number of Eval invocations (including cache hits).
func (e *Evaluator) Calls() int { return e.calls }

// Eval returns Q(S) for the given source set. ids must be sorted (use
// SortIDs); infeasible sets score 0. Once the budget is exhausted, unknown
// subsets also score 0 — solvers should check Exhausted and stop.
func (e *Evaluator) Eval(ids []schema.SourceID) float64 {
	e.calls++
	k := key(ids)
	if v, ok := e.memo[k]; ok {
		return v
	}
	if e.Exhausted() {
		return 0
	}
	e.evals++
	v := 0.0
	if e.p.Feasible(ids) {
		ctx := qef.NewContext(e.p.Universe, e.p.Matcher, e.p.Constraints, ids)
		v = e.p.Quality.Eval(ctx)
	}
	e.memo[k] = v
	return v
}

// Solution materializes the full solution report for a chosen subset,
// re-deriving the mediated schema and per-QEF breakdown.
func (e *Evaluator) Solution(ids []schema.SourceID, solver string) *Solution {
	sorted := SortIDs(append([]schema.SourceID(nil), ids...))
	ctx := qef.NewContext(e.p.Universe, e.p.Matcher, e.p.Constraints, sorted)
	sol := &Solution{
		IDs:       sorted,
		Quality:   e.Eval(sorted),
		Breakdown: e.p.Quality.Breakdown(ctx),
		Evals:     e.evals,
		Solver:    solver,
	}
	if e.p.Matcher != nil {
		if res, err := ctx.MatchResult(); err == nil && res.OK {
			sol.Schema = res.Schema
			sol.GAQuality = res.GAQuality
			sol.MatchOK = true
		}
	}
	return sol
}

// Search is the shared state local-search solvers operate on: the problem
// split into required sources (fixed) and optional candidates, plus an RNG.
type Search struct {
	// Eval is the shared memoizing evaluator.
	Eval *Evaluator
	// Required are the sources every feasible solution must contain.
	Required []schema.SourceID
	// Optional are all non-required source IDs.
	Optional []schema.SourceID
	// Rand drives all stochastic choices.
	Rand *rand.Rand
	// MaxSources is m.
	MaxSources int
}

// NewSearch prepares shared search state. It validates the problem.
func NewSearch(p *Problem, opts Options) (*Search, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.WithDefaults()
	req := p.Constraints.RequiredSources()
	reqSet := make(map[schema.SourceID]struct{}, len(req))
	for _, id := range req {
		reqSet[id] = struct{}{}
	}
	var optional []schema.SourceID
	for _, id := range p.Universe.IDs() {
		if _, isReq := reqSet[id]; !isReq {
			optional = append(optional, id)
		}
	}
	return &Search{
		Eval:       NewEvaluator(p, opts.MaxEvals),
		Required:   req,
		Optional:   optional,
		Rand:       rand.New(rand.NewSource(opts.Seed)),
		MaxSources: p.MaxSources,
	}, nil
}

// StartSubset returns the search's starting point: the feasible warm-start
// set when one was supplied, otherwise a random feasible subset.
func (s *Search) StartSubset(p *Problem, opts Options) []schema.SourceID {
	if len(opts.Initial) > 0 {
		ids := SortIDs(append([]schema.SourceID(nil), opts.Initial...))
		if p.Feasible(ids) {
			return ids
		}
	}
	return s.RandomSubset()
}

// RandomSubset returns a random feasible subset: all required sources plus a
// random draw of optional sources filling up to MaxSources.
func (s *Search) RandomSubset() []schema.SourceID {
	ids := append([]schema.SourceID(nil), s.Required...)
	free := s.MaxSources - len(ids)
	if free > len(s.Optional) {
		free = len(s.Optional)
	}
	perm := s.Rand.Perm(len(s.Optional))
	for i := 0; i < free; i++ {
		ids = append(ids, s.Optional[perm[i]])
	}
	return SortIDs(ids)
}

// Subset is a mutable feasible source set used by the local-search solvers.
type Subset struct {
	members map[schema.SourceID]struct{}
	search  *Search
}

// NewSubset wraps ids (assumed feasible) for neighborhood exploration.
func (s *Search) NewSubset(ids []schema.SourceID) *Subset {
	m := make(map[schema.SourceID]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return &Subset{members: m, search: s}
}

// IDs returns the subset's members, sorted.
func (ss *Subset) IDs() []schema.SourceID {
	ids := make([]schema.SourceID, 0, len(ss.members))
	for id := range ss.members {
		ids = append(ids, id)
	}
	return SortIDs(ids)
}

// Len returns the subset size.
func (ss *Subset) Len() int { return len(ss.members) }

// Contains reports membership.
func (ss *Subset) Contains(id schema.SourceID) bool {
	_, ok := ss.members[id]
	return ok
}

// Clone returns an independent copy.
func (ss *Subset) Clone() *Subset {
	m := make(map[schema.SourceID]struct{}, len(ss.members))
	for id := range ss.members {
		m[id] = struct{}{}
	}
	return &Subset{members: m, search: ss.search}
}

// Apply mutates the subset by one move.
func (ss *Subset) Apply(mv Move) {
	if mv.Drop >= 0 {
		delete(ss.members, mv.Drop)
	}
	if mv.Add >= 0 {
		ss.members[mv.Add] = struct{}{}
	}
}

// Move is one neighborhood step: drop a member and/or add a non-member. A
// field of -1 means "no change". Moves generated by Moves are always
// feasibility-preserving.
type Move struct {
	Add  schema.SourceID
	Drop schema.SourceID
}

// NoMove is the identity move.
var NoMove = Move{Add: -1, Drop: -1}

// required reports whether id is constraint-required.
func (s *Search) required(id schema.SourceID) bool {
	for _, r := range s.Required {
		if r == id {
			return true
		}
	}
	return false
}

// Moves samples up to limit distinct feasibility-preserving moves from the
// neighborhood of ss: adds (if below m), drops of non-required members, and
// swaps. The full swap neighborhood is |S|·(N−|S|) moves — far too large for
// Internet-scale universes — so moves are sampled uniformly.
func (s *Search) Moves(ss *Subset, limit int) []Move {
	var moves []Move
	canAdd := ss.Len() < s.MaxSources
	var droppable []schema.SourceID
	for id := range ss.members {
		if !s.required(id) {
			droppable = append(droppable, id)
		}
	}
	SortIDs(droppable)
	var addable []schema.SourceID
	for _, id := range s.Optional {
		if !ss.Contains(id) {
			addable = append(addable, id)
		}
	}

	if canAdd {
		for _, id := range addable {
			moves = append(moves, Move{Add: id, Drop: -1})
		}
	}
	if ss.Len() > 1 {
		for _, id := range droppable {
			moves = append(moves, Move{Add: -1, Drop: id})
		}
	}
	// Swap moves: sample rather than enumerate.
	nswap := limit
	if nswap > 0 && len(droppable) > 0 && len(addable) > 0 {
		for i := 0; i < nswap; i++ {
			moves = append(moves, Move{
				Add:  addable[s.Rand.Intn(len(addable))],
				Drop: droppable[s.Rand.Intn(len(droppable))],
			})
		}
	}
	// Downsample to limit, keeping a uniform random subset.
	if limit > 0 && len(moves) > limit {
		s.Rand.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
		moves = moves[:limit]
	}
	return moves
}

// EvalMove returns Q(S') for the subset that Apply(mv) would produce,
// without mutating ss.
func (s *Search) EvalMove(ss *Subset, mv Move) float64 {
	next := ss.Clone()
	next.Apply(mv)
	return s.Eval.Eval(next.IDs())
}
