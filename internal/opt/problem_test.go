package opt

import (
	"context"
	"math/rand"
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/testutil"
)

// problem builds a standard test problem over the Books fixture.
func problem(t testing.TB, maxSources int, cons constraint.Set) *Problem {
	t.Helper()
	u := testutil.BooksUniverse(t)
	matcher := match.MustNew(u, match.Config{Theta: 0.45})
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	w := qef.Weights{
		qef.NameMatchQuality: 0.25,
		qef.NameCardinality:  0.25,
		qef.NameCoverage:     0.20,
		qef.NameRedundancy:   0.15,
		"mttf":               0.15,
	}
	q, err := qef.NewQuality(qefs, w)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Universe:    u,
		Matcher:     matcher,
		Quality:     q,
		MaxSources:  maxSources,
		Constraints: cons,
	}
}

func ids(ns ...int) []schema.SourceID {
	out := make([]schema.SourceID, len(ns))
	for i, n := range ns {
		out[i] = schema.SourceID(n)
	}
	return out
}

func TestProblemValidate(t *testing.T) {
	p := problem(t, 5, constraint.Set{})
	if err := p.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}

	bad := *p
	bad.MaxSources = 0
	if err := bad.Validate(); err == nil {
		t.Error("MaxSources=0 accepted")
	}
	bad = *p
	bad.MaxSources = 100
	if err := bad.Validate(); err == nil {
		t.Error("MaxSources > N accepted")
	}
	bad = *p
	bad.Universe = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil universe accepted")
	}
	bad = *p
	bad.Quality = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil quality accepted")
	}
	bad = *p
	bad.Matcher = nil
	if err := bad.Validate(); err == nil {
		t.Error("match QEF without matcher accepted")
	}
	bad = *p
	bad.Constraints = constraint.Set{Sources: ids(0, 1, 2, 3)}
	bad.MaxSources = 3
	if err := bad.Validate(); err == nil {
		t.Error("more required sources than MaxSources accepted")
	}
	bad = *p
	bad.Constraints = constraint.Set{Sources: ids(99)}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range constraint accepted")
	}
}

func TestFeasible(t *testing.T) {
	p := problem(t, 3, constraint.Set{Sources: ids(2)})
	cases := []struct {
		ids  []schema.SourceID
		want bool
	}{
		{ids(2), true},
		{ids(0, 2), true},
		{ids(0, 1, 2), true},
		{ids(0, 1), false},       // missing required source 2
		{ids(0, 1, 2, 3), false}, // too large
		{ids(2, 2), false},       // duplicate
		{ids(2, 99), false},      // out of range
		{ids(2, -1), false},      // negative
	}
	for _, c := range cases {
		if got := p.Feasible(c.ids); got != c.want {
			t.Errorf("Feasible(%v) = %v, want %v", c.ids, got, c.want)
		}
	}
}

func TestEvaluatorMemoizes(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	e := NewEvaluator(p, 0)
	a := e.Eval(ids(0, 1, 2))
	if e.Evals() != 1 || e.Calls() != 1 {
		t.Fatalf("evals=%d calls=%d after first eval", e.Evals(), e.Calls())
	}
	b := e.Eval(ids(0, 1, 2))
	if !testutil.AlmostEqual(a, b) {
		t.Errorf("memoized value differs: %v vs %v", a, b)
	}
	if e.Evals() != 1 || e.Calls() != 2 {
		t.Errorf("evals=%d calls=%d after repeat", e.Evals(), e.Calls())
	}
	// Different subset is a new evaluation.
	e.Eval(ids(0, 1, 3))
	if e.Evals() != 2 {
		t.Errorf("evals=%d after new subset", e.Evals())
	}
}

func TestEvaluatorBudget(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	e := NewEvaluator(p, 2)
	e.Eval(ids(0))
	e.Eval(ids(1))
	if !e.Exhausted() {
		t.Fatal("budget of 2 not exhausted after 2 distinct evals")
	}
	if got := e.Eval(ids(2)); !Unscored(got) {
		t.Errorf("post-budget eval = %v, want Unscored sentinel", got)
	}
	// Cached subsets still return real values.
	if got := e.Eval(ids(0)); Unscored(got) || got == 0 {
		t.Error("cached value lost after budget exhaustion")
	}
}

func TestEvaluatorInfeasibleScoresZero(t *testing.T) {
	p := problem(t, 2, constraint.Set{Sources: ids(5)})
	e := NewEvaluator(p, 0)
	if got := e.Eval(ids(0, 1)); got != 0 {
		t.Errorf("infeasible subset scored %v", got)
	}
	if got := e.Eval(ids(5, 1)); got == 0 {
		t.Error("feasible subset scored 0 (universe should have quality signal)")
	}
}

func TestEvaluatorSolution(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	e := NewEvaluator(p, 0)
	sol := e.Solution(ids(3, 0, 1), "test")
	if len(sol.IDs) != 3 || sol.IDs[0] != 0 || sol.IDs[2] != 3 {
		t.Errorf("solution IDs not sorted: %v", sol.IDs)
	}
	if sol.Solver != "test" {
		t.Errorf("Solver = %q", sol.Solver)
	}
	if !sol.MatchOK || sol.Schema.Len() == 0 {
		t.Errorf("expected a mediated schema, got MatchOK=%v len=%d", sol.MatchOK, sol.Schema.Len())
	}
	if len(sol.GAQuality) != sol.Schema.Len() {
		t.Errorf("GAQuality misaligned: %d vs %d", len(sol.GAQuality), sol.Schema.Len())
	}
	if len(sol.Breakdown) != 5 {
		t.Errorf("breakdown = %v", sol.Breakdown)
	}
	names := sol.SourceNames(p.Universe)
	if len(names) != 3 || names[0] == "" {
		t.Errorf("SourceNames = %v", names)
	}
}

func TestSearchRandomSubsetAlwaysFeasible(t *testing.T) {
	cons := constraint.Set{Sources: ids(7)}
	p := problem(t, 5, cons)
	s, err := NewSearch(context.Background(), p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sub := s.RandomSubset()
		if !p.Feasible(sub) {
			t.Fatalf("RandomSubset produced infeasible %v", sub)
		}
		if len(sub) != 5 {
			t.Fatalf("RandomSubset size %d, want full m=5", len(sub))
		}
	}
}

func TestMovesPreserveFeasibility(t *testing.T) {
	cons := constraint.Set{Sources: ids(4)}
	p := problem(t, 4, cons)
	s, err := NewSearch(context.Background(), p, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	sub := s.NewSubset(s.RandomSubset())
	for step := 0; step < 200; step++ {
		moves := s.Moves(sub, 15)
		if len(moves) == 0 {
			t.Fatal("no moves generated")
		}
		for _, mv := range moves {
			next := sub.Clone()
			next.Apply(mv)
			if !p.Feasible(next.IDs()) {
				t.Fatalf("move %+v broke feasibility: %v", mv, next.IDs())
			}
		}
		sub.Apply(moves[r.Intn(len(moves))])
	}
}

func TestMovesNeverDropRequired(t *testing.T) {
	cons := constraint.Set{Sources: ids(0, 1)}
	p := problem(t, 3, cons)
	s, err := NewSearch(context.Background(), p, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.NewSubset(ids(0, 1, 5))
	for i := 0; i < 50; i++ {
		for _, mv := range s.Moves(sub, 20) {
			if mv.Drop == 0 || mv.Drop == 1 {
				t.Fatalf("move drops required source: %+v", mv)
			}
		}
	}
}

func TestSubsetBasics(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	s, err := NewSearch(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.NewSubset(ids(1, 3))
	if !sub.Contains(1) || sub.Contains(2) || sub.Len() != 2 {
		t.Error("subset membership broken")
	}
	cl := sub.Clone()
	cl.Apply(Move{Add: 2, Drop: 1})
	if sub.Contains(2) || !sub.Contains(1) {
		t.Error("Clone shares state")
	}
	got := cl.IDs()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("IDs after move = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.MaxEvals != DefaultMaxEvals || o.MaxIters != DefaultMaxIters || o.Patience != DefaultPatience {
		t.Errorf("defaults = %+v", o)
	}
	keep := Options{MaxEvals: 7, MaxIters: 8, Patience: 9}.WithDefaults()
	if keep.MaxEvals != 7 || keep.MaxIters != 8 || keep.Patience != 9 {
		t.Errorf("explicit options overwritten: %+v", keep)
	}
}

func TestStartSubsetWarmStart(t *testing.T) {
	p := problem(t, 4, constraint.Set{Sources: ids(2)})
	s, err := NewSearch(context.Background(), p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Feasible warm start is honored verbatim (sorted).
	warm := []schema.SourceID{5, 2, 0}
	got := s.StartSubset(p, Options{Initial: warm})
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("StartSubset = %v, want [0 2 5]", got)
	}
	// Infeasible warm start (missing required source 2) falls back to a
	// random feasible subset.
	got = s.StartSubset(p, Options{Initial: ids(0, 1)})
	if !p.Feasible(got) {
		t.Errorf("fallback start %v infeasible", got)
	}
	// No warm start → random feasible subset.
	got = s.StartSubset(p, Options{})
	if !p.Feasible(got) {
		t.Errorf("random start %v infeasible", got)
	}
}
