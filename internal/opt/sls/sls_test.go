package sls

import (
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
)

func TestName(t *testing.T) {
	if (Solver{}).Name() != "sls" {
		t.Errorf("Name = %q", Solver{}.Name())
	}
}

func TestSolveFindsFeasibleSolution(t *testing.T) {
	p := opttest.Problem(t, 4, constraint.Set{})
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 2, MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol.IDs) || sol.Quality <= 0 {
		t.Errorf("solution %v q=%v", sol.IDs, sol.Quality)
	}
	if sol.Solver != "sls" {
		t.Errorf("labeled %q", sol.Solver)
	}
}

func TestRestartsImproveOverSingleClimb(t *testing.T) {
	p := opttest.Problem(t, 3, constraint.Set{})
	// A tiny-iteration run (one climb at most) vs a long multi-restart run.
	short, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 4, MaxEvals: 60, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	long, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 4, MaxEvals: 3000, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if long.Quality+1e-9 < short.Quality {
		t.Errorf("longer search got worse: %.4f vs %.4f", long.Quality, short.Quality)
	}
}

func TestFullyConstrainedProblem(t *testing.T) {
	p, cons := opttest.FullyConstrained(t)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 50, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.SatisfiedBy(sol.IDs) || len(sol.IDs) != 3 {
		t.Errorf("solution %v", sol.IDs)
	}
}

func TestLocalOptimumIsStable(t *testing.T) {
	// After SLS terminates, no sampled single move from the returned
	// solution should improve it dramatically (sanity on the climb logic;
	// sampled neighborhoods make this probabilistic, so allow slack).
	p := opttest.Problem(t, 3, constraint.Set{})
	sol, err := (Solver{Neighbors: 40}).Solve(context.Background(), p, opt.Options{Seed: 6, MaxEvals: 4000, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	search, err := opt.NewSearch(context.Background(), p, opt.Options{Seed: 99, MaxEvals: -1})
	if err != nil {
		t.Fatal(err)
	}
	cur := search.NewSubset(sol.IDs)
	curQ := search.Eval.Eval(cur.IDs())
	improved := 0.0
	for _, mv := range search.Moves(cur, 60) {
		if q := search.EvalMove(cur, mv); q > curQ+0.02 {
			improved = q
		}
	}
	if improved > 0 {
		t.Errorf("returned solution q=%.4f has neighbor q=%.4f (not near-locally-optimal)", curQ, improved)
	}
}
