// Package sls implements stochastic local search — random-restart
// steepest-ascent hill climbing — one of the baseline solvers the paper
// compared against tabu search (§6).
package sls

import (
	"context"

	"mube/internal/opt"
	"mube/internal/schema"
)

// Solver is a configured stochastic local search.
type Solver struct {
	// Neighbors is the number of candidate moves sampled per step.
	// Default 30.
	Neighbors int
}

// DefaultNeighbors is the default per-step neighborhood sample size.
const DefaultNeighbors = 30

// Name returns "sls".
func (Solver) Name() string { return "sls" }

// Solve climbs from random starting subsets, restarting at every local
// optimum, until the budget is exhausted or ctx is done (best-so-far is
// returned either way).
func (s Solver) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if s.Neighbors == 0 {
		s.Neighbors = DefaultNeighbors
	}
	opts = opts.WithDefaults()
	search, err := opt.NewSearch(ctx, p, opts)
	if err != nil {
		return nil, err
	}

	span := search.BeginSolve(s.Name())
	var bestIDs []schema.SourceID
	bestQ := -1.0
	iters := 0
	first := true
	for iters < opts.MaxIters && !search.Eval.Exhausted() && !search.Stopped() {
		start := search.RandomSubset()
		if first {
			// The first climb honors a warm start; restarts are random.
			start = search.StartSubset(p, opts)
			first = false
		}
		cur := search.NewSubset(start)
		curQ := search.Eval.Eval(cur.IDs())
		// Climb to a local optimum.
		for iters < opts.MaxIters && !search.Eval.Exhausted() && !search.Stopped() {
			iters++
			improved := false
			var stepMove opt.Move
			stepQ := curQ
			// Batch-score the sampled neighborhood; steepest-ascent selection
			// walks the results in move order, as the sequential loop did.
			moves := search.Moves(cur, s.Neighbors)
			for mi, q := range search.EvalMoves(cur, moves) {
				if q > stepQ {
					stepQ = q
					stepMove = moves[mi]
					improved = true
				}
			}
			if improved {
				cur.Apply(stepMove)
				curQ = stepQ
			}
			traceBest := bestQ
			if curQ > traceBest {
				traceBest = curQ
			}
			search.TraceIter(s.Name(), iters, curQ, traceBest)
			if !improved {
				break // local optimum: restart
			}
		}
		if curQ > bestQ {
			bestQ = curQ
			bestIDs = cur.IDs()
		}
	}
	if bestIDs == nil {
		bestIDs = search.RandomSubset()
	}
	sol := search.Eval.Solution(bestIDs, s.Name())
	span.End()
	return sol, nil
}
