package solvers

import (
	"bytes"
	"context"
	"math"
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/anneal"
	"mube/internal/opt/sls"
	"mube/internal/opt/tabu"
)

// TestShardPathDifferential mirrors TestDeltaPathDifferential for the
// cluster-sharded matching path: for every local-search solver, an identical
// run with NoShard set (flips re-cluster their full attribute set) must
// produce a bit-identical trajectory — Quality to the float bits, IDs, Evals,
// Status, and byte-identical JSONL traces — across 3 seeds and both 1 and 4
// evaluator workers.
func TestShardPathDifferential(t *testing.T) {
	p := problem(t, 4, constraint.Set{Sources: ids(3)})
	solvers := []opt.Solver{tabu.Solver{}, sls.Solver{}, anneal.Solver{}}
	for _, s := range solvers {
		for _, seed := range []int64{1, 2, 3} {
			for _, workers := range []int{1, 4} {
				base := opt.Options{
					Seed: seed, MaxEvals: 400, MaxIters: 30, Patience: 8,
					Parallel: workers,
				}
				shardOpts := base
				fullOpts := base
				fullOpts.NoShard = true
				shardSol, shardTrace := solveTraced(t, s, p, shardOpts)
				fullSol, fullTrace := solveTraced(t, s, p, fullOpts)

				label := s.Name()
				if math.Float64bits(shardSol.Quality) != math.Float64bits(fullSol.Quality) {
					t.Errorf("%s seed=%d workers=%d: sharded quality %v != full %v",
						label, seed, workers, shardSol.Quality, fullSol.Quality)
				}
				if shardSol.Evals != fullSol.Evals {
					t.Errorf("%s seed=%d workers=%d: sharded evals %d != full %d",
						label, seed, workers, shardSol.Evals, fullSol.Evals)
				}
				if shardSol.Status != fullSol.Status {
					t.Errorf("%s seed=%d workers=%d: sharded status %v != full %v",
						label, seed, workers, shardSol.Status, fullSol.Status)
				}
				if len(shardSol.IDs) != len(fullSol.IDs) {
					t.Errorf("%s seed=%d workers=%d: id sets differ: %v vs %v",
						label, seed, workers, shardSol.IDs, fullSol.IDs)
				} else {
					for i := range shardSol.IDs {
						if shardSol.IDs[i] != fullSol.IDs[i] {
							t.Errorf("%s seed=%d workers=%d: id sets differ: %v vs %v",
								label, seed, workers, shardSol.IDs, fullSol.IDs)
							break
						}
					}
				}
				if !bytes.Equal(shardTrace, fullTrace) {
					t.Errorf("%s seed=%d workers=%d: trace bytes differ between sharded and full paths",
						label, seed, workers)
				}
			}
		}
	}
}

// TestShardPathEngages guards the point of the sharded matcher: a plain tabu
// run must actually score flips through ShardedBase.ScoreFlip (visible as
// shard-score operations on the process-wide counter), not silently fall back
// to full reclustering.
func TestShardPathEngages(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	before := match.ShardScores()
	opts := opt.Options{Seed: 5, MaxEvals: 300, MaxIters: 20, Patience: 6}
	if _, err := (tabu.Solver{}).Solve(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	if after := match.ShardScores(); after == before {
		t.Error("tabu solve performed no sharded flip scores; the shard path never engaged")
	}

	// And with NoShard it must stay silent.
	before = match.ShardScores()
	opts.NoShard = true
	if _, err := (tabu.Solver{}).Solve(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	if after := match.ShardScores(); after != before {
		t.Errorf("NoShard solve performed %d sharded flip scores; want 0", after-before)
	}
}
