// Package solvers is the registry of all optimization algorithms µBE ships:
// tabu search (the default, per the paper) and the baselines it was compared
// against. It exists so the CLI, the session layer, and the solver-comparison
// experiment can enumerate algorithms without importing each subpackage.
package solvers

import (
	"fmt"
	"strings"

	"mube/internal/opt"
	"mube/internal/opt/anneal"
	"mube/internal/opt/exhaustive"
	"mube/internal/opt/pso"
	"mube/internal/opt/random"
	"mube/internal/opt/sls"
	"mube/internal/opt/tabu"
)

// Default returns µBE's default solver: tabu search with default parameters.
func Default() opt.Solver { return tabu.Solver{} }

// All returns every heuristic solver in comparison order (tabu first). The
// exhaustive oracle is excluded; use Exhaustive for it.
func All() []opt.Solver {
	return []opt.Solver{
		tabu.Solver{},
		sls.Solver{},
		anneal.Solver{},
		pso.Solver{},
		random.Solver{},
	}
}

// Exhaustive returns the exact enumeration oracle.
func Exhaustive() opt.Solver { return exhaustive.Solver{} }

// ByName resolves a solver by its Name(), including "exhaustive" and the
// partitioned wrappers ("partition" wraps the default solver, "partition+X"
// wraps solver X).
func ByName(name string) (opt.Solver, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	if name == "exhaustive" {
		return Exhaustive(), nil
	}
	if name == "partition" {
		return Partitioned{}, nil
	}
	if rest, ok := strings.CutPrefix(name, "partition+"); ok {
		inner, err := ByName(rest)
		if err != nil {
			return nil, err
		}
		return Partitioned{Inner: inner}, nil
	}
	return nil, fmt.Errorf("solvers: unknown solver %q", name)
}
