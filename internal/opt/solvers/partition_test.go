package solvers

import (
	"context"
	"math"
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/tabu"
	"mube/internal/pcsa"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/synth"
)

// domainProblem builds a multi-domain universe (disjoint per-domain
// vocabularies → several independent source groups) with the paper's QEF
// stack.
func domainProblem(t testing.TB, sources, domains, maxSources int, cons constraint.Set) *opt.Problem {
	t.Helper()
	cfg := synth.Scaled(0.001)
	cfg.NumSources = sources
	cfg.Domains = domains
	cfg.Sig = pcsa.Config{NumMaps: 64}
	u, err := synth.GenerateUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	matcher := match.MustNew(u, match.Config{Theta: 0.5})
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	q, err := qef.NewQuality(qefs, qef.Weights{
		qef.NameMatchQuality: 0.25,
		qef.NameCardinality:  0.25,
		qef.NameCoverage:     0.20,
		qef.NameRedundancy:   0.15,
		"mttf":               0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &opt.Problem{
		Universe:    u,
		Matcher:     matcher,
		Quality:     q,
		MaxSources:  maxSources,
		Constraints: cons,
	}
}

// TestPartitionedDelegatesSingleGroup pins that on a single-group universe
// (the Books fixture: shared noise words link every shard) the wrapper is the
// inner solver, bit for bit.
func TestPartitionedDelegatesSingleGroup(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	if g := p.Matcher.NewSharded(p.Constraints).SourceGroups(); len(g) != 1 {
		t.Skipf("fixture now has %d groups; delegation test needs 1", len(g))
	}
	opts := opt.Options{Seed: 3, MaxEvals: 200, MaxIters: 15, Patience: 5}
	direct, err := (tabu.Solver{}).Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := (Partitioned{Inner: tabu.Solver{}}).Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(direct.Quality) != math.Float64bits(wrapped.Quality) ||
		direct.Evals != wrapped.Evals {
		t.Errorf("delegation not transparent: direct (q=%v evals=%d) vs wrapped (q=%v evals=%d)",
			direct.Quality, direct.Evals, wrapped.Quality, wrapped.Evals)
	}
}

// TestPartitionedSolve checks the multi-group path end to end: the solve
// completes, the solution is feasible, respects required-source constraints,
// reports aggregated evals, and two identical runs are bit-identical.
func TestPartitionedSolve(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{2, 7}}
	p := domainProblem(t, 60, 5, 10, cons)
	ps := Partitioned{Inner: tabu.Solver{}}
	opts := opt.Options{Seed: 9, MaxEvals: 600, MaxIters: 12, Patience: 4}

	sol, err := ps.Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != opt.StatusCompleted && sol.Status != opt.StatusExhausted {
		t.Fatalf("status = %v", sol.Status)
	}
	if !p.Feasible(sol.IDs) {
		t.Fatalf("partitioned solution %v infeasible", sol.IDs)
	}
	for _, req := range cons.Sources {
		found := false
		for _, id := range sol.IDs {
			if id == req {
				found = true
			}
		}
		if !found {
			t.Fatalf("required source %d missing from %v", req, sol.IDs)
		}
	}
	if sol.Evals <= 0 {
		t.Fatal("no evaluations accounted")
	}
	if !sol.MatchOK {
		t.Fatal("union schema failed to match")
	}

	again, err := ps.Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sol.Quality) != math.Float64bits(again.Quality) ||
		len(sol.IDs) != len(again.IDs) {
		t.Fatalf("partitioned solve not reproducible: %v vs %v", sol, again)
	}
	for i := range sol.IDs {
		if sol.IDs[i] != again.IDs[i] {
			t.Fatalf("partitioned solve not reproducible: ids %v vs %v", sol.IDs, again.IDs)
		}
	}
}

// TestPartitionedBudgetSplit checks the slot arithmetic: group quotas honor
// MaxSources in total and required floors per group.
func TestPartitionedBudgetSplit(t *testing.T) {
	groups := [][]schema.SourceID{
		{0, 1, 2, 3, 4, 5},
		{6, 7},
		{8, 9, 10},
	}
	share := splitBudget(6, groups, []int{1, 0, 1})
	sum := 0
	for i, s := range share {
		if s < 0 || s > len(groups[i]) {
			t.Fatalf("share[%d] = %d out of range", i, s)
		}
		sum += s
	}
	if sum != 6 {
		t.Fatalf("shares sum to %d, want 6", sum)
	}
	// Free slots beyond total capacity are left unused, not over-assigned.
	share = splitBudget(40, groups, []int{0, 0, 0})
	sum = 0
	for i, s := range share {
		if s > len(groups[i]) {
			t.Fatalf("share[%d] = %d exceeds group size %d", i, s, len(groups[i]))
		}
		sum += s
	}
	if sum != 11 {
		t.Fatalf("capacity-capped shares sum to %d, want 11", sum)
	}
}

// TestPartitionedByName checks registry resolution of the wrapper forms.
func TestPartitionedByName(t *testing.T) {
	s, err := ByName("partition")
	if err != nil || s.Name() != "partition+tabu" {
		t.Fatalf("ByName(partition) = %v, %v", s, err)
	}
	s, err = ByName("partition+sls")
	if err != nil || s.Name() != "partition+sls" {
		t.Fatalf("ByName(partition+sls) = %v, %v", s, err)
	}
	if _, err := ByName("partition+nope"); err == nil {
		t.Fatal("ByName(partition+nope) should fail")
	}
}
