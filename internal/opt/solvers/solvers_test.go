package solvers

import (
	"context"
	"testing"
	"time"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/exhaustive"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/testutil"
)

// problem builds the shared solver-test problem over the 12-source Books
// fixture.
func problem(t testing.TB, maxSources int, cons constraint.Set) *opt.Problem {
	t.Helper()
	u := testutil.BooksUniverse(t)
	matcher := match.MustNew(u, match.Config{Theta: 0.45})
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	q, err := qef.NewQuality(qefs, qef.Weights{
		qef.NameMatchQuality: 0.25,
		qef.NameCardinality:  0.25,
		qef.NameCoverage:     0.20,
		qef.NameRedundancy:   0.15,
		"mttf":               0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &opt.Problem{
		Universe:    u,
		Matcher:     matcher,
		Quality:     q,
		MaxSources:  maxSources,
		Constraints: cons,
	}
}

func ids(ns ...int) []schema.SourceID {
	out := make([]schema.SourceID, len(ns))
	for i, n := range ns {
		out[i] = schema.SourceID(n)
	}
	return out
}

func TestRegistry(t *testing.T) {
	if Default().Name() != "tabu" {
		t.Errorf("default solver = %q, want tabu", Default().Name())
	}
	all := All()
	if len(all) != 5 || all[0].Name() != "tabu" {
		t.Errorf("All() = %d solvers, first %q", len(all), all[0].Name())
	}
	for _, s := range append(all, Exhaustive()) {
		got, err := ByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Errorf("ByName(%q) = %v, %v", s.Name(), got, err)
		}
	}
	if _, err := ByName("gradient-descent"); err == nil {
		t.Error("unknown solver accepted")
	}
}

// TestAllSolversProduceFeasibleSolutions runs every solver on a constrained
// problem and checks the §2.5 hard constraints hold on the output.
func TestAllSolversProduceFeasibleSolutions(t *testing.T) {
	cons := constraint.Set{
		Sources: ids(3),
		GAs: []schema.GA{schema.NewGA(
			schema.AttrRef{Source: 0, Attr: 0},
			schema.AttrRef{Source: 1, Attr: 0},
		)},
	}
	p := problem(t, 5, cons)
	for _, s := range append(All(), Exhaustive()) {
		sol, err := s.Solve(context.Background(), p, opt.Options{Seed: 11, MaxEvals: 500, MaxIters: 60, Patience: 15})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !p.Feasible(sol.IDs) {
			t.Errorf("%s: infeasible solution %v", s.Name(), sol.IDs)
		}
		if !cons.SatisfiedBy(sol.IDs) {
			t.Errorf("%s: constraints unsatisfied by %v", s.Name(), sol.IDs)
		}
		if sol.Quality < 0 || sol.Quality > 1 {
			t.Errorf("%s: quality %v out of range", s.Name(), sol.Quality)
		}
		if sol.Solver != s.Name() {
			t.Errorf("%s: solution labeled %q", s.Name(), sol.Solver)
		}
		if sol.MatchOK && !sol.Schema.Subsumes(schema.NewMediated(cons.GAs...)) {
			t.Errorf("%s: G ⋢ M in solution schema", s.Name())
		}
	}
}

// TestSolversNearOptimal compares each heuristic against the exhaustive
// oracle on a problem small enough to enumerate (m=2 over 12 sources: 79
// subsets). Every solver should find the exact optimum here; tabu gets the
// strictest check.
func TestSolversNearOptimal(t *testing.T) {
	p := problem(t, 2, constraint.Set{})
	oracle, err := Exhaustive().Solve(context.Background(), p, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Quality <= 0 {
		t.Fatalf("oracle quality %v", oracle.Quality)
	}
	for _, s := range All() {
		sol, err := s.Solve(context.Background(), p, opt.Options{Seed: 7, MaxEvals: 2000})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		slack := 0.05
		if s.Name() == "tabu" {
			slack = 0.01
		}
		if sol.Quality < oracle.Quality*(1-slack) {
			t.Errorf("%s: quality %.4f below oracle %.4f", s.Name(), sol.Quality, oracle.Quality)
		}
	}
}

func TestTabuBeatsOrMatchesRandom(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	budget := opt.Options{Seed: 3, MaxEvals: 300}
	tabuSol, err := Default().Solve(context.Background(), p, budget)
	if err != nil {
		t.Fatal(err)
	}
	randSol, err := ByNameMust(t, "random").Solve(context.Background(), p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if tabuSol.Quality+1e-9 < randSol.Quality {
		t.Errorf("tabu %.4f worse than random %.4f at equal budget", tabuSol.Quality, randSol.Quality)
	}
}

// ByNameMust resolves a solver or fails the test.
func ByNameMust(t testing.TB, name string) opt.Solver {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolversDeterministicPerSeed(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	for _, s := range All() {
		a, err := s.Solve(context.Background(), p, opt.Options{Seed: 42, MaxEvals: 400})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := s.Solve(context.Background(), p, opt.Options{Seed: 42, MaxEvals: 400})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !testutil.AlmostEqual(a.Quality, b.Quality) || len(a.IDs) != len(b.IDs) {
			t.Errorf("%s: runs with equal seed differ: %v/%v vs %v/%v",
				s.Name(), a.IDs, a.Quality, b.IDs, b.Quality)
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] {
				t.Errorf("%s: id sets differ: %v vs %v", s.Name(), a.IDs, b.IDs)
				break
			}
		}
	}
}

// TestSolversParallelMatchesSequential is the end-to-end determinism
// contract: for every solver (including the exhaustive oracle) and a fixed
// seed, a solve with the parallel evaluator (4 workers) returns exactly the
// same solution — IDs, Quality bit-for-bit, and Evals — as the sequential
// evaluator. All solver randomness stays on the solver goroutine and batch
// budget accounting resolves in candidate order, so the worker count must be
// unobservable in the results.
func TestSolversParallelMatchesSequential(t *testing.T) {
	cons := constraint.Set{Sources: ids(3)}
	p := problem(t, 5, cons)
	for _, s := range append(All(), Exhaustive()) {
		for _, seed := range []int64{1, 42} {
			base := opt.Options{Seed: seed, MaxEvals: 300, MaxIters: 40, Patience: 10}
			seqOpts := base
			seqOpts.Parallel = 1
			parOpts := base
			parOpts.Parallel = 4

			seq, err := s.Solve(context.Background(), p, seqOpts)
			if err != nil {
				t.Fatalf("%s seed %d sequential: %v", s.Name(), seed, err)
			}
			par, err := s.Solve(context.Background(), p, parOpts)
			if err != nil {
				t.Fatalf("%s seed %d parallel: %v", s.Name(), seed, err)
			}
			//mube:vet-ignore floatcmp — worker count must be unobservable bit-for-bit
			if par.Quality != seq.Quality {
				t.Errorf("%s seed %d: parallel quality %v != sequential %v",
					s.Name(), seed, par.Quality, seq.Quality)
			}
			if par.Evals != seq.Evals {
				t.Errorf("%s seed %d: parallel evals %d != sequential %d",
					s.Name(), seed, par.Evals, seq.Evals)
			}
			if len(par.IDs) != len(seq.IDs) {
				t.Errorf("%s seed %d: id sets differ: %v vs %v", s.Name(), seed, par.IDs, seq.IDs)
				continue
			}
			for i := range par.IDs {
				if par.IDs[i] != seq.IDs[i] {
					t.Errorf("%s seed %d: id sets differ: %v vs %v", s.Name(), seed, par.IDs, seq.IDs)
					break
				}
			}
		}
	}
}

func TestSolversRespectEvalBudget(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	for _, s := range All() {
		sol, err := s.Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 50})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// Solution() may add one extra evaluation when re-deriving the
		// final subset after exhaustion.
		if sol.Evals > 51 {
			t.Errorf("%s: used %d evals with budget 50", s.Name(), sol.Evals)
		}
	}
}

// TestSolversCanceledContext: an already-dead context must stop every solver
// within its first evaluation batch, and the solver must still return a
// feasible best-so-far solution labeled StatusCanceled — never an error,
// never an infeasible or empty set when sources are required.
func TestSolversCanceledContext(t *testing.T) {
	cons := constraint.Set{Sources: ids(3)}
	p := problem(t, 5, cons)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range append(All(), Exhaustive()) {
		sol, err := s.Solve(ctx, p, opt.Options{Seed: 11, MaxEvals: 500, MaxIters: 60, Patience: 15})
		if err != nil {
			t.Fatalf("%s: canceled solve errored: %v", s.Name(), err)
		}
		if sol.Status != opt.StatusCanceled {
			t.Errorf("%s: status = %q, want %q", s.Name(), sol.Status, opt.StatusCanceled)
		}
		if !p.Feasible(sol.IDs) || !cons.SatisfiedBy(sol.IDs) {
			t.Errorf("%s: canceled solve returned infeasible %v", s.Name(), sol.IDs)
		}
		// Nothing was evaluated within budget, yet the reported quality must
		// be the subset's true Q(S), not the Unscored sentinel.
		if opt.Unscored(sol.Quality) || sol.Quality < 0 {
			t.Errorf("%s: canceled solve quality = %v", s.Name(), sol.Quality)
		}
	}
}

// TestSolversDeadlineStatus: an expired deadline is reported as
// StatusDeadline, distinct from a plain cancellation.
func TestSolversDeadlineStatus(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Time{}.AddDate(2000, 0, 0))
	defer cancel()
	<-ctx.Done()
	for _, s := range append(All(), Exhaustive()) {
		sol, err := s.Solve(ctx, p, opt.Options{Seed: 11, MaxEvals: 200})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sol.Status != opt.StatusDeadline {
			t.Errorf("%s: status = %q, want %q", s.Name(), sol.Status, opt.StatusDeadline)
		}
	}
}

// TestSolversCancelMidSolve cancels from another goroutine while each solver
// is mid-search. Under -race this is the cancellation-path concurrency
// regression: the context check in EvalBatch and the Stopped() reads must not
// race with the worker pool, and whatever the interleaving, the result must
// be a feasible solution with an honest status.
func TestSolversCancelMidSolve(t *testing.T) {
	cons := constraint.Set{Sources: ids(3)}
	p := problem(t, 5, cons)
	for _, s := range append(All(), Exhaustive()) {
		for trial := 0; trial < 3; trial++ {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				// Unsynchronized with the solve on purpose: the cancel lands
				// at an arbitrary point in the search.
				cancel()
				close(done)
			}()
			sol, err := s.Solve(ctx, p, opt.Options{Seed: int64(trial), MaxEvals: 2000, MaxIters: 200, Parallel: 4})
			<-done
			if err != nil {
				t.Fatalf("%s trial %d: %v", s.Name(), trial, err)
			}
			if !p.Feasible(sol.IDs) || !cons.SatisfiedBy(sol.IDs) {
				t.Errorf("%s trial %d: infeasible %v after mid-solve cancel", s.Name(), trial, sol.IDs)
			}
			if sol.Status != opt.StatusCanceled && sol.Status != opt.StatusCompleted && sol.Status != opt.StatusExhausted {
				t.Errorf("%s trial %d: unexpected status %q", s.Name(), trial, sol.Status)
			}
			if opt.Unscored(sol.Quality) {
				t.Errorf("%s trial %d: unscored quality in final solution", s.Name(), trial)
			}
		}
	}
}

// TestSolversCompletedStatus: an unconstrained, uncanceled solve ends
// completed (or budget-exhausted when the budget bites) — never canceled.
func TestSolversCompletedStatus(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	for _, s := range All() {
		sol, err := s.Solve(context.Background(), p, opt.Options{Seed: 2, MaxEvals: 5000, MaxIters: 30, Patience: 8})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sol.Status != opt.StatusCompleted && sol.Status != opt.StatusExhausted {
			t.Errorf("%s: status = %q on a clean solve", s.Name(), sol.Status)
		}
	}
}

func TestExhaustiveRejectsHugeSpaces(t *testing.T) {
	p := problem(t, 9, constraint.Set{})
	// With a tiny enumeration limit, exhaustive must refuse instead of
	// silently truncating the search.
	if sol, err := (exhaustive.Solver{Limit: 1}).Solve(context.Background(), p, opt.Options{}); err == nil {
		t.Errorf("exhaustive with limit 1 should refuse, got %v", sol.IDs)
	}
}

func TestExhaustiveHonorsConstraints(t *testing.T) {
	cons := constraint.Set{Sources: ids(5)}
	p := problem(t, 2, cons)
	sol, err := Exhaustive().Solve(context.Background(), p, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range sol.IDs {
		if id == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("exhaustive solution %v misses required source 5", sol.IDs)
	}
}
