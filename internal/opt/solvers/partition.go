package solvers

import (
	"context"
	"sort"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/schema"
	"mube/internal/telemetry"
)

// Partitioned wraps an inner solver with shard decomposition: when the
// matcher's θ-thresholded similarity graph (plus constraint bridges) splits
// the universe into independent source groups — disjoint sets no mediated GA
// can span — each group is solved independently on its own slice of the
// MaxSources and MaxEvals budgets, and the union of the per-group solutions
// is reported as one solution.
//
// The decomposition is exact for the matching term (Match(S) of a union is
// the concatenation of per-group matches; see match.Sharded) and heuristic
// for the data-dependent terms (coverage of a union is not the sum of group
// coverages), which is the standard divide-and-conquer trade at Internet
// scale: a 100k-source universe is far beyond any flat neighborhood search,
// while its per-domain groups are tractable. With one group the wrapper
// delegates to the inner solver unchanged.
//
// Determinism: groups are ordered by smallest member id, per-group seeds
// derive from Options.Seed and the group index, and sub-solves run
// sequentially — so a partitioned solve is bit-reproducible at any evaluator
// worker count, like every other solver.
type Partitioned struct {
	// Inner solves each group; nil means the default solver (tabu).
	Inner opt.Solver
}

// Name identifies the algorithm, naming the inner solver.
func (ps Partitioned) Name() string { return "partition+" + ps.inner().Name() }

func (ps Partitioned) inner() opt.Solver {
	if ps.Inner == nil {
		return Default()
	}
	return ps.Inner
}

// Solve implements opt.Solver.
func (ps Partitioned) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inner := ps.inner()
	if p.Matcher == nil {
		return inner.Solve(ctx, p, opts)
	}
	groups := p.Matcher.NewSharded(p.Constraints).SourceGroups()
	if len(groups) <= 1 {
		return inner.Solve(ctx, p, opts)
	}
	opts = opts.WithDefaults()

	// Budget split. Required sources are pinned to their group (constraints
	// never span groups — GA constraints bridge the shards they touch), so
	// each group's MaxSources quota starts at its required count and the free
	// slots spread by largest remainder over group sizes.
	reqBy := make(map[schema.SourceID]bool)
	for _, id := range p.Constraints.RequiredSources() {
		reqBy[id] = true
	}
	g := len(groups)
	reqCount := make([]int, g)
	total := 0
	for i, grp := range groups {
		for _, id := range grp {
			if reqBy[id] {
				reqCount[i]++
			}
		}
		total += len(groups[i])
	}
	free := p.MaxSources
	for _, rc := range reqCount {
		free -= rc
	}
	share := splitBudget(free, groups, reqCount)
	evalShare := splitEvals(opts.MaxEvals, groups, total)

	union := make([]schema.SourceID, 0, p.MaxSources)
	evals := 0
	status := opt.StatusCompleted
	for i, grp := range groups {
		quota := reqCount[i] + share[i]
		if quota == 0 {
			continue // no budget and nothing required: the group sits out
		}
		in := make(map[schema.SourceID]bool, len(grp))
		for _, id := range grp {
			in[id] = true
		}
		sub := &opt.Problem{
			Universe:    p.Universe,
			Matcher:     p.Matcher,
			Quality:     p.Quality,
			MaxSources:  quota,
			Constraints: filterConstraints(p.Constraints, in),
		}
		subOpts := opts
		subOpts.Seed = opts.Seed + int64(i)*1_000_003
		subOpts.MaxEvals = evalShare[i]
		subOpts.Candidates = grp
		subOpts.Initial = filterIDs(opts.Initial, in)
		// Each sub-solve gets its own span so the profile attributes time and
		// evals to the group, with the inner solver.run nested beneath.
		gsp := opts.Recorder.BeginSpan("partition.group",
			telemetry.Int("group", i),
			telemetry.Int("sources", len(grp)),
			telemetry.Int("quota", quota))
		sol, err := inner.Solve(ctx, sub, subOpts)
		if err != nil {
			gsp.End(telemetry.Str("err", err.Error()))
			return nil, err
		}
		gsp.End(telemetry.Float("best_q", sol.Quality), telemetry.Int("evals", sol.Evals))
		union = append(union, sol.IDs...)
		evals += sol.Evals
		if rank(sol.Status) > rank(status) {
			status = sol.Status
		}
	}

	// Score the union once, outside any budget, and report it under the
	// aggregated accounting: Evals is what the sub-solves actually consumed,
	// Status the worst way any sub-solve ended.
	ev := opt.NewEvaluator(p, 0)
	ev.Instrument(opts.Recorder)
	final := ev.Solution(opt.SortIDs(union), ps.Name())
	final.Evals = evals
	final.Status = status
	return final, nil
}

// rank orders statuses by severity for aggregation.
func rank(s opt.Status) int {
	switch s {
	case opt.StatusCanceled:
		return 3
	case opt.StatusDeadline:
		return 2
	case opt.StatusExhausted:
		return 1
	default:
		return 0
	}
}

// splitBudget distributes free slots over groups by largest remainder on
// group size, capping each group at its own size minus its required count.
// Deterministic: remainder ties break on group index.
func splitBudget(free int, groups [][]schema.SourceID, reqCount []int) []int {
	g := len(groups)
	share := make([]int, g)
	if free <= 0 {
		return share
	}
	total := 0
	for _, grp := range groups {
		total += len(grp)
	}
	capacity := make([]int, g)
	assigned := 0
	type frac struct{ rem, idx int }
	fracs := make([]frac, g)
	for i, grp := range groups {
		capacity[i] = len(grp) - reqCount[i]
		s := free * len(grp) / total
		if s > capacity[i] {
			s = capacity[i]
		}
		share[i] = s
		assigned += s
		fracs[i] = frac{rem: (free * len(grp)) % total, idx: i}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for left := free - assigned; left > 0; {
		gave := false
		for _, f := range fracs {
			if left == 0 {
				break
			}
			if share[f.idx] < capacity[f.idx] {
				share[f.idx]++
				left--
				gave = true
			}
		}
		if !gave {
			break // every group is at capacity; leftover slots go unused
		}
	}
	return share
}

// splitEvals divides the evaluation budget proportionally to group size.
// Non-positive budgets (unlimited) pass through; positive budgets give every
// solved group at least one evaluation.
func splitEvals(maxEvals int, groups [][]schema.SourceID, total int) []int {
	out := make([]int, len(groups))
	if maxEvals <= 0 {
		for i := range out {
			out[i] = maxEvals
		}
		return out
	}
	for i, grp := range groups {
		e := maxEvals * len(grp) / total
		if e < 1 {
			e = 1
		}
		out[i] = e
	}
	return out
}

// filterConstraints restricts a constraint set to sources inside the group.
// Constraints never span groups, so this is a partition of the set, not an
// approximation.
func filterConstraints(cons constraint.Set, in map[schema.SourceID]bool) constraint.Set {
	var out constraint.Set
	for _, id := range cons.Sources {
		if in[id] {
			out.Sources = append(out.Sources, id)
		}
	}
	for _, ga := range cons.GAs {
		refs := ga.Refs()
		if len(refs) > 0 && in[refs[0].Source] {
			out.GAs = append(out.GAs, ga)
		}
	}
	return out
}

// filterIDs keeps the ids inside the group (for warm starts).
func filterIDs(ids []schema.SourceID, in map[schema.SourceID]bool) []schema.SourceID {
	var out []schema.SourceID
	for _, id := range ids {
		if in[id] {
			out = append(out, id)
		}
	}
	return out
}
