package solvers

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/schema"
	"mube/internal/telemetry"
)

// Partitioned wraps an inner solver with shard decomposition: when the
// matcher's θ-thresholded similarity graph (plus constraint bridges) splits
// the universe into independent source groups — disjoint sets no mediated GA
// can span — each group is solved independently on its own slice of the
// MaxSources and MaxEvals budgets, and the union of the per-group solutions
// is reported as one solution.
//
// The decomposition is exact for the matching term (Match(S) of a union is
// the concatenation of per-group matches; see match.Sharded) and heuristic
// for the data-dependent terms (coverage of a union is not the sum of group
// coverages), which is the standard divide-and-conquer trade at Internet
// scale: a 100k-source universe is far beyond any flat neighborhood search,
// while its per-domain groups are tractable. With one group the wrapper
// delegates to the inner solver unchanged.
//
// After the merge, a bounded cross-group refinement pass (see refine) walks
// the union's boundary with deterministic sampled swaps, accepting only
// strict improvements — recovering some of the coupling the decomposition
// ignored while keeping merged quality a floor.
//
// Determinism: groups are ordered by smallest member id, per-group seeds
// derive from Options.Seed and the group index, and constraint sets never
// span groups — so sub-solves are independent and run concurrently on a
// bounded worker pool (Options.GroupWorkers). Each sub-solve records into a
// private child recorder whose captured stream is replayed into the parent
// trace in group-index order after the workers join, so results are
// bit-identical and traces byte-identical at any group-worker count, like
// every other solver. (Under context cancellation mid-solve, which groups
// observe the cancellation first is inherently scheduling-dependent — the
// same caveat as the evaluator's worker pool.)
type Partitioned struct {
	// Inner solves each group; nil means the default solver (tabu).
	Inner opt.Solver
}

// DefaultRefineRounds is the cross-group refinement bound applied when
// Options.RefineRounds is zero.
const DefaultRefineRounds = 2

// refineMoveCap bounds the number of sampled boundary moves scored per
// refinement round; one EvalBatchDelta call scores the whole sample.
const refineMoveCap = 512

// Name identifies the algorithm, naming the inner solver.
func (ps Partitioned) Name() string { return "partition+" + ps.inner().Name() }

func (ps Partitioned) inner() opt.Solver {
	if ps.Inner == nil {
		return Default()
	}
	return ps.Inner
}

// Solve implements opt.Solver.
func (ps Partitioned) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inner := ps.inner()
	if p.Matcher == nil {
		return inner.Solve(ctx, p, opts)
	}
	groups := p.Matcher.NewSharded(p.Constraints).SourceGroups()
	if len(groups) <= 1 {
		return inner.Solve(ctx, p, opts)
	}
	opts = opts.WithDefaults()

	// Budget split. Required sources are pinned to their group (constraints
	// never span groups — GA constraints bridge the shards they touch), so
	// each group's MaxSources quota starts at its required count and the free
	// slots spread by largest remainder over group sizes.
	reqBy := make(map[schema.SourceID]bool)
	for _, id := range p.Constraints.RequiredSources() {
		reqBy[id] = true
	}
	g := len(groups)
	reqCount := make([]int, g)
	total := 0
	for i, grp := range groups {
		for _, id := range grp {
			if reqBy[id] {
				reqCount[i]++
			}
		}
		total += len(groups[i])
	}
	free := p.MaxSources
	for _, rc := range reqCount {
		free -= rc
	}
	share := splitBudget(free, groups, reqCount)
	evalShare := splitEvals(opts.MaxEvals, groups, total)

	// Stage the per-group sub-solves. Each job carries its own sub-problem,
	// derived seed, and a private child recorder over a memory sink: workers
	// may run in any order, and the owner replays the captured streams in
	// group-index order afterwards, which is exactly the trace a sequential
	// run would have written.
	jobs := make([]groupJob, 0, g)
	for i, grp := range groups {
		quota := reqCount[i] + share[i]
		if quota == 0 {
			continue // no budget and nothing required: the group sits out
		}
		in := make(map[schema.SourceID]bool, len(grp))
		for _, id := range grp {
			in[id] = true
		}
		sub := &opt.Problem{
			Universe:    p.Universe,
			Matcher:     p.Matcher,
			Quality:     p.Quality,
			MaxSources:  quota,
			Constraints: filterConstraints(p.Constraints, in),
		}
		subOpts := opts
		subOpts.Seed = opts.Seed + int64(i)*1_000_003
		subOpts.MaxEvals = evalShare[i]
		subOpts.Candidates = grp
		subOpts.Initial = filterIDs(opts.Initial, in)
		sink := &telemetry.MemorySink{}
		subOpts.Recorder = opts.Recorder.Child(sink)
		jobs = append(jobs, groupJob{
			group: i, sources: len(grp), quota: quota,
			sub: sub, opts: subOpts, sink: sink,
		})
	}

	results := make([]groupResult, len(jobs))
	workers := opts.GroupWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for k := range jobs {
			results[k] = ps.solveGroup(ctx, inner, jobs[k])
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(cursor.Add(1)) - 1
					if k >= len(jobs) {
						return
					}
					results[k] = ps.solveGroup(ctx, inner, jobs[k])
				}
			}()
		}
		wg.Wait()
	}

	// Replay and aggregate in group order. Error handling mirrors the
	// sequential loop: the first failing group (by index) ends the solve
	// after its own stream is replayed, and later groups' speculative
	// results are dropped without a trace.
	union := make([]schema.SourceID, 0, p.MaxSources)
	evals := 0
	status := opt.StatusCompleted
	for k := range jobs {
		opts.Recorder.Replay(jobs[k].sink.Events())
		opts.Recorder.Merge(jobs[k].opts.Recorder.Snapshot())
		if results[k].err != nil {
			return nil, results[k].err
		}
		sol := results[k].sol
		union = append(union, sol.IDs...)
		evals += sol.Evals
		if rank(sol.Status) > rank(status) {
			status = sol.Status
		}
	}

	// Score the union once, outside any budget, then try to improve it
	// across group boundaries. The refinement evaluator is unlimited, so the
	// reported accounting stays the sub-solves' own: Evals is what they
	// consumed, Status the worst way any of them ended; refined quality can
	// only rise (see refine).
	ev := opt.NewEvaluator(p, 0)
	ev.Instrument(opts.Recorder)
	ev.SetWorkers(opts.Parallel)
	refined := ps.refine(ctx, p, ev, opt.SortIDs(union), groups, opts)
	final := ev.Solution(refined, ps.Name())
	final.Evals = evals
	final.Status = status
	return final, nil
}

// groupJob is one staged sub-solve; groupResult is what its worker returns.
type groupJob struct {
	group   int // index into the group list (seed + trace attribute)
	sources int
	quota   int
	sub     *opt.Problem
	opts    opt.Options // Recorder is the group's private child recorder
	sink    *telemetry.MemorySink
}

type groupResult struct {
	sol *opt.Solution
	err error
}

// solveGroup runs one group sub-solve, recording its span subtree on the
// job's private recorder. Runs on a pool worker; it only writes locals and
// its slot of the results slice, so scheduling order cannot leak into
// results or traces.
func (ps Partitioned) solveGroup(ctx context.Context, inner opt.Solver, j groupJob) groupResult {
	// Each sub-solve gets its own span so the profile attributes time and
	// evals to the group, with the inner solver.run nested beneath. The span
	// lands on the group's child recorder, never the shared parent.
	//mube:vet-ignore workerpure — spans go to the group's private recorder; the owner replays them in group order after the join
	gsp := j.opts.Recorder.BeginSpan("partition.group",
		telemetry.Int("group", j.group),
		telemetry.Int("sources", j.sources),
		telemetry.Int("quota", j.quota))
	sol, err := inner.Solve(ctx, j.sub, j.opts)
	if err != nil {
		gsp.End(telemetry.Str("err", err.Error()))
		return groupResult{err: err}
	}
	gsp.End(telemetry.Float("best_q", sol.Quality), telemetry.Int("evals", sol.Evals))
	return groupResult{sol: sol}
}

// refine is the cross-group pass over the merged union: up to rounds rounds
// of sampled boundary moves — swaps whose add and drop lie in different
// groups, plus pure adds while under MaxSources — scored in one
// EvalBatchDelta batch per round, accepting the best strictly-improving move
// (ties break to the lowest sample index). Sampling is driven by a
// dedicated PRNG derived from Options.Seed, so the pass is deterministic;
// acceptance requires strict improvement, so the returned set's quality is
// ≥ the union's. Required sources are never dropped and every candidate set
// is scored through the normal evaluator (infeasible sets score 0), so
// feasibility is preserved. ids must be sorted and is not mutated.
func (ps Partitioned) refine(ctx context.Context, p *opt.Problem, ev *opt.Evaluator, ids []schema.SourceID, groups [][]schema.SourceID, opts opt.Options) []schema.SourceID {
	rounds := opts.RefineRounds
	if rounds == 0 {
		rounds = DefaultRefineRounds
	}
	if rounds < 0 || len(ids) == 0 || len(groups) <= 1 || ctx.Err() != nil {
		return ids
	}

	// Group offsets for uniform sampling over the whole shard-covered pool,
	// and group membership for the current set (maintained across accepted
	// moves; adds learn their group at sample time).
	off := make([]int, len(groups)+1)
	for i, grp := range groups {
		off[i+1] = off[i] + len(grp)
	}
	total := off[len(groups)]
	cur := append([]schema.SourceID(nil), ids...)
	curSet := make(map[schema.SourceID]bool, len(cur))
	for _, id := range cur {
		curSet[id] = true
	}
	memberGroup := make(map[schema.SourceID]int, len(cur))
	for gi, grp := range groups {
		for _, id := range grp {
			if curSet[id] {
				memberGroup[id] = gi
			}
		}
	}
	req := make(map[schema.SourceID]bool)
	for _, id := range p.Constraints.RequiredSources() {
		req[id] = true
	}

	rng := rand.New(rand.NewSource(opts.Seed + 999_999_937))
	curQ := ev.Eval(cur)
	sp := opts.Recorder.BeginSpan("partition.refine",
		telemetry.Int("rounds", rounds),
		telemetry.Int("sources", len(cur)),
		telemetry.Float("merged_q", curQ))
	accepted := 0
	for round := 0; round < rounds; round++ {
		if ctx.Err() != nil {
			break
		}
		moves, addGroup := sampleBoundaryMoves(rng, groups, off, total, cur, curSet, memberGroup, req, p.MaxSources)
		if len(moves) == 0 {
			break
		}
		qs := ev.EvalBatchDelta(cur, moves)
		best := -1
		for i, q := range qs {
			if q > curQ && (best == -1 || q > qs[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		mv := moves[best]
		if mv.Drop >= 0 {
			delete(curSet, mv.Drop)
			delete(memberGroup, mv.Drop)
			for i, id := range cur {
				if id == mv.Drop {
					cur = append(cur[:i], cur[i+1:]...)
					break
				}
			}
		}
		if mv.Add >= 0 {
			curSet[mv.Add] = true
			memberGroup[mv.Add] = addGroup[best]
			cur = append(cur, mv.Add)
		}
		cur = opt.SortIDs(cur)
		curQ = qs[best]
		accepted++
	}
	sp.End(telemetry.Int("accepted", accepted), telemetry.Float("best_q", curQ))
	return cur
}

// sampleBoundaryMoves draws up to refineMoveCap distinct cross-group moves:
// each starts from a uniformly sampled non-member add; when the set is full
// (or a coin flip says swap) it pairs the add with a droppable member from a
// different group. Deterministic given the PRNG state.
func sampleBoundaryMoves(rng *rand.Rand, groups [][]schema.SourceID, off []int, total int,
	cur []schema.SourceID, curSet map[schema.SourceID]bool, memberGroup map[schema.SourceID]int,
	req map[schema.SourceID]bool, maxSources int) ([]opt.Move, []int) {
	droppable := make([]schema.SourceID, 0, len(cur))
	for _, id := range cur {
		if !req[id] {
			droppable = append(droppable, id)
		}
	}
	canAdd := len(cur) < maxSources
	if !canAdd && len(droppable) == 0 {
		return nil, nil
	}
	moves := make([]opt.Move, 0, refineMoveCap)
	addGroup := make([]int, 0, refineMoveCap)
	seen := make(map[opt.Move]bool, refineMoveCap)
	for attempts := 0; attempts < refineMoveCap*8 && len(moves) < refineMoveCap; attempts++ {
		x := rng.Intn(total)
		gi := 0
		for x >= off[gi+1] {
			gi++
		}
		a := groups[gi][x-off[gi]]
		if curSet[a] {
			continue
		}
		mv := opt.Move{Add: a, Drop: -1}
		if len(droppable) > 0 && (!canAdd || rng.Intn(2) == 1) {
			d := droppable[rng.Intn(len(droppable))]
			if memberGroup[d] == gi {
				continue // within-group: the sub-solver's job, not refinement's
			}
			mv.Drop = d
		} else if !canAdd {
			continue
		}
		if seen[mv] {
			continue
		}
		seen[mv] = true
		moves = append(moves, mv)
		addGroup = append(addGroup, gi)
	}
	return moves, addGroup
}

// rank orders statuses by severity for aggregation.
func rank(s opt.Status) int {
	switch s {
	case opt.StatusCanceled:
		return 3
	case opt.StatusDeadline:
		return 2
	case opt.StatusExhausted:
		return 1
	default:
		return 0
	}
}

// splitBudget distributes free slots over groups by largest remainder on
// group size, capping each group at its own size minus its required count.
// Deterministic: remainder ties break on group index.
func splitBudget(free int, groups [][]schema.SourceID, reqCount []int) []int {
	g := len(groups)
	share := make([]int, g)
	if free <= 0 {
		return share
	}
	total := 0
	for _, grp := range groups {
		total += len(grp)
	}
	capacity := make([]int, g)
	assigned := 0
	type frac struct{ rem, idx int }
	fracs := make([]frac, g)
	for i, grp := range groups {
		capacity[i] = len(grp) - reqCount[i]
		s := free * len(grp) / total
		if s > capacity[i] {
			s = capacity[i]
		}
		share[i] = s
		assigned += s
		fracs[i] = frac{rem: (free * len(grp)) % total, idx: i}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for left := free - assigned; left > 0; {
		gave := false
		for _, f := range fracs {
			if left == 0 {
				break
			}
			if share[f.idx] < capacity[f.idx] {
				share[f.idx]++
				left--
				gave = true
			}
		}
		if !gave {
			break // every group is at capacity; leftover slots go unused
		}
	}
	return share
}

// splitEvals divides the evaluation budget proportionally to group size.
// Non-positive budgets (unlimited) pass through; positive budgets give every
// solved group at least one evaluation.
func splitEvals(maxEvals int, groups [][]schema.SourceID, total int) []int {
	out := make([]int, len(groups))
	if maxEvals <= 0 {
		for i := range out {
			out[i] = maxEvals
		}
		return out
	}
	for i, grp := range groups {
		e := maxEvals * len(grp) / total
		if e < 1 {
			e = 1
		}
		out[i] = e
	}
	return out
}

// filterConstraints restricts a constraint set to sources inside the group.
// Constraints never span groups, so this is a partition of the set, not an
// approximation.
func filterConstraints(cons constraint.Set, in map[schema.SourceID]bool) constraint.Set {
	var out constraint.Set
	for _, id := range cons.Sources {
		if in[id] {
			out.Sources = append(out.Sources, id)
		}
	}
	for _, ga := range cons.GAs {
		refs := ga.Refs()
		if len(refs) > 0 && in[refs[0].Source] {
			out.GAs = append(out.GAs, ga)
		}
	}
	return out
}

// filterIDs keeps the ids inside the group (for warm starts).
func filterIDs(ids []schema.SourceID, in map[schema.SourceID]bool) []schema.SourceID {
	var out []schema.SourceID
	for _, id := range ids {
		if in[id] {
			out = append(out, id)
		}
	}
	return out
}
