package solvers

import (
	"bytes"
	"context"
	"math"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/anneal"
	"mube/internal/opt/exhaustive"
	"mube/internal/opt/random"
	"mube/internal/opt/sls"
	"mube/internal/opt/tabu"
	"mube/internal/telemetry"
)

// TestDeltaPathDifferential is the tentpole acceptance test: for every
// solver that consumes the incremental evaluation paths (tabu, SLS,
// annealing, and the exhaustive oracle), an identical run with NoDelta set
// must produce a bit-identical solver trajectory — same Quality down to the
// float bits, same IDs, same Evals, same Status, and byte-identical JSONL
// traces — across 3 seeds and both 1 and 4 evaluator workers.
func TestDeltaPathDifferential(t *testing.T) {
	p := problem(t, 4, constraint.Set{Sources: ids(3)})
	solvers := []opt.Solver{tabu.Solver{}, sls.Solver{}, anneal.Solver{}, exhaustive.Solver{}}
	for _, s := range solvers {
		for _, seed := range []int64{1, 2, 3} {
			for _, workers := range []int{1, 4} {
				base := opt.Options{
					Seed: seed, MaxEvals: 400, MaxIters: 30, Patience: 8,
					Parallel: workers,
				}
				deltaOpts := base
				fullOpts := base
				fullOpts.NoDelta = true
				deltaSol, deltaTrace := solveTraced(t, s, p, deltaOpts)
				fullSol, fullTrace := solveTraced(t, s, p, fullOpts)

				label := s.Name()
				if math.Float64bits(deltaSol.Quality) != math.Float64bits(fullSol.Quality) {
					t.Errorf("%s seed=%d workers=%d: delta quality %v != full %v",
						label, seed, workers, deltaSol.Quality, fullSol.Quality)
				}
				if deltaSol.Evals != fullSol.Evals {
					t.Errorf("%s seed=%d workers=%d: delta evals %d != full %d",
						label, seed, workers, deltaSol.Evals, fullSol.Evals)
				}
				if deltaSol.Status != fullSol.Status {
					t.Errorf("%s seed=%d workers=%d: delta status %v != full %v",
						label, seed, workers, deltaSol.Status, fullSol.Status)
				}
				if len(deltaSol.IDs) != len(fullSol.IDs) {
					t.Errorf("%s seed=%d workers=%d: id sets differ: %v vs %v",
						label, seed, workers, deltaSol.IDs, fullSol.IDs)
				} else {
					for i := range deltaSol.IDs {
						if deltaSol.IDs[i] != fullSol.IDs[i] {
							t.Errorf("%s seed=%d workers=%d: id sets differ: %v vs %v",
								label, seed, workers, deltaSol.IDs, fullSol.IDs)
							break
						}
					}
				}
				if !bytes.Equal(deltaTrace, fullTrace) {
					t.Errorf("%s seed=%d workers=%d: trace bytes differ between delta and full paths",
						label, seed, workers)
				}
			}
		}
	}
}

// TestDeltaPathEngages guards the point of the optimization: on a plain
// local-search run the incremental paths must actually carry most of the
// computed evaluations (every single-flip neighborhood candidate), not
// silently fall back to full re-merges.
func TestDeltaPathEngages(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	for _, s := range []opt.Solver{tabu.Solver{}, sls.Solver{}, anneal.Solver{}, exhaustive.Solver{}} {
		rec := telemetry.New(nil)
		opts := opt.Options{Seed: 5, MaxEvals: 300, MaxIters: 20, Patience: 6, Recorder: rec}
		if _, err := s.Solve(context.Background(), p, opts); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		snap := rec.Snapshot()
		hits, computed := snap.Counter("eval.delta_hits"), snap.Counter("eval.computed")
		if computed == 0 {
			t.Fatalf("%s: no evaluations computed", s.Name())
		}
		if hits*2 < computed {
			t.Errorf("%s: delta paths carried %d of %d computed evals; expected a majority",
				s.Name(), hits, computed)
		}
	}
}

// TestRandomSolverStaysOnPlainPath pins the random solver's routing: its
// samples share no base subset, so it must use the plain batch path and the
// delta bookkeeping must never engage — no delta hits, no counting merges.
func TestRandomSolverStaysOnPlainPath(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	rec := telemetry.New(nil)
	opts := opt.Options{Seed: 5, MaxEvals: 200, MaxIters: 20, Recorder: rec}
	if _, err := (random.Solver{}).Solve(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if n := snap.Counter("eval.delta_hits"); n != 0 {
		t.Errorf("random solver engaged the delta path %d times; want 0", n)
	}
	if n := snap.Counter("pcsa.counting_merges"); n != 0 {
		t.Errorf("random solver performed %d counting merges; want 0", n)
	}
	if snap.Counter("eval.computed") == 0 {
		t.Error("no evaluations computed")
	}
}
