package solvers

import (
	"bytes"
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/telemetry"
)

// solveTraced runs one seeded solve with a JSONL recorder attached and
// returns the solution plus the raw trace bytes.
func solveTraced(t *testing.T, s opt.Solver, p *opt.Problem, base opt.Options) (*opt.Solution, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	traced := base
	traced.Recorder = telemetry.New(sink)
	sol, err := s.Solve(context.Background(), p, traced)
	if err != nil {
		t.Fatalf("%s traced solve: %v", s.Name(), err)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("%s trace sink: %v", s.Name(), err)
	}
	return sol, buf.Bytes()
}

// TestTelemetryDoesNotPerturbSolves is the telemetry layer's acceptance
// contract: for every solver (including the exhaustive oracle), attaching a
// recorder changes nothing about the solve — IDs, Quality bit-for-bit, and
// Evals match a plain run at both 1 and 4 evaluator workers. Run under -race
// this also exercises the worker-pool/metrics interleaving.
func TestTelemetryDoesNotPerturbSolves(t *testing.T) {
	cons := constraint.Set{Sources: ids(3)}
	p := problem(t, 5, cons)
	for _, s := range append(All(), Exhaustive()) {
		for _, workers := range []int{1, 4} {
			base := opt.Options{Seed: 42, MaxEvals: 300, MaxIters: 40, Patience: 10, Parallel: workers}
			plain, err := s.Solve(context.Background(), p, base)
			if err != nil {
				t.Fatalf("%s plain solve: %v", s.Name(), err)
			}
			traced, trace := solveTraced(t, s, p, base)
			//mube:vet-ignore floatcmp — telemetry must be unobservable bit-for-bit
			if traced.Quality != plain.Quality {
				t.Errorf("%s workers=%d: traced quality %v != plain %v",
					s.Name(), workers, traced.Quality, plain.Quality)
			}
			if traced.Evals != plain.Evals {
				t.Errorf("%s workers=%d: traced evals %d != plain %d",
					s.Name(), workers, traced.Evals, plain.Evals)
			}
			if len(traced.IDs) != len(plain.IDs) {
				t.Errorf("%s workers=%d: id sets differ: %v vs %v",
					s.Name(), workers, traced.IDs, plain.IDs)
				continue
			}
			for i := range traced.IDs {
				if traced.IDs[i] != plain.IDs[i] {
					t.Errorf("%s workers=%d: id sets differ: %v vs %v",
						s.Name(), workers, traced.IDs, plain.IDs)
					break
				}
			}
			if len(trace) == 0 {
				t.Errorf("%s workers=%d: empty trace", s.Name(), workers)
			}
		}
	}
}

// TestTraceBytesIndependentOfWorkerCount: because events are only ever
// emitted from the solve-owning goroutine, the JSONL trace must be
// byte-identical at any evaluator worker count.
func TestTraceBytesIndependentOfWorkerCount(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	for _, s := range append(All(), Exhaustive()) {
		base := opt.Options{Seed: 7, MaxEvals: 250, MaxIters: 30, Patience: 8}
		seqOpts := base
		seqOpts.Parallel = 1
		parOpts := base
		parOpts.Parallel = 4
		_, seq := solveTraced(t, s, p, seqOpts)
		_, par := solveTraced(t, s, p, parOpts)
		if !bytes.Equal(seq, par) {
			t.Errorf("%s: trace bytes differ between 1 and 4 workers", s.Name())
		}
	}
}
