package solvers

import (
	"bytes"
	"context"
	"math"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/tabu"
	"mube/internal/schema"
	"mube/internal/telemetry"
)

// TestPartitionedGroupWorkersBitIdentical is the acceptance contract of the
// parallel partitioned solver: at GroupWorkers 1 and 4, across seeds, the
// solve returns bit-identical Quality/Evals/Status/IDs and a byte-identical
// JSONL trace — group sub-solves are independent, and their private trace
// streams replay into the parent in group order regardless of scheduling.
func TestPartitionedGroupWorkersBitIdentical(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{2, 7}}
	p := domainProblem(t, 60, 5, 10, cons)
	if g := p.Matcher.NewSharded(p.Constraints).SourceGroups(); len(g) < 2 {
		t.Fatalf("fixture has %d groups; the differential needs several", len(g))
	}
	ps := Partitioned{Inner: tabu.Solver{}}
	for _, seed := range []int64{3, 9, 21} {
		base := opt.Options{Seed: seed, MaxEvals: 600, MaxIters: 12, Patience: 4}

		seq := base
		seq.GroupWorkers = 1
		solSeq, traceSeq := solveTraced(t, ps, p, seq)

		par := base
		par.GroupWorkers = 4
		solPar, tracePar := solveTraced(t, ps, p, par)

		//mube:vet-ignore floatcmp — the contract is bit-identity, not approximation
		if math.Float64bits(solSeq.Quality) != math.Float64bits(solPar.Quality) {
			t.Errorf("seed %d: quality %v (1 worker) vs %v (4 workers)", seed, solSeq.Quality, solPar.Quality)
		}
		if solSeq.Evals != solPar.Evals || solSeq.Status != solPar.Status {
			t.Errorf("seed %d: evals/status (%d,%s) vs (%d,%s)",
				seed, solSeq.Evals, solSeq.Status, solPar.Evals, solPar.Status)
		}
		if len(solSeq.IDs) != len(solPar.IDs) {
			t.Fatalf("seed %d: id sets differ: %v vs %v", seed, solSeq.IDs, solPar.IDs)
		}
		for i := range solSeq.IDs {
			if solSeq.IDs[i] != solPar.IDs[i] {
				t.Fatalf("seed %d: id sets differ: %v vs %v", seed, solSeq.IDs, solPar.IDs)
			}
		}
		if !bytes.Equal(traceSeq, tracePar) {
			t.Errorf("seed %d: traces differ between 1 and 4 group workers (%d vs %d bytes)",
				seed, len(traceSeq), len(tracePar))
		}
	}
}

// TestPartitionedGroupWorkersMetricsIdentical pins the metric half of the
// replay model: counters merged from the per-group child recorders add up to
// the same totals at any group-worker count.
func TestPartitionedGroupWorkersMetricsIdentical(t *testing.T) {
	p := domainProblem(t, 60, 5, 10, constraint.Set{})
	ps := Partitioned{Inner: tabu.Solver{}}
	base := opt.Options{Seed: 9, MaxEvals: 600, MaxIters: 12, Patience: 4}

	snaps := make([]map[string]int64, 0, 2)
	for _, gw := range []int{1, 4} {
		opts := base
		opts.GroupWorkers = gw
		opts.Recorder = telemetry.New(nil)
		if _, err := ps.Solve(context.Background(), p, opts); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, opts.Recorder.Snapshot().Counters)
	}
	if len(snaps[0]) == 0 {
		t.Fatal("no counters recorded")
	}
	for k, v := range snaps[0] {
		if snaps[1][k] != v {
			t.Errorf("counter %s = %d at 1 worker, %d at 4", k, v, snaps[1][k])
		}
	}
	for k := range snaps[1] {
		if _, ok := snaps[0][k]; !ok {
			t.Errorf("counter %s only present at 4 workers", k)
		}
	}
}

// TestPartitionedRefineMonotone asserts the refinement acceptance rule on
// every seed: the refined solution never scores below the merged union
// (refinement off), and stays feasible.
func TestPartitionedRefineMonotone(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{2, 7}}
	p := domainProblem(t, 60, 5, 10, cons)
	ps := Partitioned{Inner: tabu.Solver{}}
	for _, seed := range []int64{3, 9, 21} {
		base := opt.Options{Seed: seed, MaxEvals: 600, MaxIters: 12, Patience: 4}

		off := base
		off.RefineRounds = -1
		merged, err := ps.Solve(context.Background(), p, off)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := ps.Solve(context.Background(), p, base)
		if err != nil {
			t.Fatal(err)
		}
		if refined.Quality < merged.Quality {
			t.Errorf("seed %d: refinement lowered Q: %v -> %v", seed, merged.Quality, refined.Quality)
		}
		if !p.Feasible(refined.IDs) {
			t.Errorf("seed %d: refined solution %v infeasible", seed, refined.IDs)
		}
		for _, req := range cons.Sources {
			found := false
			for _, id := range refined.IDs {
				if id == req {
					found = true
				}
			}
			if !found {
				t.Errorf("seed %d: refinement dropped required source %d: %v", seed, req, refined.IDs)
			}
		}
	}
}

// TestPartitionedRefineImproves10k pins a seeded 10k-source scenario where
// the cross-group pass strictly improves on the merged union — the
// decomposition's coupling loss is real and refinement recovers some of it.
func TestPartitionedRefineImproves10k(t *testing.T) {
	p := domainProblem(t, 10_000, 8, 40, constraint.Set{})
	ps := Partitioned{Inner: tabu.Solver{}}
	base := opt.Options{Seed: 1, MaxEvals: 2000, MaxIters: 6, Patience: 2}

	off := base
	off.RefineRounds = -1
	merged, err := ps.Solve(context.Background(), p, off)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := ps.Solve(context.Background(), p, base)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Quality < merged.Quality {
		t.Fatalf("refinement lowered Q: %v -> %v", merged.Quality, refined.Quality)
	}
	if refined.Quality <= merged.Quality {
		t.Fatalf("pinned scenario no longer improves: merged %v, refined %v "+
			"(pick a new seed if solver behavior intentionally changed)", merged.Quality, refined.Quality)
	}
}
