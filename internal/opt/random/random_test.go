package random

import (
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/testutil"
)

func TestName(t *testing.T) {
	if (Solver{}).Name() != "random" {
		t.Errorf("Name = %q", Solver{}.Name())
	}
}

func TestSolveFeasibleAndDeterministic(t *testing.T) {
	p := opttest.Problem(t, 4, constraint.Set{})
	a, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 5, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(a.IDs) || a.Quality <= 0 {
		t.Errorf("solution %v q=%v", a.IDs, a.Quality)
	}
	b, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 5, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(a.Quality, b.Quality) {
		t.Errorf("same seed differs: %v vs %v", a.Quality, b.Quality)
	}
}

func TestMoreSamplesNeverWorse(t *testing.T) {
	p := opttest.Problem(t, 3, constraint.Set{})
	few, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 9, MaxEvals: 10})
	if err != nil {
		t.Fatal(err)
	}
	many, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 9, MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	if many.Quality+1e-9 < few.Quality {
		t.Errorf("more samples got worse: %v vs %v", many.Quality, few.Quality)
	}
}

func TestUnlimitedEvalBudgetFallsBackToIters(t *testing.T) {
	// MaxEvals < 0 means "unlimited" for iteration-bounded solvers; random
	// search must fall back to MaxIters samples instead of zero.
	p := opttest.Problem(t, 3, constraint.Set{})
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 2, MaxEvals: -1, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality <= 0 {
		t.Errorf("quality = %v with unlimited budget", sol.Quality)
	}
}
