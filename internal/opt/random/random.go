// Package random implements pure random search — sampling feasible subsets
// uniformly and keeping the best. It is the floor any serious solver must
// beat and calibrates the solver-comparison experiment.
package random

import (
	"mube/internal/opt"
	"mube/internal/schema"
)

// Solver is random search.
type Solver struct{}

// Name returns "random".
func (Solver) Name() string { return "random" }

// Solve samples random feasible subsets until the budget is exhausted.
func (s Solver) Solve(p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	opts = opts.WithDefaults()
	search, err := opt.NewSearch(p, opts)
	if err != nil {
		return nil, err
	}
	var bestIDs []schema.SourceID
	bestQ := -1.0
	samples := opts.MaxEvals
	if samples < 0 {
		// Unlimited evaluation budget: bound by iterations instead.
		samples = opts.MaxIters
	}
	for i := 0; i < samples && !search.Eval.Exhausted(); i++ {
		ids := search.RandomSubset()
		if q := search.Eval.Eval(ids); q > bestQ {
			bestQ = q
			bestIDs = ids
		}
	}
	if bestIDs == nil {
		bestIDs = search.RandomSubset()
	}
	return search.Eval.Solution(bestIDs, s.Name()), nil
}
