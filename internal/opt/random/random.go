// Package random implements pure random search — sampling feasible subsets
// uniformly and keeping the best. It is the floor any serious solver must
// beat and calibrates the solver-comparison experiment.
package random

import (
	"context"

	"mube/internal/opt"
	"mube/internal/schema"
)

// Solver is random search.
type Solver struct{}

// Name returns "random".
func (Solver) Name() string { return "random" }

// Solve samples random feasible subsets until the budget is exhausted or ctx
// is done.
func (s Solver) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	opts = opts.WithDefaults()
	search, err := opt.NewSearch(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	span := search.BeginSolve(s.Name())
	var bestIDs []schema.SourceID
	bestQ := -1.0
	samples := opts.MaxEvals
	if samples < 0 {
		// Unlimited evaluation budget: bound by iterations instead.
		samples = opts.MaxIters
	}
	// Draw candidates in fixed-size chunks (all randomness here, in draw
	// order) and score each chunk as one batch. The chunk size is a
	// constant — independent of the worker count — so the candidate
	// sequence and the best-so-far scan never depend on parallelism.
	//
	// Random search deliberately uses the plain EvalBatch path, not the
	// delta API: its samples are independent draws with no base subset in
	// common, so there is nothing for a counting union to be incremental
	// against — every "flip" would be a full rebuild. The evaluator's delta
	// bookkeeping must never engage here (asserted by a test).
	const chunk = 32
	for drawn := 0; drawn < samples && !search.Eval.Exhausted() && !search.Stopped(); {
		n := samples - drawn
		if n > chunk {
			n = chunk
		}
		// Clamp the chunk to the remaining evaluation budget so no candidate
		// is drawn only to come back unscored. Memo hits within the chunk may
		// still leave budget unspent after the batch; the outer loop's
		// Exhausted check settles that.
		if rem := search.Eval.Remaining(); rem >= 0 && n > rem {
			n = rem
		}
		if n == 0 {
			break
		}
		cands := make([][]schema.SourceID, n)
		for i := range cands {
			cands[i] = search.RandomSubset()
		}
		chunkQ := -1.0
		for i, q := range search.Eval.EvalBatch(cands) {
			if q > chunkQ {
				chunkQ = q
			}
			if q > bestQ {
				bestQ = q
				bestIDs = cands[i]
			}
		}
		drawn += n
		// One trace point per chunk: the chunk is this solver's iteration.
		search.TraceIter(s.Name(), drawn, chunkQ, bestQ)
	}
	if bestIDs == nil {
		bestIDs = search.RandomSubset()
	}
	sol := search.Eval.Solution(bestIDs, s.Name())
	span.End()
	return sol, nil
}
