package exhaustive

import (
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/schema"
)

func TestName(t *testing.T) {
	if (Solver{}).Name() != "exhaustive" {
		t.Errorf("Name = %q", Solver{}.Name())
	}
}

func TestFindsTrueOptimum(t *testing.T) {
	p := opttest.Problem(t, 2, constraint.Set{})
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Verify by brute force over all pairs and singletons.
	e := opt.NewEvaluator(p, 0)
	best := 0.0
	n := p.Universe.Len()
	for i := 0; i < n; i++ {
		if q := e.Eval([]schema.SourceID{schema.SourceID(i)}); q > best {
			best = q
		}
		for j := i + 1; j < n; j++ {
			ids := []schema.SourceID{schema.SourceID(i), schema.SourceID(j)}
			if q := e.Eval(ids); q > best {
				best = q
			}
		}
	}
	if sol.Quality < best-1e-12 {
		t.Errorf("exhaustive %.6f below true optimum %.6f", sol.Quality, best)
	}
}

func TestLimitRefusal(t *testing.T) {
	p := opttest.Problem(t, 6, constraint.Set{})
	if _, err := (Solver{Limit: 10}).Solve(context.Background(), p, opt.Options{}); err == nil {
		t.Error("tiny limit accepted a large space")
	}
}

func TestCountSubsets(t *testing.T) {
	cases := []struct{ n, m, want int }{
		{4, 0, 1},
		{4, 1, 5},  // 1 + 4
		{4, 2, 11}, // 1 + 4 + 6
		{4, 4, 16}, // 2^4
		{3, 9, 8},  // m > n clamps
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := countSubsets(c.n, c.m); got != c.want {
			t.Errorf("countSubsets(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
	// Saturation on huge spaces instead of overflow.
	if got := countSubsets(200, 100); got <= 0 {
		t.Errorf("saturated count = %d, want positive sentinel", got)
	}
}

func TestConstraintsReduceSpace(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{0, 1}}
	p := opttest.Problem(t, 3, cons)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.SatisfiedBy(sol.IDs) {
		t.Errorf("solution %v misses required sources", sol.IDs)
	}
	// Space is only the 10 optional singletons + empty = 11 subsets.
	if sol.Evals > 12 {
		t.Errorf("evaluated %d subsets, expected ≤ 12", sol.Evals)
	}
}
