// Package exhaustive enumerates every feasible subset and returns the true
// optimum. It is only tractable for small universes and serves as the test
// oracle against which the heuristic solvers are validated.
package exhaustive

import (
	"context"
	"fmt"

	"mube/internal/opt"
	"mube/internal/schema"
)

// Solver is exact enumeration.
type Solver struct {
	// Limit caps the number of subsets the solver will enumerate before
	// giving up with an error. Default 2 000 000.
	Limit int
}

// DefaultLimit bounds the enumeration.
const DefaultLimit = 2_000_000

// Name returns "exhaustive".
func (Solver) Name() string { return "exhaustive" }

// Solve enumerates all subsets S with C ⊆ S and |S| ≤ m and returns the
// best. A done ctx abandons the walk and returns the best subset scored so
// far (Status records the interruption — the result is then not a certified
// optimum).
func (s Solver) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if s.Limit == 0 {
		s.Limit = DefaultLimit
	}
	// Exhaustive search needs no evaluation cap: budget by subset count.
	opts = opts.WithDefaults()
	opts.MaxEvals = s.Limit + 1
	search, err := opt.NewSearch(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	free := search.MaxSources - len(search.Required)
	total := countSubsets(len(search.Optional), free)
	if total > s.Limit {
		return nil, fmt.Errorf("exhaustive: %d candidate subsets exceed limit %d", total, s.Limit)
	}
	span := search.BeginSolve(s.Name())

	// Enumerate in DFS order but score in fixed-size batches: the buffer
	// preserves enumeration order, so the strict-improvement scan selects
	// the same optimum (first among ties) as the sequential walk, while the
	// evaluator fans each flush out to its worker pool.
	//
	// The running union statistics are pushed and popped along the recursion
	// path — one counting-union update per DFS edge instead of an O(|S|)
	// re-merge per candidate — and snapshotted into each candidate, so the
	// evaluator presets them instead of re-deriving them.
	const flush = 64
	run := opt.NewRunningStats(p.Universe)
	for _, id := range search.Required {
		run.Push(id)
	}
	var bestIDs []schema.SourceID
	bestQ := -1.0
	scanned := 0
	cands := make([]opt.PresetCandidate, 0, flush)
	score := func() {
		if n := run.TakeOps(); n > 0 {
			search.Rec.Add("pcsa.counting_merges", int64(n))
		}
		flushQ := -1.0
		for i, q := range search.Eval.EvalBatchPreset(cands) {
			if q > flushQ {
				flushQ = q
			}
			if q > bestQ {
				bestQ = q
				bestIDs = cands[i].IDs
			}
		}
		scanned += len(cands)
		if len(cands) > 0 {
			// One trace point per flushed batch; iter counts subsets scanned.
			search.TraceIter(s.Name(), scanned, flushQ, bestQ)
		}
		cands = cands[:0]
	}
	pick := make([]schema.SourceID, 0, free)
	var walk func(start, remaining int)
	walk = func(start, remaining int) {
		if search.Stopped() {
			return
		}
		ids := append(append([]schema.SourceID(nil), search.Required...), pick...)
		st, valid := run.Snapshot()
		cands = append(cands, opt.PresetCandidate{IDs: opt.SortIDs(ids), Stats: st, Valid: valid})
		if len(cands) == flush {
			score()
		}
		if remaining == 0 {
			return
		}
		for i := start; i < len(search.Optional) && !search.Stopped(); i++ {
			pick = append(pick, search.Optional[i])
			run.Push(search.Optional[i])
			walk(i+1, remaining-1)
			run.Pop(search.Optional[i])
			pick = pick[:len(pick)-1]
		}
	}
	walk(0, free)
	score()
	if bestIDs == nil {
		// Canceled before any subset scored: fall back to the first
		// enumerated candidate (required sources only), which is feasible.
		bestIDs = opt.SortIDs(append([]schema.SourceID(nil), search.Required...))
	}
	sol := search.Eval.Solution(bestIDs, s.Name())
	span.End()
	return sol, nil
}

// countSubsets returns Σ_{k=0..m} C(n,k), saturating at a large sentinel to
// avoid overflow.
func countSubsets(n, m int) int {
	if m > n {
		m = n
	}
	total := 0
	c := 1 // C(n,0)
	for k := 0; k <= m; k++ {
		total += c
		if total > DefaultLimit*10 || total < 0 {
			return DefaultLimit * 10
		}
		// C(n,k+1) = C(n,k)·(n−k)/(k+1)
		c = c * (n - k) / (k + 1)
	}
	return total
}
