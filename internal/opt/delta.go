package opt

import (
	"fmt"
	"sort"

	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
)

// rebaseLimit caps how far a cached delta state may drift from the next
// batch's base before it is cheaper (and simpler to reason about) to rebuild
// the counting union from scratch. Local-search bases move by at most two
// sources per accepted step, so the cache survives the entire trajectory of
// tabu, SLS, and annealing; restarts and intensification jumps rebuild.
const rebaseLimit = 4

// deltaState is the incremental image of one base subset S: the subtractable
// counting union over the signatures of S plus the exact integer tallies the
// union statistics need. From it, any single-source flip S±{s} is scored as a
// pure O(1-source) read (see flipStats) instead of an O(|S|) re-merge.
//
// The state is mutated only between batches, on the solve goroutine
// (acquireDelta rebases or rebuilds it); during a batch's fan-out every
// worker reads it concurrently without mutation.
type deltaState struct {
	base []schema.SourceID // the subset the state images, sorted
	// counting is the subtractable union over the signatures of base; nil
	// when the universe carries no signature configuration use at all.
	counting *pcsa.Counting
	sigN     int   // members of base with a signature
	coopN    int   // cooperative members of base
	mixedN   int   // members with a signature but no cardinality
	coopSum  int64 // Σ|s| over cooperative members

	// match, when non-nil, is the cluster-sharded match image of base: each
	// flip re-clusters only the shards its add/drop sources touch and merges
	// with the cached unaffected shards (match.ShardedBase.ScoreFlip — a pure
	// concurrent-safe read, bit-identical to the full Match). nil when
	// sharding is off or no QEF reads the match score; flips then fall back to
	// the lean full-recluster Score path inside the qef context.
	match *match.ShardedBase
}

// rebuild resets ds to image base from scratch. Returns the number of
// counting-merge operations performed.
func (ds *deltaState) rebuild(u *source.Universe, base []schema.SourceID) int {
	ds.base = append(ds.base[:0], base...)
	ds.sigN, ds.coopN, ds.mixedN, ds.coopSum = 0, 0, 0, 0
	if ds.counting == nil {
		// An invalid signature config means no source can carry a signature
		// (Universe.Add enforces the match), so a nil counting union is fine:
		// sigN stays 0 and the estimate is never read.
		if c, err := pcsa.NewCounting(u.SignatureConfig()); err == nil {
			ds.counting = c
		}
	} else {
		ds.counting.Reset()
	}
	ops := 0
	for _, id := range base {
		ds.include(u, id)
		if s := u.Source(id); s.Signature != nil {
			if err := ds.counting.Add(s.Signature); err != nil {
				// Unreachable: Universe.Add enforces a uniform config.
				panic(fmt.Sprintf("opt: counting union add: %v", err))
			}
			ops++
		}
	}
	return ops
}

// saturated reports whether the counting union has sticky lanes, making
// signature removals inexact.
func (ds *deltaState) saturated() bool {
	return ds.counting != nil && ds.counting.Saturated()
}

// include adjusts the exact tallies for id joining the base.
func (ds *deltaState) include(u *source.Universe, id schema.SourceID) {
	s := u.Source(id)
	if s.Signature != nil {
		ds.sigN++
	}
	if s.Cooperative() {
		ds.coopN++
		ds.coopSum += s.Cardinality
	} else if s.Signature != nil {
		ds.mixedN++
	}
}

// exclude adjusts the exact tallies for id leaving the base.
func (ds *deltaState) exclude(u *source.Universe, id schema.SourceID) {
	s := u.Source(id)
	if s.Signature != nil {
		ds.sigN--
	}
	if s.Cooperative() {
		ds.coopN--
		ds.coopSum -= s.Cardinality
	} else if s.Signature != nil {
		ds.mixedN--
	}
}

// rebase moves ds from its current base to base, incrementally when they
// differ by at most rebaseLimit sources — this is where the counting union's
// subtractability pays: an annealing chain whose base advances one accepted
// move at a time updates in O(1 source) per batch instead of re-merging |S|
// signatures. Falls back to rebuild on large diffs, on pre-existing
// saturation (removals would be inexact), or on a Remove underflow. Returns
// the number of counting-merge operations performed.
func (ds *deltaState) rebase(u *source.Universe, base []schema.SourceID) int {
	added, removed := diffSorted(ds.base, base)
	if len(added)+len(removed) > rebaseLimit {
		return ds.rebuild(u, base)
	}
	if len(removed) > 0 && ds.saturated() {
		for _, id := range removed {
			if u.Source(id).Signature != nil {
				return ds.rebuild(u, base)
			}
		}
	}
	ops := 0
	for _, id := range removed {
		if s := u.Source(id); s.Signature != nil {
			if err := ds.counting.Remove(s.Signature); err != nil {
				// Underflow leaves the counting state inconsistent; the only
				// safe recovery is a full rebuild.
				return ds.rebuild(u, base)
			}
			ops++
		}
		ds.exclude(u, id)
	}
	for _, id := range added {
		if s := u.Source(id); s.Signature != nil {
			if err := ds.counting.Add(s.Signature); err != nil {
				panic(fmt.Sprintf("opt: counting union add: %v", err))
			}
			ops++
		}
		ds.include(u, id)
	}
	ds.base = append(ds.base[:0], base...)
	return ops
}

// flipStats derives the union statistics of base±flip as a pure read against
// the immutable delta state — safe from any worker goroutine. The estimate
// comes from the counting union's fused EstimateDelta kernel and the tallies
// from exact integer arithmetic, so the result is bit-identical to what
// qef.Context.unionStats would compute for the flipped subset. Returns the
// stats and the number of counting-merge operations.
//
// The caller must have verified the flip against the base (validFlip) and,
// when the drop side carries a signature, that the counting union is not
// saturated.
func (ds *deltaState) flipStats(u *source.Universe, flip Move) (qef.UnionStats, int) {
	sigN, coopN, mixedN := ds.sigN, ds.coopN, ds.mixedN
	coopSum := ds.coopSum
	var addSig, dropSig *pcsa.Signature
	if flip.Add >= 0 {
		s := u.Source(flip.Add)
		if s.Signature != nil {
			addSig = s.Signature
			sigN++
		}
		if s.Cooperative() {
			coopN++
			coopSum += s.Cardinality
		} else if s.Signature != nil {
			mixedN++
		}
	}
	if flip.Drop >= 0 {
		s := u.Source(flip.Drop)
		if s.Signature != nil {
			dropSig = s.Signature
			sigN--
		}
		if s.Cooperative() {
			coopN--
			coopSum -= s.Cardinality
		} else if s.Signature != nil {
			mixedN--
		}
	}
	st := qef.UnionStats{CoopN: coopN, CoopSum: coopSum, CoopMixed: mixedN > 0}
	ops := 0
	// sigN == 0 mirrors the full path's nil accumulator: UnionEst stays 0.
	if sigN > 0 {
		est, err := ds.counting.EstimateDelta(addSig, dropSig)
		if err != nil {
			// Unreachable: Universe.Add enforces a uniform config.
			panic(fmt.Sprintf("opt: counting union estimate: %v", err))
		}
		st.UnionEst = est
		if addSig != nil {
			ops++
		}
		if dropSig != nil {
			ops++
		}
	}
	return st, ops
}

// diffSorted returns the elements of b not in a (added) and of a not in b
// (removed); both inputs must be sorted.
func diffSorted(a, b []schema.SourceID) (added, removed []schema.SourceID) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			removed = append(removed, a[i])
			i++
		default:
			added = append(added, b[j])
			j++
		}
	}
	removed = append(removed, a[i:]...)
	added = append(added, b[j:]...)
	return added, removed
}

// RunningStats maintains the union statistics of a subset that grows and
// shrinks one source at a time — the exhaustive solver pushes and pops the
// counting union along its DFS recursion path, so each enumerated candidate's
// statistics are a snapshot instead of an O(|S|) re-merge. Single-goroutine
// use only.
type RunningStats struct {
	ds      deltaState
	u       *source.Universe
	tainted bool
	ops     int
}

// NewRunningStats returns running statistics for the empty subset.
func NewRunningStats(u *source.Universe) *RunningStats {
	r := &RunningStats{u: u}
	r.ds.rebuild(u, nil)
	return r
}

// Push includes id in the running subset.
func (r *RunningStats) Push(id schema.SourceID) {
	if s := r.u.Source(id); s.Signature != nil && !r.tainted {
		if r.ds.counting == nil {
			r.tainted = true
		} else if err := r.ds.counting.Add(s.Signature); err != nil {
			r.tainted = true
		} else {
			r.ops++
		}
	}
	r.ds.include(r.u, id)
}

// Pop excludes a previously pushed id. A pop of a signature-bearing source
// while the counting union is saturated cannot be exact, so it taints the
// stats: every later Snapshot reports invalid and candidates must take the
// full evaluation path. (With µBE's subset caps, saturation needs 255 sources
// sharing a bucket bit and does not occur in practice.)
func (r *RunningStats) Pop(id schema.SourceID) {
	if s := r.u.Source(id); s.Signature != nil && !r.tainted {
		if r.ds.counting == nil || r.ds.counting.Saturated() {
			r.tainted = true
		} else if err := r.ds.counting.Remove(s.Signature); err != nil {
			r.tainted = true
		} else {
			r.ops++
		}
	}
	r.ds.exclude(r.u, id)
}

// Snapshot returns the running subset's union statistics and whether they
// are exact (bit-identical to what a fresh context would compute). Invalid
// snapshots — after a saturation taint — must not be preset.
func (r *RunningStats) Snapshot() (qef.UnionStats, bool) {
	if r.tainted {
		return qef.UnionStats{}, false
	}
	st := qef.UnionStats{
		CoopN:     r.ds.coopN,
		CoopSum:   r.ds.coopSum,
		CoopMixed: r.ds.mixedN > 0,
	}
	if r.ds.sigN > 0 {
		st.UnionEst = r.ds.counting.Estimate()
	}
	return st, true
}

// TakeOps returns the counting-merge operations performed since the last
// call and resets the tally; callers fold it into the pcsa.counting_merges
// telemetry counter.
func (r *RunningStats) TakeOps() int {
	n := r.ops
	r.ops = 0
	return n
}

// acquireDelta checks the cached delta state out for one batch, rebasing it
// onto base (or building it fresh). Runs on the batch's calling goroutine
// before the worker fan-out; the returned state is then immutable until
// releaseDelta.
func (e *Evaluator) acquireDelta(base []schema.SourceID) *deltaState {
	e.deltaMu.Lock()
	ds := e.deltaCached
	e.deltaCached = nil
	e.deltaMu.Unlock()
	var ops int
	if ds == nil {
		ds = &deltaState{}
		ops = ds.rebuild(e.p.Universe, base)
	} else {
		ops = ds.rebase(e.p.Universe, base)
	}
	if ops > 0 {
		e.rec.Add("pcsa.counting_merges", int64(ops))
	}
	if sh := e.shardIndex(); sh == nil {
		ds.match = nil
	} else if ds.match == nil {
		// NewBase fails only on a base violating the constraints; flips from
		// such a base are infeasible anyway, so the nil fallback is harmless.
		if b, err := sh.NewBase(base); err == nil {
			ds.match = b
		}
	} else if err := ds.match.Rebase(base); err != nil {
		ds.match = nil
	}
	return ds
}

// releaseDelta checks the delta state back in after a batch's fan-out has
// joined, so the next batch can rebase it instead of rebuilding.
func (e *Evaluator) releaseDelta(ds *deltaState) {
	e.deltaMu.Lock()
	e.deltaCached = ds
	e.deltaMu.Unlock()
}

// SetDelta toggles the incremental scoring paths (EvalBatchDelta's flip
// scoring and EvalBatchPreset's preset stats). They are on by default; off,
// both APIs plan and account identically but score every job through the
// full re-merge path. Results are bit-identical either way — the toggle
// exists for differential testing and honest before/after benchmarks.
func (e *Evaluator) SetDelta(on bool) { e.noDelta = !on }

// SetShard toggles the cluster-sharded matching path for flip candidates. On
// by default; off, flips re-cluster their full attribute set through the lean
// Score path. Results are bit-identical either way (the sharded re-cluster is
// bit-exact — see match.ShardedBase); like SetDelta the toggle exists for
// differential testing and benchmarking. Must be set before the first batch.
func (e *Evaluator) SetShard(on bool) { e.noShard = !on }

// validFlip reports whether mv is a true single flip against the sorted
// base: its add side absent from base, its drop side present, and the two
// distinct. Anything else (re-adding a member, dropping a non-member) still
// evaluates correctly via applyFlip's tolerant set semantics, but must take
// the full path — the delta tallies would double-count it.
func validFlip(base []schema.SourceID, mv Move) bool {
	if mv.Add >= 0 {
		if mv.Add == mv.Drop {
			return false
		}
		i := sort.Search(len(base), func(i int) bool { return base[i] >= mv.Add })
		if i < len(base) && base[i] == mv.Add {
			return false
		}
	}
	if mv.Drop >= 0 {
		i := sort.Search(len(base), func(i int) bool { return base[i] >= mv.Drop })
		if i == len(base) || base[i] != mv.Drop {
			return false
		}
	}
	return true
}

// applyFlip returns the sorted subset that applying mv to the sorted base
// produces, with the same set semantics as Subset.Apply (drop first, then
// add; both tolerant of non-members/members) — but without materializing a
// map per move.
func applyFlip(base []schema.SourceID, mv Move) []schema.SourceID {
	out := make([]schema.SourceID, 0, len(base)+1)
	for _, id := range base {
		if mv.Drop >= 0 && id == mv.Drop {
			continue
		}
		out = append(out, id)
	}
	if mv.Add >= 0 {
		i := sort.Search(len(out), func(i int) bool { return out[i] >= mv.Add })
		if i == len(out) || out[i] != mv.Add {
			out = append(out, 0)
			copy(out[i+1:], out[i:])
			out[i] = mv.Add
		}
	}
	return out
}

// EvalBatchDelta scores a whole neighborhood of flips against one base
// subset, returning Q(base±flip) for each flip in order. True single flips
// are scored incrementally — O(1 source) against the batch's shared counting
// union — and anything else (invalid flips, or all flips when SetDelta(false))
// takes the full re-merge path. Memoization, budget accounting, and every
// returned quality are bit-identical to EvalBatch over the applied subsets.
//
// base must be sorted and must not be mutated until the call returns.
func (e *Evaluator) EvalBatchDelta(base []schema.SourceID, flips []Move) []float64 {
	cands := make([]candidate, len(flips))
	for i, mv := range flips {
		cands[i] = candidate{ids: applyFlip(base, mv)}
		if !e.noDelta && validFlip(base, mv) {
			cands[i].flip = mv
			cands[i].hasFlip = true
		}
	}
	return e.evalCandidates(cands, base)
}

// PresetCandidate is one EvalBatchPreset entry: a candidate subset plus the
// union statistics the caller maintained incrementally (the exhaustive
// solver's push/pop DFS). Valid=false — set when the caller's running state
// lost exactness, e.g. counting saturation along the recursion path — routes
// the candidate through the full path.
type PresetCandidate struct {
	IDs   []schema.SourceID
	Stats qef.UnionStats
	Valid bool
}

// EvalBatchPreset scores candidates whose union statistics the caller
// already knows, skipping the per-candidate O(|S|) signature re-merge.
// Planning, memoization, and budget accounting are identical to EvalBatch;
// so is every returned quality, bit for bit — preset stats must equal what
// the context would have computed, which the exhaustive solver's counting
// union guarantees.
func (e *Evaluator) EvalBatchPreset(cands []PresetCandidate) []float64 {
	wrapped := make([]candidate, len(cands))
	for i, pc := range cands {
		wrapped[i] = candidate{ids: pc.IDs}
		if pc.Valid && !e.noDelta {
			st := pc.Stats
			wrapped[i].st = &st
		}
	}
	return e.evalCandidates(wrapped, nil)
}

// computePreset evaluates Q(ids) with externally supplied union statistics:
// feasibility and every QEF run exactly as in compute, but the context skips
// its O(|S|) signature re-merge. Pure; safe on any worker goroutine.
func (e *Evaluator) computePreset(ids []schema.SourceID, st qef.UnionStats, sc *qef.Scratch) float64 {
	if !e.p.Feasible(ids) {
		return 0
	}
	ctx := qef.NewContextScratch(e.p.Universe, e.p.Matcher, e.p.Constraints, ids, sc)
	ctx.PresetUnionStats(st)
	v := e.p.Quality.Eval(ctx)
	// The coopMixed fallback union may still merge inside the context.
	if m := ctx.Merges(); m > 0 {
		e.rec.Add("pcsa.merges", int64(m))
	}
	return v
}

// computeFlip evaluates Q(base±flip) against the batch's immutable delta
// state: flipStats derives the union statistics as a pure read, then the
// QEFs run on a preset context. Pure; safe on any worker goroutine (counter
// adds are commutative).
func (e *Evaluator) computeFlip(ids []schema.SourceID, flip Move, ds *deltaState, sc *qef.Scratch) float64 {
	if !e.p.Feasible(ids) {
		return 0
	}
	st, ops := ds.flipStats(e.p.Universe, flip)
	if ops > 0 {
		e.rec.Add("pcsa.counting_merges", int64(ops))
	}
	ctx := qef.NewContextScratch(e.p.Universe, e.p.Matcher, e.p.Constraints, ids, sc)
	ctx.PresetUnionStats(st)
	if ds.match != nil {
		// Feasible(ids) above guarantees the flipped set satisfies the
		// constraints, which ScoreFlip's cached coverage flags rely on.
		ctx.PresetMatchScore(ds.match.ScoreFlip(flip.Add, flip.Drop))
	}
	v := e.p.Quality.Eval(ctx)
	if m := ctx.Merges(); m > 0 {
		e.rec.Add("pcsa.merges", int64(m))
	}
	return v
}
