// Package anneal implements constrained simulated annealing, one of the
// baseline solvers the paper compared against tabu search (§6). Moves are
// drawn from the feasibility-preserving neighborhood, so hard constraints
// are never violated; uphill moves are always taken and downhill moves are
// accepted with probability exp(Δ/T) under a geometric cooling schedule.
package anneal

import (
	"context"
	"math"

	"mube/internal/opt"
	"mube/internal/telemetry"
)

// Solver is a configured simulated annealing run.
type Solver struct {
	// T0 is the initial temperature. Default 0.08 — roughly the scale of a
	// single QEF swing, since Q(S) ∈ [0,1].
	T0 float64
	// Cooling is the geometric cooling factor applied each iteration.
	// Default 0.97.
	Cooling float64
	// MovesPerTemp is the number of random moves attempted per temperature
	// step. Default 10.
	MovesPerTemp int
}

// Defaults for the solver's zero fields.
const (
	DefaultT0           = 0.08
	DefaultCooling      = 0.97
	DefaultMovesPerTemp = 10
)

// Name returns "anneal".
func (Solver) Name() string { return "anneal" }

// Solve runs the annealing schedule within the options' budget; a done ctx
// stops the chain and returns best-so-far.
func (s Solver) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if s.T0 == 0 {
		s.T0 = DefaultT0
	}
	if s.Cooling == 0 {
		s.Cooling = DefaultCooling
	}
	if s.MovesPerTemp == 0 {
		s.MovesPerTemp = DefaultMovesPerTemp
	}
	opts = opts.WithDefaults()
	search, err := opt.NewSearch(ctx, p, opts)
	if err != nil {
		return nil, err
	}

	span := search.BeginSolve(s.Name())
	cur := search.NewSubset(search.StartSubset(p, opts))
	curQ := search.Eval.Eval(cur.IDs())
	bestIDs := cur.IDs()
	bestQ := curQ

	temp := s.T0
	noImprove := 0
	for iter := 0; iter < opts.MaxIters && noImprove < opts.Patience && !search.Eval.Exhausted() && !search.Stopped(); iter++ {
		for k := 0; k < s.MovesPerTemp && !search.Stopped(); k++ {
			moves := search.Moves(cur, 4)
			if len(moves) == 0 {
				break
			}
			// The annealing chain is inherently sequential: each acceptance
			// mutates the state the next move is drawn from, so candidates
			// cannot be scored ahead of the RNG. Each accepted-or-rejected
			// move still flows through the shared batch API (a batch of one
			// evaluates in-line) so the memo and budget stay unified.
			mv := moves[search.Rand.Intn(len(moves))]
			q := search.EvalMoves(cur, []opt.Move{mv})[0]
			delta := q - curQ
			if delta >= 0 || search.Rand.Float64() < math.Exp(delta/math.Max(temp, 1e-9)) {
				cur.Apply(mv)
				curQ = q
			}
		}
		if curQ > bestQ {
			bestQ = curQ
			bestIDs = cur.IDs()
			noImprove = 0
		} else {
			noImprove++
		}
		search.TraceIter(s.Name(), iter, curQ, bestQ, telemetry.Float("temp", temp))
		temp *= s.Cooling
	}
	sol := search.Eval.Solution(bestIDs, s.Name())
	span.End()
	return sol, nil
}
