package anneal

import (
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/schema"
)

func TestName(t *testing.T) {
	if (Solver{}).Name() != "anneal" {
		t.Errorf("Name = %q", Solver{}.Name())
	}
}

func TestSolveFindsFeasibleSolution(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{5}}
	p := opttest.Problem(t, 4, cons)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 2, MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol.IDs) || !cons.SatisfiedBy(sol.IDs) {
		t.Errorf("solution %v", sol.IDs)
	}
	if sol.Solver != "anneal" {
		t.Errorf("labeled %q", sol.Solver)
	}
}

func TestParameterVariants(t *testing.T) {
	p := opttest.Problem(t, 3, constraint.Set{})
	for _, s := range []Solver{
		{T0: 0.5, Cooling: 0.9, MovesPerTemp: 5},
		{T0: 0.01, Cooling: 0.99, MovesPerTemp: 20},
		{}, // defaults
	} {
		sol, err := s.Solve(context.Background(), p, opt.Options{Seed: 3, MaxEvals: 300})
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if sol.Quality <= 0 || sol.Quality > 1 {
			t.Errorf("%+v: quality %v", s, sol.Quality)
		}
	}
}

func TestBestEverIsReturned(t *testing.T) {
	// Annealing wanders; the returned solution must be the best recorded,
	// not the final state. Verify monotonicity under a longer budget.
	p := opttest.Problem(t, 4, constraint.Set{})
	short, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 8, MaxEvals: 60, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 8, MaxEvals: 2000, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if long.Quality+1e-9 < short.Quality {
		t.Errorf("longer annealing got worse: %.4f vs %.4f", long.Quality, short.Quality)
	}
}

func TestFullyConstrainedProblem(t *testing.T) {
	p, cons := opttest.FullyConstrained(t)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 50, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.SatisfiedBy(sol.IDs) || len(sol.IDs) != 3 {
		t.Errorf("solution %v", sol.IDs)
	}
}
