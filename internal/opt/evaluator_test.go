package opt

import (
	"math/rand"
	"sync"
	"testing"

	"mube/internal/constraint"
	"mube/internal/schema"
)

// TestKeyCollisionFree guards against the original memo-key bug: a fixed
// two-byte encoding truncated SourceIDs, so 0 and 65536 (and any pair equal
// mod 2^16) shared a key and silently returned each other's cached quality.
// The uvarint encoding must keep every id distinct at any magnitude.
func TestKeyCollisionFree(t *testing.T) {
	sets := [][]schema.SourceID{
		{0}, {1}, {127}, {128}, {255}, {256}, {16383}, {16384},
		{65535}, {65536}, // the pair the two-byte encoding collided
		{65537}, {1 << 20}, {1<<31 - 1},
		{0, 65536}, {65536, 65536 + 65536},
		{1, 2}, {1, 2, 3}, {258},
		{},
	}
	seen := make(map[string][]schema.SourceID, len(sets))
	for _, ids := range sets {
		k := key(ids)
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %v and %v both encode to %q", prev, ids, k)
		}
		seen[k] = ids
	}
}

// TestEvalBatchMatchesSequential checks EvalBatch's core contract: for any
// worker count it is observationally identical to calling Eval on each
// candidate in order — same values, same memo, same budget accounting, and
// the MaxEvals cutoff landing on the same candidate index.
func TestEvalBatchMatchesSequential(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	r := rand.New(rand.NewSource(9))
	var cands [][]schema.SourceID
	for i := 0; i < 40; i++ {
		n := 1 + r.Intn(4)
		perm := r.Perm(12)
		set := make([]schema.SourceID, n)
		for j := 0; j < n; j++ {
			set[j] = schema.SourceID(perm[j])
		}
		cands = append(cands, SortIDs(set))
	}
	// Salt in exact duplicates so in-batch dedup is exercised.
	cands = append(cands, cands[0], cands[3], cands[0])

	for _, limit := range []int{0, 7, 25} {
		for _, workers := range []int{1, 2, 4, 8} {
			seq := NewEvaluator(p, limit)
			want := make([]float64, len(cands))
			for i, ids := range cands {
				want[i] = seq.Eval(ids)
			}

			par := NewEvaluator(p, limit)
			par.SetWorkers(workers)
			got := par.EvalBatch(cands)
			for i := range cands {
				//mube:vet-ignore floatcmp — the contract is bit-identical, not approximate
				if got[i] != want[i] {
					t.Errorf("limit=%d workers=%d: cand %d (%v): batch %v != sequential %v",
						limit, workers, i, cands[i], got[i], want[i])
				}
			}
			if par.Evals() != seq.Evals() || par.Calls() != seq.Calls() {
				t.Errorf("limit=%d workers=%d: evals/calls %d/%d != sequential %d/%d",
					limit, workers, par.Evals(), par.Calls(), seq.Evals(), seq.Calls())
			}
			if par.Exhausted() != seq.Exhausted() {
				t.Errorf("limit=%d workers=%d: Exhausted %v != sequential %v",
					limit, workers, par.Exhausted(), seq.Exhausted())
			}
		}
	}
}

// TestEvalBatchBudgetCutoffIndex pins the budget semantics precisely: with
// MaxEvals = 2 and three distinct candidates in one batch, the third must
// score 0 and stay uncached — exactly where sequential Eval cuts off.
func TestEvalBatchBudgetCutoffIndex(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	e := NewEvaluator(p, 2)
	e.SetWorkers(4)
	got := e.EvalBatch([][]schema.SourceID{ids(0), ids(1), ids(2)})
	if got[0] == 0 || got[1] == 0 {
		t.Errorf("in-budget candidates scored 0: %v", got)
	}
	if got[2] != 0 {
		t.Errorf("post-budget candidate scored %v, want 0", got[2])
	}
	if !e.Exhausted() || e.Evals() != 2 {
		t.Errorf("Exhausted=%v Evals=%d after budget-2 batch", e.Exhausted(), e.Evals())
	}
	// The refused subset must not be memoized as 0: cached subsets keep their
	// real values, unknown ones keep scoring 0.
	if v := e.Eval(ids(0)); v == 0 {
		t.Error("cached in-budget value lost after exhaustion")
	}
	if v := e.Eval(ids(2)); v != 0 {
		t.Errorf("refused subset returned %v after exhaustion, want 0", v)
	}
}

// TestEvalBatchConcurrentStress hammers one shared evaluator from many
// goroutines with overlapping candidate sets. Run under -race this is the
// concurrency-safety regression for the memo, budget counters, scratch pool,
// and the universe's lazy aggregates. Every returned value must equal the
// reference value for its subset regardless of interleaving.
func TestEvalBatchConcurrentStress(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	ref := NewEvaluator(p, 0)
	pool := make([][]schema.SourceID, 0, 60)
	want := make(map[string]float64, 60)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		n := 1 + r.Intn(4)
		perm := r.Perm(12)
		set := make([]schema.SourceID, n)
		for j := 0; j < n; j++ {
			set[j] = schema.SourceID(perm[j])
		}
		s := SortIDs(set)
		pool = append(pool, s)
		want[key(s)] = ref.Eval(s)
	}

	e := NewEvaluator(p, 0)
	e.SetWorkers(4)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for round := 0; round < 20; round++ {
				cands := make([][]schema.SourceID, 10)
				for i := range cands {
					cands[i] = pool[r.Intn(len(pool))]
				}
				for i, v := range e.EvalBatch(cands) {
					//mube:vet-ignore floatcmp — memoized pure values must match exactly
					if v != want[key(cands[i])] {
						select {
						case errs <- "wrong value for " + key(cands[i]):
						default:
						}
					}
				}
				// Interleave scalar Evals and counter reads with batches.
				e.Eval(pool[r.Intn(len(pool))])
				e.Evals()
				e.Exhausted()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	// Concurrent callers may both debit an in-flight subset before either
	// memoizes it (duplicate suppression is per-batch, not global), so the
	// distinct-subset count is a floor, not an exact value, here. The exact
	// accounting contract is per solver goroutine and pinned by
	// TestEvalBatchMatchesSequential.
	if e.Evals() < len(want) {
		t.Errorf("evals = %d, below %d distinct subsets", e.Evals(), len(want))
	}
}

// TestEvalMovesMatchesEvalMove checks the Search-level batch helper returns
// exactly what per-move scoring would.
func TestEvalMovesMatchesEvalMove(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	sA, err := NewSearch(p, Options{Seed: 6, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := NewSearch(p, Options{Seed: 6, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	subA := sA.NewSubset(sA.RandomSubset())
	subB := sB.NewSubset(subA.IDs())
	moves := sA.Moves(subA, 20)
	batch := sA.EvalMoves(subA, moves)
	for i, mv := range moves {
		//mube:vet-ignore floatcmp — the contract is bit-identical, not approximate
		if one := sB.EvalMove(subB, mv); one != batch[i] {
			t.Errorf("move %d (%+v): batch %v != single %v", i, mv, batch[i], one)
		}
	}
}

// TestSetWorkers pins the worker-count semantics: 0 and negatives mean
// GOMAXPROCS, positives are taken literally.
func TestSetWorkers(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	e := NewEvaluator(p, 0)
	if e.Workers() < 1 {
		t.Errorf("default workers = %d", e.Workers())
	}
	e.SetWorkers(3)
	if e.Workers() != 3 {
		t.Errorf("SetWorkers(3) → %d", e.Workers())
	}
	e.SetWorkers(0)
	if e.Workers() < 1 {
		t.Errorf("SetWorkers(0) → %d, want GOMAXPROCS", e.Workers())
	}
}
