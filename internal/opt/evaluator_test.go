package opt

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mube/internal/constraint"
	"mube/internal/schema"
)

// TestKeyCollisionFree guards against the original memo-key bug: a fixed
// two-byte encoding truncated SourceIDs, so 0 and 65536 (and any pair equal
// mod 2^16) shared a key and silently returned each other's cached quality.
// The uvarint encoding must keep every id distinct at any magnitude.
func TestKeyCollisionFree(t *testing.T) {
	sets := [][]schema.SourceID{
		{0}, {1}, {127}, {128}, {255}, {256}, {16383}, {16384},
		{65535}, {65536}, // the pair the two-byte encoding collided
		{65537}, {1 << 20}, {1<<31 - 1},
		{0, 65536}, {65536, 65536 + 65536},
		{1, 2}, {1, 2, 3}, {258},
		{},
	}
	seen := make(map[string][]schema.SourceID, len(sets))
	for _, ids := range sets {
		k := key(ids)
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %v and %v both encode to %q", prev, ids, k)
		}
		seen[k] = ids
	}
}

// TestEvalBatchMatchesSequential checks EvalBatch's core contract: for any
// worker count it is observationally identical to calling Eval on each
// candidate in order — same values, same memo, same budget accounting, and
// the MaxEvals cutoff landing on the same candidate index.
func TestEvalBatchMatchesSequential(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	r := rand.New(rand.NewSource(9))
	var cands [][]schema.SourceID
	for i := 0; i < 40; i++ {
		n := 1 + r.Intn(4)
		perm := r.Perm(12)
		set := make([]schema.SourceID, n)
		for j := 0; j < n; j++ {
			set[j] = schema.SourceID(perm[j])
		}
		cands = append(cands, SortIDs(set))
	}
	// Salt in exact duplicates so in-batch dedup is exercised.
	cands = append(cands, cands[0], cands[3], cands[0])

	for _, limit := range []int{0, 7, 25} {
		for _, workers := range []int{1, 2, 4, 8} {
			seq := NewEvaluator(p, limit)
			want := make([]float64, len(cands))
			for i, ids := range cands {
				want[i] = seq.Eval(ids)
			}

			par := NewEvaluator(p, limit)
			par.SetWorkers(workers)
			got := par.EvalBatch(cands)
			for i := range cands {
				//mube:vet-ignore floatcmp — the contract is bit-identical, not approximate
				if got[i] != want[i] {
					t.Errorf("limit=%d workers=%d: cand %d (%v): batch %v != sequential %v",
						limit, workers, i, cands[i], got[i], want[i])
				}
			}
			if par.Evals() != seq.Evals() || par.Calls() != seq.Calls() {
				t.Errorf("limit=%d workers=%d: evals/calls %d/%d != sequential %d/%d",
					limit, workers, par.Evals(), par.Calls(), seq.Evals(), seq.Calls())
			}
			if par.Exhausted() != seq.Exhausted() {
				t.Errorf("limit=%d workers=%d: Exhausted %v != sequential %v",
					limit, workers, par.Exhausted(), seq.Exhausted())
			}
		}
	}
}

// TestEvalBatchBudgetCutoffIndex pins the budget semantics precisely: with
// MaxEvals = 2 and three distinct candidates in one batch, the third must
// come back as the Unscored sentinel and stay uncached — exactly where
// sequential Eval cuts off. A refused candidate must be distinguishable from
// a real Q(S) = 0 (the regression this pins: it used to score a plain 0).
func TestEvalBatchBudgetCutoffIndex(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	e := NewEvaluator(p, 2)
	e.SetWorkers(4)
	got := e.EvalBatch([][]schema.SourceID{ids(0), ids(1), ids(2)})
	if Unscored(got[0]) || Unscored(got[1]) || got[0] == 0 || got[1] == 0 {
		t.Errorf("in-budget candidates not scored: %v", got)
	}
	if !Unscored(got[2]) {
		t.Errorf("post-budget candidate scored %v, want Unscored sentinel", got[2])
	}
	if !e.Exhausted() || e.Evals() != 2 {
		t.Errorf("Exhausted=%v Evals=%d after budget-2 batch", e.Exhausted(), e.Evals())
	}
	// The refused subset must not be memoized: cached subsets keep their real
	// values, unknown ones keep returning the sentinel.
	if v := e.Eval(ids(0)); Unscored(v) || v == 0 {
		t.Error("cached in-budget value lost after exhaustion")
	}
	if v := e.Eval(ids(2)); !Unscored(v) {
		t.Errorf("refused subset returned %v after exhaustion, want Unscored sentinel", v)
	}
}

// TestEvalBatchConcurrentStress hammers one shared evaluator from many
// goroutines with overlapping candidate sets. Run under -race this is the
// concurrency-safety regression for the memo, budget counters, scratch pool,
// and the universe's lazy aggregates. Every returned value must equal the
// reference value for its subset regardless of interleaving.
func TestEvalBatchConcurrentStress(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	ref := NewEvaluator(p, 0)
	pool := make([][]schema.SourceID, 0, 60)
	want := make(map[string]float64, 60)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		n := 1 + r.Intn(4)
		perm := r.Perm(12)
		set := make([]schema.SourceID, n)
		for j := 0; j < n; j++ {
			set[j] = schema.SourceID(perm[j])
		}
		s := SortIDs(set)
		pool = append(pool, s)
		want[key(s)] = ref.Eval(s)
	}

	e := NewEvaluator(p, 0)
	e.SetWorkers(4)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for round := 0; round < 20; round++ {
				cands := make([][]schema.SourceID, 10)
				for i := range cands {
					cands[i] = pool[r.Intn(len(pool))]
				}
				for i, v := range e.EvalBatch(cands) {
					//mube:vet-ignore floatcmp — memoized pure values must match exactly
					if v != want[key(cands[i])] {
						select {
						case errs <- "wrong value for " + key(cands[i]):
						default:
						}
					}
				}
				// Interleave scalar Evals and counter reads with batches.
				e.Eval(pool[r.Intn(len(pool))])
				e.Evals()
				e.Exhausted()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	// Concurrent callers may both debit an in-flight subset before either
	// memoizes it (duplicate suppression is per-batch, not global), so the
	// distinct-subset count is a floor, not an exact value, here. The exact
	// accounting contract is per solver goroutine and pinned by
	// TestEvalBatchMatchesSequential.
	if e.Evals() < len(want) {
		t.Errorf("evals = %d, below %d distinct subsets", e.Evals(), len(want))
	}
}

// TestEvalMovesMatchesEvalMove checks the Search-level batch helper returns
// exactly what per-move scoring would.
func TestEvalMovesMatchesEvalMove(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	sA, err := NewSearch(context.Background(), p, Options{Seed: 6, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := NewSearch(context.Background(), p, Options{Seed: 6, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	subA := sA.NewSubset(sA.RandomSubset())
	subB := sB.NewSubset(subA.IDs())
	moves := sA.Moves(subA, 20)
	batch := sA.EvalMoves(subA, moves)
	for i, mv := range moves {
		//mube:vet-ignore floatcmp — the contract is bit-identical, not approximate
		if one := sB.EvalMove(subB, mv); one != batch[i] {
			t.Errorf("move %d (%+v): batch %v != single %v", i, mv, batch[i], one)
		}
	}
}

// TestRemaining pins the budget-remaining arithmetic: -1 for unlimited,
// counting down to 0 and never below.
func TestRemaining(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	if e := NewEvaluator(p, 0); e.Remaining() != -1 {
		t.Errorf("unlimited Remaining() = %d, want -1", e.Remaining())
	}
	e := NewEvaluator(p, 2)
	if e.Remaining() != 2 {
		t.Errorf("fresh Remaining() = %d, want 2", e.Remaining())
	}
	e.Eval(ids(0))
	if e.Remaining() != 1 {
		t.Errorf("after 1 eval Remaining() = %d, want 1", e.Remaining())
	}
	e.Eval(ids(0)) // memo hit: no debit
	if e.Remaining() != 1 {
		t.Errorf("after memo hit Remaining() = %d, want 1", e.Remaining())
	}
	e.Eval(ids(1))
	e.Eval(ids(2)) // refused: budget already spent
	if e.Remaining() != 0 {
		t.Errorf("exhausted Remaining() = %d, want 0", e.Remaining())
	}
}

// TestEvalBatchCancellation pins the cancellation contract: a batch planned
// after the context dies computes nothing, returns the Unscored sentinel for
// every uncached candidate, reverts its planned budget debits (Evals stays
// truthful), and still serves memo hits. Status must report canceled.
func TestEvalBatchCancellation(t *testing.T) {
	p := problem(t, 4, constraint.Set{})
	e := NewEvaluator(p, 10)
	ctx, cancel := context.WithCancel(context.Background())
	e.BindContext(ctx)

	warm := e.EvalBatch([][]schema.SourceID{ids(0)})
	if Unscored(warm[0]) {
		t.Fatal("pre-cancel batch refused to score")
	}
	evalsBefore := e.Evals()

	cancel()
	got := e.EvalBatch([][]schema.SourceID{ids(0), ids(1), ids(2)})
	//mube:vet-ignore floatcmp — memoized pure values must match exactly
	if got[0] != warm[0] {
		t.Errorf("memo hit after cancel = %v, want cached %v", got[0], warm[0])
	}
	if !Unscored(got[1]) || !Unscored(got[2]) {
		t.Errorf("canceled batch scored uncached candidates: %v", got)
	}
	if e.Evals() != evalsBefore {
		t.Errorf("canceled batch left Evals at %d, want reverted to %d", e.Evals(), evalsBefore)
	}
	if e.Status() != StatusCanceled {
		t.Errorf("Status() = %s after cancel, want %s", e.Status(), StatusCanceled)
	}
	// The abandoned subsets must not be memoized as sentinels: a fresh
	// context scores them for real.
	e.BindContext(context.Background())
	if v := e.Eval(ids(1)); Unscored(v) {
		t.Error("abandoned subset stayed unscored after rebinding a live context")
	}
}

// TestStatusTaxonomy checks Status() derives the right verdict from context
// state and budget: deadline beats cancel beats exhaustion beats completed.
func TestStatusTaxonomy(t *testing.T) {
	p := problem(t, 4, constraint.Set{})

	e := NewEvaluator(p, 0)
	if e.Status() != StatusCompleted {
		t.Errorf("fresh Status() = %s", e.Status())
	}

	e = NewEvaluator(p, 1)
	e.Eval(ids(0))
	if e.Status() != StatusExhausted {
		t.Errorf("exhausted Status() = %s", e.Status())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.BindContext(ctx)
	if e.Status() != StatusCanceled {
		t.Errorf("canceled Status() = %s (a dead context must win over exhaustion)", e.Status())
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Time{}.AddDate(2000, 0, 0))
	defer dcancel()
	<-dctx.Done()
	e.BindContext(dctx)
	if e.Status() != StatusDeadline {
		t.Errorf("deadline Status() = %s", e.Status())
	}
}

// TestSetWorkers pins the worker-count semantics: 0 and negatives mean
// GOMAXPROCS, positives are taken literally.
func TestSetWorkers(t *testing.T) {
	p := problem(t, 3, constraint.Set{})
	e := NewEvaluator(p, 0)
	if e.Workers() < 1 {
		t.Errorf("default workers = %d", e.Workers())
	}
	e.SetWorkers(3)
	if e.Workers() != 3 {
		t.Errorf("SetWorkers(3) → %d", e.Workers())
	}
	e.SetWorkers(0)
	if e.Workers() < 1 {
		t.Errorf("SetWorkers(0) → %d, want GOMAXPROCS", e.Workers())
	}
}
