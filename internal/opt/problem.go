// Package opt defines µBE's constrained optimization problem (§2.5) and the
// shared machinery its solvers build on: a memoizing objective evaluator,
// feasibility rules, and the neighborhood moves used by the local-search
// solvers.
//
// The problem: given a universe U, QEFs F with weights W, source constraints
// C, GA constraints G and a budget m, find
//
//	argmax_{S ⊆ U} Q(S) = Σ w_i·F_i(S)
//	subject to |S| ≤ m, C ⊆ S, G ⊑ M,
//	           F1({g}) ≥ θ and |g| ≥ β for all g ∈ M − G,
//
// where M is the mediated schema Match(S) produces. The θ/β/G⊑M constraints
// are enforced inside the Match operator itself (package match); C ⊆ S and
// |S| ≤ m are enforced here as hard feasibility rules.
package opt

import (
	"context"
	"fmt"
	"sort"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/telemetry"
)

// Problem is one fully specified optimization problem. Between µBE
// iterations the user edits constraints, weights, and thresholds and solves
// a fresh Problem.
type Problem struct {
	// Universe is U.
	Universe *source.Universe
	// Matcher is the Match(S) operator (carries θ, β, and the similarity
	// measure). May be nil only if no QEF needs matching.
	Matcher *match.Matcher
	// Quality is the weighted objective Q(S).
	Quality *qef.Quality
	// MaxSources is m, the largest source set the user will accept.
	MaxSources int
	// Constraints are the user's source and GA constraints.
	Constraints constraint.Set
}

// Validate checks the problem for internal consistency.
func (p *Problem) Validate() error {
	if p.Universe == nil {
		return fmt.Errorf("opt: nil universe")
	}
	if p.Quality == nil {
		return fmt.Errorf("opt: nil quality objective")
	}
	if p.MaxSources < 1 {
		return fmt.Errorf("opt: MaxSources %d < 1", p.MaxSources)
	}
	if p.MaxSources > p.Universe.Len() {
		return fmt.Errorf("opt: MaxSources %d exceeds universe size %d", p.MaxSources, p.Universe.Len())
	}
	if err := p.Constraints.Validate(p.Universe); err != nil {
		return err
	}
	if req := p.Constraints.RequiredSources(); len(req) > p.MaxSources {
		return fmt.Errorf("opt: %d required sources exceed MaxSources %d", len(req), p.MaxSources)
	}
	for _, f := range p.Quality.QEFs {
		if _, needsMatch := f.(qef.MatchQuality); needsMatch && p.Matcher == nil {
			return fmt.Errorf("opt: matching-quality QEF requires a Matcher")
		}
	}
	return nil
}

// Feasible reports whether ids satisfies the hard constraints: no
// duplicates, all IDs in range, C ⊆ S, and |S| ≤ m. The evaluator calls it
// once per candidate with sorted ids, for which the strictly-ascending scan
// proves dup-freeness without allocating; unsorted inputs fall back to a map.
func (p *Problem) Feasible(ids []schema.SourceID) bool {
	if len(ids) > p.MaxSources {
		return false
	}
	n := schema.SourceID(p.Universe.Len())
	sorted := true
	for i, id := range ids {
		if id < 0 || id >= n {
			return false
		}
		if i > 0 && ids[i-1] >= id {
			sorted = false
		}
	}
	if !sorted {
		seen := make(map[schema.SourceID]struct{}, len(ids))
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				return false
			}
			seen[id] = struct{}{}
		}
	}
	return p.Constraints.SatisfiedBy(ids)
}

// Status reports how a solve ended. Solvers never die silently: a canceled
// or timed-out run still returns its best-so-far solution, labeled with the
// reason it stopped.
type Status string

const (
	// StatusCompleted: the solver ran its full schedule (iterations and
	// patience) within budget.
	StatusCompleted Status = "completed"
	// StatusDeadline: the context's deadline expired; the solution is the
	// best found before the cutoff.
	StatusDeadline Status = "deadline"
	// StatusCanceled: the context was canceled; best-so-far returned.
	StatusCanceled Status = "canceled"
	// StatusExhausted: the MaxEvals budget ran out before the schedule did.
	StatusExhausted Status = "budget-exhausted"
)

// Solution is the output of a solver: the chosen source set, its overall
// quality and per-QEF breakdown, and the mediated schema Match(S) generated
// for it.
type Solution struct {
	// IDs is the chosen source set S, sorted.
	IDs []schema.SourceID
	// Quality is Q(S).
	Quality float64
	// Breakdown maps QEF name → raw (unweighted) value.
	Breakdown map[string]float64
	// Schema is the generated mediated schema M (empty if matching failed
	// or no matcher was configured).
	Schema schema.Mediated
	// GAQuality aligns with Schema.GAs.
	GAQuality []float64
	// MatchOK reports whether Match(S) produced a schema valid on C.
	MatchOK bool
	// Evals is the number of distinct objective evaluations the solver
	// consumed.
	Evals int
	// Solver names the algorithm that produced this solution.
	Solver string
	// Status records how the solve ended (completed, deadline, canceled,
	// budget-exhausted).
	Status Status
}

// SourceNames resolves the solution's source IDs to names.
func (s *Solution) SourceNames(u *source.Universe) []string {
	names := make([]string, len(s.IDs))
	for i, id := range s.IDs {
		names[i] = u.Source(id).Name
	}
	return names
}

// Options bound a solver run. Zero values select solver-appropriate
// defaults.
type Options struct {
	// Seed seeds the solver's random number generator; runs with the same
	// seed are reproducible.
	Seed int64
	// MaxEvals caps the number of distinct objective evaluations (cache
	// misses). Default 3000; a negative value means unlimited (bounded by
	// MaxIters/Patience only).
	MaxEvals int
	// MaxIters caps solver iterations. Default 300.
	MaxIters int
	// Patience stops the search after this many consecutive iterations
	// without improving the best solution. Default 40.
	Patience int
	// Initial warm-starts the search from this source set instead of a
	// random feasible subset, when the local-search solver supports it and
	// the set is feasible. µBE's iterative sessions use this to continue
	// from the previous iteration's solution.
	Initial []schema.SourceID
	// Parallel sets the evaluator's batch worker-pool size: 0 uses
	// GOMAXPROCS, 1 evaluates sequentially, n > 1 uses n workers. Solver
	// results are bit-identical for every setting (see Evaluator), so this
	// trades wall-clock time only and is not part of the problem spec.
	Parallel int
	// Recorder receives solver traces and evaluator metrics for this run.
	// nil (the default) disables telemetry. Like Parallel it is not part of
	// the problem spec: solver results are bit-identical with or without a
	// recorder attached.
	Recorder *telemetry.Recorder
	// NoDelta disables the evaluator's incremental scoring paths (counting-
	// union flips and preset union statistics), forcing every candidate
	// through the full signature re-merge. Results are bit-identical either
	// way — see Evaluator.SetDelta; the toggle exists for differential
	// testing and before/after benchmarking, not tuning.
	NoDelta bool
	// NoShard disables the evaluator's cluster-sharded matching path,
	// forcing every flip candidate to re-cluster its full attribute set.
	// Results are bit-identical either way — see Evaluator.SetShard; like
	// NoDelta this exists for differential testing and benchmarking.
	NoShard bool
	// Candidates, when non-nil, restricts the search's optional pool to this
	// id set instead of the whole universe (required sources always stay in).
	// The partitioned solve mode uses it to confine each sub-solve to one
	// source partition. IDs must be valid; order does not matter.
	Candidates []schema.SourceID
	// GroupWorkers bounds the partitioned solver's group-level worker pool:
	// how many group sub-solves run concurrently (0 = GOMAXPROCS,
	// 1 = sequential). Groups are constraint-disjoint and independently
	// seeded, and each sub-solve records into a private recorder replayed in
	// group order, so results and traces are bit- and byte-identical at any
	// setting — only wall-clock changes. Orthogonal to Parallel, which sizes
	// the evaluator pool inside each sub-solve.
	GroupWorkers int
	// RefineRounds bounds the partitioned solver's cross-group refinement
	// pass: after merging group solutions it attempts up to this many rounds
	// of deterministic boundary swaps, accepting only strict improvements so
	// merged quality is a floor (0 = the solver's default, negative = off).
	// Solvers other than partition ignore it.
	RefineRounds int
}

// Defaults for Options' zero values.
const (
	DefaultMaxEvals = 3000
	DefaultMaxIters = 300
	DefaultPatience = 40
)

// WithDefaults fills zero fields with the package defaults.
func (o Options) WithDefaults() Options {
	if o.MaxEvals == 0 {
		o.MaxEvals = DefaultMaxEvals
	}
	if o.MaxIters == 0 {
		o.MaxIters = DefaultMaxIters
	}
	if o.Patience == 0 {
		o.Patience = DefaultPatience
	}
	return o
}

// Solver is a strategy that maximizes a Problem's objective. Implementations
// live in the subpackages tabu, sls, anneal, pso, random, and exhaustive.
type Solver interface {
	// Name identifies the algorithm.
	Name() string
	// Solve returns the best solution found within the options' budget. A
	// canceled or deadline-exceeded ctx stops the search within one
	// evaluation batch and returns best-so-far with the matching
	// Solution.Status — never an error.
	Solve(ctx context.Context, p *Problem, opts Options) (*Solution, error)
}

// SortIDs sorts a source-ID slice in place and returns it.
func SortIDs(ids []schema.SourceID) []schema.SourceID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Score evaluates Q(S) for one explicit source set under p — the one-shot
// form of the evaluator, for re-scoring a prior solution against a changed
// problem (a watch epoch after churn, report tooling). ids may arrive
// unsorted and is not modified; an infeasible set scores 0, exactly as it
// would inside a solve.
func Score(p *Problem, ids []schema.SourceID) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	ev := NewEvaluator(p, -1)
	return ev.Eval(SortIDs(append([]schema.SourceID(nil), ids...))), nil
}
