package opt_test

import (
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/schema"
	"mube/internal/testutil"
)

// TestEvalBatchDeltaAllocs pins the steady-state allocation budget of the
// evaluator's hot loop. Two regimes are pinned separately:
//
//   - memo-hit batches (the common revisit case in local search) must cost
//     only the per-call output/candidate slices plus one applied-subset slice
//     per flip — the keyBuf lookup path allocates nothing per candidate;
//   - fresh-compute batches may additionally pay per-job bookkeeping (job
//     struct, memo key/insert, context) and the per-batch delta/shard rebase,
//     but stay within a fixed budget per flip — regressions that reintroduce
//     per-candidate heap churn (cloned signatures, per-move maps, rebuilt
//     clusterings) blow well past it.
func TestEvalBatchDeltaAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
	p := opttest.Problem(t, 6, constraint.Set{})
	ev := opt.NewEvaluator(p, 0)
	ev.SetWorkers(1)

	base := []schema.SourceID{0, 1, 2, 3}
	var flips []opt.Move
	for s := schema.SourceID(4); s < 12; s++ {
		flips = append(flips, opt.Move{Add: s, Drop: -1})
	}
	for _, s := range base[1:] {
		flips = append(flips, opt.Move{Add: -1, Drop: s})
	}

	// Warm up: builds the delta state, shard base, scratch pools, and
	// memoizes every candidate.
	ev.EvalBatchDelta(base, flips)
	ev.EvalBatchDelta(base, flips)

	perFlip := float64(len(flips))
	hit := testing.AllocsPerRun(50, func() { ev.EvalBatchDelta(base, flips) })
	if max := perFlip + 6; hit > max {
		t.Errorf("memo-hit batch: %v allocs/op for %d flips, want ≤ %v", hit, len(flips), max)
	}

	// Fresh computes: rotate through distinct bases so every batch's flips
	// miss the memo (the 12-source universe has hundreds of 4-subsets).
	bases := make([][]schema.SourceID, 0, 64)
	for a := schema.SourceID(0); a < 8; a++ {
		for b := a + 1; b < 12 && len(bases) < 64; b++ {
			bases = append(bases, []schema.SourceID{a, b, (b + 1) % 12, (b + 3) % 12})
		}
	}
	neighborhood := func(base []schema.SourceID) []opt.Move {
		in := map[schema.SourceID]bool{}
		for _, s := range base {
			in[s] = true
		}
		var mvs []opt.Move
		for s := schema.SourceID(0); s < 12; s++ {
			if !in[s] {
				mvs = append(mvs, opt.Move{Add: s, Drop: base[0]})
			}
		}
		return mvs
	}
	i := 0
	fresh := testing.AllocsPerRun(50, func() {
		b := opt.SortIDs(append([]schema.SourceID(nil), bases[i%len(bases)]...))
		i++
		ev2 := opt.NewEvaluator(p, 0)
		ev2.SetWorkers(1)
		ev2.EvalBatchDelta(b, neighborhood(b))
	})
	// Per fresh flip (8 per rotated base): applied-subset slice, job struct +
	// out slice, memo key + insert, qef context; per batch: the evaluator
	// itself plus delta-state/shard-base construction. Measured ~95 total;
	// 300 leaves 3× headroom while still catching any return to per-flip
	// recluster/re-merge churn (which costs thousands).
	if fresh > 300 {
		t.Errorf("fresh batch: %v allocs/op, want ≤ 300", fresh)
	}
}
