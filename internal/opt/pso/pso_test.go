package pso

import (
	"context"
	"testing"

	"mube/internal/constraint"
	"mube/internal/opt"
	"mube/internal/opt/opttest"
	"mube/internal/schema"
	"mube/internal/testutil"
)

func TestName(t *testing.T) {
	if (Solver{}).Name() != "pso" {
		t.Errorf("Name = %q", Solver{}.Name())
	}
}

func TestSolveFindsFeasibleSolution(t *testing.T) {
	cons := constraint.Set{Sources: []schema.SourceID{1}}
	p := opttest.Problem(t, 4, cons)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 2, MaxEvals: 600})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol.IDs) || !cons.SatisfiedBy(sol.IDs) {
		t.Errorf("solution %v", sol.IDs)
	}
	if len(sol.IDs) > 4 {
		t.Errorf("repair failed: %d sources with m=4", len(sol.IDs))
	}
	if sol.Solver != "pso" {
		t.Errorf("labeled %q", sol.Solver)
	}
}

func TestSwarmSizeVariants(t *testing.T) {
	p := opttest.Problem(t, 3, constraint.Set{})
	for _, n := range []int{2, 8, 32} {
		sol, err := (Solver{Particles: n}).Solve(context.Background(), p, opt.Options{Seed: 3, MaxEvals: 400})
		if err != nil {
			t.Fatalf("particles=%d: %v", n, err)
		}
		if !p.Feasible(sol.IDs) {
			t.Errorf("particles=%d: infeasible %v", n, sol.IDs)
		}
	}
}

func TestFullyConstrainedProblem(t *testing.T) {
	// Zero free slots: every particle's position repairs to the empty
	// optional set; the swarm must return exactly the required sources.
	p, cons := opttest.FullyConstrained(t)
	sol, err := (Solver{}).Solve(context.Background(), p, opt.Options{Seed: 1, MaxEvals: 100, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	req := cons.RequiredSources()
	if len(sol.IDs) != len(req) {
		t.Fatalf("solution %v, want %v", sol.IDs, req)
	}
}

func TestSigmoidAndIndicator(t *testing.T) {
	if s := sigmoid(0); !testutil.AlmostEqual(s, 0.5) {
		t.Errorf("sigmoid(0) = %v", s)
	}
	if sigmoid(10) < 0.99 || sigmoid(-10) > 0.01 {
		t.Error("sigmoid saturation broken")
	}
	if !testutil.AlmostEqual(indicator(true, false), 1) || !testutil.AlmostEqual(indicator(false, true), -1) || indicator(true, true) != 0 {
		t.Error("indicator broken")
	}
}
