// Package pso implements binary particle swarm optimization, one of the
// baseline solvers the paper compared against tabu search (§6). Each
// particle's position is a bit vector over the optional sources (required
// sources are always in); velocities evolve toward the particle's own best
// and the swarm's best, positions are re-sampled through a sigmoid, and a
// repair step trims positions back to the size cap m. The swarm uses the
// synchronous gbest update (the global best is frozen for the duration of
// each iteration), so the whole population is scored as one parallel batch.
package pso

import (
	"context"
	"math"

	"mube/internal/opt"
	"mube/internal/schema"
	"mube/internal/telemetry"
	"sort"
)

// Solver is a configured binary PSO.
type Solver struct {
	// Particles is the swarm size. Default 16.
	Particles int
	// Inertia, Cognitive, and Social are the standard PSO coefficients
	// (w, c1, c2). Defaults 0.7, 1.4, 1.4.
	Inertia   float64
	Cognitive float64
	Social    float64
}

// Defaults for the solver's zero fields.
const (
	DefaultParticles = 16
	DefaultInertia   = 0.7
	DefaultCognitive = 1.4
	DefaultSocial    = 1.4
)

// Name returns "pso".
func (Solver) Name() string { return "pso" }

// particle is one swarm member over the optional-source dimensions.
type particle struct {
	pos     []bool
	vel     []float64
	bestPos []bool
	bestQ   float64
}

// Solve runs the swarm within the options' budget; a done ctx stops the
// iteration loop and returns the best position found so far.
func (s Solver) Solve(ctx context.Context, p *opt.Problem, opts opt.Options) (*opt.Solution, error) {
	if s.Particles == 0 {
		s.Particles = DefaultParticles
	}
	if s.Inertia == 0 {
		s.Inertia = DefaultInertia
	}
	if s.Cognitive == 0 {
		s.Cognitive = DefaultCognitive
	}
	if s.Social == 0 {
		s.Social = DefaultSocial
	}
	opts = opts.WithDefaults()
	search, err := opt.NewSearch(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	span := search.BeginSolve(s.Name())
	dims := len(search.Optional)
	freeSlots := search.MaxSources - len(search.Required)

	// toIDs converts a position vector to a feasible sorted id set.
	toIDs := func(pos []bool) []schema.SourceID {
		ids := append([]schema.SourceID(nil), search.Required...)
		for d, on := range pos {
			if on {
				ids = append(ids, search.Optional[d])
			}
		}
		return opt.SortIDs(ids)
	}

	// repair clamps the number of set bits to freeSlots, keeping the bits
	// with the strongest (most positive) velocities.
	repair := func(pos []bool, vel []float64) {
		var on []int
		for d, b := range pos {
			if b {
				on = append(on, d)
			}
		}
		if len(on) <= freeSlots {
			return
		}
		sort.Slice(on, func(i, j int) bool { return vel[on[i]] > vel[on[j]] })
		for _, d := range on[freeSlots:] {
			pos[d] = false
		}
	}

	// The swarm updates synchronously: every iteration first moves all
	// particles (all randomness, on this goroutine), then scores the whole
	// population as one batch — fanning out to the evaluator's worker pool —
	// and finally folds personal/global bests in particle order. The global
	// best used by the velocity update is the one frozen at the start of the
	// iteration (classic synchronous gbest PSO), which is what makes the
	// population independent and batchable.
	swarm := make([]*particle, s.Particles)
	cands := make([][]schema.SourceID, s.Particles)
	for i := range swarm {
		pt := &particle{
			pos: make([]bool, dims),
			vel: make([]float64, dims),
		}
		// Random initial position with ≈ freeSlots bits set.
		for d := 0; d < dims; d++ {
			if dims > 0 && search.Rand.Float64() < float64(freeSlots)/float64(dims) {
				pt.pos[d] = true
			}
			pt.vel[d] = search.Rand.Float64()*2 - 1
		}
		repair(pt.pos, pt.vel)
		pt.bestPos = append([]bool(nil), pt.pos...)
		swarm[i] = pt
		cands[i] = toIDs(pt.pos)
	}
	// Seed the global best with the first particle's position before any
	// scoring, so a solve canceled during the very first batch still returns
	// a feasible (if unremarkable) source set rather than nothing.
	globalBest := append([]bool(nil), swarm[0].pos...)
	globalQ := -1.0
	for i, q := range search.Eval.EvalBatch(cands) {
		pt := swarm[i]
		pt.bestQ = q
		if q > globalQ {
			globalQ = q
			globalBest = append(globalBest[:0], pt.pos...)
		}
	}

	noImprove := 0
	for iter := 0; iter < opts.MaxIters && noImprove < opts.Patience && !search.Eval.Exhausted() && !search.Stopped(); iter++ {
		for i, pt := range swarm {
			for d := 0; d < dims; d++ {
				r1, r2 := search.Rand.Float64(), search.Rand.Float64()
				pt.vel[d] = s.Inertia*pt.vel[d] +
					s.Cognitive*r1*indicator(pt.bestPos[d], pt.pos[d]) +
					s.Social*r2*indicator(globalBest[d], pt.pos[d])
				// Clamp velocities to keep sigmoid responsive.
				if pt.vel[d] > 4 {
					pt.vel[d] = 4
				} else if pt.vel[d] < -4 {
					pt.vel[d] = -4
				}
				pt.pos[d] = search.Rand.Float64() < sigmoid(pt.vel[d])
			}
			repair(pt.pos, pt.vel)
			cands[i] = toIDs(pt.pos)
		}
		improved := false
		iterQ := -1.0
		for i, q := range search.Eval.EvalBatch(cands) {
			pt := swarm[i]
			if q > iterQ {
				iterQ = q
			}
			if q > pt.bestQ {
				pt.bestQ = q
				pt.bestPos = append(pt.bestPos[:0], pt.pos...)
			}
			if q > globalQ {
				globalQ = q
				globalBest = append(globalBest[:0], pt.pos...)
				improved = true
			}
		}
		if improved {
			noImprove = 0
		} else {
			noImprove++
		}
		search.TraceIter(s.Name(), iter, iterQ, globalQ,
			telemetry.Int("particles", s.Particles))
	}
	sol := search.Eval.Solution(toIDs(globalBest), s.Name())
	span.End()
	return sol, nil
}

// indicator returns +1 when the reference bit is set and the current bit is
// not (pull toward setting), −1 in the opposite case, and 0 when equal.
func indicator(ref, cur bool) float64 {
	switch {
	case ref && !cur:
		return 1
	case !ref && cur:
		return -1
	}
	return 0
}

// sigmoid is the logistic squashing function used by binary PSO.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
