package opt

import (
	"math"
	"math/rand"
	"testing"

	"mube/internal/constraint"
	"mube/internal/pcsa"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/telemetry"
)

// mixedProblem builds a problem over a hand-made universe containing every
// source species the delta tallies must track: cooperative, uncooperative
// (no signature), and coop-mixed (signature, no cardinality).
func mixedProblem(t testing.TB, maxSources int) *Problem {
	t.Helper()
	cfg := pcsa.Config{NumMaps: 64}
	u := source.NewUniverse(cfg)
	add := func(s *source.Source) {
		t.Helper()
		if _, err := u.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	tuples := func(lo, hi uint64) source.TupleIterator {
		ts := make([]source.TupleID, 0, hi-lo)
		for x := lo; x < hi; x++ {
			ts = append(ts, x)
		}
		return source.NewSliceIterator(ts)
	}
	coop := func(name string, lo, hi uint64, attrs ...string) *source.Source {
		s, err := source.FromTuples(name, schema.NewSchema(attrs...), tuples(lo, hi), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	add(coop("a", 0, 8000, "title"))
	add(coop("b", 4000, 12000, "title"))
	add(coop("c", 0, 6000, "name"))
	add(coop("d", 10000, 20000, "title"))
	add(source.Uncooperative("shy", schema.NewSchema("title")))
	mixed := coop("mixed", 5000, 15000, "title")
	mixed.Cardinality = -1 // signature without cardinality: the coopMixed case
	add(mixed)
	add(coop("e", 18000, 25000, "name"))
	add(source.Uncooperative("shy2", schema.NewSchema("name")))
	u.Precompute()

	q, err := qef.NewQuality(
		[]qef.QEF{qef.Cardinality{}, qef.Coverage{}, qef.Redundancy{}},
		qef.Weights{
			qef.NameCardinality: 0.4,
			qef.NameCoverage:    0.3,
			qef.NameRedundancy:  0.3,
		})
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{Universe: u, Quality: q, MaxSources: maxSources}
}

// assertSameEvaluator compares two evaluators' observable state: memo
// contents (bit for bit), evals, and calls.
func assertSameEvaluator(t *testing.T, label string, a, b *Evaluator) {
	t.Helper()
	if a.Evals() != b.Evals() || a.Calls() != b.Calls() {
		t.Errorf("%s: evals/calls %d/%d != %d/%d", label, a.Evals(), a.Calls(), b.Evals(), b.Calls())
	}
	a.mu.Lock()
	b.mu.Lock()
	defer a.mu.Unlock()
	defer b.mu.Unlock()
	if len(a.memo) != len(b.memo) {
		t.Errorf("%s: memo sizes differ: %d vs %d", label, len(a.memo), len(b.memo))
		return
	}
	for k, va := range a.memo {
		vb, ok := b.memo[k]
		if !ok {
			t.Errorf("%s: memo key %q missing in reference", label, k)
			continue
		}
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Errorf("%s: memo value %v != %v for key %q", label, va, vb, k)
		}
	}
}

// driveNeighborhoods runs a local-search-like trajectory on e: score a
// neighborhood of flips against the current base, move the base to the best
// flip, occasionally restart to a random subset (forcing a delta rebuild).
// All randomness comes from seed, so two evaluators driven with the same
// seed see the identical call sequence.
func driveNeighborhoods(t *testing.T, e *Evaluator, p *Problem, seed int64, rounds int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	all := p.Universe.IDs()
	randomBase := func() []schema.SourceID {
		n := 1 + r.Intn(p.MaxSources)
		perm := r.Perm(len(all))
		base := make([]schema.SourceID, n)
		for j := 0; j < n; j++ {
			base[j] = all[perm[j]]
		}
		return SortIDs(base)
	}
	base := randomBase()
	for round := 0; round < rounds; round++ {
		var flips []Move
		flips = append(flips, NoMove) // re-scores the base itself
		for _, id := range all {
			in := false
			for _, b := range base {
				in = in || b == id
			}
			if !in && len(base) < p.MaxSources {
				flips = append(flips, Move{Add: id, Drop: -1})
			}
			if in && len(base) > 1 {
				flips = append(flips, Move{Add: -1, Drop: id})
			}
		}
		// Swaps, plus deliberately invalid flips that must fall back to the
		// full path (re-adding a member, dropping a non-member).
		for i := 0; i < 4; i++ {
			flips = append(flips, Move{
				Add:  all[r.Intn(len(all))],
				Drop: all[r.Intn(len(all))],
			})
		}
		qs := e.EvalBatchDelta(base, flips)
		if len(qs) != len(flips) {
			t.Fatalf("round %d: got %d results for %d flips", round, len(qs), len(flips))
		}
		bestQ, best := math.Inf(-1), NoMove
		for i, q := range qs {
			if q > bestQ {
				bestQ, best = q, flips[i]
			}
		}
		if r.Intn(5) == 0 {
			base = randomBase() // jump: exercises the rebuild path
		} else {
			base = applyFlip(base, best) // drift: exercises the rebase path
		}
	}
}

// TestEvalBatchDeltaDifferential is the white-box acceptance test of the
// delta path: identical trajectories driven through a delta-enabled and a
// delta-disabled evaluator must produce bit-identical memo contents and
// identical budget accounting — across worker counts, budget limits, seeds,
// and a universe containing uncooperative and coop-mixed sources.
func TestEvalBatchDeltaDifferential(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func(t testing.TB) *Problem
	}{
		{"books", func(t testing.TB) *Problem { return problem(t, 4, constraint.Set{}) }},
		{"mixed", func(t testing.TB) *Problem { return mixedProblem(t, 4) }},
	} {
		p := mk.build(t)
		for _, seed := range []int64{1, 2, 3} {
			for _, workers := range []int{1, 4} {
				for _, limit := range []int{0, 40} {
					delta := NewEvaluator(p, limit)
					delta.SetWorkers(workers)
					driveNeighborhoods(t, delta, p, seed, 12)

					full := NewEvaluator(p, limit)
					full.SetWorkers(workers)
					full.SetDelta(false)
					driveNeighborhoods(t, full, p, seed, 12)

					label := mk.name + "/" +
						string(rune('0'+seed)) + "/w" + string(rune('0'+workers))
					assertSameEvaluator(t, label, delta, full)
				}
			}
		}
	}
}

// TestEvalBatchDeltaSaturationFallback: when the cached counting union is
// saturated, flips that drop a signature-bearing source must be demoted to
// the full path — and results stay bit-identical to a delta-disabled
// evaluator.
func TestEvalBatchDeltaSaturationFallback(t *testing.T) {
	p := mixedProblem(t, 4)
	base := SortIDs([]schema.SourceID{0, 1, 2})
	var flips []Move
	for _, id := range p.Universe.IDs() {
		switch id {
		case 0, 1, 2:
			flips = append(flips, Move{Add: -1, Drop: id})
		default:
			flips = append(flips, Move{Add: id, Drop: 0})
		}
	}

	ev := NewEvaluator(p, 0)
	// Saturate the counting union's lanes for source 0's signature by
	// over-adding it; this mimics a long-lived union whose refcounts hit the
	// sticky ceiling. The implied bitmap is unchanged (the bits were already
	// set), so add-only flips stay exact while drops must be demoted.
	ds := ev.acquireDelta(base)
	sig := p.Universe.Source(0).Signature
	for i := 0; i < 256; i++ {
		if err := ds.counting.Add(sig); err != nil {
			t.Fatal(err)
		}
	}
	if !ds.counting.Saturated() {
		t.Fatal("counting union should be saturated")
	}
	ev.releaseDelta(ds)

	rec := telemetry.New(nil)
	ev.Instrument(rec)
	got := ev.EvalBatchDelta(base, flips)

	ref := NewEvaluator(p, 0)
	ref.SetDelta(false)
	want := ref.EvalBatchDelta(base, flips)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("flip %d (%+v): saturated delta %v != full %v", i, flips[i], got[i], want[i])
		}
	}
	// The sig-dropping flips were demoted, so delta hits < total jobs.
	snap := rec.Snapshot()
	if hits, jobs := snap.Counter("eval.delta_hits"), snap.Counter("eval.computed"); hits >= jobs {
		t.Errorf("expected demotions under saturation: delta_hits=%d, computed=%d", hits, jobs)
	}
}

// TestEvalBatchPresetDifferential: preset candidates built from a push/pop
// RunningStats walk must score bit-identically to the plain batch path, and
// Valid=false snapshots must route through the full path unharmed.
func TestEvalBatchPresetDifferential(t *testing.T) {
	p := mixedProblem(t, 3)
	all := p.Universe.IDs()

	// Enumerate all subsets of size ≤ 3 DFS-style with running stats.
	run := NewRunningStats(p.Universe)
	var cands []PresetCandidate
	var pick []schema.SourceID
	var walk func(start int)
	walk = func(start int) {
		ids := SortIDs(append([]schema.SourceID(nil), pick...))
		st, valid := run.Snapshot()
		cands = append(cands, PresetCandidate{IDs: ids, Stats: st, Valid: valid})
		if len(pick) == p.MaxSources {
			return
		}
		for i := start; i < len(all); i++ {
			pick = append(pick, all[i])
			run.Push(all[i])
			walk(i + 1)
			run.Pop(all[i])
			pick = pick[:len(pick)-1]
		}
	}
	walk(0)
	// Poison a few snapshots to exercise the Valid=false full-path route.
	for i := 0; i < len(cands); i += 7 {
		cands[i].Valid = false
		cands[i].Stats = qef.UnionStats{}
	}

	for _, workers := range []int{1, 4} {
		pre := NewEvaluator(p, 0)
		pre.SetWorkers(workers)
		got := pre.EvalBatchPreset(cands)

		plain := NewEvaluator(p, 0)
		plain.SetWorkers(workers)
		ids := make([][]schema.SourceID, len(cands))
		for i := range cands {
			ids[i] = cands[i].IDs
		}
		want := plain.EvalBatch(ids)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("workers=%d cand %v: preset %v != plain %v",
					workers, cands[i].IDs, got[i], want[i])
			}
		}
		assertSameEvaluator(t, "preset", pre, plain)
	}
}

// TestDeltaRebase pins the cache-rebase behavior: a base drifting within the
// rebase limit reuses the counting union incrementally, a jump rebuilds it,
// and in both cases the resulting state matches a fresh rebuild exactly.
func TestDeltaRebase(t *testing.T) {
	p := mixedProblem(t, 5)
	ev := NewEvaluator(p, 0)

	check := func(label string, base []schema.SourceID) {
		t.Helper()
		ds := ev.acquireDelta(base)
		fresh := &deltaState{}
		fresh.rebuild(p.Universe, base)
		if ds.sigN != fresh.sigN || ds.coopN != fresh.coopN ||
			ds.mixedN != fresh.mixedN || ds.coopSum != fresh.coopSum {
			t.Errorf("%s: tallies (%d,%d,%d,%d) != fresh (%d,%d,%d,%d)", label,
				ds.sigN, ds.coopN, ds.mixedN, ds.coopSum,
				fresh.sigN, fresh.coopN, fresh.mixedN, fresh.coopSum)
		}
		gotEst, wantEst := ds.counting.Estimate(), fresh.counting.Estimate()
		if math.Float64bits(gotEst) != math.Float64bits(wantEst) {
			t.Errorf("%s: counting estimate %v != fresh %v", label, gotEst, wantEst)
		}
		ev.releaseDelta(ds)
	}

	check("initial", SortIDs([]schema.SourceID{0, 1, 2}))
	check("drift+1", SortIDs([]schema.SourceID{0, 1, 2, 3}))
	check("swap", SortIDs([]schema.SourceID{0, 1, 3, 5}))
	check("jump", SortIDs([]schema.SourceID{2, 4, 6, 7})) // full diff: rebuild
	check("drop", SortIDs([]schema.SourceID{2, 4, 6}))
}

// TestValidFlipAndApplyFlip pins the flip helpers against Subset semantics.
func TestValidFlipAndApplyFlip(t *testing.T) {
	base := []schema.SourceID{1, 3, 5}
	cases := []struct {
		mv    Move
		valid bool
	}{
		{Move{Add: 2, Drop: -1}, true},
		{Move{Add: -1, Drop: 3}, true},
		{Move{Add: 4, Drop: 5}, true},
		{NoMove, true},
		{Move{Add: 3, Drop: -1}, false}, // re-add member
		{Move{Add: -1, Drop: 2}, false}, // drop non-member
		{Move{Add: 7, Drop: 7}, false},  // degenerate swap
		{Move{Add: 9, Drop: 4}, false},  // drop side absent
	}
	for _, tc := range cases {
		if got := validFlip(base, tc.mv); got != tc.valid {
			t.Errorf("validFlip(%v, %+v) = %v, want %v", base, tc.mv, got, tc.valid)
		}
		got := applyFlip(base, tc.mv)
		// Reference: the map-based Subset semantics.
		m := map[schema.SourceID]struct{}{}
		for _, id := range base {
			m[id] = struct{}{}
		}
		if tc.mv.Drop >= 0 {
			delete(m, tc.mv.Drop)
		}
		if tc.mv.Add >= 0 {
			m[tc.mv.Add] = struct{}{}
		}
		want := make([]schema.SourceID, 0, len(m))
		for id := range m {
			want = append(want, id)
		}
		SortIDs(want)
		if len(got) != len(want) {
			t.Fatalf("applyFlip(%v, %+v) = %v, want %v", base, tc.mv, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("applyFlip(%v, %+v) = %v, want %v", base, tc.mv, got, want)
			}
		}
	}
}
