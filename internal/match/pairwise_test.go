package match

import (
	"math/rand"
	"testing"

	"mube/internal/constraint"
	"mube/internal/testutil"
)

func TestHungarianKnownMatrix(t *testing.T) {
	// Classic 3×3 assignment with optimum 1→2, 2→0, 3→1 (cost 5).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := hungarian(cost)
	total := 0.0
	seen := map[int]bool{}
	for i, j := range assign {
		total += cost[i][j]
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
	}
	if !testutil.AlmostEqual(total, 5) {
		t.Errorf("assignment cost = %v, want 5 (assign %v)", total, assign)
	}
	if hungarian(nil) != nil {
		t.Error("empty matrix should return nil")
	}
}

func TestHungarianIsOptimalVsBruteForce(t *testing.T) {
	// Randomized check against brute-force enumeration on 4×4 matrices.
	r := rand.New(rand.NewSource(2))
	perms4 := [][]int{}
	var gen func(cur []int, rest []int)
	gen = func(cur, rest []int) {
		if len(rest) == 0 {
			perms4 = append(perms4, append([]int(nil), cur...))
			return
		}
		for i, v := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			gen(append(cur, v), next)
		}
	}
	gen(nil, []int{0, 1, 2, 3})

	for trial := 0; trial < 50; trial++ {
		cost := make([][]float64, 4)
		for i := range cost {
			cost[i] = make([]float64, 4)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		best := 1e9
		for _, p := range perms4 {
			tot := 0.0
			for i, j := range p {
				tot += cost[i][j]
			}
			if tot < best {
				best = tot
			}
		}
		assign := hungarian(cost)
		tot := 0.0
		for i, j := range assign {
			tot += cost[i][j]
		}
		if tot > best+1e-9 {
			t.Fatalf("trial %d: hungarian %v > optimum %v", trial, tot, best)
		}
	}
}

func TestPairwiseMatch(t *testing.T) {
	u := universe(t,
		[]string{"title", "author", "price"},
		[]string{"author name", "book title"},
	)
	m := MustNew(u, Config{Theta: 0.3})
	as := m.PairwiseMatch(0, 1, 0.3)
	// title↔book title and author↔author name; price unmatched.
	if len(as.Pairs) != 2 {
		t.Fatalf("pairs = %v", as.Pairs)
	}
	if as.Pairs[0] != 1 {
		t.Errorf("title matched to %d, want 1 (book title)", as.Pairs[0])
	}
	if as.Pairs[1] != 0 {
		t.Errorf("author matched to %d, want 0 (author name)", as.Pairs[1])
	}
	if as.Total <= 0 {
		t.Error("total similarity not accumulated")
	}
	// High threshold prunes everything.
	if got := m.PairwiseMatch(0, 1, 0.99); len(got.Pairs) != 0 {
		t.Errorf("theta=0.99 kept pairs %v", got.Pairs)
	}
}

func TestPairwiseAssignmentIs1to1(t *testing.T) {
	// Two near-identical attributes on the left compete for one target; the
	// assignment must stay 1:1.
	u := universe(t,
		[]string{"keyword", "keywords"},
		[]string{"keyword"},
	)
	m := MustNew(u, Config{Theta: 0.3})
	as := m.PairwiseMatch(0, 1, 0.3)
	if len(as.Pairs) != 1 {
		t.Fatalf("pairs = %v, want exactly one (1:1)", as.Pairs)
	}
	if _, ok := as.Pairs[0]; !ok {
		t.Errorf("exact-name pair should win: %v", as.Pairs)
	}
}

func TestStarMediate(t *testing.T) {
	u := universe(t,
		[]string{"title", "author"}, // hub
		[]string{"book title", "author name"},
		[]string{"title", "price"},
	)
	m := MustNew(u, Config{Theta: 0.3})
	res := m.StarMediate(0, u.IDs(), 0.3, 2)
	if !res.OK || res.Schema.Len() != 2 {
		t.Fatalf("star schema = %v", res.Schema)
	}
	// price (source 2) matches nothing at the hub → absent.
	for _, g := range res.Schema.GAs {
		if g.Contains(ref(2, 1)) {
			t.Error("price leaked into star mediation")
		}
		if !g.Valid() {
			t.Errorf("invalid GA %v", g)
		}
	}
	if !res.Schema.Disjoint() {
		t.Error("star GAs overlap")
	}
}

func TestStarDropsNonHubConcepts(t *testing.T) {
	// The structural weakness of the star topology: a concept shared by
	// non-hub sources but absent from the hub cannot become a GA; µBE's
	// clustering finds it.
	u := universe(t,
		[]string{"title"}, // hub lacks "price"
		[]string{"title", "price"},
		[]string{"title", "price"},
	)
	m := MustNew(u, Config{Theta: 0.5})
	star := m.StarMediate(0, u.IDs(), 0.5, 2)
	for _, g := range star.Schema.GAs {
		if g.Contains(ref(1, 1)) || g.Contains(ref(2, 1)) {
			t.Fatalf("star found the price GA it should structurally miss: %v", star.Schema)
		}
	}
	holistic, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range holistic.Schema.GAs {
		if g.Contains(ref(1, 1)) && g.Contains(ref(2, 1)) {
			found = true
		}
	}
	if !found {
		t.Error("holistic clustering missed the price GA")
	}
}

func TestBestStarMediate(t *testing.T) {
	u := universe(t,
		[]string{"title"},                    // weak hub
		[]string{"title", "price", "author"}, // strong hub
		[]string{"title", "price"},
		[]string{"author", "price"},
	)
	m := MustNew(u, Config{Theta: 0.5})
	best := m.BestStarMediate(u.IDs(), 0.5, 2)
	cover := 0
	for _, g := range best.Schema.GAs {
		cover += g.Size()
	}
	// The strong hub covers title(3) + price(3) + author(2) = 8 attrs.
	if cover < 8 {
		t.Errorf("best star covers %d attrs, want ≥ 8", cover)
	}
}
