// Package match implements µBE's schema matching operator Match(S) (§3): a
// greedy constrained similarity clustering over the attributes of a set of
// sources that produces a mediated schema (a set of GAs) and its matching
// quality, honoring user GA constraints as seed clusters ("Matching By
// Example").
//
// The matcher is parameterized by any pairwise attribute similarity measure
// (strutil.Similarity); the paper's prototype uses the Jaccard coefficient
// of 3-grams of the attribute names.
//
// Because attribute names in a universe repeat heavily (Internet-scale
// universes contain many near-copies of domain schemas), the matcher interns
// normalized names and precomputes one similarity table over *distinct*
// names; per-pair lookups during clustering are O(1).
package match

import (
	"fmt"
	"sync"

	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/strutil"
)

// Linkage defines how cluster-to-cluster similarity is derived from
// attribute-to-attribute similarity.
type Linkage int

const (
	// MaxLinkage defines cluster similarity as the maximum similarity
	// between an attribute of one cluster and an attribute of the other —
	// the paper's choice, which enables the bridging effect of GA
	// constraints (§3).
	MaxLinkage Linkage = iota
	// AvgLinkage uses the average cross-cluster pair similarity; provided
	// for the linkage ablation experiment.
	AvgLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	if l == AvgLinkage {
		return "avg"
	}
	return "max"
}

// Config parameterizes a Matcher.
type Config struct {
	// Similarity is the attribute-name similarity measure. Defaults to
	// strutil.TriGramJaccard.
	Similarity strutil.Similarity
	// Theta is the matching threshold θ ∈ (0,1]: clusters merge only when
	// their similarity is at least Theta. Defaults to DefaultTheta.
	Theta float64
	// Beta is the lower bound β ≥ 1 on the size of any output GA not
	// containing a user GA constraint. Defaults to DefaultBeta.
	Beta int
	// Linkage selects the cluster similarity definition. Defaults to
	// MaxLinkage.
	Linkage Linkage
	// DataWeight ∈ [0,1] blends data-based similarity into the measure:
	// pairSim = (1−w)·nameSim + w·minhashJaccard(value sketches). Non-zero
	// weights require sources to provide per-attribute MinHash signatures
	// (source.Source.AttrSignatures); attribute pairs without sketches fall
	// back to a 0 data component. 0 (the default) reproduces the paper's
	// purely name-based prototype.
	DataWeight float64
}

// Default matching parameters (see DESIGN.md: the paper's θ value is
// truncated in the available text; 0.5 separates same-concept name variants
// from cross-concept pairs under 3-gram Jaccard).
const (
	DefaultTheta = 0.5
	DefaultBeta  = 2
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Similarity == nil {
		c.Similarity = strutil.TriGramJaccard
	}
	if c.Theta == 0 {
		c.Theta = DefaultTheta
	}
	if c.Beta == 0 {
		c.Beta = DefaultBeta
	}
	return c
}

// validate rejects out-of-range parameters.
func (c Config) validate() error {
	if c.Theta <= 0 || c.Theta > 1 {
		return fmt.Errorf("match: theta %v out of (0,1]", c.Theta)
	}
	if c.Beta < 1 {
		return fmt.Errorf("match: beta %d < 1", c.Beta)
	}
	if c.DataWeight < 0 || c.DataWeight > 1 {
		return fmt.Errorf("match: data weight %v out of [0,1]", c.DataWeight)
	}
	return nil
}

// Matcher is the Match(S) operator bound to one universe. It is safe for
// concurrent use after construction (all state is read-only).
type Matcher struct {
	u   *source.Universe
	cfg Config

	// simID[s][a] is the similarity id of attribute a of source s: an
	// interned-name id in the default (name-only) mode, or a global
	// attribute index in hybrid (data-weighted) mode.
	simID [][]int
	// table is the packed upper-triangular similarity matrix over
	// similarity ids (diagonal included).
	table []float32
	// n is the number of similarity ids.
	n int
	// ids/names retain the name interning from construction so Rebind can
	// extend the table incrementally when the universe churns instead of
	// recomputing O(d²) similarities from scratch. Read-only after New;
	// Rebind clones before extending.
	ids   map[string]int
	names []string

	// pool recycles clustering scratch (cluster slabs, ref/name arenas, the
	// pair heap) across Match/Score calls; shared by WithParams clones since
	// buffers are parameter-independent. Pointer-typed so the value copy in
	// WithParams stays legal.
	pool *sync.Pool
	// shardc lazily caches the θ-level shard index (connected components of
	// the similarity graph). It depends on Theta, so WithParams clones get a
	// fresh cache.
	shardc *shardCache
}

// New builds a matcher for u, precomputing the distinct-name similarity
// table.
func New(u *source.Universe, cfg Config) (*Matcher, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Matcher{u: u, cfg: cfg}
	m.pool = &sync.Pool{New: func() any { return newMatchScratch() }}
	m.shardc = &shardCache{}
	// Intern normalized names and compute the distinct-name similarity
	// table — the name component in both modes.
	ids := make(map[string]int)
	var names []string
	nameID := make([][]int, u.Len())
	for si, s := range u.Sources() {
		row := make([]int, s.Schema.Len())
		for ai := 0; ai < s.Schema.Len(); ai++ {
			norm := strutil.Normalize(s.Schema.Name(ai))
			id, ok := ids[norm]
			if !ok {
				id = len(names)
				ids[norm] = id
				names = append(names, norm)
			}
			row[ai] = id
		}
		nameID[si] = row
	}
	m.ids = ids
	m.names = names
	d := len(names)
	namePacked := func(i, j int) int { return i*d - i*(i-1)/2 + (j - i) }
	nameTable := make([]float32, d*(d+1)/2)
	for i := 0; i < d; i++ {
		nameTable[namePacked(i, i)] = 1
		for j := i + 1; j < d; j++ {
			nameTable[namePacked(i, j)] = float32(cfg.Similarity.Sim(names[i], names[j]))
		}
	}
	nameSim := func(a, b int) float32 {
		if a > b {
			a, b = b, a
		}
		return nameTable[namePacked(a, b)]
	}

	if cfg.DataWeight == 0 {
		m.simID = nameID
		m.n = d
		m.table = nameTable
		return m, nil
	}

	// Hybrid mode: one similarity id per attribute; the table blends the
	// name component with the MinHash Jaccard of the attributes' value
	// sketches.
	m.simID = make([][]int, u.Len())
	var attrs []schema.AttrRef
	for si, s := range u.Sources() {
		row := make([]int, s.Schema.Len())
		for ai := 0; ai < s.Schema.Len(); ai++ {
			row[ai] = len(attrs)
			attrs = append(attrs, schema.AttrRef{Source: schema.SourceID(si), Attr: ai})
		}
		m.simID[si] = row
	}
	m.n = len(attrs)
	m.table = make([]float32, m.n*(m.n+1)/2)
	w := float32(cfg.DataWeight)
	for i := 0; i < m.n; i++ {
		m.table[m.packed(i, i)] = 1
		ra := attrs[i]
		sigA := u.Source(ra.Source).AttrSignature(ra.Attr)
		for j := i + 1; j < m.n; j++ {
			rb := attrs[j]
			sim := (1 - w) * nameSim(nameID[ra.Source][ra.Attr], nameID[rb.Source][rb.Attr])
			if sigA != nil {
				if sigB := u.Source(rb.Source).AttrSignature(rb.Attr); sigB != nil {
					if jac, err := sigA.Jaccard(sigB); err == nil {
						sim += w * float32(jac)
					}
				}
			}
			m.table[m.packed(i, j)] = sim
		}
	}
	return m, nil
}

// MustNew is New that panics on error; for tests and package defaults.
func MustNew(u *source.Universe, cfg Config) *Matcher {
	m, err := New(u, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// packed returns the index of (i,j), i ≤ j, in the triangular table.
func (m *Matcher) packed(i, j int) int {
	return i*m.n - i*(i-1)/2 + (j - i)
}

// simByID returns the similarity of two similarity ids.
func (m *Matcher) simByID(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return float64(m.table[m.packed(a, b)])
}

// PairSim returns the similarity of two attributes.
func (m *Matcher) PairSim(a, b schema.AttrRef) float64 {
	return m.simByID(m.simID[a.Source][a.Attr], m.simID[b.Source][b.Attr])
}

// Config returns the matcher's effective configuration.
func (m *Matcher) Config() Config { return m.cfg }

// WithParams returns a matcher that shares this matcher's (immutable)
// similarity table but clusters with different parameters. Changing θ, β, or
// the linkage between µBE iterations is therefore cheap; only changing the
// similarity measure itself requires a full New.
func (m *Matcher) WithParams(theta float64, beta int, linkage Linkage) (*Matcher, error) {
	cfg := m.cfg
	cfg.Theta = theta
	cfg.Beta = beta
	cfg.Linkage = linkage
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	clone := *m
	clone.cfg = cfg
	// The shard index is a function of θ; give the clone its own cache. The
	// scratch pool carries no parameters and stays shared.
	clone.shardc = &shardCache{}
	return &clone, nil
}

// Rebind returns a matcher over nu — typically this matcher's universe after
// a churn tick added, dropped, or drifted sources — that reuses every
// similarity already in the table and computes only the pairs involving
// genuinely new attribute names. With churn touching a few percent of
// sources per epoch the distinct-name set barely moves, so a rebind is
// usually a re-interning pass plus zero or a handful of Sim calls, against
// O(d²) for a cold New. Similarities of pairs present in both tables are
// copied bit-for-bit, so clustering over the rebound matcher scores
// identically to a from-scratch build. Hybrid (data-weighted) tables are
// keyed per attribute, not per distinct name, so they fall back to New.
func (m *Matcher) Rebind(nu *source.Universe) (*Matcher, error) {
	if m.cfg.DataWeight != 0 {
		return New(nu, m.cfg)
	}
	clone := *m
	clone.u = nu
	// The shard index is a function of the universe; give the clone its own
	// cache. The scratch pool carries no universe state and stays shared.
	clone.shardc = &shardCache{}
	ids := make(map[string]int, len(m.ids))
	for k, v := range m.ids {
		ids[k] = v
	}
	names := append([]string(nil), m.names...)
	oldD := len(names)
	nameID := make([][]int, nu.Len())
	for si, s := range nu.Sources() {
		row := make([]int, s.Schema.Len())
		for ai := 0; ai < s.Schema.Len(); ai++ {
			norm := strutil.Normalize(s.Schema.Name(ai))
			id, ok := ids[norm]
			if !ok {
				id = len(names)
				ids[norm] = id
				names = append(names, norm)
			}
			row[ai] = id
		}
		nameID[si] = row
	}
	clone.ids = ids
	clone.names = names
	clone.simID = nameID
	d := len(names)
	clone.n = d
	if d == oldD {
		// No new names: the distinct-name table is exactly the old one.
		// (Names dropped with their sources stay interned — the table only
		// grows — which keeps every surviving id, and so every copied
		// similarity, stable.)
		return &clone, nil
	}
	packed := func(i, j int) int { return i*d - i*(i-1)/2 + (j - i) }
	oldPacked := func(i, j int) int { return i*oldD - i*(i-1)/2 + (j - i) }
	table := make([]float32, d*(d+1)/2)
	for i := 0; i < d; i++ {
		table[packed(i, i)] = 1
		for j := i + 1; j < d; j++ {
			if j < oldD {
				table[packed(i, j)] = m.table[oldPacked(i, j)]
			} else {
				table[packed(i, j)] = float32(m.cfg.Similarity.Sim(names[i], names[j]))
			}
		}
	}
	clone.table = table
	return &clone, nil
}

// Universe returns the universe the matcher is bound to.
func (m *Matcher) Universe() *source.Universe { return m.u }

// Theta returns the matching threshold.
func (m *Matcher) Theta() float64 { return m.cfg.Theta }

// Result is the output of Match(S).
type Result struct {
	// OK is false when no matching satisfies both the matching threshold
	// and the source constraints for this set of sources; in that case the
	// schema is empty and Quality is 0 (Algorithm 1, line 24).
	OK bool
	// Schema is the generated mediated schema M.
	Schema schema.Mediated
	// Quality is F1(S): the average per-GA matching quality.
	Quality float64
	// GAQuality[i] is the matching quality of Schema.GAs[i]: the maximum
	// similarity between any two of its attributes (1 for singleton GAs).
	GAQuality []float64
}

// GAQuality computes the paper's per-GA quality: the maximum similarity
// between any two attributes of g (1 if g has fewer than two attributes).
func (m *Matcher) GAQuality(g schema.GA) float64 {
	refs := g.Refs()
	if len(refs) < 2 {
		return 1
	}
	best := 0.0
	for i := 0; i < len(refs); i++ {
		ni := m.simID[refs[i].Source][refs[i].Attr]
		for j := i + 1; j < len(refs); j++ {
			nj := m.simID[refs[j].Source][refs[j].Attr]
			if s := m.simByID(ni, nj); s > best {
				best = s
			}
		}
	}
	return best
}
