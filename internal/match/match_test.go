package match

import (
	"math"
	"math/rand"
	"testing"

	"mube/internal/constraint"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/strutil"
	"mube/internal/testutil"
)

var sigCfg = pcsa.Config{NumMaps: 64}

// universe builds a universe from attribute-name lists.
func universe(t testing.TB, schemas ...[]string) *source.Universe {
	t.Helper()
	u := source.NewUniverse(sigCfg)
	for _, attrs := range schemas {
		if _, err := u.Add(source.Uncooperative("s", schema.NewSchema(attrs...))); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func ref(s, a int) schema.AttrRef { return schema.AttrRef{Source: schema.SourceID(s), Attr: a} }

func ids(ns ...int) []schema.SourceID {
	out := make([]schema.SourceID, len(ns))
	for i, n := range ns {
		out[i] = schema.SourceID(n)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	u := universe(t, []string{"a"})
	if _, err := New(u, Config{Theta: 1.5}); err == nil {
		t.Error("theta > 1 accepted")
	}
	if _, err := New(u, Config{Theta: -0.1}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := New(u, Config{Beta: -2}); err == nil {
		t.Error("negative beta accepted")
	}
	m, err := New(u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(m.Config().Theta, DefaultTheta) || m.Config().Beta != DefaultBeta {
		t.Errorf("defaults not applied: %+v", m.Config())
	}
	if !testutil.AlmostEqual(m.Theta(), DefaultTheta) {
		t.Errorf("Theta() = %v", m.Theta())
	}
}

func TestPairSim(t *testing.T) {
	u := universe(t, []string{"author", "title"}, []string{"author name"})
	m := MustNew(u, Config{})
	same := m.PairSim(ref(0, 0), ref(1, 0))
	want := strutil.TriGramJaccard.Sim("author", "author name")
	if diff := same - want; diff > 1e-6 || diff < -1e-6 {
		// The matcher stores similarities as float32; allow that rounding.
		t.Errorf("PairSim = %v, want %v", same, want)
	}
	if !testutil.AlmostEqual(m.PairSim(ref(0, 0), ref(0, 0)), 1) {
		t.Error("self-similarity must be 1")
	}
}

func TestMatchClustersIdenticalNames(t *testing.T) {
	u := universe(t,
		[]string{"author", "title"},
		[]string{"author", "price"},
		[]string{"author", "title"},
	)
	m := MustNew(u, Config{Theta: 0.5})
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("match failed")
	}
	// Expect an author GA spanning all three sources and a title GA spanning
	// sources 0 and 2; "price" is unmatched and pruned.
	var authorGA, titleGA *schema.GA
	for i := range res.Schema.GAs {
		g := &res.Schema.GAs[i]
		switch {
		case g.Contains(ref(0, 0)):
			authorGA = g
		case g.Contains(ref(0, 1)):
			titleGA = g
		}
	}
	if authorGA == nil || authorGA.Size() != 3 {
		t.Errorf("author GA = %v, want 3 attrs", authorGA)
	}
	if titleGA == nil || titleGA.Size() != 2 {
		t.Errorf("title GA = %v, want 2 attrs", titleGA)
	}
	if !testutil.AlmostEqual(res.Quality, 1) {
		t.Errorf("quality = %v, want 1 for identical names", res.Quality)
	}
}

func TestMatchRespectsGAValidity(t *testing.T) {
	// Both attributes of source 0 are named "keyword"; a GA may absorb only
	// one attribute per source (Definition 1).
	u := universe(t,
		[]string{"keyword", "keyword"},
		[]string{"keyword"},
		[]string{"keyword"},
	)
	m := MustNew(u, Config{Theta: 0.5})
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Schema.GAs {
		if !g.Valid() {
			t.Errorf("invalid GA in output: %v", g)
		}
	}
	if !res.Schema.Disjoint() {
		t.Error("output GAs overlap")
	}
}

func TestMatchPerGAQualityMeetsTheta(t *testing.T) {
	u := universe(t,
		[]string{"author", "book title", "publisher"},
		[]string{"author name", "title of book", "publishing house"},
		[]string{"writer", "title", "press"},
		[]string{"isbn", "subject"},
	)
	theta := 0.3
	m := MustNew(u, Config{Theta: theta})
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range res.GAQuality {
		if q < theta {
			t.Errorf("GA %d quality %v below theta %v (no constraints given)", i, q, theta)
		}
	}
	if res.Quality < theta {
		t.Errorf("schema quality %v below theta", res.Quality)
	}
}

func TestMatchBetaFiltersSmallGAs(t *testing.T) {
	u := universe(t,
		[]string{"alpha", "omega"},
		[]string{"alpha", "omega"},
		[]string{"alpha"},
	)
	// With beta=3, the omega GA (size 2) must be dropped; alpha (size 3) kept.
	m := MustNew(u, Config{Theta: 0.5, Beta: 3})
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Len() != 1 {
		t.Fatalf("schema = %v, want exactly the alpha GA", res.Schema)
	}
	if got := res.Schema.GAs[0].Size(); got != 3 {
		t.Errorf("surviving GA size = %d, want 3", got)
	}
}

func TestGAConstraintBridging(t *testing.T) {
	// "F name" and "Prenom" share no grams, but a GA constraint bridges the
	// semantic gap and lets the cluster keep growing on both sides (§3,
	// Figure 3 d–f).
	u := universe(t,
		[]string{"f name"},
		[]string{"prenom"},
		[]string{"first name"},
		[]string{"nom prenom"},
	)
	m := MustNew(u, Config{Theta: 0.4})

	// Without the constraint the two halves stay separate.
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Schema.GAs {
		if g.Contains(ref(0, 0)) && g.Contains(ref(1, 0)) {
			t.Fatal("f name and prenom merged without a bridge")
		}
	}

	bridge := schema.NewGA(ref(0, 0), ref(1, 0))
	res, err = m.Match(u.IDs(), constraint.Set{GAs: []schema.GA{bridge}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("constrained match failed")
	}
	var grown *schema.GA
	for i := range res.Schema.GAs {
		if res.Schema.GAs[i].ContainsAll(bridge) {
			grown = &res.Schema.GAs[i]
		}
	}
	if grown == nil {
		t.Fatal("constraint GA missing from output (G ⋢ M)")
	}
	// The bridge must attract both "first name" (similar to f name) and
	// "nom prenom" (similar to prenom).
	if !grown.Contains(ref(2, 0)) || !grown.Contains(ref(3, 0)) {
		t.Errorf("bridged GA = %v, want all four attributes", grown)
	}
}

func TestGAConstraintExemptFromThetaAndBeta(t *testing.T) {
	u := universe(t,
		[]string{"xyzzy"},
		[]string{"qwert"},
	)
	g := schema.NewGA(ref(0, 0), ref(1, 0))
	m := MustNew(u, Config{Theta: 0.9, Beta: 3})
	res, err := m.Match(u.IDs(), constraint.Set{GAs: []schema.GA{g}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Schema.Len() != 1 || !res.Schema.GAs[0].Equal(g) {
		t.Errorf("constraint GA should survive θ and β: %v", res.Schema)
	}
}

func TestSourceConstraintValidity(t *testing.T) {
	u := universe(t,
		[]string{"author"},
		[]string{"author"},
		[]string{"zzzzz"}, // matches nothing
	)
	m := MustNew(u, Config{Theta: 0.5})

	// Constraining source 2, whose attribute matches nothing, makes every
	// schema invalid on C → null schema, 0 quality.
	res, err := m.Match(u.IDs(), constraint.Set{Sources: ids(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Quality != 0 {
		t.Errorf("expected failed match, got OK=%v quality=%v", res.OK, res.Quality)
	}

	// Constraining source 0 (which matches source 1) succeeds.
	res, err = m.Match(u.IDs(), constraint.Set{Sources: ids(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Error("expected valid match with satisfiable source constraint")
	}
}

func TestMatchRequiresRequiredSources(t *testing.T) {
	u := universe(t, []string{"a"}, []string{"b"})
	m := MustNew(u, Config{})
	if _, err := m.Match(ids(0), constraint.Set{Sources: ids(1)}); err == nil {
		t.Error("Match should reject S ⊉ C")
	}
	if _, err := m.Match(ids(0), constraint.Set{GAs: []schema.GA{schema.NewGA(ref(1, 0))}}); err == nil {
		t.Error("Match should reject S missing GA-implied source")
	}
}

func TestMatchEmptySelection(t *testing.T) {
	u := universe(t, []string{"a"}, []string{"b"})
	m := MustNew(u, Config{})
	res, err := m.Match(nil, constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Schema.Len() != 0 || res.Quality != 0 {
		t.Errorf("empty selection: %+v", res)
	}
}

func TestMatchTransitiveGrowth(t *testing.T) {
	// a-b similar, b-c similar, a-c dissimilar: max linkage grows the chain
	// across rounds (merge a+b first, then attract c via b).
	u := universe(t,
		[]string{"publication year"},
		[]string{"publication date"},
		[]string{"pub date"},
	)
	m := MustNew(u, Config{Theta: 0.45})
	ab := m.PairSim(ref(0, 0), ref(1, 0))
	bc := m.PairSim(ref(1, 0), ref(2, 0))
	ac := m.PairSim(ref(0, 0), ref(2, 0))
	if !(ab >= 0.45 && bc >= 0.45 && ac < 0.45) {
		t.Skipf("test premise broken: ab=%v bc=%v ac=%v", ab, bc, ac)
	}
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Len() != 1 || res.Schema.GAs[0].Size() != 3 {
		t.Errorf("expected one 3-attribute GA, got %v", res.Schema)
	}
}

func TestMatchDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var schemas [][]string
	vocab := []string{"title", "book title", "author", "author name", "price", "price range", "isbn", "keyword"}
	for i := 0; i < 12; i++ {
		n := 1 + r.Intn(4)
		attrs := make([]string, 0, n)
		seen := map[string]bool{}
		for len(attrs) < n {
			w := vocab[r.Intn(len(vocab))]
			if !seen[w] {
				seen[w] = true
				attrs = append(attrs, w)
			}
		}
		schemas = append(schemas, attrs)
	}
	u := universe(t, schemas...)
	m := MustNew(u, Config{Theta: 0.4})
	first, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := m.Match(u.IDs(), constraint.Set{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Schema.String() != first.Schema.String() || !testutil.AlmostEqual(again.Quality, first.Quality) {
			t.Fatal("Match is not deterministic")
		}
	}
}

func TestAvgLinkage(t *testing.T) {
	u := universe(t,
		[]string{"author"},
		[]string{"author"},
		[]string{"author name of record"},
	)
	mMax := MustNew(u, Config{Theta: 0.3, Linkage: MaxLinkage})
	mAvg := MustNew(u, Config{Theta: 0.3, Linkage: AvgLinkage})
	rMax, _ := mMax.Match(u.IDs(), constraint.Set{})
	rAvg, _ := mAvg.Match(u.IDs(), constraint.Set{})
	// Both should produce valid disjoint schemas; max linkage absorbs at
	// least as many attributes as avg.
	count := func(m schema.Mediated) int {
		n := 0
		for _, g := range m.GAs {
			n += g.Size()
		}
		return n
	}
	if count(rMax.Schema) < count(rAvg.Schema) {
		t.Errorf("max linkage (%d attrs) absorbed fewer than avg (%d)", count(rMax.Schema), count(rAvg.Schema))
	}
	if MaxLinkage.String() != "max" || AvgLinkage.String() != "avg" {
		t.Error("Linkage.String broken")
	}
}

func TestGAQualitySingleton(t *testing.T) {
	u := universe(t, []string{"a"})
	m := MustNew(u, Config{})
	if q := m.GAQuality(schema.NewGA(ref(0, 0))); !testutil.AlmostEqual(q, 1) {
		t.Errorf("singleton GA quality = %v, want 1", q)
	}
}

// TestMatchPropertyInvariants fuzzes random universes and checks the core
// Match invariants: disjoint valid GAs, G ⊑ M, and per-GA quality ≥ θ for
// non-constraint GAs.
func TestMatchPropertyInvariants(t *testing.T) {
	vocab := []string{
		"title", "book title", "name of book", "author", "author name",
		"writer", "price", "price range", "keyword", "keywords", "isbn",
		"publisher", "subject", "category", "zebra", "quux",
	}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		var schemas [][]string
		n := 3 + r.Intn(10)
		for i := 0; i < n; i++ {
			k := 1 + r.Intn(5)
			seen := map[string]bool{}
			var attrs []string
			for len(attrs) < k {
				w := vocab[r.Intn(len(vocab))]
				if !seen[w] {
					seen[w] = true
					attrs = append(attrs, w)
				}
			}
			schemas = append(schemas, attrs)
		}
		u := universe(t, schemas...)
		theta := 0.3 + r.Float64()*0.5
		m := MustNew(u, Config{Theta: theta})

		var cons constraint.Set
		if r.Intn(2) == 0 && n >= 2 {
			// Random (valid) GA constraint across two sources.
			s1, s2 := 0, 1+r.Intn(n-1)
			cons.GAs = []schema.GA{schema.NewGA(
				ref(s1, r.Intn(len(schemas[s1]))),
				ref(s2, r.Intn(len(schemas[s2]))),
			)}
		}
		res, err := m.Match(u.IDs(), cons)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK {
			continue
		}
		if !res.Schema.Disjoint() {
			t.Fatalf("seed %d: overlapping GAs", seed)
		}
		constraintGAs := schema.NewMediated(cons.GAs...)
		if !res.Schema.Subsumes(constraintGAs) {
			t.Fatalf("seed %d: G ⋢ M", seed)
		}
		for i, g := range res.Schema.GAs {
			if !g.Valid() {
				t.Fatalf("seed %d: invalid GA %v", seed, g)
			}
			isConstraint := false
			for _, cg := range cons.GAs {
				if g.ContainsAll(cg) {
					isConstraint = true
				}
			}
			if !isConstraint {
				if res.GAQuality[i] < theta {
					t.Fatalf("seed %d: GA %v quality %v < theta %v", seed, g, res.GAQuality[i], theta)
				}
				if g.Size() < DefaultBeta {
					t.Fatalf("seed %d: GA %v smaller than beta", seed, g)
				}
			}
		}
	}
}

// TestRebindMatchesFreshBuild churns a universe (drop, drift, arrival) and
// checks that Rebind produces clusterings and qualities bit-identical to a
// cold New over the same universe — the contract the watch loop's delta
// re-clustering relies on.
func TestRebindMatchesFreshBuild(t *testing.T) {
	u := universe(t,
		[]string{"title", "author", "price"},
		[]string{"book title", "writer"},
		[]string{"keyword"},
		[]string{"title", "cost"},
	)
	m, err := New(u, Config{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	// Churn: source 2 dies, source 1 drifts to new names, a new source
	// arrives with a mix of known and novel names.
	if _, err := u.Remove([]schema.SourceID{2}); err != nil {
		t.Fatal(err)
	}
	u.Source(1).Schema = schema.NewSchema("booktitle", "author name")
	if _, err := u.Add(source.Uncooperative("new", schema.NewSchema("title", "publisher"))); err != nil {
		t.Fatal(err)
	}

	warm, err := m.Rebind(u)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(u, Config{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Universe() != u {
		t.Fatal("Rebind did not bind the new universe")
	}

	all := u.IDs()
	for i := 0; i < len(all); i++ {
		for _, cons := range []constraint.Set{{}, {GAs: []schema.GA{schema.NewGA(ref(0, 0), ref(2, 0))}}} {
			if !cons.Empty() && i < 2 {
				continue // constraint requires sources 0 and 2
			}
			rw, err := warm.Match(all[:i+1], cons)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := cold.Match(all[:i+1], cons)
			if err != nil {
				t.Fatal(err)
			}
			//mube:vet-ignore floatcmp — the Rebind contract is bit-identical, not approximate
			if rw.OK != rc.OK || math.Float64bits(rw.Quality) != math.Float64bits(rc.Quality) {
				t.Fatalf("subset %v cons %v: warm (%v, %v) != cold (%v, %v)",
					all[:i+1], cons, rw.OK, rw.Quality, rc.OK, rc.Quality)
			}
			if rw.Schema.String() != rc.Schema.String() {
				t.Fatalf("subset %v: warm schema %v != cold schema %v", all[:i+1], rw.Schema, rc.Schema)
			}
		}
	}

	// Every attribute pair must agree bit-for-bit, old names and new.
	for _, a := range all {
		sa := u.Source(a)
		for ai := 0; ai < sa.Schema.Len(); ai++ {
			for _, b := range all {
				sb := u.Source(b)
				for bi := 0; bi < sb.Schema.Len(); bi++ {
					pw := warm.PairSim(schema.AttrRef{Source: a, Attr: ai}, schema.AttrRef{Source: b, Attr: bi})
					pc := cold.PairSim(schema.AttrRef{Source: a, Attr: ai}, schema.AttrRef{Source: b, Attr: bi})
					if math.Float64bits(pw) != math.Float64bits(pc) {
						t.Fatalf("PairSim(s%d.a%d, s%d.a%d): warm %v != cold %v", a, ai, b, bi, pw, pc)
					}
				}
			}
		}
	}

	// The original matcher must be untouched by the rebind: churn introduced
	// new names, so the rebound interning is strictly larger.
	if len(m.names) >= len(warm.names) || len(m.ids) >= len(warm.ids) {
		t.Errorf("Rebind mutated receiver's interning: %d names before, %d after", len(m.names), len(warm.names))
	}

	// A no-new-names rebind must share the table wholesale.
	again, err := warm.Rebind(u)
	if err != nil {
		t.Fatal(err)
	}
	if &again.table[0] != &warm.table[0] {
		t.Error("rebind with no new names rebuilt the table")
	}
}

// TestRebindHybridFallsBackToNew pins the documented hybrid behavior: a
// data-weighted matcher rebinds by full rebuild and still scores like New.
func TestRebindHybridFallsBackToNew(t *testing.T) {
	u := hybridUniverse(t)
	m, err := New(u, Config{Theta: 0.3, DataWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := m.Rebind(u)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(u, Config{Theta: 0.3, DataWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := schema.AttrRef{Source: 0, Attr: 0}, schema.AttrRef{Source: 1, Attr: 0}
	if math.Float64bits(warm.PairSim(a, b)) != math.Float64bits(cold.PairSim(a, b)) {
		t.Errorf("hybrid rebind PairSim %v != cold %v", warm.PairSim(a, b), cold.PairSim(a, b))
	}
}
