package match

import (
	"fmt"
	"slices"

	"mube/internal/constraint"
	"mube/internal/schema"
)

// cluster is Algorithm 1's unit of work: a growing GA plus bookkeeping flags.
type cluster struct {
	ga    schema.GA
	names []int // interned similarity ids of the members, for linkage

	keep       bool // seeded from a user GA constraint (or grown from one)
	everMerged bool // produced by at least one merge (multi-attribute)
	merged     bool // consumed by a merge in the current round
	mergeCand  bool // blocked this round because its partner already merged
	dead       bool // removed from the active set
}

// linkage returns the cluster-to-cluster similarity under the configured
// linkage rule.
func (m *Matcher) linkage(a, b *cluster) float64 {
	switch m.cfg.Linkage {
	case AvgLinkage:
		sum := 0.0
		for _, na := range a.names {
			for _, nb := range b.names {
				sum += m.simByID(na, nb)
			}
		}
		return sum / float64(len(a.names)*len(b.names))
	default: // MaxLinkage
		best := 0.0
		for _, na := range a.names {
			for _, nb := range b.names {
				if s := m.simByID(na, nb); s > best {
					best = s
				}
			}
		}
		return best
	}
}

// pair is an entry of the round's priority queue H_sim.
type pair struct {
	i, j int
	sim  float64
}

// matchScratch holds every buffer one clustering operation needs. All slab
// and arena memory is recycled through the matcher's pool, so steady-state
// Match/Score calls allocate (almost) nothing: clusters come from a value
// slab, merged GA references and member name lists are appended to flat
// arenas, and the pair heap, GA list, and quality list reuse their backing
// arrays.
//
// One operation (Match, Score, or a sharded flip score) may run the cluster
// rounds several times — once per affected shard. Per-run state (slab,
// clusters, h) is reset between runs; the arenas and the collected gas/quals
// keep growing so earlier runs' output stays valid for the final merge.
type matchScratch struct {
	slab     []cluster
	clusters []*cluster
	names    []int            // arena: cluster member similarity ids
	refs     []schema.AttrRef // arena: merged/seeded GA references
	h        []pair
	gas      []schema.GA // collected surviving GAs, canonically sorted per segment
	quals    []float64   // GAQuality aligned with gas
	inCons   map[schema.AttrRef]struct{}

	// Sharded-scoring state (see shard.go).
	ids     []schema.SourceID // flipped base buffer
	shards  []int32           // affected-shard buffer
	segs    []int             // segment starts into gas/quals, one per stream
	streams []gaStream        // k-way merge state
	covered []bool            // per-constraint-source coverage
}

func newMatchScratch() *matchScratch {
	return &matchScratch{inCons: make(map[schema.AttrRef]struct{})}
}

// reset prepares the scratch for a fresh operation.
func (sc *matchScratch) reset() {
	sc.resetRun()
	sc.names = sc.names[:0]
	sc.refs = sc.refs[:0]
	sc.gas = sc.gas[:0]
	sc.quals = sc.quals[:0]
	sc.segs = sc.segs[:0]
}

// resetRun prepares for one clustering run within an operation. Arenas and
// the collected gas/quals are deliberately kept: earlier runs' GAs reference
// the refs arena.
func (sc *matchScratch) resetRun() {
	sc.slab = sc.slab[:0]
	sc.clusters = sc.clusters[:0]
	sc.h = sc.h[:0]
	clear(sc.inCons)
}

// alloc hands out a zeroed cluster from the slab. reserve should have sized
// the slab beforehand; if a merge cascade outgrows it anyway, append still
// yields a valid cluster (older pointers keep pointing into the old backing
// array, which is correct — clusters are only reached through sc.clusters).
func (sc *matchScratch) alloc() *cluster {
	if len(sc.slab) < cap(sc.slab) {
		sc.slab = sc.slab[:len(sc.slab)+1]
	} else {
		sc.slab = append(sc.slab, cluster{})
	}
	c := &sc.slab[len(sc.slab)-1]
	*c = cluster{}
	return c
}

// reserve sizes the slab for n initial clusters. Every merge consumes two
// clusters and appends one, so a run that starts with n clusters touches at
// most 2n−1 slab slots.
func (sc *matchScratch) reserve(n int) {
	if need := 2 * n; cap(sc.slab) < need {
		sc.slab = make([]cluster, 0, need)
	}
}

// seedRef appends a singleton seed reference to the refs arena and returns
// the adopted one-element GA.
func (sc *matchScratch) seedRef(r schema.AttrRef) schema.GA {
	start := len(sc.refs)
	sc.refs = append(sc.refs, r)
	return schema.GAFromSorted(sc.refs[start:len(sc.refs):len(sc.refs)])
}

// seedNames appends the similarity ids of g's members to the names arena.
func (sc *matchScratch) seedNames(m *Matcher, g schema.GA) []int {
	start := len(sc.names)
	for _, r := range g.Refs() {
		sc.names = append(sc.names, m.simID[r.Source][r.Attr])
	}
	return sc.names[start:len(sc.names):len(sc.names)]
}

// mergeNames concatenates two member lists into the names arena.
func (sc *matchScratch) mergeNames(a, b []int) []int {
	start := len(sc.names)
	sc.names = append(sc.names, a...)
	sc.names = append(sc.names, b...)
	return sc.names[start:len(sc.names):len(sc.names)]
}

// mergeGA merges two GAs with disjoint source sets (CanMerge holds) into the
// refs arena, preserving (Source, Attr) order. Equivalent to a.Union(b)
// without the sort or the allocation.
func (sc *matchScratch) mergeGA(a, b schema.GA) schema.GA {
	ra, rb := a.Refs(), b.Refs()
	start := len(sc.refs)
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		if ra[i].Compare(rb[j]) < 0 {
			sc.refs = append(sc.refs, ra[i])
			i++
		} else {
			sc.refs = append(sc.refs, rb[j])
			j++
		}
	}
	sc.refs = append(sc.refs, ra[i:]...)
	sc.refs = append(sc.refs, rb[j:]...)
	return schema.GAFromSorted(sc.refs[start:len(sc.refs):len(sc.refs)])
}

// scratch checks a matchScratch out of the pool.
func (m *Matcher) scratch() *matchScratch { return m.pool.Get().(*matchScratch) }

// release returns a scratch to the pool.
func (m *Matcher) release(sc *matchScratch) { m.pool.Put(sc) }

// Match runs the greedy constrained similarity clustering (Algorithm 1) over
// the attributes of the sources ids, honoring the user constraints. The set
// ids must contain every source required by cons (explicit source
// constraints and sources implied by GA constraints); Match returns an error
// otherwise — µBE's evaluator guarantees this precondition (§3: "we ensure
// for any call to Match(S) that S contains C").
//
// Per the paper, if the resulting mediated schema is not valid on the source
// constraints (some constrained source matches nothing at threshold θ), the
// result has OK == false and Quality == 0.
func (m *Matcher) Match(ids []schema.SourceID, cons constraint.Set) (Result, error) {
	if !cons.SatisfiedBy(ids) {
		return Result{}, fmt.Errorf("match: source set %v does not contain all required sources %v",
			ids, cons.RequiredSources())
	}

	sc := m.scratch()
	defer m.release(sc)
	sc.reset()
	m.seedInto(sc, ids, cons)
	m.rounds(sc)
	m.collectInto(sc, 0)

	// Deep-copy the schema out of the pooled arena: results outlive the
	// scratch. One contiguous arena serves every GA of the result.
	total := 0
	for _, g := range sc.gas {
		total += g.Size()
	}
	arena := make([]schema.AttrRef, 0, total)
	gas := make([]schema.GA, len(sc.gas))
	for i, g := range sc.gas {
		start := len(arena)
		arena = append(arena, g.Refs()...)
		gas[i] = schema.GAFromSorted(arena[start:len(arena):len(arena)])
	}
	// sc.gas is already in canonical (GA.Compare) order — the order
	// NewMediated would produce.
	med := schema.Mediated{GAs: gas}

	res := Result{Schema: med}
	if med.Len() > 0 {
		res.GAQuality = append([]float64(nil), sc.quals...)
		sum := 0.0
		for _, q := range sc.quals {
			sum += q
		}
		res.Quality = sum / float64(med.Len())
	}
	// Validity on C: the schema must span every explicitly constrained
	// source (disjointness and per-GA validity hold by construction).
	if !spansOK(sc.gas, cons.Sources) {
		return Result{OK: false}, nil
	}
	res.OK = true
	return res, nil
}

// Score is Match without the materialized schema: it returns F1(S) and the
// validity bit, allocating nothing in steady state. The quality is
// bit-identical to Match(ids, cons).Quality — both sum per-GA qualities in
// the canonical GA order — so the evaluator can use Score on every candidate
// and reserve Match for reporting solutions.
func (m *Matcher) Score(ids []schema.SourceID, cons constraint.Set) (float64, bool, error) {
	if !cons.SatisfiedBy(ids) {
		return 0, false, fmt.Errorf("match: source set %v does not contain all required sources %v",
			ids, cons.RequiredSources())
	}
	sc := m.scratch()
	defer m.release(sc)
	sc.reset()
	m.seedInto(sc, ids, cons)
	m.rounds(sc)
	m.collectInto(sc, 0)
	if !spansOK(sc.gas, cons.Sources) {
		return 0, false, nil
	}
	if len(sc.gas) == 0 {
		return 0, true, nil
	}
	sum := 0.0
	for _, q := range sc.quals {
		sum += q
	}
	return sum / float64(len(sc.gas)), true, nil
}

// spansOK reports whether every source in required contributes an attribute
// to some GA — Mediated.Spans without the coverage map.
func spansOK(gas []schema.GA, required []schema.SourceID) bool {
	for _, id := range required {
		found := false
		for _, g := range gas {
			if g.HasSource(id) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// seedInto builds the initial cluster set: one cluster per user GA constraint
// (keep = TRUE), then one singleton cluster per remaining attribute of every
// source in ids (Algorithm 1, lines 1–4).
func (m *Matcher) seedInto(sc *matchScratch, ids []schema.SourceID, cons constraint.Set) {
	total := len(cons.GAs)
	for _, id := range ids {
		total += m.u.Source(id).Schema.Len()
	}
	sc.reserve(total)

	for _, g := range cons.GAs {
		c := sc.alloc()
		c.ga = g
		c.keep = true
		for _, r := range g.Refs() {
			sc.inCons[r] = struct{}{}
		}
		c.names = sc.seedNames(m, g)
		sc.clusters = append(sc.clusters, c)
	}
	for _, id := range ids {
		n := m.u.Source(id).Schema.Len()
		for a := 0; a < n; a++ {
			r := schema.AttrRef{Source: id, Attr: a}
			if _, taken := sc.inCons[r]; taken {
				continue
			}
			c := sc.alloc()
			c.ga = sc.seedRef(r)
			c.names = sc.seedNames(m, c.ga)
			sc.clusters = append(sc.clusters, c)
		}
	}
}

// comparePairs orders the round's H_sim best first: by similarity
// descending, then by (i, j) ascending for determinism.
func comparePairs(a, b pair) int {
	switch {
	case a.sim > b.sim:
		return -1
	case a.sim < b.sim:
		return 1
	case a.i != b.i:
		return a.i - b.i
	}
	return a.j - b.j
}

// rounds runs the iterative merge rounds over sc.clusters (dead clusters are
// marked rather than removed so indexes stay stable, and merge products are
// appended).
func (m *Matcher) rounds(sc *matchScratch) {
	theta := m.cfg.Theta
	for {
		// Reset per-round flags (Algorithm 1, line 7).
		for _, c := range sc.clusters {
			if !c.dead {
				c.merged, c.mergeCand = false, false
			}
		}

		// H_sim: all live pairs with similarity ≥ θ, best first (line 8).
		h := sc.h[:0]
		for i := 0; i < len(sc.clusters); i++ {
			ci := sc.clusters[i]
			if ci.dead {
				continue
			}
			for j := i + 1; j < len(sc.clusters); j++ {
				cj := sc.clusters[j]
				if cj.dead {
					continue
				}
				if s := m.linkage(ci, cj); s >= theta {
					h = append(h, pair{i: i, j: j, sim: s})
				}
			}
		}
		sc.h = h
		slices.SortFunc(h, comparePairs)

		anyMerge, anyCand := false, false
		for _, p := range h {
			// Clusters consumed by a merge earlier in this round carry
			// merged == true and are handled by the cases below; they were
			// alive when H_sim was built.
			c1, c2 := sc.clusters[p.i], sc.clusters[p.j]
			switch {
			case !c1.merged && !c2.merged && c1.ga.CanMerge(c2.ga):
				// Merge c1 and c2 into a new cluster (lines 12–14).
				nc := sc.alloc()
				nc.ga = sc.mergeGA(c1.ga, c2.ga)
				nc.names = sc.mergeNames(c1.names, c2.names)
				nc.keep = c1.keep || c2.keep
				nc.everMerged = true
				c1.merged, c2.merged = true, true
				c1.dead, c2.dead = true, true
				sc.clusters = append(sc.clusters, nc)
				anyMerge = true
			case c1.merged != c2.merged:
				// One of the pair was already consumed this round; keep the
				// other alive for the next round (lines 15–19).
				if c1.merged {
					c2.mergeCand = true
				} else {
					c1.mergeCand = true
				}
				anyCand = true
			}
		}

		// Prune clusters that can never merge: still-singleton, not a user
		// constraint, and not blocked by this round's merges (lines 20–22).
		for _, c := range sc.clusters {
			if c.dead || c.keep || c.everMerged || c.mergeCand {
				continue
			}
			c.dead = true
		}

		if !anyMerge && !anyCand {
			return
		}
	}
}

// collectInto gathers the surviving clusters into sc.gas, applying the β
// lower bound to GAs that do not stem from a user GA constraint (§2.5: θ and
// β apply to M − G only), sorts the new segment [start:] canonically, and
// appends the aligned per-GA qualities to sc.quals.
func (m *Matcher) collectInto(sc *matchScratch, start int) {
	for _, c := range sc.clusters {
		if c.dead {
			continue
		}
		if !c.keep && c.ga.Size() < m.cfg.Beta {
			continue
		}
		sc.gas = append(sc.gas, c.ga)
	}
	seg := sc.gas[start:]
	slices.SortFunc(seg, schema.GA.Compare)
	for _, g := range seg {
		sc.quals = append(sc.quals, m.GAQuality(g))
	}
}
