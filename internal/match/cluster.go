package match

import (
	"fmt"
	"sort"

	"mube/internal/constraint"
	"mube/internal/schema"
)

// cluster is Algorithm 1's unit of work: a growing GA plus bookkeeping flags.
type cluster struct {
	ga    schema.GA
	names []int // interned name ids of the members, for linkage

	keep       bool // seeded from a user GA constraint (or grown from one)
	everMerged bool // produced by at least one merge (multi-attribute)
	merged     bool // consumed by a merge in the current round
	mergeCand  bool // blocked this round because its partner already merged
	dead       bool // removed from the active set
}

// linkage returns the cluster-to-cluster similarity under the configured
// linkage rule.
func (m *Matcher) linkage(a, b *cluster) float64 {
	switch m.cfg.Linkage {
	case AvgLinkage:
		sum := 0.0
		for _, na := range a.names {
			for _, nb := range b.names {
				sum += m.simByID(na, nb)
			}
		}
		return sum / float64(len(a.names)*len(b.names))
	default: // MaxLinkage
		best := 0.0
		for _, na := range a.names {
			for _, nb := range b.names {
				if s := m.simByID(na, nb); s > best {
					best = s
				}
			}
		}
		return best
	}
}

// pair is an entry of the round's priority queue H_sim.
type pair struct {
	i, j int
	sim  float64
}

// Match runs the greedy constrained similarity clustering (Algorithm 1) over
// the attributes of the sources ids, honoring the user constraints. The set
// ids must contain every source required by cons (explicit source
// constraints and sources implied by GA constraints); Match returns an error
// otherwise — µBE's evaluator guarantees this precondition (§3: "we ensure
// for any call to Match(S) that S contains C").
//
// Per the paper, if the resulting mediated schema is not valid on the source
// constraints (some constrained source matches nothing at threshold θ), the
// result has OK == false and Quality == 0.
func (m *Matcher) Match(ids []schema.SourceID, cons constraint.Set) (Result, error) {
	if !cons.SatisfiedBy(ids) {
		return Result{}, fmt.Errorf("match: source set %v does not contain all required sources %v",
			ids, cons.RequiredSources())
	}

	clusters := m.cluster(m.seed(ids, cons))

	// Collect surviving clusters, applying the β lower bound to GAs that do
	// not stem from a user GA constraint (§2.5: θ and β apply to M − G only).
	var gas []schema.GA
	for _, c := range clusters {
		if c.dead {
			continue
		}
		if !c.keep && c.ga.Size() < m.cfg.Beta {
			continue
		}
		gas = append(gas, c.ga)
	}
	med := schema.NewMediated(gas...)

	res := Result{Schema: med}
	if med.Len() > 0 {
		res.GAQuality = make([]float64, med.Len())
		sum := 0.0
		for i, g := range med.GAs {
			q := m.GAQuality(g)
			res.GAQuality[i] = q
			sum += q
		}
		res.Quality = sum / float64(med.Len())
	}
	// Validity on C: the schema must span every explicitly constrained
	// source (disjointness and per-GA validity hold by construction).
	if !med.Spans(cons.Sources) {
		return Result{OK: false}, nil
	}
	res.OK = true
	return res, nil
}

// seed builds the initial cluster set: one cluster per user GA constraint
// (keep = TRUE), then one singleton cluster per remaining attribute of every
// source in ids (Algorithm 1, lines 1–4).
func (m *Matcher) seed(ids []schema.SourceID, cons constraint.Set) []*cluster {
	inConstraint := make(map[schema.AttrRef]struct{})
	clusters := make([]*cluster, 0, len(cons.GAs))
	for _, g := range cons.GAs {
		c := &cluster{ga: g, keep: true}
		for _, r := range g.Refs() {
			inConstraint[r] = struct{}{}
			c.names = append(c.names, m.simID[r.Source][r.Attr])
		}
		clusters = append(clusters, c)
	}
	for _, id := range ids {
		n := m.u.Source(id).Schema.Len()
		for a := 0; a < n; a++ {
			r := schema.AttrRef{Source: id, Attr: a}
			if _, taken := inConstraint[r]; taken {
				continue
			}
			clusters = append(clusters, &cluster{
				ga:    schema.NewGA(r),
				names: []int{m.simID[id][a]},
			})
		}
	}
	return clusters
}

// cluster runs the iterative merge rounds and returns the final cluster set
// (dead clusters are marked rather than removed so indexes stay stable, and
// merge products are appended).
func (m *Matcher) cluster(clusters []*cluster) []*cluster {
	theta := m.cfg.Theta
	for {
		// Reset per-round flags (Algorithm 1, line 7).
		for _, c := range clusters {
			if !c.dead {
				c.merged, c.mergeCand = false, false
			}
		}

		// H_sim: all live pairs with similarity ≥ θ, best first (line 8).
		var h []pair
		for i := 0; i < len(clusters); i++ {
			if clusters[i].dead {
				continue
			}
			for j := i + 1; j < len(clusters); j++ {
				if clusters[j].dead {
					continue
				}
				if s := m.linkage(clusters[i], clusters[j]); s >= theta {
					h = append(h, pair{i: i, j: j, sim: s})
				}
			}
		}
		sort.Slice(h, func(a, b int) bool {
			if h[a].sim > h[b].sim {
				return true
			}
			if h[a].sim < h[b].sim {
				return false
			}
			if h[a].i != h[b].i {
				return h[a].i < h[b].i
			}
			return h[a].j < h[b].j
		})

		anyMerge, anyCand := false, false
		for _, p := range h {
			// Clusters consumed by a merge earlier in this round carry
			// merged == true and are handled by the cases below; they were
			// alive when H_sim was built.
			c1, c2 := clusters[p.i], clusters[p.j]
			switch {
			case !c1.merged && !c2.merged && c1.ga.CanMerge(c2.ga):
				// Merge c1 and c2 into a new cluster (lines 12–14).
				nc := &cluster{
					ga:         c1.ga.Union(c2.ga),
					names:      append(append([]int(nil), c1.names...), c2.names...),
					keep:       c1.keep || c2.keep,
					everMerged: true,
				}
				c1.merged, c2.merged = true, true
				c1.dead, c2.dead = true, true
				clusters = append(clusters, nc)
				anyMerge = true
			case c1.merged != c2.merged:
				// One of the pair was already consumed this round; keep the
				// other alive for the next round (lines 15–19).
				if c1.merged {
					c2.mergeCand = true
				} else {
					c1.mergeCand = true
				}
				anyCand = true
			}
		}

		// Prune clusters that can never merge: still-singleton, not a user
		// constraint, and not blocked by this round's merges (lines 20–22).
		for _, c := range clusters {
			if c.dead || c.keep || c.everMerged || c.mergeCand {
				continue
			}
			c.dead = true
		}

		if !anyMerge && !anyCand {
			return clusters
		}
	}
}
