package match

import (
	"math"

	"mube/internal/schema"
)

// This file implements the *pairwise* schema-matching baseline the paper
// positions µBE against (§8): traditional matchers such as Cupid or
// Similarity Flooding match two schemas at a time with an optimal 1:1
// assignment, and holistic mediation is then approximated by matching every
// source against a hub schema (a star topology). µBE's clustering needs no
// hub and no pairwise assignment; the baseline exists so the difference is
// measurable (exp.AblationPairwise).

// Assignment is an optimal 1:1 matching between the attributes of two
// sources.
type Assignment struct {
	// Pairs maps attribute indexes of the left source to attribute indexes
	// of the right source. Only pairs with similarity ≥ the threshold are
	// kept.
	Pairs map[int]int
	// Total is the summed similarity of the kept pairs.
	Total float64
}

// PairwiseMatch computes the maximum-weight 1:1 assignment between the
// schemas of sources a and b (Hungarian algorithm over the similarity
// matrix), keeping only pairs with similarity ≥ theta.
func (m *Matcher) PairwiseMatch(a, b schema.SourceID, theta float64) Assignment {
	na := m.u.Source(a).Schema.Len()
	nb := m.u.Source(b).Schema.Len()
	n := na
	if nb > n {
		n = nb
	}
	// Build a square cost matrix: we minimize (1 − sim); padding entries
	// cost 1 (similarity 0).
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i < na && j < nb {
				cost[i][j] = 1 - m.PairSim(
					schema.AttrRef{Source: a, Attr: i},
					schema.AttrRef{Source: b, Attr: j})
			} else {
				cost[i][j] = 1
			}
		}
	}
	match := hungarian(cost)
	out := Assignment{Pairs: make(map[int]int)}
	for i, j := range match {
		if i >= na || j >= nb {
			continue
		}
		sim := 1 - cost[i][j]
		if sim >= theta {
			out.Pairs[i] = j
			out.Total += sim
		}
	}
	return out
}

// StarMediate builds a mediated schema the traditional way: pick hub as the
// reference source and pairwise-match every other source in ids against it;
// the hub's attributes become the GAs and each source contributes its
// assigned attributes. Attributes that match nothing at the hub are dropped
// — the structural weakness µBE's holistic clustering avoids.
//
// The result honors the same β bound as clustering (GAs spanning fewer than
// β sources are dropped) so comparisons against Match(S) are fair.
func (m *Matcher) StarMediate(hub schema.SourceID, ids []schema.SourceID, theta float64, beta int) Result {
	nHub := m.u.Source(hub).Schema.Len()
	members := make([][]schema.AttrRef, nHub)
	for h := 0; h < nHub; h++ {
		members[h] = []schema.AttrRef{{Source: hub, Attr: h}}
	}
	for _, id := range ids {
		if id == hub {
			continue
		}
		as := m.PairwiseMatch(hub, id, theta)
		for h, j := range as.Pairs {
			members[h] = append(members[h], schema.AttrRef{Source: id, Attr: j})
		}
	}
	var gas []schema.GA
	for _, refs := range members {
		if len(refs) < beta {
			continue
		}
		gas = append(gas, schema.NewGA(refs...))
	}
	med := schema.NewMediated(gas...)
	res := Result{OK: true, Schema: med}
	if med.Len() > 0 {
		res.GAQuality = make([]float64, med.Len())
		sum := 0.0
		for i, g := range med.GAs {
			q := m.GAQuality(g)
			res.GAQuality[i] = q
			sum += q
		}
		res.Quality = sum / float64(med.Len())
	}
	return res
}

// BestStarMediate tries every source in ids as the hub and returns the
// mediation with the most attributes covered (ties broken by quality) —
// the strongest version of the star baseline.
func (m *Matcher) BestStarMediate(ids []schema.SourceID, theta float64, beta int) Result {
	var best Result
	bestCover := -1
	for _, hub := range ids {
		r := m.StarMediate(hub, ids, theta, beta)
		cover := 0
		for _, g := range r.Schema.GAs {
			cover += g.Size()
		}
		if cover > bestCover || (cover == bestCover && r.Quality > best.Quality) {
			best = r
			bestCover = cover
		}
	}
	return best
}

// hungarian solves the square assignment problem, returning for each row the
// assigned column, minimizing total cost. O(n³) implementation using the
// standard potentials-and-augmenting-paths formulation.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j (1-based)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}
