package match

import (
	"testing"

	"mube/internal/constraint"
	"mube/internal/minhash"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/testutil"
)

// hybridUniverse builds three sources where source 2 *renamed* its author
// attribute to a noise word ("gearbox") but still serves the same author
// values — invisible to name matching, obvious to data matching.
func hybridUniverse(t *testing.T) *source.Universe {
	t.Helper()
	u := source.NewUniverse(sigCfg)
	const k = 256
	add := func(name string, attrs []string, valueSets [][]uint64) {
		s := source.Uncooperative(name, schema.NewSchema(attrs...))
		s.AttrSignatures = make([]*minhash.Signature, len(attrs))
		for a, values := range valueSets {
			sig := minhash.MustNew(k, 0)
			for _, v := range values {
				sig.AddUint64(v)
			}
			s.AttrSignatures[a] = sig
		}
		if _, err := u.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	seq := func(lo, hi uint64) []uint64 {
		out := make([]uint64, 0, hi-lo)
		for x := lo; x < hi; x++ {
			out = append(out, x)
		}
		return out
	}
	authors := seq(0, 2000)       // shared author value space
	titles := seq(100000, 103000) // shared title value space
	noise := seq(900000, 900500)  // unrelated values

	add("a", []string{"author", "title"}, [][]uint64{authors, titles})
	add("b", []string{"author", "title"}, [][]uint64{authors, titles})
	add("c", []string{"gearbox", "title"}, [][]uint64{authors, titles}) // renamed author!
	add("d", []string{"gearbox"}, [][]uint64{noise})                    // genuine noise
	return u
}

func TestHybridRecoversRenamedAttribute(t *testing.T) {
	u := hybridUniverse(t)

	// Name-only matching cannot see that c.gearbox is an author attribute —
	// worse, it pairs c.gearbox with d.gearbox (identical names, unrelated
	// data).
	nameOnly := MustNew(u, Config{Theta: 0.5})
	res, err := nameOnly.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Schema.GAs {
		if g.Contains(ref(2, 0)) && g.Contains(ref(0, 0)) {
			t.Fatal("name-only matching recovered the renamed attribute — premise broken")
		}
	}

	// Hybrid matching folds in the value sketches: c.gearbox joins the
	// author GA, and the d.gearbox false friend is kept out at θ=0.5 with
	// w=0.5 (name sim 1, data sim ≈0 → combined ≈0.5... use w=0.6 to be
	// decisive).
	hybrid := MustNew(u, Config{Theta: 0.5, DataWeight: 0.6})
	res, err = hybrid.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	var authorGA *schema.GA
	for i := range res.Schema.GAs {
		if res.Schema.GAs[i].Contains(ref(0, 0)) {
			authorGA = &res.Schema.GAs[i]
		}
	}
	if authorGA == nil {
		t.Fatalf("no author GA in hybrid schema: %v", res.Schema)
	}
	if !authorGA.Contains(ref(2, 0)) {
		t.Errorf("hybrid matching missed the renamed author attribute: %v", authorGA)
	}
	if authorGA.Contains(ref(3, 0)) {
		t.Errorf("hybrid matching absorbed the unrelated gearbox attribute: %v", authorGA)
	}
}

func TestHybridPairSim(t *testing.T) {
	u := hybridUniverse(t)
	m := MustNew(u, Config{Theta: 0.5, DataWeight: 0.5})
	// Same name, same data → ≈1.
	if s := m.PairSim(ref(0, 0), ref(1, 0)); s < 0.95 {
		t.Errorf("identical attrs sim = %v", s)
	}
	// Different name, same data → ≈ w.
	if s := m.PairSim(ref(0, 0), ref(2, 0)); s < 0.4 || s > 0.6 {
		t.Errorf("renamed attr sim = %v, want ≈0.5", s)
	}
	// Same name, different data → ≈ 1−w.
	if s := m.PairSim(ref(2, 0), ref(3, 0)); s < 0.4 || s > 0.6 {
		t.Errorf("false-friend sim = %v, want ≈0.5", s)
	}
	// Different name, different data → ≈0.
	if s := m.PairSim(ref(0, 1), ref(3, 0)); s > 0.1 {
		t.Errorf("unrelated sim = %v", s)
	}
	if !testutil.AlmostEqual(m.PairSim(ref(0, 0), ref(0, 0)), 1) {
		t.Error("self similarity must be 1")
	}
}

func TestHybridValidation(t *testing.T) {
	u := hybridUniverse(t)
	if _, err := New(u, Config{DataWeight: -0.1}); err == nil {
		t.Error("negative data weight accepted")
	}
	if _, err := New(u, Config{DataWeight: 1.5}); err == nil {
		t.Error("data weight > 1 accepted")
	}
	// Missing sketches degrade gracefully to the name component.
	bare := source.NewUniverse(sigCfg)
	mustAdd(t, bare, source.Uncooperative("x", schema.NewSchema("title")))
	mustAdd(t, bare, source.Uncooperative("y", schema.NewSchema("title")))
	m, err := New(bare, Config{DataWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.PairSim(ref(0, 0), ref(1, 0)); !testutil.AlmostEqual(s, 0.5) {
		t.Errorf("sketch-less hybrid sim = %v, want name component only (0.5)", s)
	}
}

func TestHybridWithParamsSharesTable(t *testing.T) {
	u := hybridUniverse(t)
	m := MustNew(u, Config{Theta: 0.5, DataWeight: 0.6})
	m2, err := m.WithParams(0.7, 3, MaxLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(m2.PairSim(ref(0, 0), ref(2, 0)), m.PairSim(ref(0, 0), ref(2, 0))) {
		t.Error("WithParams changed the hybrid table")
	}
	if !testutil.AlmostEqual(m2.Theta(), 0.7) {
		t.Error("theta not applied")
	}
}

// mustAdd adds s to u, failing the test on any error.
func mustAdd(t testing.TB, u *source.Universe, s *source.Source) {
	t.Helper()
	if _, err := u.Add(s); err != nil {
		t.Fatal(err)
	}
}
