package match

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mube/internal/strutil"
)

// Inverted-index candidate generation for the shard-index build.
//
// The flat build tests all n(n−1)/2 similarity pairs against θ. That is the
// one remaining quadratic pass on the Internet-scale path — at 10⁶ sources
// even a deduplicated distinct-name table makes it millions of Sim lookups.
// But for the gram-set measures the repo actually clusters with, a pair can
// only reach θ > 0 if its similarity is positive, and:
//
//   - NGramJaccard/NGramDice are positive iff the two names share at least
//     one n-gram (set intersection in the numerator), and float32 conversion
//     maps exact 0 to exact 0;
//   - the hybrid blend (1−w)·nameSim + w·minhashJaccard is positive only if
//     the name component is (shared gram) or the data component is — and the
//     empty-aware OPH estimator is positive only when some occupied slot
//     holds the same minimum in both signatures (a shared (slot,min) band;
//     see minhash.Signature.Slots).
//
// So the θ-reachable pairs are covered by an inverted index: postings per
// n-gram (and, in hybrid mode, per MinHash band). Candidates are generated
// per id from the posting lists, scored against the packed table in parallel
// id blocks, and the surviving edges union-found in block order. Edge order
// cannot change the result — components are sets, and finishShardIndex
// numbers them by first-member order in the ascending id scan — which is
// exactly what the differential tests against the flat build pin.
//
// Measures outside the gram family (Levenshtein, JaroWinkler, custom Funcs)
// have no such zero-certificate, so buildShardIndex falls back to the flat
// loop for them.

// gramSize returns the n-gram size when the similarity measure is gram-set
// based — the envelope in which the inverted index is provably sound.
func gramSize(s strutil.Similarity) (int, bool) {
	switch m := s.(type) {
	case strutil.NGramJaccard:
		return m.N, m.N > 0
	case strutil.NGramDice:
		return m.N, m.N > 0
	}
	return 0, false
}

// bandKey mixes a (slot, min) pair into one map key. Collisions between
// different bands only add false candidates; the θ test filters them.
func bandKey(slot int, min uint64) uint64 {
	return min ^ (uint64(slot)+1)*0x9E3779B97F4A7C15
}

// collectEdgesIndexed runs the inverted-index candidate build, unioning every
// candidate pair at or above θ into parent. Returns false — with parent
// untouched — when the similarity measure is outside the index's soundness
// envelope and the caller must use the flat loop.
func (m *Matcher) collectEdgesIndexed(parent []int32) bool {
	gramN, ok := gramSize(m.cfg.Similarity)
	if !ok {
		return false
	}
	n := m.n
	if n == 0 {
		return true
	}

	// Posting lists. Ids are appended in ascending order (the outer loops run
	// over ids ascending), so every list is sorted and the per-id candidate
	// scan below can stop at the first j ≥ i.
	grams := make(map[string][]int32)
	if m.cfg.DataWeight == 0 {
		// Name mode: similarity ids are interned distinct names.
		for i, name := range m.names {
			for g := range strutil.NGrams(name, gramN) {
				grams[g] = append(grams[g], int32(i))
			}
		}
	} else {
		// Hybrid mode: one id per attribute; names repeat across attributes,
		// so gram sets per distinct name are computed once and fanned out.
		nameGrams := make(map[string][]string, len(m.names))
		for si, s := range m.u.Sources() {
			for ai := 0; ai < s.Schema.Len(); ai++ {
				id := int32(m.simID[si][ai])
				norm := strutil.Normalize(s.Schema.Name(ai))
				gs, ok := nameGrams[norm]
				if !ok {
					for g := range strutil.NGrams(norm, gramN) {
						gs = append(gs, g)
					}
					nameGrams[norm] = gs
				}
				for _, g := range gs {
					grams[g] = append(grams[g], id)
				}
			}
		}
	}
	var bands map[uint64][]int32
	if m.cfg.DataWeight > 0 {
		bands = make(map[uint64][]int32)
		for si, s := range m.u.Sources() {
			for ai := 0; ai < s.Schema.Len(); ai++ {
				sig := s.AttrSignature(ai)
				if sig == nil {
					continue
				}
				id := int32(m.simID[si][ai])
				sig.Slots(func(slot int, min uint64) bool {
					k := bandKey(slot, min)
					bands[k] = append(bands[k], id)
					return true
				})
			}
		}
	}

	// Per-id posting lists, so the scoring phase never touches the maps.
	// lists[i] holds the posting lists id i appears in.
	lists := make([][][]int32, n)
	appendList := func(post []int32) {
		if len(post) < 2 {
			return // a singleton posting can never produce a pair
		}
		for _, id := range post {
			lists[id] = append(lists[id], post)
		}
	}
	for _, post := range grams {
		appendList(post)
	}
	for _, post := range bands {
		appendList(post)
	}

	// Parallel blocked scoring: split the id range into blocks, score each
	// block's candidates independently (per-worker visited stamps dedupe the
	// posting-list union), then apply the surviving edges in block order.
	// Scheduling affects nothing observable: edges land in per-block slots
	// and the candidate counter is a commutative sum.
	workers := runtime.GOMAXPROCS(0)
	const blockSize = 256
	nBlocks := (n + blockSize - 1) / blockSize
	if workers > nBlocks {
		workers = nBlocks
	}
	edges := make([][]int32, nBlocks) // flattened (j,i) pairs per block
	tested := make([]uint64, nBlocks)
	theta := m.cfg.Theta
	// seen is per worker, not per block: stamps are keyed by the probing id i,
	// which is unique across blocks, so a worker can reuse one array.
	scoreBlock := func(b int, seen []int32) {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > n {
			hi = n
		}
		var out []int32
		var count uint64
		for i := lo; i < hi; i++ {
			for _, post := range lists[i] {
				for _, j := range post {
					if int(j) >= i {
						break // sorted: the rest of the list is ≥ i
					}
					if seen[j] == int32(i) {
						continue
					}
					seen[j] = int32(i)
					count++
					// Same comparison the linkage performs: widen to float64.
					if float64(m.table[m.packed(int(j), i)]) >= theta {
						out = append(out, j, int32(i))
					}
				}
			}
		}
		edges[b] = out
		tested[b] = count
	}
	newSeen := func() []int32 {
		seen := make([]int32, n)
		for i := range seen {
			seen[i] = -1
		}
		return seen
	}
	if workers <= 1 {
		seen := newSeen()
		for b := 0; b < nBlocks; b++ {
			scoreBlock(b, seen)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				seen := newSeen()
				for {
					b := int(cursor.Add(1)) - 1
					if b >= nBlocks {
						return
					}
					scoreBlock(b, seen)
				}
			}()
		}
		wg.Wait()
	}

	total := uint64(0)
	for b := 0; b < nBlocks; b++ {
		total += tested[b]
		out := edges[b]
		for k := 0; k < len(out); k += 2 {
			ri, rj := ufFind(parent, out[k]), ufFind(parent, out[k+1])
			if ri != rj {
				parent[rj] = ri
			}
		}
	}
	pairCandidates.Add(total)
	return true
}

// SimIDs returns the number of distinct similarity ids the matcher scores
// over (distinct normalized names in name mode, attributes in hybrid mode).
// n·(n−1)/2 over this count is the flat shard-index pair total that
// PairCandidates is measured against.
func (m *Matcher) SimIDs() int { return m.n }
