package match

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mube/internal/constraint"
	"mube/internal/schema"
	"mube/internal/source"
)

// randomUniverse builds a universe mixing two name families that never cross
// the θ=0.45 similarity threshold, so the shard index has at least two base
// shards, plus noise attributes.
func randomUniverse(t *testing.T, r *rand.Rand, n int) *source.Universe {
	t.Helper()
	books := []string{"title", "book title", "author", "author name", "writer", "price", "price range"}
	flights := []string{"departure", "departure time", "arrival", "arrival gate", "carrier"}
	noise := []string{"zebra", "quux", "xylophone"}
	var schemas [][]string
	for i := 0; i < n; i++ {
		vocab := books
		if i%2 == 1 {
			vocab = flights
		}
		k := 1 + r.Intn(4)
		seen := map[string]bool{}
		var attrs []string
		for len(attrs) < k {
			w := vocab[r.Intn(len(vocab))]
			if r.Intn(8) == 0 {
				w = noise[r.Intn(len(noise))]
			}
			if !seen[w] {
				seen[w] = true
				attrs = append(attrs, w)
			}
		}
		schemas = append(schemas, attrs)
	}
	return universe(t, schemas...)
}

// subset draws k distinct sorted ids from [0, n).
func subset(r *rand.Rand, n, k int) []schema.SourceID {
	perm := r.Perm(n)
	out := make([]schema.SourceID, 0, k)
	for _, p := range perm[:k] {
		out = append(out, schema.SourceID(p))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestScoreMatchesMatch pins the lean Score path to the full Match path: the
// quality must be bit-identical (both sum per-GA qualities in the canonical
// GA order) and the validity bit must agree.
func TestScoreMatchesMatch(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(8)
		u := randomUniverse(t, r, n)
		m := MustNew(u, Config{Theta: 0.45})
		var cons constraint.Set
		if seed%2 == 0 {
			cons.Sources = subset(r, n, 1)
		}
		if seed%3 == 0 {
			s1 := int(subset(r, n, 1)[0])
			s2 := (s1 + 1) % n
			cons.GAs = []schema.GA{schema.NewGA(ref(s1, 0), ref(s2, 0))}
		}
		for trial := 0; trial < 10; trial++ {
			ids := subset(r, n, 2+r.Intn(n-2))
			if !cons.SatisfiedBy(ids) {
				continue
			}
			res, err := m.Match(ids, cons)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			q, ok, err := m.Score(ids, cons)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if ok != res.OK || math.Float64bits(q) != math.Float64bits(res.Quality) {
				t.Fatalf("seed %d ids %v: Score = (%v, %v), Match = (%v, %v)",
					seed, ids, q, ok, res.Quality, res.OK)
			}
		}
	}
}

// flipped returns base+{add}−{drop} sorted; add/drop < 0 mean "none".
func flipped(base []schema.SourceID, add, drop schema.SourceID) []schema.SourceID {
	out := make([]schema.SourceID, 0, len(base)+1)
	for _, s := range base {
		if s != drop {
			out = append(out, s)
		}
	}
	if add >= 0 {
		out = append(out, add)
		for j := len(out) - 1; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestShardedScoreFlipMatchesMatch is the differential test of the sharded
// scorer: for random bases and every single-flip candidate, ScoreFlip must be
// bit-identical to the unsharded Match on the flipped set — including after
// Rebase moves the cached base.
func TestShardedScoreFlipMatchesMatch(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		n := 8 + r.Intn(8)
		u := randomUniverse(t, r, n)
		m := MustNew(u, Config{Theta: 0.45})
		var cons constraint.Set
		if seed%2 == 0 {
			cons.Sources = subset(r, n, 1)
		}
		if seed%3 == 0 {
			// A GA constraint spanning the two name families bridges shards.
			s1 := 2 * (r.Intn(n/2) / 1)
			s1 = s1 % n
			s2 := (s1 + 1) % n
			cons.GAs = []schema.GA{schema.NewGA(ref(s1, 0), ref(s2, 0))}
		}
		sh := m.NewSharded(cons)
		if sh.NumShards() < 2 && len(cons.GAs) == 0 {
			t.Fatalf("seed %d: expected ≥ 2 shards, got %d", seed, sh.NumShards())
		}

		var base []schema.SourceID
		for {
			base = subset(r, n, 3+r.Intn(n-3))
			if cons.SatisfiedBy(base) {
				break
			}
		}
		b, err := sh.NewBase(base)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		check := func(add, drop schema.SourceID) {
			t.Helper()
			cand := flipped(b.Base(), add, drop)
			if !cons.SatisfiedBy(cand) {
				return
			}
			res, err := m.Match(cand, cons)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			q, ok := b.ScoreFlip(add, drop)
			if ok != res.OK || math.Float64bits(q) != math.Float64bits(res.Quality) {
				t.Fatalf("seed %d base %v flip(+%d,-%d): ScoreFlip = (%v, %v), Match = (%v, %v)",
					seed, b.Base(), add, drop, q, ok, res.Quality, res.OK)
			}
		}

		inBase := func(s schema.SourceID) bool {
			for _, x := range b.Base() {
				if x == s {
					return true
				}
			}
			return false
		}
		// Every add, every drop, and a few swaps.
		for s := schema.SourceID(0); int(s) < n; s++ {
			if inBase(s) {
				check(-1, s)
			} else {
				check(s, -1)
				if len(b.Base()) > 0 {
					check(s, b.Base()[r.Intn(len(b.Base()))])
				}
			}
		}

		// Rebase onto an accepted flip and re-verify.
		var add, drop schema.SourceID = -1, -1
		for s := schema.SourceID(0); int(s) < n; s++ {
			if !inBase(s) {
				add = s
				break
			}
		}
		next := flipped(b.Base(), add, drop)
		if cons.SatisfiedBy(next) {
			if err := b.Rebase(next); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for s := schema.SourceID(0); int(s) < n; s++ {
				if inBase(s) {
					check(-1, s)
				} else {
					check(s, -1)
				}
			}
		}
	}
}

// TestScoreFlipConcurrent exercises ScoreFlip from many goroutines against
// one cached base; the race detector validates the purity contract and every
// goroutine must see identical bits.
func TestScoreFlipConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	u := randomUniverse(t, r, 12)
	m := MustNew(u, Config{Theta: 0.45})
	sh := m.NewSharded(constraint.Set{})
	b, err := sh.NewBase(subset(r, 12, 6))
	if err != nil {
		t.Fatal(err)
	}
	type flip struct{ add, drop schema.SourceID }
	flips := []flip{{-1, b.Base()[0]}, {-1, b.Base()[3]}}
	for s := schema.SourceID(0); int(s) < 12; s++ {
		in := false
		for _, x := range b.Base() {
			if x == s {
				in = true
			}
		}
		if !in {
			flips = append(flips, flip{s, -1}, flip{s, b.Base()[1]})
		}
	}
	want := make([]uint64, len(flips))
	for i, f := range flips {
		q, _ := b.ScoreFlip(f.add, f.drop)
		want[i] = math.Float64bits(q)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, f := range flips {
				q, _ := b.ScoreFlip(f.add, f.drop)
				if math.Float64bits(q) != want[i] {
					t.Errorf("flip %d: concurrent bits differ", i)
				}
			}
		}()
	}
	wg.Wait()
}

// TestSourceGroupsPartition checks that SourceGroups is a partition of the
// universe and that sources from different groups never share a GA.
func TestSourceGroupsPartition(t *testing.T) {
	// No shared noise words: a word appearing in sources of both families
	// would link their shards through co-occurrence and collapse the groups.
	books := []string{"title", "book title", "author", "author name"}
	flights := []string{"departure", "departure time", "arrival", "carrier"}
	r := rand.New(rand.NewSource(3))
	var schemas [][]string
	for i := 0; i < 14; i++ {
		vocab := books
		if i%2 == 1 {
			vocab = flights
		}
		k := 1 + r.Intn(3)
		seen := map[string]bool{}
		var attrs []string
		for len(attrs) < k {
			w := vocab[r.Intn(len(vocab))]
			if !seen[w] {
				seen[w] = true
				attrs = append(attrs, w)
			}
		}
		schemas = append(schemas, attrs)
	}
	u := universe(t, schemas...)
	m := MustNew(u, Config{Theta: 0.45})
	sh := m.NewSharded(constraint.Set{})
	groups := sh.SourceGroups()
	if len(groups) < 2 {
		t.Fatalf("expected ≥ 2 groups, got %d", len(groups))
	}
	seen := map[schema.SourceID]int{}
	for gi, g := range groups {
		for _, s := range g {
			if prev, dup := seen[s]; dup {
				t.Fatalf("source %d in groups %d and %d", s, prev, gi)
			}
			seen[s] = gi
		}
	}
	if len(seen) != u.Len() {
		t.Fatalf("groups cover %d of %d sources", len(seen), u.Len())
	}
	res, err := m.Match(u.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Schema.GAs {
		refs := g.Refs()
		for _, rr := range refs[1:] {
			if seen[rr.Source] != seen[refs[0].Source] {
				t.Fatalf("GA %v spans groups %d and %d", g, seen[refs[0].Source], seen[rr.Source])
			}
		}
	}
}
