package match

import (
	"math/rand"
	"slices"
	"testing"

	"mube/internal/constraint"
	"mube/internal/schema"
	"mube/internal/strutil"
)

// shardIndexEqual compares two shard indexes field by field.
func shardIndexEqual(t *testing.T, label string, a, b shardIndex) {
	t.Helper()
	if a.nShards != b.nShards {
		t.Fatalf("%s: nShards %d vs %d", label, a.nShards, b.nShards)
	}
	if !slices.Equal(a.shardOf, b.shardOf) {
		t.Fatalf("%s: shardOf differs:\n%v\n%v", label, a.shardOf, b.shardOf)
	}
	if !slices.Equal(a.srcOff, b.srcOff) || !slices.Equal(a.srcShards, b.srcShards) {
		t.Fatalf("%s: per-source shard lists differ", label)
	}
}

// flatIndexed returns a matcher identical to m whose cached shard index was
// built with the flat O(n²) reference loop, so every public path (Sharded,
// SourceGroups, ScoreFlip) can be differentially tested against it.
func flatIndexed(m *Matcher) *Matcher {
	clone := *m
	clone.shardc = &shardCache{}
	clone.shardc.once.Do(func() { clone.shardc.idx = clone.buildShardIndexFlat() })
	return &clone
}

// TestShardIndexIndexedMatchesFlat is the candidate-generation differential:
// on seeded universes across θ values, the inverted-index build and the flat
// all-pairs build produce identical components — same labels, same
// per-source lists.
func TestShardIndexIndexedMatchesFlat(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		u := randomUniverse(t, rand.New(rand.NewSource(seed)), 40)
		for _, theta := range []float64{0.3, 0.45, 0.7} {
			m := MustNew(u, Config{Theta: theta})
			fast := m.buildShardIndex()
			flat := m.buildShardIndexFlat()
			shardIndexEqual(t, "name mode", fast, flat)
		}
	}
}

// TestShardIndexHybridMatchesFlat runs the same differential in hybrid
// (data-weighted) mode, where candidates come from name grams and MinHash
// bands.
func TestShardIndexHybridMatchesFlat(t *testing.T) {
	u := hybridUniverse(t)
	for _, w := range []float64{0.3, 0.6, 1.0} {
		m := MustNew(u, Config{Theta: 0.5, DataWeight: w})
		fast := m.buildShardIndex()
		flat := m.buildShardIndexFlat()
		shardIndexEqual(t, "hybrid mode", fast, flat)
	}
}

// TestShardIndexCustomMeasureFallsBack pins the soundness envelope: a
// similarity measure without a zero-certificate must take the flat route —
// trivially equal, and correct for measures like Levenshtein that are
// positive for names sharing no gram.
func TestShardIndexCustomMeasureFallsBack(t *testing.T) {
	u := randomUniverse(t, rand.New(rand.NewSource(1)), 20)
	m := MustNew(u, Config{Theta: 0.45, Similarity: strutil.LevenshteinSim{}})
	if _, ok := gramSize(m.cfg.Similarity); ok {
		t.Fatal("LevenshteinSim must be outside the gram-index envelope")
	}
	parent := newUnionFind(m.n)
	if m.collectEdgesIndexed(parent) {
		t.Fatal("collectEdgesIndexed accepted a custom measure")
	}
	shardIndexEqual(t, "fallback", m.buildShardIndex(), m.buildShardIndexFlat())
}

// TestSourceGroupsMatchFlatWithOverlays compares the public decomposition —
// with and without constraint GA overlays bridging shards — between the
// indexed and flat builds.
func TestSourceGroupsMatchFlatWithOverlays(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		u := randomUniverse(t, r, 30)
		m := MustNew(u, Config{Theta: 0.45})
		fm := flatIndexed(m)
		overlays := []constraint.Set{
			{},
			{GAs: []schema.GA{schema.NewGA(ref(0, 0), ref(1, 0))}}, // bridges book/flight shards
		}
		for ci, cons := range overlays {
			got := m.NewSharded(cons).SourceGroups()
			want := fm.NewSharded(cons).SourceGroups()
			if len(got) != len(want) {
				t.Fatalf("seed %d overlay %d: %d groups vs %d", seed, ci, len(got), len(want))
			}
			for gi := range got {
				if !slices.Equal(got[gi], want[gi]) {
					t.Fatalf("seed %d overlay %d group %d: %v vs %v", seed, ci, gi, got[gi], want[gi])
				}
			}
		}
	}
}

// TestPairCandidatesSubQuadratic pins the point of the index: on a
// many-domain universe the candidate count is well below the flat pair
// total, and the counter advances for both routes.
func TestPairCandidatesSubQuadratic(t *testing.T) {
	// Vocabulary-disjoint domains: names from different domains share no
	// gram, so candidates stay within domains while the flat total spans all.
	var schemas [][]string
	vocab := [][]string{
		{"alpha one", "alpha two", "alpha three", "alpha four"},
		{"birch xylem", "birch phloem", "birch bark", "birch root"},
		{"corvid wing", "corvid beak", "corvid claw", "corvid tail"},
		{"delta flow", "delta silt", "delta marsh", "delta fan"},
	}
	for _, words := range vocab {
		for i := 0; i < 3; i++ {
			schemas = append(schemas, words)
		}
	}
	u := universe(t, schemas...)
	m := MustNew(u, Config{Theta: 0.45})

	before := PairCandidates()
	m.buildShardIndex()
	indexed := PairCandidates() - before
	n := uint64(m.SimIDs())
	flatTotal := n * (n - 1) / 2
	if indexed == 0 {
		t.Fatal("indexed build tested no pairs")
	}
	if indexed >= flatTotal {
		t.Fatalf("indexed build tested %d pairs, not sub-quadratic vs %d", indexed, flatTotal)
	}

	before = PairCandidates()
	m.buildShardIndexFlat()
	if got := PairCandidates() - before; got != flatTotal {
		t.Fatalf("flat build counted %d pairs, want %d", got, flatTotal)
	}
}
