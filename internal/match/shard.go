package match

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"mube/internal/constraint"
	"mube/internal/schema"
)

// Cluster-sharded candidate scoring.
//
// Algorithm 1 only merges clusters whose similarity reaches θ, and (for both
// linkages) a cluster pair at or above θ implies at least one attribute pair
// at or above θ. Clusters therefore never span connected components of the
// θ-thresholded similarity graph over similarity ids, and clustering each
// component ("shard") independently is bit-identical to clustering globally:
// merges, merge-candidate flags, and pruning are all component-local, and the
// extra quiet rounds one component sits through while another keeps merging
// are no-ops on its terminal state. GA constraints are the one cross-shard
// bridge — a constraint GA seeds one cluster whose members may span shards —
// so shards bridged by a constraint are fused into one overlay shard.
//
// A flip candidate S ± {s} then only needs the shards s touches re-clustered;
// every other shard's GAs and qualities are reused from the cached base. The
// final F1(S) sum runs over the k-way merge of the per-shard canonically
// sorted GA streams, which reproduces the global canonical order — and so the
// exact float bit pattern — of the unsharded path.

// shardScores counts sharded flip scorings; shardRescans counts the shard
// cluster runs they triggered. Their ratio against the base shard count is
// the pruning win: rescans/scores ≪ shards means most work is reused.
// pairCandidates counts similarity pairs actually tested against θ during
// shard-index builds; ≪ n(n−1)/2 demonstrates sub-quadratic candidate
// generation (the flat fallback adds the full pair count, so the metric is
// comparable either way).
var (
	shardScores    atomic.Uint64
	shardRescans   atomic.Uint64
	pairCandidates atomic.Uint64
)

// ShardScores returns the total number of sharded flip scorings performed by
// this process. Monotonic; not resettable.
func ShardScores() uint64 { return shardScores.Load() }

// ShardRescans returns the total number of per-shard cluster re-runs
// performed by sharded flip scorings. Monotonic; not resettable.
func ShardRescans() uint64 { return shardRescans.Load() }

// PairCandidates returns the total number of similarity pairs tested against
// θ by shard-index builds in this process. Monotonic; not resettable.
func PairCandidates() uint64 { return pairCandidates.Load() }

// shardCache lazily holds a matcher's shard index. θ determines the graph,
// so WithParams clones carry a fresh cache.
type shardCache struct {
	once sync.Once
	idx  shardIndex
}

// shardIndex partitions similarity ids into the connected components of the
// θ-thresholded similarity graph, with flat per-source component lists.
type shardIndex struct {
	shardOf   []int32 // similarity id -> shard
	nShards   int
	srcOff    []int32 // source id -> [srcOff[s], srcOff[s+1]) into srcShards
	srcShards []int32 // sorted distinct shards touched by each source
}

// shardIdx returns the matcher's shard index, building it on first use.
func (m *Matcher) shardIdx() *shardIndex {
	m.shardc.once.Do(func() { m.shardc.idx = m.buildShardIndex() })
	return &m.shardc.idx
}

// ufFind is path-halving find over a union-find parent array.
func ufFind(parent []int32, x int32) int32 {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// buildShardIndex computes the θ-component index. Candidate pairs come from
// the inverted gram/band index when the similarity measure supports it (see
// candidatePairs); otherwise from the flat all-pairs loop. Both routes feed
// the same union-find, and components are numbered by first-member order in
// the ascending id scan, so the resulting index is identical no matter which
// route — or which edge order — produced the edges; candidates.go's
// differential tests pin this.
func (m *Matcher) buildShardIndex() shardIndex {
	parent := newUnionFind(m.n)
	if !m.collectEdgesIndexed(parent) {
		m.collectEdgesFlat(parent)
	}
	return m.finishShardIndex(parent)
}

// buildShardIndexFlat is the reference O(n²) build, kept as the fallback for
// similarity measures without a candidate index and as the oracle for the
// differential tests.
func (m *Matcher) buildShardIndexFlat() shardIndex {
	parent := newUnionFind(m.n)
	m.collectEdgesFlat(parent)
	return m.finishShardIndex(parent)
}

func newUnionFind(n int) []int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	return parent
}

// collectEdgesFlat unions every pair at or above θ by brute force.
func (m *Matcher) collectEdgesFlat(parent []int32) {
	n := m.n
	theta := m.cfg.Theta
	pairCandidates.Add(uint64(n) * uint64(n-1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Same comparison the linkage performs: widen to float64 first.
			if float64(m.table[m.packed(i, j)]) >= theta {
				ri, rj := ufFind(parent, int32(i)), ufFind(parent, int32(j))
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}
}

// finishShardIndex labels the components and builds the per-source lists.
func (m *Matcher) finishShardIndex(parent []int32) shardIndex {
	n := m.n
	idx := shardIndex{shardOf: make([]int32, n)}
	rootID := make([]int32, n)
	for i := range rootID {
		rootID[i] = -1
	}
	for i := 0; i < n; i++ {
		r := ufFind(parent, int32(i))
		if rootID[r] == -1 {
			rootID[r] = int32(idx.nShards)
			idx.nShards++
		}
		idx.shardOf[i] = rootID[r]
	}

	nSrc := m.u.Len()
	idx.srcOff = make([]int32, nSrc+1)
	var tmp []int32
	for s := 0; s < nSrc; s++ {
		tmp = tmp[:0]
		for _, sim := range m.simID[s] {
			tmp = append(tmp, idx.shardOf[sim])
		}
		slices.Sort(tmp)
		tmp = slices.Compact(tmp)
		idx.srcShards = append(idx.srcShards, tmp...)
		idx.srcOff[s+1] = int32(len(idx.srcShards))
	}
	return idx
}

// Sharded binds a matcher's shard index to one constraint set: base shards
// bridged by a GA constraint are fused into overlay shards, and every
// constraint GA is assigned to its (single) overlay shard. A Sharded is
// read-only after construction and safe for concurrent use.
type Sharded struct {
	m    *Matcher
	cons constraint.Set
	idx  *shardIndex

	nShards   int
	overlayOf []int32 // base shard -> overlay shard; nil when identity
	gaShard   []int32 // cons.GAs[k] -> overlay shard
	srcOff    []int32
	srcShards []int32
}

// NewSharded builds the constraint-overlaid shard view for cons.
func (m *Matcher) NewSharded(cons constraint.Set) *Sharded {
	idx := m.shardIdx()
	sh := &Sharded{m: m, cons: cons.Clone(), idx: idx}

	parent := make([]int32, idx.nShards)
	for i := range parent {
		parent[i] = int32(i)
	}
	for _, g := range cons.GAs {
		refs := g.Refs()
		r0 := ufFind(parent, idx.shardOf[m.simID[refs[0].Source][refs[0].Attr]])
		for _, r := range refs[1:] {
			rk := ufFind(parent, idx.shardOf[m.simID[r.Source][r.Attr]])
			if rk != r0 {
				parent[rk] = r0
			}
		}
	}
	overlayOf := make([]int32, idx.nShards)
	rootID := make([]int32, idx.nShards)
	for i := range rootID {
		rootID[i] = -1
	}
	identity := true
	for i := 0; i < idx.nShards; i++ {
		r := ufFind(parent, int32(i))
		if rootID[r] == -1 {
			rootID[r] = int32(sh.nShards)
			sh.nShards++
		}
		overlayOf[i] = rootID[r]
		if overlayOf[i] != int32(i) {
			identity = false
		}
	}
	if identity {
		// Common case (no cross-shard constraints): share the index's flat
		// per-source lists instead of remapping 100k of them.
		sh.srcOff, sh.srcShards = idx.srcOff, idx.srcShards
	} else {
		sh.overlayOf = overlayOf
		nSrc := m.u.Len()
		sh.srcOff = make([]int32, nSrc+1)
		var tmp []int32
		for s := 0; s < nSrc; s++ {
			tmp = tmp[:0]
			for _, bs := range idx.srcShards[idx.srcOff[s]:idx.srcOff[s+1]] {
				tmp = append(tmp, overlayOf[bs])
			}
			slices.Sort(tmp)
			tmp = slices.Compact(tmp)
			sh.srcShards = append(sh.srcShards, tmp...)
			sh.srcOff[s+1] = int32(len(sh.srcShards))
		}
	}
	sh.gaShard = make([]int32, len(cons.GAs))
	for k, g := range cons.GAs {
		r := g.Refs()[0]
		sh.gaShard[k] = sh.overlay(idx.shardOf[m.simID[r.Source][r.Attr]])
	}
	return sh
}

func (sh *Sharded) overlay(base int32) int32 {
	if sh.overlayOf == nil {
		return base
	}
	return sh.overlayOf[base]
}

// NumShards returns the number of overlay shards.
func (sh *Sharded) NumShards() int { return sh.nShards }

// shardOfAttr returns the overlay shard of one attribute.
func (sh *Sharded) shardOfAttr(r schema.AttrRef) int32 {
	return sh.overlay(sh.idx.shardOf[sh.m.simID[r.Source][r.Attr]])
}

// sourceShards returns the sorted distinct overlay shards source s touches.
func (sh *Sharded) sourceShards(s schema.SourceID) []int32 {
	return sh.srcShards[sh.srcOff[s]:sh.srcOff[s+1]]
}

func containsShard(list []int32, k int32) bool {
	for _, x := range list {
		if x == k {
			return true
		}
	}
	return false
}

// SourceGroups partitions the universe's sources into independent groups: two
// sources share a group iff they touch a common overlay shard (transitively).
// Clustering — and hence Match quality — of a source set decomposes over
// these groups, which is what the partitioned solve mode exploits. Groups are
// ordered by their smallest source id; sources within a group are ascending.
func (sh *Sharded) SourceGroups() [][]schema.SourceID {
	parent := make([]int32, sh.nShards)
	for i := range parent {
		parent[i] = int32(i)
	}
	nSrc := sh.m.u.Len()
	for s := 0; s < nSrc; s++ {
		list := sh.sourceShards(schema.SourceID(s))
		if len(list) < 2 {
			continue
		}
		r0 := ufFind(parent, list[0])
		for _, k := range list[1:] {
			rk := ufFind(parent, k)
			if rk != r0 {
				parent[rk] = r0
			}
		}
	}
	groupOf := make(map[int32]int)
	var groups [][]schema.SourceID
	for s := 0; s < nSrc; s++ {
		list := sh.sourceShards(schema.SourceID(s))
		if len(list) == 0 {
			// A source with no attributes forms its own group.
			groups = append(groups, []schema.SourceID{schema.SourceID(s)})
			continue
		}
		r := ufFind(parent, list[0])
		gi, ok := groupOf[r]
		if !ok {
			gi = len(groups)
			groupOf[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], schema.SourceID(s))
	}
	return groups
}

// seedShard seeds sc with shard's slice of Algorithm 1's initial clusters:
// the constraint GAs assigned to the shard, then the singleton clusters of
// every base attribute whose similarity id lies in the shard, in base order.
// This is exactly the restriction of seedInto's output to the shard, in the
// same relative order.
func (sh *Sharded) seedShard(sc *matchScratch, base []schema.SourceID, shard int32) {
	m := sh.m
	total := 0
	for k := range sh.cons.GAs {
		if sh.gaShard[k] == shard {
			total++
		}
	}
	for _, id := range base {
		if containsShard(sh.sourceShards(id), shard) {
			total += m.u.Source(id).Schema.Len()
		}
	}
	sc.reserve(total)

	for k, g := range sh.cons.GAs {
		if sh.gaShard[k] != shard {
			continue
		}
		c := sc.alloc()
		c.ga = g
		c.keep = true
		for _, r := range g.Refs() {
			sc.inCons[r] = struct{}{}
		}
		c.names = sc.seedNames(m, g)
		sc.clusters = append(sc.clusters, c)
	}
	for _, id := range base {
		if !containsShard(sh.sourceShards(id), shard) {
			continue
		}
		n := m.u.Source(id).Schema.Len()
		for a := 0; a < n; a++ {
			r := schema.AttrRef{Source: id, Attr: a}
			if sh.shardOfAttr(r) != shard {
				continue
			}
			if _, taken := sc.inCons[r]; taken {
				continue
			}
			c := sc.alloc()
			c.ga = sc.seedRef(r)
			c.names = sc.seedNames(m, c.ga)
			sc.clusters = append(sc.clusters, c)
		}
	}
}

// shardResult caches one shard's clustering outcome on a base subset. All
// memory is owned (deep-copied out of the scratch arenas).
type shardResult struct {
	gas     []schema.GA // canonical order
	quals   []float64   // GAQuality aligned with gas
	refs    []schema.AttrRef
	covered []bool // which cons.Sources this shard's GAs cover
}

// ShardedBase caches the per-shard clustering of one base subset so flip
// candidates off that base only re-cluster the shards the flipped source
// touches. Construction and Rebase mutate the cache and must be serialized
// by the caller; ScoreFlip is a pure read and safe to call concurrently.
type ShardedBase struct {
	sh   *Sharded
	base []schema.SourceID // sorted ascending
	res  map[int32]*shardResult
}

// NewBase clusters every shard the base touches and caches the results. The
// base must be sorted ascending and contain every source cons requires.
func (sh *Sharded) NewBase(base []schema.SourceID) (*ShardedBase, error) {
	if !sh.cons.SatisfiedBy(base) {
		return nil, fmt.Errorf("match: base %v does not contain all required sources %v",
			base, sh.cons.RequiredSources())
	}
	b := &ShardedBase{
		sh:   sh,
		base: append([]schema.SourceID(nil), base...),
		res:  make(map[int32]*shardResult),
	}
	sc := sh.m.scratch()
	defer sh.m.release(sc)
	sc.reset()
	for _, k := range b.touched(sc, b.base) {
		b.res[k] = b.computeShard(sc, k, b.base)
	}
	return b, nil
}

// Base returns the cached base subset. The returned slice must not be
// modified.
func (b *ShardedBase) Base() []schema.SourceID { return b.base }

// touched returns the sorted distinct shards the sources of ids touch, using
// sc.shards as scratch.
func (b *ShardedBase) touched(sc *matchScratch, ids []schema.SourceID) []int32 {
	out := sc.shards[:0]
	for _, s := range ids {
		out = append(out, b.sh.sourceShards(s)...)
	}
	slices.Sort(out)
	out = slices.Compact(out)
	sc.shards = out
	return out
}

// computeShard clusters one shard on base and deep-copies the result out of
// the scratch. sc.gas/sc.quals are rolled back to their pre-call lengths.
func (b *ShardedBase) computeShard(sc *matchScratch, shard int32, base []schema.SourceID) *shardResult {
	start := len(sc.gas)
	sc.resetRun()
	b.sh.seedShard(sc, base, shard)
	b.sh.m.rounds(sc)
	b.sh.m.collectInto(sc, start)

	seg, qs := sc.gas[start:], sc.quals[start:]
	r := &shardResult{}
	total := 0
	for _, g := range seg {
		total += g.Size()
	}
	r.refs = make([]schema.AttrRef, 0, total)
	r.gas = make([]schema.GA, len(seg))
	for i, g := range seg {
		s0 := len(r.refs)
		r.refs = append(r.refs, g.Refs()...)
		r.gas[i] = schema.GAFromSorted(r.refs[s0:len(r.refs):len(r.refs)])
	}
	r.quals = append([]float64(nil), qs...)
	r.covered = make([]bool, len(b.sh.cons.Sources))
	for i, s := range b.sh.cons.Sources {
		for _, g := range r.gas {
			if g.HasSource(s) {
				r.covered[i] = true
				break
			}
		}
	}
	sc.gas = sc.gas[:start]
	sc.quals = sc.quals[:start]
	return r
}

// Rebase moves the cache to newBase (sorted ascending), re-clustering only
// the shards touched by sources that entered or left the base.
func (b *ShardedBase) Rebase(newBase []schema.SourceID) error {
	if !b.sh.cons.SatisfiedBy(newBase) {
		return fmt.Errorf("match: base %v does not contain all required sources %v",
			newBase, b.sh.cons.RequiredSources())
	}
	sc := b.sh.m.scratch()
	defer b.sh.m.release(sc)
	sc.reset()

	// Symmetric difference of two sorted id lists.
	changed := sc.ids[:0]
	i, j := 0, 0
	for i < len(b.base) || j < len(newBase) {
		switch {
		case j >= len(newBase) || (i < len(b.base) && b.base[i] < newBase[j]):
			changed = append(changed, b.base[i])
			i++
		case i >= len(b.base) || newBase[j] < b.base[i]:
			changed = append(changed, newBase[j])
			j++
		default:
			i, j = i+1, j+1
		}
	}
	sc.ids = changed

	b.base = append(b.base[:0], newBase...)
	for _, k := range b.touched(sc, changed) {
		shardRescans.Add(1)
		b.res[k] = b.computeShard(sc, k, b.base)
	}
	return nil
}

// gaStream is one sorted GA stream of the k-way score merge.
type gaStream struct {
	gas   []schema.GA
	quals []float64
	pos   int
}

// ScoreFlip scores the candidate base+{add}−{drop} (either may be negative
// for "none"), re-clustering only the shards add and drop touch and reusing
// the cached results everywhere else. The returned quality and validity are
// bit-identical to Matcher.Score(candidate, cons) — and so to
// Matcher.Match(candidate, cons).Quality — because the per-shard canonical
// GA streams are k-way merged back into the global canonical order before
// the float sum. Pure; safe for concurrent use.
func (b *ShardedBase) ScoreFlip(add, drop schema.SourceID) (float64, bool) {
	sh := b.sh
	shardScores.Add(1)
	sc := sh.m.scratch()
	defer sh.m.release(sc)
	sc.reset()

	// Shards invalidated by the flip.
	aff := sc.shards[:0]
	if add >= 0 {
		aff = append(aff, sh.sourceShards(add)...)
	}
	if drop >= 0 {
		aff = append(aff, sh.sourceShards(drop)...)
	}
	slices.Sort(aff)
	aff = slices.Compact(aff)
	sc.shards = aff

	// The flipped base, kept sorted.
	ids := sc.ids[:0]
	for _, s := range b.base {
		if s == drop {
			continue
		}
		if add >= 0 && add < s {
			ids = append(ids, add)
			add = -1
		}
		if s != add {
			ids = append(ids, s)
		}
	}
	if add >= 0 {
		ids = append(ids, add)
	}
	sc.ids = ids

	// Re-cluster the affected shards, recording segment bounds.
	sc.segs = sc.segs[:0]
	for _, k := range aff {
		shardRescans.Add(1)
		sc.segs = append(sc.segs, len(sc.gas))
		start := len(sc.gas)
		sc.resetRun()
		sh.seedShard(sc, ids, k)
		sh.m.rounds(sc)
		sh.m.collectInto(sc, start)
	}
	sc.segs = append(sc.segs, len(sc.gas))

	// Coverage of the explicit source constraints, fresh ∪ cached.
	covered := sc.covered[:0]
	for range sh.cons.Sources {
		covered = append(covered, false)
	}
	sc.covered = covered
	for i, s := range sh.cons.Sources {
		if covered[i] {
			continue
		}
		for _, g := range sc.gas {
			if g.HasSource(s) {
				covered[i] = true
				break
			}
		}
	}

	// Assemble the merge streams: fresh segments plus unaffected cached
	// shards. Stream enumeration order is irrelevant — the merge emits GAs
	// in the global canonical order, which is strict (GAs never repeat
	// across shards), so the float sum order is deterministic.
	streams := sc.streams[:0]
	for i := range aff {
		streams = append(streams, gaStream{
			gas:   sc.gas[sc.segs[i]:sc.segs[i+1]],
			quals: sc.quals[sc.segs[i]:sc.segs[i+1]],
		})
	}
	for k, r := range b.res {
		if containsShard(aff, k) || len(r.gas) == 0 {
			continue
		}
		streams = append(streams, gaStream{gas: r.gas, quals: r.quals})
		for i := range covered {
			if r.covered[i] {
				covered[i] = true
			}
		}
	}
	sc.streams = streams

	for _, c := range covered {
		if !c {
			return 0, false
		}
	}

	total := 0
	for _, s := range streams {
		total += len(s.gas)
	}
	if total == 0 {
		return 0, true
	}
	sum := 0.0
	for n := 0; n < total; n++ {
		best := -1
		for si := range streams {
			s := &streams[si]
			if s.pos >= len(s.gas) {
				continue
			}
			if best < 0 || s.gas[s.pos].Compare(streams[best].gas[streams[best].pos]) < 0 {
				best = si
			}
		}
		sum += streams[best].quals[streams[best].pos]
		streams[best].pos++
	}
	return sum / float64(total), true
}
