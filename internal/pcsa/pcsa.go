// Package pcsa implements Flajolet–Martin Probabilistic Counting with
// Stochastic Averaging (PCSA), the distinct-count synopsis µBE uses to
// estimate the cardinality of unions of data sources without fetching data
// (§4 of the paper).
//
// Each cooperating source computes a small hash signature over its tuples.
// The key property (the paper's observation) is that the bitwise OR of two
// sources' signatures equals the signature of the union of their tuple sets,
// so µBE can estimate |s1 ∪ s2 ∪ …| from cached signatures alone. Signatures
// never disclose tuple values.
package pcsa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// mergeOps counts OR-merge operations process-wide. Union merging is the
// innermost hot loop of every Coverage/Redundancy evaluation, so the counter
// is a single atomic add here and surfaced read-only via MergeOps (the
// mube-bench debug endpoint publishes it as an expvar).
var mergeOps atomic.Uint64

// MergeOps returns the total number of signature OR-merges performed by this
// process. Monotonic; not resettable.
func MergeOps() uint64 { return mergeOps.Load() }

// phi is the Flajolet–Martin magic constant correcting the expectation of
// the bit-pattern observable.
const phi = 0.77351

// kappa parameterizes the small-range bias correction of Scheuermann &
// Mauve: E = (m/phi)·(2^A − 2^(−kappa·A)).
const kappa = 1.75

// Config describes the shape of a signature. All signatures that are merged
// together must share an identical Config (including Seed), since OR-merging
// is only meaningful when tuples hash identically at every source.
type Config struct {
	// NumMaps is the number of bitmaps m used for stochastic averaging.
	// It must be a power of two. More bitmaps → lower variance: the standard
	// error of the estimate is ≈ 0.78/√m.
	NumMaps int
	// Seed perturbs the hash function so independent experiments can use
	// independent hash families.
	Seed uint64
	// DisableSmallRangeCorrection turns off the Scheuermann–Mauve correction
	// term. The raw PCSA estimator overshoots badly when n ≲ 20·m; leave the
	// correction on unless reproducing the raw estimator.
	DisableSmallRangeCorrection bool
}

// DefaultConfig is the configuration used by µBE: 256 bitmaps of 64 bits,
// i.e. a 2 KiB signature per source, giving ≈5% standard error — consistent
// with the paper's observed worst-case error of 7%.
var DefaultConfig = Config{NumMaps: 256}

// validate checks the configuration.
func (c Config) validate() error {
	if c.NumMaps <= 0 || c.NumMaps&(c.NumMaps-1) != 0 {
		return fmt.Errorf("pcsa: NumMaps must be a positive power of two, got %d", c.NumMaps)
	}
	return nil
}

// Signature is a PCSA synopsis: m bitmaps of 64 bits each. The zero value is
// not usable; construct with New.
type Signature struct {
	cfg  Config
	maps []uint64
}

// New returns an empty signature with the given configuration.
func New(cfg Config) (*Signature, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Signature{cfg: cfg, maps: make([]uint64, cfg.NumMaps)}, nil
}

// MustNew is New that panics on an invalid configuration; intended for
// package-level defaults and tests.
func MustNew(cfg Config) *Signature {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the signature's configuration.
func (s *Signature) Config() Config { return s.cfg }

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer used
// as the hash function for integer tuple IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddUint64 records one tuple identified by x.
func (s *Signature) AddUint64(x uint64) {
	h := splitmix64(x ^ splitmix64(s.cfg.Seed))
	m := uint64(s.cfg.NumMaps)
	idx := h & (m - 1)
	rest := h >> uint(bits.TrailingZeros64(m)) // remaining hash bits
	// rho = position of the least-significant 1-bit of rest.
	r := bits.TrailingZeros64(rest)
	if r > 63 {
		r = 63
	}
	s.maps[idx] |= 1 << uint(r)
}

// AddBytes records one tuple identified by its byte representation, using
// FNV-1a to fold the bytes into 64 bits first.
func (s *Signature) AddBytes(b []byte) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	s.AddUint64(h)
}

// AddString records one tuple identified by its string representation.
func (s *Signature) AddString(t string) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(t); i++ {
		h ^= uint64(t[i])
		h *= prime
	}
	s.AddUint64(h)
}

// Estimate returns the estimated number of distinct tuples recorded.
func (s *Signature) Estimate() float64 {
	return estimateRhoSum(s.cfg, rhoSumWords(s.maps))
}

// rhoSumWords computes Σ over bitmaps of R, where R is the index of the
// least significant zero bit — the PCSA observable. It is shared by
// Signature, Counting, and the fused union-estimate kernels so every path
// derives the estimate from the exact same integer sum.
func rhoSumWords(words []uint64) int {
	sum := 0
	i := 0
	// Unrolled 4-wide: the loop is the innermost read of every estimate.
	for ; i+4 <= len(words); i += 4 {
		sum += bits.TrailingZeros64(^words[i]) +
			bits.TrailingZeros64(^words[i+1]) +
			bits.TrailingZeros64(^words[i+2]) +
			bits.TrailingZeros64(^words[i+3])
	}
	for ; i < len(words); i++ {
		sum += bits.TrailingZeros64(^words[i])
	}
	return sum
}

// estimateRhoSum turns the summed observable into a cardinality estimate.
// Given identical rho sums it returns bit-identical floats, which is what
// lets the incremental (counting / fused) paths reproduce the full-merge
// estimate exactly.
func estimateRhoSum(cfg Config, sum int) float64 {
	m := float64(cfg.NumMaps)
	a := float64(sum) / m
	est := m / phi * math.Exp2(a)
	if !cfg.DisableSmallRangeCorrection {
		est = m / phi * (math.Exp2(a) - math.Exp2(-kappa*a))
	}
	if est < 0 {
		est = 0
	}
	return est
}

// orWords ORs src into dst word by word; the slices must be the same length
// (enforced by the uniform-config checks of every caller). The 4-wide unroll
// with a single up-front bounds check is the merge kernel under every
// signature union.
func orWords(dst, src []uint64) {
	if len(dst) != len(src) {
		panic("pcsa: orWords length mismatch")
	}
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] |= src[i]
		dst[i+1] |= src[i+1]
		dst[i+2] |= src[i+2]
		dst[i+3] |= src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] |= src[i]
	}
}

// Empty reports whether no tuple has been recorded.
func (s *Signature) Empty() bool {
	for _, bm := range s.maps {
		if bm != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the signature.
func (s *Signature) Clone() *Signature {
	c := &Signature{cfg: s.cfg, maps: make([]uint64, len(s.maps))}
	copy(c.maps, s.maps)
	return c
}

// Reset clears all bitmaps, returning s to the empty state while keeping its
// configuration and backing storage. It lets hot paths (µBE's objective
// evaluator computes one union per candidate subset) reuse one scratch
// signature instead of allocating a fresh one per union.
func (s *Signature) Reset() {
	for i := range s.maps {
		s.maps[i] = 0
	}
}

// CopyFrom overwrites s with o's contents, adopting o's configuration. The
// backing storage is reused when the bitmap counts match.
func (s *Signature) CopyFrom(o *Signature) {
	if len(s.maps) != len(o.maps) {
		s.maps = make([]uint64, len(o.maps))
	}
	s.cfg = o.cfg
	copy(s.maps, o.maps)
}

// ErrIncompatible is returned when merging signatures with different
// configurations.
var ErrIncompatible = errors.New("pcsa: incompatible signature configurations")

// MergeFrom ORs o into s, making s the signature of the union of the two
// recorded tuple sets.
func (s *Signature) MergeFrom(o *Signature) error {
	if s.cfg != o.cfg {
		return ErrIncompatible
	}
	orWords(s.maps, o.maps)
	mergeOps.Add(1)
	return nil
}

// EstimateUnion returns the estimate of the union of s and o without
// materializing the merged signature: the OR happens word by word inside the
// rho-sum accumulation. o may be nil, in which case this is Estimate. It is
// the fused read kernel behind add-only neighborhood flips.
func (s *Signature) EstimateUnion(o *Signature) (float64, error) {
	if o == nil {
		return s.Estimate(), nil
	}
	if s.cfg != o.cfg {
		return 0, configMismatch(s.cfg, o.cfg)
	}
	sum := 0
	for i, w := range s.maps {
		sum += bits.TrailingZeros64(^(w | o.maps[i]))
	}
	return estimateRhoSum(s.cfg, sum), nil
}

// configMismatch builds the diagnostic for merging signatures of different
// shapes, naming both parameter sets; it wraps ErrIncompatible so existing
// errors.Is checks keep working.
func configMismatch(a, b Config) error {
	return fmt.Errorf("pcsa: mixed signature parameters (m=%d, seed=%d) vs (m=%d, seed=%d): %w",
		a.NumMaps, a.Seed, b.NumMaps, b.Seed, ErrIncompatible)
}

// Union returns a new signature representing the union of all the given
// signatures. At least one signature is required; all signatures must share
// one parameter set (the error names the mismatched pair otherwise). The
// result is pre-sized from the first signature's parameters and merged with
// the word-level kernel.
func Union(sigs ...*Signature) (*Signature, error) {
	if len(sigs) == 0 {
		return nil, errors.New("pcsa: Union of zero signatures")
	}
	first := sigs[0]
	for _, o := range sigs[1:] {
		if o.cfg != first.cfg {
			return nil, configMismatch(first.cfg, o.cfg)
		}
	}
	out := &Signature{cfg: first.cfg, maps: make([]uint64, len(first.maps))}
	copy(out.maps, first.maps)
	for _, o := range sigs[1:] {
		orWords(out.maps, o.maps)
		mergeOps.Add(1)
	}
	return out, nil
}

// magic identifies the binary encoding of a signature.
const magic = 0x50435341 // "PCSA"

// MarshalBinary encodes the signature for caching or transmission.
func (s *Signature) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, s.EncodedSize()))
}

// EncodedSize returns the length of the signature's binary encoding, letting
// callers size an AppendBinary buffer exactly.
func (s *Signature) EncodedSize() int { return 4 + 4 + 8 + 1 + 8*len(s.maps) }

// AppendBinary appends the signature's binary encoding to buf and returns the
// extended slice. Serializing a whole universe through one reused buffer this
// way costs zero allocations per signature, where MarshalBinary costs one.
func (s *Signature) AppendBinary(buf []byte) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.cfg.NumMaps))
	buf = binary.LittleEndian.AppendUint64(buf, s.cfg.Seed)
	if s.cfg.DisableSmallRangeCorrection {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, bm := range s.maps {
		buf = binary.LittleEndian.AppendUint64(buf, bm)
	}
	return buf, nil
}

// UnmarshalBinary decodes a signature produced by MarshalBinary.
func (s *Signature) UnmarshalBinary(data []byte) error {
	if len(data) < 17 {
		return errors.New("pcsa: truncated signature")
	}
	if binary.LittleEndian.Uint32(data[0:]) != magic {
		return errors.New("pcsa: bad magic")
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	cfg := Config{
		NumMaps:                     n,
		Seed:                        binary.LittleEndian.Uint64(data[8:]),
		DisableSmallRangeCorrection: data[16] == 1,
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(data) != 17+8*n {
		return fmt.Errorf("pcsa: signature length %d does not match %d maps", len(data), n)
	}
	maps := make([]uint64, n)
	for i := range maps {
		maps[i] = binary.LittleEndian.Uint64(data[17+8*i:])
	}
	s.cfg = cfg
	s.maps = maps
	return nil
}

// SizeBytes returns the in-memory size of the signature's bitmaps. The paper
// notes signatures are "a few bytes or kilobytes"; DefaultConfig is 2 KiB.
func (s *Signature) SizeBytes() int { return 8 * len(s.maps) }

// ExactCounter is the exact-counting oracle used in tests and in the PCSA
// accuracy experiment (§7.3 reports ≤7% worst-case error vs exact counting).
// It simply remembers every distinct tuple ID.
type ExactCounter struct {
	set map[uint64]struct{}
}

// NewExact returns an empty exact counter.
func NewExact() *ExactCounter { return &ExactCounter{set: make(map[uint64]struct{})} }

// AddUint64 records a tuple.
func (e *ExactCounter) AddUint64(x uint64) { e.set[x] = struct{}{} }

// Count returns the exact number of distinct tuples recorded.
func (e *ExactCounter) Count() int { return len(e.set) }

// MergeFrom adds all tuples of o into e.
func (e *ExactCounter) MergeFrom(o *ExactCounter) {
	for x := range o.set {
		e.set[x] = struct{}{}
	}
}
