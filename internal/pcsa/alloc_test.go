package pcsa_test

import (
	"math"
	"testing"

	"mube/internal/pcsa"
	"mube/internal/testutil"
)

// skipUnderRace skips allocation-budget tests when the race detector is on:
// its instrumentation inflates AllocsPerRun counts non-deterministically.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
}

func fill(s *pcsa.Signature, seed, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.AddUint64(seed*1_000_003 + i)
	}
}

// TestKernelAllocs pins the word kernels at zero allocations: Estimate,
// MergeFrom, EstimateUnion, and the counting union's fused EstimateDelta are
// the innermost reads of every objective evaluation and must never touch the
// heap in steady state.
func TestKernelAllocs(t *testing.T) {
	skipUnderRace(t)
	cfg := pcsa.Config{NumMaps: 64}
	a, b := pcsa.MustNew(cfg), pcsa.MustNew(cfg)
	fill(a, 1, 500)
	fill(b, 2, 500)
	acc := pcsa.MustNew(cfg)

	if n := testing.AllocsPerRun(100, func() { _ = a.Estimate() }); n != 0 {
		t.Errorf("Estimate: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		acc.CopyFrom(a)
		if err := acc.MergeFrom(b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("CopyFrom+MergeFrom: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := a.EstimateUnion(b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EstimateUnion: %v allocs/op, want 0", n)
	}

	c, err := pcsa.NewCounting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(a); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := c.EstimateDelta(b, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EstimateDelta: %v allocs/op, want 0", n)
	}
}

// TestArenaViews checks that arena-interned signatures are exact replicas
// (bit-identical estimates, merge-compatible) and that carving views out of a
// warm arena stays within its amortized slab budget — far below the
// one-object-per-signature of heap allocation.
func TestArenaViews(t *testing.T) {
	cfg := pcsa.Config{NumMaps: 64}
	arena, err := pcsa.NewArena(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var views []*pcsa.Signature
	for i := 0; i < 500; i++ {
		s := pcsa.MustNew(cfg)
		fill(s, uint64(i), 100)
		v, err := arena.Intern(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(v.Estimate()) != math.Float64bits(s.Estimate()) {
			t.Fatalf("view %d: estimate %v != original %v", i, v.Estimate(), s.Estimate())
		}
		views = append(views, v)
	}
	if arena.Len() != 500 {
		t.Fatalf("arena.Len() = %d, want 500", arena.Len())
	}
	if arena.Bytes() < 500*64*8 {
		t.Fatalf("arena.Bytes() = %d, too small for %d signatures", arena.Bytes(), arena.Len())
	}
	// Views survive later growth: re-check an early view after 500 inserts.
	got, want := views[0].Estimate(), views[0].Clone().Estimate()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("early view corrupted by growth: %v != %v", got, want)
	}
	// Merging across views works like any signature merge.
	un, err := pcsa.Union(views[0], views[1], views[2])
	if err != nil {
		t.Fatal(err)
	}
	if un.Estimate() <= views[0].Estimate() {
		t.Fatalf("union estimate %v not above member estimate %v", un.Estimate(), views[0].Estimate())
	}

	if !testutil.RaceEnabled {
		// A warm arena (slab already carved) hands out views without touching
		// the heap at all.
		warm, err := pcsa.NewArena(cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm.New() // force the first chunk
		n := testing.AllocsPerRun(50, func() { warm.New() })
		if n > 1 {
			t.Errorf("warm arena New: %v allocs/op, want ≤ 1 (amortized slab growth)", n)
		}
	}
}

// TestArenaChunkGrowthDeep carves enough signatures to cross well past 64
// chunks. The chunk sizer once computed firstChunkSigs << len(chunks) before
// clamping, which overflows int around chunk 57 (~half a million
// signatures) — exactly where the 1M universe preset lands — and panicked in
// makeslice. A narrow config keeps the slab bytes small enough to run in CI.
func TestArenaChunkGrowthDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep arena growth is a long test")
	}
	cfg := pcsa.Config{NumMaps: 2}
	arena, err := pcsa.NewArena(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const total = 600_000 // > 57 chunks at the 8192-signature cap
	for i := 0; i < total; i++ {
		arena.New()
	}
	if arena.Len() != total {
		t.Fatalf("arena.Len() = %d, want %d", arena.Len(), total)
	}
	if arena.Bytes() < total*2*8 {
		t.Fatalf("arena.Bytes() = %d, too small for %d signatures", arena.Bytes(), total)
	}
}
