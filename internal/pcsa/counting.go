package pcsa

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// countingOps counts counting-signature merge operations (Add/Remove/fused
// estimate folds) process-wide, the incremental-path sibling of MergeOps.
var countingOps atomic.Uint64

// CountingMerges returns the total number of counting-signature merge
// operations performed by this process. Monotonic; not resettable.
func CountingMerges() uint64 { return countingOps.Load() }

// maxCount is the saturation ceiling of one reference-count lane. A lane
// that reaches it becomes sticky: it is never incremented or decremented
// again and its bitmap bit stays set forever. Saturated() reports whether
// any lane is sticky, which callers use to route subtractions through the
// exact full-merge path instead.
const maxCount = 0xff

// Counting is a subtractable PCSA union: for every bucket bit of the
// underlying bitmaps it keeps a saturating uint8 reference count of how many
// member signatures set that bit. Adding a member increments, removing one
// decrements, and the implied bitmap (bit set ⇔ count > 0) is exactly the OR
// of the current members' bitmaps — so Estimate returns a float bit-identical
// to merging the members from scratch.
//
// The exactness guarantee has one carve-out: a lane whose count saturates at
// 255 turns sticky (its true count is no longer known), so once Saturated()
// reports true, removals may leave bits set that a full re-merge would
// clear. Callers that need bit-identical subtraction must fall back to the
// full path while Saturated() holds; with µBE's subset caps (|S| ≤ m, and m
// far below 255 in practice) saturation does not occur.
//
// A Counting is not safe for concurrent mutation; concurrent read-only use
// (Estimate, EstimateDelta, Saturated) is safe once mutations have
// happened-before it.
type Counting struct {
	cfg    Config
	counts []uint8  // NumMaps*64 per-bucket-bit reference counts
	words  []uint64 // implied bitmap, maintained incrementally
	sat    int      // sticky (saturated) lanes
	n      int      // member signatures currently included
}

// NewCounting returns an empty counting union with the given configuration.
func NewCounting(cfg Config) (*Counting, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Counting{
		cfg:    cfg,
		counts: make([]uint8, cfg.NumMaps*64),
		words:  make([]uint64, cfg.NumMaps),
	}, nil
}

// MustNewCounting is NewCounting that panics on an invalid configuration.
func MustNewCounting(cfg Config) *Counting {
	c, err := NewCounting(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the counting union's configuration.
func (c *Counting) Config() Config { return c.cfg }

// Members returns the number of signatures currently included.
func (c *Counting) Members() int { return c.n }

// Saturated reports whether any reference-count lane has turned sticky.
// While true, Remove and the drop side of EstimateDelta are no longer exact
// and callers must use the full re-merge path for subtractions.
func (c *Counting) Saturated() bool { return c.sat > 0 }

// Reset clears all counts, returning c to the empty state while keeping its
// configuration and backing storage.
func (c *Counting) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	for i := range c.words {
		c.words[i] = 0
	}
	c.sat = 0
	c.n = 0
}

// Add includes one member signature: every bit set in s increments its lane.
func (c *Counting) Add(s *Signature) error {
	if s.cfg != c.cfg {
		return configMismatch(c.cfg, s.cfg)
	}
	for i, w := range s.maps {
		if w == 0 {
			continue
		}
		base := i << 6
		for m := w; m != 0; m &= m - 1 {
			l := base + bits.TrailingZeros64(m)
			switch c.counts[l] {
			case 0:
				c.counts[l] = 1
				c.words[i] |= 1 << uint(l-base)
			case maxCount: // sticky: frozen forever
			case maxCount - 1:
				c.counts[l] = maxCount
				c.sat++
			default:
				c.counts[l]++
			}
		}
	}
	c.n++
	countingOps.Add(1)
	return nil
}

// Remove excludes one previously added member signature: every bit set in s
// decrements its lane, and a lane reaching zero clears its bitmap bit. Sticky
// lanes are left untouched (see Saturated). Removing a signature that was
// never added underflows a lane and returns an error; the counting state is
// then inconsistent and must be Reset or rebuilt.
func (c *Counting) Remove(s *Signature) error {
	if s.cfg != c.cfg {
		return configMismatch(c.cfg, s.cfg)
	}
	for i, w := range s.maps {
		if w == 0 {
			continue
		}
		base := i << 6
		for m := w; m != 0; m &= m - 1 {
			l := base + bits.TrailingZeros64(m)
			switch c.counts[l] {
			case 0:
				return fmt.Errorf("pcsa: counting underflow at map %d bit %d (removed a non-member signature)", i, l-base)
			case maxCount: // sticky: frozen forever
			case 1:
				c.counts[l] = 0
				c.words[i] &^= 1 << uint(l-base)
			default:
				c.counts[l]--
			}
		}
	}
	c.n--
	countingOps.Add(1)
	return nil
}

// Estimate returns the distinct-count estimate of the current members'
// union, read from the implied bitmap. It is bit-identical to merging the
// members into a fresh Signature and calling Estimate there.
func (c *Counting) Estimate() float64 {
	return estimateRhoSum(c.cfg, rhoSumWords(c.words))
}

// EstimateDelta returns the estimate of the union with add included and drop
// excluded, without mutating c — the read kernel behind O(1-source)
// neighborhood flips. Either signature may be nil. The drop side subtracts
// exactly the bits whose reference count is 1 (bits the dropped member
// uniquely owns), so the result is bit-identical to re-merging the flipped
// member set from scratch — provided c is not Saturated when drop is
// non-nil, which is the caller's responsibility to check.
func (c *Counting) EstimateDelta(add, drop *Signature) (float64, error) {
	if add != nil && add.cfg != c.cfg {
		return 0, configMismatch(c.cfg, add.cfg)
	}
	if drop != nil && drop.cfg != c.cfg {
		return 0, configMismatch(c.cfg, drop.cfg)
	}
	sum := 0
	for i, w := range c.words {
		if drop != nil {
			if dw := drop.maps[i]; dw != 0 {
				base := i << 6
				var cleared uint64
				for m := dw; m != 0; m &= m - 1 {
					b := bits.TrailingZeros64(m)
					if c.counts[base+b] == 1 {
						cleared |= 1 << uint(b)
					}
				}
				w &^= cleared
			}
		}
		if add != nil {
			w |= add.maps[i]
		}
		sum += bits.TrailingZeros64(^w)
	}
	if add != nil {
		countingOps.Add(1)
	}
	if drop != nil {
		countingOps.Add(1)
	}
	return estimateRhoSum(c.cfg, sum), nil
}

// SizeBytes returns the in-memory size of the counting union's lanes and
// implied bitmap: 9 bytes per bucket bit (≈18 KiB at DefaultConfig).
func (c *Counting) SizeBytes() int { return len(c.counts) + 8*len(c.words) }
