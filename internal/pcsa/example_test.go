package pcsa_test

import (
	"fmt"

	"mube/internal/pcsa"
	"mube/internal/testutil/approx"
)

// Example demonstrates the property µBE's coverage estimation is built on:
// OR-merging per-source signatures yields the signature of the union, so
// distinct counts of any source combination come from cached synopses.
func Example() {
	cfg := pcsa.Config{NumMaps: 256}
	a := pcsa.MustNew(cfg)
	b := pcsa.MustNew(cfg)
	union := pcsa.MustNew(cfg)

	for x := uint64(0); x < 60000; x++ {
		if x < 40000 {
			a.AddUint64(x) // source a holds [0, 40k)
		}
		if x >= 20000 {
			b.AddUint64(x) // source b holds [20k, 60k): half overlaps a
		}
		union.AddUint64(x)
	}

	merged, _ := pcsa.Union(a, b)
	// The merged signature is bit-identical to one built over the union.
	fmt.Println("merge exact:", approx.AlmostEqual(merged.Estimate(), union.Estimate()))
	// And the estimate is close to the true 60000 distinct tuples.
	est := merged.Estimate()
	fmt.Println("within 10%:", est > 54000 && est < 66000)
	// Output:
	// merge exact: true
	// within 10%: true
}
