package pcsa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mube/internal/testutil/approx"
)

func TestConfigValidate(t *testing.T) {
	bad := []int{0, -1, 3, 5, 100}
	for _, n := range bad {
		if _, err := New(Config{NumMaps: n}); err == nil {
			t.Errorf("NumMaps=%d should be rejected", n)
		}
	}
	for _, n := range []int{1, 2, 64, 256, 1024} {
		if _, err := New(Config{NumMaps: n}); err != nil {
			t.Errorf("NumMaps=%d should be accepted: %v", n, err)
		}
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// With m=256 the standard error is ≈5%; require <10% on these sizes.
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{10000, 50000, 200000, 1000000} {
		s := MustNew(DefaultConfig)
		for i := 0; i < n; i++ {
			s.AddUint64(r.Uint64())
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.10 {
			t.Errorf("n=%d: estimate %.0f, relative error %.1f%% > 10%%", n, est, 100*relErr)
		}
	}
}

func TestEstimateSmallRange(t *testing.T) {
	// Small-range correction keeps modest cardinalities usable.
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{500, 1000, 4000} {
		s := MustNew(DefaultConfig)
		for i := 0; i < n; i++ {
			s.AddUint64(r.Uint64())
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.25 {
			t.Errorf("n=%d: estimate %.0f, relative error %.1f%% > 25%%", n, est, 100*relErr)
		}
	}
}

func TestEmptyEstimate(t *testing.T) {
	s := MustNew(DefaultConfig)
	if !s.Empty() {
		t.Error("fresh signature should be Empty")
	}
	if est := s.Estimate(); est != 0 {
		t.Errorf("empty estimate = %v, want 0", est)
	}
	s.AddUint64(1)
	if s.Empty() {
		t.Error("signature with one tuple should not be Empty")
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := MustNew(Config{NumMaps: 64})
	for i := 0; i < 100; i++ {
		for j := 0; j < 50; j++ {
			s.AddUint64(uint64(j)) // 50 distinct values added 100 times
		}
	}
	one := MustNew(Config{NumMaps: 64})
	for j := 0; j < 50; j++ {
		one.AddUint64(uint64(j))
	}
	if !approx.AlmostEqual(s.Estimate(), one.Estimate()) {
		t.Errorf("duplicates changed estimate: %v vs %v", s.Estimate(), one.Estimate())
	}
}

func TestUnionEqualsCombinedSignature(t *testing.T) {
	// The paper's key observation: OR of per-source signatures equals the
	// signature of the union of tuples.
	r := rand.New(rand.NewSource(3))
	a := MustNew(DefaultConfig)
	b := MustNew(DefaultConfig)
	all := MustNew(DefaultConfig)
	for i := 0; i < 20000; i++ {
		x := r.Uint64()
		a.AddUint64(x)
		all.AddUint64(x)
	}
	for i := 0; i < 30000; i++ {
		x := r.Uint64()
		b.AddUint64(x)
		all.AddUint64(x)
	}
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.AlmostEqual(u.Estimate(), all.Estimate()) {
		t.Errorf("union estimate %v != combined estimate %v", u.Estimate(), all.Estimate())
	}
}

func TestUnionWithOverlapCountsDistinct(t *testing.T) {
	a := MustNew(DefaultConfig)
	b := MustNew(DefaultConfig)
	r := rand.New(rand.NewSource(11))
	shared := make([]uint64, 30000)
	for i := range shared {
		shared[i] = r.Uint64()
	}
	for _, x := range shared {
		a.AddUint64(x)
		b.AddUint64(x) // b holds exactly the same tuples
	}
	u, _ := Union(a, b)
	est := u.Estimate()
	relErr := math.Abs(est-30000) / 30000
	if relErr > 0.10 {
		t.Errorf("overlapping union: estimate %.0f for 30000 distinct (err %.1f%%)", est, 100*relErr)
	}
}

// TestMergeOpsCounter: every successful MergeFrom ticks the process-wide
// merge counter (surfaced on mube-bench's /debug/vars); failed merges don't.
func TestMergeOpsCounter(t *testing.T) {
	a := MustNew(Config{NumMaps: 64})
	b := MustNew(Config{NumMaps: 64})
	b.AddUint64(1)
	before := MergeOps()
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if got := MergeOps() - before; got != 1 {
		t.Errorf("MergeOps after one merge = +%d, want +1", got)
	}
	if err := a.MergeFrom(MustNew(Config{NumMaps: 128})); err == nil {
		t.Fatal("incompatible merge accepted")
	}
	if got := MergeOps() - before; got != 1 {
		t.Errorf("failed merge ticked the counter: +%d", got)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := MustNew(Config{NumMaps: 64})
	b := MustNew(Config{NumMaps: 128})
	if err := a.MergeFrom(b); err != ErrIncompatible {
		t.Errorf("expected ErrIncompatible, got %v", err)
	}
	c := MustNew(Config{NumMaps: 64, Seed: 9})
	if err := a.MergeFrom(c); err != ErrIncompatible {
		t.Errorf("different seeds must be incompatible, got %v", err)
	}
	if _, err := Union(); err == nil {
		t.Error("Union of nothing should error")
	}
}

func TestMergeProperties(t *testing.T) {
	// OR-merge is commutative, associative, and idempotent — checked on the
	// resulting estimates (which are a pure function of the bitmaps).
	mk := func(seed int64, n int) *Signature {
		s := MustNew(Config{NumMaps: 64})
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			s.AddUint64(r.Uint64())
		}
		return s
	}
	prop := func(sa, sb, sc int64) bool {
		a, b, c := mk(sa, 500), mk(sb, 700), mk(sc, 300)
		ab, _ := Union(a, b)
		ba, _ := Union(b, a)
		if !approx.AlmostEqual(ab.Estimate(), ba.Estimate()) {
			return false
		}
		abc1, _ := Union(ab, c)
		bc, _ := Union(b, c)
		abc2, _ := Union(a, bc)
		if !approx.AlmostEqual(abc1.Estimate(), abc2.Estimate()) {
			return false
		}
		aa, _ := Union(a, a)
		return approx.AlmostEqual(aa.Estimate(), a.Estimate())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAddBytesAndString(t *testing.T) {
	a := MustNew(Config{NumMaps: 64})
	b := MustNew(Config{NumMaps: 64})
	a.AddBytes([]byte("hello world"))
	b.AddString("hello world")
	if !approx.AlmostEqual(a.Estimate(), b.Estimate()) {
		t.Error("AddBytes and AddString of same content should agree")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(Config{NumMaps: 128, Seed: 5})
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.AddUint64(r.Uint64())
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Signature
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !approx.AlmostEqual(back.Estimate(), s.Estimate()) {
		t.Errorf("round-trip estimate %v != %v", back.Estimate(), s.Estimate())
	}
	if back.Config() != s.Config() {
		t.Errorf("round-trip config %+v != %+v", back.Config(), s.Config())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s Signature
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil data should fail")
	}
	if err := s.UnmarshalBinary(make([]byte, 17)); err == nil {
		t.Error("bad magic should fail")
	}
	good, _ := MustNew(Config{NumMaps: 64}).MarshalBinary()
	if err := s.UnmarshalBinary(good[:len(good)-8]); err == nil {
		t.Error("truncated maps should fail")
	}
}

func TestExactCounter(t *testing.T) {
	e := NewExact()
	for i := 0; i < 100; i++ {
		e.AddUint64(uint64(i % 10))
	}
	if e.Count() != 10 {
		t.Errorf("Count = %d, want 10", e.Count())
	}
	o := NewExact()
	o.AddUint64(999)
	e.MergeFrom(o)
	if e.Count() != 11 {
		t.Errorf("after merge Count = %d, want 11", e.Count())
	}
}

func TestSizeBytes(t *testing.T) {
	if got := MustNew(DefaultConfig).SizeBytes(); got != 2048 {
		t.Errorf("DefaultConfig signature = %d bytes, want 2048", got)
	}
}
