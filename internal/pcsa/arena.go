package pcsa

import "fmt"

// Arena owns signature storage for a whole collection of sources as a few
// large contiguous word slabs instead of one heap object per source. At
// Internet scale (10⁵–10⁶ sources) per-source `make([]uint64, m)` allocations
// fragment the heap, cost a pointer dereference per signature touched, and
// give the GC a million objects to trace; the arena packs all signature words
// back-to-back so union loops walk memory sequentially and the GC sees a
// handful of slabs.
//
// Storage is chunked with geometric growth: each chunk is one contiguous
// `[]uint64` holding a fixed number of signatures, and chunks are never
// reallocated once handed out, so every *Signature view the arena returns
// stays valid for the arena's lifetime. Views are ordinary Signatures whose
// maps slice aliases the slab (full-capacity subslices, so no append can
// clobber a neighbor); every existing kernel — orWords, rhoSumWords,
// EstimateDelta — operates on them unchanged.
//
// An Arena is single-goroutine during population (like Universe.Add); the
// interned views are immutable afterwards and safe for concurrent reads.
type Arena struct {
	cfg    Config
	chunks []arenaChunk
	n      int // signatures handed out
}

// arenaChunk is one slab: words holds cap(views)*NumMaps uint64s and views
// the pre-carved Signature structs aliasing it. Both are allocated once at
// full length and never grown, keeping &views[i] stable.
type arenaChunk struct {
	words []uint64
	views []Signature
	used  int
}

// arena chunk sizing: the first chunk holds firstChunkSigs signatures and
// each subsequent chunk doubles, capped at maxChunkSigs — small universes pay
// a few KiB, a 100k-source universe lands in ~20 slabs.
const (
	firstChunkSigs = 64
	maxChunkSigs   = 8192
)

// NewArena returns an empty arena for signatures of the given configuration.
func NewArena(cfg Config) (*Arena, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Arena{cfg: cfg}, nil
}

// Config returns the configuration every interned signature shares.
func (a *Arena) Config() Config { return a.cfg }

// Len returns the number of signatures the arena has handed out.
func (a *Arena) Len() int { return a.n }

// Bytes returns the total slab memory the arena has reserved.
func (a *Arena) Bytes() int {
	total := 0
	for _, c := range a.chunks {
		total += 8 * len(c.words)
	}
	return total
}

// New carves out one zeroed signature view. The returned pointer is stable
// for the arena's lifetime.
func (a *Arena) New() *Signature {
	last := len(a.chunks) - 1
	if last < 0 || a.chunks[last].used == len(a.chunks[last].views) {
		// Cap the shift, not just the result: past a few dozen chunks
		// (~half a million signatures) firstChunkSigs << len(chunks)
		// overflows int and the clamp below would never fire.
		size := maxChunkSigs
		if shift := len(a.chunks); shift < 32 && firstChunkSigs<<shift < maxChunkSigs {
			size = firstChunkSigs << shift
		}
		a.chunks = append(a.chunks, arenaChunk{
			words: make([]uint64, size*a.cfg.NumMaps),
			views: make([]Signature, size),
		})
		last++
	}
	c := &a.chunks[last]
	i := c.used
	c.used++
	a.n++
	off := i * a.cfg.NumMaps
	v := &c.views[i]
	*v = Signature{cfg: a.cfg, maps: c.words[off : off+a.cfg.NumMaps : off+a.cfg.NumMaps]}
	return v
}

// Intern copies s into the arena and returns the arena-backed view. The
// original signature is untouched (callers typically drop it, retiring its
// heap allocation). Configurations must match the arena's.
func (a *Arena) Intern(s *Signature) (*Signature, error) {
	if s.cfg != a.cfg {
		return nil, configMismatch(a.cfg, s.cfg)
	}
	v := a.New()
	copy(v.maps, s.maps)
	return v, nil
}

// MustIntern is Intern that panics on a configuration mismatch; intended for
// builders that already enforce a uniform config.
func (a *Arena) MustIntern(s *Signature) *Signature {
	v, err := a.Intern(s)
	if err != nil {
		panic(fmt.Sprintf("pcsa: arena intern: %v", err))
	}
	return v
}
