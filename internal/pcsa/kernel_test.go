package pcsa

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestUnionMixedParameters: Union rejects inputs with different parameter
// sets and the diagnostic names both (m, seed) pairs, so a misconfigured
// pipeline is debuggable from the message alone.
func TestUnionMixedParameters(t *testing.T) {
	a := MustNew(Config{NumMaps: 64, Seed: 1})
	b := MustNew(Config{NumMaps: 128, Seed: 2})
	_, err := Union(a, b)
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
	for _, frag := range []string{"m=64", "seed=1", "m=128", "seed=2"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q should name %s", err, frag)
		}
	}
	// The mismatch must be detected up front, before any merge work: a
	// mismatch in the last position errors just the same.
	c := MustNew(Config{NumMaps: 64, Seed: 1})
	if _, err := Union(a, c, b); !errors.Is(err, ErrIncompatible) {
		t.Errorf("trailing mismatch: want ErrIncompatible, got %v", err)
	}
}

// TestUnionPreSized: the result adopts the first signature's parameters and
// a single-input union is a copy, not an alias.
func TestUnionPreSized(t *testing.T) {
	a := MustNew(Config{NumMaps: 64, Seed: 3})
	a.AddUint64(42)
	u, err := Union(a)
	if err != nil {
		t.Fatal(err)
	}
	if u.Config() != a.Config() {
		t.Errorf("union config %+v != input config %+v", u.Config(), a.Config())
	}
	if math.Float64bits(u.Estimate()) != math.Float64bits(a.Estimate()) {
		t.Errorf("single-input union estimate %v != input %v", u.Estimate(), a.Estimate())
	}
	if &u.maps[0] == &a.maps[0] {
		t.Error("union result aliases its input's backing array")
	}
}

// TestEstimateUnionFused: the fused two-signature union estimate is
// bit-identical to materializing the merge, and nil means plain Estimate.
func TestEstimateUnionFused(t *testing.T) {
	cfg := Config{NumMaps: 64}
	r := rand.New(rand.NewSource(21))
	a, b := MustNew(cfg), MustNew(cfg)
	for i := 0; i < 5000; i++ {
		a.AddUint64(r.Uint64())
		b.AddUint64(r.Uint64())
	}
	merged, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.EstimateUnion(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(merged.Estimate()) {
		t.Errorf("fused estimate %v != materialized %v", got, merged.Estimate())
	}
	if got, _ := a.EstimateUnion(nil); math.Float64bits(got) != math.Float64bits(a.Estimate()) {
		t.Errorf("EstimateUnion(nil) = %v, want Estimate %v", got, a.Estimate())
	}
	other := MustNew(Config{NumMaps: 128})
	if _, err := a.EstimateUnion(other); !errors.Is(err, ErrIncompatible) {
		t.Errorf("mixed parameters: want ErrIncompatible, got %v", err)
	}
}

// TestOrWordsKernel exercises the unrolled word-level OR against a scalar
// reference, across lengths that hit every unroll tail.
func TestOrWordsKernel(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 129} {
		dst := make([]uint64, n)
		src := make([]uint64, n)
		want := make([]uint64, n)
		for i := range dst {
			dst[i] = r.Uint64()
			src[i] = r.Uint64()
			want[i] = dst[i] | src[i]
		}
		orWords(dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: word %d = %#x, want %#x", n, i, dst[i], want[i])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("orWords should panic on mismatched lengths")
		}
	}()
	orWords(make([]uint64, 4), make([]uint64, 5))
}

// TestRhoSumWordsKernel checks the unrolled rho-sum against a scalar
// reference across unroll tails.
func TestRhoSumWordsKernel(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 64, 257} {
		words := make([]uint64, n)
		want := 0
		for i := range words {
			words[i] = r.Uint64()
			w := words[i]
			for b := 0; b < 64; b++ {
				if w&(1<<uint(b)) == 0 {
					break
				}
				want++
			}
		}
		if got := rhoSumWords(words); got != want {
			t.Fatalf("n=%d: rhoSumWords = %d, want %d", n, got, want)
		}
	}
}
