package pcsa

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomSignatures returns n signatures over disjoint-ish random tuple draws.
func randomSignatures(t *testing.T, r *rand.Rand, cfg Config, n, tuples int) []*Signature {
	t.Helper()
	sigs := make([]*Signature, n)
	for i := range sigs {
		s := MustNew(cfg)
		for j := 0; j < tuples; j++ {
			s.AddUint64(r.Uint64())
		}
		sigs[i] = s
	}
	return sigs
}

// mergeAll re-merges the given members from scratch — the reference the
// counting union must match bit for bit.
func mergeAll(t *testing.T, cfg Config, members []*Signature) float64 {
	t.Helper()
	if len(members) == 0 {
		return 0
	}
	acc := members[0].Clone()
	for _, s := range members[1:] {
		if err := acc.MergeFrom(s); err != nil {
			t.Fatal(err)
		}
	}
	return acc.Estimate()
}

// TestCountingMatchesFullMerge churns random adds and removes through a
// counting union and checks that after every mutation its estimate is
// bit-identical to re-merging the current member multiset from scratch.
func TestCountingMatchesFullMerge(t *testing.T) {
	cfg := Config{NumMaps: 64}
	r := rand.New(rand.NewSource(5))
	sigs := randomSignatures(t, r, cfg, 12, 4000)

	c := MustNewCounting(cfg)
	var members []*Signature
	for step := 0; step < 400; step++ {
		if len(members) > 0 && r.Intn(3) == 0 {
			i := r.Intn(len(members))
			if err := c.Remove(members[i]); err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			members = append(members[:i], members[i+1:]...)
		} else {
			s := sigs[r.Intn(len(sigs))]
			if err := c.Add(s); err != nil {
				t.Fatalf("step %d: add: %v", step, err)
			}
			members = append(members, s)
		}
		want := mergeAll(t, cfg, members)
		if got := c.Estimate(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("step %d (%d members): counting estimate %v != full merge %v",
				step, len(members), got, want)
		}
		if c.Members() != len(members) {
			t.Fatalf("step %d: Members() = %d, want %d", step, c.Members(), len(members))
		}
	}
	if c.Saturated() {
		t.Fatal("counting saturated with only 12 distinct members")
	}
}

// TestCountingEstimateDelta checks the fused flip kernel against a scratch
// re-merge of the flipped member set, for add-only, drop-only, and swap
// flips — without mutating the counting union.
func TestCountingEstimateDelta(t *testing.T) {
	cfg := Config{NumMaps: 64}
	r := rand.New(rand.NewSource(9))
	sigs := randomSignatures(t, r, cfg, 8, 3000)
	members := sigs[:5]
	outside := sigs[5:]

	c := MustNewCounting(cfg)
	for _, s := range members {
		if err := c.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Estimate()

	cases := []struct {
		name      string
		add, drop *Signature
		want      func() float64
	}{
		{"add-only", outside[0], nil, func() float64 {
			return mergeAll(t, cfg, append(append([]*Signature(nil), members...), outside[0]))
		}},
		{"drop-only", nil, members[2], func() float64 {
			rest := append(append([]*Signature(nil), members[:2]...), members[3:]...)
			return mergeAll(t, cfg, rest)
		}},
		{"swap", outside[1], members[0], func() float64 {
			rest := append(append([]*Signature(nil), members[1:]...), outside[1])
			return mergeAll(t, cfg, rest)
		}},
		{"no-op", nil, nil, func() float64 { return mergeAll(t, cfg, members) }},
	}
	for _, tc := range cases {
		got, err := c.EstimateDelta(tc.add, tc.drop)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if want := tc.want(); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: EstimateDelta = %v, want %v", tc.name, got, want)
		}
	}
	if after := c.Estimate(); math.Float64bits(after) != math.Float64bits(before) {
		t.Errorf("EstimateDelta mutated the counting union: %v -> %v", before, after)
	}
}

// TestCountingSaturation drives one lane to the 255 ceiling and checks that
// it turns sticky: Saturated reports it, further adds and removes leave the
// lane frozen, and the bitmap bit stays set.
func TestCountingSaturation(t *testing.T) {
	cfg := Config{NumMaps: 64}
	s := MustNew(cfg)
	s.AddUint64(12345) // sets one bit per affected map
	c := MustNewCounting(cfg)
	for i := 0; i < maxCount; i++ {
		if err := c.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Saturated() {
		t.Fatalf("no saturation after %d adds of the same signature", maxCount)
	}
	// Sticky lanes are frozen: removing all members leaves their bits set.
	for i := 0; i < maxCount; i++ {
		if err := c.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	if c.Members() != 0 {
		t.Fatalf("Members() = %d after removing all", c.Members())
	}
	for i, w := range c.words {
		if w != s.maps[i] {
			t.Errorf("word %d = %#x after removals, want sticky bits %#x", i, w, s.maps[i])
		}
	}
	if !c.Saturated() {
		t.Error("saturation must be permanent until Reset")
	}
	c.Reset()
	if c.Saturated() || c.Estimate() != 0 || c.Members() != 0 {
		t.Error("Reset should clear saturation, estimate, and members")
	}
}

// TestCountingUnderflow: removing a never-added signature errors.
func TestCountingUnderflow(t *testing.T) {
	cfg := Config{NumMaps: 64}
	c := MustNewCounting(cfg)
	s := MustNew(cfg)
	s.AddUint64(777)
	if err := c.Remove(s); err == nil {
		t.Fatal("removing a non-member should error")
	} else if !strings.Contains(err.Error(), "underflow") {
		t.Errorf("error should mention underflow: %v", err)
	}
}

// TestCountingConfigMismatch: mutations and the delta kernel reject
// signatures from a different configuration, naming both parameter sets.
func TestCountingConfigMismatch(t *testing.T) {
	c := MustNewCounting(Config{NumMaps: 64})
	other := MustNew(Config{NumMaps: 128})
	if err := c.Add(other); !errors.Is(err, ErrIncompatible) {
		t.Errorf("Add: want ErrIncompatible, got %v", err)
	}
	if err := c.Remove(other); !errors.Is(err, ErrIncompatible) {
		t.Errorf("Remove: want ErrIncompatible, got %v", err)
	}
	if _, err := c.EstimateDelta(other, nil); !errors.Is(err, ErrIncompatible) {
		t.Errorf("EstimateDelta add side: want ErrIncompatible, got %v", err)
	}
	if _, err := c.EstimateDelta(nil, other); !errors.Is(err, ErrIncompatible) {
		t.Errorf("EstimateDelta drop side: want ErrIncompatible, got %v", err)
	}
}

// TestCountingMergesCounter: Add, Remove, and each non-nil EstimateDelta side
// tick the process-wide counting-merge counter.
func TestCountingMergesCounter(t *testing.T) {
	cfg := Config{NumMaps: 64}
	c := MustNewCounting(cfg)
	s := MustNew(cfg)
	s.AddUint64(1)
	before := CountingMerges()
	if err := c.Add(s); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EstimateDelta(s, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(s); err != nil {
		t.Fatal(err)
	}
	if got := CountingMerges() - before; got != 3 {
		t.Errorf("CountingMerges advanced by %d, want 3", got)
	}
}

// TestCountingSizeBytes documents the memory cost: 9 bytes per bucket bit.
func TestCountingSizeBytes(t *testing.T) {
	c := MustNewCounting(Config{NumMaps: 64})
	if got, want := c.SizeBytes(), 64*64+8*64; got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}
