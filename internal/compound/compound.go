// Package compound implements the paper's §2.1 extension for matching with
// n:m cardinality: "our formulation may be extended to accommodate compound
// schema elements by replacing the attributes in our definitions with
// compound elements (e.g., elements consisting of sets of attributes). This
// would enable us to handle matching with n:m cardinality by mapping n:m
// matches to 1:1 matches on compound elements."
//
// A Grouping partitions (some of) a source's attributes into compound
// elements; Transform derives a universe whose per-source "attributes" are
// those elements, so the unchanged clustering/selection machinery performs
// 1:1 matching over them. Mediated schemas found on the derived universe
// project back to n:m correspondences over the original attributes.
package compound

import (
	"fmt"
	"sort"
	"strings"

	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/strutil"
)

// Element is one compound schema element of one source: a set of attribute
// indexes and the name the element matches under.
type Element struct {
	// Attrs are indexes into the source's original schema, at least one.
	Attrs []int
	// Name is the element's matching name. Empty means "derive": the
	// longest common token sequence of the member names, falling back to
	// the joined names.
	Name string
}

// Grouping assigns compound elements to sources. Sources without an entry —
// and attributes not covered by any element — keep their attributes as
// singleton elements.
type Grouping map[schema.SourceID][]Element

// Transformed is the element-level view of a universe.
type Transformed struct {
	// Universe is the derived universe: one "attribute" per element. Data
	// characteristics and synopses are shared with the original sources.
	Universe *source.Universe
	// original[sid][elem] lists the original attribute indexes of element
	// elem of source sid.
	original [][][]int
	orig     *source.Universe
}

// Transform derives the element-level universe.
func Transform(u *source.Universe, g Grouping) (*Transformed, error) {
	t := &Transformed{
		Universe: source.NewUniverse(u.SignatureConfig()),
		original: make([][][]int, u.Len()),
		orig:     u,
	}
	for _, s := range u.Sources() {
		elems := g[s.ID]
		covered := make(map[int]int, s.Schema.Len()) // attr → element index
		for ei, e := range elems {
			if len(e.Attrs) == 0 {
				return nil, fmt.Errorf("compound: source %d element %d is empty", s.ID, ei)
			}
			for _, a := range e.Attrs {
				if a < 0 || a >= s.Schema.Len() {
					return nil, fmt.Errorf("compound: source %d element %d references attribute %d out of range",
						s.ID, ei, a)
				}
				if prev, dup := covered[a]; dup {
					return nil, fmt.Errorf("compound: source %d attribute %d in elements %d and %d",
						s.ID, a, prev, ei)
				}
				covered[a] = ei
			}
		}

		var names []string
		var attrSets [][]int
		for _, e := range elems {
			attrs := append([]int(nil), e.Attrs...)
			sort.Ints(attrs)
			name := e.Name
			if name == "" {
				name = deriveName(s.Schema, attrs)
			}
			names = append(names, name)
			attrSets = append(attrSets, attrs)
		}
		// Remaining attributes become singleton elements, in schema order.
		for a := 0; a < s.Schema.Len(); a++ {
			if _, grouped := covered[a]; grouped {
				continue
			}
			names = append(names, s.Schema.Name(a))
			attrSets = append(attrSets, []int{a})
		}

		derived := &source.Source{
			Name:            s.Name,
			Schema:          schema.NewSchema(names...),
			Cardinality:     s.Cardinality,
			Signature:       s.Signature,
			Characteristics: s.Characteristics,
		}
		id, err := t.Universe.Add(derived)
		if err != nil {
			return nil, err
		}
		if id != s.ID {
			return nil, fmt.Errorf("compound: derived universe id drift (%d != %d)", id, s.ID)
		}
		t.original[id] = attrSets
	}
	return t, nil
}

// deriveName names an element by the common tokens of its members ("after
// date" + "before date" → "date"), falling back to the joined names.
func deriveName(sch schema.Schema, attrs []int) string {
	if len(attrs) == 1 {
		return sch.Name(attrs[0])
	}
	common := tokenSet(sch.Name(attrs[0]))
	for _, a := range attrs[1:] {
		next := tokenSet(sch.Name(a))
		for tok := range common {
			if _, ok := next[tok]; !ok {
				delete(common, tok)
			}
		}
	}
	if len(common) > 0 {
		toks := make([]string, 0, len(common))
		for tok := range common {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		return strings.Join(toks, " ")
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = sch.Name(a)
	}
	return strings.Join(parts, " ")
}

// tokenSet returns the set of tokens of a name.
func tokenSet(name string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, tok := range strutil.Tokens(name) {
		set[tok] = struct{}{}
	}
	return set
}

// Original returns the original attribute references behind the derived
// (element-level) reference r.
func (t *Transformed) Original(r schema.AttrRef) []schema.AttrRef {
	attrs := t.original[r.Source][r.Attr]
	out := make([]schema.AttrRef, len(attrs))
	for i, a := range attrs {
		out[i] = schema.AttrRef{Source: r.Source, Attr: a}
	}
	return out
}

// Correspondence is an n:m match over original attributes: unlike a GA it
// may contain several attributes of one source (the "n" side).
type Correspondence struct {
	Refs []schema.AttrRef
}

// Cardinality reports the correspondence's shape, e.g. "2:1:1" — the number
// of attributes contributed per source in source order.
func (c Correspondence) Cardinality() string {
	counts := make(map[schema.SourceID]int)
	var order []schema.SourceID
	for _, r := range c.Refs {
		if counts[r.Source] == 0 {
			order = append(order, r.Source)
		}
		counts[r.Source]++
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	parts := make([]string, len(order))
	for i, sid := range order {
		parts[i] = fmt.Sprintf("%d", counts[sid])
	}
	return strings.Join(parts, ":")
}

// Project maps an element-level mediated schema back to n:m correspondences
// over the original attributes.
func (t *Transformed) Project(m schema.Mediated) []Correspondence {
	out := make([]Correspondence, 0, m.Len())
	for _, g := range m.GAs {
		var c Correspondence
		for _, r := range g.Refs() {
			c.Refs = append(c.Refs, t.Original(r)...)
		}
		sort.Slice(c.Refs, func(i, j int) bool { return c.Refs[i].Less(c.Refs[j]) })
		out = append(out, c)
	}
	return out
}

// AutoGroup proposes compound elements heuristically: within one source,
// attributes with multi-token names sharing the same head (final) token are
// grouped — e.g. {"after date", "before date"} → element "date", or
// {"first name", "last name"} → element "name". The proposal is a starting
// point for user review, in µBE's spirit of user-guided mediation.
func AutoGroup(u *source.Universe) Grouping {
	g := make(Grouping)
	for _, s := range u.Sources() {
		byHead := make(map[string][]int)
		for a := 0; a < s.Schema.Len(); a++ {
			toks := strutil.Tokens(s.Schema.Name(a))
			if len(toks) < 2 {
				continue
			}
			head := toks[len(toks)-1]
			byHead[head] = append(byHead[head], a)
		}
		heads := make([]string, 0, len(byHead))
		for head, attrs := range byHead {
			if len(attrs) >= 2 {
				heads = append(heads, head)
			}
		}
		sort.Strings(heads)
		for _, head := range heads {
			g[s.ID] = append(g[s.ID], Element{Attrs: byHead[head], Name: head})
		}
	}
	return g
}
