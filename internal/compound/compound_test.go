package compound

import (
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/testutil"
)

func ref(s, a int) schema.AttrRef { return schema.AttrRef{Source: schema.SourceID(s), Attr: a} }

func universe(t *testing.T, schemas ...[]string) *source.Universe {
	t.Helper()
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	for _, attrs := range schemas {
		if _, err := u.Add(source.Uncooperative("s", schema.NewSchema(attrs...))); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestTransformBasic(t *testing.T) {
	// Source 0 exposes a date range as two attributes; source 1 has a
	// single "date". Grouping source 0's pair lets 2:1 matching happen as
	// 1:1 on elements.
	u := universe(t,
		[]string{"after date", "before date", "keyword"},
		[]string{"date", "keyword"},
	)
	g := Grouping{0: {{Attrs: []int{0, 1}}}} // name derived → "date"
	tr, err := Transform(u, g)
	if err != nil {
		t.Fatal(err)
	}
	s0 := tr.Universe.Source(0).Schema
	if s0.Len() != 2 {
		t.Fatalf("derived schema = %v, want 2 elements", s0)
	}
	if s0.Name(0) != "date" {
		t.Errorf("derived element name = %q, want common token 'date'", s0.Name(0))
	}
	if s0.Name(1) != "keyword" {
		t.Errorf("singleton element = %q", s0.Name(1))
	}
	// Original projection of the compound element.
	orig := tr.Original(ref(0, 0))
	if len(orig) != 2 || orig[0] != ref(0, 0) || orig[1] != ref(0, 1) {
		t.Errorf("Original = %v", orig)
	}
}

func TestTransformValidation(t *testing.T) {
	u := universe(t, []string{"a", "b"})
	cases := []Grouping{
		{0: {{Attrs: []int{}}}},                     // empty element
		{0: {{Attrs: []int{5}}}},                    // out of range
		{0: {{Attrs: []int{-1}}}},                   // negative
		{0: {{Attrs: []int{0}}, {Attrs: []int{0}}}}, // overlap
	}
	for i, g := range cases {
		if _, err := Transform(u, g); err == nil {
			t.Errorf("bad grouping %d accepted", i)
		}
	}
}

func TestNMmatchingViaElements(t *testing.T) {
	// End to end: with the compound grouping, clustering matches the
	// {after date, before date} pair to the single "date" attribute — a 2:1
	// match the plain matcher cannot express.
	u := universe(t,
		[]string{"after date", "before date"},
		[]string{"date"},
		[]string{"date"},
	)
	tr, err := Transform(u, Grouping{0: {{Attrs: []int{0, 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := match.New(tr.Universe, match.Config{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(tr.Universe.IDs(), constraint.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Len() != 1 || res.Schema.GAs[0].Size() != 3 {
		t.Fatalf("element-level schema = %v, want one GA over all three sources", res.Schema)
	}
	corr := tr.Project(res.Schema)
	if len(corr) != 1 {
		t.Fatalf("correspondences = %v", corr)
	}
	c := corr[0]
	if len(c.Refs) != 4 {
		t.Errorf("correspondence refs = %v, want 4 original attributes", c.Refs)
	}
	if got := c.Cardinality(); got != "2:1:1" {
		t.Errorf("cardinality = %q, want 2:1:1", got)
	}
}

func TestDeriveNameFallsBackToJoin(t *testing.T) {
	u := universe(t, []string{"alpha", "omega"})
	tr, err := Transform(u, Grouping{0: {{Attrs: []int{0, 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	// No common token: joined names.
	if got := tr.Universe.Source(0).Schema.Name(0); got != "alpha omega" {
		t.Errorf("fallback name = %q", got)
	}
}

func TestExplicitElementName(t *testing.T) {
	u := universe(t, []string{"first name", "last name"})
	tr, err := Transform(u, Grouping{0: {{Attrs: []int{0, 1}, Name: "full name"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Universe.Source(0).Schema.Name(0); got != "full name" {
		t.Errorf("explicit name = %q", got)
	}
}

func TestTransformPreservesDataView(t *testing.T) {
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	tuples := make([]source.TupleID, 1000)
	for i := range tuples {
		tuples[i] = uint64(i)
	}
	s, err := source.FromTuples("d", schema.NewSchema("x", "y"), source.NewSliceIterator(tuples), pcsa.Config{NumMaps: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCharacteristic("mttf", 42)
	if _, err := u.Add(s); err != nil {
		t.Fatal(err)
	}

	tr, err := Transform(u, Grouping{0: {{Attrs: []int{0, 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	d := tr.Universe.Source(0)
	if d.Cardinality != 1000 {
		t.Errorf("cardinality = %d", d.Cardinality)
	}
	if !testutil.AlmostEqual(d.Signature.Estimate(), s.Signature.Estimate()) {
		t.Error("signature not shared")
	}
	if v, _ := d.Characteristic("mttf"); !testutil.AlmostEqual(v, 42) {
		t.Errorf("characteristics lost: %v", v)
	}
}

func TestAutoGroup(t *testing.T) {
	u := universe(t,
		[]string{"after date", "before date", "keyword"},
		[]string{"first name", "last name", "price"},
		[]string{"title"},
	)
	g := AutoGroup(u)
	if len(g[0]) != 1 || g[0][0].Name != "date" || len(g[0][0].Attrs) != 2 {
		t.Errorf("source 0 groups = %+v", g[0])
	}
	if len(g[1]) != 1 || g[1][0].Name != "name" {
		t.Errorf("source 1 groups = %+v", g[1])
	}
	if len(g[2]) != 0 {
		t.Errorf("source 2 should have no groups: %+v", g[2])
	}
	// Auto-grouping output must transform cleanly.
	if _, err := Transform(u, g); err != nil {
		t.Errorf("AutoGroup produced invalid grouping: %v", err)
	}
}

func TestAutoGroupSingleTokenNamesUngrouped(t *testing.T) {
	u := universe(t, []string{"date", "name", "price"})
	g := AutoGroup(u)
	if len(g[0]) != 0 {
		t.Errorf("single-token names grouped: %+v", g[0])
	}
}
