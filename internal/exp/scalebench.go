package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/solvers"
	"mube/internal/pcsa"
	"mube/internal/synth"
	"mube/internal/telemetry"
)

// ScalePreset sizes one point of the universe-scale benchmark: how large a
// streamed synthetic universe to build and how much solver budget to spend on
// it. Unlike Scale (which reproduces the paper's figures on paper-sized
// universes), presets exercise the Internet-scale path: arena-backed
// signatures, the streaming generator, and the partitioned solver over
// shard-disjoint domains.
type ScalePreset struct {
	// Name labels the preset ("50", "10k", "100k", "1m").
	Name string
	// NumSources is the universe size.
	NumSources int
	// Domains > 1 generates that many vocabulary-disjoint domains so the
	// matcher's shard index decomposes the universe; 0 keeps the BAMM
	// single-domain generator.
	Domains int
	// Concepts sets the per-domain vocabulary size (synth.Config
	// DomainConcepts); 0 keeps the generator default. Larger vocabularies
	// grow the distinct-name table the shard index is built over, which is
	// what the candidate-pair index is measured against.
	Concepts int
	// Choose is MaxSources for the solve.
	Choose int
	// MaxIters / Patience / MaxEvals bound each (sub-)solve.
	MaxIters int
	Patience int
	MaxEvals int
	// Solver names the algorithm in the solvers registry.
	Solver string
	// DataFactor scales tuple cardinalities, exactly as Scale.DataFactor.
	DataFactor float64
	// SigMaps is the PCSA signature width in bitmaps (0 = 64). The 1m preset
	// narrows it so the signature arena stays a fraction of RAM at 8 B/map
	// per source.
	SigMaps int
	// GroupWorkers is the partitioned solver's group-level pool size
	// (opt.Options.GroupWorkers; 0 = GOMAXPROCS).
	GroupWorkers int
	// Seed drives generation and the solver.
	Seed int64
}

// ScalePresets returns the benchmark ladder: the paper's neighborhood (50),
// beyond any flat search (10k), and the Internet-scale target (100k).
func ScalePresets() []ScalePreset {
	return []ScalePreset{
		{
			Name:       "50",
			NumSources: 50,
			Domains:    0, // BAMM: one shared domain, single group
			Choose:     10,
			MaxIters:   40,
			Patience:   12,
			MaxEvals:   -1,
			Solver:     "tabu",
			DataFactor: 0.01,
			Seed:       1,
		},
		{
			Name:       "10k",
			NumSources: 10_000,
			Domains:    8,
			Choose:     40,
			MaxIters:   30,
			Patience:   8,
			MaxEvals:   12_000,
			Solver:     "partition+tabu",
			DataFactor: 0.001,
			Seed:       1,
		},
		{
			Name:       "100k",
			NumSources: 100_000,
			Domains:    8,
			Choose:     80,
			MaxIters:   30,
			Patience:   8,
			MaxEvals:   24_000,
			Solver:     "partition+tabu",
			DataFactor: 0.001,
			Seed:       1,
		},
		{
			// The 10⁶-source rung. A wider domain fan (32 × 64 concepts)
			// keeps per-group sub-solves tractable and gives the shard index
			// a 2048-name table — ~2.1M flat pairs — for the candidate index
			// to beat. SigMaps 16 holds the signature arena at 128 MB.
			Name:       "1m",
			NumSources: 1_000_000,
			Domains:    32,
			Concepts:   64,
			Choose:     128,
			MaxIters:   12,
			Patience:   4,
			MaxEvals:   24_000,
			Solver:     "partition+tabu",
			DataFactor: 0.0005,
			SigMaps:    16,
			Seed:       1,
		},
	}
}

// ScalePresetByName resolves one preset.
func ScalePresetByName(name string) (ScalePreset, error) {
	for _, p := range ScalePresets() {
		if p.Name == name {
			return p, nil
		}
	}
	return ScalePreset{}, fmt.Errorf("exp: unknown universe preset %q (want 50, 10k, 100k, or 1m)", name)
}

// Reduced shrinks a preset's solver budget for CI smoke runs: same universe,
// same decomposition, a fraction of the search.
func (p ScalePreset) Reduced() ScalePreset {
	p.MaxIters = 6
	p.Patience = 2
	if p.MaxEvals < 0 || p.MaxEvals > 2000 {
		p.MaxEvals = 2000
	}
	return p
}

// ScaleBenchRow reports one preset run.
type ScaleBenchRow struct {
	Preset  string
	Sources int
	// Groups is the number of independent source groups the shard index
	// found (1 = no decomposition, flat solve).
	Groups int
	Solver string
	// GenMS covers streaming generation plus universe precompute; ShardMS
	// is the θ-component shard-index build (candidate generation + scoring
	// + union-find + per-source lists); SolveMS is the solve proper.
	GenMS   float64
	ShardMS float64
	SolveMS float64
	// PairCandidates is how many similarity pairs the shard-index build
	// tested against θ; PairsTotal is the flat n(n−1)/2 it replaces.
	PairCandidates uint64
	PairsTotal     uint64
	// GroupWorkers is the partitioned solver's group pool size used for the
	// run (0 = GOMAXPROCS).
	GroupWorkers int
	Evals        int
	// EvalsPerSec is Evals over the solve wall time.
	EvalsPerSec float64
	// SolveMallocs and SolveAllocMB are the heap allocation count and bytes
	// during the solve (runtime.MemStats deltas; telemetry only, never fed
	// back into results).
	SolveMallocs uint64
	SolveAllocMB float64
	// SigMB is the arena footprint of all source signatures.
	SigMB   float64
	Quality float64
	Status  string
}

// ScaleBench builds the preset's universe through the streaming generator and
// solves it end to end, reporting throughput and allocation telemetry.
func ScaleBench(p ScalePreset, parallel int, rec *telemetry.Recorder) (*ScaleBenchRow, error) {
	cfg := synth.Scaled(p.DataFactor)
	cfg.NumSources = p.NumSources
	cfg.Domains = p.Domains
	cfg.DomainConcepts = p.Concepts
	cfg.Seed = p.Seed
	sigMaps := p.SigMaps
	if sigMaps == 0 {
		sigMaps = 64
	}
	cfg.Sig = pcsa.Config{NumMaps: sigMaps}

	genStart := time.Now()
	u, err := synth.GenerateUniverse(cfg)
	if err != nil {
		return nil, err
	}
	genMS := float64(time.Since(genStart).Microseconds()) / 1000

	matcher, err := match.New(u, match.Config{Theta: match.DefaultTheta})
	if err != nil {
		return nil, err
	}

	// Build the shard index (candidate generation + blocked scoring +
	// component labeling) up front and time it; the solve below reuses the
	// cached index. PairCandidates deltas are process-global, so surround
	// the build tightly.
	candBefore := match.PairCandidates()
	shardStart := time.Now()
	groups := len(matcher.NewSharded(constraint.Set{}).SourceGroups())
	shardMS := float64(time.Since(shardStart).Microseconds()) / 1000
	candTested := match.PairCandidates() - candBefore
	nSim := uint64(matcher.SimIDs())
	quality, err := PaperQuality()
	if err != nil {
		return nil, err
	}
	prob := &opt.Problem{
		Universe:   u,
		Matcher:    matcher,
		Quality:    quality,
		MaxSources: p.Choose,
	}
	solver, err := solvers.ByName(p.Solver)
	if err != nil {
		return nil, err
	}
	opts := opt.Options{
		Seed:         p.Seed,
		MaxEvals:     p.MaxEvals,
		MaxIters:     p.MaxIters,
		Patience:     p.Patience,
		Parallel:     parallel,
		GroupWorkers: p.GroupWorkers,
		Recorder:     rec,
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	solveStart := time.Now()
	sol, err := solver.Solve(context.Background(), prob, opts)
	if err != nil {
		return nil, err
	}
	solveSec := time.Since(solveStart).Seconds()
	runtime.ReadMemStats(&after)

	row := &ScaleBenchRow{
		Preset:         p.Name,
		Sources:        u.Len(),
		Groups:         groups,
		Solver:         solver.Name(),
		GenMS:          genMS,
		ShardMS:        shardMS,
		SolveMS:        solveSec * 1000,
		PairCandidates: candTested,
		PairsTotal:     nSim * (nSim - 1) / 2,
		GroupWorkers:   p.GroupWorkers,
		Evals:          sol.Evals,
		SolveMallocs:   after.Mallocs - before.Mallocs,
		SolveAllocMB:   float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		SigMB:          float64(u.SignatureBytes()) / (1 << 20),
		Quality:        sol.Quality,
		Status:         string(sol.Status),
	}
	if solveSec > 0 {
		row.EvalsPerSec = float64(sol.Evals) / solveSec
	}
	return row, nil
}

// RenderScaleBench prints the scale ladder.
func RenderScaleBench(w io.Writer, rows []*ScaleBenchRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "preset\tsources\tgroups\tsolver\tgen_ms\tshard_ms\tpair_cands\tpair_frac\tsolve_ms\tevals\tevals_per_sec\tallocs\talloc_mb\tsig_mb\tquality\tstatus")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.0f\t%.1f\t%d\t%.4f\t%.0f\t%d\t%.0f\t%d\t%.1f\t%.1f\t%.4f\t%s\n",
			r.Preset, r.Sources, r.Groups, r.Solver, r.GenMS, r.ShardMS,
			r.PairCandidates, r.PairFrac(), r.SolveMS,
			r.Evals, r.EvalsPerSec, r.SolveMallocs, r.SolveAllocMB, r.SigMB,
			r.Quality, r.Status)
	}
	return tw.Flush()
}

// PairFrac is PairCandidates over the flat pair total (1 when the total is
// degenerate), the sub-quadratic headline of the candidate index.
func (r *ScaleBenchRow) PairFrac() float64 {
	if r.PairsTotal == 0 {
		return 1
	}
	return float64(r.PairCandidates) / float64(r.PairsTotal)
}
