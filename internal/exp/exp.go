// Package exp contains the runners that regenerate every figure and table of
// the paper's evaluation (§7), plus the ablations DESIGN.md calls out. The
// runners are shared by cmd/mube-bench (full console harness) and the
// repository's Go benchmarks.
//
// Experiment index (see DESIGN.md for the mapping to paper artifacts):
//
//	Fig5        execution time vs universe size (choose 20 of 100..700)
//	Fig67       execution time and overall quality vs sources to choose
//	Fig8        solution cardinality vs weight on the Card QEF
//	Table1      quality of GAs (true GAs / attributes / missed)
//	PCSA        probabilistic-counting accuracy vs exact counting
//	Sensitivity ±15% weight perturbation robustness
//	Solvers     tabu vs SLS vs annealing vs PSO vs random
//	Ablations   similarity measure, linkage, tabu tenure, PCSA maps
package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"mube/internal/bamm"
	"mube/internal/constraint"
	"mube/internal/fault"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/tabu"
	"mube/internal/pcsa"
	"mube/internal/probe"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/synth"
	"mube/internal/telemetry"
)

// Scale sets the size of every experiment. Full() reproduces the paper's
// settings; Quick() is a minutes-scale smoke configuration for CI and Go
// benchmarks.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// DataFactor scales tuple-pool size and cardinalities (1 = paper).
	DataFactor float64
	// UniverseSizes are the x-axis of Fig 5.
	UniverseSizes []int
	// ChooseCounts are the x-axis of Figs 6–7 and Table 1.
	ChooseCounts []int
	// BaseUniverse is the universe size for Figs 6–8 and Table 1 (paper:
	// 200).
	BaseUniverse int
	// ChooseDefault is m for Figs 5 and 8 (paper: 20).
	ChooseDefault int
	// MaxIters / Patience bound each tabu run. Evaluations per iteration
	// scale with the universe, so time grows with N as in the paper.
	MaxIters int
	Patience int
	// Sig is the signature shape used by generated universes.
	Sig pcsa.Config
	// Seed drives universe generation and solver randomness.
	Seed int64
	// Repeats averages stochastic experiments over this many runs.
	Repeats int
	// Parallel is the evaluator worker-pool size passed to every solver run
	// (0 = GOMAXPROCS, 1 = sequential). Results are parallel-invariant;
	// only timings change.
	Parallel int
	// Faults, when non-nil and enabled, simulates acquisition of every
	// generated universe under the fault plan: each cooperative source runs
	// through the prober's retry/breaker state machine on a virtual clock,
	// failed sources degrade to uncooperative, breaker-tripped sources drop.
	// The plan is part of the universe-cache key, so degraded and clean
	// universes never alias.
	Faults *fault.Plan
	// Rec receives solver traces and evaluator/probe metrics for every run
	// launched through Options/Acquire (nil = telemetry off). Results are
	// bit-identical with or without it.
	Rec *telemetry.Recorder
}

// Full returns the paper-scale configuration (§7.1).
func Full() Scale {
	return Scale{
		Name:          "full",
		DataFactor:    1,
		UniverseSizes: []int{100, 200, 300, 400, 500, 600, 700},
		ChooseCounts:  []int{10, 20, 30, 40, 50},
		BaseUniverse:  200,
		ChooseDefault: 20,
		MaxIters:      120,
		Patience:      25,
		Sig:           pcsa.DefaultConfig,
		Seed:          1,
		Repeats:       3,
	}
}

// Quick returns a configuration that runs every experiment in seconds to a
// few minutes with the same qualitative shapes.
func Quick() Scale {
	return Scale{
		Name:          "quick",
		DataFactor:    0.01,
		UniverseSizes: []int{100, 200, 300},
		ChooseCounts:  []int{10, 20, 30},
		BaseUniverse:  200,
		ChooseDefault: 20,
		MaxIters:      40,
		Patience:      12,
		Sig:           pcsa.Config{NumMaps: 128},
		Seed:          1,
		Repeats:       2,
	}
}

// universeCache memoizes generated universes per (size, scale, fault plan) so
// sweeps and benchmarks do not regenerate data.
var universeCache sync.Map // key string → *acquired

// acquired pairs a (possibly degraded) universe with its acquisition health.
type acquired struct {
	res    *synth.Result
	health *probe.HealthReport // nil when no fault plan was in effect
}

// plan returns the effective fault plan (the zero plan when none is set).
func (sc Scale) plan() fault.Plan {
	if sc.Faults == nil {
		return fault.Plan{}
	}
	return *sc.Faults
}

// Universe returns (and caches) the synthetic universe of the given size at
// this scale, degraded under the scale's fault plan if one is set.
func (sc Scale) Universe(n int) (*synth.Result, error) {
	a, err := sc.Acquire(n)
	if err != nil {
		return nil, err
	}
	return a.res, nil
}

// Health returns the acquisition health report for the size-n universe (nil
// when the scale has no fault plan).
func (sc Scale) Health(n int) (*probe.HealthReport, error) {
	a, err := sc.Acquire(n)
	if err != nil {
		return nil, err
	}
	return a.health, nil
}

// Acquire generates (or returns cached) the size-n universe and, when a fault
// plan is set, simulates its acquisition through the prober: sources that
// cannot complete their synopsis scan degrade to uncooperative, sources whose
// circuit breaker trips are dropped, and every ID-indexed piece of ground
// truth is remapped to the surviving IDs. Acquisition is deterministic in
// (scale seed, plan), so repeated calls — at any evaluator worker count —
// return bit-identical universes and reports.
func (sc Scale) Acquire(n int) (*acquired, error) {
	plan := sc.plan()
	key := fmt.Sprintf("%s/%d/%d/%g/%d/%s", sc.Name, n, sc.Seed, sc.DataFactor, sc.Sig.NumMaps, plan.String())
	if v, ok := universeCache.Load(key); ok {
		return v.(*acquired), nil
	}
	cfg := synth.Scaled(sc.DataFactor)
	cfg.NumSources = n
	cfg.Seed = sc.Seed
	cfg.Sig = sc.Sig
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	a := &acquired{res: res}
	if plan.Enabled() {
		prober := probe.New(probe.Policy{}, nil, fault.NewInjector(plan), sc.Seed).Instrument(sc.Rec)
		nu, health, kept, err := prober.ReprobeUniverse(res.Universe)
		if err != nil {
			return nil, err
		}
		a = &acquired{res: remapResult(res, nu, kept), health: health}
	}
	universeCache.Store(key, a)
	return a, nil
}

// remapResult rebuilds a synth.Result's ID-parallel ground truth for a
// reprobed universe: kept[newID] is the original ID of the new universe's
// source newID. Dropped sources vanish from every slice; degraded sources
// keep their ground truth (their schema and characteristics are unchanged —
// only their synopsis is gone).
func remapResult(res *synth.Result, nu *source.Universe, kept []schema.SourceID) *synth.Result {
	out := &synth.Result{Universe: nu, Config: res.Config}
	oldToNew := make(map[schema.SourceID]schema.SourceID, len(kept))
	for newID, oldID := range kept {
		oldToNew[oldID] = schema.SourceID(newID)
		out.BaseSchema = append(out.BaseSchema, res.BaseSchema[oldID])
		out.Specialty = append(out.Specialty, res.Specialty[oldID])
		out.AttrOrigins = append(out.AttrOrigins, res.AttrOrigins[oldID])
		if res.Tuples != nil {
			out.Tuples = append(out.Tuples, res.Tuples[oldID])
		}
	}
	for _, sid := range res.Conformant {
		if nid, ok := oldToNew[sid]; ok {
			out.Conformant = append(out.Conformant, nid)
		}
	}
	return out
}

// matcherCache memoizes matchers (similarity tables) per universe.
var matcherCache sync.Map // *synth.Result → *match.Matcher

// Matcher returns the default-configured matcher for res, cached.
func (sc Scale) Matcher(res *synth.Result) (*match.Matcher, error) {
	if v, ok := matcherCache.Load(res); ok {
		return v.(*match.Matcher), nil
	}
	m, err := match.New(res.Universe, match.Config{Theta: match.DefaultTheta})
	if err != nil {
		return nil, err
	}
	matcherCache.Store(res, m)
	return m, nil
}

// PaperQuality assembles the §7.1 default objective: the four main QEFs plus
// the MTTF wsum QEF, with weights 0.25/0.25/0.2/0.15/0.15.
func PaperQuality() (*qef.Quality, error) {
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	return qef.NewQuality(qefs, qef.PaperDefaults())
}

// Problem assembles the standard experiment problem over res.
func (sc Scale) Problem(res *synth.Result, m int, cons constraint.Set) (*opt.Problem, error) {
	matcher, err := sc.Matcher(res)
	if err != nil {
		return nil, err
	}
	quality, err := PaperQuality()
	if err != nil {
		return nil, err
	}
	return &opt.Problem{
		Universe:    res.Universe,
		Matcher:     matcher,
		Quality:     quality,
		MaxSources:  m,
		Constraints: cons,
	}, nil
}

// Solver returns the experiment's tabu solver, with the per-iteration
// neighborhood scaled to the universe (N/10, at least 30) so that larger
// universes genuinely cost more to search, as in the paper's Fig 5.
func (sc Scale) Solver(universeSize int) opt.Solver {
	nb := universeSize / 10
	if nb < 30 {
		nb = 30
	}
	return tabu.Solver{Neighbors: nb}
}

// tabuWithTenure builds a tabu solver with an explicit tenure, for the
// tenure ablation.
func tabuWithTenure(tenure, neighbors int) opt.Solver {
	return tabu.Solver{Tenure: tenure, Neighbors: neighbors}
}

// Options returns the solver budget for one run.
func (sc Scale) Options(seed int64) opt.Options {
	return opt.Options{
		Seed:     seed,
		MaxEvals: -1, // unlimited: bounded by iterations × neighborhood
		MaxIters: sc.MaxIters,
		Patience: sc.Patience,
		Parallel: sc.Parallel,
		Recorder: sc.Rec,
	}
}

// Workers returns the effective evaluator worker count for this scale.
func (sc Scale) Workers() int {
	if sc.Parallel > 0 {
		return sc.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// ConstraintConfig names one of the five constraint settings of Figs 5–7.
type ConstraintConfig struct {
	Label      string
	NumSources int
	NumGAs     int
}

// ConstraintConfigs are the paper's five settings: none; 1, 3, and 5 source
// constraints; and 5 source constraints plus 2 GA constraints.
func ConstraintConfigs() []ConstraintConfig {
	return []ConstraintConfig{
		{Label: "none", NumSources: 0, NumGAs: 0},
		{Label: "1C", NumSources: 1, NumGAs: 0},
		{Label: "3C", NumSources: 3, NumGAs: 0},
		{Label: "5C", NumSources: 5, NumGAs: 0},
		{Label: "5C+2G", NumSources: 5, NumGAs: 2},
	}
}

// BuildConstraints draws a constraint set per §7.2: source constraints are
// random *conformant* sources (unperturbed BAMM schemas); GA constraints
// have up to 5 attributes representing accurate matchings of one concept's
// attributes across different conformant sources. The total number of
// required sources (explicit plus GA-implied) is kept within maxSources so
// the resulting problem stays feasible even for small m.
func BuildConstraints(res *synth.Result, cc ConstraintConfig, maxSources int, r *rand.Rand) (constraint.Set, error) {
	var cons constraint.Set
	if cc.NumSources > len(res.Conformant) {
		return cons, fmt.Errorf("exp: %d source constraints exceed %d conformant sources",
			cc.NumSources, len(res.Conformant))
	}
	perm := r.Perm(len(res.Conformant))
	for i := 0; i < cc.NumSources; i++ {
		cons.Sources = append(cons.Sources, res.Conformant[perm[i]])
	}
	required := make(map[schema.SourceID]bool, maxSources)
	for _, id := range cons.Sources {
		required[id] = true
	}

	// GA constraints: pick distinct concepts; for each, gather attribute
	// refs of that concept from up to 5 distinct conformant sources,
	// preferring already-required sources so small m stays feasible.
	usedConcepts := make(map[int]bool)
	attempts := 0
	for len(cons.GAs) < cc.NumGAs && attempts < 4*bamm.NumConcepts {
		attempts++
		ci := r.Intn(bamm.NumConcepts)
		if usedConcepts[ci] {
			continue
		}
		usedConcepts[ci] = true

		conceptRef := func(sid schema.SourceID) (schema.AttrRef, bool) {
			s := res.Universe.Source(sid)
			for a := 0; a < s.Schema.Len(); a++ {
				if got, ok := bamm.ConceptOf(s.Schema.Name(a)); ok && got == ci {
					return schema.AttrRef{Source: sid, Attr: a}, true
				}
			}
			return schema.AttrRef{}, false
		}
		var refs []schema.AttrRef
		// First pass: sources that are already required cost no budget.
		for _, sid := range res.Conformant {
			if len(refs) == 5 {
				break
			}
			if !required[sid] {
				continue
			}
			if ref, ok := conceptRef(sid); ok {
				refs = append(refs, ref)
			}
		}
		// Second pass: new sources, as budget allows — always leaving at
		// least two free slots so the search space never degenerates to a
		// single feasible subset.
		for _, sid := range res.Conformant {
			if len(refs) == 5 || len(required) >= maxSources-2 {
				break
			}
			if required[sid] {
				continue
			}
			if ref, ok := conceptRef(sid); ok {
				refs = append(refs, ref)
				required[sid] = true
			}
		}
		if len(refs) < 2 {
			continue // concept too rare among affordable sources; try another
		}
		cons.GAs = append(cons.GAs, schema.NewGA(refs...))
	}
	if len(cons.GAs) < cc.NumGAs {
		return constraint.Set{}, fmt.Errorf("exp: could only build %d of %d GA constraints within m=%d",
			len(cons.GAs), cc.NumGAs, maxSources)
	}
	if err := cons.Validate(res.Universe); err != nil {
		return constraint.Set{}, err
	}
	return cons, nil
}
