package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/solvers"
	"mube/internal/pcsa"
	"mube/internal/synth"
	"mube/internal/telemetry"
)

// The partition experiment measures the two scaling levers this repo adds on
// top of the paper's solver: sub-quadratic candidate generation in the shard
// index, and the group-level worker pool of the partitioned solver. It is
// also a self-check — the runs at different GroupWorkers must agree bit for
// bit, or the experiment fails instead of reporting a speedup.

// PartitionRow is one solve of the ladder preset at a group-worker setting.
type PartitionRow struct {
	Workers int // 0 = GOMAXPROCS
	SolveMS float64
	Quality float64
	Evals   int
}

// PartitionResult is the experiment outcome: per-worker-setting timings plus
// the shard-index build economics they share.
type PartitionResult struct {
	Rows           []PartitionRow
	Groups         int
	ShardMS        float64
	PairCandidates uint64
	PairsTotal     uint64
}

// Speedup is the sequential wall-clock over the widest-pool wall-clock (1
// when degenerate). On a single-CPU runner it hovers near 1 by construction.
func (r *PartitionResult) Speedup() float64 {
	if len(r.Rows) < 2 || r.Rows[len(r.Rows)-1].SolveMS <= 0 {
		return 1
	}
	return r.Rows[0].SolveMS / r.Rows[len(r.Rows)-1].SolveMS
}

// PairFrac is PairCandidates over the flat pair total.
func (r *PartitionResult) PairFrac() float64 {
	if r.PairsTotal == 0 {
		return 1
	}
	return float64(r.PairCandidates) / float64(r.PairsTotal)
}

// Partition runs the 10k ladder preset once per group-worker setting over a
// single generated universe and shard index, verifying bit-identical
// results across settings.
func Partition(sc Scale) (*PartitionResult, error) {
	p, err := ScalePresetByName("10k")
	if err != nil {
		return nil, err
	}
	if sc.Name != "full" {
		p = p.Reduced()
	}
	cfg := synth.Scaled(p.DataFactor)
	cfg.NumSources = p.NumSources
	cfg.Domains = p.Domains
	cfg.DomainConcepts = p.Concepts
	cfg.Seed = p.Seed
	cfg.Sig = pcsa.Config{NumMaps: 64}
	u, err := synth.GenerateUniverse(cfg)
	if err != nil {
		return nil, err
	}
	matcher, err := match.New(u, match.Config{Theta: match.DefaultTheta})
	if err != nil {
		return nil, err
	}
	quality, err := PaperQuality()
	if err != nil {
		return nil, err
	}
	prob := &opt.Problem{
		Universe:   u,
		Matcher:    matcher,
		Quality:    quality,
		MaxSources: p.Choose,
	}
	solver, err := solvers.ByName(p.Solver)
	if err != nil {
		return nil, err
	}

	res := &PartitionResult{}
	candBefore := match.PairCandidates()
	shardStart := time.Now()
	res.Groups = len(matcher.NewSharded(constraint.Set{}).SourceGroups())
	res.ShardMS = float64(time.Since(shardStart).Microseconds()) / 1000
	res.PairCandidates = match.PairCandidates() - candBefore
	nSim := uint64(matcher.SimIDs())
	res.PairsTotal = nSim * (nSim - 1) / 2

	for _, workers := range []int{1, 4} {
		opts := opt.Options{
			Seed:         p.Seed,
			MaxEvals:     p.MaxEvals,
			MaxIters:     p.MaxIters,
			Patience:     p.Patience,
			Parallel:     sc.Parallel,
			GroupWorkers: workers,
			Recorder:     sc.Rec,
		}
		start := time.Now()
		sol, err := solver.Solve(context.Background(), prob, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PartitionRow{
			Workers: workers,
			SolveMS: time.Since(start).Seconds() * 1000,
			Quality: sol.Quality,
			Evals:   sol.Evals,
		})
	}
	first := res.Rows[0]
	for _, r := range res.Rows[1:] {
		if math.Float64bits(r.Quality) != math.Float64bits(first.Quality) || r.Evals != first.Evals {
			return nil, fmt.Errorf("exp: partitioned solve not worker-invariant: %d workers (q=%v evals=%d) vs %d (q=%v evals=%d)",
				first.Workers, first.Quality, first.Evals, r.Workers, r.Quality, r.Evals)
		}
	}
	return res, nil
}

// RenderPartition prints the worker ladder plus the candidate-index
// economics, ending with the archivable metrics line.
func RenderPartition(w io.Writer, res *PartitionResult) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "group_workers\tsolve_ms\tquality\tevals")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.4f\t%d\n", r.Workers, r.SolveMS, r.Quality, r.Evals)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "shard index: %d groups, %d of %d pairs tested (%.4f) in %.1fms\n",
		res.Groups, res.PairCandidates, res.PairsTotal, res.PairFrac(), res.ShardMS)
	// The canonical pair_candidates / shard_build_ns archive comes from the
	// universe ladder's largest rung (mube-bench -universe); this line only
	// archives what is unique to the differential, so merging both into
	// BENCH_fig.json never makes same-named metrics from different universes
	// collide.
	fmt.Fprintln(w, telemetry.MetricsLine(map[string]float64{
		"partition_speedup": res.Speedup(),
		"group_workers":     float64(res.Rows[len(res.Rows)-1].Workers),
	}))
	return nil
}
